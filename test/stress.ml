(* Overload stress harness, run on every `dune runtest` via the
   @stress alias. A skewed hot-spot workload — most edges leave a
   handful of hub nodes, so the processors owning the hub values take
   the brunt of the traffic — is evaluated under a deliberately small
   per-channel credit, with the watchdog armed on a generous deadline.
   Each cell checks the tentpole guarantees: pooled answers equal the
   sequential evaluation, the observed in-flight peak respects the
   credit, and the run completes (no hang, no watchdog breach) inside
   the time budget. Kept deliberately modest in size so the whole
   matrix stays well under its deadline on a loaded CI machine; the
   broad randomized sweep lives in t_overload.ml. *)

open Datalog
open Pardatalog

let capacity = 2
let deadline = 20.0

let edges =
  let rng = Workload.Rng.create ~seed:42 in
  Workload.Graphgen.hotspot rng ~nodes:40 ~edges:160 ~hubs:2

let edb =
  let db = Database.create () in
  List.iter
    (fun (a, b) ->
      ignore (Database.add_fact db "par" (Tuple.of_ints [ a; b ])))
    edges;
  db

let sequential =
  let db, _ = Seminaive.evaluate Workload.Progs.ancestor edb in
  Database.get db "anc"

let limits = { Overload.no_limits with deadline = Some deadline }

let plan = Fault.make ~seed:9 ~drop:0.2 ~dup:0.1 ()

(* Each cell returns (answers, peak) or raises. *)
let cells =
  [
    ( "sim/example3+credit",
      fun () ->
        let rw =
          Result.get_ok
            (Strategy.example3 ~seed:0 ~nprocs:4 Workload.Progs.ancestor)
        in
        let config =
          Run_config.(
            default |> with_capacity (Some capacity) |> with_limits limits
            |> with_max_rounds 200_000)
        in
        let r = Sim_runtime.run ~config rw ~edb in
        (r.Sim_runtime.answers, r.Sim_runtime.stats) );
    ( "sim/adaptive+faults",
      fun () ->
        let dial = Overload.dial ~high_water:4 ~nprocs:4 () in
        let rw =
          Result.get_ok
            (Strategy.adaptive_tradeoff ~seed:0 ~nprocs:4 ~dial
               Workload.Progs.ancestor)
        in
        let config =
          Run_config.(
            default |> with_capacity (Some capacity) |> with_limits limits
            |> with_dial (Some dial) |> with_fault plan
            |> with_max_rounds 200_000)
        in
        let r = Sim_runtime.run ~config rw ~edb in
        (r.Sim_runtime.answers, r.Sim_runtime.stats) );
    ( "domain/example3+credit",
      fun () ->
        let rw =
          Result.get_ok
            (Strategy.example3 ~seed:0 ~nprocs:3 Workload.Progs.ancestor)
        in
        let r =
          Domain_runtime.run
            ~config:
              Run_config.(
                default |> with_capacity (Some capacity) |> with_limits limits)
            rw ~edb
        in
        (r.Sim_runtime.answers, r.Sim_runtime.stats) );
    ( "domain/adaptive+faults",
      fun () ->
        let dial = Overload.dial ~high_water:4 ~nprocs:3 () in
        let rw =
          Result.get_ok
            (Strategy.adaptive_tradeoff ~seed:0 ~nprocs:3 ~dial
               Workload.Progs.ancestor)
        in
        let r =
          Domain_runtime.run
            ~config:
              Run_config.(
                default |> with_capacity (Some capacity) |> with_limits limits
                |> with_dial (Some dial) |> with_fault plan)
            rw ~edb
        in
        (r.Sim_runtime.answers, r.Sim_runtime.stats) );
  ]

let () =
  Printf.printf "hotspot workload: %d edges, %d nodes, closure %d tuples\n"
    (List.length edges)
    (Workload.Graphgen.node_count edges)
    (Relation.cardinal sequential);
  let failures = ref 0 in
  List.iter
    (fun (name, cell) ->
      match cell () with
      | answers, stats ->
        let ok_answers =
          Relation.equal sequential (Database.get answers "anc")
        in
        let peak = stats.Stats.peak_in_flight in
        let ok_peak = peak >= 1 && peak <= capacity in
        if ok_answers && ok_peak then
          Printf.printf "ok   %-24s peak=%d stalls=%d raises=%d\n" name peak
            stats.Stats.faults.Stats.credit_stalls
            stats.Stats.faults.Stats.alpha_raises
        else begin
          incr failures;
          Printf.printf "FAIL %-24s answers=%b peak=%d\n" name ok_answers
            peak
        end
      | exception Overload.Overload { reason; _ } ->
        incr failures;
        Format.printf "FAIL %-24s overload: %a@." name Overload.pp_reason
          reason)
    cells;
  if !failures > 0 then begin
    Printf.printf "%d stress cell(s) failed\n" !failures;
    exit 1
  end
