(* Tests for the static analysis: dependency graph, SCCs, sirup
   recognition. *)

open Datalog
open Helpers

let mutual =
  Parser.program_exn
    "even(X) :- zero(X). even(X) :- succ(Y,X), odd(Y).
     odd(X) :- succ(Y,X), even(Y)."

let stratified =
  Parser.program_exn
    "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
     twohop(X,Y) :- tc(X,Z), tc(Z,Y)."

let analysis_tests =
  [
    case "dependency graph of ancestor" (fun () ->
        Alcotest.(check (list (pair string (list string))))
          "deps"
          [ ("anc", [ "anc"; "par" ]) ]
          (Analysis.dependency_graph ancestor));
    case "sccs of mutual recursion" (fun () ->
        let comps = Analysis.sccs mutual in
        Alcotest.(check bool) "even and odd together" true
          (List.mem [ "even"; "odd" ] comps));
    case "sccs are bottom-up for stratified program" (fun () ->
        match Analysis.sccs stratified with
        | [ [ "tc" ]; [ "twohop" ] ] -> ()
        | other ->
          Alcotest.failf "unexpected sccs: %s"
            (String.concat "; "
               (List.map (fun c -> String.concat "," c) other)));
    case "mutually_recursive" (fun () ->
        Alcotest.(check bool) "even~odd" true
          (Analysis.mutually_recursive mutual "even" "odd");
        Alcotest.(check bool) "tc~tc (self loop)" true
          (Analysis.mutually_recursive stratified "tc" "tc");
        Alcotest.(check bool) "twohop not self-recursive" false
          (Analysis.mutually_recursive stratified "twohop" "twohop");
        Alcotest.(check bool) "tc !~ twohop" false
          (Analysis.mutually_recursive stratified "tc" "twohop"));
    case "recursive_atoms of the ancestor rules" (fun () ->
        let rules = Program.rules ancestor in
        Alcotest.(check int) "exit has none" 0
          (List.length (Analysis.recursive_atoms ancestor (List.nth rules 0)));
        Alcotest.(check int) "recursive has one" 1
          (List.length (Analysis.recursive_atoms ancestor (List.nth rules 1))));
    case "linearity" (fun () ->
        Alcotest.(check bool) "ancestor linear" true
          (Analysis.is_linear ancestor);
        Alcotest.(check bool) "nonlinear ancestor is not" false
          (Analysis.is_linear Workload.Progs.ancestor_nonlinear));
    case "as_sirup accepts ancestor" (fun () ->
        match Analysis.as_sirup ancestor with
        | Ok s ->
          Alcotest.(check string) "pred" "anc" s.Analysis.pred;
          Alcotest.(check (array string))
            "head vars" [| "X"; "Y" |] s.Analysis.head_vars;
          Alcotest.(check (array string))
            "rec vars" [| "Z"; "Y" |] s.Analysis.rec_vars;
          Alcotest.(check int) "one base atom" 1
            (List.length s.Analysis.base_atoms)
        | Error e -> Alcotest.fail (Analysis.explain_not_sirup e));
    case "as_sirup rejects two derived predicates" (fun () ->
        match Analysis.as_sirup stratified with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    case "as_sirup rejects nonlinear rules" (fun () ->
        match Analysis.as_sirup Workload.Progs.ancestor_nonlinear with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    case "as_sirup rejects constants in the recursive head" (fun () ->
        let p =
          Parser.program_exn "p(X,Y) :- q(X,Y). p(X,1) :- p(Y,X), q(X,Y)."
        in
        match Analysis.as_sirup p with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    case "as_sirup rejects missing exit rule" (fun () ->
        let p = Parser.program_exn "p(X,Y) :- p(Y,X), q(X,Y)." in
        match Analysis.as_sirup p with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    case "as_sirup accepts example7" (fun () ->
        match Analysis.as_sirup Workload.Progs.example7 with
        | Ok s ->
          Alcotest.(check (array string))
            "rec vars" [| "V"; "W"; "Z" |] s.Analysis.rec_vars
        | Error e -> Alcotest.fail (Analysis.explain_not_sirup e));
  ]

let suites = [ ("analysis", analysis_tests) ]
