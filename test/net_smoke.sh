#!/bin/sh
# Multi-process runtime smoke: spawn four worker processes over a Unix
# socket, SIGKILL one mid-run, and require the exact sequential answer
# with zero leaked processes. A second, fully deterministic variant
# drives the scheduled-crash path (self-SIGKILL + checkpoint restore)
# and checks the transport counters attribute the recovery.
#
# Usage: net_smoke.sh DATALOGP
set -eu

datalogp=$1
dir=$(mktemp -d "${TMPDIR:-/tmp}/net_smoke.XXXXXX")
par=
cleanup () {
  [ -n "$par" ] && kill "$par" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

fail () {
  echo "net_smoke: $1" >&2
  exit 1
}

cat > "$dir/anc.dl" <<'EOF'
anc(X,Y) :- par(X,Y).
anc(X,Y) :- anc(X,Z), par(Z,Y).
EOF
"$datalogp" gen chain --size 400 > "$dir/chain.dl"

# The sequential reference answer.
"$datalogp" run "$dir/anc.dl" --edb "$dir/chain.dl" 2>/dev/null \
  | grep '^  anc' > "$dir/seq.ans"
[ -s "$dir/seq.ans" ] || fail "empty sequential reference"

# --- external SIGKILL mid-run --------------------------------------
"$datalogp" par "$dir/anc.dl" --edb "$dir/chain.dl" \
    --runtime net --procs 4 -n 4 --json \
    > "$dir/kill.out" 2> "$dir/kill.err" &
par=$!

# Wait for a worker process (a child of the coordinator) to appear,
# then SIGKILL it while the evaluation is still in flight.
victim=
tries=0
while [ "$tries" -lt 200 ]; do
  victim=$(pgrep -P "$par" 2>/dev/null | head -n 1) && [ -n "$victim" ] && break
  kill -0 "$par" 2>/dev/null || fail "coordinator exited before spawning workers"
  tries=$((tries + 1))
  sleep 0.01 2>/dev/null || sleep 1
done
[ -n "$victim" ] || fail "no worker process appeared"
kill -KILL "$victim" 2>/dev/null || true

wait "$par" || fail "coordinator exited nonzero after worker SIGKILL"
par=

grep '^  anc' "$dir/kill.out" > "$dir/kill.ans" || true
[ -s "$dir/kill.ans" ] || fail "no answers in the killed run's output"
cmp -s "$dir/kill.ans" "$dir/seq.ans" \
  || fail "answers differ after external SIGKILL"
grep -q '"worker_restarts":[1-9]' "$dir/kill.out" \
  || fail "supervisor recorded no restart: $(grep -o '"transport":{[^}]*}' "$dir/kill.out")"

# --- deterministic scheduled crash + checkpoint restore ------------
"$datalogp" par "$dir/anc.dl" --edb "$dir/chain.dl" \
    --runtime net --procs 4 -n 4 --crash 1@2 --checkpoint 2 --json \
    > "$dir/crash.out" 2> "$dir/crash.err" \
  || fail "scheduled-crash run exited nonzero"
grep '^  anc' "$dir/crash.out" > "$dir/crash.ans" || true
cmp -s "$dir/crash.ans" "$dir/seq.ans" \
  || fail "answers differ after scheduled crash"
grep -q '"worker_restarts":[1-9]' "$dir/crash.out" \
  || fail "scheduled crash: no worker restart recorded"
grep -q '"restores":[1-9]' "$dir/crash.out" \
  || fail "scheduled crash: no checkpoint restore recorded"
grep -q '"reconnects":[1-9]' "$dir/crash.out" \
  || fail "scheduled crash: no reconnect recorded"

# --- zero leaked processes -----------------------------------------
sleep 0.2 2>/dev/null || sleep 1
leaked=$(pgrep -f "worker --addr" 2>/dev/null | wc -l)
[ "$leaked" -eq 0 ] || fail "$leaked worker process(es) leaked"

echo "net_smoke: ok (external SIGKILL + scheduled crash both exact, no leaks)"
