(* A small deterministic fault matrix, run on every `dune runtest` via
   the @fault alias. Each cell executes a fixture program under a
   seeded fault plan on the simulated runtime and checks the tentpole
   guarantee: pooled answers equal the sequential evaluation. Kept
   intentionally small and fast — the broad randomized sweep lives in
   the QCheck suite (t_fault.ml). *)

open Datalog
open Pardatalog

let plans =
  [
    ("drop", Fault.make ~seed:1 ~drop:0.3 ());
    ("dup", Fault.make ~seed:2 ~dup:0.3 ());
    ("reorder+delay",
     Fault.make ~seed:3 ~reorder:0.3 ~delay:0.3 ~max_delay:3 ());
    ("crash",
     Fault.make ~seed:4
       ~crashes:[ { Fault.cr_pid = 1; cr_round = 3; cr_down = 2 } ]
       ());
    ("crash+checkpoint",
     Fault.make ~seed:5
       ~crashes:[ { Fault.cr_pid = 0; cr_round = 2; cr_down = 1 } ]
       ~checkpoint_every:2 ());
    ("everything",
     Fault.make ~seed:6 ~drop:0.25 ~dup:0.2 ~reorder:0.2 ~delay:0.2
       ~max_delay:2
       ~crashes:[ { Fault.cr_pid = 1; cr_round = 2; cr_down = 2 } ]
       ~checkpoint_every:3 ());
  ]

let chain_edb n =
  let db = Database.create () in
  for i = 0 to n - 1 do
    ignore (Database.add_fact db "par" (Tuple.of_ints [ i; i + 1 ]))
  done;
  db

let fixtures =
  [
    ("tc/example3",
     Result.get_ok
       (Strategy.example3 ~seed:0 ~nprocs:3 Workload.Progs.ancestor),
     chain_edb 10);
    ("tc/general",
     Result.get_ok
       (Strategy.general ~seed:0 ~nprocs:3 Workload.Progs.ancestor),
     chain_edb 10);
    ("nonlinear/general",
     Result.get_ok
       (Strategy.general ~seed:0 ~nprocs:2
          Workload.Progs.ancestor_nonlinear),
     chain_edb 8);
  ]

let () =
  let failures = ref 0 in
  List.iter
    (fun (fname, rw, edb) ->
      List.iter
        (fun (pname, plan) ->
          let config =
            Run_config.(
              default |> with_fault plan |> with_max_rounds 50_000)
          in
          let report = Verify.check ~config rw ~edb in
          let f = report.Verify.stats.Stats.faults in
          if report.Verify.equal_answers then
            Printf.printf
              "ok   %-18s %-16s drops=%d retransmits=%d crashes=%d\n"
              fname pname f.Stats.drops f.Stats.retransmits f.Stats.crashes
          else begin
            incr failures;
            Printf.printf "FAIL %-18s %-16s answers differ\n" fname pname
          end)
        plans)
    fixtures;
  if !failures > 0 then begin
    Printf.printf "%d fault-matrix cell(s) failed\n" !failures;
    exit 1
  end
