(* Shared test utilities: Alcotest testables and small fixtures. *)

open Datalog

let const_t = Alcotest.testable Const.pp Const.equal
let tuple_t = Alcotest.testable Tuple.pp Tuple.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal
let database_t = Alcotest.testable Database.pp Database.equal
let atom_t = Alcotest.testable Atom.pp Atom.equal

let rule_t =
  Alcotest.testable Rule.pp (fun a b ->
      String.equal (Rule.to_string a) (Rule.to_string b))

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let edb_of_edges ?(pred = "par") edges =
  let db = Database.create () in
  List.iter
    (fun (a, b) -> ignore (Database.add_fact db pred (Tuple.of_ints [ a; b ])))
    edges;
  db

let ancestor = Workload.Progs.ancestor

let relation_of_pairs pairs =
  Relation.of_list ~arity:2 (List.map (fun (a, b) -> Tuple.of_ints [ a; b ]) pairs)

(* The transitive closure of an edge list, computed independently of
   the engines under test (plain Floyd–Warshall reachability). *)
let closure_pairs edges =
  let nodes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add index n i) nodes;
  let n = List.length nodes in
  let reach = Array.make_matrix n n false in
  List.iter
    (fun (a, b) ->
      reach.(Hashtbl.find index a).(Hashtbl.find index b) <- true)
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  let arr = Array.of_list nodes in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if reach.(i).(j) then acc := (arr.(i), arr.(j)) :: !acc
    done
  done;
  !acc

let anc_relation db = Database.get db "anc"

(* ------------------------------------------------------------------ *)
(* Functorized both-runtimes harness.                                  *)
(*                                                                     *)
(* Tests that must hold on either executor are written against         *)
(* [Pardatalog.Runtime.S] and instantiated per runtime (or handed a    *)
(* first-class module and instantiated inline).                        *)
(* ------------------------------------------------------------------ *)

module Harness (R : Pardatalog.Runtime.S) = struct
  include R

  let run ?(config = Pardatalog.Run_config.default) rw ~edb =
    R.run ~config rw ~edb

  (* Does [pred] pooled by this runtime equal the sequential least
     model's relation? *)
  let agrees_with_sequential ?config ~pred program rw ~edb =
    let seq, _ = Seminaive.evaluate program edb in
    let r = run ?config rw ~edb in
    Relation.equal (Database.get seq pred)
      (Database.get r.Pardatalog.Sim_runtime.answers pred)
end

module Sim_harness = Harness (Pardatalog.Runtime.Sim)
module Domain_harness = Harness (Pardatalog.Runtime.Domains)

(* Run a rewrite on the simulated runtime and return the pooled anc
   relation plus stats. *)
let run_sim rw edb =
  let r = Sim_harness.run rw ~edb in
  (r.Pardatalog.Sim_runtime.answers, r.Pardatalog.Sim_runtime.stats)
