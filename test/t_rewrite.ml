(* Tests for the Rewrite transformation and the Sim_runtime executor,
   checking Theorems 1, 2, 4, 5, 6 and the properties claimed for
   Examples 1, 2, 3 and 8. *)

open Datalog
open Pardatalog
open Helpers

let nprocs = 4
let h1 = Hash_fn.modulo ~nprocs ~arity:1 ()

let uniform vars fn = Rewrite.Uniform (Discriminant.make ~vars ~fn)

let example1_rw () =
  Rewrite.make ancestor
    ~policies:[ uniform [ "Y" ] h1; uniform [ "Y" ] h1 ]

let example3_rw () =
  Rewrite.make ancestor
    ~policies:[ uniform [ "X" ] h1; uniform [ "Z" ] h1 ]

let edges = Workload.Graphgen.binary_tree ~depth:4
let edb = edb_of_edges edges
let expected = relation_of_pairs (closure_pairs edges)

let rewrite_tests =
  [
    case "out/in naming round-trips" (fun () ->
        Alcotest.(check string) "out" "anc@out" (Rewrite.out_pred "anc");
        Alcotest.(check string) "in" "anc@in" (Rewrite.in_pred "anc");
        Alcotest.(check string) "strip out" "anc"
          (Rewrite.original_pred "anc@out");
        Alcotest.(check string) "strip in" "anc"
          (Rewrite.original_pred "anc@in");
        Alcotest.(check string) "plain" "anc" (Rewrite.original_pred "anc"));
    case "one program per processor" (fun () ->
        let rw = example3_rw () in
        Alcotest.(check int) "count" nprocs (Array.length rw.Rewrite.programs));
    case "processing rules read @in and write @out" (fun () ->
        let rw = example3_rw () in
        let prog = rw.Rewrite.programs.(0) in
        List.iter
          (fun (r : Rule.t) ->
            Alcotest.(check string) "head" "anc@out" r.head.Atom.pred;
            List.iter
              (fun (a : Atom.t) ->
                Alcotest.(check bool)
                  "body is @in or base" true
                  (String.equal a.pred "anc@in" || String.equal a.pred "par"))
              r.body)
          (Program.rules prog));
    case "uniform policies guard every rule with their own pid" (fun () ->
        let rw = example3_rw () in
        Array.iteri
          (fun pid prog ->
            List.iter
              (fun (r : Rule.t) ->
                match r.Rule.guards with
                | [ g ] -> Alcotest.(check int) "expect" pid g.Rule.gexpect
                | gs ->
                  Alcotest.failf "expected one guard, got %d" (List.length gs))
              (Program.rules prog))
          rw.Rewrite.programs);
    case "local policies are unguarded" (fun () ->
        let rw =
          Result.get_ok (Strategy.wolfson_redundant ~nprocs ancestor)
        in
        let prog = rw.Rewrite.programs.(1) in
        let guard_counts =
          List.map
            (fun (r : Rule.t) -> List.length r.Rule.guards)
            (Program.rules prog)
        in
        (* Exit rule guarded, recursive rule not. *)
        Alcotest.(check (list int)) "guards" [ 1; 0 ] guard_counts);
    case "policy count mismatch raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Rewrite.make ancestor ~policies:[ uniform [ "Y" ] h1 ]);
             false
           with Invalid_argument _ -> true));
    case "foreign discriminating variable raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rewrite.make ancestor
                  ~policies:[ uniform [ "Y" ] h1; uniform [ "W" ] h1 ]);
             false
           with Invalid_argument _ -> true));
    case "processor-count disagreement raises" (fun () ->
        let h_other = Hash_fn.modulo ~nprocs:3 ~arity:1 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rewrite.make ancestor
                  ~policies:[ uniform [ "Y" ] h1; uniform [ "Y" ] h_other ]);
             false
           with Invalid_argument _ -> true));
    case "local policy without derived atoms raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rewrite.make ancestor
                  ~policies:
                    [
                      Rewrite.Local
                        {
                          vars = [ "Y" ];
                          fn_for =
                            (fun i -> Hash_fn.constant ~nprocs ~arity:1 i);
                        };
                      uniform [ "Y" ] h1;
                    ]);
             false
           with Invalid_argument _ -> true));
    case "local policy with uncovered sequence raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rewrite.make ancestor
                  ~policies:
                    [
                      uniform [ "Y" ] h1;
                      (* X is not in the recursive atom anc(Z,Y). *)
                      Rewrite.Local
                        {
                          vars = [ "X" ];
                          fn_for =
                            (fun i -> Hash_fn.constant ~nprocs ~arity:1 i);
                        };
                    ]);
             false
           with Invalid_argument _ -> true));
    case "example1 fragments nothing (par is shared)" (fun () ->
        let rw = example1_rw () in
        Alcotest.(check (list (pair string bool)))
          "shared"
          [ ("par", false) ]
          rw.Rewrite.fragmented);
    case "example3 fragments par disjointly and completely" (fun () ->
        let rw = example3_rw () in
        Alcotest.(check (list (pair string bool)))
          "fragmented"
          [ ("par", true) ]
          rw.Rewrite.fragmented;
        (* Residency must be a partition: exactly one processor per
           tuple? Example 3 fragments par by h(X) for the exit rule and
           h(Z) (second column) for the recursive rule, so a tuple is
           resident where either fragment claims it. Every tuple must be
           resident somewhere, and the union of residents must cover
           both occurrence fragments. *)
        Relation.iter
          (fun t ->
            let residents =
              List.filter
                (fun pid -> rw.Rewrite.resident pid "par" t)
                (List.init nprocs Fun.id)
            in
            Alcotest.(check bool) "resident somewhere" true (residents <> []);
            Alcotest.(check bool) "at most two residents" true
              (List.length residents <= 2))
          (Database.get edb "par"));
    case "sends of example1 are unicast" (fun () ->
        let rw = example1_rw () in
        List.iter
          (fun (s : Rewrite.send_spec) ->
            Alcotest.(check bool) "unicast" true s.Rewrite.ss_unicast)
          rw.Rewrite.sends);
    case "sends of example2 broadcast" (fun () ->
        let partition t =
          match Tuple.get t 0 with Const.Int i -> i mod nprocs | _ -> 0
        in
        let rw = Result.get_ok (Strategy.example2 ~nprocs ~partition ancestor) in
        List.iter
          (fun (s : Rewrite.send_spec) ->
            Alcotest.(check bool) "broadcast" false s.Rewrite.ss_unicast;
            Alcotest.(check int) "all destinations" nprocs
              (List.length (s.Rewrite.ss_route 0 (Tuple.of_ints [ 1; 2 ]))))
          rw.Rewrite.sends);
  ]

(* --- Runtime checks: Theorems 1/2 on the three Section 4 examples --- *)

let check_example name rw =
  let report = Verify.check rw ~edb in
  Alcotest.(check bool) (name ^ " equal answers (Theorem 1)") true
    report.Verify.equal_answers;
  Alcotest.(check bool) (name ^ " non-redundant (Theorem 2)") true
    report.Verify.non_redundant;
  report

let sim_tests =
  [
    case "example1: correct, non-redundant, no communication" (fun () ->
        let report = check_example "ex1" (example1_rw ()) in
        Alcotest.(check int) "no inter-processor messages" 0
          report.Verify.messages);
    case "example2: correct, non-redundant, broadcasts" (fun () ->
        let partition t =
          match Tuple.get t 0 with Const.Int i -> i mod nprocs | _ -> 0
        in
        let rw = Result.get_ok (Strategy.example2 ~nprocs ~partition ancestor) in
        let report = check_example "ex2" rw in
        Alcotest.(check bool) "communicates" true (report.Verify.messages > 0));
    case "example3: correct, non-redundant, less traffic than example2"
      (fun () ->
        let partition t =
          match Tuple.get t 0 with Const.Int i -> i mod nprocs | _ -> 0
        in
        let rw2 = Result.get_ok (Strategy.example2 ~nprocs ~partition ancestor) in
        let r2 = check_example "ex2" rw2 in
        let r3 = check_example "ex3" (example3_rw ()) in
        Alcotest.(check bool) "fewer messages" true
          (r3.Verify.messages <= r2.Verify.messages));
    case "example3 base fragments are disjoint across processors" (fun () ->
        let rw = example3_rw () in
        let r = Sim_runtime.run rw ~edb in
        let total_resident =
          Stats.total_base_resident r.Sim_runtime.stats
        in
        (* Exit occurrence fragments by h(X), recursive by h(Z): a par
           tuple is resident at h of its first column and h of its
           second column, i.e. at most 2 copies. *)
        let npar = Database.cardinal edb "par" in
        Alcotest.(check bool) "at most 2 copies" true
          (total_resident <= 2 * npar);
        Alcotest.(check bool) "less than full replication" true
          (total_resident < nprocs * npar));
    case "example1 replicates the base relation fully" (fun () ->
        let rw = example1_rw () in
        let r = Sim_runtime.run rw ~edb in
        Alcotest.(check int) "full copies"
          (nprocs * Database.cardinal edb "par")
          (Stats.total_base_resident r.Sim_runtime.stats));
    case "answers match the closure exactly" (fun () ->
        let answers, _ = run_sim (example3_rw ()) edb in
        Alcotest.check relation_t "closure" expected (anc_relation answers));
    case "single processor degenerates to sequential" (fun () ->
        let h = Hash_fn.modulo ~nprocs:1 ~arity:1 () in
        let rw =
          Rewrite.make ancestor
            ~policies:
              [
                Rewrite.Uniform (Discriminant.make ~vars:[ "X" ] ~fn:h);
                Rewrite.Uniform (Discriminant.make ~vars:[ "Z" ] ~fn:h);
              ]
        in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check int) "exact firings" report.Verify.sequential_firings
          report.Verify.parallel_firings;
        Alcotest.(check int) "no messages" 0 report.Verify.messages);
    case "wolfson scheme is communication-free but may duplicate work"
      (fun () ->
        let rw =
          Result.get_ok (Strategy.wolfson_redundant ~nprocs ancestor)
        in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check int) "no messages" 0 report.Verify.messages);
    case "example8: general scheme on nonlinear ancestor (Theorems 5/6)"
      (fun () ->
        let rw =
          Result.get_ok
            (Strategy.general ~nprocs Workload.Progs.ancestor_nonlinear)
        in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal (Theorem 5)" true
          report.Verify.equal_answers;
        Alcotest.(check bool) "non-redundant (Theorem 6)" true
          report.Verify.non_redundant);
    case "general scheme on same-generation" (fun () ->
        let rng = Workload.Rng.create ~seed:11 in
        let sg_edb = Workload.Edb.same_generation rng ~people:24 ~parents_per:2 in
        let rw =
          Result.get_ok
            (Strategy.general ~nprocs Workload.Progs.same_generation)
        in
        let report = Verify.check rw ~edb:sg_edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check bool) "non-redundant" true report.Verify.non_redundant);
    case "general scheme on mutually recursive predicates" (fun () ->
        let p =
          Parser.program_exn
            "odd(X,Y) :- e(X,Y). even(X,Y) :- odd(X,Z), e(Z,Y).
             odd(X,Y) :- even(X,Z), e(Z,Y)."
        in
        let edb = edb_of_edges ~pred:"e" (Workload.Graphgen.cycle 7) in
        let rw = Result.get_ok (Strategy.general ~nprocs p) in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check bool) "non-redundant" true report.Verify.non_redundant);
    case "program base facts reach every processor" (fun () ->
        let p =
          Parser.program_exn
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y).
             par(1,2). par(2,3)."
        in
        let rw =
          Rewrite.make p ~policies:[ uniform [ "Y" ] h1; uniform [ "Y" ] h1 ]
        in
        let r = Sim_runtime.run rw ~edb:(Database.create ()) in
        Alcotest.check relation_t "closure"
          (relation_of_pairs [ (1, 2); (2, 3); (1, 3) ])
          (anc_relation r.Sim_runtime.answers));
    case "resend_all changes traffic, not answers" (fun () ->
        let rw = example3_rw () in
        let normal = Sim_runtime.run rw ~edb in
        let noisy =
          Sim_runtime.run
            ~config:Run_config.(default |> with_resend_all true)
            rw ~edb
        in
        Alcotest.check relation_t "same answers"
          (anc_relation normal.Sim_runtime.answers)
          (anc_relation noisy.Sim_runtime.answers);
        Alcotest.(check bool) "more traffic" true
          (Stats.total_messages ~include_self:true noisy.Sim_runtime.stats
           > Stats.total_messages ~include_self:true normal.Sim_runtime.stats));
    case "round budget enforcement" (fun () ->
        let rw = example3_rw () in
        match
          Sim_runtime.run
            ~config:Run_config.(default |> with_max_rounds 1)
            rw ~edb
        with
        | _ -> Alcotest.fail "expected Round_budget_exceeded"
        | exception Sim_runtime.Round_budget_exceeded { round; stats } ->
          Alcotest.(check int) "round at abort" 1 round;
          Alcotest.(check int) "partial stats carry the round" 1
            stats.Stats.rounds;
          Alcotest.(check bool) "partial stats carry channel traffic" true
            (Stats.total_messages ~include_self:true stats > 0);
          Alcotest.(check int) "no pooling on abort" 0
            stats.Stats.pooled_tuples);
  ]

let suites = [ ("rewrite", rewrite_tests); ("sim_runtime", sim_tests) ]
