#!/bin/sh
# Daemon smoke over a Unix socket: start datalogd with a resident
# program, answer a query end to end, survive a burst of concurrent
# clients, then drain cleanly on SIGTERM -- finishing in-flight work,
# unlinking the socket, and flushing metrics with no leaked sessions.
#
# Usage: serve_smoke.sh DATALOGD
set -eu

datalogd=$1
dir=$(mktemp -d "${TMPDIR:-/tmp}/serve_smoke.XXXXXX")
server=
cleanup () {
  [ -n "$server" ] && kill "$server" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT
sock="$dir/d.sock"

cat > "$dir/anc.dl" <<'EOF'
anc(X,Y) :- par(X,Y).
anc(X,Y) :- par(X,Z), anc(Z,Y).
EOF
i=0
: > "$dir/chain.dl"
while [ "$i" -lt 19 ]; do
  echo "par($i,$((i + 1)))." >> "$dir/chain.dl"
  i=$((i + 1))
done

"$datalogd" --socket "$sock" --runtime sim -j 2 \
  --load anc="$dir/anc.dl" --facts anc="$dir/chain.dl" \
  --metrics-out "$dir/metrics.json" > "$dir/server.log" 2>&1 &
server=$!

fail () {
  echo "serve_smoke: $1" >&2
  cat "$dir/server.log" >&2 || true
  exit 1
}

# One client, end to end. The client retries the connect internally
# while the server is still binding, so no sleep is needed.
out=$(printf 'PING\nQUERY id=q1 prog=anc\nQUIT\n' \
        | "$datalogd" --connect "$sock") \
  || fail "single client exited nonzero"
echo "$out" | grep -q 'RESULT id=q1 status=ok rows=190' \
  || fail "unexpected single-client answer: $out"

# A burst of concurrent clients, each under its own tenant (so the
# per-tenant budget does not serialise the burst) and each retrying
# with backoff so a transient BUSY cannot fail the smoke.
n=8
c=0
while [ "$c" -lt "$n" ]; do
  printf 'QUERY id=c%s prog=anc\n' "$c" \
    | "$datalogd" --connect "$sock" --tenant "c$c" \
        --retry --retry-max 20 --jitter-seed "$c" \
        > "$dir/client-$c.out" 2>&1 &
  eval "client_$c=\$!"
  c=$((c + 1))
done
c=0
while [ "$c" -lt "$n" ]; do
  eval "pid=\$client_$c"
  wait "$pid" || fail "concurrent client $c exited nonzero"
  grep -q "RESULT id=c$c status=ok rows=190" "$dir/client-$c.out" \
    || fail "concurrent client $c got the wrong reply"
  c=$((c + 1))
done

# Drain on SIGTERM: exit 0, socket unlinked, metrics flushed, and the
# session gauge back to zero (nothing leaked).
kill -TERM "$server"
wait "$server" || fail "server exited nonzero on SIGTERM"
server=
[ ! -e "$sock" ] || fail "socket not unlinked after drain"
[ -s "$dir/metrics.json" ] || fail "metrics not flushed on drain"
grep -q '"serve.active_sessions":0' "$dir/metrics.json" \
  || fail "sessions leaked across drain: $(cat "$dir/metrics.json")"
grep -q '"serve.drains":1' "$dir/metrics.json" \
  || fail "drain not recorded in metrics"
grep -q 'datalogd: drained' "$dir/server.log" \
  || fail "drain summary missing from server log"

echo "serve_smoke: ok ($n concurrent clients, clean drain)"
