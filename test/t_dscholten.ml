(* Tests for Dijkstra-Scholten termination detection: the pure state
   machine, and the domain runtime running under it. *)

open Datalog
open Pardatalog
open Helpers

let ds_config = Run_config.(default |> with_detector Dijkstra_scholten)

let unit_tests =
  [
    case "root starts with a virtual deficit of N-1" (fun () ->
        let root = Dscholten.create ~pid:0 ~nprocs:4 in
        Alcotest.(check int) "deficit" 3 (Dscholten.deficit root);
        Alcotest.(check bool) "engaged" true (Dscholten.engaged root));
    case "non-roots start engaged with the root" (fun () ->
        let w = Dscholten.create ~pid:2 ~nprocs:4 in
        Alcotest.(check int) "deficit" 0 (Dscholten.deficit w);
        Alcotest.(check bool) "engaged" true (Dscholten.engaged w);
        match Dscholten.on_passive w with
        | `Ack_parent 0 -> ()
        | _ -> Alcotest.fail "expected detachment toward the root");
    case "engaged processes acknowledge data immediately" (fun () ->
        let w = Dscholten.create ~pid:1 ~nprocs:3 in
        (match Dscholten.on_data w ~src:2 with
         | `Ack_now 2 -> ()
         | _ -> Alcotest.fail "expected immediate ack");
        Alcotest.(check bool) "still engaged" true (Dscholten.engaged w));
    case "detached processes re-engage with the sender" (fun () ->
        let w = Dscholten.create ~pid:1 ~nprocs:3 in
        (match Dscholten.on_passive w with
         | `Ack_parent 0 -> ()
         | _ -> Alcotest.fail "expected detachment");
        (match Dscholten.on_data w ~src:2 with
         | `Engaged -> ()
         | _ -> Alcotest.fail "expected re-engagement");
        match Dscholten.on_passive w with
        | `Ack_parent 2 -> ()
        | _ -> Alcotest.fail "new parent should be the reactivator");
    case "outstanding deficits block detachment" (fun () ->
        let w = Dscholten.create ~pid:1 ~nprocs:2 in
        Dscholten.record_send w;
        (match Dscholten.on_passive w with
         | `Wait -> ()
         | _ -> Alcotest.fail "must wait for the ack");
        Dscholten.on_ack w;
        match Dscholten.on_passive w with
        | `Ack_parent 0 -> ()
        | _ -> Alcotest.fail "expected detachment after the ack");
    case "root detects only at zero deficit" (fun () ->
        let root = Dscholten.create ~pid:0 ~nprocs:2 in
        (match Dscholten.on_passive root with
         | `Wait -> ()
         | _ -> Alcotest.fail "child still engaged");
        Dscholten.on_ack root;
        match Dscholten.on_passive root with
        | `Terminated -> ()
        | _ -> Alcotest.fail "expected termination");
    case "single-process system terminates immediately" (fun () ->
        let root = Dscholten.create ~pid:0 ~nprocs:1 in
        match Dscholten.on_passive root with
        | `Terminated -> ()
        | _ -> Alcotest.fail "expected termination");
    case "simulated tree episode" (fun () ->
        (* 0 engages 1 and 2 virtually; 1 sends work to 2; 2 finishes
           first but 1's message keeps the count straight. *)
        let states = Array.init 3 (fun pid -> Dscholten.create ~pid ~nprocs:3) in
        Dscholten.record_send states.(1);
        (match Dscholten.on_data states.(2) ~src:1 with
         | `Ack_now 1 -> Dscholten.on_ack states.(1)
         | `Engaged -> Alcotest.fail "2 was still engaged with the root"
         | `Ack_now _ -> Alcotest.fail "wrong ack target");
        (* Both workers drain and detach. *)
        (match Dscholten.on_passive states.(2) with
         | `Ack_parent 0 -> Dscholten.on_ack states.(0)
         | _ -> Alcotest.fail "2 detaches to root");
        (match Dscholten.on_passive states.(1) with
         | `Ack_parent 0 -> Dscholten.on_ack states.(0)
         | _ -> Alcotest.fail "1 detaches to root");
        match Dscholten.on_passive states.(0) with
        | `Terminated -> ()
        | _ -> Alcotest.fail "root should detect");
  ]

let edges = Workload.Graphgen.binary_tree ~depth:5
let edb = edb_of_edges edges

let runtime_tests =
  [
    slow_case "domain runtime under DS equals sequential" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r = Domain_runtime.run ~config:ds_config rw ~edb in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "DS and Safra produce identical answers" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let a = Domain_runtime.run rw ~edb in
        let b =
          Domain_runtime.run ~config:ds_config rw ~edb
        in
        Alcotest.check relation_t "equal"
          (anc_relation a.Sim_runtime.answers)
          (anc_relation b.Sim_runtime.answers));
    slow_case "DS terminates with no communication scheme" (fun () ->
        let rw = Result.get_ok (Strategy.no_communication ~nprocs:4 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r =
          Domain_runtime.run ~config:ds_config rw ~edb
        in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "DS on a single processor" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:1 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r =
          Domain_runtime.run ~config:ds_config rw ~edb
        in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "DS on the nonlinear general scheme" (fun () ->
        let rw =
          Result.get_ok
            (Strategy.general ~nprocs:3 Workload.Progs.ancestor_nonlinear)
        in
        let small = edb_of_edges (Workload.Graphgen.chain 12) in
        let seq, _ = Seminaive.evaluate ancestor small in
        let r =
          Domain_runtime.run ~config:ds_config rw
            ~edb:small
        in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
  ]

let suites =
  [ ("dscholten", unit_tests); ("dscholten-runtime", runtime_tests) ]
