(* Fast observability smoke, wired into `dune runtest` through the
   @obs alias: one small simulator run with both sinks enabled must
   cover every (pid, round, phase), export Chrome trace-event JSON,
   and account for exactly the Stats totals in the metrics registry. *)

open Pardatalog

let failures = ref 0

let claim name ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" name
  end

let () =
  let edb =
    Workload.Edb.of_edges (List.init 10 (fun i -> (i, i + 1)))
  in
  let rw =
    Result.get_ok (Strategy.example3 ~seed:0 ~nprocs:2 Workload.Progs.ancestor)
  in
  let trace = Obs.Trace.create () in
  let metrics = Obs.Metrics.create () in
  let config = Run_config.(default |> with_obs { Obs.trace; metrics }) in
  let r = Sim_runtime.run ~config rw ~edb in
  let s = r.Sim_runtime.stats in
  claim "metrics firings equal Stats firings"
    (Obs.Metrics.counter metrics "runtime.firings" = Stats.total_firings s);
  claim "metrics tuples_sent equal Stats messages"
    (Obs.Metrics.counter metrics "runtime.tuples_sent"
    = Stats.total_messages ~include_self:true s);
  let covered = ref true in
  for pid = 0 to s.Stats.nprocs - 1 do
    for round = 0 to s.Stats.rounds - 1 do
      List.iter
        (fun phase ->
          covered := !covered && Obs.Trace.covered trace ~pid ~round phase)
        Obs.Trace.[ Sending; Receiving; Processing; Termination_test ]
    done
  done;
  claim "the trace covers every (pid, round, phase)" !covered;
  let json = String.trim (Obs.Trace.to_chrome_json trace) in
  claim "the export is a JSON object"
    (String.length json > 2 && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  if !failures = 0 then print_endline "obs smoke ok";
  exit (if !failures = 0 then 0 else 1)
