(* The static checker: one seeded-defect program per diagnostic code,
   plus properties tying the static claims to dynamic executions — the
   predicted network graph must contain every channel a run uses, and a
   claimed communication-free choice must actually run with zero
   inter-processor messages. *)

open Datalog
open Pardatalog

let parse = Parser.program_exn

let has ?line code diags =
  List.exists
    (fun (d : Check.Diagnostic.t) ->
      String.equal d.Check.Diagnostic.code code
      && (match line with
          | None -> true
          | Some l -> d.Check.Diagnostic.loc = Some l))
    diags

let check_has ?line src code =
  let diags = Check.Engine.check_program (parse src) in
  Alcotest.(check bool)
    (Printf.sprintf "%s reported" code)
    true (has ?line code diags)

let scheme_has ?spec ~ve ~vr src code =
  let report = Check.Scheme.check_scheme ?spec ~ve ~vr (parse src) in
  Alcotest.(check bool)
    (Printf.sprintf "%s reported" code)
    true
    (has code report.Check.Scheme.diagnostics)

let anc = "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), par(Z,Y).\n"

(* ------------------------------------------------------------------ *)
(* Program-level codes                                                 *)
(* ------------------------------------------------------------------ *)

let test_e001 () = check_has ~line:1 "p(X,Y) :- q(X).\n" "E001"

let test_e002 () =
  check_has ~line:1 "p(X) :- q(X), not r(Y).\n" "E002"

let test_e003 () =
  (* Guards only arise from the rewriting, so build the rule directly:
     a guard over a variable the body does not bind. *)
  let guard =
    { Rule.gname = "h"; gvars = [| "Z" |]; gfn = (fun _ -> 0); gexpect = 0 }
  in
  let rule =
    Rule.make ~loc:7 ~guards:[ guard ]
      (Atom.make "p" [ Term.var "X" ])
      [ Atom.make "q" [ Term.var "X" ] ]
  in
  let diags = Check.Engine.check_program (Program.make [ rule ]) in
  Alcotest.(check bool) "E003 reported" true (has ~line:7 "E003" diags)

let test_e004 () =
  check_has ~line:2 "p(X) :- q(X,Y).\nr(X) :- q(X).\n" "E004"

let test_e005 () =
  check_has ~line:2 "q(1).\nr(X) :- q(X), not r(X).\n" "E005"

let test_w001 () = check_has ~line:1 "p(1) :- q(1).\nr(X) :- q(X).\n" "W001"

let test_w002 () =
  check_has ~line:2 "s(X) :- q(X,Y).\ns(A) :- q(A,B).\n" "W002"

let test_w003 () = check_has "p(X) :- q(X).\nv(5,6).\n" "W003"

let test_w004 () =
  let src = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).\nh(X) :- e(X,X).\n" in
  let diags = Check.Engine.check_program ~goal:"tc" (parse src) in
  Alcotest.(check bool) "W004 reported" true (has ~line:3 "W004" diags);
  (* Without a goal every unread predicate counts as an output. *)
  let diags = Check.Engine.check_program (parse src) in
  Alcotest.(check bool) "no W004 without goal" false (has "W004" diags)

let test_w005 () = check_has ~line:1 "t(X) :- t(X).\n" "W005"
let test_w006 () = check_has ~line:2 "q(1).\nr(X) :- q(X), not s(X).\ns(2).\n" "W006"

let test_i001 () = check_has ~line:2 anc "I001"

let test_i002 () =
  check_has "p(X) :- q(X).\nr(X) :- p(X).\n" "I002"

let test_i004 () =
  check_has
    "even(X) :- zero(X).\neven(X) :- succ(Y,X), odd(Y).\n\
     odd(X) :- succ(Y,X), even(Y).\n"
    "I004"

let test_clean () =
  (* Without --goal the engine also notes that reachability was
     skipped (I005); a clean program yields exactly those two notes. *)
  let diags = Check.Engine.check_program (parse anc) in
  List.iter
    (fun (d : Check.Diagnostic.t) ->
      Alcotest.(check bool)
        "only the classification and reachability notes" true
        (List.mem d.Check.Diagnostic.code [ "I001"; "I005" ]))
    diags;
  Alcotest.(check int) "two notes" 2 (List.length diags)

(* ------------------------------------------------------------------ *)
(* Scheme-level codes                                                  *)
(* ------------------------------------------------------------------ *)

let test_e101 () =
  scheme_has ~ve:[ "X" ] ~vr:[ "X" ] "p(X) :- q(X).\n" "E101"

let test_e102 () = scheme_has ~ve:[ "X" ] ~vr:[ "Q" ] anc "E102"
let test_e103 () = scheme_has ~ve:[] ~vr:[ "X" ] anc "E103"
let test_w101 () = scheme_has ~ve:[ "Y" ] ~vr:[ "Y" ] anc "W101"

let test_w102 () =
  scheme_has ~ve:[ "X"; "Y" ] ~vr:[ "X"; "Z" ] anc "W102"

let test_i100_i101 () =
  let report =
    Check.Scheme.check_scheme ~ve:[ "X" ] ~vr:[ "X" ] (parse anc)
  in
  let diags = report.Check.Scheme.diagnostics in
  Alcotest.(check bool) "I100" true (has "I100" diags);
  Alcotest.(check bool) "I101" true (has "I101" diags);
  Alcotest.(check bool) "communication_free" true
    report.Check.Scheme.communication_free

let test_i102 () =
  (* Same generation: the dataflow graph is empty, so Theorem 3 gives
     no communication-free choice at all. *)
  scheme_has ~ve:[ "X" ] ~vr:[ "U" ]
    "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,U), sg(U,V), down(V,Y).\n"
    "I102"

let test_i103_i104 () =
  let report =
    Check.Scheme.check_scheme ~spec:Hash_fn.Bitvec ~ve:[ "X" ] ~vr:[ "X" ]
      (parse anc)
  in
  let diags = report.Check.Scheme.diagnostics in
  Alcotest.(check bool) "I103" true (has "I103" diags);
  Alcotest.(check bool) "I104" true (has "I104" diags);
  match report.Check.Scheme.predicted with
  | Some net ->
    Alcotest.(check int) "no cross edges" 0
      (Netgraph.edge_count (Netgraph.without_self net))
  | None -> Alcotest.fail "expected a predicted network"

let test_i105 () = scheme_has ~ve:[ "X" ] ~vr:[ "X" ] anc "I105"

let test_exit_codes () =
  let open Check.Diagnostic in
  let e = make ~code:"E001" ~severity:Error "e"
  and w = make ~code:"W001" ~severity:Warning "w"
  and i = make ~code:"I001" ~severity:Info "i" in
  Alcotest.(check int) "errors fail" 1 (exit_code ~strict:false [ e; i ]);
  Alcotest.(check int) "warnings pass" 0 (exit_code ~strict:false [ w; i ]);
  Alcotest.(check int) "strict warnings fail" 1 (exit_code ~strict:true [ w ]);
  Alcotest.(check int) "notes always pass" 0 (exit_code ~strict:true [ i ])

let test_registry_covers_engine () =
  (* Every code the passes can emit is described in the registry. *)
  List.iter
    (fun code ->
      match Check.Diagnostic.describe code with
      | Some _ -> ()
      | None -> Alcotest.fail (code ^ " missing from registry"))
    [ "E001"; "E002"; "E003"; "E004"; "E005"; "E101"; "E102"; "E103";
      "W001"; "W002"; "W003"; "W004"; "W005"; "W006"; "W101"; "W102";
      "I001"; "I002"; "I004"; "I100"; "I101"; "I102"; "I103"; "I104";
      "I105" ]

(* ------------------------------------------------------------------ *)
(* Static claims vs dynamic executions                                 *)
(* ------------------------------------------------------------------ *)

(* The checker's Section 5 prediction must be a supergraph of the
   channels an actual run uses, for random sirups and random linear
   discriminating forms (the run's function is drawn from the family
   the spec describes). *)
let prop_prediction_contains_run =
  QCheck.Test.make ~count:60
    ~name:"check: predicted network contains observed channels"
    T_random_sirups.derive_config_arb
    (fun (gs, seed, coeffs) ->
      let program = parse gs.T_random_sirups.gs_source in
      match Analysis.as_sirup program with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
        let k = Array.length coeffs in
        let rec_vars = Atom.vars s.Analysis.rec_atom in
        if List.length rec_vars < k then QCheck.assume_fail ()
        else begin
          let vr = List.filteri (fun i _ -> i < k) rec_vars in
          let positions =
            match Discriminant.covered_positions vr s.Analysis.rec_atom with
            | Some ps -> ps
            | None -> [||]
          in
          let exit_head = s.Analysis.exit_rule.Rule.head in
          let ve =
            Array.to_list
              (Array.map
                 (fun p ->
                   match exit_head.Atom.args.(p) with
                   | Term.Var v -> v
                   | Term.Const _ -> "!")
                 positions)
          in
          if List.mem "!" ve || Array.length positions <> k then
            QCheck.assume_fail ()
          else begin
            let lo =
              Array.fold_left (fun acc c -> acc + min 0 c) 0 coeffs
            in
            let spec = Hash_fn.Linear { coeffs; lo } in
            let report =
              Check.Scheme.check_scheme ~spec ~ve ~vr program
            in
            match report.Check.Scheme.predicted with
            | None -> QCheck.assume_fail ()
            | Some predicted ->
              let h =
                Hash_fn.linear ~seed ~coeffs:(Array.to_list coeffs) ()
              in
              (match
                 ( Discriminant.check_for_rule
                     (Discriminant.make ~vars:ve ~fn:h)
                     s.Analysis.exit_rule,
                   Discriminant.check_for_rule
                     (Discriminant.make ~vars:vr ~fn:h)
                     s.Analysis.rec_rule )
               with
               | Ok (), Ok () ->
                 let rw =
                   Rewrite.make program
                     ~policies:
                       (List.map
                          (fun (r : Rule.t) ->
                            if r == s.Analysis.rec_rule then
                              Rewrite.Uniform
                                (Discriminant.make ~vars:vr ~fn:h)
                            else
                              Rewrite.Uniform
                                (Discriminant.make ~vars:ve ~fn:h))
                          (Program.rules program))
                 in
                 let edb = T_random_sirups.edb_for gs seed in
                 let r = Sim_runtime.run rw ~edb in
                 Verify.channels_within r.Sim_runtime.stats predicted
               | _ -> QCheck.assume_fail ())
          end
        end)

(* Whenever the checker claims a communication-free choice exists
   (Theorem 3), Strategy.no_communication must indeed run with zero
   inter-processor messages. *)
let prop_free_choice_is_free =
  QCheck.Test.make ~count:60
    ~name:"check: claimed free choice runs with zero messages"
    T_random_sirups.config_arb
    (fun (gs, n, seed, _) ->
      let program = parse gs.T_random_sirups.gs_source in
      match Analysis.as_sirup program with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
        let ve = Atom.vars s.Analysis.exit_rule.Rule.head in
        let vr = Atom.vars s.Analysis.rec_atom in
        if ve = [] || vr = [] then QCheck.assume_fail ()
        else begin
          let report = Check.Scheme.check_scheme ~ve ~vr program in
          match report.Check.Scheme.free_choice with
          | None -> QCheck.assume_fail ()
          | Some _ ->
            (match Strategy.no_communication ~seed ~nprocs:(max 2 n) program with
             | Error e -> Alcotest.fail ("no_communication refused: " ^ e)
             | Ok rw ->
               let edb = T_random_sirups.edb_for gs seed in
               let r = Sim_runtime.run rw ~edb in
               Stats.total_messages r.Sim_runtime.stats = 0)
        end)

let suites =
  [
    ( "check-engine",
      [
        Alcotest.test_case "E001 unsafe head" `Quick test_e001;
        Alcotest.test_case "E002 unsafe negation" `Quick test_e002;
        Alcotest.test_case "E003 unsafe guard" `Quick test_e003;
        Alcotest.test_case "E004 arity clash" `Quick test_e004;
        Alcotest.test_case "E005 unstratifiable" `Quick test_e005;
        Alcotest.test_case "W001 constants only" `Quick test_w001;
        Alcotest.test_case "W002 duplicate rule" `Quick test_w002;
        Alcotest.test_case "W003 unused facts" `Quick test_w003;
        Alcotest.test_case "W004 unreachable from goal" `Quick test_w004;
        Alcotest.test_case "W005 no exit rule" `Quick test_w005;
        Alcotest.test_case "W006 negation used" `Quick test_w006;
        Alcotest.test_case "I001 linear sirup" `Quick test_i001;
        Alcotest.test_case "I002 not a sirup" `Quick test_i002;
        Alcotest.test_case "I004 mutual recursion" `Quick test_i004;
        Alcotest.test_case "clean program" `Quick test_clean;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "registry complete" `Quick
          test_registry_covers_engine;
      ] );
    ( "check-scheme",
      [
        Alcotest.test_case "E101 not a sirup" `Quick test_e101;
        Alcotest.test_case "E102 Theorem 2 violated" `Quick test_e102;
        Alcotest.test_case "E103 empty sequence" `Quick test_e103;
        Alcotest.test_case "W101 broadcast" `Quick test_w101;
        Alcotest.test_case "W102 forgone free choice" `Quick test_w102;
        Alcotest.test_case "I100/I101 Theorem 2+3 hold" `Quick
          test_i100_i101;
        Alcotest.test_case "I102 acyclic dataflow" `Quick test_i102;
        Alcotest.test_case "I103/I104 prediction" `Quick test_i103_i104;
        Alcotest.test_case "I105 opaque spec" `Quick test_i105;
      ] );
    ( "check-vs-runtime",
      List.map QCheck_alcotest.to_alcotest
        [ prop_prediction_contains_run; prop_free_choice_is_free ] );
  ]
