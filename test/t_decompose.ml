(* Tests for the Dong-decomposition baseline. *)

open Datalog
open Pardatalog
open Helpers

(* Two disjoint chains shifted apart: two constant components. *)
let two_components =
  Workload.Graphgen.chain 10
  @ List.map (fun (a, b) -> (a + 100, b + 100)) (Workload.Graphgen.chain 10)

let decompose_tests =
  [
    case "check_program accepts ancestor" (fun () ->
        Alcotest.(check bool) "ok" true
          (Result.is_ok (Decompose.check_program ancestor)));
    case "check_program rejects rules with constants" (fun () ->
        let p = Parser.program_exn "p(X) :- q(X, 1)." in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Decompose.check_program p)));
    case "check_program rejects disconnected bodies" (fun () ->
        let p = Parser.program_exn "p(X,Y) :- q(X), r(Y)." in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Decompose.check_program p)));
    case "analyze counts components" (fun () ->
        let edb = edb_of_edges two_components in
        let a = Decompose.analyze ~nprocs:2 edb in
        Alcotest.(check int) "two components" 2 a.Decompose.component_count;
        Alcotest.(check (array int))
          "balanced tuple split" [| 9; 9 |] a.Decompose.tuples_per_proc);
    case "constants of one tuple share a component" (fun () ->
        let edb = edb_of_edges [ (1, 2); (2, 3) ] in
        let a = Decompose.analyze ~nprocs:3 edb in
        Alcotest.(check int) "one component" 1 a.Decompose.component_count;
        Alcotest.(check int) "same processor"
          (a.Decompose.assignment (Const.int 1))
          (a.Decompose.assignment (Const.int 3)));
    case "unknown constants go to processor 0" (fun () ->
        let edb = edb_of_edges [ (1, 2) ] in
        let a = Decompose.analyze ~nprocs:2 edb in
        Alcotest.(check int) "fallback" 0
          (a.Decompose.assignment (Const.int 999)));
    case "run is exact on multi-component data" (fun () ->
        let edb = edb_of_edges two_components in
        let seq, seq_stats = Seminaive.evaluate ancestor edb in
        match Decompose.run ancestor ~nprocs:2 edb with
        | Error e -> Alcotest.fail e
        | Ok (r, _) ->
          Alcotest.check relation_t "equal" (anc_relation seq)
            (anc_relation r.Sim_runtime.answers);
          Alcotest.(check int) "no messages" 0
            (Stats.total_messages ~include_self:true r.Sim_runtime.stats);
          Alcotest.(check int) "non-redundant"
            seq_stats.Seminaive.firings
            (Stats.total_firings r.Sim_runtime.stats));
    case "run is exact but unbalanced on connected data" (fun () ->
        let edb = edb_of_edges (Workload.Graphgen.cycle 20) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        match Decompose.run ancestor ~nprocs:4 edb with
        | Error e -> Alcotest.fail e
        | Ok (r, a) ->
          Alcotest.check relation_t "equal" (anc_relation seq)
            (anc_relation r.Sim_runtime.answers);
          Alcotest.(check int) "one component" 1 a.Decompose.component_count;
          (* All work on a single processor: the paper's scalability
             criticism. *)
          let fires =
            Array.map (fun p -> p.Stats.firings)
              r.Sim_runtime.stats.Stats.per_proc
          in
          let busy = Array.to_list fires |> List.filter (fun f -> f > 0) in
          Alcotest.(check int) "exactly one busy processor" 1
            (List.length busy));
    case "run propagates applicability errors" (fun () ->
        let p = Parser.program_exn "p(X) :- q(X, 1)." in
        match Decompose.run p ~nprocs:2 (Database.create ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rejection");
    case "run on same-generation families" (fun () ->
        (* Two disjoint families: two components under sg's program. *)
        let rng = Workload.Rng.create ~seed:14 in
        let fam1 = Workload.Edb.same_generation rng ~people:12 ~parents_per:2 in
        let edb = Database.copy fam1 in
        (* Shift the second family's ids by 1000. *)
        let shift t =
          Tuple.make
            (Array.map
               (function Const.Int i -> Const.int (i + 1000) | c -> c)
               (Tuple.to_array t))
        in
        Relation.iter
          (fun t -> ignore (Database.add_fact edb "par" (shift t)))
          (Database.get fam1 "par");
        Relation.iter
          (fun t -> ignore (Database.add_fact edb "person" (shift t)))
          (Database.get fam1 "person");
        let seq, _ = Seminaive.evaluate Workload.Progs.same_generation edb in
        match Decompose.run Workload.Progs.same_generation ~nprocs:2 edb with
        | Error e -> Alcotest.fail e
        | Ok (r, a) ->
          Alcotest.(check bool) "several components" true
            (a.Decompose.component_count >= 2);
          Alcotest.check relation_t "equal"
            (Database.get seq "sg")
            (Database.get r.Sim_runtime.answers "sg"));
  ]

let suites = [ ("decompose", decompose_tests) ]
