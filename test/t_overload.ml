(* Overload robustness: credit-based backpressure, resource budgets,
   and the adaptive Section 6 retention dial.

   The tentpole property: for random (workload, capacity, high-water,
   fault-plan) configurations, an adaptive run — per-processor alpha
   moved by backlog feedback while the computation executes — pools to
   exactly the sequential answers on both runtimes (Theorem 4 holds per
   tuple under the Local policy, so any dial trajectory is sound), and
   with capacity K the observed peak in-flight per channel never
   exceeds K. The deterministic cases pin down the watchdog (deadline,
   store and outbox budgets are structured Overload outcomes carrying
   partial stats, never hangs), the dial controller itself, and the
   bounded mailbox primitive under concurrent producers. *)

open Datalog
open Pardatalog
open Helpers

(* ------------------------------------------------------------------ *)
(* Random adaptive configurations                                      *)
(* ------------------------------------------------------------------ *)

type overload_cfg = {
  oc_capacity : int option;  (* per-channel credit *)
  oc_high_water : int;
  oc_alpha : int;  (* resting alpha, quarters *)
}

let overload_cfg_gen =
  QCheck.Gen.(
    let* oc_capacity =
      oneof [ return None; map (fun k -> Some k) (int_range 1 6) ]
    in
    let* oc_high_water = int_range 1 8 in
    let* oc_alpha = int_range 0 3 in
    return { oc_capacity; oc_high_water; oc_alpha })

let print_overload_cfg oc =
  Printf.sprintf "capacity=%s high_water=%d alpha=%d/4"
    (match oc.oc_capacity with
     | None -> "-"
     | Some k -> string_of_int k)
    oc.oc_high_water oc.oc_alpha

let adaptive_config_arb =
  QCheck.make
    ~print:(fun ((gs, n, seed, picks), oc, fc) ->
      Printf.sprintf "%s\nN=%d seed=%d picks=%s\n%s\n%s"
        gs.T_random_sirups.gs_source n seed
        (String.concat "," (List.map string_of_int picks))
        (print_overload_cfg oc) (T_fault.print_cfg fc))
    QCheck.Gen.(
      let* base = T_random_sirups.config_arb.QCheck.gen in
      let* oc = overload_cfg_gen in
      let* fc = T_fault.plan_cfg_gen in
      return (base, oc, fc))

let dial_of oc ~nprocs =
  Overload.dial
    ~alpha:(float_of_int oc.oc_alpha /. 4.0)
    ~high_water:oc.oc_high_water ~nprocs ()

(* The adaptive run pools to the sequential answers, and capacity K
   bounds the observed per-channel in-flight peak by K — under random
   fault plans, on whichever runtime the harness is instantiated
   with. *)
let prop_adaptive (module R : Runtime.S) ~count ~max_n =
  let module H = Harness (R) in
  QCheck.Test.make ~count
    ~name:
      (Printf.sprintf
         "adaptive runs = sequential; peak in-flight <= capacity (%s)" R.name)
    adaptive_config_arb
    (fun ((gs, n, seed, _), oc, fc) ->
      let n = min n max_n in
      let program = Parser.program_exn gs.T_random_sirups.gs_source in
      let dial = dial_of oc ~nprocs:n in
      match Strategy.adaptive_tradeoff ~seed ~nprocs:n ~dial program with
      | Error _ -> QCheck.assume_fail ()
      | Ok rw ->
        let edb = T_random_sirups.edb_for gs seed in
        let config =
          Run_config.(
            default
            |> with_fault (T_fault.plan_of fc ~nprocs:n)
            |> with_capacity oc.oc_capacity
            |> with_dial (Some dial)
            |> with_max_rounds 50_000)
        in
        let seq, _ = Seminaive.evaluate program edb in
        let r = H.run ~config rw ~edb in
        let peak = r.Sim_runtime.stats.Stats.peak_in_flight in
        Relation.equal (Database.get seq "t")
          (Database.get r.Sim_runtime.answers "t")
        && (match oc.oc_capacity with
            | None -> peak = 0
            | Some k -> peak <= k))

let prop_adaptive_sim =
  prop_adaptive (module Runtime.Sim) ~count:170 ~max_n:max_int

(* Same property on the true multicore runtime. *)
let prop_adaptive_domain =
  prop_adaptive (module Runtime.Domains) ~count:40 ~max_n:3

(* ------------------------------------------------------------------ *)
(* Deterministic backpressure cases                                    *)
(* ------------------------------------------------------------------ *)

let chain_edges n = List.init n (fun i -> (i, i + 1))

let example3_rw () =
  match Strategy.example3 ~seed:0 ~nprocs:2 ancestor with
  | Ok rw -> rw
  | Error msg -> Alcotest.fail msg

let backpressure_cases =
  [
    case "capacity 1 bounds in-flight and counts deferrals" (fun () ->
        let edges = chain_edges 12 in
        let rw = example3_rw () in
        let config = Run_config.(default |> with_capacity (Some 1)) in
        let r = Sim_runtime.run ~config rw ~edb:(edb_of_edges edges) in
        Alcotest.check relation_t "closure unchanged by backpressure"
          (relation_of_pairs (closure_pairs edges))
          (anc_relation r.Sim_runtime.answers);
        Alcotest.(check int) "peak in-flight is the credit" 1
          r.Sim_runtime.stats.Stats.peak_in_flight;
        Alcotest.(check bool) "senders actually stalled" true
          (r.Sim_runtime.stats.Stats.faults.Stats.credit_stalls > 0));
    case "unbounded runs leave the overload counters at zero" (fun () ->
        let r =
          Sim_runtime.run (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 8))
        in
        Alcotest.(check int) "no peak tracked" 0
          r.Sim_runtime.stats.Stats.peak_in_flight;
        Alcotest.(check int) "no stalls" 0
          r.Sim_runtime.stats.Stats.faults.Stats.credit_stalls);
    case "capacity composes with the reliable-delivery layer" (fun () ->
        let edges = chain_edges 12 in
        let rw = example3_rw () in
        let plan =
          Fault.make ~seed:3 ~drop:0.3
            ~crashes:[ { Fault.cr_pid = 1; cr_round = 3; cr_down = 2 } ]
            ()
        in
        let config =
          Run_config.(
            default |> with_fault plan |> with_capacity (Some 2)
            |> with_max_rounds 50_000)
        in
        let r = Sim_runtime.run ~config rw ~edb:(edb_of_edges edges) in
        Alcotest.check relation_t "closure survives faults under credit"
          (relation_of_pairs (closure_pairs edges))
          (anc_relation r.Sim_runtime.answers);
        Alcotest.(check bool) "peak bounded by the credit" true
          (r.Sim_runtime.stats.Stats.peak_in_flight <= 2));
    case "capacity is incompatible with resend_all" (fun () ->
        Alcotest.(check bool) "invalid_arg" true
          (try
             ignore
               (Sim_runtime.run
                  ~config:
                    Run_config.(
                      default |> with_capacity (Some 1)
                      |> with_resend_all true)
                  (example3_rw ())
                  ~edb:(edb_of_edges (chain_edges 4)));
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Watchdog: every breach is a structured outcome with partial stats   *)
(* ------------------------------------------------------------------ *)

let watchdog_cases =
  [
    case "deadline breach carries partial stats (sim)" (fun () ->
        let config =
          Run_config.(
            default
            |> with_limits { Overload.no_limits with deadline = Some 1e-9 })
        in
        match
          Sim_runtime.run ~config (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 10))
        with
        | _ -> Alcotest.fail "expected Overload"
        | exception Overload.Overload
            { reason = Deadline { seconds; _ }; stats } ->
          Alcotest.(check (float 0.0)) "limit echoed" 1e-9 seconds;
          Alcotest.(check int) "stats cover both processors" 2
            stats.Stats.nprocs
        | exception Overload.Overload _ ->
          Alcotest.fail "expected a Deadline reason");
    case "store budget names the offending processor (sim)" (fun () ->
        let config =
          Run_config.(
            default
            |> with_limits
                 { Overload.no_limits with max_store_rows = Some 5 })
        in
        match
          Sim_runtime.run ~config (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 10))
        with
        | _ -> Alcotest.fail "expected Overload"
        | exception Overload.Overload
            { reason = Store_budget { pid; rows; limit }; stats } ->
          Alcotest.(check int) "limit echoed" 5 limit;
          Alcotest.(check bool) "rows over budget" true (rows > 5);
          Alcotest.(check bool) "pid in range" true (pid >= 0 && pid < 2);
          Alcotest.(check bool) "work so far is observable" true
            (Array.exists
               (fun p -> p.Stats.firings > 0)
               stats.Stats.per_proc)
        | exception Overload.Overload _ ->
          Alcotest.fail "expected a Store_budget reason");
    case "outbox budget fires under a stalled channel (sim)" (fun () ->
        let config =
          Run_config.(
            default |> with_capacity (Some 1)
            |> with_limits
                 { Overload.no_limits with max_outbox_rows = Some 1 })
        in
        match
          Sim_runtime.run ~config (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 16))
        with
        | _ -> Alcotest.fail "expected Overload"
        | exception Overload.Overload
            { reason = Outbox_budget { limit; _ }; _ } ->
          Alcotest.(check int) "limit echoed" 1 limit
        | exception Overload.Overload _ ->
          Alcotest.fail "expected an Outbox_budget reason");
    case "deadline breach is structured on the domain runtime" (fun () ->
        let config =
          Run_config.(
            default
            |> with_limits { Overload.no_limits with deadline = Some 1e-9 })
        in
        match
          Domain_runtime.run ~config (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 10))
        with
        | _ -> Alcotest.fail "expected Overload"
        | exception Overload.Overload { reason = Deadline _; stats } ->
          Alcotest.(check int) "partial stats assembled" 2
            stats.Stats.nprocs
        | exception Overload.Overload _ ->
          Alcotest.fail "expected a Deadline reason");
    case "store budget is structured on the domain runtime" (fun () ->
        let config =
          Run_config.(
            default
            |> with_limits
                 { Overload.no_limits with max_store_rows = Some 5 })
        in
        match
          Domain_runtime.run ~config (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 10))
        with
        | _ -> Alcotest.fail "expected Overload"
        | exception Overload.Overload
            { reason = Store_budget { limit; _ }; _ } ->
          Alcotest.(check int) "limit echoed" 5 limit
        | exception Overload.Overload _ ->
          Alcotest.fail "expected a Store_budget reason");
    case "limits validation" (fun () ->
        Alcotest.(check bool) "negative deadline rejected" true
          (try
             Overload.validate
               { Overload.no_limits with deadline = Some (-1.0) };
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "zero store budget rejected" true
          (try
             Overload.validate
               { Overload.no_limits with max_store_rows = Some 0 };
             false
           with Invalid_argument _ -> true);
        Overload.validate Overload.no_limits;
        Alcotest.(check bool) "no_limits is none" true
          (Overload.is_none Overload.no_limits));
  ]

(* ------------------------------------------------------------------ *)
(* The dial controller                                                 *)
(* ------------------------------------------------------------------ *)

let dial_cases =
  [
    case "backlog feedback moves alpha between floor and 1" (fun () ->
        let d =
          Overload.dial ~alpha:0.5 ~step:0.25 ~low_water:1 ~high_water:4
            ~nprocs:2 ()
        in
        Alcotest.(check (float 0.0)) "resting" 0.5 (Overload.alpha d 0);
        Overload.observe d ~pid:0 ~backlog:4;
        Alcotest.(check (float 0.0)) "raised" 0.75 (Overload.alpha d 0);
        Overload.observe d ~pid:0 ~backlog:9;
        Alcotest.(check (float 0.0)) "capped at 1" 1.0 (Overload.alpha d 0);
        Overload.observe d ~pid:0 ~backlog:9;
        Alcotest.(check (float 0.0)) "stays at 1" 1.0 (Overload.alpha d 0);
        Alcotest.(check int) "two raises counted" 2 (Overload.raises d);
        Overload.observe d ~pid:0 ~backlog:2;
        Alcotest.(check (float 0.0)) "between waters: hold" 1.0
          (Overload.alpha d 0);
        Overload.observe d ~pid:0 ~backlog:1;
        Overload.observe d ~pid:0 ~backlog:0;
        Overload.observe d ~pid:0 ~backlog:0;
        Alcotest.(check (float 0.0)) "decays to the floor, not below" 0.5
          (Overload.alpha d 0);
        Alcotest.(check int) "two decays counted" 2 (Overload.decays d);
        Alcotest.(check (float 0.0)) "other processors untouched" 0.5
          (Overload.alpha d 1));
    case "dial validation" (fun () ->
        Alcotest.(check bool) "alpha out of range" true
          (try
             ignore (Overload.dial ~alpha:1.5 ~high_water:4 ~nprocs:1 ());
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "high_water must be positive" true
          (try
             ignore (Overload.dial ~high_water:0 ~nprocs:1 ());
             false
           with Invalid_argument _ -> true));
    case "adaptive degradation sheds messages under pressure" (fun () ->
        let edges = chain_edges 16 in
        let edb = edb_of_edges edges in
        let messages stats =
          Array.fold_left
            (fun acc row -> Array.fold_left ( + ) acc row)
            0 stats.Stats.channel_tuples
        in
        let static =
          match Strategy.tradeoff ~seed:0 ~nprocs:2 ~alpha:0.0 ancestor with
          | Ok rw -> Sim_runtime.run rw ~edb
          | Error msg -> Alcotest.fail msg
        in
        let dial = Overload.dial ~alpha:0.0 ~high_water:1 ~nprocs:2 () in
        let adaptive =
          match Strategy.adaptive_tradeoff ~seed:0 ~nprocs:2 ~dial ancestor with
          | Ok rw ->
            Sim_runtime.run
              ~config:
                Run_config.(
                  default |> with_capacity (Some 1)
                  |> with_dial (Some dial))
              rw ~edb
          | Error msg -> Alcotest.fail msg
        in
        Alcotest.check relation_t "same closure"
          (anc_relation static.Sim_runtime.answers)
          (anc_relation adaptive.Sim_runtime.answers);
        Alcotest.(check bool) "the dial actually engaged" true
          (adaptive.Sim_runtime.stats.Stats.faults.Stats.alpha_raises > 0);
        Alcotest.(check bool) "fewer messages than the static scheme" true
          (messages adaptive.Sim_runtime.stats
          <= messages static.Sim_runtime.stats));
  ]

(* ------------------------------------------------------------------ *)
(* The bounded mailbox primitive                                       *)
(* ------------------------------------------------------------------ *)

let mailbox_cases =
  [
    case "concurrent producers never exceed capacity" (fun () ->
        let cap = 8 in
        let producers = 4 and per_producer = 100 in
        let mb = Mailbox.create ~capacity:cap () in
        let doms =
          List.init producers (fun p ->
              Domain.spawn (fun () ->
                  let ok = ref true in
                  for i = 0 to per_producer - 1 do
                    ok := Mailbox.push_blocking mb ((p * per_producer) + i)
                          && !ok
                  done;
                  !ok))
        in
        let received = ref [] in
        let max_len = ref 0 in
        let expected = producers * per_producer in
        while List.length !received < expected do
          max_len := max !max_len (Mailbox.length mb);
          (match Mailbox.drain_timeout mb ~seconds:0.01 with
          | [] -> ()
          | items -> received := List.rev_append items !received);
          max_len := max !max_len (Mailbox.length mb)
        done;
        List.iter
          (fun d ->
            Alcotest.(check bool) "every push accepted" true (Domain.join d))
          doms;
        Alcotest.(check int) "all items delivered exactly once" expected
          (List.length (List.sort_uniq compare !received));
        Alcotest.(check bool) "occupancy never exceeded the bound" true
          (!max_len <= cap);
        Alcotest.(check int) "nothing dropped" 0 (Mailbox.dropped mb));
    case "close during blocked pushes never hangs (stress)" (fun () ->
        (* The push_blocking/close race: producers parked on a full
           mailbox while another thread closes it. Every producer must
           wake promptly with [false] — the audited invariant is that
           both condition variables are broadcast under the same mutex
           that guards the closed flag, so no sleeper can miss the
           wake-up. A regression here makes this test hang, which is
           the point: it pins "never hangs", not a timing. *)
        for _ = 1 to 10 do
          let cap = 2 and producers = 6 and per_producer = 25 in
          let mb = Mailbox.create ~capacity:cap () in
          let doms =
            List.init producers (fun p ->
                Domain.spawn (fun () ->
                    let accepted = ref 0 in
                    (try
                       for i = 0 to per_producer - 1 do
                         if Mailbox.push_blocking mb ((p * per_producer) + i)
                         then incr accepted
                         else raise Exit
                       done
                     with Exit -> ());
                    !accepted))
          in
          (* Let some producers fill the mailbox and block, then slam
             the door while they are parked. *)
          let drained = List.length (Mailbox.drain_timeout mb ~seconds:0.002) in
          Mailbox.close mb;
          let accepted =
            List.fold_left (fun acc d -> acc + Domain.join d) 0 doms
          in
          let leftovers = List.length (Mailbox.drain_blocking mb) in
          Alcotest.(check int) "accepted = delivered + queued at close"
            accepted (drained + leftovers);
          Alcotest.(check bool) "at most one refusal per producer" true
            (Mailbox.dropped mb <= producers)
        done);
    case "close wakes a producer blocked on a full mailbox" (fun () ->
        let mb = Mailbox.create ~capacity:1 () in
        Alcotest.(check bool) "first push fits" true
          (Mailbox.push_blocking mb 1);
        let blocked = Domain.spawn (fun () -> Mailbox.push_blocking mb 2) in
        Unix.sleepf 0.05;
        Mailbox.close mb;
        Alcotest.(check bool) "blocked producer wakes with false" false
          (Domain.join blocked);
        Alcotest.(check int) "the refused push is counted" 1
          (Mailbox.dropped mb);
        Alcotest.(check (list int)) "queued item survives the close" [ 1 ]
          (Mailbox.drain_blocking mb));
    case "try_push reports Full and Closed without blocking" (fun () ->
        let mb = Mailbox.create ~capacity:1 () in
        Alcotest.(check bool) "fits" true (Mailbox.try_push mb 1 = `Ok);
        Alcotest.(check bool) "full" true (Mailbox.try_push mb 2 = `Full);
        ignore (Mailbox.drain mb);
        Alcotest.(check bool) "drain frees capacity" true
          (Mailbox.try_push mb 3 = `Ok);
        Mailbox.close mb;
        Alcotest.(check bool) "closed" true (Mailbox.try_push mb 4 = `Closed);
        Alcotest.(check bool) "capacity is reported" true
          (Mailbox.capacity mb = Some 1));
    case "create rejects nonpositive capacity" (fun () ->
        Alcotest.(check bool) "invalid_arg" true
          (try
             ignore (Mailbox.create ~capacity:0 ());
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Dial boundary properties                                            *)
(* ------------------------------------------------------------------ *)

(* Random controller parameters and observation trajectories. The
   boundary of interest is low_water = high_water (now legal): a single
   backlog value would satisfy both the raise and the decay condition,
   so the controller must be a declared no-op there instead of
   oscillating. *)
type dial_cfg = {
  dc_alpha : float;  (* resting alpha — also the decay floor *)
  dc_step : float;
  dc_low : int;
  dc_high : int;
  dc_nprocs : int;
  dc_obs : (int * int) list;  (* (pid, backlog) feed *)
}

let dial_cfg_gen =
  QCheck.Gen.(
    let* dc_alpha = oneofl [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
    let* dc_step = oneofl [ 0.1; 0.25; 0.5; 1.0 ] in
    let* dc_high = int_range 1 8 in
    let* dc_low = int_range 0 dc_high in
    let* dc_nprocs = int_range 1 4 in
    let* dc_obs =
      list_size (int_range 0 80)
        (pair (int_range 0 (dc_nprocs - 1)) (int_range 0 (2 * dc_high)))
    in
    return { dc_alpha; dc_step; dc_low; dc_high; dc_nprocs; dc_obs })

let dial_cfg_arb =
  QCheck.make dial_cfg_gen ~print:(fun c ->
      Printf.sprintf "alpha=%.2f step=%.2f low=%d high=%d nprocs=%d obs=[%s]"
        c.dc_alpha c.dc_step c.dc_low c.dc_high c.dc_nprocs
        (String.concat ";"
           (List.map (fun (p, b) -> Printf.sprintf "%d:%d" p b) c.dc_obs)))

let run_dial c =
  let d =
    Overload.dial ~alpha:c.dc_alpha ~step:c.dc_step ~low_water:c.dc_low
      ~high_water:c.dc_high ~nprocs:c.dc_nprocs ()
  in
  List.iter (fun (pid, backlog) -> Overload.observe d ~pid ~backlog) c.dc_obs;
  d

let prop_dial_bounds =
  QCheck.Test.make ~count:300
    ~name:"dial alpha never leaves [resting, 1] on any trajectory"
    dial_cfg_arb
    (fun c ->
      let d = run_dial c in
      List.for_all
        (fun pid ->
          let a = Overload.alpha d pid in
          a >= c.dc_alpha -. 1e-9 && a <= 1.0 +. 1e-9)
        (List.init c.dc_nprocs Fun.id))

let prop_dial_noop =
  QCheck.Test.make ~count:150
    ~name:"dial with low_water = high_water is a no-op"
    dial_cfg_arb
    (fun c ->
      let c = { c with dc_low = c.dc_high } in
      let d = run_dial c in
      List.for_all
        (fun pid -> Overload.alpha d pid = c.dc_alpha)
        (List.init c.dc_nprocs Fun.id)
      && Overload.raises d = 0
      && Overload.decays d = 0)

let suites =
  [
    ("overload-backpressure", backpressure_cases);
    ("overload-watchdog", watchdog_cases);
    ("overload-dial", dial_cases);
    ("overload-mailbox", mailbox_cases);
    ( "overload-props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_adaptive_sim; prop_adaptive_domain; prop_dial_bounds;
          prop_dial_noop;
        ] );
  ]
