(* The storage engine: Vec growth, the interning arena, cached tuple
   hashes, index life cycle across compaction (PR5), the columnar slab
   layer (PR10 — slab/boxed equivalence, demotion, the per-round
   allocation budget), and the interned/non-interned equivalence
   properties. *)

open Datalog
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_growth () =
  let v = Vec.create ~capacity:2 ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check bool) "capacity grew" true (Vec.capacity v >= 100);
  Alcotest.(check (list int)) "insertion order" (List.init 100 Fun.id)
    (Vec.to_list v);
  Vec.compact v;
  Alcotest.(check int) "compacted capacity" 100 (Vec.capacity v);
  Alcotest.(check (list int)) "contents survive compaction"
    (List.init 100 Fun.id) (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)
(* ------------------------------------------------------------------ *)

let test_arena_canonical () =
  let a = Arena.create () in
  let t1 = Tuple.of_ints [ 1; 2 ] in
  let t2 = Tuple.of_ints [ 1; 2 ] in
  Alcotest.(check bool) "distinct values" false (t1 == t2);
  let c1 = Arena.intern a t1 in
  let c2 = Arena.intern a t2 in
  Alcotest.(check bool) "same canonical value" true (c1 == c2);
  Alcotest.(check bool) "first wins" true (c1 == t1);
  Alcotest.(check int) "size" 1 (Arena.size a);
  Alcotest.(check int) "misses" 1 (Arena.misses a);
  Alcotest.(check int) "hits" 1 (Arena.hits a)

let test_arena_growth () =
  let a = Arena.create ~initial_size:2 () in
  for i = 0 to 199 do
    ignore (Arena.intern a (Tuple.of_ints [ i; i + 1 ]))
  done;
  Alcotest.(check int) "all distinct" 200 (Arena.size a);
  Alcotest.(check int) "no hits" 0 (Arena.hits a);
  (* Re-interning structural copies is all hits, no growth. *)
  for i = 0 to 199 do
    ignore (Arena.intern a (Tuple.of_ints [ i; i + 1 ]))
  done;
  Alcotest.(check int) "size unchanged" 200 (Arena.size a);
  Alcotest.(check int) "all hits" 200 (Arena.hits a)

(* ------------------------------------------------------------------ *)
(* Cached hashes                                                       *)
(* ------------------------------------------------------------------ *)

let test_hash_stability () =
  let consts = [ Const.int 42; Const.sym "x"; Const.int (-7) ] in
  let a = Tuple.of_list consts in
  let b = Tuple.make (Array.of_list consts) in
  Alcotest.(check bool) "equal tuples" true (Tuple.equal a b);
  Alcotest.(check int) "equal cached hashes" (Tuple.hash a) (Tuple.hash b);
  Alcotest.(check int) "hash is idempotent" (Tuple.hash a) (Tuple.hash a);
  (* to_array returns a copy: mutating it must not disturb the tuple
     or its cached hash. *)
  let arr = Tuple.to_array a in
  arr.(0) <- Const.int 999;
  Alcotest.(check bool) "tuple unchanged" true (Tuple.equal a b);
  Alcotest.(check int) "hash unchanged" (Tuple.hash b) (Tuple.hash a)

(* ------------------------------------------------------------------ *)
(* Index life cycle                                                    *)
(* ------------------------------------------------------------------ *)

let test_index_rebuild_after_compact () =
  let r = Relation.create ~arity:2 () in
  for i = 0 to 49 do
    ignore (Relation.add r (Tuple.of_ints [ i mod 5; i ]))
  done;
  let probe () =
    List.sort Tuple.compare
      (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 3 |])
  in
  let before = probe () in
  Alcotest.(check int) "one index materialized" 1 (Relation.index_count r);
  Relation.compact r;
  Alcotest.(check int) "compaction drops indexes" 0 (Relation.index_count r);
  Alcotest.(check (list tuple_t)) "rebuilt index answers identically"
    before (probe ());
  Alcotest.(check int) "index rematerialized" 1 (Relation.index_count r);
  (* And the rebuilt index keeps serving inserts made after the
     compaction. *)
  ignore (Relation.add r (Tuple.of_ints [ 3; 999 ]));
  Alcotest.(check int) "post-compaction insert is indexed"
    (List.length before + 1)
    (List.length (probe ()))

let test_windowed_matcher () =
  let r = Relation.create ~arity:2 () in
  List.iter
    (fun (a, b) -> ignore (Relation.add r (Tuple.of_ints [ a; b ])))
    [ (1, 10); (2, 20); (1, 30); (1, 40) ];
  let m = Relation.matcher r ~positions:[| 0 |] in
  let count ~lo ~hi =
    let n = ref 0 in
    m [| Const.int 1 |] ~lo ~hi (fun _ -> incr n);
    !n
  in
  Alcotest.(check int) "full window" 3 (count ~lo:0 ~hi:4);
  Alcotest.(check int) "prefix window" 1 (count ~lo:0 ~hi:2);
  Alcotest.(check int) "suffix window" 2 (count ~lo:2 ~hi:4);
  Alcotest.(check int) "empty window" 0 (count ~lo:2 ~hi:2)

(* ------------------------------------------------------------------ *)
(* The engine's arena                                                  *)
(* ------------------------------------------------------------------ *)

let test_engine_arena_stats () =
  let edb = edb_of_edges (Workload.Graphgen.chain 30) in
  let engine = Seminaive.create ancestor ~edb in
  Seminaive.run_to_fixpoint engine;
  (match Seminaive.arena_stats engine with
   | None -> Alcotest.fail "interning engine reports no arena"
   | Some (size, _hits, misses) ->
     Alcotest.(check bool) "arena is populated" true (size > 0);
     Alcotest.(check int) "every canonical tuple was a miss" size misses);
  let plain = Seminaive.create ~intern:false ancestor ~edb in
  Seminaive.run_to_fixpoint plain;
  Alcotest.(check bool) "non-interning engine has no arena" true
    (Seminaive.arena_stats plain = None)

(* ------------------------------------------------------------------ *)
(* Columnar slabs (PR10)                                               *)
(* ------------------------------------------------------------------ *)

let test_slab_demotion () =
  let r = Relation.create ~arity:1 () in
  Alcotest.(check bool) "starts slabbed" true (Relation.slabbed r);
  ignore (Relation.add r (Tuple.of_ints [ 1 ]));
  Alcotest.(check bool) "small ints stay slabbed" true (Relation.slabbed r);
  (* max_int does not fit the 63-bit tagged raw encoding, so its
     arrival permanently demotes the relation to boxed storage. *)
  ignore (Relation.add r (Tuple.of_list [ Const.int max_int ]));
  Alcotest.(check bool) "an unencodable int demotes" false
    (Relation.slabbed r);
  Alcotest.(check bool) "old tuple survives demotion" true
    (Relation.mem r (Tuple.of_ints [ 1 ]));
  Alcotest.(check bool) "new tuple present" true
    (Relation.mem r (Tuple.of_list [ Const.int max_int ]));
  Alcotest.(check bool) "dedup still works" false
    (Relation.add r (Tuple.of_ints [ 1 ]));
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r)

let test_slab_opt_out () =
  let r = Relation.create ~slab:false ~arity:2 () in
  Alcotest.(check bool) "~slab:false starts boxed" false (Relation.slabbed r);
  ignore (Relation.add r (Tuple.of_ints [ 1; 2 ]));
  Alcotest.(check bool) "probes still answer" true
    (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |]
     = [ Tuple.of_ints [ 1; 2 ] ])

let test_slab_copy () =
  let r = Relation.create ~arity:2 () in
  for i = 0 to 99 do
    ignore (Relation.add r (Tuple.of_ints [ i mod 7; i ]))
  done;
  let c = Relation.copy r in
  Alcotest.(check bool) "structural copy stays slabbed" true
    (Relation.slabbed c);
  Alcotest.(check bool) "copy equals original" true (Relation.equal r c);
  ignore (Relation.add c (Tuple.of_ints [ 3; 1000 ]));
  Alcotest.(check int) "original unchanged" 100 (Relation.cardinal r);
  Alcotest.(check (list tuple_t)) "copy's probes see the insert"
    (List.sort Tuple.compare
       (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 3 |]
       @ [ Tuple.of_ints [ 3; 1000 ] ]))
    (List.sort Tuple.compare
       (Relation.lookup c ~positions:[| 0 |] ~key:[| Const.int 3 |]))

(* The round's bookkeeping must not allocate: slab insert, dedup and
   columnar probes are all flat int-array traffic, so what remains per
   round is dominated by the derived tuples themselves. The budget is
   loose (PR10 measured ~11k words/round on this shape; the boxed
   layer sat far above it) but tight enough to catch a regression that
   reintroduces per-insert or per-probe boxing. *)
let test_chain_allocation_budget () =
  let edb = edb_of_edges (Workload.Graphgen.chain 150) in
  let engine = Seminaive.create ancestor ~edb in
  let before = Gc.minor_words () in
  Seminaive.run_to_fixpoint engine;
  let words = Gc.minor_words () -. before in
  let rounds = max 1 (Seminaive.stats engine).Seminaive.iterations in
  let per_round = words /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words/round under the 40k budget" per_round)
    true
    (per_round < 40_000.)

(* ------------------------------------------------------------------ *)
(* Interned / non-interned equivalence                                 *)
(* ------------------------------------------------------------------ *)

let edge_list_gen =
  QCheck.Gen.(
    let* nodes = int_range 2 15 in
    let* nedges = int_range 1 35 in
    list_size (return nedges)
      (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1))))

let edge_list =
  QCheck.make
    ~print:(fun es ->
      String.concat "; "
        (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es))
    edge_list_gen

(* [~intern:true] is also the slabbed engine and [~intern:false] the
   boxed one (PR10 ties the columnar layer to interning), so this
   property now pins the whole storage stack: identical model,
   identical semi-naive counters, and an identical join-probe count —
   the columnar window scans and raw-compare verification must
   enumerate exactly the candidates the boxed index path does. *)
let same_run program edges =
  let edb = edb_of_edges edges in
  let run ~intern =
    let e = Seminaive.create ~intern program ~edb in
    Seminaive.run_to_fixpoint e;
    (Seminaive.database e, Seminaive.stats e, Seminaive.join_probes e)
  in
  let db_on, s_on, p_on = run ~intern:true in
  let db_off, s_off, p_off = run ~intern:false in
  Database.equal db_on db_off && s_on = s_off && p_on = p_off

let prop_intern_equiv_linear =
  QCheck.Test.make ~count:150
    ~name:"slab = boxed: answers, counters and probes (linear)"
    edge_list
    (fun edges -> same_run ancestor edges)

let prop_intern_equiv_nonlinear =
  QCheck.Test.make ~count:100
    ~name:"slab = boxed: answers, counters and probes (nonlinear)"
    edge_list
    (fun edges -> same_run Workload.Progs.ancestor_nonlinear edges)

let prop_intern_equiv_samegen =
  QCheck.Test.make ~count:100
    ~name:"slab = boxed: answers, counters and probes (same-generation)"
    edge_list
    (fun edges -> same_run Workload.Progs.same_generation edges)

(* ------------------------------------------------------------------ *)

let storage =
  [
    case "vec grows by doubling and preserves order" test_vec_growth;
    case "arena interns to one physical tuple" test_arena_canonical;
    case "arena grows past its initial size" test_arena_growth;
    case "cached hashes are stable" test_hash_stability;
    case "compaction drops and rebuilds indexes identically"
      test_index_rebuild_after_compact;
    case "windowed matcher sees exactly [lo, hi)" test_windowed_matcher;
    case "engine arena stats" test_engine_arena_stats;
    case "an unencodable constant demotes the slab in place"
      test_slab_demotion;
    case "~slab:false opts a relation out of columnar storage"
      test_slab_opt_out;
    case "copying a slabbed relation is structural and independent"
      test_slab_copy;
    case "steady-state rounds stay within the allocation budget"
      test_chain_allocation_budget;
    to_alcotest prop_intern_equiv_linear;
    to_alcotest prop_intern_equiv_nonlinear;
    to_alcotest prop_intern_equiv_samegen;
  ]

let suites = [ ("storage", storage) ]
