(* The PR5 storage engine: Vec growth, the interning arena, cached
   tuple hashes, index life cycle across compaction, and the
   interned/non-interned equivalence properties. *)

open Datalog
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_growth () =
  let v = Vec.create ~capacity:2 ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check bool) "capacity grew" true (Vec.capacity v >= 100);
  Alcotest.(check (list int)) "insertion order" (List.init 100 Fun.id)
    (Vec.to_list v);
  Vec.compact v;
  Alcotest.(check int) "compacted capacity" 100 (Vec.capacity v);
  Alcotest.(check (list int)) "contents survive compaction"
    (List.init 100 Fun.id) (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)
(* ------------------------------------------------------------------ *)

let test_arena_canonical () =
  let a = Arena.create () in
  let t1 = Tuple.of_ints [ 1; 2 ] in
  let t2 = Tuple.of_ints [ 1; 2 ] in
  Alcotest.(check bool) "distinct values" false (t1 == t2);
  let c1 = Arena.intern a t1 in
  let c2 = Arena.intern a t2 in
  Alcotest.(check bool) "same canonical value" true (c1 == c2);
  Alcotest.(check bool) "first wins" true (c1 == t1);
  Alcotest.(check int) "size" 1 (Arena.size a);
  Alcotest.(check int) "misses" 1 (Arena.misses a);
  Alcotest.(check int) "hits" 1 (Arena.hits a)

let test_arena_growth () =
  let a = Arena.create ~initial_size:2 () in
  for i = 0 to 199 do
    ignore (Arena.intern a (Tuple.of_ints [ i; i + 1 ]))
  done;
  Alcotest.(check int) "all distinct" 200 (Arena.size a);
  Alcotest.(check int) "no hits" 0 (Arena.hits a);
  (* Re-interning structural copies is all hits, no growth. *)
  for i = 0 to 199 do
    ignore (Arena.intern a (Tuple.of_ints [ i; i + 1 ]))
  done;
  Alcotest.(check int) "size unchanged" 200 (Arena.size a);
  Alcotest.(check int) "all hits" 200 (Arena.hits a)

(* ------------------------------------------------------------------ *)
(* Cached hashes                                                       *)
(* ------------------------------------------------------------------ *)

let test_hash_stability () =
  let consts = [ Const.int 42; Const.sym "x"; Const.int (-7) ] in
  let a = Tuple.of_list consts in
  let b = Tuple.make (Array.of_list consts) in
  Alcotest.(check bool) "equal tuples" true (Tuple.equal a b);
  Alcotest.(check int) "equal cached hashes" (Tuple.hash a) (Tuple.hash b);
  Alcotest.(check int) "hash is idempotent" (Tuple.hash a) (Tuple.hash a);
  (* to_array returns a copy: mutating it must not disturb the tuple
     or its cached hash. *)
  let arr = Tuple.to_array a in
  arr.(0) <- Const.int 999;
  Alcotest.(check bool) "tuple unchanged" true (Tuple.equal a b);
  Alcotest.(check int) "hash unchanged" (Tuple.hash b) (Tuple.hash a)

(* ------------------------------------------------------------------ *)
(* Index life cycle                                                    *)
(* ------------------------------------------------------------------ *)

let test_index_rebuild_after_compact () =
  let r = Relation.create ~arity:2 () in
  for i = 0 to 49 do
    ignore (Relation.add r (Tuple.of_ints [ i mod 5; i ]))
  done;
  let probe () =
    List.sort Tuple.compare
      (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 3 |])
  in
  let before = probe () in
  Alcotest.(check int) "one index materialized" 1 (Relation.index_count r);
  Relation.compact r;
  Alcotest.(check int) "compaction drops indexes" 0 (Relation.index_count r);
  Alcotest.(check (list tuple_t)) "rebuilt index answers identically"
    before (probe ());
  Alcotest.(check int) "index rematerialized" 1 (Relation.index_count r);
  (* And the rebuilt index keeps serving inserts made after the
     compaction. *)
  ignore (Relation.add r (Tuple.of_ints [ 3; 999 ]));
  Alcotest.(check int) "post-compaction insert is indexed"
    (List.length before + 1)
    (List.length (probe ()))

let test_windowed_matcher () =
  let r = Relation.create ~arity:2 () in
  List.iter
    (fun (a, b) -> ignore (Relation.add r (Tuple.of_ints [ a; b ])))
    [ (1, 10); (2, 20); (1, 30); (1, 40) ];
  let m = Relation.matcher r ~positions:[| 0 |] in
  let count ~lo ~hi =
    let n = ref 0 in
    m [| Const.int 1 |] ~lo ~hi (fun _ -> incr n);
    !n
  in
  Alcotest.(check int) "full window" 3 (count ~lo:0 ~hi:4);
  Alcotest.(check int) "prefix window" 1 (count ~lo:0 ~hi:2);
  Alcotest.(check int) "suffix window" 2 (count ~lo:2 ~hi:4);
  Alcotest.(check int) "empty window" 0 (count ~lo:2 ~hi:2)

(* ------------------------------------------------------------------ *)
(* The engine's arena                                                  *)
(* ------------------------------------------------------------------ *)

let test_engine_arena_stats () =
  let edb = edb_of_edges (Workload.Graphgen.chain 30) in
  let engine = Seminaive.create ancestor ~edb in
  Seminaive.run_to_fixpoint engine;
  (match Seminaive.arena_stats engine with
   | None -> Alcotest.fail "interning engine reports no arena"
   | Some (size, _hits, misses) ->
     Alcotest.(check bool) "arena is populated" true (size > 0);
     Alcotest.(check int) "every canonical tuple was a miss" size misses);
  let plain = Seminaive.create ~intern:false ancestor ~edb in
  Seminaive.run_to_fixpoint plain;
  Alcotest.(check bool) "non-interning engine has no arena" true
    (Seminaive.arena_stats plain = None)

(* ------------------------------------------------------------------ *)
(* Interned / non-interned equivalence                                 *)
(* ------------------------------------------------------------------ *)

let edge_list_gen =
  QCheck.Gen.(
    let* nodes = int_range 2 15 in
    let* nedges = int_range 1 35 in
    list_size (return nedges)
      (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1))))

let edge_list =
  QCheck.make
    ~print:(fun es ->
      String.concat "; "
        (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es))
    edge_list_gen

let same_run program edges =
  let edb = edb_of_edges edges in
  let db_on, s_on = Seminaive.evaluate ~intern:true program edb in
  let db_off, s_off = Seminaive.evaluate ~intern:false program edb in
  Database.equal db_on db_off && s_on = s_off

let prop_intern_equiv_linear =
  QCheck.Test.make ~count:150
    ~name:"interning changes neither answers nor counters (linear)"
    edge_list
    (fun edges -> same_run ancestor edges)

let prop_intern_equiv_nonlinear =
  QCheck.Test.make ~count:100
    ~name:"interning changes neither answers nor counters (nonlinear)"
    edge_list
    (fun edges -> same_run Workload.Progs.ancestor_nonlinear edges)

(* ------------------------------------------------------------------ *)

let storage =
  [
    case "vec grows by doubling and preserves order" test_vec_growth;
    case "arena interns to one physical tuple" test_arena_canonical;
    case "arena grows past its initial size" test_arena_growth;
    case "cached hashes are stable" test_hash_stability;
    case "compaction drops and rebuilds indexes identically"
      test_index_rebuild_after_compact;
    case "windowed matcher sees exactly [lo, hi)" test_windowed_matcher;
    case "engine arena stats" test_engine_arena_stats;
    to_alcotest prop_intern_equiv_linear;
    to_alcotest prop_intern_equiv_nonlinear;
  ]

let suites = [ ("storage", storage) ]
