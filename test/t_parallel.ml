(* Tests for Mailbox, Safra and the Domain_runtime. *)

open Datalog
open Pardatalog
open Helpers

let mailbox_tests =
  [
    case "push then drain preserves order" (fun () ->
        let mb = Mailbox.create () in
        List.iter (Mailbox.push mb) [ 1; 2; 3 ];
        Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (Mailbox.drain mb);
        Alcotest.(check (list int)) "now empty" [] (Mailbox.drain mb));
    case "is_empty" (fun () ->
        let mb = Mailbox.create () in
        Alcotest.(check bool) "empty" true (Mailbox.is_empty mb);
        Mailbox.push mb 0;
        Alcotest.(check bool) "nonempty" false (Mailbox.is_empty mb));
    case "drain_blocking waits for a producer" (fun () ->
        let mb = Mailbox.create () in
        let producer =
          Domain.spawn (fun () ->
              (* Give the consumer a chance to block first. *)
              Unix.sleepf 0.02;
              Mailbox.push mb 42)
        in
        let got = Mailbox.drain_blocking mb in
        Domain.join producer;
        Alcotest.(check (list int)) "value" [ 42 ] got);
    case "many producers, one consumer" (fun () ->
        let mb = Mailbox.create () in
        let producers =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for i = 0 to 249 do
                    Mailbox.push mb ((d * 1000) + i)
                  done))
        in
        let received = ref [] in
        while List.length !received < 1000 do
          received := Mailbox.drain_blocking mb @ !received
        done;
        List.iter Domain.join producers;
        Alcotest.(check int) "all arrived" 1000 (List.length !received);
        Alcotest.(check int) "no duplicates" 1000
          (List.length (List.sort_uniq compare !received)));
  ]

(* A single-threaded simulation of a ring of machines exchanging
   messages, to check Safra's algorithm declares termination exactly at
   quiescence. *)
let simulate_ring ~machines ~script =
  (* [script] is a list of (sender, receiver) basic messages, executed
     in order; after each step every in-flight message is immediately
     delivered. After the script, machines go passive and the token
     circulates until detection. Returns the number of probe rounds
     needed after quiescence. *)
  let states = Array.init machines (fun _ -> Safra.create ()) in
  List.iter
    (fun (src, dst) ->
      Safra.record_send states.(src);
      Safra.record_receive states.(dst))
    script;
  (* All passive now; machine 0 probes. *)
  let rounds = ref 0 in
  let detected = ref false in
  while (not !detected) && !rounds < 5 do
    incr rounds;
    let token = ref Safra.initial_token in
    for i = machines - 1 downto 1 do
      token := Safra.forward states.(i) !token
    done;
    match Safra.evaluate states.(0) !token with
    | `Terminated -> detected := true
    | `Try_again -> ()
  done;
  if !detected then Some !rounds else None

let safra_tests =
  [
    case "silent system terminates on the first probe" (fun () ->
        Alcotest.(check (option int)) "one round" (Some 1)
          (simulate_ring ~machines:4 ~script:[]));
    case "after traffic, at most two probes are needed" (fun () ->
        let script = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
        match simulate_ring ~machines:4 ~script with
        | Some r -> Alcotest.(check bool) "within 2" true (r <= 2)
        | None -> Alcotest.fail "never detected");
    case "receives blacken the machine" (fun () ->
        let m = Safra.create () in
        Alcotest.(check bool) "white initially" true (Safra.color m = Safra.White);
        Safra.record_receive m;
        Alcotest.(check bool) "black after receive" true
          (Safra.color m = Safra.Black));
    case "forward whitens and accumulates" (fun () ->
        let m = Safra.create () in
        Safra.record_send m;
        Safra.record_send m;
        let t = Safra.forward m Safra.initial_token in
        Alcotest.(check int) "q" 2 t.Safra.q;
        Alcotest.(check bool) "machine white" true (Safra.color m = Safra.White));
    case "black machine taints the token" (fun () ->
        let m = Safra.create () in
        Safra.record_send m;
        Safra.record_receive m;
        let t = Safra.forward m Safra.initial_token in
        Alcotest.(check bool) "token black" true
          (t.Safra.token_color = Safra.Black));
    case "in-flight messages block detection" (fun () ->
        (* A message was sent but never received: total balance is +1,
           so no probe may ever succeed. *)
        let states = Array.init 3 (fun _ -> Safra.create ()) in
        Safra.record_send states.(1);
        let detected = ref false in
        for _ = 1 to 4 do
          let token = ref Safra.initial_token in
          for i = 2 downto 1 do
            token := Safra.forward states.(i) !token
          done;
          if Safra.evaluate states.(0) !token = `Terminated then
            detected := true
        done;
        Alcotest.(check bool) "never detected" false !detected);
  ]

let edges = Workload.Graphgen.binary_tree ~depth:5
let edb = edb_of_edges edges

let domain_tests =
  [
    slow_case "domain runtime equals sequential on example 3" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r = Domain_runtime.run rw ~edb in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "domain runtime equals sim runtime answers" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let sim = Sim_runtime.run rw ~edb in
        let dom = Domain_runtime.run rw ~edb in
        Alcotest.check relation_t "equal"
          (anc_relation sim.Sim_runtime.answers)
          (anc_relation dom.Sim_runtime.answers));
    slow_case "domain runtime is non-redundant for guarded schemes"
      (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
        let _, seq_stats = Seminaive.evaluate ancestor edb in
        let r = Domain_runtime.run rw ~edb in
        Alcotest.(check bool) "firings bounded" true
          (Stats.total_firings r.Sim_runtime.stats
           <= seq_stats.Seminaive.firings));
    slow_case "single-domain run terminates and is exact" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:1 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r = Domain_runtime.run rw ~edb in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "no-communication scheme on domains" (fun () ->
        let rw = Result.get_ok (Strategy.no_communication ~nprocs:4 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r = Domain_runtime.run rw ~edb in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers);
        Alcotest.(check int) "no cross-processor traffic" 0
          (Stats.total_messages r.Sim_runtime.stats));
    slow_case "nonlinear program on domains" (fun () ->
        let rw =
          Result.get_ok
            (Strategy.general ~nprocs:3 Workload.Progs.ancestor_nonlinear)
        in
        let small = edb_of_edges (Workload.Graphgen.chain 12) in
        let seq, _ = Seminaive.evaluate ancestor small in
        let r = Domain_runtime.run rw ~edb:small in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "multiplexing processors onto fewer domains" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:6 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        List.iter
          (fun domains ->
            let r =
              Domain_runtime.run
                ~config:Run_config.(default |> with_domains (Some domains))
                rw ~edb
            in
            Alcotest.check relation_t
              (Printf.sprintf "%d domains" domains)
              (anc_relation seq)
              (anc_relation r.Sim_runtime.answers))
          [ 1; 2; 3; 6 ]);
    slow_case "multiplexing under Dijkstra-Scholten" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:5 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r =
          Domain_runtime.run
            ~config:
              Run_config.(
                default
                |> with_detector Dijkstra_scholten
                |> with_domains (Some 2))
            rw ~edb
        in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "domains above nprocs are capped" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let seq, _ = Seminaive.evaluate ancestor edb in
        let r =
          Domain_runtime.run
            ~config:Run_config.(default |> with_domains (Some 16))
            rw ~edb
        in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers));
    slow_case "zero domains rejected" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Domain_runtime.run
                  ~config:Run_config.(default |> with_domains (Some 0))
                  rw ~edb);
             false
           with Invalid_argument _ -> true));
    slow_case "repeated runs are deterministic in their answers" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
        let a = Domain_runtime.run rw ~edb in
        let b = Domain_runtime.run rw ~edb in
        Alcotest.check relation_t "same answers"
          (anc_relation a.Sim_runtime.answers)
          (anc_relation b.Sim_runtime.answers));
  ]

let suites =
  [
    ("mailbox", mailbox_tests);
    ("safra", safra_tests);
    ("domain_runtime", domain_tests);
  ]
