(* Properties of the shared jittered-exponential-backoff policy.

   Every retry loop in the system (serve client, net runtime dialling,
   worker restart pacing) leans on the same three guarantees: the
   delay never exceeds cap + jitter, the uncapped prefix grows
   monotonically with the attempt index, and a server-supplied retry
   hint is honored even past the cap. *)

open Pardatalog

let params_gen =
  QCheck.Gen.(
    let* base = int_range 1 64 in
    let* cap = int_range 1 2000 in
    let* span = int_range 0 50 in
    let* seed = int_range 0 9999 in
    let* k = int_range 0 40 in
    return (base, cap, span, seed, k))

let params_arb =
  QCheck.make
    ~print:(fun (base, cap, span, seed, k) ->
      Printf.sprintf "base=%d cap=%d span=%d seed=%d k=%d" base cap span
        seed k)
    params_gen

let policy ?jitter base cap = Backoff.make ~base_ms:base ~cap_ms:cap ?jitter ()

let prop_bounded =
  QCheck.Test.make ~count:500 ~name:"delay <= cap + jitter (and >= 1)"
    params_arb
    (fun (base, cap, span, seed, k) ->
      let jitter = Backoff.seeded_jitter ~seed ~span_ms:span in
      let t = policy ~jitter base cap in
      let d = Backoff.delay_ms t k in
      d >= 1 && d <= max 1 (cap + span))

let prop_monotone =
  QCheck.Test.make ~count:500
    ~name:"zero-jitter delays grow monotonically with the attempt"
    params_arb
    (fun (base, cap, _, _, k) ->
      let t = policy base cap in
      Backoff.delay_ms t k <= Backoff.delay_ms t (k + 1))

let prop_hint =
  QCheck.Test.make ~count:500
    ~name:"a retry hint is a lower bound, even past the cap" params_arb
    (fun (base, cap, span, seed, k) ->
      let jitter = Backoff.seeded_jitter ~seed ~span_ms:span in
      let t = policy ~jitter base cap in
      let hint = cap + span + 17 in
      Backoff.delay_ms ~hint_ms:hint t k >= hint)

let prop_jitter_deterministic =
  QCheck.Test.make ~count:500
    ~name:"seeded jitter is a stable function of (seed, attempt)"
    params_arb
    (fun (_, _, span, seed, k) ->
      let j = Backoff.seeded_jitter ~seed ~span_ms:span in
      let a = j k and b = j k in
      a = b && a >= 0 && a <= max 0 (span - if span > 0 then 1 else 0))

let unit_exponential_prefix () =
  let t = policy 2 200 in
  Alcotest.(check (list int))
    "2ms base doubles to the 200ms cap"
    [ 2; 4; 8; 16; 32; 64; 128; 200; 200 ]
    (List.init 9 (Backoff.delay_ms t))

let unit_defaults () =
  let t = Backoff.make () in
  Alcotest.(check int) "default base" 5 (Backoff.base_ms t);
  Alcotest.(check int) "default cap" 500 (Backoff.cap_ms t);
  Alcotest.(check int) "attempt 0" 5 (Backoff.delay_ms t 0)

let unit_huge_attempt_no_overflow () =
  let t = policy 7 900 in
  Alcotest.(check int) "attempt 1000 is capped" 900
    (Backoff.delay_ms t 1000)

let suites =
  [
    ( "backoff",
      List.map QCheck_alcotest.to_alcotest
        [ prop_bounded; prop_monotone; prop_hint; prop_jitter_deterministic ]
      @ [
          Alcotest.test_case "exponential prefix" `Quick
            unit_exponential_prefix;
          Alcotest.test_case "serve-client defaults" `Quick unit_defaults;
          Alcotest.test_case "huge attempt index" `Quick
            unit_huge_attempt_no_overflow;
        ] );
  ]
