(* Observability: the tracing sink, the metrics registry, the unified
   Run_config, and the tentpole cross-check — with sinks enabled, the
   metrics registry accounts for exactly the same events as the Stats
   counters, on both runtimes, under random fault plans and credit
   bounds.  The zero-cost-when-disabled claim is covered separately by
   prop_zero_fault_exact_counts (t_fault) plus the disabled-sink unit
   tests here. *)

open Pardatalog
open Helpers

let chain_edges n = List.init n (fun i -> (i, i + 1))

let example3_rw () =
  match Strategy.example3 ~seed:0 ~nprocs:2 ancestor with
  | Ok rw -> rw
  | Error msg -> Alcotest.fail msg

let traced_run () =
  let trace = Obs.Trace.create () in
  let metrics = Obs.Metrics.create () in
  let config = Run_config.(default |> with_obs { Obs.trace; metrics }) in
  let r =
    Sim_runtime.run ~config (example3_rw ())
      ~edb:(edb_of_edges (chain_edges 10))
  in
  (trace, metrics, r)

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

let all_phases =
  Obs.Trace.
    [
      Sending; Retransmission; Delivery; Receiving; Processing;
      Checkpointing; Termination_test;
    ]

let trace_cases =
  [
    case "a run covers every (pid, round, phase)" (fun () ->
        let trace, _, r = traced_run () in
        let s = r.Sim_runtime.stats in
        Alcotest.(check bool) "ran several rounds" true (s.Stats.rounds > 1);
        for pid = 0 to s.Stats.nprocs - 1 do
          for round = 0 to s.Stats.rounds - 1 do
            List.iter
              (fun phase ->
                Alcotest.(check bool)
                  (Printf.sprintf "pid %d round %d %s" pid round
                     (Obs.Trace.phase_name phase))
                  true
                  (Obs.Trace.covered trace ~pid ~round phase))
              Obs.Trace.[ Sending; Receiving; Processing; Termination_test ]
          done
        done;
        Alcotest.(check int) "one bootstrap instant per processor" 2
          (Obs.Trace.instant_count trace ~name:"bootstrap"));
    case "crash and recovery leave instant events" (fun () ->
        let trace = Obs.Trace.create () in
        let plan =
          Fault.make
            ~crashes:[ { Fault.cr_pid = 1; cr_round = 4; cr_down = 2 } ]
            ()
        in
        let config =
          Run_config.(
            default |> with_fault plan |> with_max_rounds 50_000
            |> with_trace trace)
        in
        let r =
          Sim_runtime.run ~config (example3_rw ())
            ~edb:(edb_of_edges (chain_edges 12))
        in
        Alcotest.(check int) "one crash instant"
          r.Sim_runtime.stats.Stats.faults.Stats.crashes
          (Obs.Trace.instant_count trace ~name:"crash");
        Alcotest.(check int) "one recover instant"
          r.Sim_runtime.stats.Stats.faults.Stats.recoveries
          (Obs.Trace.instant_count trace ~name:"recover");
        (* Delivery is a transport-level phase of the reliable layer,
           so it only appears under an active plan. *)
        Alcotest.(check bool) "transport delivery spans recorded" true
          (Obs.Trace.covered trace ~pid:Obs.Trace.transport_pid ~round:0
             Obs.Trace.Delivery));
    case "the export is Chrome trace-event JSON" (fun () ->
        let trace, _, r = traced_run () in
        let json = Obs.Trace.to_chrome_json trace in
        let contains needle =
          let nl = String.length needle and jl = String.length json in
          let rec go i =
            i + nl <= jl && (String.sub json i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "wrapped object" true
          (String.length json > 2 && json.[0] = '{');
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains needle))
          [
            "\"traceEvents\":[";
            "\"displayTimeUnit\":\"ms\"";
            "\"ph\":\"X\"";
            "\"ph\":\"i\"";
            "\"ph\":\"M\"";
            "\"name\":\"sending\"";
            "\"name\":\"termination-test\"";
            "\"name\":\"process_name\"";
          ];
        ignore r);
    case "the disabled sink records nothing and is transparent" (fun () ->
        let t = Obs.Trace.none in
        Alcotest.(check bool) "not enabled" false (Obs.Trace.enabled t);
        let v =
          Obs.Trace.span t ~pid:0 ~round:0 Obs.Trace.Sending (fun () -> 41 + 1)
        in
        Alcotest.(check int) "span passes the value through" 42 v;
        Obs.Trace.instant t ~pid:0 ~round:0 "bootstrap";
        Alcotest.(check int) "no events" 0 (Obs.Trace.event_count t));
    case "spans survive an exception (aborted runs stay traceable)"
      (fun () ->
        let t = Obs.Trace.create () in
        (try
           Obs.Trace.span t ~pid:3 ~round:7 Obs.Trace.Processing (fun () ->
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check bool) "the span was recorded" true
          (Obs.Trace.covered t ~pid:3 ~round:7 Obs.Trace.Processing));
    case "phase names are stable" (fun () ->
        Alcotest.(check (list string)) "names"
          [
            "sending"; "retransmission"; "delivery"; "receiving";
            "processing"; "checkpointing"; "termination-test";
          ]
          (List.map Obs.Trace.phase_name all_phases));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let metrics_cases =
  [
    case "counters, gauges and histograms round-trip" (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "c";
        Obs.Metrics.incr ~by:4 m "c";
        Obs.Metrics.set_gauge m "g" 7;
        Obs.Metrics.max_gauge m "g" 3;
        Obs.Metrics.max_gauge m "g" 11;
        Obs.Metrics.observe m "h" 0.5;
        Obs.Metrics.observe m "h" 100.0;
        Alcotest.(check int) "counter" 5 (Obs.Metrics.counter m "c");
        Alcotest.(check int) "max gauge" 11 (Obs.Metrics.gauge m "g");
        Alcotest.(check int) "histogram count" 2 (Obs.Metrics.hist_count m "h");
        Alcotest.(check int) "absent counter reads 0" 0
          (Obs.Metrics.counter m "nope"));
    case "the snapshot is versioned JSON with sorted names" (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "z.last";
        Obs.Metrics.incr m "a.first";
        let json = Obs.Metrics.to_json m in
        let find needle =
          let nl = String.length needle and jl = String.length json in
          let rec go i =
            if i + nl > jl then -1
            else if String.sub json i nl = needle then i
            else go (i + 1)
          in
          go 0
        in
        Alcotest.(check bool) "schema tag" true (find "\"schema\":1" >= 0);
        Alcotest.(check bool) "sorted" true
          (find "a.first" >= 0 && find "a.first" < find "z.last"));
    case "the disabled registry is a no-op" (fun () ->
        let m = Obs.Metrics.none in
        Obs.Metrics.incr m "c";
        Obs.Metrics.observe m "h" 1.0;
        Alcotest.(check int) "counter stays 0" 0 (Obs.Metrics.counter m "c");
        Alcotest.(check (list (pair string int))) "no counters" []
          (Obs.Metrics.counters m));
    case "runtime metrics include the dataflow series" (fun () ->
        let _, metrics, r = traced_run () in
        Alcotest.(check int) "firings"
          (Stats.total_firings r.Sim_runtime.stats)
          (Obs.Metrics.counter metrics "runtime.firings");
        Alcotest.(check bool) "join probes counted" true
          (Obs.Metrics.counter metrics "joiner.probes" > 0);
        Alcotest.(check bool) "per-round histogram populated" true
          (Obs.Metrics.hist_count metrics "round.new_tuples"
          >= r.Sim_runtime.stats.Stats.rounds));
  ]

(* ------------------------------------------------------------------ *)
(* Run_config and the unified runtime API                              *)
(* ------------------------------------------------------------------ *)

let config_cases =
  [
    case "default matches the historical defaults" (fun () ->
        let d = Run_config.default in
        Alcotest.(check bool) "pushdown on" true d.Run_config.pushdown;
        Alcotest.(check bool) "no resend_all" false d.Run_config.resend_all;
        Alcotest.(check int) "round budget" 1_000_000 d.Run_config.max_rounds;
        Alcotest.(check bool) "fault-free" true
          (Fault.is_none d.Run_config.fault);
        Alcotest.(check bool) "Safra" true
          (d.Run_config.detector = Run_config.Safra);
        Alcotest.(check bool) "obs disabled" false
          (Obs.Trace.enabled d.Run_config.obs.Obs.trace));
    case "builders compose" (fun () ->
        let c =
          Run_config.(
            default |> with_capacity (Some 3)
            |> with_detector Dijkstra_scholten
            |> with_domains (Some 2) |> with_max_rounds 42)
        in
        Alcotest.(check bool) "capacity" true
          (c.Run_config.capacity = Some 3);
        Alcotest.(check bool) "detector" true
          (c.Run_config.detector = Run_config.Dijkstra_scholten);
        Alcotest.(check bool) "domains" true (c.Run_config.domains = Some 2);
        Alcotest.(check int) "max_rounds" 42 c.Run_config.max_rounds);
    case "Runtime.find knows both implementations" (fun () ->
        Alcotest.(check int) "two runtimes" 2 (List.length Runtime.all);
        Alcotest.(check bool) "sim" true (Runtime.find "sim" <> None);
        Alcotest.(check bool) "domains" true (Runtime.find "domains" <> None);
        Alcotest.(check bool) "unknown" true (Runtime.find "gpu" = None));
    case "both runtimes answer identically through Runtime.S" (fun () ->
        let edges = chain_edges 8 in
        List.iter
          (fun (module R : Runtime.S) ->
            let module H = Harness (R) in
            Alcotest.(check bool)
              (R.name ^ " agrees with the sequential evaluation")
              true
              (H.agrees_with_sequential ~pred:"anc" ancestor (example3_rw ())
                 ~edb:(edb_of_edges edges)))
          Runtime.all);
    case "both runtimes run from one Run_config" (fun () ->
        let edb = edb_of_edges (chain_edges 6) in
        let config = Run_config.default in
        let a = Sim_runtime.run ~config (example3_rw ()) ~edb in
        let b = Domain_runtime.run ~config (example3_rw ()) ~edb in
        Alcotest.check relation_t "same answers through one config"
          (anc_relation a.Sim_runtime.answers)
          (anc_relation b.Sim_runtime.answers));
  ]

(* ------------------------------------------------------------------ *)
(* The tentpole property: metric totals equal the Stats counters,      *)
(* exactly, on random sirups under random fault plans and credit.      *)
(* ------------------------------------------------------------------ *)

let obs_prop_arb =
  QCheck.make
    ~print:(fun ((gs, n, seed, picks), cfg, cap) ->
      Printf.sprintf "%s\nN=%d seed=%d picks=%s\n%s\ncapacity=%s"
        gs.T_random_sirups.gs_source n seed
        (String.concat "," (List.map string_of_int picks))
        (T_fault.print_cfg cfg)
        (match cap with None -> "-" | Some k -> string_of_int k))
    QCheck.Gen.(
      let* base = T_random_sirups.config_arb.QCheck.gen in
      let* cfg = T_fault.plan_cfg_gen in
      let* cap = oneof [ return None; map (fun k -> Some k) (int_range 1 4) ] in
      return (base, cfg, cap))

let prop_metrics_equal_stats (module R : Runtime.S) ~count ~max_n =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "metrics registry = Stats counters (%s)" R.name)
    obs_prop_arb
    (fun ((gs, n, seed, picks), cfg, cap) ->
      let n = min n max_n in
      match T_random_sirups.build gs n seed picks with
      | None -> QCheck.assume_fail ()
      | Some (_, rw) ->
        let edb = T_random_sirups.edb_for gs seed in
        let mx = Obs.Metrics.create () in
        let config =
          Run_config.(
            default
            |> with_fault (T_fault.plan_of cfg ~nprocs:n)
            |> with_capacity cap |> with_max_rounds 50_000
            |> with_metrics mx)
        in
        let r = R.run ~config rw ~edb in
        let s = r.Sim_runtime.stats in
        let sum f =
          Array.fold_left (fun acc p -> acc + f p) 0 s.Stats.per_proc
        in
        let eq name got want =
          if got <> want then
            QCheck.Test.fail_reportf "%s: metrics %d <> stats %d" name got
              want
          else true
        in
        eq "firings"
          (Obs.Metrics.counter mx "runtime.firings")
          (Stats.total_firings s)
        && eq "tuples_sent"
             (Obs.Metrics.counter mx "runtime.tuples_sent")
             (Stats.total_messages ~include_self:true s)
        && eq "tuples_received"
             (Obs.Metrics.counter mx "runtime.tuples_received")
             (sum (fun p -> p.Stats.tuples_received))
        && eq "retransmits"
             (Obs.Metrics.counter mx "runtime.retransmits")
             s.Stats.faults.Stats.retransmits
        && eq "credit_stalls"
             (Obs.Metrics.counter mx "runtime.credit_stalls")
             s.Stats.faults.Stats.credit_stalls)

let prop_metrics_sim =
  prop_metrics_equal_stats (module Runtime.Sim) ~count:60 ~max_n:max_int

let prop_metrics_domain =
  prop_metrics_equal_stats (module Runtime.Domains) ~count:20 ~max_n:3

let suites =
  [
    ("obs-trace", trace_cases);
    ("obs-metrics", metrics_cases);
    ("obs-config", config_cases);
    ( "obs-props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_metrics_sim; prop_metrics_domain ] );
  ]
