(* Property-based tests (QCheck, registered as alcotest cases). *)

open Datalog
open Pardatalog
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let edge_list_gen =
  QCheck.Gen.(
    let* nodes = int_range 2 18 in
    let* nedges = int_range 1 40 in
    list_size (return nedges)
      (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1))))

let edge_list =
  QCheck.make
    ~print:(fun es ->
      String.concat "; "
        (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es))
    edge_list_gen

let arbitrary_const_gen =
  QCheck.Gen.(
    oneof
      [
        map Const.int (int_range (-50) 50);
        map
          (fun i -> Const.sym (Printf.sprintf "c%d" i))
          (int_range 0 20);
      ])

let tuple_gen arity =
  QCheck.Gen.(
    map
      (fun cs -> Tuple.of_list cs)
      (list_size (return arity) arbitrary_const_gen))

let tuple_list =
  QCheck.make
    ~print:(fun ts -> String.concat "; " (List.map Tuple.to_string ts))
    QCheck.Gen.(int_range 1 3 >>= fun ar -> list_size (int_range 0 40) (tuple_gen ar))

(* ------------------------------------------------------------------ *)
(* Relation properties                                                 *)
(* ------------------------------------------------------------------ *)

let prop_relation_set_semantics =
  QCheck.Test.make ~count:200 ~name:"relation behaves as a set" tuple_list
    (fun tuples ->
      QCheck.assume (tuples <> []);
      let arity = Tuple.arity (List.hd tuples) in
      let tuples = List.filter (fun t -> Tuple.arity t = arity) tuples in
      let r = Relation.create ~arity () in
      List.iter (fun t -> ignore (Relation.add r t)) tuples;
      let expected = List.sort_uniq Tuple.compare tuples in
      let actual = Relation.sorted_elements r in
      List.length expected = List.length actual
      && List.for_all2 Tuple.equal expected actual)

let prop_relation_lookup_is_filter =
  QCheck.Test.make ~count:200 ~name:"lookup equals a scan filter" tuple_list
    (fun tuples ->
      QCheck.assume (tuples <> []);
      let arity = Tuple.arity (List.hd tuples) in
      let tuples = List.filter (fun t -> Tuple.arity t = arity) tuples in
      QCheck.assume (tuples <> []);
      let r = Relation.create ~arity () in
      List.iter (fun t -> ignore (Relation.add r t)) tuples;
      let probe = List.hd tuples in
      let positions = if arity >= 2 then [| 1 |] else [| 0 |] in
      let key = Tuple.project_key probe positions in
      let looked =
        List.sort Tuple.compare (Relation.lookup r ~positions ~key)
      in
      let scanned =
        List.sort Tuple.compare
          (List.filter
             (fun t -> Tuple.proj_equal t positions key)
             (Relation.to_list r))
      in
      List.length looked = List.length scanned
      && List.for_all2 Tuple.equal looked scanned)

(* ------------------------------------------------------------------ *)
(* Evaluation properties                                               *)
(* ------------------------------------------------------------------ *)

let prop_naive_equals_seminaive =
  QCheck.Test.make ~count:60 ~name:"naive = semi-naive on transitive closure"
    edge_list (fun edges ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let db = edb_of_edges edges in
      let n = Naive.evaluate ancestor db in
      let s, _ = Seminaive.evaluate ancestor db in
      Database.equal n s)

let prop_closure_correct =
  QCheck.Test.make ~count:60 ~name:"semi-naive computes the real closure"
    edge_list (fun edges ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      QCheck.assume (edges <> []);
      let db = edb_of_edges edges in
      let s, _ = Seminaive.evaluate ancestor db in
      Relation.equal
        (relation_of_pairs (closure_pairs edges))
        (anc_relation s))

let prop_nonlinear_equals_linear =
  QCheck.Test.make ~count:40 ~name:"nonlinear ancestor = linear ancestor"
    edge_list (fun edges ->
      let db = edb_of_edges edges in
      let lin, _ = Seminaive.evaluate ancestor db in
      let non, _ = Seminaive.evaluate Workload.Progs.ancestor_nonlinear db in
      Relation.equal (anc_relation lin) (anc_relation non))

(* ------------------------------------------------------------------ *)
(* Parallelization properties: Theorems 1, 2, 4, 5, 6 on random data   *)
(* ------------------------------------------------------------------ *)

let scheme_gen =
  QCheck.Gen.(
    let* nprocs = int_range 1 6 in
    let* seed = int_range 0 1000 in
    let* which = int_range 0 4 in
    return (nprocs, seed, which))

let scheme_arb =
  QCheck.make
    ~print:(fun (n, s, w) -> Printf.sprintf "nprocs=%d seed=%d scheme=%d" n s w)
    scheme_gen

let build_scheme (nprocs, seed, which) =
  match which with
  | 0 -> Strategy.hash_q ~seed ~nprocs ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor
  | 1 -> Strategy.hash_q ~seed ~nprocs ~ve:[ "X" ] ~vr:[ "Z" ] ancestor
  | 2 -> Strategy.no_communication ~seed ~nprocs ancestor
  | 3 -> Strategy.hash_q ~seed ~nprocs ~ve:[ "X"; "Y" ] ~vr:[ "Z"; "Y" ] ancestor
  | _ -> Strategy.general ~seed ~nprocs ancestor

let prop_parallel_equals_sequential =
  QCheck.Test.make ~count:60
    ~name:"Theorems 1/5: parallel answers = sequential answers"
    (QCheck.pair scheme_arb edge_list)
    (fun (scheme, edges) ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let edb = edb_of_edges edges in
      match build_scheme scheme with
      | Error _ -> QCheck.assume_fail ()
      | Ok rw ->
        let report = Verify.check rw ~edb in
        report.Verify.equal_answers)

let prop_uniform_schemes_non_redundant =
  QCheck.Test.make ~count:60
    ~name:"Theorems 2/6: guarded schemes never duplicate firings"
    (QCheck.pair scheme_arb edge_list)
    (fun (scheme, edges) ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let edb = edb_of_edges edges in
      match build_scheme scheme with
      | Error _ -> QCheck.assume_fail ()
      | Ok rw ->
        let report = Verify.check rw ~edb in
        report.Verify.non_redundant)

let prop_tradeoff_correct_for_all_alpha =
  QCheck.Test.make ~count:40
    ~name:"Theorem 4: the R scheme is correct for any alpha"
    (QCheck.triple (QCheck.int_range 1 5) (QCheck.float_range 0.0 1.0)
       edge_list)
    (fun (nprocs, alpha, edges) ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let edb = edb_of_edges edges in
      match Strategy.tradeoff ~nprocs ~alpha ancestor with
      | Error _ -> false
      | Ok rw ->
        let report = Verify.check rw ~edb in
        report.Verify.equal_answers)

let prop_example1_never_communicates =
  QCheck.Test.make ~count:40
    ~name:"Example 1 communicates only at pooling, on any input"
    (QCheck.pair (QCheck.int_range 1 6) edge_list)
    (fun (nprocs, edges) ->
      let edb = edb_of_edges edges in
      match Strategy.hash_q ~nprocs ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor with
      | Error _ -> false
      | Ok rw ->
        let r = Sim_runtime.run rw ~edb in
        Stats.total_messages r.Sim_runtime.stats = 0)

let prop_derived_network_is_respected =
  QCheck.Test.make ~count:30
    ~name:"Section 5: runs use only channels of the derived network"
    (QCheck.pair (QCheck.int_range 0 500) edge_list)
    (fun (seed, edges) ->
      (* Example 6 with the bit-vector function, varying g by seed. *)
      let p = Workload.Progs.example6 in
      let s = Result.get_ok (Analysis.as_sirup p) in
      let derived =
        Result.get_ok
          (Derive.minimal_network
             { sirup = s; ve = [ "X"; "Y" ]; vr = [ "Y"; "Z" ];
               spec = Hash_fn.Bitvec })
      in
      let h = Hash_fn.bitvec ~seed ~arity:2 () in
      let rw =
        Rewrite.make p
          ~policies:
            [
              Rewrite.Uniform (Discriminant.make ~vars:[ "X"; "Y" ] ~fn:h);
              Rewrite.Uniform (Discriminant.make ~vars:[ "Y"; "Z" ] ~fn:h);
            ]
      in
      let edb = Database.create () in
      List.iter
        (fun (a, b) ->
          ignore (Database.add_fact edb "q" (Tuple.of_ints [ a; b ]));
          ignore (Database.add_fact edb "r" (Tuple.of_ints [ b; a ])))
        edges;
      let r = Sim_runtime.run rw ~edb in
      Verify.channels_within r.Sim_runtime.stats derived)

(* ------------------------------------------------------------------ *)
(* Safra properties on random schedules                                *)
(* ------------------------------------------------------------------ *)

(* A single-threaded model of machines + channels + the ring token.
   Random schedule steps; the invariant is that detection happens only
   at (and eventually after) true quiescence. *)
let prop_safra_sound_and_live =
  QCheck.Test.make ~count:200 ~name:"Safra: sound and live on random schedules"
    (QCheck.pair (QCheck.int_range 1 6)
       (QCheck.list_of_size (QCheck.Gen.int_range 0 60)
          (QCheck.pair (QCheck.int_range 0 5) (QCheck.int_range 0 5))))
    (fun (machines, raw_script) ->
      let states = Array.init machines (fun _ -> Safra.create ()) in
      let in_flight = Queue.create () in
      (* Active work counter per machine: a machine with work > 0 is
         active. Delivering a message adds work. *)
      let work = Array.make machines 0 in
      work.(0) <- 1;
      let token_at = ref (-1) in
      (* -1 = not yet launched *)
      let token = ref Safra.initial_token in
      let detected = ref false in
      let truly_quiet () =
        Queue.is_empty in_flight && Array.for_all (fun w -> w = 0) work
      in
      let move_token () =
        if !detected then ()
        else
          match !token_at with
          | -1 ->
            if work.(0) = 0 then begin
              token_at := machines - 1;
              token := Safra.initial_token
            end
          | 0 ->
            if work.(0) = 0 then begin
              (match Safra.evaluate states.(0) !token with
               | `Terminated ->
                 if not (truly_quiet ()) then
                   QCheck.Test.fail_report "premature detection"
                 else detected := true
               | `Try_again -> ());
              if not !detected then begin
                token_at := machines - 1;
                token := Safra.initial_token
              end
            end
          | i ->
            if work.(i) = 0 then begin
              token := Safra.forward states.(i) !token;
              token_at := i - 1
            end
      in
      (* Execute the random script. *)
      List.iter
        (fun (src, dst) ->
          let src = src mod machines and dst = dst mod machines in
          (* A machine only sends while active. *)
          if work.(src) > 0 then begin
            Safra.record_send states.(src);
            Queue.add dst in_flight;
            (* Sometimes finish the sender's work unit. *)
            if (src + dst) mod 2 = 0 then work.(src) <- work.(src) - 1
          end
          else if not (Queue.is_empty in_flight) then begin
            let d = Queue.pop in_flight in
            Safra.record_receive states.(d);
            work.(d) <- work.(d) + 1
          end;
          move_token ())
        raw_script;
      (* Drain: deliver everything, finish all work, circulate. *)
      while not (Queue.is_empty in_flight) do
        let d = Queue.pop in_flight in
        Safra.record_receive states.(d);
        work.(d) <- 0
      done;
      Array.fill work 0 machines 0;
      let guard = ref 0 in
      while (not !detected) && !guard < 10 * (machines + 1) do
        incr guard;
        move_token ()
      done;
      !detected)

let prop_stratified_equals_plain =
  QCheck.Test.make ~count:40
    ~name:"stratified = plain semi-naive (answers and firings)"
    edge_list (fun edges ->
      let program =
        Parser.program_exn
          "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
           twohop(X,Y) :- tc(X,Z), tc(Z,Y)."
      in
      let db = edb_of_edges ~pred:"e" edges in
      let plain_db, plain = Seminaive.evaluate program db in
      let strat_db, strat = Stratified.evaluate program db in
      Database.equal plain_db strat_db
      && plain.Seminaive.firings = strat.Seminaive.firings)

let prop_decompose_exact =
  QCheck.Test.make ~count:40
    ~name:"Dong's decomposition = sequential on component-structured data"
    (QCheck.pair (QCheck.int_range 1 5) edge_list)
    (fun (nprocs, edges) ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      (* Duplicate the data as two constant-disjoint copies. *)
      let both =
        edges @ List.map (fun (a, b) -> (a + 1000, b + 1000)) edges
      in
      let db = edb_of_edges both in
      let seq, _ = Seminaive.evaluate ancestor db in
      match Decompose.run ancestor ~nprocs db with
      | Error _ -> false
      | Ok (r, _) ->
        Relation.equal (anc_relation seq)
          (anc_relation r.Pardatalog.Sim_runtime.answers))

let prop_reorder_preserves_everything =
  QCheck.Test.make ~count:40
    ~name:"join reordering preserves answers and firing counts"
    edge_list (fun edges ->
      let db = edb_of_edges edges in
      let plain_db, plain = Seminaive.evaluate ancestor db in
      let opt_db, opt = Seminaive.evaluate ~reorder:true ancestor db in
      Database.equal plain_db opt_db
      && plain.Seminaive.firings = opt.Seminaive.firings)

let props =
  List.map to_alcotest
    [
      prop_stratified_equals_plain;
      prop_decompose_exact;
      prop_reorder_preserves_everything;
      prop_relation_set_semantics;
      prop_relation_lookup_is_filter;
      prop_naive_equals_seminaive;
      prop_closure_correct;
      prop_nonlinear_equals_linear;
      prop_parallel_equals_sequential;
      prop_uniform_schemes_non_redundant;
      prop_tradeoff_correct_for_all_alpha;
      prop_example1_never_communicates;
      prop_derived_network_is_respected;
      prop_safra_sound_and_live;
    ]

let suites = [ ("properties", props) ]
