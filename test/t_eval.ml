(* Tests for Joiner, Naive and Seminaive. *)

open Datalog
open Helpers

let empty_rels : Joiner.relations =
  { window_of = (fun _ -> None) }

let rels_of db : Joiner.relations =
  Joiner.current_of (fun pred -> Database.find db pred)

let run_rule rule db =
  let plan = Joiner.compile rule in
  let acc = ref [] in
  Joiner.run plan
    ~sources:(Array.make (List.length rule.Rule.body) Joiner.Current)
    (rels_of db)
    ~emit:(fun t -> acc := t :: !acc);
  List.sort Tuple.compare !acc

let joiner_tests =
  [
    case "compile rejects unsafe rules" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Joiner.compile (Parser.rule_exn "p(X,W) :- q(X)."));
             false
           with Invalid_argument _ -> true));
    case "single-atom scan" (fun () ->
        let db = edb_of_edges [ (1, 2); (3, 4) ] in
        let out = run_rule (Parser.rule_exn "p(X,Y) :- par(X,Y).") db in
        Alcotest.(check int) "two results" 2 (List.length out));
    case "join on shared variable" (fun () ->
        let db = edb_of_edges [ (1, 2); (2, 3); (2, 4) ] in
        let out = run_rule (Parser.rule_exn "p(X,Y) :- par(X,Z), par(Z,Y).") db in
        Alcotest.(check (list (pair int int)))
          "paths of length 2"
          [ (1, 3); (1, 4) ]
          (List.map
             (fun t ->
               match Tuple.get t 0, Tuple.get t 1 with
               | Const.Int a, Const.Int b -> (a, b)
               | _ -> (-1, -1))
             out));
    case "constants in body filter" (fun () ->
        let db = edb_of_edges [ (1, 2); (3, 4) ] in
        let out = run_rule (Parser.rule_exn "p(Y) :- par(1,Y).") db in
        Alcotest.(check int) "one" 1 (List.length out);
        Alcotest.check tuple_t "value" (Tuple.of_ints [ 2 ]) (List.hd out));
    case "constants in head are emitted" (fun () ->
        let db = edb_of_edges [ (1, 2) ] in
        let out = run_rule (Parser.rule_exn "p(0,Y) :- par(X,Y).") db in
        Alcotest.check tuple_t "value" (Tuple.of_ints [ 0; 2 ]) (List.hd out));
    case "repeated variable within an atom" (fun () ->
        let db = edb_of_edges [ (1, 1); (1, 2); (3, 3) ] in
        let out = run_rule (Parser.rule_exn "p(X) :- par(X,X).") db in
        Alcotest.(check int) "two self loops" 2 (List.length out));
    case "repeated variable across head positions" (fun () ->
        let db = edb_of_edges [ (1, 2) ] in
        let out = run_rule (Parser.rule_exn "p(X,X) :- par(X,Y).") db in
        Alcotest.check tuple_t "doubled" (Tuple.of_ints [ 1; 1 ]) (List.hd out));
    case "empty relation yields nothing" (fun () ->
        let plan = Joiner.compile (Parser.rule_exn "p(X) :- q(X).") in
        let hit = ref false in
        Joiner.run plan ~sources:[| Joiner.Current |] empty_rels
          ~emit:(fun _ -> hit := true);
        Alcotest.(check bool) "no emission" false !hit);
    case "guards filter substitutions" (fun () ->
        let g =
          Rule.guard ~name:"h" ~vars:[ "X" ]
            ~fn:(fun key ->
              match key.(0) with Const.Int i -> i mod 2 | _ -> 0)
            ~expect:0
        in
        let rule =
          Rule.make ~guards:[ g ]
            (Parser.atom_exn "p(X,Y)")
            [ Parser.atom_exn "par(X,Y)" ]
        in
        let db = edb_of_edges [ (1, 2); (2, 3); (4, 5) ] in
        let out = run_rule rule db in
        Alcotest.(check int) "even sources only" 2 (List.length out));
    case "pushdown and post-join guards agree" (fun () ->
        let g =
          Rule.guard ~name:"h" ~vars:[ "Z" ]
            ~fn:(fun key ->
              match key.(0) with Const.Int i -> i mod 3 | _ -> 0)
            ~expect:1
        in
        let rule =
          Rule.make ~guards:[ g ]
            (Parser.atom_exn "p(X,Y)")
            [ Parser.atom_exn "par(X,Z)"; Parser.atom_exn "par(Z,Y)" ]
        in
        let db =
          edb_of_edges [ (1, 2); (2, 3); (3, 4); (4, 7); (7, 8); (0, 1) ]
        in
        let with_push =
          let plan = Joiner.compile ~pushdown:true rule in
          let acc = ref [] in
          Joiner.run plan ~sources:[| Joiner.Current; Joiner.Current |]
            (rels_of db) ~emit:(fun t -> acc := t :: !acc);
          List.sort Tuple.compare !acc
        in
        let without_push =
          let plan = Joiner.compile ~pushdown:false rule in
          let acc = ref [] in
          Joiner.run plan ~sources:[| Joiner.Current; Joiner.Current |]
            (rels_of db) ~emit:(fun t -> acc := t :: !acc);
          List.sort Tuple.compare !acc
        in
        Alcotest.(check int) "same count" (List.length with_push)
          (List.length without_push);
        List.iter2
          (fun a b -> Alcotest.check tuple_t "same tuples" a b)
          with_push without_push);
    case "delta sources see only the delta" (fun () ->
        (* One store, watermarked: position 0 is old, position 1 is
           the delta. *)
        let rel = Relation.create ~arity:2 () in
        ignore (Relation.add rel (Tuple.of_ints [ 1; 2 ]));
        ignore (Relation.add rel (Tuple.of_ints [ 2; 3 ]));
        let rels : Joiner.relations =
          {
            window_of =
              (fun p ->
                if String.equal p "par" then
                  Some { Joiner.w_rel = rel; w_old = 1; w_cur = 2 }
                else None);
          }
        in
        let plan = Joiner.compile (Parser.rule_exn "p(X,Y) :- par(X,Y).") in
        let count src =
          let n = ref 0 in
          Joiner.run plan ~sources:[| src |] rels ~emit:(fun _ -> incr n);
          !n
        in
        Alcotest.(check int) "old" 1 (count Joiner.Old);
        Alcotest.(check int) "delta" 1 (count Joiner.Delta);
        Alcotest.(check int) "current" 2 (count Joiner.Current));
    case "reordered plans enumerate the same substitutions" (fun () ->
        (* Written in a deliberately bad order (cross product first). *)
        let rule = Parser.rule_exn "p(X,Y) :- a(X), b(Y), ab(X,Y)." in
        let db = Database.create () in
        List.iter
          (fun i -> ignore (Database.add_fact db "a" (Tuple.of_ints [ i ])))
          [ 1; 2; 3 ];
        List.iter
          (fun i -> ignore (Database.add_fact db "b" (Tuple.of_ints [ i ])))
          [ 4; 5; 6 ];
        List.iter
          (fun (x, y) ->
            ignore (Database.add_fact db "ab" (Tuple.of_ints [ x; y ])))
          [ (1, 4); (2, 5); (9, 9) ];
        let collect reorder =
          let plan = Joiner.compile ~reorder rule in
          let acc = ref [] in
          Joiner.run plan
            ~sources:(Array.make 3 Joiner.Current)
            (rels_of db)
            ~emit:(fun t -> acc := t :: !acc);
          List.sort Tuple.compare !acc
        in
        let plain = collect false and reordered = collect true in
        Alcotest.(check int) "same count" (List.length plain)
          (List.length reordered);
        List.iter2
          (fun a b -> Alcotest.check tuple_t "same tuples" a b)
          plain reordered);
    case "reordering preserves delta-variant semantics" (fun () ->
        let db = edb_of_edges (Workload.Graphgen.binary_tree ~depth:4) in
        let plain, ps = Seminaive.evaluate ancestor db in
        let opt, os = Seminaive.evaluate ~reorder:true ancestor db in
        Alcotest.check database_t "same model" plain opt;
        Alcotest.(check int) "same firings" ps.Seminaive.firings
          os.Seminaive.firings);
    case "reordering preserves nonlinear evaluation" (fun () ->
        let db = edb_of_edges (Workload.Graphgen.chain 10) in
        let plain, ps =
          Seminaive.evaluate Workload.Progs.ancestor_nonlinear db
        in
        let opt, os =
          Seminaive.evaluate ~reorder:true Workload.Progs.ancestor_nonlinear db
        in
        Alcotest.check database_t "same model" plain opt;
        Alcotest.(check int) "same firings" ps.Seminaive.firings
          os.Seminaive.firings);
    case "sources length mismatch raises" (fun () ->
        let plan = Joiner.compile (Parser.rule_exn "p(X) :- q(X).") in
        Alcotest.(check bool) "raises" true
          (try
             Joiner.run plan ~sources:[||] empty_rels ~emit:(fun _ -> ());
             false
           with Invalid_argument _ -> true));
  ]

(* Naive and semi-naive evaluation. *)

let check_closure name edges =
  let db = edb_of_edges edges in
  let expected = relation_of_pairs (closure_pairs edges) in
  let ndb = Naive.evaluate ancestor db in
  let sdb, _ = Seminaive.evaluate ancestor db in
  Alcotest.check relation_t (name ^ " naive") expected (anc_relation ndb);
  Alcotest.check relation_t (name ^ " seminaive") expected (anc_relation sdb)

let eval_tests =
  [
    case "closure of a chain" (fun () ->
        check_closure "chain" (Workload.Graphgen.chain 12));
    case "closure of a cycle" (fun () ->
        check_closure "cycle" (Workload.Graphgen.cycle 8));
    case "closure of a tree" (fun () ->
        check_closure "tree" (Workload.Graphgen.binary_tree ~depth:4));
    case "closure of a random graph" (fun () ->
        let rng = Workload.Rng.create ~seed:7 in
        check_closure "random"
          (Workload.Graphgen.random_digraph rng ~nodes:25 ~edges:40));
    case "empty edb yields empty output" (fun () ->
        let db, stats = Seminaive.evaluate ancestor (Database.create ()) in
        Alcotest.(check int) "no anc" 0 (Database.cardinal db "anc");
        Alcotest.(check int) "no firings" 0 stats.Seminaive.firings);
    case "program facts are honoured" (fun () ->
        let p =
          Parser.program_exn
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y).
             par(1,2). par(2,3)."
        in
        let db, _ = Seminaive.evaluate p (Database.create ()) in
        Alcotest.check relation_t "closure"
          (relation_of_pairs [ (1, 2); (2, 3); (1, 3) ])
          (anc_relation db));
    case "input database is not modified" (fun () ->
        let db = edb_of_edges [ (1, 2); (2, 3) ] in
        ignore (Seminaive.evaluate ancestor db);
        Alcotest.(check bool) "no anc in input" false (Database.mem db "anc");
        ignore (Naive.evaluate ancestor db);
        Alcotest.(check bool) "still none" false (Database.mem db "anc"));
    case "seminaive firing count on a chain is exact" (fun () ->
        (* On a chain of n nodes, anc has n(n-1)/2 tuples and each is
           derived exactly once, so firings = |anc|. *)
        let n = 10 in
        let db = edb_of_edges (Workload.Graphgen.chain n) in
        let _, stats = Seminaive.evaluate ancestor db in
        Alcotest.(check int) "firings" (n * (n - 1) / 2)
          stats.Seminaive.firings;
        Alcotest.(check int) "no duplicates" 0
          stats.Seminaive.duplicate_firings);
    case "seminaive firings equal naive-per-substitution on diamonds"
      (fun () ->
        (* Diamond: 0->1, 0->2, 1->3, 2->3 gives two derivations of
           (0,3): firings = 5 exit + ... just check duplicates > 0 and
           new_tuples = |anc|. *)
        let edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
        let db = edb_of_edges edges in
        let out, stats = Seminaive.evaluate ancestor db in
        Alcotest.(check int) "anc size" 5 (Database.cardinal out "anc");
        Alcotest.(check int) "new tuples" 5 stats.Seminaive.new_tuples;
        Alcotest.(check int) "one duplicate derivation" 1
          stats.Seminaive.duplicate_firings;
        Alcotest.(check int) "firings = new + dup" 6 stats.Seminaive.firings);
    case "iterations equal recursion depth" (fun () ->
        let n = 9 in
        let db = edb_of_edges (Workload.Graphgen.chain n) in
        let _, stats = Seminaive.evaluate ancestor db in
        (* Chain of 9 nodes: longest anc path 8 edges; bootstrap gives
           depth-1 tuples, each iteration extends by one, plus a final
           empty-delta-confirming iteration. *)
        Alcotest.(check bool) "about n iterations" true
          (stats.Seminaive.iterations >= n - 2
           && stats.Seminaive.iterations <= n));
    case "nonlinear ancestor agrees with linear" (fun () ->
        let edges = Workload.Graphgen.binary_tree ~depth:4 in
        let db = edb_of_edges edges in
        let lin, _ = Seminaive.evaluate ancestor db in
        let nonlin, _ = Seminaive.evaluate Workload.Progs.ancestor_nonlinear db in
        Alcotest.check relation_t "same closure" (anc_relation lin)
          (anc_relation nonlin));
    case "same-generation agrees with naive" (fun () ->
        let rng = Workload.Rng.create ~seed:5 in
        let db = Workload.Edb.same_generation rng ~people:20 ~parents_per:2 in
        let s, _ = Seminaive.evaluate Workload.Progs.same_generation db in
        let n = Naive.evaluate Workload.Progs.same_generation db in
        Alcotest.check relation_t "sg equal" (Database.get s "sg")
          (Database.get n "sg"));
    case "incremental injection behaves like initial facts" (fun () ->
        let db = edb_of_edges [ (1, 2); (2, 3) ] in
        let engine = Seminaive.create ancestor ~edb:db in
        ignore (Seminaive.bootstrap engine);
        (* Inject an anc tuple as if received from elsewhere. *)
        Alcotest.(check bool) "fresh" true
          (Seminaive.inject engine "anc" (Tuple.of_ints [ 3; 9 ]));
        Alcotest.(check bool) "duplicate refused" false
          (Seminaive.inject engine "anc" (Tuple.of_ints [ 3; 9 ]));
        Seminaive.run_to_fixpoint engine;
        let result = Seminaive.database engine in
        Alcotest.(check bool) "derived via injected tuple" true
          (Relation.mem (anc_relation result) (Tuple.of_ints [ 1; 9 ])));
    case "incremental base insertions extend the fixpoint" (fun () ->
        (* The engine is not restricted to derived predicates: injecting
           a new base tuple after a fixpoint and stepping again performs
           insertion-only incremental maintenance. *)
        let db = edb_of_edges [ (1, 2); (3, 4) ] in
        let engine = Seminaive.create ancestor ~edb:db in
        Seminaive.run_to_fixpoint engine;
        Alcotest.(check int) "two facts derived" 2
          (Relation.cardinal (anc_relation (Seminaive.database engine)));
        (* Now connect the two chains. *)
        Alcotest.(check bool) "new base tuple" true
          (Seminaive.inject engine "par" (Tuple.of_ints [ 2; 3 ]));
        Seminaive.run_to_fixpoint engine;
        let anc = anc_relation (Seminaive.database engine) in
        Alcotest.check relation_t "full closure"
          (relation_of_pairs (closure_pairs [ (1, 2); (2, 3); (3, 4) ]))
          anc);
    case "incremental insertions agree with from-scratch evaluation"
      (fun () ->
        let rng = Workload.Rng.create ~seed:41 in
        let edges = Workload.Graphgen.random_digraph rng ~nodes:20 ~edges:40 in
        let first, rest =
          List.filteri (fun i _ -> i < 20) edges,
          List.filteri (fun i _ -> i >= 20) edges
        in
        let engine = Seminaive.create ancestor ~edb:(edb_of_edges first) in
        Seminaive.run_to_fixpoint engine;
        List.iter
          (fun (a, b) ->
            ignore (Seminaive.inject engine "par" (Tuple.of_ints [ a; b ]));
            Seminaive.run_to_fixpoint engine)
          rest;
        let scratch, _ = Seminaive.evaluate ancestor (edb_of_edges edges) in
        Alcotest.check relation_t "same closure" (anc_relation scratch)
          (anc_relation (Seminaive.database engine)));
    case "bootstrap twice raises" (fun () ->
        let engine = Seminaive.create ancestor ~edb:(edb_of_edges [ (1, 2) ]) in
        ignore (Seminaive.bootstrap engine);
        Alcotest.(check bool) "raises" true
          (try
             ignore (Seminaive.bootstrap engine);
             false
           with Invalid_argument _ -> true));
    case "step before bootstrap raises" (fun () ->
        let engine = Seminaive.create ancestor ~edb:(edb_of_edges [ (1, 2) ]) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Seminaive.step engine);
             false
           with Invalid_argument _ -> true));
    case "per-rule firing counts split exit and recursion" (fun () ->
        let n = 10 in
        let db = edb_of_edges (Workload.Graphgen.chain n) in
        let engine = Seminaive.create ancestor ~edb:db in
        Seminaive.run_to_fixpoint engine;
        (match Seminaive.per_rule_firings engine with
         | [ (_, exit_f); (_, rec_f) ] ->
           Alcotest.(check int) "exit rule" (n - 1) exit_f;
           Alcotest.(check int) "recursive rule" ((n - 1) * (n - 2) / 2) rec_f
         | _ -> Alcotest.fail "expected two rules");
        Alcotest.(check int) "they sum to the total"
          (Seminaive.stats engine).Seminaive.firings
          (List.fold_left
             (fun acc (_, f) -> acc + f)
             0
             (Seminaive.per_rule_firings engine)));
    case "naive respects the iteration budget" (fun () ->
        let db = edb_of_edges (Workload.Graphgen.chain 30) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Naive.evaluate ~max_iterations:2 ancestor db);
             false
           with Failure _ -> true));
  ]

let suites = [ ("joiner", joiner_tests); ("eval", eval_tests) ]
