(* The datalogd serving layer: wire protocol round-trips, and the
   server engine driven in-process over real Unix sockets — admission
   control, budget degradation, idempotent replay, duplicate
   suppression and drain, each pinned deterministically (saturation via
   the hold-eval test knob, not timing luck). *)

open Serve

let case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let protocol_cases =
  [
    case "request parsing accepts the full QUERY form" (fun () ->
        match
          Protocol.parse_request
            "QUERY id=q-1 prog=anc goal=anc rows=true stats=true \
             deadline-ms=250 max-store=100 nprocs=2 scheme=auto runtime=sim"
        with
        | Ok (Protocol.Query q) ->
          Alcotest.(check string) "id" "q-1" q.Protocol.q_id;
          Alcotest.(check string) "prog" "anc" q.Protocol.q_prog;
          Alcotest.(check (option string)) "goal" (Some "anc")
            q.Protocol.q_goal;
          Alcotest.(check bool) "rows" true q.Protocol.q_rows;
          Alcotest.(check bool) "stats" true q.Protocol.q_stats;
          Alcotest.(check (option int)) "deadline" (Some 250)
            q.Protocol.q_deadline_ms;
          Alcotest.(check (option int)) "max-store" (Some 100)
            q.Protocol.q_max_store;
          Alcotest.(check (option int)) "nprocs" (Some 2) q.Protocol.q_nprocs;
          Alcotest.(check bool) "scheme" true (q.Protocol.q_scheme = `Auto);
          Alcotest.(check bool) "runtime" true (q.Protocol.q_runtime = `Sim)
        | Ok _ -> Alcotest.fail "parsed as a non-query"
        | Error e -> Alcotest.fail e);
    case "request parsing rejects malformed input" (fun () ->
        let rejects line =
          match Protocol.parse_request line with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %S" line
        in
        rejects "";
        rejects "FROB x=1";
        rejects "QUERY prog=anc";
        rejects "QUERY id=q1";
        rejects "QUERY id=q/1 prog=anc";
        rejects "QUERY id=q1 prog=anc deadline-ms=soon";
        rejects "QUERY id=q1 prog=anc deadline-ms=0";
        rejects "QUERY id=q1 prog=anc scheme=best";
        rejects "QUERY id=q1 prog=anc runtime=gpu";
        rejects "QUERY id=q1 prog=anc rows=maybe";
        rejects "LOAD";
        rejects "LOAD two names";
        rejects "HELLO tenant=space name");
    case "valid_name bounds" (fun () ->
        Alcotest.(check bool) "simple" true (Protocol.valid_name "a-b_c.9");
        Alcotest.(check bool) "empty" false (Protocol.valid_name "");
        Alcotest.(check bool) "128 ok" true
          (Protocol.valid_name (String.make 128 'x'));
        Alcotest.(check bool) "129 too long" false
          (Protocol.valid_name (String.make 129 'x'));
        Alcotest.(check bool) "space" false (Protocol.valid_name "a b");
        Alcotest.(check bool) "equals" false (Protocol.valid_name "a=b"));
    case "reply formatting and classification round-trip" (fun () ->
        let roundtrip line expect =
          match Protocol.classify line with
          | Ok head ->
            Alcotest.(check bool) (Printf.sprintf "%S" line) true
              (expect head)
          | Error e -> Alcotest.failf "%S: %s" line e
        in
        roundtrip Protocol.greeting (function
          | Protocol.Ready { proto } -> proto = Protocol.version
          | _ -> false);
        roundtrip
          (Protocol.busy ~reason:"queue" ~retry_after_ms:25 ())
          (function
            | Protocol.Busy { id = None; reason = "queue";
                              retry_after_ms = 25 } ->
              true
            | _ -> false);
        roundtrip
          (Protocol.busy ~id:"q1" ~reason:"tenant" ~retry_after_ms:7 ())
          (function
            | Protocol.Busy { id = Some "q1"; reason = "tenant";
                              retry_after_ms = 7 } ->
              true
            | _ -> false);
        roundtrip (Protocol.retry ~id:"q2" ~retry_after_ms:11) (function
          | Protocol.Retry { id = "q2"; retry_after_ms = 11 } -> true
          | _ -> false);
        roundtrip
          (Protocol.result_head ~stats:"{\"schema\":2}" ~id:"q3" ~rows:6
             ~scheme:"general" ())
          (function
            | Protocol.Result_head
                { id = "q3"; partial = false; rows = 6; scheme = "general";
                  stats = Some "{\"schema\":2}"; _ } ->
              true
            | _ -> false);
        roundtrip
          (Protocol.partial_head ~id:"q4" ~reason:"deadline" ~scheme:"q" ())
          (function
            | Protocol.Result_head
                { id = "q4"; partial = true; reason = Some "deadline";
                  rows = 0; scheme = "q"; stats = None } ->
              true
            | _ -> false);
        roundtrip (Protocol.end_of_result ~id:"q5") (function
          | Protocol.End_of_result { id = "q5" } -> true
          | _ -> false);
        roundtrip (Protocol.row "anc(1, 2)") (function
          | Protocol.Row "anc(1, 2)" -> true
          | _ -> false);
        roundtrip (Protocol.err ~code:"proto" "what is this") (function
          | Protocol.Err { code = "proto"; msg = "what is this" } -> true
          | _ -> false);
        roundtrip (Protocol.bye ~reason:"draining") (function
          | Protocol.Bye { reason = "draining" } -> true
          | _ -> false);
        roundtrip "PONG" (function Protocol.Pong -> true | _ -> false);
        roundtrip "STATS {\"schema\":1}" (function
          | Protocol.Stats_reply "{\"schema\":1}" -> true
          | _ -> false));
    case "UPDATE and RETRACT parse; missing keys are rejected" (fun () ->
        (match Protocol.parse_request "UPDATE id=u1 prog=tc" with
         | Ok (Protocol.Update u) ->
           Alcotest.(check string) "id" "u1" u.Protocol.u_id;
           Alcotest.(check string) "prog" "tc" u.Protocol.u_prog
         | Ok _ -> Alcotest.fail "parsed as a non-update"
         | Error e -> Alcotest.fail e);
        (match Protocol.parse_request "RETRACT id=u2 prog=tc" with
         | Ok (Protocol.Retract u) ->
           Alcotest.(check string) "id" "u2" u.Protocol.u_id
         | Ok _ -> Alcotest.fail "parsed as a non-retract"
         | Error e -> Alcotest.fail e);
        let rejects line =
          match Protocol.parse_request line with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %S" line
        in
        rejects "UPDATE prog=tc";
        rejects "UPDATE id=u1";
        rejects "RETRACT id=u/1 prog=tc";
        rejects "UPDATE id=u1 prog=a=b");
    case "live=true parses; a bad value is rejected" (fun () ->
        (match Protocol.parse_request "QUERY id=q1 prog=anc live=true" with
         | Ok (Protocol.Query q) ->
           Alcotest.(check bool) "live" true q.Protocol.q_live
         | _ -> Alcotest.fail "live query did not parse");
        (match Protocol.parse_request "QUERY id=q1 prog=anc" with
         | Ok (Protocol.Query q) ->
           Alcotest.(check bool) "default off" false q.Protocol.q_live
         | _ -> Alcotest.fail "plain query did not parse");
        match Protocol.parse_request "QUERY id=q1 prog=anc live=yes" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted live=yes");
    case "parse_updates: signs, defaults, multi-fact lines, errors"
      (fun () ->
        let open Datalog in
        let show (u : Delta.update) =
          Format.asprintf "%c%s%a"
            (match u.Delta.u_op with Delta.Insert -> '+' | Delta.Delete -> '-')
            u.Delta.u_pred Tuple.pp u.Delta.u_tuple
        in
        let check_updates name ~default text expect =
          match Protocol.parse_updates ~default text with
          | Ok ups ->
            Alcotest.(check (list string)) name expect (List.map show ups)
          | Error e -> Alcotest.fail e
        in
        check_updates "signed lines" ~default:Delta.Insert
          "+edge(1,2).\n-edge(2,3).\n"
          [ "+edge(1, 2)"; "-edge(2, 3)" ];
        check_updates "unsigned takes the default" ~default:Delta.Delete
          "edge(1,2).\n" [ "-edge(1, 2)" ];
        check_updates "several facts share the line's sign"
          ~default:Delta.Insert "-edge(1,2). edge(3,4).\n"
          [ "-edge(1, 2)"; "-edge(3, 4)" ];
        check_updates "blank lines are skipped" ~default:Delta.Insert
          "\n+edge(1,2).\n\n" [ "+edge(1, 2)" ];
        match Protocol.parse_updates ~default:Delta.Insert "edge(1,." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a malformed fact");
  ]

(* ------------------------------------------------------------------ *)
(* Server engine, in-process                                           *)
(* ------------------------------------------------------------------ *)

let ancestor_text =
  "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), par(Z,Y).\n"

let chain_facts n =
  String.concat ""
    (List.init n (fun i -> Printf.sprintf "par(%d,%d).\n" (i + 1) (i + 2)))

let fresh_addr =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Server.Unix_sock
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "t_serve_%d_%d.sock" (Unix.getpid ()) !counter))

let with_server ?(facts = 20) config_tweaks f =
  let addr = fresh_addr () in
  let config = config_tweaks (Server.default_config addr) in
  let srv =
    match Server.start config with
    | Ok srv -> srv
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop srv))
    (fun () ->
      (match Server.load_program srv "anc" ancestor_text with
       | Ok _ -> ()
       | Error e -> Alcotest.fail e);
      (match Server.add_facts srv "anc" (chain_facts facts) with
       | Ok _ -> ()
       | Error e -> Alcotest.fail e);
      f srv addr)

let with_client addr f =
  match Client.connect addr with
  | Client.Conn c ->
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)
  | Client.Conn_busy _ -> Alcotest.fail "connect rejected"
  | Client.Conn_error e -> Alcotest.fail e

let head_of = function
  | Ok (r : Client.reply) -> r.Client.head
  | Error e -> Alcotest.fail e

let sim_tweaks c = { c with Server.nprocs = 2; runtime = `Sim }

let server_cases =
  [
    case "load, facts, query, rows" (fun () ->
        with_server sim_tweaks (fun _srv addr ->
            with_client addr (fun c ->
                (match
                   head_of
                     (Client.request c
                        "QUERY id=q1 prog=anc goal=anc rows=true runtime=sim")
                 with
                 | Protocol.Result_head { partial = false; rows; _ } ->
                   (* chain-20 transitive closure: 21*20/2 pairs *)
                   Alcotest.(check int) "rows" 210 rows
                 | _ -> Alcotest.fail "expected RESULT");
                match Client.request c "QUERY id=q1x prog=anc rows=true" with
                | Ok r ->
                  Alcotest.(check int) "ROW lines" 210
                    (List.length r.Client.rows)
                | Error e -> Alcotest.fail e)));
    case "unknown program is a clean ERR" (fun () ->
        with_server sim_tweaks (fun _srv addr ->
            with_client addr (fun c ->
                match head_of (Client.request c "QUERY id=q1 prog=nope") with
                | Protocol.Err { code = "unknown-prog"; _ } -> ()
                | _ -> Alcotest.fail "expected ERR unknown-prog")));
    case "store budget degrades to PARTIAL with schema-2 attribution"
      (fun () ->
        with_server sim_tweaks (fun _srv addr ->
            with_client addr (fun c ->
                match
                  head_of
                    (Client.request c
                       "QUERY id=q1 prog=anc max-store=4 stats=true \
                        runtime=sim")
                with
                | Protocol.Result_head
                    { partial = true; reason = Some "store_budget";
                      stats = Some j; _ } ->
                  Alcotest.(check bool) "outcome attributed" true
                    (contains j "\"outcome\":\"store_budget\"")
                | _ -> Alcotest.fail "expected PARTIAL store_budget")));
    case "idempotent replay is byte-identical, even for PARTIAL" (fun () ->
        with_server sim_tweaks (fun srv addr ->
            with_client addr (fun c ->
                let q =
                  "QUERY id=same prog=anc rows=true stats=true runtime=sim"
                in
                let a = Client.request c q and b = Client.request c q in
                (match (a, b) with
                 | Ok a, Ok b ->
                   Alcotest.(check (list string)) "identical replay"
                     a.Client.raw b.Client.raw
                 | _ -> Alcotest.fail "query failed");
                let p =
                  "QUERY id=part prog=anc max-store=4 runtime=sim"
                in
                let a = Client.request c p and b = Client.request c p in
                (match (a, b) with
                 | Ok a, Ok b ->
                   Alcotest.(check (list string)) "identical PARTIAL replay"
                     a.Client.raw b.Client.raw
                 | _ -> Alcotest.fail "partial query failed");
                Alcotest.(check bool) "replays counted" true
                  (Obs.Metrics.counter (Server.metrics srv) "serve.replays"
                   >= 2))));
    case "same tenant same id: replay; other tenant: fresh execution"
      (fun () ->
        with_server sim_tweaks (fun srv addr ->
            let run_as tenant =
              with_client addr (fun c ->
                  (match
                     head_of
                       (Client.request c
                          (Printf.sprintf "HELLO tenant=%s" tenant))
                   with
                  | Protocol.Okay _ -> ()
                  | _ -> Alcotest.fail "HELLO failed");
                  match Client.request c "QUERY id=k prog=anc runtime=sim" with
                  | Ok r -> r.Client.raw
                  | Error e -> Alcotest.fail e)
            in
            let a = run_as "alice" in
            let b = run_as "bob" in
            let a' = run_as "alice" in
            Alcotest.(check (list string)) "alice replayed" a a';
            Alcotest.(check (list string)) "bob got his own answer" a b;
            Alcotest.(check int) "exactly one replay"
              1
              (Obs.Metrics.counter (Server.metrics srv) "serve.replays")));
    case "saturation answers BUSY immediately; a retrying client recovers"
      (fun () ->
        with_server
          (fun c ->
            { (sim_tweaks c) with Server.max_inflight = 1; queue_depth = 0;
              tenant_inflight = 2; hold_eval_ms = 300; retry_after_ms = 10 })
          (fun _srv addr ->
            with_client addr (fun slow ->
                with_client addr (fun fast ->
                    (* Park a slow query, then collide with it. *)
                    Client.send slow "QUERY id=slow prog=anc runtime=sim";
                    Unix.sleepf 0.05;
                    (match
                       head_of (Client.request fast "QUERY id=q2 prog=anc")
                     with
                    | Protocol.Busy { reason; _ } ->
                      Alcotest.(check string) "rejected by the gate" "queue"
                        reason
                    | _ -> Alcotest.fail "expected BUSY");
                    (* A duplicate of the in-flight id is RETRY, not a
                       second execution. *)
                    (match
                       head_of (Client.request fast "QUERY id=slow prog=anc")
                     with
                    | Protocol.Retry { id = "slow"; _ } -> ()
                    | _ -> Alcotest.fail "expected RETRY");
                    (* Backoff outlives the hold: the retrying client
                       eventually gets a real answer. *)
                    (match
                       Client.request_retry ~max_attempts:10 ~base_ms:50
                         ~cap_ms:200 fast "QUERY id=q3 prog=anc runtime=sim"
                     with
                    | Ok out ->
                      Alcotest.(check bool) "absorbed at least one BUSY" true
                        (out.Client.busy_replies >= 1);
                      (match out.Client.reply.Client.head with
                       | Protocol.Result_head { partial = false; _ } -> ()
                       | _ -> Alcotest.fail "retry did not recover")
                    | Error e -> Alcotest.fail e);
                    match Client.read_reply slow with
                    | Ok r -> (
                      match r.Client.head with
                      | Protocol.Result_head { partial = false; _ } -> ()
                      | _ -> Alcotest.fail "slow query lost its answer")
                    | Error e -> Alcotest.fail e))));
    case "stats json counts programs and sessions" (fun () ->
        with_server sim_tweaks (fun srv addr ->
            with_client addr (fun c ->
                (match head_of (Client.request c "PING") with
                 | Protocol.Pong -> ()
                 | _ -> Alcotest.fail "expected PONG");
                let j = Server.stats_json srv in
                Alcotest.(check bool) "has program entry" true
                  (contains j "\"anc\":{\"rules\":2,\"facts\":20}");
                Alcotest.(check bool) "one session" true
                  (contains j "\"active_sessions\":1"))));
    case "drain finishes in-flight work and leaks nothing" (fun () ->
        let addr = fresh_addr () in
        let srv =
          match
            Server.start
              { (sim_tweaks (Server.default_config addr)) with
                Server.hold_eval_ms = 200 }
          with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        (match Server.load_program srv "anc" ancestor_text with
         | Ok _ -> ()
         | Error e -> Alcotest.fail e);
        (match Server.add_facts srv "anc" (chain_facts 10) with
         | Ok _ -> ()
         | Error e -> Alcotest.fail e);
        match Client.connect addr with
        | Client.Conn c ->
          Client.send c "QUERY id=inflight prog=anc runtime=sim";
          Unix.sleepf 0.05;
          let stopper =
            Thread.create (fun () -> ignore (Server.stop srv)) ()
          in
          (* The in-flight query must still complete... *)
          (match Client.read_reply c with
           | Ok r -> (
             match r.Client.head with
             | Protocol.Result_head { partial = false; _ } -> ()
             | _ -> Alcotest.fail "in-flight query lost under drain")
           | Error e -> Alcotest.fail e);
          (* ...followed by the drain notice. *)
          (match Client.read_reply c with
           | Ok r -> (
             match r.Client.head with
             | Protocol.Bye { reason = "draining" } -> ()
             | _ -> Alcotest.fail "expected BYE reason=draining")
           | Error _ -> ());
          Client.close c;
          Thread.join stopper;
          Alcotest.(check int) "no session left" 0
            (Server.active_sessions srv)
        | _ -> Alcotest.fail "connect failed");
    case "UPDATE folds into the live model; live rows match from-scratch"
      (fun () ->
        with_server sim_tweaks (fun _srv addr ->
            with_client addr (fun c ->
                (match
                   head_of
                     (Client.request c
                        ~payload:"par(100,101).\n+par(101,102).\n"
                        "UPDATE id=u1 prog=anc")
                 with
                 | Protocol.Okay { op = "update"; kv } ->
                   (* 2 base facts + anc(100,101), anc(101,102),
                      anc(100,102) *)
                   Alcotest.(check (option string)) "added" (Some "5")
                     (Protocol.find_kv kv "added");
                   Alcotest.(check (option string)) "removed" (Some "0")
                     (Protocol.find_kv kv "removed")
                 | _ -> Alcotest.fail "expected OK update");
                let live =
                  match
                    Client.request c "QUERY id=l1 prog=anc live=true rows=true"
                  with
                  | Ok r -> (
                    (match r.Client.head with
                     | Protocol.Result_head { scheme = "live"; rows; _ } ->
                       Alcotest.(check int) "live rows" 213 rows
                     | _ -> Alcotest.fail "expected a live RESULT");
                    r.Client.rows)
                  | Error e -> Alcotest.fail e
                in
                let scratch =
                  match
                    Client.request c "QUERY id=s1 prog=anc rows=true runtime=sim"
                  with
                  | Ok r -> r.Client.rows
                  | Error e -> Alcotest.fail e
                in
                Alcotest.(check (list string))
                  "live = from-scratch, byte for byte" scratch live)));
    case "RETRACT deletes; the reply counts the net model change" (fun () ->
        with_server sim_tweaks (fun _srv addr ->
            with_client addr (fun c ->
                (match
                   head_of
                     (Client.request c
                        ~payload:"+par(100,101).\n+par(101,102).\n"
                        "UPDATE id=u1 prog=anc")
                 with
                 | Protocol.Okay _ -> ()
                 | _ -> Alcotest.fail "seed update failed");
                (match
                   head_of
                     (Client.request c ~payload:"par(100,101).\n"
                        "RETRACT id=u2 prog=anc")
                 with
                 | Protocol.Okay { op = "retract"; kv } ->
                   (* par(100,101), anc(100,101), anc(100,102) go away *)
                   Alcotest.(check (option string)) "removed" (Some "3")
                     (Protocol.find_kv kv "removed");
                   Alcotest.(check (option string)) "added" (Some "0")
                     (Protocol.find_kv kv "added")
                 | _ -> Alcotest.fail "expected OK retract");
                match
                  head_of
                    (Client.request c "QUERY id=l1 prog=anc live=true")
                with
                | Protocol.Result_head { rows; _ } ->
                  Alcotest.(check int) "anc(101,102) survives" 211 rows
                | _ -> Alcotest.fail "expected RESULT")));
    case "replaying an UPDATE id applies the batch exactly once" (fun () ->
        with_server sim_tweaks (fun srv addr ->
            with_client addr (fun c ->
                let u = "UPDATE id=uu prog=anc" in
                let payload = "+par(0,1).\n" in
                let a = Client.request c ~payload u in
                let b = Client.request c ~payload u in
                (match (a, b) with
                 | Ok a, Ok b ->
                   Alcotest.(check (list string)) "byte-identical replay"
                     a.Client.raw b.Client.raw
                 | _ -> Alcotest.fail "update failed");
                Alcotest.(check int) "applied once" 1
                  (Obs.Metrics.counter (Server.metrics srv)
                     "serve.updates_ok");
                Alcotest.(check int) "second send was a replay" 1
                  (Obs.Metrics.counter (Server.metrics srv) "serve.replays"))));
    case "updating a derived predicate is a clean ERR; the model survives"
      (fun () ->
        with_server sim_tweaks (fun _srv addr ->
            with_client addr (fun c ->
                (match
                   head_of
                     (Client.request c ~payload:"anc(1,2).\n"
                        "UPDATE id=bad prog=anc")
                 with
                 | Protocol.Err { code = "update"; _ } -> ()
                 | _ -> Alcotest.fail "expected ERR update");
                match
                  head_of
                    (Client.request c "QUERY id=l1 prog=anc live=true")
                with
                | Protocol.Result_head { rows = 210; _ } -> ()
                | _ -> Alcotest.fail "live model lost after a refused batch")));
    case "live queries open the session lazily; FACTS invalidates it"
      (fun () ->
        with_server sim_tweaks (fun srv addr ->
            with_client addr (fun c ->
                (match
                   head_of
                     (Client.request c "QUERY id=l1 prog=anc live=true")
                 with
                 | Protocol.Result_head { scheme = "live"; rows = 210; _ } ->
                   ()
                 | _ -> Alcotest.fail "expected a live RESULT");
                (match Server.add_facts srv "anc" "par(50,51).\n" with
                 | Ok _ -> ()
                 | Error e -> Alcotest.fail e);
                match
                  head_of
                    (Client.request c "QUERY id=l2 prog=anc live=true")
                with
                | Protocol.Result_head { rows; _ } ->
                  Alcotest.(check int) "rebuilt over the new EDB" 211 rows
                | _ -> Alcotest.fail "expected RESULT")));
    case "config validation rejects nonsense" (fun () ->
        let bad tweak =
          match
            Server.validate_config
              (tweak (Server.default_config (fresh_addr ())))
          with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "accepted an invalid config"
        in
        bad (fun c -> { c with Server.nprocs = 0 });
        bad (fun c -> { c with Server.max_inflight = 0 });
        bad (fun c -> { c with Server.queue_depth = -1 });
        bad (fun c -> { c with Server.retry_after_ms = 0 });
        bad (fun c -> { c with Server.drain_grace = -1.0 });
        bad (fun c -> { c with Server.deadline_cap_ms = Some 0 }));
  ]

let suites =
  [ ("serve-protocol", protocol_cases); ("serve-server", server_cases) ]
