End-to-end checks of the datalogp command-line interface. Everything
here is deterministic: fixed seeds, the simulated runtime, and sorted
answer printing.

  $ cat > anc.dl <<'PROG'
  > anc(X,Y) :- par(X,Y).
  > anc(X,Y) :- par(X,Z), anc(Z,Y).
  > PROG

  $ datalogp gen chain --size 5 > chain.dl
  $ cat chain.dl
  par(0,1).
  par(1,2).
  par(2,3).
  par(3,4).

Sequential evaluation prints the closure and engine statistics.

  $ datalogp run anc.dl --edb chain.dl
  anc/2 (10 tuples):
    anc(0, 1)
    anc(0, 2)
    anc(0, 3)
    anc(0, 4)
    anc(1, 2)
    anc(1, 3)
    anc(1, 4)
    anc(2, 3)
    anc(2, 4)
    anc(3, 4)
  iterations=4 firings=10 new_tuples=10 duplicates=0

The stratified engine computes the same model.

  $ datalogp run anc.dl --edb chain.dl --engine stratified -q
  iterations=4 firings=10 new_tuples=10 duplicates=0

Pattern queries bind variables and respect repeated ones.

  $ datalogp query anc.dl 'anc(0,X)' --edb chain.dl
  anc(0, 1)
  anc(0, 2)
  anc(0, 3)
  anc(0, 4)
  4 tuple(s)

  $ datalogp query anc.dl 'anc(X,X)' --edb chain.dl
  0 tuple(s)

Parallel evaluation under Example 3 verifies against the sequential
run (Theorems 1 and 2).

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 --verify | head -3
  equal answers: true
  firings: sequential=10 parallel=10 (non-redundant, redundancy 0.000)
  messages: 1

Fault injection: seeded message loss, duplication, reordering, delay
and a processor crash with periodic checkpoints. The reliable-delivery
layer and bucket reassignment keep the pooled answers equal to the
sequential run; the seed makes the whole run a deterministic replay.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 --verify \
  >   --fault-seed 7 --drop 0.3 --dup 0.2 --reorder 0.2 --delay 0.2 \
  >   --max-delay 3 --crash 1@2+2 --checkpoint 2 | head -2
  equal answers: true
  firings: sequential=10 parallel=10 (non-redundant, redundancy 0.000)

The fault counters appear in the statistics report.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q \
  >   --fault-seed 7 --drop 0.25 --crash 1@3
  2 processors, 21 rounds, 1 messages (+9 self), pooled 10 tuples
    proc    firings       new   dupfire  iters    sent    recv  accept   baseres  active   store  outbox
    0             2         2         0      2       2       1       1         2       2       5       1
    1            13        13         0      6       8      12      12         3       6      20       5
  faults: drops=4 dups=0 suppressed=5 delays=0 reorders=0 retransmits=6 acks=16
          crashes=1 recoveries=1 replayed=6 checkpoints=0 restores=0
  

Fault plans are validated before the run starts.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 --drop 1.5
  Fault.make: drop must be in [0, 1), got 1.5
  [2]
  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 --crash x@3
  bad --crash: bad crash spec "x@3": expected PID@ROUND[+DOWN]
  [2]

Overload robustness. Credit-based backpressure bounds the per-channel
in-flight tuples; the stats report the observed peak and the sender
stalls.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --capacity 1
  2 processors, 9 rounds, 1 messages (+9 self), pooled 10 tuples, peak in-flight 1
    proc    firings       new   dupfire  iters    sent    recv  accept   baseres  active   store  outbox
    0             2         2         0      2       2       1       1         2       2       5       1
    1             8         8         0      8       8       9       9         3       8      20       3
  overload: mailbox-drops=0 credit-stalls=7 alpha-raises=0 alpha-decays=0
  

Adaptive degradation moves each processor's Section 6 alpha with
backlog feedback; the raise/decay counters show the dial at work.

  $ datalogp par anc.dl --edb chain.dl --adaptive --alpha 0 --high-water 1 \
  >   --capacity 1 -n 2 -q
  2 processors, 7 rounds, 1 messages (+9 self), pooled 10 tuples, peak in-flight 1
    proc    firings       new   dupfire  iters    sent    recv  accept   baseres  active   store  outbox
    0             5         5         0      4       5       4       4         4       4      13       2
    1             5         5         0      6       5       6       6         4       6      15       1
  overload: mailbox-drops=0 credit-stalls=3 alpha-raises=1 alpha-decays=1
  

The tradeoff alpha is validated up front, like the fault plan.

  $ datalogp par anc.dl --edb chain.dl --scheme tradeoff --alpha 1.5 -n 2 -q
  --alpha must be in [0,1], got 1.5
  [2]
  $ datalogp rewrite anc.dl --scheme tradeoff --alpha=-0.1
  --alpha must be in [0,1], got -0.1
  [2]
  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --capacity 0
  --capacity must be at least 1, got 0
  [2]

An exhausted round budget aborts with the partial statistics and a
distinct exit code.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --max-rounds 2
  round budget exceeded after 2 rounds
  2 processors, 2 rounds, 1 messages (+6 self), pooled 0 tuples
    proc    firings       new   dupfire  iters    sent    recv  accept   baseres  active   store  outbox
    0             2         2         0      2       2       1       1         2       2       5       1
    1             7         7         0      2       5       6       6         3       2      16       2
  
  [3]

So does a breached resource budget: the watchdog names the offending
processor and the run ends as a structured outcome, not a hang.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --max-store 4
  overload: processor 0 tuple store holds 5 rows (budget 4)
  2 processors, 1 rounds, 0 messages (+4 self), pooled 0 tuples
    proc    firings       new   dupfire  iters    sent    recv  accept   baseres  active   store  outbox
    0             2         2         0      1       1       1       1         2       1       5       1
    1             5         5         0      1       3       3       3         3       1      11       0
  
  [4]
  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --deadline 0
  Overload: deadline must be positive
  [2]

Observability. --trace exports a Chrome trace-event JSON (open it in
Perfetto), --metrics a versioned snapshot of the metrics registry, and
--json switches the statistics report to the versioned Stats JSON.
The metric totals equal the Stats counters of the same run.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q \
  >   --trace trace.json --metrics metrics.json > /dev/null
  $ head -c 16 trace.json
  {"traceEvents":[
  $ grep -o '"displayTimeUnit":"ms"' trace.json
  "displayTimeUnit":"ms"
  $ grep -o '"name":"sending"' trace.json | sort -u
  "name":"sending"
  $ grep -c '"ph":"M"' trace.json
  2
  $ grep -o '"schema":1' metrics.json
  "schema":1
  $ grep -o '"runtime.firings":[0-9]*' metrics.json
  "runtime.firings":10
  $ grep -o '"runtime.tuples_sent":[0-9]*' metrics.json
  "runtime.tuples_sent":10
  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --json \
  >   | grep -o '"schema":5\|"scheme":"[a-z0-9_]*"\|"outcome":"[a-z_]*"\|"pooled":[0-9]*'
  "schema":5
  "scheme":"example3"
  "outcome":"ok"
  "pooled":10

The attribution fields (schema 2) explain an aborted run: the outcome
names the watchdog that fired.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q --json \
  >   --max-store 4 | grep -o '"outcome":"[a-z_]*"'
  "outcome":"store_budget"

The sinks are flushed even when the run aborts: a breached round
budget still leaves a readable trace behind.

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 -q \
  >   --max-rounds 2 --trace aborted.json > /dev/null 2>&1
  [3]
  $ head -c 16 aborted.json
  {"traceEvents":[

The dataflow analysis recovers the paper's Example 1 choice.

  $ datalogp dataflow anc.dl
  dataflow graph: 2 -> 2
  cycle: 2
  Theorem 3 choice: v(e) = <Y>, v(r) = <Y> with a symmetric hash gives a communication-free execution

The minimal-network derivation reproduces Figure 4's processor set.

  $ cat > ex7.dl <<'PROG'
  > p(U,V,W) :- s(U,V,W).
  > p(U,V,W) :- p(V,W,Z), q(U,Z).
  > PROG
  $ datalogp network ex7.dl --ve U,V,W --vr V,W,Z --linear 1,-1,1 | tail -1
  cross-processor edges: 8

Dong's baseline reports its component structure.

  $ datalogp dong anc.dl --edb chain.dl -q -n 2 | head -1
  components: 1;  tuples per processor: 4, 0

Ill-formed programs are rejected.

  $ cat > bad.dl <<'PROG'
  > p(X,W) :- q(X).
  > PROG
  $ datalogp run bad.dl
  invalid program: unsafe rule: p(X, W) :- q(X).
  [2]

The static checker classifies a clean sirup and exits zero.

  $ datalogp check anc.dl
  anc.dl: info[I005]: reachability not checked: without --goal every derived predicate counts as an output
    hint: pass --goal PRED to check reachability towards it
  anc.dl:2: info[I001]: linear sirup: predicate anc/2 (exit rule at line 1, recursive rule at line 2); the Section 3-6 schemes (q, nocomm, wolfson, tradeoff) apply
  0 error(s), 0 warning(s), 2 note(s)

With a scheme it verifies Theorem 2, spots the forgone Theorem 3
choice, and predicts the Section 5 network; --strict turns the
warning into a failing exit code.

  $ datalogp check anc.dl --ve X,Y --vr Z,Y --bitvec --strict
  anc.dl: info[I005]: reachability not checked: without --goal every derived predicate counts as an output
    hint: pass --goal PRED to check reachability towards it
  anc.dl:2: info[I001]: linear sirup: predicate anc/2 (exit rule at line 1, recursive rule at line 2); the Section 3-6 schemes (q, nocomm, wolfson, tradeoff) apply
  anc.dl: info[I100]: Theorem 2 holds for ve=(X, Y), vr=(Z, Y): every sequence variable is bound in its rule's body, so scheme q is non-redundant (each instantiation runs on exactly one processor)
  anc.dl: warning[W102]: this choice communicates although a communication-free one exists: discriminating on cycle positions 2 -> 2 with ve=(Y), vr=(Y) needs no inter-processor messages (Theorem 3)
    hint: run with --scheme nocomm, or pass --ve Y --vr Y
  anc.dl: info[I103]: Section 5 prediction: over 4 processors the minimal network has 8 edge(s), 4 cross-processor: (00) -> (00) (00) -> (10) (01) -> (01) (01) -> (11) (10) -> (00) (10) -> (10) (11) -> (01) (11) -> (11)
  0 error(s), 1 warning(s), 4 note(s)
  [1]

Seeded defects are reported with their codes and source lines.

  $ cat > defects.dl <<'PROG'
  > p(X,Y) :- q(X).
  > q(1,2).
  > s(X) :- q(X,Y).
  > s(A) :- q(A,B).
  > t(X) :- t(X), q(X,Y).
  > PROG
  $ datalogp check defects.dl --strict
  defects.dl:3: error[E004]: predicate q is used with arity 1 (rule body at line 1) and arity 2 (rule body at line 3)
    hint: rename one of the predicates or fix the argument list
  defects.dl:1: error[E001]: head variable Y of rule `p(X, Y) :- q(X).` is not bound in the positive body
    hint: add a positive body atom binding Y, or replace it with a constant
  defects.dl:4: warning[W002]: rule `s(A) :- q(A, B).` duplicates an earlier rule up to variable renaming (first occurrence at line 3)
    hint: delete the duplicate rule
  defects.dl: info[I005]: reachability not checked: without --goal every derived predicate counts as an output
    hint: pass --goal PRED to check reachability towards it
  defects.dl:5: warning[W005]: recursive component {t} has no exit rule: every rule depends on the component, so its predicates are provably empty
    hint: add a non-recursive rule (or facts) deriving one of its predicates
  defects.dl: info[I002]: not a linear sirup: a sirup must define exactly one predicate, found 3 (p, s, t); the sirup-only schemes (q, nocomm, wolfson, tradeoff) are unavailable
    hint: the Section 7 general scheme (--scheme general) applies to any safe positive program
  2 error(s), 2 warning(s), 2 note(s)
  [1]

Findings are machine-readable with --json.

  $ datalogp check defects.dl --json | head -1
  [{"code":"E004","severity":"error","file":"defects.dl","line":3,"message":"predicate q is used with arity 1 (rule body at line 1) and arity 2 (rule body at line 3)","suggestion":"rename one of the predicates or fix the argument list"},

The static planner enumerates Theorem-2-verified schemes, ranks them
by predicted communication cost, and classifies each stratum. The
ordering is deterministic: fixed tie-breaks, no clocks, no randomness
beyond the explicit --seed.

  $ datalogp check anc.dl --suggest
  anc.dl: info[I005]: reachability not checked: without --goal every derived predicate counts as an output
    hint: pass --goal PRED to check reachability towards it
  anc.dl:2: info[I001]: linear sirup: predicate anc/2 (exit rule at line 1, recursive rule at line 2); the Section 3-6 schemes (q, nocomm, wolfson, tradeoff) apply
  anc.dl: info[I110]: plan: nocomm(ve=⟨Y⟩, vr=⟨Y⟩) for 4 processors: 0.0 messages/round, redundancy 0.00, balance 1.00
  anc.dl: info[I111]: plan: 9 candidate scheme(s) verified; runners-up: q(ve=⟨X,Y⟩, vr=⟨Z,Y⟩) (total 75.0), q(ve=⟨X⟩, vr=⟨Z⟩) (total 75.0), q(ve=⟨Y⟩, vr=⟨Y⟩) (total 75.0)
  anc.dl: info[I112]: stratum {anc}: coordination-free under the chosen scheme
  0 error(s), 0 warning(s), 5 note(s)

With --json the suggestion is emitted as a versioned plan certificate
with a stable field order, ready to be handed to `datalogp par`.

  $ datalogp check anc.dl --suggest --json > plan.json
  $ cat plan.json
  {
    "schema": 1,
    "kind": "datalogp-plan",
    "program_hash": "06d46a0387196e3c7e545f52e9eee11c",
    "nprocs": 4,
    "seed": 0,
    "scheme": { "name": "nocomm", "ve": ["Y"], "vr": ["Y"] },
    "predicted": { "messages_per_round": 0.000, "redundancy": 0.000, "balance": 1.000, "total": 0.000 },
    "strata": [
      { "predicates": ["anc"], "recursive": true, "coordination_free": true }
    ]
  }

The runtime loads the certificate, re-verifies it at startup, and runs
the certified scheme — communication-free here, so zero messages.

  $ datalogp par anc.dl --edb chain.dl --plan plan.json -q
  4 processors, 5 rounds, 0 messages (+10 self), pooled 10 tuples
    proc    firings       new   dupfire  iters    sent    recv  accept   baseres  active   store  outbox
    0             3         3         0      2       3       3       3         4       2      10       1
    1             4         4         0      4       4       4       4         4       4      12       1
    2             0         0         0      0       0       0       0         4       0       4       0
    3             3         3         0      3       3       3       3         4       3      10       1
  


A stale certificate — the program changed since `check --suggest`
issued it — is rejected fail-fast with a stable code and exit 5.

  $ cat > anc2.dl <<'PROG'
  > anc(X,Y) :- par(X,Y).
  > anc(X,Y) :- par(X,Z), anc(Z,Y).
  > anc(X,X) :- par(X,Y).
  > PROG
  $ datalogp par anc2.dl --edb chain.dl --plan plan.json -q
  error[E201]: program hash mismatch: certificate was issued for 06d46a0387196e3c7e545f52e9eee11c but the program hashes to 24611d2641ebef22bcd16d4238e42748 (re-run check --suggest)
  [5]

So is a file that is not a certificate at all.

  $ echo 'not a plan' > bad.json
  $ datalogp par anc.dl --edb chain.dl --plan bad.json -q
  error[E203]: not valid JSON: expected null at offset 0
  [5]

--auto-scheme runs the planner inline over the actual EDB and picks
the same scheme without the certificate round-trip.

  $ datalogp par anc.dl --edb chain.dl --auto-scheme -q | head -1
  4 processors, 5 rounds, 0 messages (+10 self), pooled 10 tuples

Negation is analysed statically (stratification, Theorem-style cycle
witness) but rejected by the evaluation engines.

  $ cat > unstrat.dl <<'PROG'
  > q(1).
  > win(X) :- q(X), not win(X).
  > PROG
  $ datalogp check unstrat.dl 2>&1 | grep -o 'E005\|W006' | sort -u
  E005
  W006
  $ datalogp run unstrat.dl 2>&1 | head -1
  invalid program: negation is not supported by the evaluation engines (use `datalogp check` to analyse it): win(X) :- q(X), not win(X).
