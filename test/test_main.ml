(* Aggregates every suite into one alcotest binary. *)

let () =
  Alcotest.run "pardatalog"
    (T_basics.suites @ T_relation.suites @ T_syntax.suites @ T_serve.suites
   @ T_analysis.suites @ T_eval.suites @ T_hash.suites @ T_rewrite.suites
   @ T_network.suites @ T_parallel.suites @ T_strategy.suites
   @ T_stratified.suites @ T_decompose.suites @ T_dscholten.suites @ T_props.suites @ T_random_sirups.suites @ T_edge_cases.suites @ T_coverage.suites
   @ T_check.suites @ T_fault.suites @ T_overload.suites @ T_obs.suites
   @ T_storage.suites @ T_plan.suites)
