(* Aggregates every suite into one alcotest binary.

   T_net comes first: its tests fork worker processes, and OCaml
   forbids Unix.fork for the rest of the process once any domain has
   been created — which the domain-runtime suites (parallel, fault,
   ...) do. *)

let () =
  Alcotest.run "pardatalog"
    (T_net.suites @ T_incr.net_suites @ T_backoff.suites
   @ T_basics.suites @ T_relation.suites @ T_syntax.suites @ T_serve.suites
   @ T_analysis.suites @ T_eval.suites @ T_hash.suites @ T_rewrite.suites
   @ T_network.suites @ T_parallel.suites @ T_strategy.suites
   @ T_stratified.suites @ T_decompose.suites @ T_dscholten.suites @ T_props.suites @ T_random_sirups.suites @ T_edge_cases.suites @ T_coverage.suites
   @ T_check.suites @ T_fault.suites @ T_overload.suites @ T_obs.suites
   @ T_storage.suites @ T_plan.suites @ T_incr.suites)
