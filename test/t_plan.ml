(* Property tests of the static planner and its plan certificates.

   Every plan the planner synthesizes must (a) re-verify against the
   program it was issued for — including after a JSON round-trip — and
   (b) produce parallel results equal to sequential evaluation on both
   runtimes, under random fault plans, with the certificate itself
   riding in the Run_config so the runtimes' startup validation is on
   the hot path of every run. Stale certificates must be rejected with
   the stable E201/E202 codes, both by Plan.verify and by the runtimes
   themselves. *)

open Datalog
open Pardatalog
open Helpers

let program_of gs = Parser.program_exn gs.T_random_sirups.gs_source

let plan_for ?profile program ~nprocs ~seed =
  (Check.Planner.suggest ?profile ~nprocs ~seed program).Check.Planner.plan

(* ------------------------------------------------------------------ *)
(* (a) Re-verification and JSON round-trip                             *)
(* ------------------------------------------------------------------ *)

let prop_plan_verifies =
  QCheck.Test.make ~count:120
    ~name:"synthesized plans re-verify and survive a JSON round-trip"
    T_random_sirups.config_arb
    (fun (gs, n, seed, _) ->
      let program = program_of gs in
      match plan_for program ~nprocs:(max 1 n) ~seed with
      | None -> QCheck.assume_fail ()
      | Some plan ->
        Plan.verify plan program = Ok ()
        && (match Plan.of_json (Plan.to_json plan) with
           | Error _ -> false
           | Ok p ->
             p.Plan.scheme = plan.Plan.scheme
             && p.Plan.program_hash = plan.Plan.program_hash
             && p.Plan.nprocs = plan.Plan.nprocs
             && Plan.verify p program = Ok ()))

let prop_plan_non_redundant =
  QCheck.Test.make ~count:100
    ~name:"synthesized non-redundant plans pass Theorem 2 at runtime"
    T_random_sirups.config_arb
    (fun (gs, n, seed, _) ->
      let program = program_of gs in
      match plan_for program ~nprocs:(max 1 n) ~seed with
      | None -> QCheck.assume_fail ()
      | Some plan -> (
        match plan.Plan.scheme with
        | Plan.Wolfson | Plan.Tradeoff _ ->
          QCheck.assume_fail () (* redundant by design (Section 6) *)
        | Plan.Nocomm _ | Plan.Q _ | Plan.General -> (
          match Plan.to_rewrite plan program with
          | Error _ -> false
          | Ok rw ->
            let edb = T_random_sirups.edb_for gs seed in
            let report = Verify.check rw ~edb in
            report.Verify.equal_answers && report.Verify.non_redundant)))

(* ------------------------------------------------------------------ *)
(* (b) Parallel = sequential on both runtimes under random faults,     *)
(* with the certificate validated by the runtime itself.               *)
(* ------------------------------------------------------------------ *)

let prop_plan_runtime (module R : Runtime.S) ~count ~max_n =
  let module H = Harness (R) in
  QCheck.Test.make ~count
    ~name:
      (Printf.sprintf
         "synthesized plans: %s runtime = sequential under random faults"
         R.name)
    T_fault.faulty_config_arb
    (fun ((gs, n, seed, _picks), cfg) ->
      let n = max 1 (min n max_n) in
      let program = program_of gs in
      match plan_for program ~nprocs:n ~seed with
      | None -> QCheck.assume_fail ()
      | Some plan -> (
        match Plan.to_rewrite plan program with
        | Error _ -> false (* a synthesized plan must always build *)
        | Ok rw ->
          let edb = T_random_sirups.edb_for gs seed in
          let fault = T_fault.plan_of cfg ~nprocs:n in
          let config =
            Run_config.with_plan (Some plan) (T_fault.sim_config fault)
          in
          H.agrees_with_sequential ~config ~pred:"t" program rw ~edb))

let prop_plan_sim = prop_plan_runtime (module Runtime.Sim) ~count:80 ~max_n:max_int
let prop_plan_domains = prop_plan_runtime (module Runtime.Domains) ~count:12 ~max_n:3

(* ------------------------------------------------------------------ *)
(* Stale certificates                                                  *)
(* ------------------------------------------------------------------ *)

let other_sirup =
  Parser.program_exn "t(X) :- s0(X).\nt(X) :- t(Y), b9(Y,X)."

let prop_stale_rejected =
  QCheck.Test.make ~count:60
    ~name:"certificates are rejected against any other program (E201)"
    T_random_sirups.config_arb
    (fun (gs, n, seed, _) ->
      let program = program_of gs in
      match plan_for program ~nprocs:(max 1 n) ~seed with
      | None -> QCheck.assume_fail ()
      | Some plan -> (
        match Plan.verify plan other_sirup with
        | Error r -> r.Plan.rcode = Plan.code_stale
        | Ok () ->
          (* Only acceptable if the generated sirup happens to render
             identically — impossible given the predicate names. *)
          false))

(* ------------------------------------------------------------------ *)
(* Deterministic unit cases                                            *)
(* ------------------------------------------------------------------ *)

let unit_ancestor_nocomm () =
  match plan_for ancestor ~nprocs:4 ~seed:0 with
  | None -> Alcotest.fail "no plan for ancestor"
  | Some plan ->
    (match plan.Plan.scheme with
    | Plan.Nocomm _ -> ()
    | s -> Alcotest.failf "expected nocomm, got %s" (Plan.scheme_name s));
    Alcotest.(check (float 0.0))
      "predicted messages" 0.0 plan.Plan.cost.Plan.messages;
    (match plan.Plan.strata with
    | [ st ] ->
      Alcotest.(check bool) "recursive stratum" true st.Plan.recursive;
      Alcotest.(check bool)
        "coordination-free" true st.Plan.coordination_free
    | _ -> Alcotest.fail "expected one stratum");
    let rw = Result.get_ok (Plan.to_rewrite plan ancestor) in
    let edb = edb_of_edges (Workload.Graphgen.chain 40) in
    let config = Run_config.of_plan plan in
    let r = Sim_runtime.run ~config rw ~edb in
    Alcotest.(check int)
      "no cross-processor messages" 0
      (Stats.total_messages r.Sim_runtime.stats)

let unit_nprocs_mismatch () =
  match plan_for ancestor ~nprocs:4 ~seed:0 with
  | None -> Alcotest.fail "no plan for ancestor"
  | Some plan -> (
    match Plan.verify ~nprocs:5 plan ancestor with
    | Error r ->
      Alcotest.(check string) "code" Plan.code_unverified r.Plan.rcode
    | Ok () -> Alcotest.fail "processor-count mismatch accepted")

let unit_runtime_rejects_stale () =
  match plan_for ancestor ~nprocs:4 ~seed:0 with
  | None -> Alcotest.fail "no plan for ancestor"
  | Some plan -> (
    (* Same scheme family, different program: the rewrite under test is
       built from [other_sirup] while the certificate was issued for
       ancestor — the runtime must refuse to start. *)
    let rw = Result.get_ok (Strategy.general ~seed:0 ~nprocs:4 other_sirup) in
    let config = Run_config.of_plan plan in
    let edb = Database.create () in
    ignore (Database.add_fact edb "s0" (Tuple.of_ints [ 1 ]));
    ignore (Database.add_fact edb "b9" (Tuple.of_ints [ 1; 2 ]));
    match Sim_runtime.run ~config rw ~edb with
    | _ -> Alcotest.fail "stale certificate ran"
    | exception Plan.Rejected r ->
      Alcotest.(check string) "code" Plan.code_stale r.Plan.rcode)

let unit_malformed_json () =
  (match Plan.of_json "{\"schema\": 99}" with
  | Error r -> Alcotest.(check string) "code" Plan.code_malformed r.Plan.rcode
  | Ok _ -> Alcotest.fail "schema 99 accepted");
  match Plan.of_json "not json at all" with
  | Error r -> Alcotest.(check string) "code" Plan.code_malformed r.Plan.rcode
  | Ok _ -> Alcotest.fail "garbage accepted"

let suites =
  [
    ( "plan",
      [
        case "ancestor plan is communication-free" unit_ancestor_nocomm;
        case "processor-count mismatch is E202" unit_nprocs_mismatch;
        case "runtime rejects a stale certificate" unit_runtime_rejects_stale;
        case "malformed certificates are E203" unit_malformed_json;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            prop_plan_verifies;
            prop_plan_non_redundant;
            prop_plan_sim;
            prop_plan_domains;
            prop_stale_rejected;
          ] );
  ]
