(* Incremental maintenance: Stratified.Live and the session runtimes.

   The load-bearing property: applying any interleaving of insert and
   delete batches incrementally yields, after every batch, exactly the
   model a from-scratch sequential evaluation computes on the current
   base facts — on the maintenance core and on every runtime's session
   API. *)

open Datalog
open Helpers

let tc_program =
  Parser.program_exn "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y)."

let stratified_program =
  Parser.program_exn
    "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
     twohop(X,Y) :- tc(X,Z), tc(Z,Y).
     triangle(X) :- twohop(X,X)."

let nonrec_program =
  Parser.program_exn "pair(X,Y) :- e(X,Y), f(Y). single(X) :- f(X)."

let t2 a b = Tuple.of_ints [ a; b ]
let t1 a = Tuple.of_ints [ a ]

let batch ops =
  Delta.Batch.of_list
    (List.map
       (fun (op, pred, tuple) ->
         match op with
         | `I -> Delta.Batch.insert pred tuple
         | `D -> Delta.Batch.delete pred tuple)
       ops)

(* The reference: strip derived predicates from the live model's base
   side and re-evaluate from scratch. *)
let scratch_model program live =
  let db = Stratified.Live.database live in
  let base = Database.create () in
  let derived = Program.derived_predicates program in
  List.iter
    (fun pred ->
      if not (List.mem pred derived) then
        match Database.find db pred with
        | Some rel -> Relation.iter (fun t -> ignore (Database.add_fact base pred t)) rel
        | None -> ())
    (Database.predicates db);
  let model, _ = Stratified.evaluate program base in
  model

let check_matches_scratch program live label =
  let expected = scratch_model program live in
  let got = Stratified.Live.database live in
  Alcotest.check database_t label expected got

let live_tests =
  [
    case "insertions grow the closure" (fun () ->
        let live =
          Stratified.Live.create tc_program ~edb:(edb_of_edges ~pred:"e" [ (1, 2) ])
        in
        let c =
          Stratified.Live.apply live (batch [ (`I, "e", t2 2 3) ])
        in
        Alcotest.(check bool) "adds present" true (c.Stratified.Live.c_added <> []);
        Alcotest.(check (list tuple_t)) "closure"
          [ t2 1 2; t2 1 3; t2 2 3 ]
          (Stratified.Live.query live "tc");
        check_matches_scratch tc_program live "after insert");
    case "deletions shrink the closure (DRed)" (fun () ->
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2); (2, 3); (3, 4) ])
        in
        let c = Stratified.Live.apply live (batch [ (`D, "e", t2 2 3) ]) in
        Alcotest.(check (list tuple_t)) "closure"
          [ t2 1 2; t2 3 4 ]
          (Stratified.Live.query live "tc");
        Alcotest.(check bool) "overdeleted counted" true
          (c.Stratified.Live.c_summary.Delta.s_overdeleted > 0);
        check_matches_scratch tc_program live "after delete");
    case "rederivation saves tuples with other support" (fun () ->
        (* Deleting e(1,2) must not kill tc(1,3): e(1,3) still holds. *)
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2); (2, 3); (1, 3) ])
        in
        let c = Stratified.Live.apply live (batch [ (`D, "e", t2 1 2) ]) in
        Alcotest.(check (list tuple_t)) "closure"
          [ t2 1 3; t2 2 3 ]
          (Stratified.Live.query live "tc");
        Alcotest.(check bool) "rederived counted" true
          (c.Stratified.Live.c_summary.Delta.s_rederived > 0);
        check_matches_scratch tc_program live "after delete");
    case "counting handles non-recursive strata" (fun () ->
        let edb = edb_of_edges ~pred:"e" [ (1, 2); (3, 2) ] in
        ignore (Database.add_fact edb "f" (t1 2));
        let live = Stratified.Live.create nonrec_program ~edb in
        Alcotest.(check (list tuple_t)) "pairs"
          [ t2 1 2; t2 3 2 ]
          (Stratified.Live.query live "pair");
        (* pair(1,2) has one derivation; kill e(1,2), it dies, pair(3,2)
           survives. *)
        ignore (Stratified.Live.apply live (batch [ (`D, "e", t2 1 2) ]));
        Alcotest.(check (list tuple_t)) "pairs after"
          [ t2 3 2 ]
          (Stratified.Live.query live "pair");
        (* Killing f(2) removes everything downstream. *)
        ignore (Stratified.Live.apply live (batch [ (`D, "f", t1 2) ]));
        Alcotest.(check (list tuple_t)) "pairs gone" []
          (Stratified.Live.query live "pair");
        Alcotest.(check (list tuple_t)) "single gone" []
          (Stratified.Live.query live "single");
        check_matches_scratch nonrec_program live "after deletes");
    case "empty batch is a near-no-op" (fun () ->
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2); (2, 3) ])
        in
        let c = Stratified.Live.apply live Delta.Batch.empty in
        Alcotest.(check int) "no firings" 0
          c.Stratified.Live.c_summary.Delta.s_firings;
        Alcotest.(check bool) "no change" true
          (c.Stratified.Live.c_added = [] && c.Stratified.Live.c_removed = []));
    case "re-applying a batch normalizes to nothing" (fun () ->
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2) ])
        in
        let b = batch [ (`I, "e", t2 2 3); (`D, "e", t2 1 2) ] in
        ignore (Stratified.Live.apply live b);
        let c = Stratified.Live.apply live b in
        Alcotest.(check int) "idempotent firings" 0
          c.Stratified.Live.c_summary.Delta.s_firings;
        Alcotest.(check bool) "idempotent change" true
          (c.Stratified.Live.c_added = [] && c.Stratified.Live.c_removed = []));
    case "delete then reinsert round-trips" (fun () ->
        let edges = [ (1, 2); (2, 3); (3, 4); (4, 1) ] in
        let live =
          Stratified.Live.create tc_program ~edb:(edb_of_edges ~pred:"e" edges)
        in
        let before = Stratified.Live.query live "tc" in
        ignore (Stratified.Live.apply live (batch [ (`D, "e", t2 2 3) ]));
        ignore (Stratified.Live.apply live (batch [ (`I, "e", t2 2 3) ]));
        Alcotest.(check (list tuple_t)) "round-trip" before
          (Stratified.Live.query live "tc");
        check_matches_scratch tc_program live "after round-trip");
    case "last operation per tuple wins within a batch" (fun () ->
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2) ])
        in
        ignore
          (Stratified.Live.apply live
             (batch [ (`I, "e", t2 2 3); (`D, "e", t2 2 3) ]));
        Alcotest.(check (list tuple_t)) "no 2->3" [ t2 1 2 ]
          (Stratified.Live.query live "tc");
        ignore
          (Stratified.Live.apply live
             (batch [ (`D, "e", t2 1 2); (`I, "e", t2 1 2) ]));
        Alcotest.(check (list tuple_t)) "1->2 kept" [ t2 1 2 ]
          (Stratified.Live.query live "tc"));
    case "program facts survive base deletions (external support)" (fun () ->
        let p =
          Parser.program_exn
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y). anc(7,8)."
        in
        let live =
          Stratified.Live.create p ~edb:(edb_of_edges [ (1, 2) ])
        in
        ignore (Stratified.Live.apply live (batch [ (`D, "par", t2 1 2) ]));
        Alcotest.(check (list tuple_t)) "fact survives" [ t2 7 8 ]
          (Stratified.Live.query live "anc"));
    case "rejects updates on derived predicates" (fun () ->
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2) ])
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Stratified.Live.apply live (batch [ (`I, "tc", t2 5 6) ]));
             false
           with Invalid_argument _ -> true));
    case "multi-stratum program stays consistent across a mixed stream"
      (fun () ->
        let rng = Workload.Rng.create ~seed:42 in
        let edges = Workload.Graphgen.random_digraph rng ~nodes:12 ~edges:30 in
        let live =
          Stratified.Live.create stratified_program
            ~edb:(edb_of_edges ~pred:"e" edges)
        in
        let edges = ref edges in
        for i = 1 to 20 do
          let b =
            if i mod 3 = 0 && !edges <> [] then begin
              let victim = List.nth !edges (Workload.Rng.int rng (List.length !edges)) in
              edges := List.filter (fun e -> e <> victim) !edges;
              let a, b = victim in
              batch [ (`D, "e", t2 a b) ]
            end
            else begin
              let a = Workload.Rng.int rng 12 and b = Workload.Rng.int rng 12 in
              if not (List.mem (a, b) !edges) then edges := (a, b) :: !edges;
              batch [ (`I, "e", t2 a b) ]
            end
          in
          ignore (Stratified.Live.apply live b);
          check_matches_scratch stratified_program live
            (Printf.sprintf "step %d" i)
        done);
    case "batches and totals accumulate" (fun () ->
        let live =
          Stratified.Live.create tc_program
            ~edb:(edb_of_edges ~pred:"e" [ (1, 2) ])
        in
        ignore (Stratified.Live.apply live (batch [ (`I, "e", t2 2 3) ]));
        ignore (Stratified.Live.apply live (batch [ (`D, "e", t2 1 2) ]));
        Alcotest.(check int) "batches" 2 (Stratified.Live.batches live);
        let tot = Stratified.Live.totals live in
        Alcotest.(check bool) "inserted" true (tot.Delta.s_inserted > 0);
        Alcotest.(check bool) "deleted" true (tot.Delta.s_deleted > 0);
        (* The log records the exact net changes. *)
        Alcotest.(check int) "log total"
          (tot.Delta.s_inserted + tot.Delta.s_deleted)
          (Delta.Log.total (Stratified.Live.log live)));
    case "session stats serialize as schema 4 with the incr counters"
      (fun () ->
        let rw =
          match
            Pardatalog.Strategy.general ~nprocs:2 Workload.Progs.ancestor
          with
          | Ok rw -> rw
          | Error e -> failwith e
        in
        let s =
          Pardatalog.Sim_runtime.open_session rw
            ~edb:(edb_of_edges [ (1, 2); (2, 3) ])
        in
        ignore
          (Pardatalog.Session.apply s
             (Pardatalog.Update_batch.of_list
                [ Delta.Batch.insert "par" (t2 3 4) ]));
        let r = Pardatalog.Session.close s in
        let json = Pardatalog.Stats.to_json r.Pardatalog.Session.stats in
        let contains needle =
          let n = String.length needle and m = String.length json in
          let rec go i =
            i + n <= m && (String.sub json i n = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "schema bumped" true (contains "\"schema\":5");
        Alcotest.(check bool) "one batch applied" true
          (contains "\"incr\":{\"batches_applied\":1");
        Alcotest.(check int) "batches counted" 1
          r.Pardatalog.Session.stats.Pardatalog.Stats.incr
            .Pardatalog.Stats.batches_applied;
        (* A one-shot run keeps the all-zero object — additive schema. *)
        let one_shot =
          Pardatalog.Sim_runtime.run rw ~edb:(edb_of_edges [ (1, 2) ])
        in
        Alcotest.(check bool) "one-shot runs stay at no_incr" true
          (one_shot.Pardatalog.Sim_runtime.stats.Pardatalog.Stats.incr
           = Pardatalog.Stats.no_incr));
  ]

(* ------------------------------------------------------------------ *)
(* Property: random programs x random insert/delete interleavings.     *)
(* ------------------------------------------------------------------ *)

let programs =
  [| tc_program; stratified_program; nonrec_program |]

let stream_arb =
  QCheck.make
    ~print:(fun (pi, seed, steps) ->
      Printf.sprintf "program=%d seed=%d steps=%d" pi seed steps)
    QCheck.Gen.(
      let* pi = int_range 0 (Array.length programs - 1) in
      let* seed = int_range 0 9999 in
      let* steps = int_range 1 12 in
      return (pi, seed, steps))

(* Drive a random update stream against Live; after every batch the
   model must equal the from-scratch evaluation. *)
let random_stream pi seed steps =
  let program = programs.(pi) in
  let rng = Workload.Rng.create ~seed in
  let edb = Database.create () in
  let universe = 8 in
  let random_fact () =
    if pi = 2 && Workload.Rng.int rng 3 = 0 then
      ("f", t1 (Workload.Rng.int rng universe))
    else
      ("e", t2 (Workload.Rng.int rng universe) (Workload.Rng.int rng universe))
  in
  for _ = 1 to 10 do
    let pred, t = random_fact () in
    ignore (Database.add_fact edb pred t)
  done;
  if pi = 2 then
    for _ = 1 to 4 do
      ignore (Database.add_fact edb "f" (t1 (Workload.Rng.int rng universe)))
    done;
  let live = Stratified.Live.create program ~edb in
  let ok = ref true in
  for _ = 1 to steps do
    let nops = 1 + Workload.Rng.int rng 4 in
    let ops =
      List.init nops (fun _ ->
          let pred, t = random_fact () in
          if Workload.Rng.int rng 2 = 0 then (`I, pred, t) else (`D, pred, t))
    in
    ignore (Stratified.Live.apply live (batch ops));
    let expected = scratch_model program live in
    if not (Database.equal expected (Stratified.Live.database live)) then
      ok := false
  done;
  !ok

let prop_live_equals_scratch =
  QCheck.Test.make ~count:120
    ~name:"live maintenance = from-scratch after every batch" stream_arb
    (fun (pi, seed, steps) -> random_stream pi seed steps)

(* ------------------------------------------------------------------ *)
(* Runtime sessions: the same property through the session-handle API. *)
(* The sim and domain variants live in [suites]; the net variant forks *)
(* worker processes, so it is exported separately as [net_suites] and  *)
(* registered before any suite spawns a domain.                        *)
(* ------------------------------------------------------------------ *)

let anc_rw ~seed ~nprocs =
  match
    Pardatalog.Strategy.general ~seed ~nprocs Workload.Progs.ancestor
  with
  | Ok rw -> rw
  | Error e -> failwith e

let expected_closure edges =
  List.sort Tuple.compare (List.map (fun (a, b) -> t2 a b) (closure_pairs edges))

(* Drive a random insert/delete stream through a runtime session;
   after every batch (and after [close]) the visible "anc" relation
   must equal an independent closure oracle over the tracked base
   edges. *)
let session_stream ~open_session seed steps =
  let rng = Workload.Rng.create ~seed in
  let universe = 7 in
  let random_edge () =
    (Workload.Rng.int rng universe, Workload.Rng.int rng universe)
  in
  let edges = ref [] in
  for _ = 1 to 8 do
    let e = random_edge () in
    if not (List.mem e !edges) then edges := e :: !edges
  done;
  let s = open_session (edb_of_edges !edges) in
  let ok = ref true in
  let check () =
    if
      not
        (List.equal Tuple.equal (expected_closure !edges)
           (Pardatalog.Session.query s "anc"))
    then ok := false
  in
  check ();
  for _ = 1 to steps do
    let nops = 1 + Workload.Rng.int rng 3 in
    let ops =
      List.init nops (fun _ ->
          let ((a, b) as e) = random_edge () in
          if Workload.Rng.int rng 2 = 0 then begin
            if not (List.mem e !edges) then edges := e :: !edges;
            Delta.Batch.insert "par" (t2 a b)
          end
          else begin
            edges := List.filter (fun x -> x <> e) !edges;
            Delta.Batch.delete "par" (t2 a b)
          end)
    in
    ignore (Pardatalog.Session.apply s (Pardatalog.Update_batch.of_list ops));
    check ()
  done;
  let r = Pardatalog.Session.close s in
  let final =
    match Database.find r.Pardatalog.Session.answers "anc" with
    | Some rel -> Relation.sorted_elements rel
    | None -> []
  in
  if not (List.equal Tuple.equal (expected_closure !edges) final) then
    ok := false;
  (* A closed session refuses further work. *)
  (match Pardatalog.Session.apply s Pardatalog.Update_batch.empty with
   | _ -> ok := false
   | exception Pardatalog.Session.Closed _ -> ());
  !ok

let session_arb =
  QCheck.make
    ~print:(fun (seed, steps) -> Printf.sprintf "seed=%d steps=%d" seed steps)
    QCheck.Gen.(
      let* seed = int_range 0 9999 in
      let* steps = int_range 1 8 in
      return (seed, steps))

let prop_sim_session =
  QCheck.Test.make ~count:40
    ~name:"sim session = closure oracle after every batch" session_arb
    (fun (seed, steps) ->
      session_stream
        ~open_session:(fun edb ->
          Pardatalog.Sim_runtime.open_session (anc_rw ~seed ~nprocs:3) ~edb)
        seed steps)

let prop_sim_session_faults =
  QCheck.Test.make ~count:20
    ~name:"sim session under a random fault plan = closure oracle"
    session_arb
    (fun (seed, steps) ->
      let plan =
        Pardatalog.Fault.make ~seed ~drop:0.2 ~dup:0.1 ~delay:0.1
          ~checkpoint_every:3 ()
      in
      let config =
        Pardatalog.Run_config.(
          default |> with_fault plan |> with_max_rounds 50_000)
      in
      session_stream
        ~open_session:(fun edb ->
          Pardatalog.Sim_runtime.open_session ~config
            (anc_rw ~seed ~nprocs:3) ~edb)
        seed steps)

let prop_domain_session =
  QCheck.Test.make ~count:12
    ~name:"domain session = closure oracle after every batch" session_arb
    (fun (seed, steps) ->
      session_stream
        ~open_session:(fun edb ->
          Pardatalog.Domain_runtime.open_session (anc_rw ~seed ~nprocs:3) ~edb)
        seed (min steps 5))

(* --- net runtime: real forked workers, registered before domains --- *)

let anc_text = "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), par(Z,Y).\n"
let anc_spec = Net.Wire.Spec_q { ve = [ "Y" ]; vr = [ "Y" ] }

let net_rw ~seed ~nprocs =
  match
    Pardatalog.Strategy.hash_q ~seed ~nprocs ~ve:[ "Y" ] ~vr:[ "Y" ]
      (Parser.program_exn anc_text)
  with
  | Ok rw -> rw
  | Error e -> failwith e

let prop_net_session =
  QCheck.Test.make ~count:5
    ~name:"net session = closure oracle after every batch" session_arb
    (fun (seed, steps) ->
      session_stream
        ~open_session:(fun edb ->
          Net.Net_runtime.open_session ~config:Pardatalog.Run_config.default
            ~program:anc_text ~spec:anc_spec ~seed ~procs:2
            ~spawn:Net.Net_runtime.Fork
            (net_rw ~seed ~nprocs:2)
            ~edb)
        seed (min steps 3))

let net_suites =
  [
    ( "incr-net-session",
      List.map QCheck_alcotest.to_alcotest [ prop_net_session ] );
  ]

let suites =
  [
    ("incr-live", live_tests);
    ( "incr-props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_live_equals_scratch; prop_sim_session; prop_sim_session_faults;
          prop_domain_session;
        ] );
  ]
