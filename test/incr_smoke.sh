#!/bin/sh
# Incremental-maintenance smoke over the wire: stream a scripted
# sequence of UPDATE/RETRACT batches through datalogd (protocol v2),
# reading the maintained model back with QUERY live=true after every
# batch, and require the final live answer to be byte-identical to
# (a) a from-scratch QUERY on the same server (whose EDB was patched
# by the same updates) and (b) a second, update-free server loaded
# directly with the final fact set.
#
# Usage: incr_smoke.sh DATALOGD
set -eu

datalogd=$1
dir=$(mktemp -d "${TMPDIR:-/tmp}/incr_smoke.XXXXXX")
server=
server2=
cleanup () {
  [ -n "$server" ] && kill "$server" 2>/dev/null || true
  [ -n "$server2" ] && kill "$server2" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT
sock="$dir/d.sock"
sock2="$dir/d2.sock"

cat > "$dir/tc.dl" <<'EOF'
path(X,Y) :- edge(X,Y).
path(X,Y) :- edge(X,Z), path(Z,Y).
EOF

# Start state: a chain 1 -> ... -> 6.
i=1
: > "$dir/start.dl"
while [ "$i" -lt 6 ]; do
  echo "edge($i,$((i + 1)))." >> "$dir/start.dl"
  i=$((i + 1))
done

"$datalogd" --socket "$sock" --runtime sim -j 2 \
  --load tc="$dir/tc.dl" --facts tc="$dir/start.dl" \
  > "$dir/server.log" 2>&1 &
server=$!

fail () {
  echo "incr_smoke: $1" >&2
  cat "$dir/server.log" >&2 || true
  exit 1
}

# The scripted stream: grow a branch, cut the chain in the middle,
# reconnect it elsewhere. Each batch mixes signed inserts/deletes;
# every live query in between must answer from the maintained model
# (scheme=live), never a re-evaluation.
out=$("$datalogd" --connect "$sock" <<'EOF'
UPDATE id=u1 prog=tc
+edge(6,7). edge(7,8).
.
QUERY id=l1 prog=tc live=true
UPDATE id=u2 prog=tc
-edge(3,4).
+edge(3,8).
.
QUERY id=l2 prog=tc live=true
RETRACT id=u3 prog=tc
edge(7,8).
.
QUERY id=l3 prog=tc live=true rows=true
EOF
) || fail "update stream exited nonzero"

echo "$out" | grep -q 'OK update prog=tc id=u1' \
  || fail "u1 not acknowledged: $out"
echo "$out" | grep -q 'OK retract prog=tc id=u3' \
  || fail "u3 not acknowledged: $out"
echo "$out" | grep -q 'RESULT id=l3 status=ok .* scheme=live' \
  || fail "final live query did not answer from the live model: $out"

# Replaying a mid-stream batch id must be byte-identical and must not
# apply the batch a second time (the final model below stays exact).
replay=$(printf 'UPDATE id=u2 prog=tc\n-edge(3,4).\n+edge(3,8).\n.\n' \
           | "$datalogd" --connect "$sock") \
  || fail "replay exited nonzero"
echo "$out" | grep -qF "$(echo "$replay" | grep 'OK update prog=tc id=u2')" \
  || fail "replay of u2 was not byte-identical: $replay"

live_rows=$(echo "$out" | sed -n '/RESULT id=l3/,/END id=l3/p' | grep '^ROW ')

# (a) From-scratch recomputation on the same server: the EDB was
# patched batch-by-batch, so a plain QUERY must see the same rows.
scratch=$(printf 'QUERY id=s1 prog=tc rows=true\n' \
            | "$datalogd" --connect "$sock") \
  || fail "from-scratch query exited nonzero"
scratch_rows=$(echo "$scratch" | grep '^ROW ')
[ "$live_rows" = "$scratch_rows" ] \
  || fail "live rows differ from same-server recomputation:
live:    $live_rows
scratch: $scratch_rows"

# (b) An independent server loaded with the final fact set directly.
cat > "$dir/final.dl" <<'EOF'
edge(1,2). edge(2,3). edge(4,5). edge(5,6). edge(6,7). edge(3,8).
EOF
"$datalogd" --socket "$sock2" --runtime sim -j 2 \
  --load tc="$dir/tc.dl" --facts tc="$dir/final.dl" \
  > "$dir/server2.log" 2>&1 &
server2=$!
fresh=$(printf 'QUERY id=f1 prog=tc rows=true\n' \
          | "$datalogd" --connect "$sock2") \
  || fail "fresh-server query exited nonzero"
fresh_rows=$(echo "$fresh" | grep '^ROW ')
[ "$live_rows" = "$fresh_rows" ] \
  || fail "live rows differ from a fresh batch recomputation:
live:  $live_rows
fresh: $fresh_rows"

kill -TERM "$server" && wait "$server" || fail "server drain failed"
server=
kill -TERM "$server2" && wait "$server2" || fail "second server drain failed"
server2=

n=$(echo "$live_rows" | wc -l | tr -d ' ')
echo "incr_smoke: ok (3 batches + replay, $n final rows, live = scratch = fresh)"
