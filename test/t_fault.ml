(* Fault-injection properties: reliable delivery and crash recovery.

   The tentpole guarantee under test: for every seeded fault plan that
   leaves at least one live processor, the pooled parallel answers
   equal the sequential evaluation — Theorem 1 under failures. The
   remaining properties pin the delivery layer down: an active plan
   with all probabilities zero reproduces the fault-free message
   counts exactly (so the paper's communication claims E1/E3 are not
   disturbed by the layer), fault runs are deterministic replays of
   the plan seed, the domain runtime survives the same plans, and
   checkpoints cut the crash-recovery cost. *)

open Datalog
open Pardatalog
open Helpers

(* ------------------------------------------------------------------ *)
(* Random fault plans                                                  *)
(* ------------------------------------------------------------------ *)

(* Plans are generated as small integers and scaled, so QCheck's
   shrinker stays useful and probabilities stay in [0, 1). The crash
   pid is a hint taken modulo the processor count at use site. *)
type plan_cfg = {
  pc_seed : int;
  pc_drop : int;  (* twentieths *)
  pc_dup : int;
  pc_reorder : int;
  pc_delay : int;
  pc_max_delay : int;
  pc_crash : (int * int * int) option;  (* pid hint, round, downtime *)
  pc_checkpoint : int option;
}

let plan_cfg_gen =
  QCheck.Gen.(
    let* pc_seed = int_range 0 9999 in
    let* pc_drop = int_range 0 8 in
    let* pc_dup = int_range 0 6 in
    let* pc_reorder = int_range 0 6 in
    let* pc_delay = int_range 0 6 in
    let* pc_max_delay = int_range 1 3 in
    let* pc_crash =
      oneof
        [
          return None;
          (let* pid = int_range 0 4 in
           let* round = int_range 0 3 in
           let* down = int_range 1 3 in
           return (Some (pid, round, down)));
        ]
    in
    let* pc_checkpoint =
      oneof [ return None; map (fun k -> Some k) (int_range 1 4) ]
    in
    return
      { pc_seed; pc_drop; pc_dup; pc_reorder; pc_delay; pc_max_delay;
        pc_crash; pc_checkpoint })

let plan_of cfg ~nprocs =
  Fault.make ~seed:cfg.pc_seed
    ~drop:(float_of_int cfg.pc_drop /. 20.0)
    ~dup:(float_of_int cfg.pc_dup /. 20.0)
    ~reorder:(float_of_int cfg.pc_reorder /. 20.0)
    ~delay:(float_of_int cfg.pc_delay /. 20.0)
    ~max_delay:cfg.pc_max_delay
    ~crashes:
      (match cfg.pc_crash with
       | None -> []
       | Some (pid, round, down) ->
         [ { Fault.cr_pid = pid mod nprocs; cr_round = round;
             cr_down = down } ])
    ?checkpoint_every:cfg.pc_checkpoint ()

let print_cfg cfg =
  Printf.sprintf
    "seed=%d drop=%d/20 dup=%d/20 reorder=%d/20 delay=%d/20(max %d) \
     crash=%s checkpoint=%s"
    cfg.pc_seed cfg.pc_drop cfg.pc_dup cfg.pc_reorder cfg.pc_delay
    cfg.pc_max_delay
    (match cfg.pc_crash with
     | None -> "-"
     | Some (p, r, d) -> Printf.sprintf "%d@%d+%d" p r d)
    (match cfg.pc_checkpoint with
     | None -> "-"
     | Some k -> string_of_int k)

let faulty_config_arb =
  QCheck.make
    ~print:(fun ((gs, n, seed, picks), cfg) ->
      Printf.sprintf "%s\nN=%d seed=%d picks=%s\n%s"
        gs.T_random_sirups.gs_source n seed
        (String.concat "," (List.map string_of_int picks))
        (print_cfg cfg))
    QCheck.Gen.(
      let* base = T_random_sirups.config_arb.QCheck.gen in
      let* cfg = plan_cfg_gen in
      return (base, cfg))

let sim_config plan =
  Run_config.(default |> with_fault plan |> with_max_rounds 50_000)

(* ------------------------------------------------------------------ *)
(* Theorem 1 under failures: random sirups x EDBs x fault plans, one   *)
(* generator instantiated per runtime through the Runtime.S harness.   *)
(* ------------------------------------------------------------------ *)

let prop_faulty_runtime (module R : Runtime.S) ~count ~max_n =
  let module H = Harness (R) in
  QCheck.Test.make ~count
    ~name:
      (Printf.sprintf
         "random faults: %s runtime = sequential (Theorem 1 under failures)"
         R.name)
    faulty_config_arb
    (fun ((gs, n, seed, picks), cfg) ->
      let n = min n max_n in
      match T_random_sirups.build gs n seed picks with
      | None -> QCheck.assume_fail ()
      | Some (program, rw) ->
        let edb = T_random_sirups.edb_for gs seed in
        let plan = plan_of cfg ~nprocs:n in
        H.agrees_with_sequential ~config:(sim_config plan) ~pred:"t" program
          rw ~edb)

let prop_faulty_equals_sequential =
  prop_faulty_runtime (module Runtime.Sim) ~count:150 ~max_n:max_int

(* Same, under the Section 7 general scheme (non-sirup rewrites). *)
let prop_faulty_general_scheme =
  QCheck.Test.make ~count:60
    ~name:"random faults under the Section 7 scheme" faulty_config_arb
    (fun ((gs, n, seed, _), cfg) ->
      let program = Parser.program_exn gs.T_random_sirups.gs_source in
      match Strategy.general ~seed ~nprocs:n program with
      | Error _ -> QCheck.assume_fail ()
      | Ok rw ->
        let edb = T_random_sirups.edb_for gs seed in
        let plan = plan_of cfg ~nprocs:n in
        let report = Verify.check ~config:(sim_config plan) rw ~edb in
        report.Verify.equal_answers)

(* ------------------------------------------------------------------ *)
(* The delivery layer does not disturb the communication claims: an
   active plan whose probabilities are all zero (it still routes every
   payload through sequence numbers, acks and the receiver filter)
   reproduces the fault-free channel counts exactly.                   *)
(* ------------------------------------------------------------------ *)

let prop_zero_fault_exact_counts =
  QCheck.Test.make ~count:60
    ~name:"zero-probability plan reproduces exact message counts"
    T_random_sirups.config_arb
    (fun (gs, n, seed, picks) ->
      match T_random_sirups.build gs n seed picks with
      | None -> QCheck.assume_fail ()
      | Some (_, rw) ->
        let edb = T_random_sirups.edb_for gs seed in
        let plain = Sim_runtime.run rw ~edb in
        let layered =
          Sim_runtime.run
            ~config:(sim_config (Fault.make ~checkpoint_every:3 ()))
            rw ~edb
        in
        let sent s =
          Array.map (fun p -> p.Stats.tuples_sent) s.Stats.per_proc
        in
        let received s =
          Array.map (fun p -> p.Stats.tuples_received) s.Stats.per_proc
        in
        Database.equal plain.Sim_runtime.answers layered.Sim_runtime.answers
        && plain.Sim_runtime.stats.Stats.channel_tuples
           = layered.Sim_runtime.stats.Stats.channel_tuples
        && sent plain.Sim_runtime.stats = sent layered.Sim_runtime.stats
        && received plain.Sim_runtime.stats
           = received layered.Sim_runtime.stats)

(* ------------------------------------------------------------------ *)
(* Fault runs are deterministic replays of the plan seed.              *)
(* ------------------------------------------------------------------ *)

let prop_fault_runs_deterministic =
  QCheck.Test.make ~count:60 ~name:"same plan, same run (determinism)"
    faulty_config_arb
    (fun ((gs, n, seed, picks), cfg) ->
      match T_random_sirups.build gs n seed picks with
      | None -> QCheck.assume_fail ()
      | Some (_, rw) ->
        let edb = T_random_sirups.edb_for gs seed in
        let plan = plan_of cfg ~nprocs:n in
        let a = Sim_runtime.run ~config:(sim_config plan) rw ~edb in
        let b = Sim_runtime.run ~config:(sim_config plan) rw ~edb in
        Database.equal a.Sim_runtime.answers b.Sim_runtime.answers
        && a.Sim_runtime.stats.Stats.rounds = b.Sim_runtime.stats.Stats.rounds
        && a.Sim_runtime.stats.Stats.channel_tuples
           = b.Sim_runtime.stats.Stats.channel_tuples
        && a.Sim_runtime.stats.Stats.faults
           = b.Sim_runtime.stats.Stats.faults)

(* ------------------------------------------------------------------ *)
(* The domain runtime survives the same plans (same generator,         *)
(* smaller N and count).                                               *)
(* ------------------------------------------------------------------ *)

let prop_domain_runtime_faulty =
  prop_faulty_runtime (module Runtime.Domains) ~count:20 ~max_n:3

(* ------------------------------------------------------------------ *)
(* Deterministic cases                                                 *)
(* ------------------------------------------------------------------ *)

let chain_edges n = List.init n (fun i -> (i, i + 1))

let example3_rw () =
  match Strategy.example3 ~seed:0 ~nprocs:2 ancestor with
  | Ok rw -> rw
  | Error msg -> Alcotest.fail msg

let total_firings stats =
  Array.fold_left (fun acc p -> acc + p.Stats.firings) 0 stats.Stats.per_proc

let fault_cases =
  [
    case "crash recovery rebuilds the lost bucket" (fun () ->
        let edges = chain_edges 12 in
        let rw = example3_rw () in
        let edb = edb_of_edges edges in
        let plan =
          Fault.make
            ~crashes:[ { Fault.cr_pid = 1; cr_round = 4; cr_down = 2 } ]
            ()
        in
        let r = Sim_runtime.run ~config:(sim_config plan) rw ~edb in
        Alcotest.check relation_t "closure survives the crash"
          (relation_of_pairs (closure_pairs edges))
          (anc_relation r.Sim_runtime.answers);
        Alcotest.(check int) "one crash" 1
          r.Sim_runtime.stats.Stats.faults.Stats.crashes;
        Alcotest.(check int) "one recovery" 1
          r.Sim_runtime.stats.Stats.faults.Stats.recoveries;
        Alcotest.(check bool) "history was replayed" true
          (r.Sim_runtime.stats.Stats.faults.Stats.replayed > 0));
    case "a crash that would kill the last processor is skipped" (fun () ->
        let edges = chain_edges 6 in
        let program = ancestor in
        let rw =
          match Strategy.general ~seed:0 ~nprocs:1 program with
          | Ok rw -> rw
          | Error msg -> Alcotest.fail msg
        in
        let plan =
          Fault.make
            ~crashes:[ { Fault.cr_pid = 0; cr_round = 1; cr_down = 2 } ]
            ()
        in
        let r =
          Sim_runtime.run ~config:(sim_config plan)
            rw ~edb:(edb_of_edges edges)
        in
        Alcotest.(check int) "no crash happened" 0
          r.Sim_runtime.stats.Stats.faults.Stats.crashes;
        Alcotest.check relation_t "closure intact"
          (relation_of_pairs (closure_pairs edges))
          (anc_relation r.Sim_runtime.answers));
    slow_case "checkpoints cut the recovery cost" (fun () ->
        let edges = chain_edges 16 in
        let rw = example3_rw () in
        let edb = edb_of_edges edges in
        let run checkpoint_every =
          let plan =
            Fault.make
              ~crashes:[ { Fault.cr_pid = 1; cr_round = 8; cr_down = 2 } ]
              ?checkpoint_every ()
          in
          let r = Sim_runtime.run ~config:(sim_config plan) rw ~edb in
          Alcotest.check relation_t "closure correct"
            (relation_of_pairs (closure_pairs edges))
            (anc_relation r.Sim_runtime.answers);
          total_firings r.Sim_runtime.stats
        in
        let baseline = total_firings (Sim_runtime.run rw ~edb).Sim_runtime.stats in
        let cost ck = run ck - baseline in
        let none = cost None in
        let coarse = cost (Some 8) in
        let fine = cost (Some 1) in
        Alcotest.(check bool) "crash without checkpoint re-derives work" true
          (none > 0);
        Alcotest.(check bool) "checkpointing never costs more firings" true
          (coarse <= none && fine <= coarse);
        Alcotest.(check bool) "per-round checkpoints re-derive least" true
          (fine < none));
    case "mailbox close is a poison pill" (fun () ->
        let mb = Mailbox.create () in
        Mailbox.push mb 1;
        Mailbox.close mb;
        Mailbox.push mb 2;
        Alcotest.(check (list int)) "queued survives, late push dropped"
          [ 1 ] (Mailbox.drain_blocking mb);
        Alcotest.(check (list int)) "closed+empty returns, not blocks" []
          (Mailbox.drain_blocking mb);
        Alcotest.(check bool) "is_closed" true (Mailbox.is_closed mb));
    case "mailbox drain_timeout gives up" (fun () ->
        let mb = Mailbox.create () in
        Alcotest.(check (list int)) "timeout on empty open mailbox" []
          (Mailbox.drain_timeout mb ~seconds:0.01);
        Mailbox.push mb 7;
        Alcotest.(check (list int)) "returns queued content" [ 7 ]
          (Mailbox.drain_timeout mb ~seconds:0.01));
    case "crash schedule parsing" (fun () ->
        (match Fault.parse_crashes "1@3,2@5+2" with
         | Ok [ a; b ] ->
           Alcotest.(check int) "pid" 1 a.Fault.cr_pid;
           Alcotest.(check int) "round" 3 a.Fault.cr_round;
           Alcotest.(check int) "default downtime" 1 a.Fault.cr_down;
           Alcotest.(check int) "downtime" 2 b.Fault.cr_down
         | Ok _ -> Alcotest.fail "expected two crashes"
         | Error msg -> Alcotest.fail msg);
        Alcotest.(check bool) "rejects junk" true
          (Result.is_error (Fault.parse_crashes "x@3"));
        Alcotest.(check bool) "rejects zero downtime" true
          (Result.is_error (Fault.parse_crashes "1@3+0")));
    case "fair-lossy bound: late attempts are never dropped" (fun () ->
        let plan = Fault.make ~seed:11 ~drop:0.99 () in
        for seq = 0 to 199 do
          let fate =
            Fault.fate plan ~src:0 ~dst:1 ~seq ~attempt:Fault.drop_ceiling
          in
          if fate.Fault.f_drop then
            Alcotest.failf "seq %d dropped at the ceiling" seq
        done);
    case "plan validation" (fun () ->
        Alcotest.check_raises "drop out of range"
          (Invalid_argument "Fault.make: drop must be in [0, 1), got 1.5")
          (fun () -> ignore (Fault.make ~drop:1.5 ()));
        Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
        Alcotest.(check bool) "checkpointing alone is active" false
          (Fault.is_none (Fault.make ~checkpoint_every:2 ())));
  ]

let suites =
  [
    ("fault", fault_cases);
    ( "fault-props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_faulty_equals_sequential;
          prop_faulty_general_scheme;
          prop_zero_fault_exact_counts;
          prop_fault_runs_deterministic;
          prop_domain_runtime_faulty;
        ] );
  ]
