(* Tests for Relation and Database. *)

open Datalog
open Helpers

let relation_tests =
  [
    case "add returns true for fresh tuples" (fun () ->
        let r = Relation.create ~arity:2 () in
        Alcotest.(check bool) "fresh" true (Relation.add r (Tuple.of_ints [ 1; 2 ]));
        Alcotest.(check bool) "dup" false (Relation.add r (Tuple.of_ints [ 1; 2 ]));
        Alcotest.(check int) "cardinal" 1 (Relation.cardinal r));
    case "arity mismatch raises" (fun () ->
        let r = Relation.create ~arity:2 () in
        Alcotest.check_raises "bad arity"
          (Invalid_argument "Relation.add: arity 3, expected 2") (fun () ->
            ignore (Relation.add r (Tuple.of_ints [ 1; 2; 3 ]))));
    case "mem" (fun () ->
        let r = relation_of_pairs [ (1, 2); (3, 4) ] in
        Alcotest.(check bool) "present" true (Relation.mem r (Tuple.of_ints [ 3; 4 ]));
        Alcotest.(check bool) "absent" false (Relation.mem r (Tuple.of_ints [ 4; 3 ])));
    case "iter preserves insertion order" (fun () ->
        let r = Relation.create ~arity:1 () in
        List.iter (fun i -> ignore (Relation.add r (Tuple.of_ints [ i ]))) [ 3; 1; 2 ];
        let order = ref [] in
        Relation.iter (fun t -> order := Tuple.get t 0 :: !order) r;
        Alcotest.(check (list int)) "order" [ 3; 1; 2 ]
          (List.rev_map (function Const.Int i -> i | _ -> -1) !order));
    case "sorted_elements is sorted and complete" (fun () ->
        let r = relation_of_pairs [ (3, 0); (1, 2); (2, 1) ] in
        Alcotest.(check (list (pair int int)))
          "sorted"
          [ (1, 2); (2, 1); (3, 0) ]
          (List.map
             (fun t ->
               match Tuple.get t 0, Tuple.get t 1 with
               | Const.Int a, Const.Int b -> (a, b)
               | _ -> (-1, -1))
             (Relation.sorted_elements r)));
    case "lookup with empty positions returns all" (fun () ->
        let r = relation_of_pairs [ (1, 2); (3, 4) ] in
        Alcotest.(check int) "all" 2
          (List.length (Relation.lookup r ~positions:[||] ~key:[||])));
    case "lookup by first position" (fun () ->
        let r = relation_of_pairs [ (1, 2); (1, 3); (2, 3) ] in
        let hits =
          Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |]
        in
        Alcotest.(check int) "two hits" 2 (List.length hits));
    case "lookup by both positions" (fun () ->
        let r = relation_of_pairs [ (1, 2); (1, 3) ] in
        let hits =
          Relation.lookup r ~positions:[| 0; 1 |]
            ~key:[| Const.int 1; Const.int 3 |]
        in
        Alcotest.(check int) "one hit" 1 (List.length hits));
    case "lookup misses return empty" (fun () ->
        let r = relation_of_pairs [ (1, 2) ] in
        Alcotest.(check int) "none" 0
          (List.length
             (Relation.lookup r ~positions:[| 1 |] ~key:[| Const.int 9 |])));
    case "index stays correct under later adds" (fun () ->
        let r = relation_of_pairs [ (1, 2) ] in
        (* Force index creation, then add. *)
        ignore (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |]);
        ignore (Relation.add r (Tuple.of_ints [ 1; 9 ]));
        Alcotest.(check int) "index sees new tuple" 2
          (List.length
             (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |])));
    case "index_count grows per distinct pattern" (fun () ->
        (* Enough tuples that a probe exceeds the columnar-scan cutoff
           and actually materializes an index. *)
        let r =
          relation_of_pairs (List.init 40 (fun i -> (i, i + 1)))
        in
        ignore (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |]);
        ignore (Relation.lookup r ~positions:[| 1 |] ~key:[| Const.int 2 |]);
        ignore (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 7 |]);
        Alcotest.(check int) "two indexes" 2 (Relation.index_count r));
    case "small slab probes defer index construction" (fun () ->
        let r = relation_of_pairs [ (1, 2) ] in
        Alcotest.(check (list tuple_t))
          "columnar scan answers"
          [ Tuple.of_ints [ 1; 2 ] ]
          (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |]);
        Alcotest.(check int) "no index built" 0 (Relation.index_count r));
    case "copy is independent" (fun () ->
        let r = relation_of_pairs [ (1, 2) ] in
        let c = Relation.copy r in
        ignore (Relation.add c (Tuple.of_ints [ 5; 6 ]));
        Alcotest.(check int) "original unchanged" 1 (Relation.cardinal r);
        Alcotest.(check int) "copy grew" 2 (Relation.cardinal c));
    case "clear empties everything" (fun () ->
        let r = relation_of_pairs [ (1, 2); (3, 4) ] in
        ignore (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |]);
        Relation.clear r;
        Alcotest.(check int) "empty" 0 (Relation.cardinal r);
        Alcotest.(check bool) "is_empty" true (Relation.is_empty r);
        Alcotest.(check int) "lookup finds nothing" 0
          (List.length
             (Relation.lookup r ~positions:[| 0 |] ~key:[| Const.int 1 |])));
    case "add_all counts only new tuples" (fun () ->
        let a = relation_of_pairs [ (1, 2); (3, 4) ] in
        let b = relation_of_pairs [ (3, 4); (5, 6) ] in
        Alcotest.(check int) "one new" 1 (Relation.add_all a b);
        Alcotest.(check int) "total" 3 (Relation.cardinal a));
    case "equal ignores insertion order" (fun () ->
        Alcotest.check relation_t "same set"
          (relation_of_pairs [ (1, 2); (3, 4) ])
          (relation_of_pairs [ (3, 4); (1, 2) ]));
    case "equal detects differences" (fun () ->
        Alcotest.(check bool) "different" false
          (Relation.equal
             (relation_of_pairs [ (1, 2) ])
             (relation_of_pairs [ (1, 3) ])));
  ]

let database_tests =
  [
    case "declare creates once" (fun () ->
        let db = Database.create () in
        let r1 = Database.declare db "p" 2 in
        let r2 = Database.declare db "p" 2 in
        Alcotest.(check bool) "same relation" true (r1 == r2));
    case "declare arity mismatch raises" (fun () ->
        let db = Database.create () in
        ignore (Database.declare db "p" 2);
        Alcotest.(check bool) "raises" true
          (try
             ignore (Database.declare db "p" 3);
             false
           with Invalid_argument _ -> true));
    case "add_fact declares on first use" (fun () ->
        let db = Database.create () in
        Alcotest.(check bool) "new" true
          (Database.add_fact db "q" (Tuple.of_ints [ 1 ]));
        Alcotest.(check (option int)) "arity" (Some 1) (Database.arity db "q"));
    case "predicates are sorted" (fun () ->
        let db = Database.create () in
        ignore (Database.add_fact db "zz" (Tuple.of_ints [ 1 ]));
        ignore (Database.add_fact db "aa" (Tuple.of_ints [ 1 ]));
        Alcotest.(check (list string)) "sorted" [ "aa"; "zz" ]
          (Database.predicates db));
    case "total_tuples" (fun () ->
        let db = edb_of_edges [ (1, 2); (2, 3) ] in
        ignore (Database.add_fact db "other" (Tuple.of_ints [ 9 ]));
        Alcotest.(check int) "three" 3 (Database.total_tuples db));
    case "copy is deep" (fun () ->
        let db = edb_of_edges [ (1, 2) ] in
        let c = Database.copy db in
        ignore (Database.add_fact c "par" (Tuple.of_ints [ 9; 9 ]));
        Alcotest.(check int) "original" 1 (Database.cardinal db "par");
        Alcotest.(check int) "copy" 2 (Database.cardinal c "par"));
    case "restrict keeps only listed predicates" (fun () ->
        let db = edb_of_edges [ (1, 2) ] in
        ignore (Database.add_fact db "other" (Tuple.of_ints [ 9 ]));
        let r = Database.restrict db [ "par" ] in
        Alcotest.(check bool) "par kept" true (Database.mem r "par");
        Alcotest.(check bool) "other dropped" false (Database.mem r "other"));
    case "merge_into returns new-tuple count" (fun () ->
        let dst = edb_of_edges [ (1, 2) ] in
        let src = edb_of_edges [ (1, 2); (3, 4) ] in
        Alcotest.(check int) "one new" 1 (Database.merge_into ~dst ~src);
        Alcotest.(check int) "total" 2 (Database.cardinal dst "par"));
    case "equal treats missing and empty alike" (fun () ->
        let a = Database.create () in
        let b = Database.create () in
        ignore (Database.declare a "p" 2);
        Alcotest.check database_t "equal" a b);
    case "equal detects content differences" (fun () ->
        Alcotest.(check bool) "different" false
          (Database.equal (edb_of_edges [ (1, 2) ]) (edb_of_edges [ (2, 1) ])));
  ]

let suites = [ ("relation", relation_tests); ("database", database_tests) ]
