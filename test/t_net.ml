(* The multi-process runtime: exactness over real sockets.

   Every test here spawns genuine OS processes ([Net_runtime.Fork])
   talking to a coordinator over Unix-domain sockets, with the
   deterministic fault shim sitting on the coordinator's payload
   path. The guarantees mirror the in-process fault suite: pooled
   answers equal the sequential evaluation under random socket-level
   fault plans; a worker SIGKILLed mid-run is restarted and restored
   from its checkpoint with the exact answer; and a zero-probability
   plan leaves the paper's communication counts untouched. *)

open Datalog
open Pardatalog
module G = Workload.Graphgen

let anc_text = "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), par(Z,Y).\n"
(* Discriminating on Y (not the preserved X) forces tuples to migrate
   between processors every round, so the reliable layer and the fault
   shim actually see traffic. *)
let anc_spec = Net.Wire.Spec_q { ve = [ "Y" ]; vr = [ "Y" ] }

(* Build the coordinator-side rewrite exactly the way a worker will:
   from the program text, so symbol interning agrees. *)
let anc_rw ~seed ~nprocs =
  let program = Parser.program_exn anc_text in
  match Strategy.hash_q ~seed ~nprocs ~ve:[ "Y" ] ~vr:[ "Y" ] program with
  | Ok rw -> rw
  | Error e -> failwith e

let seq_answers edges =
  let program = Parser.program_exn anc_text in
  let seq, _ = Seminaive.evaluate program (Workload.Edb.of_edges edges) in
  Database.get seq "anc"

let net_run ?(config = Run_config.default) ?(procs = 2) ~seed ~nprocs edges =
  Net.Net_runtime.run ~config ~program:anc_text ~spec:anc_spec ~seed ~procs
    ~spawn:Net.Net_runtime.Fork
    (anc_rw ~seed ~nprocs)
    ~edb:(Workload.Edb.of_edges edges)

(* ------------------------------------------------------------------ *)
(* Random socket-level fault plans on chain / grid / hotspot           *)
(* ------------------------------------------------------------------ *)

type work = Chain of int | Grid of int * int | Hotspot of int

let edges_of = function
  | Chain n -> G.chain n
  | Grid (r, c) -> G.grid ~rows:r ~cols:c
  | Hotspot seed ->
    G.hotspot (Workload.Rng.create ~seed) ~nodes:12 ~edges:26 ~hubs:2

let print_work = function
  | Chain n -> Printf.sprintf "chain %d" n
  | Grid (r, c) -> Printf.sprintf "grid %dx%d" r c
  | Hotspot s -> Printf.sprintf "hotspot seed=%d" s

type cfg = {
  c_work : work;
  c_seed : int;
  c_nprocs : int;
  c_procs : int;
  c_drop : int;  (* twentieths *)
  c_dup : int;
  c_delay : int;
  c_crash : (int * int) option;  (* pid hint, round *)
  c_checkpoint : int;
}

let cfg_gen =
  QCheck.Gen.(
    let* c_work =
      oneof
        [
          map (fun n -> Chain n) (int_range 6 16);
          map (fun (r, c) -> Grid (r, c)) (pair (int_range 2 3) (int_range 2 4));
          map (fun s -> Hotspot s) (int_range 0 99);
        ]
    in
    let* c_seed = int_range 0 999 in
    let* c_nprocs = int_range 2 4 in
    let* c_procs = int_range 1 3 in
    let* c_drop = int_range 0 5 in
    let* c_dup = int_range 0 4 in
    let* c_delay = int_range 0 4 in
    let* c_crash =
      oneof
        [
          return None;
          map2 (fun p r -> Some (p, r)) (int_range 0 3) (int_range 1 3);
        ]
    in
    let* c_checkpoint = int_range 1 3 in
    return
      { c_work; c_seed; c_nprocs; c_procs; c_drop; c_dup; c_delay; c_crash;
        c_checkpoint })

let cfg_arb =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf
        "%s seed=%d n=%d procs=%d drop=%d/20 dup=%d/20 delay=%d/20 \
         crash=%s ckpt=%d"
        (print_work c.c_work) c.c_seed c.c_nprocs c.c_procs c.c_drop c.c_dup
        c.c_delay
        (match c.c_crash with
         | None -> "-"
         | Some (p, r) -> Printf.sprintf "%d@%d" p r)
        c.c_checkpoint)
    cfg_gen

let plan_of c =
  Fault.make ~seed:c.c_seed
    ~drop:(float_of_int c.c_drop /. 20.0)
    ~dup:(float_of_int c.c_dup /. 20.0)
    ~delay:(float_of_int c.c_delay /. 20.0)
    ~max_delay:2
    ~crashes:
      (match c.c_crash with
       | None -> []
       | Some (p, r) ->
         [ { Fault.cr_pid = p mod c.c_nprocs; cr_round = r; cr_down = 1 } ])
    ~checkpoint_every:c.c_checkpoint ()

let prop_faulty_net_equals_sequential =
  QCheck.Test.make ~count:12
    ~name:"random socket faults: net runtime = sequential" cfg_arb
    (fun c ->
      let edges = edges_of c.c_work in
      let config = Run_config.(default |> with_fault (plan_of c)) in
      let r =
        net_run ~config ~procs:c.c_procs ~seed:c.c_seed ~nprocs:c.c_nprocs
          edges
      in
      Relation.equal (seq_answers edges)
        (Database.get r.Sim_runtime.answers "anc"))

(* ------------------------------------------------------------------ *)
(* A SIGKILLed worker is restarted and restored from its checkpoint.   *)
(* ------------------------------------------------------------------ *)

let unit_crash_restore () =
  let edges = G.chain 20 in
  let plan =
    Fault.make
      ~crashes:[ { Fault.cr_pid = 1; cr_round = 2; cr_down = 1 } ]
      ~checkpoint_every:2 ()
  in
  let config = Run_config.(default |> with_fault plan) in
  let r = net_run ~config ~procs:2 ~seed:7 ~nprocs:4 edges in
  Alcotest.check Helpers.relation_t "exact answers after SIGKILL + restore"
    (seq_answers edges)
    (Database.get r.Sim_runtime.answers "anc");
  let f = r.Sim_runtime.stats.Stats.faults in
  let t = r.Sim_runtime.stats.Stats.transport in
  Alcotest.(check bool) "a crash fired" true (f.Stats.crashes >= 1);
  Alcotest.(check bool) "restored from a checkpoint" true
    (f.Stats.restores >= 1);
  Alcotest.(check bool) "the supervisor restarted the worker" true
    (t.Stats.worker_restarts >= 1);
  Alcotest.(check bool) "the restarted worker re-dialled" true
    (t.Stats.reconnects >= 1)

(* ------------------------------------------------------------------ *)
(* A zero-probability plan (the reliable layer armed, nothing faulted) *)
(* reproduces the in-process runtime's message counts exactly, so the  *)
(* paper's communication claims survive the move onto real sockets.    *)
(* ------------------------------------------------------------------ *)

let unit_zero_fault_exact_counts () =
  let edges = G.chain 14 in
  let seed = 3 and nprocs = 3 in
  let plan = Fault.make ~checkpoint_every:3 () in
  let config = Run_config.(default |> with_fault plan) in
  let net = net_run ~config ~procs:2 ~seed ~nprocs edges in
  let sim =
    Sim_runtime.run
      (anc_rw ~seed ~nprocs)
      ~edb:(Workload.Edb.of_edges edges)
  in
  let sent s = Array.map (fun p -> p.Stats.tuples_sent) s.Stats.per_proc in
  let received s =
    Array.map (fun p -> p.Stats.tuples_received) s.Stats.per_proc
  in
  Alcotest.check Helpers.database_t "answers agree" sim.Sim_runtime.answers
    net.Sim_runtime.answers;
  Alcotest.(check bool) "channel tuple matrix" true
    (sim.Sim_runtime.stats.Stats.channel_tuples
    = net.Sim_runtime.stats.Stats.channel_tuples);
  Alcotest.(check (array int)) "per-processor sent"
    (sent sim.Sim_runtime.stats)
    (sent net.Sim_runtime.stats);
  Alcotest.(check (array int)) "per-processor received"
    (received sim.Sim_runtime.stats)
    (received net.Sim_runtime.stats);
  Alcotest.(check int) "no retransmissions" 0
    net.Sim_runtime.stats.Stats.transport.Stats.wire_retransmits

(* ------------------------------------------------------------------ *)
(* Plain run sanity: more workers than processors, single worker.      *)
(* ------------------------------------------------------------------ *)

let unit_worker_clamp () =
  let edges = G.chain 10 in
  List.iter
    (fun procs ->
      let r = net_run ~procs ~seed:1 ~nprocs:2 edges in
      Alcotest.check Helpers.relation_t
        (Printf.sprintf "procs=%d pools the sequential answer" procs)
        (seq_answers edges)
        (Database.get r.Sim_runtime.answers "anc"))
    [ 1; 2; 5 ]

let suites =
  [
    ( "net",
      [ QCheck_alcotest.to_alcotest prop_faulty_net_equals_sequential ]
      @ [
          Alcotest.test_case "SIGKILL mid-run: checkpoint restore" `Quick
            unit_crash_restore;
          Alcotest.test_case "zero-probability plan: exact counts" `Quick
            unit_zero_fault_exact_counts;
          Alcotest.test_case "worker count clamps" `Quick unit_worker_clamp;
        ] );
  ]
