#!/bin/sh
# Documentation-consistency guard:
#
#   1. The flag tables in README.md (between the "begin/end par
#      flags", "begin/end check flags" and "begin/end datalogd flags"
#      markers) must list exactly the flags the CLIs accept.
#   2. The bench-section table in README.md (between the "begin/end
#      bench sections" markers) must list exactly the section ids
#      `bench/main.exe --help` reports.
#   3. Every committed BENCH_*.json baseline must be mentioned by name
#      in PERFORMANCE.md (the canonical perf-trajectory document).
#
# A drift in any direction fails `dune runtest` (alias @docs) with a
# diff.
#
# Usage: docs_check.sh DATALOGP DATALOGD BENCH README PERFORMANCE ROOT
#
# The flag name is the first `--token` of a table row's first cell; on
# the --help side it is every long option named on an option line
# (--help and --version excluded as cmdliner boilerplate).  A bench
# section id is the backticked first cell of a table row; on the
# --help side, the first word of each line of the sections block.
set -eu

datalogp=$1
datalogd=$2
bench=$3
readme=$4
performance=$5
root=$6

readme_flags () {
  sed -n "/begin $1 flags/,/end $1 flags/p" "$readme" \
    | awk -F'|' 'NF > 2 { print $2 }' \
    | grep -oE -- '--[a-z][a-z-]*' | sort
}

help_flags () {
  "$@" --help=plain \
    | sed -n '/^OPTIONS/,/^EXIT STATUS/p' \
    | grep -E '^       -' \
    | grep -oE -- '--[a-z][a-z-]*' \
    | grep -vE '^--(help|version)$' | sort
}

check_table () {
  table=$1
  shift
  readme_flags "$table" > "readme-$table"
  help_flags "$@" > "help-$table"
  if ! diff -u "readme-$table" "help-$table" > "diff-$table"; then
    echo "README $table flag table is out of sync with '$* --help':"
    cat "diff-$table"
    echo "(lines with '-' are README rows for flags the CLI lacks;"
    echo " lines with '+' are CLI flags missing a README row)"
    status=1
  fi
}

status=0
check_table par "$datalogp" par
check_table check "$datalogp" check
check_table datalogd "$datalogd"

# The README's bench-section table must match the harness's own
# section registry (`bench --help` prints one line per section).
sed -n '/begin bench sections/,/end bench sections/p' "$readme" \
  | awk -F'|' 'NF > 2 { print $2 }' \
  | grep -oE '`[a-z0-9]+`' | tr -d '`' | sort > readme-bench
"$bench" --help \
  | sed -n '/^sections:/,/^flags:/p' \
  | awk '/^  [a-z0-9]/ { print $1 }' | sort > help-bench
if ! diff -u readme-bench help-bench > diff-bench; then
  echo "README bench-section table is out of sync with 'bench --help':"
  cat diff-bench
  echo "(lines with '-' are README rows for sections the bench lacks;"
  echo " lines with '+' are bench sections missing a README row)"
  status=1
fi

# Every committed baseline file must be documented in PERFORMANCE.md,
# so a bench section cannot start writing a new BENCH_*.json without
# the perf-trajectory document gaining a row for it.
found_baseline=0
for f in "$root"/BENCH_*.json; do
  [ -e "$f" ] || continue
  found_baseline=1
  b=$(basename "$f")
  if ! grep -q "$b" "$performance"; then
    echo "docs_check: baseline $b is not documented in PERFORMANCE.md"
    status=1
  fi
done
if [ "$found_baseline" = 0 ]; then
  echo "docs_check: no BENCH_*.json baselines found under '$root';"
  echo "is the project root argument wrong?"
  status=1
fi

# A sanity check that the extraction is not vacuously empty: an empty
# side would make the diff pass trivially if the markers went missing.
for f in readme-par help-par readme-check help-check \
         readme-datalogd help-datalogd readme-bench help-bench; do
  if ! [ -s "$f" ]; then
    echo "docs_check: extracted flag list '$f' is empty;"
    echo "are the README table markers or --help format intact?"
    status=1
  fi
done

# Every diagnostic code the checker can emit (`check --codes`) must be
# mentioned in the README, so the planner codes (E201-E203, W110,
# I005, I110-I112) cannot be added to the registry without a row in
# the Diagnostics tables.
"$datalogp" check --codes | awk '{ print $1 }' | sort -u > codes-cli
if ! [ -s codes-cli ]; then
  echo "docs_check: 'check --codes' produced no codes"
  status=1
fi
while read -r code; do
  if ! grep -q "$code" "$readme"; then
    echo "docs_check: diagnostic $code is not documented in the README"
    status=1
  fi
done < codes-cli

exit $status
