#!/bin/sh
# Documentation-consistency guard: the flag tables in README.md
# (between the "begin/end par flags", "begin/end check flags" and
# "begin/end datalogd flags" markers) must list exactly the flags the
# CLIs accept.  A flag added to a CLI without a README row -- or a row
# for a flag that no longer exists -- fails `dune runtest` (alias
# @docs) with a diff.
#
# Usage: docs_check.sh DATALOGP DATALOGD README
#
# The flag name is the first `--token` of a table row's first cell; on
# the --help side it is every long option named on an option line
# (--help and --version excluded as cmdliner boilerplate).
set -eu

datalogp=$1
datalogd=$2
readme=$3

readme_flags () {
  sed -n "/begin $1 flags/,/end $1 flags/p" "$readme" \
    | awk -F'|' 'NF > 2 { print $2 }' \
    | grep -oE -- '--[a-z][a-z-]*' | sort
}

help_flags () {
  "$@" --help=plain \
    | sed -n '/^OPTIONS/,/^EXIT STATUS/p' \
    | grep -E '^       -' \
    | grep -oE -- '--[a-z][a-z-]*' \
    | grep -vE '^--(help|version)$' | sort
}

check_table () {
  table=$1
  shift
  readme_flags "$table" > "readme-$table"
  help_flags "$@" > "help-$table"
  if ! diff -u "readme-$table" "help-$table" > "diff-$table"; then
    echo "README $table flag table is out of sync with '$* --help':"
    cat "diff-$table"
    echo "(lines with '-' are README rows for flags the CLI lacks;"
    echo " lines with '+' are CLI flags missing a README row)"
    status=1
  fi
}

status=0
check_table par "$datalogp" par
check_table check "$datalogp" check
check_table datalogd "$datalogd"

# A sanity check that the extraction is not vacuously empty: an empty
# side would make the diff pass trivially if the markers went missing.
for f in readme-par help-par readme-check help-check \
         readme-datalogd help-datalogd; do
  if ! [ -s "$f" ]; then
    echo "docs_check: extracted flag list '$f' is empty;"
    echo "are the README table markers or --help format intact?"
    status=1
  fi
done

# Every diagnostic code the checker can emit (`check --codes`) must be
# mentioned in the README, so the planner codes (E201-E203, W110,
# I005, I110-I112) cannot be added to the registry without a row in
# the Diagnostics tables.
"$datalogp" check --codes | awk '{ print $1 }' | sort -u > codes-cli
if ! [ -s codes-cli ]; then
  echo "docs_check: 'check --codes' produced no codes"
  status=1
fi
while read -r code; do
  if ! grep -q "$code" "$readme"; then
    echo "docs_check: diagnostic $code is not documented in the README"
    status=1
  fi
done < codes-cli

exit $status
