#!/bin/sh
# Documentation-consistency guard: the flag tables in README.md
# (between the "begin/end par flags" and "begin/end check flags"
# markers) must list exactly the flags the CLI accepts.  A flag added
# to the CLI without a README row -- or a row for a flag that no
# longer exists -- fails `dune runtest` (alias @docs) with a diff.
#
# Usage: docs_check.sh DATALOGP README
#
# The flag name is the first `--token` of a table row's first cell; on
# the --help side it is every long option named on an option line
# (--help and --version excluded as cmdliner boilerplate).
set -eu

datalogp=$1
readme=$2

readme_flags () {
  sed -n "/begin $1 flags/,/end $1 flags/p" "$readme" \
    | awk -F'|' 'NF > 2 { print $2 }' \
    | grep -oE -- '--[a-z][a-z-]*' | sort
}

help_flags () {
  "$datalogp" "$1" --help=plain \
    | sed -n '/^OPTIONS/,/^EXIT STATUS/p' \
    | grep -E '^       -' \
    | grep -oE -- '--[a-z][a-z-]*' \
    | grep -vE '^--(help|version)$' | sort
}

status=0
for cmd in par check; do
  readme_flags "$cmd" > "readme-$cmd"
  help_flags "$cmd" > "help-$cmd"
  if ! diff -u "readme-$cmd" "help-$cmd" > "diff-$cmd"; then
    echo "README $cmd flag table is out of sync with '$datalogp $cmd --help':"
    cat "diff-$cmd"
    echo "(lines with '-' are README rows for flags the CLI lacks;"
    echo " lines with '+' are CLI flags missing a README row)"
    status=1
  fi
done

# A sanity check that the extraction is not vacuously empty: an empty
# side would make the diff pass trivially if the markers went missing.
for f in readme-par help-par readme-check help-check; do
  if ! [ -s "$f" ]; then
    echo "docs_check: extracted flag list '$f' is empty;"
    echo "are the README table markers or --help format intact?"
    status=1
  fi
done

# Every diagnostic code the checker can emit (`check --codes`) must be
# mentioned in the README, so the planner codes (E201-E203, W110,
# I005, I110-I112) cannot be added to the registry without a row in
# the Diagnostics tables.
"$datalogp" check --codes | awk '{ print $1 }' | sort -u > codes-cli
if ! [ -s codes-cli ]; then
  echo "docs_check: 'check --codes' produced no codes"
  status=1
fi
while read -r code; do
  if ! grep -q "$code" "$readme"; then
    echo "docs_check: diagnostic $code is not documented in the README"
    status=1
  fi
done < codes-cli

exit $status
