(* Tests for Dataflow, Netgraph and Derive — the Section 5 results,
   including exact reproductions of Figures 1 through 4. *)

open Datalog
open Pardatalog
open Helpers

let sirup_of p = Result.get_ok (Analysis.as_sirup p)

let dataflow_tests =
  [
    case "Figure 1: chain dataflow graph of example 4/7" (fun () ->
        let g = Dataflow.of_sirup (sirup_of Workload.Progs.example7) in
        Alcotest.(check (list (pair int int)))
          "edges" [ (1, 2); (2, 3) ] g.Dataflow.edges;
        Alcotest.(check (list int)) "nodes" [ 1; 2 ] g.Dataflow.nodes);
    case "Figure 2: ancestor has a self-loop on position 2" (fun () ->
        let g = Dataflow.of_sirup (sirup_of ancestor) in
        Alcotest.(check (list (pair int int)))
          "edges" [ (2, 2) ] g.Dataflow.edges);
    case "example 6 dataflow" (fun () ->
        (* p(X,Y) :- p(Y,Z), r(X,Z): Y (body pos 1) = head pos 2. *)
        let g = Dataflow.of_sirup (sirup_of Workload.Progs.example6) in
        Alcotest.(check (list (pair int int)))
          "edges" [ (1, 2) ] g.Dataflow.edges);
    case "find_cycle on acyclic graphs" (fun () ->
        let g = Dataflow.of_sirup (sirup_of Workload.Progs.example7) in
        Alcotest.(check bool) "none" true (Dataflow.find_cycle g = None));
    case "find_cycle on the ancestor self-loop" (fun () ->
        let g = Dataflow.of_sirup (sirup_of ancestor) in
        Alcotest.(check (option (list int))) "self" (Some [ 2 ])
          (Dataflow.find_cycle g));
    case "find_cycle on a 2-cycle" (fun () ->
        let g = Dataflow.of_sirup (sirup_of Workload.Progs.reverse_pair) in
        match Dataflow.find_cycle g with
        | Some c -> Alcotest.(check int) "length 2" 2 (List.length c)
        | None -> Alcotest.fail "expected a cycle");
    case "communication-free choice for ancestor is Y/Y (Example 1)"
      (fun () ->
        match Dataflow.communication_free_choice (sirup_of ancestor) with
        | Some fc ->
          Alcotest.(check (list string)) "ve" [ "Y" ] fc.Dataflow.ve;
          Alcotest.(check (list string)) "vr" [ "Y" ] fc.Dataflow.vr
        | None -> Alcotest.fail "expected a choice");
    case "no choice for acyclic dataflow" (fun () ->
        Alcotest.(check bool) "none" true
          (Dataflow.communication_free_choice (sirup_of Workload.Progs.example7)
           = None));
    case "theorem 3 execution really is communication-free" (fun () ->
        (* Run the Theorem-3 choice for the 2-cycle sirup and check no
           inter-processor messages flow. *)
        let p = Workload.Progs.reverse_pair in
        let rw = Result.get_ok (Strategy.no_communication ~nprocs:4 p) in
        let edb = edb_of_edges ~pred:"q" [ (1, 2); (2, 1); (3, 4); (5, 5) ] in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check int) "no messages" 0 report.Verify.messages);
  ]

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1))
  in
  go 0

let netgraph_tests =
  [
    case "complete graph size" (fun () ->
        Alcotest.(check int) "n^2" 16
          (Netgraph.edge_count (Netgraph.complete (Pid.dense 4))));
    case "self_only" (fun () ->
        let g = Netgraph.self_only (Pid.dense 3) in
        Alcotest.(check int) "three" 3 (Netgraph.edge_count g);
        Alcotest.(check bool) "has self" true (Netgraph.mem g 1 1);
        Alcotest.(check bool) "no cross" false (Netgraph.mem g 0 1));
    case "without_self strips loops" (fun () ->
        let g = Netgraph.make (Pid.dense 3) [ (0, 0); (0, 1) ] in
        Alcotest.(check int) "one left" 1
          (Netgraph.edge_count (Netgraph.without_self g)));
    case "make dedups and validates" (fun () ->
        let g = Netgraph.make (Pid.dense 2) [ (0, 1); (0, 1) ] in
        Alcotest.(check int) "dedup" 1 (Netgraph.edge_count g);
        Alcotest.(check bool) "raises" true
          (try
             ignore (Netgraph.make (Pid.dense 2) [ (0, 2) ]);
             false
           with Invalid_argument _ -> true));
    case "subgraph and equal" (fun () ->
        let small = Netgraph.make (Pid.dense 3) [ (0, 1) ] in
        let big = Netgraph.make (Pid.dense 3) [ (0, 1); (1, 2) ] in
        Alcotest.(check bool) "subgraph" true (Netgraph.subgraph small big);
        Alcotest.(check bool) "not super" false (Netgraph.subgraph big small);
        Alcotest.(check bool) "equal self" true (Netgraph.equal big big));
    case "union" (fun () ->
        let a = Netgraph.make (Pid.dense 3) [ (0, 1) ] in
        let b = Netgraph.make (Pid.dense 3) [ (1, 2) ] in
        Alcotest.(check int) "two" 2 (Netgraph.edge_count (Netgraph.union a b)));
    case "of_labels resolves bit-vector names" (fun () ->
        let g = Netgraph.of_labels (Pid.bitvec 2) [ ("(00)", "(10)") ] in
        Alcotest.(check bool) "edge" true (Netgraph.mem g 0 2));
    case "to_dot mentions every edge" (fun () ->
        let dot = Netgraph.to_dot (Netgraph.self_only (Pid.dense 2)) in
        Alcotest.(check bool) "has self edge" true (contains dot "n0 -> n0"));
  ]

let figure3_expected =
  Netgraph.of_labels (Pid.bitvec 2)
    [
      ("(00)", "(00)"); ("(00)", "(10)");
      ("(01)", "(00)"); ("(01)", "(01)"); ("(01)", "(10)");
      ("(10)", "(01)"); ("(10)", "(10)"); ("(10)", "(11)");
      ("(11)", "(01)"); ("(11)", "(11)");
    ]

let figure4_expected =
  let space = Pid.range ~lo:(-1) ~hi:2 in
  Netgraph.of_labels space
    [
      ("-1", "-1"); ("-1", "1"); ("-1", "2");
      ("0", "0"); ("0", "1"); ("0", "2");
      ("1", "-1"); ("1", "0"); ("1", "1");
      ("2", "-1"); ("2", "0"); ("2", "2");
    ]

let derive_tests =
  [
    case "Figure 3: Example 6 minimal network" (fun () ->
        let s = sirup_of Workload.Progs.example6 in
        match
          Derive.minimal_network
            { sirup = s; ve = [ "X"; "Y" ]; vr = [ "Y"; "Z" ];
              spec = Hash_fn.Bitvec }
        with
        | Ok net ->
          Alcotest.(check bool) "matches the paper" true
            (Netgraph.equal net figure3_expected)
        | Error e -> Alcotest.fail e);
    case "Figure 4: Example 7 minimal network" (fun () ->
        let s = sirup_of Workload.Progs.example7 in
        match
          Derive.minimal_network
            { sirup = s; ve = [ "U"; "V"; "W" ]; vr = [ "V"; "W"; "Z" ];
              spec = Hash_fn.Linear { coeffs = [| 1; -1; 1 |]; lo = -1 } }
        with
        | Ok net ->
          Alcotest.(check bool) "matches equations (4)-(5)" true
            (Netgraph.equal net figure4_expected)
        | Error e -> Alcotest.fail e);
    case "cycle-aligned sequences derive the self-only network" (fun () ->
        (* Ancestor with ve = vr = <Y>: the derived network must show no
           cross-processor edges, the compile-time face of Example 1. *)
        let s = sirup_of ancestor in
        match
          Derive.minimal_network
            { sirup = s; ve = [ "Y" ]; vr = [ "Y" ]; spec = Hash_fn.Bitvec }
        with
        | Ok net ->
          Alcotest.(check bool) "self only" true
            (Netgraph.equal net (Netgraph.self_only (Pid.bitvec 1)))
        | Error e -> Alcotest.fail e);
    case "opaque specs are rejected" (fun () ->
        let s = sirup_of ancestor in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Derive.minimal_network
                { sirup = s; ve = [ "Y" ]; vr = [ "Y" ];
                  spec = Hash_fn.Opaque })));
    case "uncovered v(r) is rejected (broadcast case)" (fun () ->
        let s = sirup_of ancestor in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Derive.minimal_network
                { sirup = s; ve = [ "X" ]; vr = [ "X" ];
                  spec = Hash_fn.Bitvec })));
    case "derived network contains every used channel (Example 6)"
      (fun () ->
        (* Execute Example 6 with the bit-vector hash and check that
           every channel the run used is an edge of Figure 3. *)
        let p = Workload.Progs.example6 in
        let h = Hash_fn.bitvec ~arity:2 () in
        let rw =
          Rewrite.make p
            ~policies:
              [
                Rewrite.Uniform
                  (Discriminant.make ~vars:[ "X"; "Y" ] ~fn:h);
                Rewrite.Uniform
                  (Discriminant.make ~vars:[ "Y"; "Z" ] ~fn:h);
              ]
        in
        let rng = Workload.Rng.create ~seed:3 in
        let edb = Database.create () in
        List.iter
          (fun (a, b) ->
            ignore (Database.add_fact edb "q" (Tuple.of_ints [ a; b ])))
          (Workload.Graphgen.random_digraph rng ~nodes:15 ~edges:30);
        List.iter
          (fun (a, b) ->
            ignore (Database.add_fact edb "r" (Tuple.of_ints [ a; b ])))
          (Workload.Graphgen.random_digraph rng ~nodes:15 ~edges:30);
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check bool) "channels within Figure 3" true
          (Verify.channels_within report.Verify.stats figure3_expected));
    case "execution on the derived network succeeds (Definition 3)"
      (fun () ->
        let h = Hash_fn.bitvec ~arity:2 () in
        let rw =
          Rewrite.make Workload.Progs.example6
            ~policies:
              [
                Rewrite.Uniform (Discriminant.make ~vars:[ "X"; "Y" ] ~fn:h);
                Rewrite.Uniform (Discriminant.make ~vars:[ "Y"; "Z" ] ~fn:h);
              ]
        in
        let rng = Workload.Rng.create ~seed:6 in
        let edb = Database.create () in
        List.iter
          (fun (a, b) ->
            ignore (Database.add_fact edb "q" (Tuple.of_ints [ a; b ]));
            ignore (Database.add_fact edb "r" (Tuple.of_ints [ b; a ])))
          (Workload.Graphgen.random_digraph rng ~nodes:20 ~edges:40);
        let config =
          Run_config.(default |> with_network (Some figure3_expected))
        in
        (* Must complete without a Definition 3 violation. *)
        let r = Sim_runtime.run ~config rw ~edb in
        Alcotest.(check bool) "produced answers" true
          (Datalog.Database.mem r.Sim_runtime.answers "p"));
    case "a too-small network aborts the run (Definition 3)" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
        let edb = edb_of_edges (Workload.Graphgen.chain 20) in
        let config =
          Run_config.(
            default |> with_network (Some (Netgraph.self_only (Pid.dense 4))))
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sim_runtime.run ~config rw ~edb);
             false
           with Failure _ -> true));
  ]

let suites =
  [
    ("dataflow", dataflow_tests);
    ("netgraph", netgraph_tests);
    ("derive", derive_tests);
  ]
