Exit-code conventions and wire replies of the datalogd daemon. The
conventions mirror `datalogp par`: 0 success, 1 error, 2 usage,
3 BUSY (overload), 4 PARTIAL (degraded answer). Saturation cases get
a wide deterministic window via --hold-eval-ms.

Usage errors exit 2, like every other tool in the suite.

  $ datalogd
  datalogd: server mode needs --socket PATH or --port N (or use --connect)
  [2]

  $ datalogd --socket d.sock --port 99
  datalogd: --socket and --port are exclusive
  [2]

A server with a resident program, loaded at startup. Clients speak
the line protocol on stdin; replies appear on stdout.

  $ cat > anc.dl <<'EOF'
  > anc(X,Y) :- par(X,Y).
  > anc(X,Y) :- par(X,Z), anc(Z,Y).
  > EOF
  $ for i in 0 1 2 3 4 5 6 7 8; do echo "par($i,$((i+1)))."; done > chain.dl
  $ datalogd --socket d.sock --runtime sim -j 2 --load anc=anc.dl \
  >   --facts anc=chain.dl --metrics-out metrics.json \
  >   > server.log 2>&1 &
  $ SRV=$!

PING, a query, and a clean QUIT: exit 0. (The client retries the
connect while the server is still binding, so no sleep is needed.)

  $ printf 'PING\nQUERY id=q1 prog=anc\nQUIT\n' | datalogd --connect d.sock
  DATALOGD/2 READY
  PONG
  RESULT id=q1 status=ok rows=45 scheme=general
  END id=q1
  BYE reason=client

Requests are idempotent by id: a new connection re-sending id=q1 gets
the cached reply byte for byte, with no second evaluation.

  $ printf 'QUERY id=q1 prog=anc\n' | datalogd --connect d.sock
  DATALOGD/2 READY
  RESULT id=q1 status=ok rows=45 scheme=general
  END id=q1

Programs and facts can also arrive over the wire; rows=true streams
the answer relation.

  $ printf 'LOAD tc\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n.\nFACTS tc\nedge(1,2).\nedge(2,3).\n.\nQUERY id=a prog=tc rows=true\n' \
  >   | datalogd --connect d.sock
  DATALOGD/2 READY
  OK load prog=tc rules=2
  OK facts prog=tc tuples=2 total=2
  RESULT id=a status=ok rows=3 scheme=general
  ROW path(1, 2)
  ROW path(1, 3)
  ROW path(2, 3)
  END id=a

Protocol v2 live maintenance: UPDATE streams signed fact lines into a
resident incremental session (+ inserts, - deletes, unsigned lines
take the verb's default), RETRACT flips the default to delete, and
QUERY live=true serves the maintained model without re-evaluating.
The OK replies carry the net model change; re-sending an UPDATE id
replays the cached reply without applying the batch twice, and the
final live rows match a from-scratch evaluation byte for byte.

  $ printf 'UPDATE id=u1 prog=tc\nedge(3,4).\n.\nQUERY id=lq prog=tc live=true rows=true\nUPDATE id=u1 prog=tc\nedge(3,4).\n.\nRETRACT id=u2 prog=tc\nedge(3,4).\n.\nQUERY id=lq2 prog=tc live=true rows=true\nQUERY id=a2 prog=tc rows=true\n' \
  >   | datalogd --connect d.sock
  DATALOGD/2 READY
  OK update prog=tc id=u1 added=4 removed=0
  RESULT id=lq status=ok rows=6 scheme=live
  ROW path(1, 2)
  ROW path(1, 3)
  ROW path(1, 4)
  ROW path(2, 3)
  ROW path(2, 4)
  ROW path(3, 4)
  END id=lq
  OK update prog=tc id=u1 added=4 removed=0
  OK retract prog=tc id=u2 added=0 removed=4
  RESULT id=lq2 status=ok rows=3 scheme=live
  ROW path(1, 2)
  ROW path(1, 3)
  ROW path(2, 3)
  END id=lq2
  RESULT id=a2 status=ok rows=3 scheme=general
  ROW path(1, 2)
  ROW path(1, 3)
  ROW path(2, 3)
  END id=a2

Updating a derived predicate is refused cleanly -- only base facts
may be streamed -- and the refused batch leaves the session intact.

  $ printf 'UPDATE id=u3 prog=tc\npath(9,9).\n.\nQUERY id=lq3 prog=tc live=true\n' \
  >   | datalogd --connect d.sock
  DATALOGD/2 READY
  ERR update Stratified.Live.apply: path is derived; updates must target base predicates
  RESULT id=lq3 status=ok rows=3 scheme=live
  END id=lq3
  [1]

Graceful degradation: a query that trips its per-request store budget
comes back PARTIAL with the overload reason, and the client exits 4.

  $ printf 'QUERY id=p1 prog=anc max-store=1\n' | datalogd --connect d.sock
  DATALOGD/2 READY
  PARTIAL id=p1 reason=store_budget rows=0 scheme=general
  END id=p1
  [4]

Protocol and evaluation errors are clean ERR replies, exit 1.

  $ printf 'QUERY id=x prog=nosuch\n' | datalogd --connect d.sock
  DATALOGD/2 READY
  ERR unknown-prog no program named nosuch; LOAD it first
  [1]

  $ printf 'GARBAGE\n' | datalogd --connect d.sock
  DATALOGD/2 READY
  ERR proto unknown verb GARBAGE
  [1]

STATS reports the admission gauges, outcome counters, and resident
programs as one JSON line. (The session gauge depends on how quickly
closed peers are reaped, so only the deterministic counter and
program objects are pinned here.)

  $ printf 'STATS\n' | datalogd --connect d.sock | grep -o '"counters":{[^}]*}'
  "counters":{"accepted":9,"rejected_busy":0,"queries_ok":6,"queries_partial":1,"updates_ok":2,"replays":2,"retry_inflight":0,"protocol_errors":3}
  $ printf 'STATS\n' | datalogd --connect d.sock | grep -o '"programs":.*'
  "programs":{"anc":{"rules":2,"facts":9},"tc":{"rules":2,"facts":2}}}

SIGTERM drains: in-flight work finishes, the socket is unlinked,
metrics are flushed, and the server exits 0.

  $ kill -TERM $SRV
  $ wait $SRV
  $ grep 'drained' server.log
  datalogd: drained ok=6 partial=1 busy=0 sessions=10 forced=0
  $ test ! -e d.sock && echo unlinked
  unlinked
  $ grep -o '"serve.active_sessions":0' metrics.json
  "serve.active_sessions":0

Overload: a saturated server (one evaluation slot, no queue) answers
BUSY immediately instead of hanging, with a retry hint.

  $ datalogd --socket d2.sock --runtime sim --max-inflight 1 \
  >   --queue-depth 0 --tenant-inflight 2 --hold-eval-ms 1000 \
  >   --retry-after-ms 10 --load anc=anc.dl --facts anc=chain.dl \
  >   > server2.log 2>&1 &
  $ SRV2=$!
  $ printf 'QUERY id=slow prog=anc\n' | datalogd --connect d2.sock \
  >   > slow.out 2>&1 &
  $ SLOW=$!
  $ sleep 0.4

  $ printf 'QUERY id=q9 prog=anc\n' | datalogd --connect d2.sock
  DATALOGD/2 READY
  BUSY id=q9 reason=queue retry-after-ms=10
  [3]

A duplicate of an in-flight id is RETRY, not a second execution.

  $ printf 'QUERY id=slow prog=anc\n' | datalogd --connect d2.sock
  DATALOGD/2 READY
  RETRY id=slow retry-after-ms=10
  [3]

A client with --retry (jittered exponential backoff) recovers once
the slot frees, and the parked query still completes.

  $ printf 'QUERY id=q9 prog=anc\n' | datalogd --connect d2.sock \
  >   --retry --retry-max 30 --jitter-seed 1
  DATALOGD/2 READY
  RESULT id=q9 status=ok rows=45 scheme=general
  END id=q9
  $ wait $SLOW
  $ grep -c 'RESULT id=slow status=ok rows=45' slow.out
  1

  $ kill -TERM $SRV2
  $ wait $SRV2
