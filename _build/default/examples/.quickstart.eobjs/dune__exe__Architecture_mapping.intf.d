examples/architecture_mapping.mli:
