examples/incremental.mli:
