examples/tradeoff.ml: Datalog Format List Pardatalog Stats Strategy Verify Workload
