examples/same_generation.ml: Array Datalog Format Pardatalog Parser Program Rewrite Strategy Verify Workload
