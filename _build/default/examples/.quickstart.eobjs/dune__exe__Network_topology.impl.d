examples/network_topology.ml: Analysis Database Dataflow Datalog Derive Discriminant Format Hash_fn List Netgraph Pardatalog Result Rewrite String Tuple Verify Workload
