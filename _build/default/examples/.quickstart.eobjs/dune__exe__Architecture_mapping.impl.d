examples/architecture_mapping.ml: Analysis Database Datalog Derive Discriminant Format Hash_fn List Netgraph Pardatalog Pid Result Rewrite Sim_runtime Stats Tuple Workload
