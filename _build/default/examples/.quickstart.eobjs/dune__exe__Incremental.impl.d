examples/incremental.ml: Database Datalog Format List Relation Seminaive Tuple Workload
