examples/tradeoff.mli:
