examples/transitive_closure.ml: Database Datalog Format Pardatalog Seminaive Stats Strategy Verify Workload
