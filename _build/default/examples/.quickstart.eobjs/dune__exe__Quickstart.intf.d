examples/quickstart.mli:
