examples/quickstart.ml: Const Database Datalog Domain_runtime Format List Pardatalog Parser Relation Seminaive Sim_runtime Stats Strategy Tuple
