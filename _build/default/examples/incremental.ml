(* The semi-naive engine's incremental interface.

   The parallel runtimes drive each processor through
   inject-step-observe cycles; the same interface supports
   insertion-only incremental maintenance of a materialized view: after
   a fixpoint, new base tuples are injected and only the consequences
   of the delta are recomputed.

   Run with:  dune exec examples/incremental.exe *)

open Datalog

let () =
  let program = Workload.Progs.ancestor in
  let rng = Workload.Rng.create ~seed:51 in
  let all_edges = Workload.Graphgen.random_digraph rng ~nodes:60 ~edges:120 in
  let initial, stream =
    ( List.filteri (fun i _ -> i < 60) all_edges,
      List.filteri (fun i _ -> i >= 60) all_edges )
  in
  let edb = Workload.Edb.of_edges initial in
  let engine = Seminaive.create program ~edb in
  Seminaive.run_to_fixpoint engine;
  let size () =
    Database.cardinal (Seminaive.database engine) "anc"
  in
  let firings () = (Seminaive.stats engine).Seminaive.firings in
  Format.printf "initial fixpoint: |anc| = %d after %d firings@." (size ())
    (firings ());

  (* Stream the remaining edges one at a time; each injection triggers
     only the delta's consequences. *)
  let before = firings () in
  List.iter
    (fun (a, b) ->
      ignore (Seminaive.inject engine "par" (Tuple.of_ints [ a; b ]));
      Seminaive.run_to_fixpoint engine)
    stream;
  Format.printf
    "after streaming %d more edges: |anc| = %d (+%d incremental firings)@."
    (List.length stream) (size ())
    (firings () - before);

  (* The incremental result equals a from-scratch evaluation — and so
     does the total number of firings: semi-naive enumerates each
     successful substitution exactly once no matter how the input is
     staged. *)
  let scratch, scratch_stats =
    Seminaive.evaluate program (Workload.Edb.of_edges all_edges)
  in
  Format.printf
    "from scratch:     |anc| = %d after %d firings@."
    (Database.cardinal scratch "anc")
    scratch_stats.Seminaive.firings;
  assert (
    Relation.equal
      (Database.get scratch "anc")
      (Database.get (Seminaive.database engine) "anc"));
  assert (scratch_stats.Seminaive.firings = firings ());
  Format.printf "incremental and from-scratch runs agree exactly.@."
