(* Section 5 of the paper: dataflow graphs and compile-time derivation
   of minimal processor networks — regenerates Figures 1 through 4.

   Run with:  dune exec examples/network_topology.exe *)

open Datalog
open Pardatalog

let sirup_of p = Result.get_ok (Analysis.as_sirup p)

let () =
  (* Figure 1: the dataflow graph of p(U,V,W) :- p(V,W,Z), q(U,Z). *)
  let s7 = sirup_of Workload.Progs.example7 in
  Format.printf "Figure 1 — dataflow graph of Example 4:@.  %a@.@."
    Dataflow.pp (Dataflow.of_sirup s7);

  (* Figure 2: the dataflow graph of ancestor, and the Theorem 3
     consequence. *)
  let sa = sirup_of Workload.Progs.ancestor in
  let ga = Dataflow.of_sirup sa in
  Format.printf "Figure 2 — dataflow graph of ancestor:@.  %a@." Dataflow.pp
    ga;
  (match Dataflow.communication_free_choice sa with
   | Some fc ->
     Format.printf
       "  cycle at position %s: discriminating on v(r) = <%s> needs no \
        communication (Theorem 3 / Example 1)@.@."
       (String.concat "," (List.map string_of_int fc.Dataflow.cycle))
       (String.concat "," fc.Dataflow.vr)
   | None -> Format.printf "  no cycle@.@.");

  (* Figure 3: Example 6 — h(Y,Z) = (g(Y), g(Z)), four processors. *)
  let s6 = sirup_of Workload.Progs.example6 in
  (match
     Derive.minimal_network
       { sirup = s6; ve = [ "X"; "Y" ]; vr = [ "Y"; "Z" ];
         spec = Hash_fn.Bitvec }
   with
   | Ok net ->
     Format.printf
       "Figure 3 — minimal network of Example 6 (h = (g(Y),g(Z))):@.  @[%a@]@."
       Netgraph.pp net;
     Format.printf "  cross-processor channels: %d of %d possible@.@."
       (Netgraph.edge_count (Netgraph.without_self net))
       (4 * 3)
   | Error e -> Format.printf "  error: %s@." e);

  (* Figure 4: Example 7 — h = g(V) - g(W) + g(Z), processors {-1,0,1,2}.
     These are exactly the solutions of equations (4)-(5). *)
  (match
     Derive.minimal_network
       { sirup = s7; ve = [ "U"; "V"; "W" ]; vr = [ "V"; "W"; "Z" ];
         spec = Hash_fn.Linear { coeffs = [| 1; -1; 1 |]; lo = -1 } }
   with
   | Ok net ->
     Format.printf
       "Figure 4 — minimal network of Example 7 (h = g(V)-g(W)+g(Z)):@.  @[%a@]@."
       Netgraph.pp net;
     Format.printf "  cross-processor channels: %d of %d possible@.@."
       (Netgraph.edge_count (Netgraph.without_self net))
       (4 * 3)
   | Error e -> Format.printf "  error: %s@." e);

  (* Validation: execute Example 6 on random data and confirm the run
     stays inside the derived network. *)
  let h = Hash_fn.bitvec ~arity:2 () in
  let rw =
    Rewrite.make Workload.Progs.example6
      ~policies:
        [
          Rewrite.Uniform (Discriminant.make ~vars:[ "X"; "Y" ] ~fn:h);
          Rewrite.Uniform (Discriminant.make ~vars:[ "Y"; "Z" ] ~fn:h);
        ]
  in
  let rng = Workload.Rng.create ~seed:5 in
  let edb = Database.create () in
  List.iter
    (fun (a, b) ->
      ignore (Database.add_fact edb "q" (Tuple.of_ints [ a; b ])))
    (Workload.Graphgen.random_digraph rng ~nodes:30 ~edges:60);
  List.iter
    (fun (a, b) ->
      ignore (Database.add_fact edb "r" (Tuple.of_ints [ a; b ])))
    (Workload.Graphgen.random_digraph rng ~nodes:30 ~edges:60);
  let report = Verify.check rw ~edb in
  let derived =
    Result.get_ok
      (Derive.minimal_network
         { sirup = s6; ve = [ "X"; "Y" ]; vr = [ "Y"; "Z" ];
           spec = Hash_fn.Bitvec })
  in
  Format.printf
    "execution check on random data: answers equal = %b, every used \
     channel within Figure 3 = %b@."
    report.Verify.equal_answers
    (Verify.channels_within report.Verify.stats derived);
  Format.printf "@.dot rendering of Figure 4:@.%s"
    (Netgraph.to_dot
       (Result.get_ok
          (Derive.minimal_network
             { sirup = s7; ve = [ "U"; "V"; "W" ]; vr = [ "V"; "W"; "Z" ];
               spec = Hash_fn.Linear { coeffs = [| 1; -1; 1 |]; lo = -1 } })))
