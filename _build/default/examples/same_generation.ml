(* Section 7 of the paper: the general scheme T on programs beyond
   linear sirups — the non-linear ancestor of Example 8 and the classic
   same-generation query (one rule with two recursive atoms, plus a
   non-linear join pattern with base atoms on both sides).

   Run with:  dune exec examples/same_generation.exe *)

open Datalog
open Pardatalog

let nprocs = 4

let show name program edb =
  match Strategy.general ~nprocs program with
  | Error e -> failwith e
  | Ok rw ->
    let report = Verify.check rw ~edb in
    Format.printf
      "%-22s equal=%b non-redundant=%b parallel-firings=%d messages=%d@."
      name report.Verify.equal_answers report.Verify.non_redundant
      report.Verify.parallel_firings report.Verify.messages;
    rw

let () =
  Format.printf "the Section 7 scheme on general Datalog programs@.@.";

  (* Example 8: non-linear ancestor, v(r1) = <Y>, v(r2) = <Z>. *)
  let edges = Workload.Graphgen.binary_tree ~depth:5 in
  let tree = Workload.Edb.of_edges edges in
  let rw = show "nonlinear ancestor" Workload.Progs.ancestor_nonlinear tree in
  Format.printf
    "@.the derived processor program for processor 0 (compare Example 8):@.%a@.@."
    Program.pp rw.Rewrite.programs.(0);

  (* Same generation: sg(X,X) :- person(X).
                      sg(X,Y) :- par(XP,X), sg(XP,YP), par(YP,Y). *)
  let rng = Workload.Rng.create ~seed:3 in
  let families = Workload.Edb.same_generation rng ~people:60 ~parents_per:2 in
  let rw = show "same generation" Workload.Progs.same_generation families in
  ignore rw;

  (* Mutual recursion: even/odd path lengths. *)
  let p =
    Parser.program_exn
      "evenp(X,Y) :- e(X,Y), e(Y,X).
       evenp(X,Y) :- oddp(X,Z), e(Z,Y).
       oddp(X,Y) :- e(X,Y).
       oddp(X,Y) :- evenp(X,Z), e(Z,Y)."
  in
  let rng = Workload.Rng.create ~seed:9 in
  let edb =
    Workload.Edb.of_edges ~pred:"e"
      (Workload.Graphgen.random_digraph rng ~nodes:30 ~edges:55)
  in
  ignore (show "mutual even/odd paths" p edb);

  Format.printf
    "@.in every case the pooled parallel answer equals the sequential\
     @.least model (Theorem 5) and the processors collectively fire no\
     @.more rules than a sequential semi-naive evaluation (Theorem 6).@."
