(* Section 6 of the paper: the spectrum between non-redundant
   computation and no communication. Each processor keeps a generated
   tuple locally with probability alpha and otherwise routes it by a
   shared hash. alpha = 0 is the non-redundant scheme of Section 3;
   alpha = 1 is Wolfson's communication-free, possibly redundant scheme.

   Run with:  dune exec examples/tradeoff.exe *)

open Pardatalog

let nprocs = 4

let () =
  let program = Workload.Progs.ancestor in
  let rng = Workload.Rng.create ~seed:13 in
  let edges = Workload.Graphgen.random_digraph rng ~nodes:80 ~edges:160 in
  let edb = Workload.Edb.of_edges edges in
  let _, seq_stats = Datalog.Seminaive.evaluate program edb in

  Format.printf
    "redundancy/communication trade-off on a random digraph@.";
  Format.printf "sequential firings: %d;  %d processors@.@."
    seq_stats.Datalog.Seminaive.firings nprocs;
  Format.printf "%-7s  %6s  %10s  %11s  %9s@." "alpha" "equal" "messages"
    "redundancy" "rounds";

  List.iter
    (fun alpha ->
      match Strategy.tradeoff ~nprocs ~alpha program with
      | Error e -> failwith e
      | Ok rw ->
        let report = Verify.check rw ~edb in
        Format.printf "%-7.2f  %6b  %10d  %+11.3f  %9d@." alpha
          report.Verify.equal_answers report.Verify.messages
          report.Verify.redundancy report.Verify.stats.Stats.rounds)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ];

  Format.printf
    "@.alpha = 0 reproduces the guarded Section 3 scheme (redundancy 0);@.\
     alpha = 1 reproduces Wolfson's scheme (messages 0). In between, the@.\
     execution trades duplicated firings for saved messages — the paper's@.\
     \"spectrum whose extremes are characterized by non-redundancy and no@.\
     communication\".@."
