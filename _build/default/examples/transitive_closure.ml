(* Section 4 of the paper side by side: Examples 1, 2 and 3 computing
   the same transitive closure, showing the trade-off between
   communication and base-relation fragmentation.

   Example 1 (Wolfson & Silberschatz): no communication, par replicated.
   Example 2 (Valduriez & Khoshafian):  arbitrary fragments, broadcast.
   Example 3 (new in the paper):        disjoint fragments, unicast.

   Run with:  dune exec examples/transitive_closure.exe *)

open Datalog
open Pardatalog

let nprocs = 4

let describe name rw edb seq_firings =
  let report = Verify.check rw ~edb in
  let s = report.Verify.stats in
  Format.printf "%-10s  %8b  %8d  %8d  %9d  %9d  %9.2f@." name
    report.Verify.equal_answers report.Verify.messages
    (Stats.total_messages ~include_self:true s - report.Verify.messages)
    report.Verify.parallel_firings
    (Stats.total_base_resident s)
    (Stats.load_imbalance s);
  ignore seq_firings

let () =
  let program = Workload.Progs.ancestor in
  let rng = Workload.Rng.create ~seed:42 in
  let edges = Workload.Graphgen.random_digraph rng ~nodes:60 ~edges:120 in
  let edb = Workload.Edb.of_edges edges in
  let npar = Database.cardinal edb "par" in

  let _, seq_stats = Seminaive.evaluate program edb in
  Format.printf
    "transitive closure of a random digraph (%d nodes, %d edges)@."
    (Workload.Graphgen.node_count edges)
    npar;
  Format.printf "sequential semi-naive: %d firings@.@."
    seq_stats.Seminaive.firings;

  Format.printf "%-10s  %8s  %8s  %8s  %9s  %9s  %9s@." "scheme" "equal"
    "messages" "selfmsgs" "firings" "baseres" "imbalance";

  (* Example 1: v(e) = v(r) = <Y>. *)
  (match Strategy.hash_q ~nprocs ~ve:[ "Y" ] ~vr:[ "Y" ] program with
   | Ok rw -> describe "example1" rw edb seq_stats.Seminaive.firings
   | Error e -> failwith e);

  (* Example 2: an arbitrary (here random) partition of par. *)
  let rng2 = Workload.Rng.create ~seed:7 in
  let partition = Workload.Edb.partition_random rng2 ~nprocs edb ~pred:"par" in
  (match Strategy.example2 ~nprocs ~partition program with
   | Ok rw -> describe "example2" rw edb seq_stats.Seminaive.firings
   | Error e -> failwith e);

  (* Example 3: v(e) = <X>, v(r) = <Z>. *)
  (match Strategy.example3 ~nprocs program with
   | Ok rw -> describe "example3" rw edb seq_stats.Seminaive.firings
   | Error e -> failwith e);

  Format.printf
    "@.reading the table:@.\
     - example1 sends nothing but holds %d copies of par (replication);@.\
     - example2 accepts any fragmentation (%d par tuples total) but\
     @.  broadcasts every derived tuple to all %d processors;@.\
     - example3 fragments par (at most 2 copies of each tuple) and sends\
     @.  each derived tuple to exactly one processor.@."
    nprocs npar nprocs
