(* Quickstart: define the ancestor program, evaluate it sequentially,
   then in parallel on 4 processors — both on the deterministic
   simulator and on real OCaml domains — and check the answers agree.

   Run with:  dune exec examples/quickstart.exe *)

open Datalog
open Pardatalog

let () =
  (* 1. A Datalog program, from text. Facts can be inline or in a
     separate database. *)
  let program =
    Parser.program_exn
      "anc(X,Y) :- par(X,Y).
       anc(X,Y) :- par(X,Z), anc(Z,Y)."
  in

  (* 2. An extensional database: a small family tree. *)
  let edb = Database.create () in
  List.iter
    (fun (parent, child) ->
      ignore (Database.add_fact edb "par" (Tuple.of_syms [ parent; child ])))
    [
      ("adam", "cain"); ("adam", "abel"); ("adam", "seth");
      ("seth", "enos"); ("enos", "kenan"); ("kenan", "mahalalel");
    ];

  (* 3. Sequential semi-naive evaluation. *)
  let sequential, stats = Seminaive.evaluate program edb in
  Format.printf "sequential answer (%d tuples), %a@."
    (Database.cardinal sequential "anc")
    Seminaive.pp_stats stats;

  (* 4. Parallelize with the paper's Section 3 scheme: hash both the
     exit and the recursive rule on Y. Because the dataflow graph of
     ancestor has a cycle at position 2 (Theorem 3), this choice needs
     no communication between processors. *)
  let rw =
    match Strategy.no_communication ~nprocs:4 program with
    | Ok rw -> rw
    | Error e -> failwith e
  in

  (* 5. Run it on the deterministic simulator... *)
  let sim = Sim_runtime.run rw ~edb in
  Format.printf "simulated parallel run: %a@." Stats.pp_summary
    sim.Sim_runtime.stats;

  (* ...and on real domains with Safra termination detection. *)
  let dom = Domain_runtime.run rw ~edb in
  Format.printf "domain parallel run:    %a@." Stats.pp_summary
    dom.Sim_runtime.stats;

  (* 6. All three answers are identical (Theorem 1). *)
  let seq_anc = Database.get sequential "anc" in
  assert (Relation.equal seq_anc (Database.get sim.Sim_runtime.answers "anc"));
  assert (Relation.equal seq_anc (Database.get dom.Sim_runtime.answers "anc"));
  Format.printf "all runtimes agree; ancestors of seth:@.";
  Relation.iter
    (fun t ->
      if Const.equal (Tuple.get t 1) (Const.sym "mahalalel") then
        Format.printf "  anc%a@." Tuple.pp t)
    seq_anc
