  $ cat > anc.dl <<'PROG'
  > anc(X,Y) :- par(X,Y).
  > anc(X,Y) :- par(X,Z), anc(Z,Y).
  > PROG
  $ datalogp gen chain --size 5 > chain.dl
  $ cat chain.dl
  $ datalogp run anc.dl --edb chain.dl
  $ datalogp run anc.dl --edb chain.dl --engine stratified -q
  $ datalogp query anc.dl 'anc(0,X)' --edb chain.dl
  $ datalogp query anc.dl 'anc(X,X)' --edb chain.dl
  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 --verify | head -3
  $ datalogp dataflow anc.dl
  $ cat > ex7.dl <<'PROG'
  > p(U,V,W) :- s(U,V,W).
  > p(U,V,W) :- p(V,W,Z), q(U,Z).
  > PROG
  $ datalogp network ex7.dl --ve U,V,W --vr V,W,Z --linear 1,-1,1 | tail -1
  $ datalogp dong anc.dl --edb chain.dl -q -n 2 | head -1
  $ cat > bad.dl <<'PROG'
  > p(X,W) :- q(X).
  > PROG
  $ datalogp run bad.dl
