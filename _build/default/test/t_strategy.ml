(* Tests for Strategy, Stats and Verify. *)

open Datalog
open Pardatalog
open Helpers

let edges = Workload.Graphgen.binary_tree ~depth:4
let edb = edb_of_edges edges

let strategy_tests =
  [
    case "tc_shape accepts ancestor" (fun () ->
        Alcotest.(check bool) "ok" true
          (Result.is_ok (Strategy.tc_shape ancestor)));
    case "tc_shape accepts renamed variants" (fun () ->
        let p =
          Parser.program_exn
            "reach(A,B) :- edge(A,B). reach(A,B) :- edge(A,M), reach(M,B)."
        in
        Alcotest.(check bool) "ok" true (Result.is_ok (Strategy.tc_shape p)));
    case "tc_shape rejects the right-linear variant" (fun () ->
        let p =
          Parser.program_exn
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), par(Z,Y)."
        in
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Strategy.tc_shape p)));
    case "tc_shape rejects ternary programs" (fun () ->
        Alcotest.(check bool) "rejected" true
          (Result.is_error (Strategy.tc_shape Workload.Progs.example7)));
    case "example1 sends nothing and replicates the base" (fun () ->
        let rw = Result.get_ok (Strategy.example1 ~nprocs:4 ancestor) in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check int) "no messages" 0 report.Verify.messages;
        Alcotest.(check (list (pair string bool)))
          "par shared"
          [ ("par", false) ]
          rw.Rewrite.fragmented);
    case "example1 and example3 handle per-rule variable renamings"
      (fun () ->
        let renamed =
          Parser.program_exn
            "reach(S,T) :- edge(S,T). reach(A,B) :- edge(A,M), reach(M,B)."
        in
        let edb = edb_of_edges ~pred:"edge" (Workload.Graphgen.chain 12) in
        List.iter
          (fun build ->
            match build renamed with
            | Error e -> Alcotest.fail e
            | Ok rw ->
              let report = Verify.check rw ~edb in
              Alcotest.(check bool) "equal" true report.Verify.equal_answers;
              Alcotest.(check bool) "non-redundant" true
                report.Verify.non_redundant)
          [
            Strategy.example1 ~nprocs:3;
            Strategy.example3 ~nprocs:3;
          ]);
    case "hash_q builds a runnable rewrite" (fun () ->
        let rw =
          Result.get_ok
            (Strategy.hash_q ~nprocs:3 ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor)
        in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers);
    case "hash_q propagates validation errors" (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Strategy.hash_q ~nprocs:3 ~ve:[ "Y" ] ~vr:[ "Nope" ] ancestor)));
    case "no_communication errors on acyclic dataflow" (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Strategy.no_communication ~nprocs:3 Workload.Progs.example7)));
    case "example2 requires the tc shape" (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Strategy.example2 ~nprocs:2
                ~partition:(fun _ -> 0)
                Workload.Progs.example7)));
    case "example2 keeps fragments where the partition put them" (fun () ->
        let rng = Workload.Rng.create ~seed:21 in
        let partition = Workload.Edb.partition_random rng ~nprocs:3 edb ~pred:"par" in
        let rw = Result.get_ok (Strategy.example2 ~nprocs:3 ~partition ancestor) in
        Relation.iter
          (fun t ->
            List.iter
              (fun pid ->
                Alcotest.(check bool) "residency matches partition"
                  (partition t = pid)
                  (rw.Rewrite.resident pid "par" t))
              [ 0; 1; 2 ])
          (Database.get edb "par"));
    case "example2 is correct on a random partition" (fun () ->
        let rng = Workload.Rng.create ~seed:4 in
        let partition = Workload.Edb.partition_random rng ~nprocs:4 edb ~pred:"par" in
        let rw = Result.get_ok (Strategy.example2 ~nprocs:4 ~partition ancestor) in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check bool) "non-redundant" true report.Verify.non_redundant);
    case "example2 is correct on a range partition" (fun () ->
        let partition = Workload.Edb.partition_range ~nprocs:4 edb ~pred:"par" in
        let rw = Result.get_ok (Strategy.example2 ~nprocs:4 ~partition ancestor) in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers);
    case "example3 unicast: every tuple processed at one site" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:4 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        (* With unicast sends, each distinct anc tuple is accepted (at
           most) once across all processors: sum of accepted <= |anc|. *)
        let accepted =
          Array.fold_left
            (fun acc p -> acc + p.Stats.tuples_accepted)
            0 r.Sim_runtime.stats.Stats.per_proc
        in
        let total_anc =
          Database.cardinal r.Sim_runtime.answers "anc"
        in
        Alcotest.(check bool) "unique processing sites" true
          (accepted <= total_anc));
    case "tradeoff endpoints match the named schemes" (fun () ->
        let r0 =
          Verify.check
            (Result.get_ok (Strategy.tradeoff ~nprocs:4 ~alpha:0.0 ancestor))
            ~edb
        in
        let r1 =
          Verify.check
            (Result.get_ok (Strategy.tradeoff ~nprocs:4 ~alpha:1.0 ancestor))
            ~edb
        in
        Alcotest.(check bool) "alpha=0 equal" true r0.Verify.equal_answers;
        Alcotest.(check bool) "alpha=0 non-redundant" true
          r0.Verify.non_redundant;
        Alcotest.(check bool) "alpha=1 equal" true r1.Verify.equal_answers;
        Alcotest.(check int) "alpha=1 no communication" 0 r1.Verify.messages);
    case "tradeoff interior points remain correct" (fun () ->
        List.iter
          (fun alpha ->
            let r =
              Verify.check
                (Result.get_ok (Strategy.tradeoff ~nprocs:4 ~alpha ancestor))
                ~edb
            in
            Alcotest.(check bool)
              (Printf.sprintf "alpha=%.2f equal" alpha)
              true r.Verify.equal_answers)
          [ 0.25; 0.5; 0.75 ]);
    case "general default choice matches the paper on example 8" (fun () ->
        let rw =
          Result.get_ok
            (Strategy.general ~nprocs:2 Workload.Progs.ancestor_nonlinear)
        in
        (* v(r2) should be the join variable Z: the recursive rule's
           guard must then mention exactly one variable. *)
        let prog = rw.Rewrite.programs.(0) in
        let rec_rule =
          List.find
            (fun (r : Rule.t) -> List.length r.Rule.body = 2)
            (Program.rules prog)
        in
        (match rec_rule.Rule.guards with
         | [ g ] ->
           Alcotest.(check (array string)) "guard vars" [| "Z" |] g.Rule.gvars
         | _ -> Alcotest.fail "expected one guard"));
    case "general rejects broken programs" (fun () ->
        let p = Parser.program_exn "p(X,W) :- q(X)." in
        Alcotest.(check bool) "error" true
          (Result.is_error (Strategy.general ~nprocs:2 p)));
  ]

let stats_tests =
  [
    case "totals and messages" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        let s = r.Sim_runtime.stats in
        let per_proc_sum =
          Array.fold_left (fun acc p -> acc + p.Stats.firings) 0 s.Stats.per_proc
        in
        Alcotest.(check int) "total_firings is the sum" per_proc_sum
          (Stats.total_firings s);
        Alcotest.(check bool) "self excluded by default" true
          (Stats.total_messages s <= Stats.total_messages ~include_self:true s));
    case "channel matrix agrees with per-processor sent counters" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        let s = r.Sim_runtime.stats in
        Array.iteri
          (fun i p ->
            let row = Array.fold_left ( + ) 0 s.Stats.channel_tuples.(i) in
            Alcotest.(check int) "row sum" p.Stats.tuples_sent row)
          s.Stats.per_proc);
    case "used_channels lists exactly the nonzero entries" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        let s = r.Sim_runtime.stats in
        List.iter
          (fun (i, j) ->
            Alcotest.(check bool) "nonzero" true (s.Stats.channel_tuples.(i).(j) > 0))
          (Stats.used_channels ~include_self:true s));
    case "load imbalance of a balanced matrix is near 1" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        let im = Stats.load_imbalance r.Sim_runtime.stats in
        Alcotest.(check bool) "between 1 and nprocs" true
          (im >= 1.0 && im <= 2.0));
    case "trace accounts for every derived tuple" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        let s = r.Sim_runtime.stats in
        Alcotest.(check int) "one row per round plus initialization"
          (s.Stats.rounds + 1)
          (List.length s.Stats.trace);
        Alcotest.(check int) "frontier sums to new tuples"
          (Stats.total_new_tuples s)
          (List.fold_left ( + ) 0 (Stats.frontier_profile s));
        Alcotest.(check bool) "peak parallelism within bounds" true
          (let p = Stats.peak_parallelism s in
           p >= 1 && p <= 3));
    case "domain runtime has no synchronous trace" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let r = Pardatalog.Domain_runtime.run rw ~edb in
        Alcotest.(check int) "empty trace" 0
          (List.length r.Sim_runtime.stats.Stats.trace));
    case "redundancy_vs is zero at equality" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let report = Verify.check rw ~edb in
        if report.Verify.parallel_firings = report.Verify.sequential_firings
        then
          Alcotest.(check (float 0.0001)) "zero" 0.0 report.Verify.redundancy);
  ]

let workload_tests =
  [
    case "chain shape" (fun () ->
        Alcotest.(check (list (pair int int)))
          "edges" [ (0, 1); (1, 2) ] (Workload.Graphgen.chain 3);
        Alcotest.(check (list (pair int int))) "empty" [] (Workload.Graphgen.chain 1));
    case "cycle closes the chain" (fun () ->
        let c = Workload.Graphgen.cycle 4 in
        Alcotest.(check bool) "closing edge" true (List.mem (3, 0) c);
        Alcotest.(check int) "n edges" 4 (List.length c));
    case "binary tree edge count" (fun () ->
        Alcotest.(check int) "depth 3" 14
          (List.length (Workload.Graphgen.binary_tree ~depth:3)));
    case "random digraph has no dups or self loops" (fun () ->
        let rng = Workload.Rng.create ~seed:8 in
        let es = Workload.Graphgen.random_digraph rng ~nodes:20 ~edges:50 in
        Alcotest.(check int) "count" 50 (List.length es);
        Alcotest.(check int) "distinct" 50
          (List.length (List.sort_uniq compare es));
        Alcotest.(check bool) "no self loops" true
          (List.for_all (fun (a, b) -> a <> b) es));
    case "dense random digraph request is capped" (fun () ->
        let rng = Workload.Rng.create ~seed:8 in
        let es = Workload.Graphgen.random_digraph rng ~nodes:5 ~edges:100 in
        Alcotest.(check int) "capped at n(n-1)" 20 (List.length es));
    case "random digraph is deterministic per seed" (fun () ->
        let a =
          Workload.Graphgen.random_digraph (Workload.Rng.create ~seed:9)
            ~nodes:10 ~edges:20
        in
        let b =
          Workload.Graphgen.random_digraph (Workload.Rng.create ~seed:9)
            ~nodes:10 ~edges:20
        in
        Alcotest.(check bool) "equal" true (a = b));
    case "layered dag respects layer structure" (fun () ->
        let rng = Workload.Rng.create ~seed:2 in
        let es = Workload.Graphgen.layered_dag rng ~layers:3 ~width:4 ~out_degree:2 in
        List.iter
          (fun (a, b) ->
            Alcotest.(check int) "next layer" ((a / 4) + 1) (b / 4))
          es);
    case "grid edge count" (fun () ->
        (* rows*(cols-1) + (rows-1)*cols *)
        Alcotest.(check int) "3x4" (3 * 3 + 2 * 4)
          (List.length (Workload.Graphgen.grid ~rows:3 ~cols:4)));
    case "node_count" (fun () ->
        Alcotest.(check int) "chain" 5
          (Workload.Graphgen.node_count (Workload.Graphgen.chain 5)));
    case "rng int bounds" (fun () ->
        let rng = Workload.Rng.create ~seed:1 in
        for _ = 1 to 1000 do
          let v = Workload.Rng.int rng 7 in
          if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
        done);
    case "rng float bounds" (fun () ->
        let rng = Workload.Rng.create ~seed:1 in
        for _ = 1 to 1000 do
          let v = Workload.Rng.float rng in
          if v < 0.0 || v >= 1.0 then Alcotest.failf "out of bounds: %f" v
        done);
    case "rng split gives a different stream" (fun () ->
        let a = Workload.Rng.create ~seed:5 in
        let b = Workload.Rng.split a in
        let xs = List.init 10 (fun _ -> Workload.Rng.int a 1000) in
        let ys = List.init 10 (fun _ -> Workload.Rng.int b 1000) in
        Alcotest.(check bool) "different" true (xs <> ys));
    case "same_generation has person and par relations" (fun () ->
        let rng = Workload.Rng.create ~seed:6 in
        let db = Workload.Edb.same_generation rng ~people:10 ~parents_per:2 in
        Alcotest.(check int) "people" 10 (Database.cardinal db "person");
        Alcotest.(check bool) "parents exist" true
          (Database.cardinal db "par" > 0));
    case "partition_random covers all fragments eventually" (fun () ->
        let rng = Workload.Rng.create ~seed:10 in
        let db = edb_of_edges (Workload.Graphgen.chain 50) in
        let partition = Workload.Edb.partition_random rng ~nprocs:4 db ~pred:"par" in
        let sizes = Workload.Edb.fragment_sizes ~nprocs:4 partition db ~pred:"par" in
        Alcotest.(check int) "total preserved" 49
          (Array.fold_left ( + ) 0 sizes));
    case "partition_range is contiguous and balanced" (fun () ->
        let db = edb_of_edges (Workload.Graphgen.chain 41) in
        let partition = Workload.Edb.partition_range ~nprocs:4 db ~pred:"par" in
        let sizes = Workload.Edb.fragment_sizes ~nprocs:4 partition db ~pred:"par" in
        Alcotest.(check int) "total" 40 (Array.fold_left ( + ) 0 sizes);
        Array.iter
          (fun s -> Alcotest.(check bool) "roughly n/4" true (s <= 10))
          sizes);
  ]

let suites =
  [
    ("strategy", strategy_tests);
    ("stats", stats_tests);
    ("workload", workload_tests);
  ]
