(* Edge cases across the stack: zero-arity predicates, constants in
   rules, repeated head variables, symbol constants, deep recursion,
   and robustness properties. *)

open Datalog
open Pardatalog
open Helpers

let zero_arity_tests =
  [
    case "zero-arity predicates evaluate sequentially" (fun () ->
        let p = Parser.program_exn "flag :- e(X,Y). reached :- flag." in
        let db = edb_of_edges ~pred:"e" [ (1, 2) ] in
        let out, _ = Seminaive.evaluate p db in
        Alcotest.(check int) "flag derived" 1 (Database.cardinal out "flag");
        Alcotest.(check int) "reached derived" 1
          (Database.cardinal out "reached");
        let empty, _ = Seminaive.evaluate p (Database.create ()) in
        Alcotest.(check int) "no flag without edges" 0
          (Database.cardinal empty "flag"));
    case "zero-arity predicates run in parallel" (fun () ->
        let p = Parser.program_exn "flag :- e(X,Y). reached :- flag." in
        let db = edb_of_edges ~pred:"e" [ (1, 2); (3, 4) ] in
        match Strategy.general ~nprocs:3 p with
        | Error e -> Alcotest.fail e
        | Ok rw ->
          let report = Verify.check rw ~edb:db in
          Alcotest.(check bool) "equal" true report.Verify.equal_answers;
          Alcotest.(check bool) "non-redundant" true
            report.Verify.non_redundant);
    case "empty discriminating sequence pins a rule to one processor"
      (fun () ->
        let p = Parser.program_exn "flag :- e(X,Y)." in
        let h0 = Hash_fn.modulo ~nprocs:4 ~arity:0 () in
        let rw =
          Rewrite.make p
            ~policies:[ Rewrite.Uniform (Discriminant.make ~vars:[] ~fn:h0) ]
        in
        let db = edb_of_edges ~pred:"e" [ (1, 2) ] in
        let r = Sim_runtime.run rw ~edb:db in
        Alcotest.(check int) "flag derived once" 1
          (Database.cardinal r.Sim_runtime.answers "flag");
        let busy =
          Array.to_list r.Sim_runtime.stats.Stats.per_proc
          |> List.filter (fun p -> p.Stats.firings > 0)
        in
        Alcotest.(check int) "single processor fired" 1 (List.length busy));
  ]

let constant_tests =
  [
    case "constants in bodies act as selections" (fun () ->
        let p = Parser.program_exn "root_child(X) :- par(0, X)." in
        let db = edb_of_edges [ (0, 1); (0, 2); (1, 3) ] in
        let out, _ = Seminaive.evaluate p db in
        Alcotest.(check int) "two children" 2
          (Database.cardinal out "root_child"));
    case "constants in bodies survive parallelization" (fun () ->
        let p =
          Parser.program_exn
            "r(X,Y) :- e(X,Y). r(X,Y) :- e(X,Z), r(Z,Y).
             from_zero(Y) :- r(0, Y)."
        in
        let db = edb_of_edges ~pred:"e" (Workload.Graphgen.chain 8) in
        match Strategy.general ~nprocs:3 p with
        | Error e -> Alcotest.fail e
        | Ok rw ->
          let report = Verify.check rw ~edb:db in
          Alcotest.(check bool) "equal" true report.Verify.equal_answers);
    case "constants in heads are produced" (fun () ->
        let p = Parser.program_exn "tagged(1, X) :- e(X, Y)." in
        let db = edb_of_edges ~pred:"e" [ (7, 8) ] in
        let out, _ = Seminaive.evaluate p db in
        Alcotest.(check bool) "tuple present" true
          (Relation.mem (Database.get out "tagged") (Tuple.of_ints [ 1; 7 ])));
    case "symbol constants flow through the parallel runtimes" (fun () ->
        let db = Database.create () in
        List.iter
          (fun (a, b) ->
            ignore (Database.add_fact db "par" (Tuple.of_syms [ a; b ])))
          [ ("a", "b"); ("b", "c"); ("c", "d") ];
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let report = Verify.check rw ~edb:db in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        let r = Domain_runtime.run rw ~edb:db in
        Alcotest.(check bool) "a reaches d" true
          (Relation.mem
             (Database.get r.Sim_runtime.answers "anc")
             (Tuple.of_syms [ "a"; "d" ])));
  ]

let repeated_var_sirup =
  Parser.program_exn "p(X,Y) :- q(X,Y). p(Y,Y) :- p(X,Y), q(Y,X)."

let repeated_var_tests =
  [
    case "repeated head variables: sequential = naive" (fun () ->
        let db = edb_of_edges ~pred:"q" [ (1, 2); (2, 1); (3, 3); (2, 3) ] in
        let s, _ = Seminaive.evaluate repeated_var_sirup db in
        let n = Naive.evaluate repeated_var_sirup db in
        Alcotest.check relation_t "equal" (Database.get s "p")
          (Database.get n "p"));
    case "repeated head variables through scheme Q" (fun () ->
        let db = edb_of_edges ~pred:"q" [ (1, 2); (2, 1); (3, 3); (2, 3) ] in
        match Strategy.hash_q ~nprocs:3 ~ve:[ "Y" ] ~vr:[ "Y" ] repeated_var_sirup with
        | Error e -> Alcotest.fail e
        | Ok rw ->
          let report = Verify.check rw ~edb:db in
          Alcotest.(check bool) "equal" true report.Verify.equal_answers;
          Alcotest.(check bool) "non-redundant" true
            report.Verify.non_redundant);
    case "repeated head variables through Derive (union-find path)"
      (fun () ->
        let s = Result.get_ok (Analysis.as_sirup repeated_var_sirup) in
        match
          Derive.minimal_network
            { sirup = s; ve = [ "Y" ]; vr = [ "Y" ]; spec = Hash_fn.Bitvec }
        with
        | Error e -> Alcotest.fail e
        | Ok derived ->
          (* Execute with the matching runtime hash and check channel
             containment, over several bit functions. *)
          List.iter
            (fun seed ->
              let h = Hash_fn.bitvec ~seed ~arity:1 () in
              let rw =
                Rewrite.make repeated_var_sirup
                  ~policies:
                    [
                      Rewrite.Uniform (Discriminant.make ~vars:[ "Y" ] ~fn:h);
                      Rewrite.Uniform (Discriminant.make ~vars:[ "Y" ] ~fn:h);
                    ]
              in
              let db =
                edb_of_edges ~pred:"q" [ (1, 2); (2, 1); (3, 3); (2, 3); (4, 4) ]
              in
              let r = Sim_runtime.run rw ~edb:db in
              Alcotest.(check bool)
                (Printf.sprintf "channels within derived (seed %d)" seed)
                true
                (Verify.channels_within r.Sim_runtime.stats derived))
            [ 0; 1; 2 ]);
  ]

let robustness_tests =
  [
    case "derived-predicate facts are rejected by the runtimes" (fun () ->
        let p =
          Parser.program_exn
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y). anc(9,9)."
        in
        let rw =
          Result.get_ok (Strategy.hash_q ~nprocs:2 ~ve:[ "Y" ] ~vr:[ "Y" ] p)
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sim_runtime.run rw ~edb:(Database.create ()));
             false
           with Invalid_argument _ -> true));
    case "deep recursion: chain of 400 nodes" (fun () ->
        let n = 400 in
        let db = edb_of_edges (Workload.Graphgen.chain n) in
        let out, stats = Seminaive.evaluate ancestor db in
        Alcotest.(check int) "closure size" (n * (n - 1) / 2)
          (Database.cardinal out "anc");
        Alcotest.(check int) "iterations" (n - 1) stats.Seminaive.iterations);
    case "stats and rewrite printers do not crash" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let r = Sim_runtime.run rw ~edb:(edb_of_edges [ (1, 2); (2, 3) ]) in
        Alcotest.(check bool) "stats pp" true
          (String.length (Format.asprintf "%a" Stats.pp r.Sim_runtime.stats) > 0);
        Alcotest.(check bool) "rewrite pp" true
          (String.length (Format.asprintf "%a" Rewrite.pp rw) > 0));
    case "netgraph union rejects mismatched spaces" (fun () ->
        let a = Netgraph.self_only (Pid.dense 2) in
        let b = Netgraph.self_only (Pid.dense 3) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Netgraph.union a b);
             false
           with Invalid_argument _ -> true));
    case "of_labels rejects unknown labels" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Netgraph.of_labels (Pid.dense 2) [ ("0", "oops") ]);
             false
           with Invalid_argument _ -> true));
  ]

let stress_tests =
  [
    slow_case "large random graph: example3 N=8 vs sequential" (fun () ->
        let rng = Workload.Rng.create ~seed:99 in
        let edges =
          Workload.Graphgen.random_digraph rng ~nodes:300 ~edges:450
        in
        let edb = edb_of_edges edges in
        let seq, seq_stats = Seminaive.evaluate ancestor edb in
        let rw = Result.get_ok (Strategy.example3 ~nprocs:8 ancestor) in
        let r = Sim_runtime.run rw ~edb in
        Alcotest.check relation_t "equal" (anc_relation seq)
          (anc_relation r.Sim_runtime.answers);
        Alcotest.(check int) "non-redundant" seq_stats.Seminaive.firings
          (Stats.total_firings r.Sim_runtime.stats));
    slow_case "deep same-generation on the general scheme" (fun () ->
        let rng = Workload.Rng.create ~seed:98 in
        let edb = Workload.Edb.same_generation rng ~people:80 ~parents_per:2 in
        let rw =
          Result.get_ok (Strategy.general ~nprocs:6 Workload.Progs.same_generation)
        in
        let report = Verify.check rw ~edb in
        Alcotest.(check bool) "equal" true report.Verify.equal_answers;
        Alcotest.(check bool) "non-redundant" true report.Verify.non_redundant);
  ]

let parser_never_crashes =
  QCheck.Test.make ~count:300 ~name:"parser never raises on random input"
    QCheck.(string_of_size (Gen.int_range 0 60))
    (fun s ->
      match Parser.program s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let suites =
  [
    ("zero-arity", zero_arity_tests);
    ("constants", constant_tests);
    ("repeated-vars", repeated_var_tests);
    ("robustness",
     robustness_tests @ [ QCheck_alcotest.to_alcotest parser_never_crashes ]);
    ("stress", stress_tests);
  ]
