(* Property tests over RANDOMLY GENERATED linear sirups.

   The fixed example programs exercise the common shapes; these tests
   generate arbitrary linear sirups — random arities, random variable
   patterns (including repeated variables), several base atoms, chained
   join variables — plus random discriminating sequences and processor
   counts, and check Theorems 1 and 2 on random data. *)

open Datalog
open Pardatalog

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

(* A generated sirup:
     t(X1..Xa) :- s(X1..Xa).
     t(head pattern) :- t(rec pattern), b1(...), ..., bk(...).
   where the head pattern draws its variables from the body, the rec
   atom introduces variables Y1..Ya (possibly repeated), and base atoms
   mix rec variables and fresh ones so the rule stays safe. *)

type gen_sirup = {
  gs_arity : int;
  gs_head : string array;  (* variable names, drawn from the body *)
  gs_rec : string array;  (* variable names of the recursive atom *)
  gs_bases : (string * string array) list;
  gs_source : string;  (* rendered program *)
}

let sirup_gen =
  QCheck.Gen.(
    let var_pool = [| "A"; "B"; "C"; "D"; "E"; "F" |] in
    let* arity = int_range 1 3 in
    (* Recursive atom variables: sampled with replacement so repeats
       happen. *)
    let* rec_idx = list_size (return arity) (int_range 0 3) in
    let gs_rec = Array.of_list (List.map (fun i -> var_pool.(i)) rec_idx) in
    (* Base atoms: 1 or 2, each of arity 1-2, each argument either a
       recursive-atom variable or a fresh one (from the tail of the
       pool). *)
    let* nbases = int_range 1 2 in
    let fresh_pool = [| "U"; "V"; "W" |] in
    let* bases =
      list_size (return nbases)
        (let* bar = int_range 1 2 in
         let* args =
           list_size (return bar)
             (oneof
                [
                  map (fun i -> gs_rec.(i mod Array.length gs_rec))
                    (int_range 0 5);
                  map (fun i -> fresh_pool.(i)) (int_range 0 2);
                ])
         in
         return (Array.of_list args))
    in
    let bases = List.mapi (fun i a -> (Printf.sprintf "b%d" i, a)) bases in
    (* Head: every variable must appear in the body. *)
    let body_vars =
      Array.to_list gs_rec
      @ List.concat_map (fun (_, a) -> Array.to_list a) bases
      |> List.sort_uniq String.compare
      |> Array.of_list
    in
    let* head_idx =
      list_size (return arity) (int_range 0 (Array.length body_vars - 1))
    in
    let gs_head = Array.of_list (List.map (fun i -> body_vars.(i)) head_idx) in
    let render () =
      let atom p args =
        Printf.sprintf "%s(%s)" p (String.concat "," (Array.to_list args))
      in
      let svars = Array.init arity (fun i -> Printf.sprintf "S%d" i) in
      let body =
        atom "t" gs_rec :: List.map (fun (p, a) -> atom p a) bases
      in
      Printf.sprintf "t(%s) :- s(%s).\nt(%s) :- %s."
        (String.concat "," (Array.to_list svars))
        (String.concat "," (Array.to_list svars))
        (String.concat "," (Array.to_list gs_head))
        (String.concat ", " body)
    in
    return
      { gs_arity = arity; gs_head; gs_rec; gs_bases = bases;
        gs_source = render () })

let sirup_arb =
  QCheck.make ~print:(fun gs -> gs.gs_source) sirup_gen

(* Random EDB for a generated sirup: small constant universe so joins
   actually connect. *)
let edb_for gs seed =
  let rng = Workload.Rng.create ~seed in
  let db = Database.create () in
  let universe = 6 in
  let random_tuple arity =
    Tuple.of_ints (List.init arity (fun _ -> Workload.Rng.int rng universe))
  in
  for _ = 1 to 12 do
    ignore (Database.add_fact db "s" (random_tuple gs.gs_arity))
  done;
  List.iter
    (fun (pred, args) ->
      for _ = 1 to 10 do
        ignore (Database.add_fact db pred (random_tuple (Array.length args)))
      done)
    gs.gs_bases;
  db

(* A random discriminating sequence: a non-empty subset of the
   recursive rule's body variables. *)
let disc_vars_of gs pick =
  let rule = List.nth (Program.rules (Parser.program_exn gs.gs_source)) 1 in
  let bvs = Array.of_list (Rule.body_vars rule) in
  let n = Array.length bvs in
  let chosen =
    List.sort_uniq compare (List.map (fun i -> i mod n) pick)
  in
  match chosen with
  | [] -> [ bvs.(0) ]
  | l -> List.map (fun i -> bvs.(i)) l

let config_arb =
  QCheck.make
    ~print:(fun (gs, n, seed, picks) ->
      Printf.sprintf "%s\nN=%d seed=%d picks=%s" gs.gs_source n seed
        (String.concat "," (List.map string_of_int picks)))
    QCheck.Gen.(
      let* gs = sirup_gen in
      let* n = int_range 1 5 in
      let* seed = int_range 0 999 in
      let* picks = list_size (int_range 1 3) (int_range 0 9) in
      return (gs, n, seed, picks))

let build gs n seed picks =
  let program = Parser.program_exn gs.gs_source in
  match Analysis.as_sirup program with
  | Error _ -> None (* e.g. the "recursive" rule degenerated *)
  | Ok s ->
    let vr = disc_vars_of gs picks in
    let ve = Atom.vars s.Analysis.exit_rule.Rule.head in
    let ve = if ve = [] then vr else ve in
    (match
       Strategy.hash_q ~seed ~nprocs:n ~ve ~vr program
     with
     | Ok rw -> Some (program, rw)
     | Error _ -> None)

let prop_random_sirups_exact =
  QCheck.Test.make ~count:150
    ~name:"random sirups: parallel = sequential (Theorem 1)" config_arb
    (fun (gs, n, seed, picks) ->
      match build gs n seed picks with
      | None -> QCheck.assume_fail ()
      | Some (_, rw) ->
        let edb = edb_for gs seed in
        let report = Verify.check rw ~edb in
        report.Verify.equal_answers)

let prop_random_sirups_non_redundant =
  QCheck.Test.make ~count:150
    ~name:"random sirups: non-redundant (Theorem 2)" config_arb
    (fun (gs, n, seed, picks) ->
      match build gs n seed picks with
      | None -> QCheck.assume_fail ()
      | Some (_, rw) ->
        let edb = edb_for gs seed in
        let report = Verify.check rw ~edb in
        report.Verify.non_redundant)

let prop_random_sirups_general_scheme =
  QCheck.Test.make ~count:100
    ~name:"random sirups under the Section 7 scheme" config_arb
    (fun (gs, n, seed, _) ->
      let program = Parser.program_exn gs.gs_source in
      match Strategy.general ~seed ~nprocs:n program with
      | Error _ -> QCheck.assume_fail ()
      | Ok rw ->
        let edb = edb_for gs seed in
        let report = Verify.check rw ~edb in
        report.Verify.equal_answers && report.Verify.non_redundant)

let prop_random_sirups_tradeoff =
  QCheck.Test.make ~count:80
    ~name:"random sirups under the Section 6 scheme (Theorem 4)"
    (QCheck.pair config_arb (QCheck.float_bound_inclusive 1.0))
    (fun ((gs, n, seed, _), alpha) ->
      let program = Parser.program_exn gs.gs_source in
      match Strategy.tradeoff ~seed ~nprocs:n ~alpha program with
      | Error _ -> QCheck.assume_fail ()
      | Ok rw ->
        let edb = edb_for gs seed in
        let report = Verify.check rw ~edb in
        report.Verify.equal_answers)

let prop_random_sirups_domain_runtime =
  QCheck.Test.make ~count:25
    ~name:"random sirups on the domain runtime" config_arb
    (fun (gs, n, seed, picks) ->
      match build gs (min n 3) seed picks with
      | None -> QCheck.assume_fail ()
      | Some (program, rw) ->
        let edb = edb_for gs seed in
        let seq, _ = Seminaive.evaluate program edb in
        let r = Domain_runtime.run rw ~edb in
        Relation.equal (Database.get seq "t")
          (Database.get r.Sim_runtime.answers "t"))

(* ------------------------------------------------------------------ *)
(* Section 5 on random sirups: the derived minimal network must contain
   every channel any execution uses, for any bit function g.           *)
(* ------------------------------------------------------------------ *)

let derive_config_arb =
  QCheck.make
    ~print:(fun (gs, seed, coeffs) ->
      Printf.sprintf "%s\nseed=%d coeffs=%s" gs.gs_source seed
        (String.concat ","
           (List.map string_of_int (Array.to_list coeffs))))
    QCheck.Gen.(
      let* gs = sirup_gen in
      let* seed = int_range 0 200 in
      let* k = int_range 1 (min 3 gs.gs_arity) in
      let* coeffs =
        array_size (return k) (map (fun i -> i - 1) (int_range 0 2))
      in
      (* Avoid the all-zero form (a single processor, trivially). *)
      let coeffs = if Array.for_all (( = ) 0) coeffs then [| 1 |] else coeffs in
      return (gs, seed, coeffs))

let prop_derived_network_contains_random_runs =
  QCheck.Test.make ~count:120
    ~name:"Section 5 on random sirups: channels within derived network"
    derive_config_arb
    (fun (gs, seed, coeffs) ->
      let program = Parser.program_exn gs.gs_source in
      match Analysis.as_sirup program with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
        let k = Array.length coeffs in
        (* Take the first k distinct recursive-atom variables as the
           shared discriminating sequence (ve = exit head vars at the
           same positions, so h' = h applies to the same components). *)
        let rec_vars = Atom.vars s.Analysis.rec_atom in
        if List.length rec_vars < k then QCheck.assume_fail ()
        else begin
          let vr = List.filteri (fun i _ -> i < k) rec_vars in
          (* ve must come from the exit rule; use its head variables at
             the positions where vr's variables sit in the rec atom. *)
          let positions =
            match Discriminant.covered_positions vr s.Analysis.rec_atom with
            | Some ps -> ps
            | None -> [||]
          in
          let exit_head = s.Analysis.exit_rule.Rule.head in
          let ve =
            Array.to_list
              (Array.map
                 (fun p ->
                   match exit_head.Atom.args.(p) with
                   | Term.Var v -> v
                   | Term.Const _ -> "!")
                 positions)
          in
          if List.mem "!" ve || Array.length positions <> k then
            QCheck.assume_fail ()
          else begin
            let lo =
              Array.fold_left (fun acc c -> acc + min 0 c) 0 coeffs
            in
            let spec = Hash_fn.Linear { coeffs; lo } in
            match
              Derive.minimal_network { sirup = s; ve; vr; spec }
            with
            | Error _ -> QCheck.assume_fail ()
            | Ok derived ->
              let h =
                Hash_fn.linear ~seed ~coeffs:(Array.to_list coeffs) ()
              in
              (match
                 ( Discriminant.check_for_rule
                     (Discriminant.make ~vars:ve ~fn:h)
                     s.Analysis.exit_rule,
                   Discriminant.check_for_rule
                     (Discriminant.make ~vars:vr ~fn:h)
                     s.Analysis.rec_rule )
               with
               | Ok (), Ok () ->
                 let rw =
                   Rewrite.make program
                     ~policies:
                       (List.map
                          (fun (r : Rule.t) ->
                            if r == s.Analysis.rec_rule then
                              Rewrite.Uniform
                                (Discriminant.make ~vars:vr ~fn:h)
                            else
                              Rewrite.Uniform
                                (Discriminant.make ~vars:ve ~fn:h))
                          (Program.rules program))
                 in
                 let edb = edb_for gs seed in
                 let r = Sim_runtime.run rw ~edb in
                 Verify.channels_within r.Sim_runtime.stats derived
               | _ -> QCheck.assume_fail ())
          end
        end)

let suites =
  [
    ( "random-sirups",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_random_sirups_exact;
          prop_random_sirups_non_redundant;
          prop_random_sirups_general_scheme;
          prop_random_sirups_tradeoff;
          prop_random_sirups_domain_runtime;
          prop_derived_network_contains_random_runs;
        ] );
  ]
