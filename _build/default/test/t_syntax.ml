(* Tests for Atom, Rule, Program, Parser and pretty-printing. *)

open Datalog
open Helpers

let atom_tests =
  [
    case "vars in first-occurrence order without dups" (fun () ->
        let a = Parser.atom_exn "p(X,Y,X,Z)" in
        Alcotest.(check (list string)) "vars" [ "X"; "Y"; "Z" ] (Atom.vars a));
    case "ground detection" (fun () ->
        Alcotest.(check bool) "ground" true
          (Atom.is_ground (Parser.atom_exn "p(1,a)"));
        Alcotest.(check bool) "non-ground" false
          (Atom.is_ground (Parser.atom_exn "p(1,X)")));
    case "to_tuple on ground atom" (fun () ->
        match Atom.to_tuple (Parser.atom_exn "p(1,2)") with
        | Some t -> Alcotest.check tuple_t "tuple" (Tuple.of_ints [ 1; 2 ]) t
        | None -> Alcotest.fail "expected a tuple");
    case "to_tuple on open atom" (fun () ->
        Alcotest.(check bool) "none" true
          (Atom.to_tuple (Parser.atom_exn "p(X)") = None));
    case "subst replaces bound variables only" (fun () ->
        let a = Parser.atom_exn "p(X,Y)" in
        let b = Atom.subst [ ("X", Const.int 7) ] a in
        Alcotest.check atom_t "partially ground" (Parser.atom_exn "p(7,Y)") b);
    case "rename_pred" (fun () ->
        Alcotest.check atom_t "renamed" (Parser.atom_exn "q(X)")
          (Atom.rename_pred "q" (Parser.atom_exn "p(X)")));
    case "zero-arity atom" (fun () ->
        let a = Parser.atom_exn "flag" in
        Alcotest.(check int) "arity" 0 (Atom.arity a);
        Alcotest.(check bool) "ground" true (Atom.is_ground a));
  ]

let rule_tests =
  [
    case "head and body vars" (fun () ->
        let r = Parser.rule_exn "p(X,Y) :- q(X,Z), r(Z,Y)." in
        Alcotest.(check (list string)) "head" [ "X"; "Y" ] (Rule.head_vars r);
        Alcotest.(check (list string))
          "body" [ "X"; "Z"; "Y" ] (Rule.body_vars r));
    case "safe rule" (fun () ->
        Alcotest.(check bool) "safe" true
          (Rule.is_safe (Parser.rule_exn "p(X) :- q(X,Y).")));
    case "unsafe rule" (fun () ->
        Alcotest.(check bool) "unsafe" false
          (Rule.is_safe (Parser.rule_exn "p(X,W) :- q(X).")));
    case "guard variables must be in body for safety" (fun () ->
        let g =
          Rule.guard ~name:"h" ~vars:[ "W" ] ~fn:(fun _ -> 0) ~expect:0
        in
        let r =
          Rule.make ~guards:[ g ]
            (Parser.atom_exn "p(X)")
            [ Parser.atom_exn "q(X)" ]
        in
        Alcotest.(check bool) "unsafe" false (Rule.is_safe r));
    case "guard_ok with full binding" (fun () ->
        let g =
          Rule.guard ~name:"h" ~vars:[ "X" ]
            ~fn:(fun key ->
              match key.(0) with Const.Int i -> i mod 2 | _ -> 0)
            ~expect:1
        in
        Alcotest.(check (option bool)) "holds" (Some true)
          (Rule.guard_ok g [ ("X", Const.int 3) ]);
        Alcotest.(check (option bool)) "fails" (Some false)
          (Rule.guard_ok g [ ("X", Const.int 4) ]));
    case "guard_ok with missing binding" (fun () ->
        let g =
          Rule.guard ~name:"h" ~vars:[ "X" ] ~fn:(fun _ -> 0) ~expect:0
        in
        Alcotest.(check (option bool)) "unknown" None (Rule.guard_ok g []));
    case "is_fact" (fun () ->
        Alcotest.(check bool) "fact" true
          (Rule.is_fact (Rule.make (Parser.atom_exn "p(1,2)") []));
        Alcotest.(check bool) "not fact" false
          (Rule.is_fact (Rule.make (Parser.atom_exn "p(X,2)") [])));
  ]

let program_tests =
  [
    case "derived vs base predicates" (fun () ->
        Alcotest.(check (list string)) "derived" [ "anc" ]
          (Program.derived_predicates ancestor);
        Alcotest.(check (list string)) "base" [ "par" ]
          (Program.base_predicates ancestor));
    case "arities" (fun () ->
        Alcotest.(check (list (pair string int)))
          "arities"
          [ ("anc", 2); ("par", 2) ]
          (Program.arities ancestor));
    case "inconsistent arity rejected" (fun () ->
        let p = Parser.program_exn "p(X) :- q(X). p(X,Y) :- q(X), q(Y)." in
        match Program.check p with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected arity error");
    case "unsafe rule rejected" (fun () ->
        let p = Parser.program_exn "p(X,W) :- q(X)." in
        match Program.check p with
        | Error msg ->
          Alcotest.(check bool) "mentions unsafe" true
            (String.length msg > 0)
        | Ok () -> Alcotest.fail "expected safety error");
    case "facts go to facts_db" (fun () ->
        let p = Parser.program_exn "p(X) :- q(X). q(1). q(2)." in
        let db = Program.facts_db p in
        Alcotest.(check int) "two facts" 2 (Database.cardinal db "q"));
    case "rules_for filters by head" (fun () ->
        Alcotest.(check int) "two anc rules" 2
          (List.length (Program.rules_for ancestor "anc"));
        Alcotest.(check int) "no par rules" 0
          (List.length (Program.rules_for ancestor "par")));
  ]

let parser_tests =
  [
    case "fact with symbols" (fun () ->
        let p = Parser.program_exn "par(adam, abel)." in
        Alcotest.(check int) "one fact" 1 (List.length p.Program.facts));
    case "quoted symbols" (fun () ->
        let a = Parser.atom_exn "p('hello world')" in
        Alcotest.check atom_t "quoted"
          (Atom.make "p" [ Term.sym "hello world" ])
          a);
    case "negative integers" (fun () ->
        Alcotest.check atom_t "neg"
          (Atom.make "p" [ Term.int (-5) ])
          (Parser.atom_exn "p(-5)"));
    case "underscore-leading identifiers are variables" (fun () ->
        let r = Parser.rule_exn "p(X) :- q(X, _Y)." in
        Alcotest.(check (list string)) "vars" [ "X"; "_Y" ] (Rule.body_vars r));
    case "comments are skipped" (fun () ->
        let p =
          Parser.program_exn
            "% a comment\np(X) :- q(X). // another\n q(1)."
        in
        Alcotest.(check int) "one rule" 1 (List.length (Program.rules p)));
    case "whitespace is irrelevant" (fun () ->
        let a = Parser.rule_exn "p(X):-q(X)." in
        let b = Parser.rule_exn "  p( X )  :-  q( X ) .  " in
        Alcotest.check rule_t "same rule" a b);
    case "missing dot is an error" (fun () ->
        match Parser.rule "p(X) :- q(X)" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    case "unterminated quote is an error" (fun () ->
        match Parser.atom "p('oops)" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    case "error reports line and column" (fun () ->
        match Parser.program "p(X) :- q(X).\n???" with
        | Error e ->
          Alcotest.(check int) "line" 2 e.Parser.line;
          Alcotest.(check int) "column" 1 e.Parser.column
        | Ok _ -> Alcotest.fail "expected parse error");
    case "non-ground fact rejected" (fun () ->
        match Parser.program "p(X)." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    case "tuples parses fact files" (fun () ->
        match Parser.tuples "e(1,2). e(2,3)." with
        | Ok facts -> Alcotest.(check int) "two" 2 (List.length facts)
        | Error e -> Alcotest.failf "unexpected: %a" Parser.pp_error e);
    case "tuples rejects rules" (fun () ->
        match Parser.tuples "p(X) :- q(X)." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    case "pretty-printed rules reparse to themselves" (fun () ->
        let sources =
          [
            "anc(X,Y) :- par(X,Y).";
            "anc(X,Y) :- par(X,Z), anc(Z,Y).";
            "p(U,V,W) :- p(V,W,Z), q(U,Z).";
            "p(1,a) :- q(X,X), r('b c').";
            "flag :- p(X).";
          ]
        in
        List.iter
          (fun src ->
            let r = Parser.rule_exn src in
            let printed = Rule.to_string r in
            let r' = Parser.rule_exn printed in
            Alcotest.check rule_t ("round-trip " ^ src) r r')
          sources);
  ]

let suites =
  [
    ("atom", atom_tests);
    ("rule", rule_tests);
    ("program", program_tests);
    ("parser", parser_tests);
  ]
