(* Tests for Symtab, Const, Tuple and Term. *)

open Datalog
open Helpers

let symtab_tests =
  [
    case "intern is idempotent" (fun () ->
        let a = Symtab.intern "alpha" in
        let b = Symtab.intern "alpha" in
        Alcotest.(check bool) "same symbol" true (Symtab.equal a b));
    case "distinct strings get distinct symbols" (fun () ->
        let a = Symtab.intern "alpha" in
        let b = Symtab.intern "beta" in
        Alcotest.(check bool) "different" false (Symtab.equal a b));
    case "name round-trips" (fun () ->
        let a = Symtab.intern "gamma" in
        Alcotest.(check string) "name" "gamma" (Symtab.name a));
    case "mem reflects interning" (fun () ->
        ignore (Symtab.intern "delta");
        Alcotest.(check bool) "present" true (Symtab.mem "delta");
        Alcotest.(check bool) "absent" false
          (Symtab.mem "never-interned-xyzzy"));
    case "count grows by one per fresh string" (fun () ->
        let before = Symtab.count () in
        ignore (Symtab.intern "fresh-string-for-count-test");
        Alcotest.(check int) "one more" (before + 1) (Symtab.count ());
        ignore (Symtab.intern "fresh-string-for-count-test");
        Alcotest.(check int) "unchanged" (before + 1) (Symtab.count ()));
    case "concurrent interning is consistent" (fun () ->
        let strings = List.init 64 (fun i -> Printf.sprintf "conc-%d" i) in
        let domains =
          List.init 4 (fun _ ->
              Domain.spawn (fun () -> List.map Symtab.intern strings))
        in
        let results = List.map Domain.join domains in
        List.iter
          (fun r ->
            Alcotest.(check (list int))
              "all domains agree"
              (List.map Symtab.to_int (List.hd results))
              (List.map Symtab.to_int r))
          results);
  ]

let const_tests =
  [
    case "int constants compare numerically" (fun () ->
        Alcotest.(check bool) "1 < 2" true
          (Const.compare (Const.int 1) (Const.int 2) < 0));
    case "ints sort before symbols" (fun () ->
        Alcotest.(check bool) "Int < Sym" true
          (Const.compare (Const.int 99999) (Const.sym "a") < 0));
    case "equal symbols are equal constants" (fun () ->
        Alcotest.check const_t "eq" (Const.sym "x") (Const.sym "x"));
    case "int and sym never equal" (fun () ->
        Alcotest.(check bool) "neq" false
          (Const.equal (Const.int 0) (Const.sym "0")));
    case "hash is stable" (fun () ->
        Alcotest.(check int) "same value"
          (Const.hash (Const.int 42))
          (Const.hash (Const.int 42)));
    case "hash mixes consecutive integers" (fun () ->
        (* The low bit of the hash should not equal the low bit of the
           value for all inputs (i.e. the hash is not the identity). *)
        let same = ref 0 in
        for i = 0 to 999 do
          if Const.hash (Const.int i) land 1 = i land 1 then incr same
        done;
        Alcotest.(check bool) "not identity-like" true
          (!same > 300 && !same < 700));
    case "seeded hashes differ between seeds" (fun () ->
        let differs = ref 0 in
        for i = 0 to 99 do
          if
            Const.hash_seeded 1 (Const.int i)
            <> Const.hash_seeded 2 (Const.int i)
          then incr differs
        done;
        Alcotest.(check bool) "mostly different" true (!differs > 90));
    case "hash is non-negative" (fun () ->
        for i = -1000 to 1000 do
          if Const.hash (Const.int i) < 0 then
            Alcotest.failf "negative hash for %d" i
        done);
    case "printing" (fun () ->
        Alcotest.(check string) "int" "42" (Const.to_string (Const.int 42));
        Alcotest.(check string)
          "sym" "hello"
          (Const.to_string (Const.sym "hello")));
  ]

let tuple_tests =
  [
    case "arity" (fun () ->
        Alcotest.(check int) "3" 3 (Tuple.arity (Tuple.of_ints [ 1; 2; 3 ])));
    case "get" (fun () ->
        Alcotest.check const_t "component" (Const.int 2)
          (Tuple.get (Tuple.of_ints [ 1; 2; 3 ]) 1));
    case "equal tuples" (fun () ->
        Alcotest.check tuple_t "eq" (Tuple.of_ints [ 1; 2 ])
          (Tuple.of_ints [ 1; 2 ]));
    case "unequal lengths" (fun () ->
        Alcotest.(check bool) "neq" false
          (Tuple.equal (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 1; 1 ])));
    case "compare is lexicographic" (fun () ->
        Alcotest.(check bool) "(1,9) < (2,0)" true
          (Tuple.compare (Tuple.of_ints [ 1; 9 ]) (Tuple.of_ints [ 2; 0 ]) < 0));
    case "shorter tuples sort first" (fun () ->
        Alcotest.(check bool) "() < (0)" true
          (Tuple.compare (Tuple.of_ints []) (Tuple.of_ints [ 0 ]) < 0));
    case "project" (fun () ->
        Alcotest.check tuple_t "projection"
          (Tuple.of_ints [ 3; 1 ])
          (Tuple.project (Tuple.of_ints [ 1; 2; 3 ]) [| 2; 0 |]));
    case "project empty positions" (fun () ->
        Alcotest.check tuple_t "empty"
          (Tuple.of_ints [])
          (Tuple.project (Tuple.of_ints [ 1; 2 ]) [||]));
    case "hash equal for equal tuples" (fun () ->
        Alcotest.(check int) "same"
          (Tuple.hash (Tuple.of_syms [ "a"; "b" ]))
          (Tuple.hash (Tuple.of_syms [ "a"; "b" ])));
    case "hash differs for swapped components" (fun () ->
        Alcotest.(check bool) "different" true
          (Tuple.hash (Tuple.of_ints [ 1; 2 ])
           <> Tuple.hash (Tuple.of_ints [ 2; 1 ])));
    case "printing" (fun () ->
        Alcotest.(check string) "pair" "(1, 2)"
          (Tuple.to_string (Tuple.of_ints [ 1; 2 ])));
  ]

let term_tests =
  [
    case "is_var" (fun () ->
        Alcotest.(check bool) "var" true (Term.is_var (Term.var "X"));
        Alcotest.(check bool) "const" false (Term.is_var (Term.int 3)));
    case "vars sort before constants" (fun () ->
        Alcotest.(check bool) "Var < Const" true
          (Term.compare (Term.var "Z") (Term.int 0) < 0));
    case "equal" (fun () ->
        Alcotest.(check bool) "same var" true
          (Term.equal (Term.var "X") (Term.var "X"));
        Alcotest.(check bool) "diff var" false
          (Term.equal (Term.var "X") (Term.var "Y")));
  ]

let suites =
  [
    ("symtab", symtab_tests);
    ("const", const_tests);
    ("tuple", tuple_tests);
    ("term", term_tests);
  ]
