(* Tests for the SCC-stratified evaluator. *)

open Datalog
open Helpers

let stratified_program =
  Parser.program_exn
    "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
     twohop(X,Y) :- tc(X,Z), tc(Z,Y).
     triangle(X) :- twohop(X,X)."

let mutual =
  Parser.program_exn
    "evenp(X,Y) :- e(X,Y), e(Y,X).
     evenp(X,Y) :- oddp(X,Z), e(Z,Y).
     oddp(X,Y) :- e(X,Y).
     oddp(X,Y) :- evenp(X,Z), e(Z,Y)."

let tests =
  [
    case "equals plain semi-naive on ancestor" (fun () ->
        let db = edb_of_edges (Workload.Graphgen.binary_tree ~depth:5) in
        let plain, _ = Seminaive.evaluate ancestor db in
        let strat, _ = Stratified.evaluate ancestor db in
        Alcotest.check database_t "equal" plain strat);
    case "equals plain semi-naive on a 3-stratum program" (fun () ->
        let rng = Workload.Rng.create ~seed:17 in
        let db =
          edb_of_edges ~pred:"e"
            (Workload.Graphgen.random_digraph rng ~nodes:25 ~edges:60)
        in
        let plain, _ = Seminaive.evaluate stratified_program db in
        let strat, _ = Stratified.evaluate stratified_program db in
        Alcotest.check database_t "equal" plain strat);
    case "firing counts agree with the plain engine" (fun () ->
        let rng = Workload.Rng.create ~seed:18 in
        let db =
          edb_of_edges ~pred:"e"
            (Workload.Graphgen.random_digraph rng ~nodes:20 ~edges:50)
        in
        let _, plain = Seminaive.evaluate stratified_program db in
        let _, strat = Stratified.evaluate stratified_program db in
        Alcotest.(check int) "same firings" plain.Seminaive.firings
          strat.Seminaive.firings;
        Alcotest.(check int) "same new tuples" plain.Seminaive.new_tuples
          strat.Seminaive.new_tuples);
    case "handles mutual recursion inside one component" (fun () ->
        let db = edb_of_edges ~pred:"e" (Workload.Graphgen.cycle 9) in
        let plain, _ = Seminaive.evaluate mutual db in
        let strat, _ = Stratified.evaluate mutual db in
        Alcotest.check database_t "equal" plain strat);
    case "program facts are honoured" (fun () ->
        let p =
          Parser.program_exn
            "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y).
             par(1,2). par(2,3)."
        in
        let strat, _ = Stratified.evaluate p (Database.create ()) in
        Alcotest.check relation_t "closure"
          (relation_of_pairs [ (1, 2); (2, 3); (1, 3) ])
          (anc_relation strat));
    case "rejects ill-formed programs" (fun () ->
        let p = Parser.program_exn "p(X,W) :- q(X)." in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Stratified.evaluate p (Database.create ()));
             false
           with Invalid_argument _ -> true));
    case "input database untouched" (fun () ->
        let db = edb_of_edges [ (1, 2) ] in
        ignore (Stratified.evaluate ancestor db);
        Alcotest.(check bool) "no anc" false (Database.mem db "anc"));
  ]

let suites = [ ("stratified", tests) ]
