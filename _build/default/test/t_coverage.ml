(* Coverage of printers, small accessors, and the chain-query program:
   functions that matter for usability but are easy to leave untested. *)

open Datalog
open Pardatalog
open Helpers

let string_of pp v = Format.asprintf "%a" pp v

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1))
  in
  go 0

let printer_tests =
  [
    case "Pid.pp prints labels" (fun () ->
        Alcotest.(check string) "bitvec" "(01)"
          (string_of (Pid.pp (Pid.bitvec 2)) 1));
    case "Hash_fn.pp mentions name and size" (fun () ->
        let s = string_of Hash_fn.pp (Hash_fn.modulo ~nprocs:4 ~arity:2 ()) in
        Alcotest.(check bool) "name" true (contains s "h");
        Alcotest.(check bool) "size" true (contains s "4"));
    case "Seminaive.pp_stats fields" (fun () ->
        let _, stats = Seminaive.evaluate ancestor (edb_of_edges [ (1, 2) ]) in
        let s = string_of Seminaive.pp_stats stats in
        List.iter
          (fun field -> Alcotest.(check bool) field true (contains s field))
          [ "iterations"; "firings"; "new_tuples"; "duplicates" ]);
    case "Program.pp includes rules and facts" (fun () ->
        let p = Parser.program_exn "p(X) :- q(X). q(1)." in
        let s = string_of Program.pp p in
        Alcotest.(check bool) "rule" true (contains s "p(X) :- q(X).");
        Alcotest.(check bool) "fact" true (contains s "q(1)."));
    case "Dataflow.pp on an empty graph" (fun () ->
        let s =
          string_of Dataflow.pp
            (Dataflow.of_sirup
               (Result.get_ok (Analysis.as_sirup Workload.Progs.chain_query)))
        in
        Alcotest.(check string) "no edges" "(no edges)" s);
    case "Netgraph.pp on an empty graph" (fun () ->
        Alcotest.(check string) "no edges" "(no edges)"
          (string_of Netgraph.pp (Netgraph.make (Pid.dense 2) [])));
    case "Verify.pp_report mentions the verdict" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let report = Verify.check rw ~edb:(edb_of_edges [ (1, 2); (2, 3) ]) in
        let s = string_of Verify.pp_report report in
        Alcotest.(check bool) "verdict" true (contains s "non-redundant"));
    case "Rewrite.pp sections" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let s = string_of Rewrite.pp rw in
        List.iter
          (fun sec -> Alcotest.(check bool) sec true (contains s sec))
          [ "processor 0"; "--- sends ---"; "--- base relations ---" ]);
    case "Parser.pp_error format" (fun () ->
        match Parser.program "p(" with
        | Error e ->
          let s = string_of Parser.pp_error e in
          Alcotest.(check bool) "position" true (contains s "line 1")
        | Ok _ -> Alcotest.fail "expected error");
    case "Database.get raises Not_found" (fun () ->
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Database.get (Database.create ()) "nope")));
    case "Derive.space_of_spec" (fun () ->
        (match Derive.space_of_spec (Hash_fn.Linear { coeffs = [| 1; -1 |]; lo = -1 })
         with
         | Some s ->
           Alcotest.(check int) "size" 3 (Pid.size s);
           Alcotest.(check string) "low" "-1" (Pid.label s 0)
         | None -> Alcotest.fail "expected a space");
        Alcotest.(check bool) "opaque has none" true
          (Derive.space_of_spec Hash_fn.Opaque = None));
  ]

let chain_query_tests =
  [
    case "chain query: empty dataflow graph, no Theorem-3 choice" (fun () ->
        let s = Result.get_ok (Analysis.as_sirup Workload.Progs.chain_query) in
        let g = Dataflow.of_sirup s in
        Alcotest.(check (list (pair int int))) "no edges" [] g.Dataflow.edges;
        Alcotest.(check bool) "no free choice" true
          (Dataflow.communication_free_choice s = None));
    case "chain query: general scheme is exact and non-redundant" (fun () ->
        let rng = Workload.Rng.create ~seed:33 in
        let db = Database.create () in
        List.iter
          (fun pred ->
            List.iter
              (fun (a, b) ->
                ignore (Database.add_fact db pred (Tuple.of_ints [ a; b ])))
              (Workload.Graphgen.random_digraph rng ~nodes:12 ~edges:30))
          [ "e0"; "e1"; "e2" ];
        match Strategy.general ~nprocs:4 Workload.Progs.chain_query with
        | Error e -> Alcotest.fail e
        | Ok rw ->
          let report = Verify.check rw ~edb:db in
          Alcotest.(check bool) "equal" true report.Verify.equal_answers;
          Alcotest.(check bool) "non-redundant" true
            report.Verify.non_redundant);
    case "chain query: scheme Q with v(r) inside the recursive atom"
      (fun () ->
        let rng = Workload.Rng.create ~seed:34 in
        let db = Database.create () in
        List.iter
          (fun pred ->
            List.iter
              (fun (a, b) ->
                ignore (Database.add_fact db pred (Tuple.of_ints [ a; b ])))
              (Workload.Graphgen.random_digraph rng ~nodes:10 ~edges:25))
          [ "e0"; "e1"; "e2" ];
        match
          Strategy.hash_q ~nprocs:3 ~ve:[ "X" ] ~vr:[ "Z"; "W" ]
            Workload.Progs.chain_query
        with
        | Error e -> Alcotest.fail e
        | Ok rw ->
          let report = Verify.check rw ~edb:db in
          Alcotest.(check bool) "equal" true report.Verify.equal_answers;
          Alcotest.(check bool) "non-redundant" true
            report.Verify.non_redundant);
  ]

let api_tests =
  [
    case "Atom.matches_tuple semantics" (fun () ->
        let a = Parser.atom_exn "p(X,X,1)" in
        Alcotest.(check bool) "match" true
          (Atom.matches_tuple a (Tuple.of_ints [ 5; 5; 1 ]));
        Alcotest.(check bool) "repeated var mismatch" false
          (Atom.matches_tuple a (Tuple.of_ints [ 5; 6; 1 ]));
        Alcotest.(check bool) "constant mismatch" false
          (Atom.matches_tuple a (Tuple.of_ints [ 5; 5; 2 ]));
        Alcotest.(check bool) "arity raises" true
          (try
             ignore (Atom.matches_tuple a (Tuple.of_ints [ 5; 5 ]));
             false
           with Invalid_argument _ -> true));
    case "has_pending transitions" (fun () ->
        let engine =
          Seminaive.create ancestor ~edb:(edb_of_edges [ (1, 2); (2, 3) ])
        in
        Alcotest.(check bool) "nothing before bootstrap" false
          (Seminaive.has_pending engine);
        ignore (Seminaive.bootstrap engine);
        Alcotest.(check bool) "pending after bootstrap" true
          (Seminaive.has_pending engine);
        Seminaive.run_to_fixpoint engine;
        Alcotest.(check bool) "quiet at fixpoint" false
          (Seminaive.has_pending engine));
    case "channels_within rejects foreign channels" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:3 ancestor) in
        let r =
          Sim_runtime.run rw ~edb:(edb_of_edges (Workload.Graphgen.chain 10))
        in
        (* The self-only network cannot contain a communicating run. *)
        Alcotest.(check bool) "violations detected" false
          (Verify.channels_within r.Sim_runtime.stats
             (Netgraph.self_only (Pid.dense 3))));
    case "used_channels excludes self loops by default" (fun () ->
        let rw =
          Result.get_ok (Strategy.hash_q ~nprocs:3 ~ve:[ "Y" ] ~vr:[ "Y" ] ancestor)
        in
        let r =
          Sim_runtime.run rw ~edb:(edb_of_edges (Workload.Graphgen.chain 10))
        in
        Alcotest.(check (list (pair int int)))
          "no cross channels" []
          (Stats.used_channels r.Sim_runtime.stats);
        Alcotest.(check bool) "self channels exist" true
          (Stats.used_channels ~include_self:true r.Sim_runtime.stats <> []));
    case "Pid.of_label on dense spaces" (fun () ->
        Alcotest.(check (option int)) "found" (Some 2)
          (Pid.of_label (Pid.dense 4) "2");
        Alcotest.(check (option int)) "missing" None
          (Pid.of_label (Pid.dense 4) "4"));
    case "partition_induced with empty assignment falls back" (fun () ->
        let fallback = Hash_fn.modulo ~nprocs:2 ~arity:1 () in
        let h = Hash_fn.partition_induced ~nprocs:2 ~fallback [] in
        let v = Hash_fn.apply h [| Const.int 3 |] in
        Alcotest.(check int) "same as fallback"
          (Hash_fn.apply fallback [| Const.int 3 |]) v);
    case "frontier of an empty run" (fun () ->
        let rw = Result.get_ok (Strategy.example3 ~nprocs:2 ancestor) in
        let r = Sim_runtime.run rw ~edb:(Database.create ()) in
        Alcotest.(check int) "no tuples" 0
          (List.fold_left ( + ) 0
             (Stats.frontier_profile r.Sim_runtime.stats));
        Alcotest.(check int) "no parallelism" 0
          (Stats.peak_parallelism r.Sim_runtime.stats));
    case "var_count reflects distinct variables" (fun () ->
        let plan =
          Joiner.compile (Parser.rule_exn "p(X,Y) :- q(X,Z), r(Z,Y,X).")
        in
        Alcotest.(check int) "three vars" 3 (Joiner.var_count plan));
  ]

let suites =
  [
    ("printers", printer_tests);
    ("chain-query", chain_query_tests);
    ("api", api_tests);
  ]
