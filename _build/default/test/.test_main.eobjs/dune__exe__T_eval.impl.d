test/t_eval.ml: Alcotest Array Const Database Datalog Helpers Joiner List Naive Parser Relation Rule Seminaive Tuple Workload
