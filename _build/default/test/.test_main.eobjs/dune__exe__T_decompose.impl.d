test/t_decompose.ml: Alcotest Array Const Database Datalog Decompose Helpers List Pardatalog Parser Relation Result Seminaive Sim_runtime Stats Tuple Workload
