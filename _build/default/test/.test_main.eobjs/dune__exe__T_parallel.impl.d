test/t_parallel.ml: Alcotest Array Datalog Domain Domain_runtime Helpers List Mailbox Pardatalog Printf Result Safra Seminaive Sim_runtime Stats Strategy Unix Workload
