test/t_analysis.ml: Alcotest Analysis Datalog Helpers List Parser Program String Workload
