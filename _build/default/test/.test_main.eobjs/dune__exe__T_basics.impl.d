test/t_basics.ml: Alcotest Const Datalog Domain Helpers List Printf Symtab Term Tuple
