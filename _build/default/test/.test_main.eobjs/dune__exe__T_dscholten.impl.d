test/t_dscholten.ml: Alcotest Array Datalog Domain_runtime Dscholten Helpers Pardatalog Result Seminaive Sim_runtime Strategy Workload
