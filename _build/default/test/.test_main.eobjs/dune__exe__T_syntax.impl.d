test/t_syntax.ml: Alcotest Array Atom Const Database Datalog Helpers List Parser Program Rule String Term Tuple
