test/t_strategy.ml: Alcotest Array Database Datalog Helpers List Pardatalog Parser Printf Program Relation Result Rewrite Rule Sim_runtime Stats Strategy Verify Workload
