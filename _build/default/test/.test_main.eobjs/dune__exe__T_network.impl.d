test/t_network.ml: Alcotest Analysis Database Dataflow Datalog Derive Discriminant Hash_fn Helpers List Netgraph Pardatalog Pid Result Rewrite Sim_runtime Strategy String Tuple Verify Workload
