test/t_relation.ml: Alcotest Const Database Datalog Helpers List Relation Tuple
