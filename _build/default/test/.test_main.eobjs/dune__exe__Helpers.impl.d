test/helpers.ml: Alcotest Array Atom Const Database Datalog Hashtbl List Pardatalog Relation Rule String Tuple Workload
