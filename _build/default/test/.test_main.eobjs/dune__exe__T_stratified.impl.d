test/t_stratified.ml: Alcotest Database Datalog Helpers Parser Seminaive Stratified Workload
