test/t_hash.ml: Alcotest Array Const Datalog Discriminant Fun Hash_fn Helpers List Pardatalog Parser Pid Result Tuple
