End-to-end checks of the datalogp command-line interface. Everything
here is deterministic: fixed seeds, the simulated runtime, and sorted
answer printing.

  $ cat > anc.dl <<'PROG'
  > anc(X,Y) :- par(X,Y).
  > anc(X,Y) :- par(X,Z), anc(Z,Y).
  > PROG

  $ datalogp gen chain --size 5 > chain.dl
  $ cat chain.dl
  par(0,1).
  par(1,2).
  par(2,3).
  par(3,4).

Sequential evaluation prints the closure and engine statistics.

  $ datalogp run anc.dl --edb chain.dl
  anc/2 (10 tuples):
    anc(0, 1)
    anc(0, 2)
    anc(0, 3)
    anc(0, 4)
    anc(1, 2)
    anc(1, 3)
    anc(1, 4)
    anc(2, 3)
    anc(2, 4)
    anc(3, 4)
  iterations=4 firings=10 new_tuples=10 duplicates=0

The stratified engine computes the same model.

  $ datalogp run anc.dl --edb chain.dl --engine stratified -q
  iterations=4 firings=10 new_tuples=10 duplicates=0

Pattern queries bind variables and respect repeated ones.

  $ datalogp query anc.dl 'anc(0,X)' --edb chain.dl
  anc(0, 1)
  anc(0, 2)
  anc(0, 3)
  anc(0, 4)
  4 tuple(s)

  $ datalogp query anc.dl 'anc(X,X)' --edb chain.dl
  0 tuple(s)

Parallel evaluation under Example 3 verifies against the sequential
run (Theorems 1 and 2).

  $ datalogp par anc.dl --edb chain.dl --scheme example3 -n 2 --verify | head -3
  equal answers: true
  firings: sequential=10 parallel=10 (non-redundant, redundancy 0.000)
  messages: 1

The dataflow analysis recovers the paper's Example 1 choice.

  $ datalogp dataflow anc.dl
  dataflow graph: 2 -> 2
  cycle: 2
  Theorem 3 choice: v(e) = <Y>, v(r) = <Y> with a symmetric hash gives a communication-free execution

The minimal-network derivation reproduces Figure 4's processor set.

  $ cat > ex7.dl <<'PROG'
  > p(U,V,W) :- s(U,V,W).
  > p(U,V,W) :- p(V,W,Z), q(U,Z).
  > PROG
  $ datalogp network ex7.dl --ve U,V,W --vr V,W,Z --linear 1,-1,1 | tail -1
  cross-processor edges: 8

Dong's baseline reports its component structure.

  $ datalogp dong anc.dl --edb chain.dl -q -n 2 | head -1
  components: 1;  tuples per processor: 4, 0

Ill-formed programs are rejected.

  $ cat > bad.dl <<'PROG'
  > p(X,W) :- q(X).
  > PROG
  $ datalogp run bad.dl
  invalid program: unsafe rule: p(X, W) :- q(X).
  [2]
