(* Tests for Pid, Hash_fn and Discriminant. *)

open Datalog
open Pardatalog
open Helpers

let pid_tests =
  [
    case "dense labels" (fun () ->
        let s = Pid.dense 3 in
        Alcotest.(check int) "size" 3 (Pid.size s);
        Alcotest.(check string) "label" "2" (Pid.label s 2));
    case "dense rejects zero processors" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Pid.dense 0);
             false
           with Invalid_argument _ -> true));
    case "label out of range raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Pid.label (Pid.dense 2) 2);
             false
           with Invalid_argument _ -> true));
    case "bitvec labels are big-endian" (fun () ->
        let s = Pid.bitvec 2 in
        Alcotest.(check int) "size" 4 (Pid.size s);
        Alcotest.(check string) "0" "(00)" (Pid.label s 0);
        Alcotest.(check string) "1" "(01)" (Pid.label s 1);
        Alcotest.(check string) "2" "(10)" (Pid.label s 2);
        Alcotest.(check string) "3" "(11)" (Pid.label s 3));
    case "range labels include negatives" (fun () ->
        let s = Pid.range ~lo:(-1) ~hi:2 in
        Alcotest.(check int) "size" 4 (Pid.size s);
        Alcotest.(check string) "first" "-1" (Pid.label s 0);
        Alcotest.(check string) "last" "2" (Pid.label s 3));
    case "of_label inverts label" (fun () ->
        let s = Pid.bitvec 3 in
        List.iter
          (fun i ->
            Alcotest.(check (option int))
              "inverse" (Some i)
              (Pid.of_label s (Pid.label s i)))
          (Pid.all s);
        Alcotest.(check (option int)) "unknown" None (Pid.of_label s "(0)"));
    case "all enumerates the space" (fun () ->
        Alcotest.(check (list int)) "dense 4" [ 0; 1; 2; 3 ]
          (Pid.all (Pid.dense 4)));
  ]

let key ints = Array.of_list (List.map Const.int ints)

let hash_tests =
  [
    case "modulo lands in range" (fun () ->
        let h = Hash_fn.modulo ~nprocs:5 ~arity:2 () in
        for i = 0 to 200 do
          let v = Hash_fn.apply h (key [ i; i * 3 ]) in
          if v < 0 || v >= 5 then Alcotest.failf "out of range: %d" v
        done);
    case "modulo covers all processors" (fun () ->
        let h = Hash_fn.modulo ~nprocs:4 ~arity:1 () in
        let seen = Array.make 4 false in
        for i = 0 to 100 do
          seen.(Hash_fn.apply h (key [ i ])) <- true
        done;
        Alcotest.(check bool) "all hit" true (Array.for_all Fun.id seen));
    case "modulo is deterministic" (fun () ->
        let h = Hash_fn.modulo ~nprocs:7 ~arity:2 () in
        Alcotest.(check int) "same"
          (Hash_fn.apply h (key [ 4; 5 ]))
          (Hash_fn.apply h (key [ 4; 5 ])));
    case "different seeds give different functions" (fun () ->
        let a = Hash_fn.modulo ~seed:1 ~nprocs:16 ~arity:1 () in
        let b = Hash_fn.modulo ~seed:2 ~nprocs:16 ~arity:1 () in
        let differs = ref 0 in
        for i = 0 to 99 do
          if Hash_fn.apply a (key [ i ]) <> Hash_fn.apply b (key [ i ]) then
            incr differs
        done;
        Alcotest.(check bool) "mostly differ" true (!differs > 50));
    case "apply checks arity" (fun () ->
        let h = Hash_fn.modulo ~nprocs:3 ~arity:2 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Hash_fn.apply h (key [ 1 ]));
             false
           with Invalid_argument _ -> true));
    case "symmetric_modulo is order-invariant" (fun () ->
        let h = Hash_fn.symmetric_modulo ~nprocs:8 ~arity:3 () in
        for i = 0 to 50 do
          let a = Hash_fn.apply h (key [ i; i + 1; i * 2 ]) in
          let b = Hash_fn.apply h (key [ i * 2; i; i + 1 ]) in
          Alcotest.(check int) "permutation invariant" a b
        done);
    case "plain modulo is not order-invariant" (fun () ->
        let h = Hash_fn.modulo ~nprocs:64 ~arity:2 () in
        let differs = ref 0 in
        for i = 0 to 63 do
          if
            Hash_fn.apply h (key [ i; i + 1 ])
            <> Hash_fn.apply h (key [ i + 1; i ])
          then incr differs
        done;
        Alcotest.(check bool) "some differ" true (!differs > 0));
    case "bit is binary and seed-dependent" (fun () ->
        let all01 = ref true and differs = ref 0 in
        for i = 0 to 199 do
          let b = Hash_fn.bit ~seed:3 (Const.int i) in
          if b <> 0 && b <> 1 then all01 := false;
          if b <> Hash_fn.bit ~seed:4 (Const.int i) then incr differs
        done;
        Alcotest.(check bool) "binary" true !all01;
        Alcotest.(check bool) "seed matters" true (!differs > 30));
    case "bitvec encodes bits big-endian" (fun () ->
        let h = Hash_fn.bitvec ~arity:2 () in
        let c1 = Const.int 11 and c2 = Const.int 22 in
        let expected =
          (2 * Hash_fn.bit ~seed:0 c1) + Hash_fn.bit ~seed:0 c2
        in
        Alcotest.(check int) "encoding" expected
          (Hash_fn.apply h [| c1; c2 |]);
        Alcotest.(check int) "space" 4 (Pid.size h.Hash_fn.space));
    case "linear realizes the paper's range" (fun () ->
        let h = Hash_fn.linear ~coeffs:[ 1; -1; 1 ] () in
        Alcotest.(check int) "4 processors" 4 (Pid.size h.Hash_fn.space);
        Alcotest.(check string) "low label" "-1"
          (Pid.label h.Hash_fn.space 0);
        for i = 0 to 100 do
          let v = Hash_fn.apply h (key [ i; i * 5 + 1; i * 9 + 2 ]) in
          if v < 0 || v > 3 then Alcotest.failf "out of range: %d" v
        done);
    case "linear matches its definition" (fun () ->
        let h = Hash_fn.linear ~seed:9 ~coeffs:[ 1; -1; 1 ] () in
        let cs = [| Const.int 3; Const.int 14; Const.int 15 |] in
        let g c = Hash_fn.bit ~seed:9 c in
        let expected = g cs.(0) - g cs.(1) + g cs.(2) + 1 in
        Alcotest.(check int) "value" expected (Hash_fn.apply h cs));
    case "constant always answers the same" (fun () ->
        let h = Hash_fn.constant ~nprocs:4 ~arity:2 3 in
        for i = 0 to 20 do
          Alcotest.(check int) "3" 3 (Hash_fn.apply h (key [ i; -i ]))
        done);
    case "constant validates the pid" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Hash_fn.constant ~nprocs:4 ~arity:1 4);
             false
           with Invalid_argument _ -> true));
    case "partition_induced follows the assignment" (fun () ->
        let fallback = Hash_fn.modulo ~nprocs:3 ~arity:2 () in
        let h =
          Hash_fn.partition_induced ~nprocs:3 ~fallback
            [
              (Tuple.of_ints [ 1; 2 ], 2);
              (Tuple.of_ints [ 3; 4 ], 0);
            ]
        in
        Alcotest.(check int) "assigned" 2 (Hash_fn.apply h (key [ 1; 2 ]));
        Alcotest.(check int) "assigned" 0 (Hash_fn.apply h (key [ 3; 4 ]));
        let v = Hash_fn.apply h (key [ 9; 9 ]) in
        Alcotest.(check bool) "fallback in range" true (v >= 0 && v < 3));
    case "partition_induced rejects conflicting fragments" (fun () ->
        let fallback = Hash_fn.modulo ~nprocs:2 ~arity:1 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Hash_fn.partition_induced ~nprocs:2 ~fallback
                  [
                    (Tuple.of_ints [ 1 ], 0);
                    (Tuple.of_ints [ 1 ], 1);
                  ]);
             false
           with Invalid_argument _ -> true));
    case "mixture endpoints" (fun () ->
        let base = Hash_fn.modulo ~nprocs:4 ~arity:1 () in
        let keep = Hash_fn.mixture ~alpha:1.0 ~self:2 base in
        let send = Hash_fn.mixture ~alpha:0.0 ~self:2 base in
        for i = 0 to 50 do
          Alcotest.(check int) "alpha=1 keeps" 2
            (Hash_fn.apply keep (key [ i ]));
          Alcotest.(check int) "alpha=0 routes"
            (Hash_fn.apply base (key [ i ]))
            (Hash_fn.apply send (key [ i ]))
        done);
    case "mixture interpolates" (fun () ->
        let base = Hash_fn.modulo ~nprocs:4 ~arity:1 () in
        let h = Hash_fn.mixture ~alpha:0.5 ~self:3 base in
        let kept = ref 0 in
        for i = 0 to 999 do
          if
            Hash_fn.apply h (key [ i ]) = 3
            && Hash_fn.apply base (key [ i ]) <> 3
          then incr kept
        done;
        (* About half of the ~750 tuples not already routed to 3. *)
        Alcotest.(check bool) "roughly half kept" true
          (!kept > 250 && !kept < 500));
    case "mixture validates alpha" (fun () ->
        let base = Hash_fn.modulo ~nprocs:2 ~arity:1 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Hash_fn.mixture ~alpha:1.5 ~self:0 base);
             false
           with Invalid_argument _ -> true));
    case "of_fun clamps into the space" (fun () ->
        let h =
          Hash_fn.of_fun ~name:"f" ~arity:1 ~space:(Pid.dense 3) (fun _ -> -7)
        in
        let v = Hash_fn.apply h (key [ 0 ]) in
        Alcotest.(check bool) "in range" true (v >= 0 && v < 3));
  ]

let discriminant_tests =
  [
    case "make validates arity" (fun () ->
        let fn = Hash_fn.modulo ~nprocs:2 ~arity:2 () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Discriminant.make ~vars:[ "X" ] ~fn);
             false
           with Invalid_argument _ -> true));
    case "check_for_rule accepts body variables" (fun () ->
        let fn = Hash_fn.modulo ~nprocs:2 ~arity:1 () in
        let d = Discriminant.make ~vars:[ "Z" ] ~fn in
        let r = Parser.rule_exn "anc(X,Y) :- par(X,Z), anc(Z,Y)." in
        Alcotest.(check bool) "ok" true
          (Result.is_ok (Discriminant.check_for_rule d r)));
    case "check_for_rule rejects foreign variables" (fun () ->
        let fn = Hash_fn.modulo ~nprocs:2 ~arity:1 () in
        let d = Discriminant.make ~vars:[ "W" ] ~fn in
        let r = Parser.rule_exn "anc(X,Y) :- par(X,Z), anc(Z,Y)." in
        Alcotest.(check bool) "error" true
          (Result.is_error (Discriminant.check_for_rule d r)));
    case "covered_positions finds first occurrences" (fun () ->
        let a = Parser.atom_exn "p(X,Y,X)" in
        (match Discriminant.covered_positions [ "Y"; "X" ] a with
         | Some ps -> Alcotest.(check (array int)) "positions" [| 1; 0 |] ps
         | None -> Alcotest.fail "expected coverage"));
    case "covered_positions detects gaps" (fun () ->
        let a = Parser.atom_exn "p(X,Y)" in
        Alcotest.(check bool) "none" true
          (Discriminant.covered_positions [ "Z" ] a = None));
    case "check_in_atom mirrors covered_positions" (fun () ->
        let fn = Hash_fn.modulo ~nprocs:2 ~arity:1 () in
        let d = Discriminant.make ~vars:[ "Y" ] ~fn in
        Alcotest.(check bool) "covered" true
          (Result.is_ok (Discriminant.check_in_atom d (Parser.atom_exn "t(Z,Y)")));
        Alcotest.(check bool) "uncovered" true
          (Result.is_error
             (Discriminant.check_in_atom d (Parser.atom_exn "t(Z,W)"))));
  ]

let suites =
  [
    ("pid", pid_tests);
    ("hash_fn", hash_tests);
    ("discriminant", discriminant_tests);
  ]
