(** Dong's decomposition-based distributed evaluation — the baseline the
    paper critiques in its introduction (point 2).

    Dong [8] distributes Datalog evaluation by decomposing the database
    into fragments that share no constants; each processor then
    evaluates its fragment completely independently. We implement the
    scheme faithfully for {e connected} programs (every rule body is a
    connected graph under shared variables, and rules contain no
    constants): under that condition every successful ground
    substitution draws all its constants from a single
    constant-connectivity component of the EDB, so component-local
    evaluation is exact and needs no communication at all.

    The paper's two criticisms become measurable here: an arbitrary
    fragmentation of the database {e may share constants} (one weakly
    connected input collapses to a single component), and the scheme's
    scalability is limited by however many components the data happens
    to have — see bench section D8. *)

open Datalog

val check_program : Program.t -> (unit, string) result
(** Whether the scheme applies: the program is well-formed, every rule
    body is variable-connected, and no rule mentions a constant. *)

type analysis = {
  nprocs : int;
  component_count : int;  (** Constant-connectivity components found. *)
  assignment : Const.t -> Pid.t;
      (** Component → processor (greedy balancing by tuple count);
          constants outside the EDB map to processor 0. *)
  tuples_per_proc : int array;
}

val analyze : nprocs:int -> Database.t -> analysis
(** Union constants co-occurring in any EDB tuple, then greedily assign
    whole components to the least-loaded processor. *)

val run :
  Program.t -> nprocs:int -> Database.t ->
  (Sim_runtime.result * analysis, string) result
(** Evaluate under Dong's scheme: each processor sequentially evaluates
    the program on its components' tuples; answers are pooled. The
    returned stats have zero messages by construction; [rounds] is the
    maximum of the per-processor iteration counts. *)
