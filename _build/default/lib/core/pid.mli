(** Processor identifiers.

    At run time processors are the dense integers [0 .. size-1]. The
    paper, however, often names processors by structured values — bit
    vectors like [(01)] in Example 6, or the integer range [{-1,0,1,2}]
    of Example 7 (the range of a linear discriminating function). A
    {!space} couples the dense runtime ids with their printable,
    paper-style labels. *)

type t = int
(** A dense processor id, [0 <= id < size] of its space. *)

type space

val size : space -> int
val label : space -> t -> string
(** Printable label of a processor.
    @raise Invalid_argument when the id is out of range. *)

val all : space -> t list
(** [0; 1; …; size-1]. *)

val dense : int -> space
(** [n] processors labelled ["0"] … ["n-1"].
    @raise Invalid_argument if [n <= 0]. *)

val bitvec : int -> space
(** [bitvec k] is the [2^k] processors labelled by [k]-bit vectors,
    ["(00)"], ["(01)"], … The id of vector [b₁…bₖ] is its big-endian
    value, so label [(b₁…bₖ)] has id [Σ bᵢ·2^(k-i)].
    @raise Invalid_argument if [k < 1] or [k > 16]. *)

val range : lo:int -> hi:int -> space
(** Processors labelled by the integers [lo..hi]; id = label - lo.
    @raise Invalid_argument if [hi < lo]. *)

val of_label : space -> string -> t option
(** Inverse of {!label}. *)

val pp : space -> Format.formatter -> t -> unit
