type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
}

let create () =
  { mutex = Mutex.create (); nonempty = Condition.create (); queue = Queue.create () }

let push mb x =
  Mutex.lock mb.mutex;
  Queue.add x mb.queue;
  Condition.signal mb.nonempty;
  Mutex.unlock mb.mutex

let drain_locked mb =
  let acc = ref [] in
  while not (Queue.is_empty mb.queue) do
    acc := Queue.pop mb.queue :: !acc
  done;
  List.rev !acc

let drain mb =
  Mutex.lock mb.mutex;
  let xs = drain_locked mb in
  Mutex.unlock mb.mutex;
  xs

let drain_blocking mb =
  Mutex.lock mb.mutex;
  while Queue.is_empty mb.queue do
    Condition.wait mb.nonempty mb.mutex
  done;
  let xs = drain_locked mb in
  Mutex.unlock mb.mutex;
  xs

let is_empty mb =
  Mutex.lock mb.mutex;
  let e = Queue.is_empty mb.queue in
  Mutex.unlock mb.mutex;
  e
