(** Multi-producer single-consumer mailboxes for domains.

    The channel abstraction of Section 3 requires only that data put on
    channel [ij] reaches processor [j], error-free, in finite time. A
    mutex/condition-variable queue per receiving domain provides exactly
    that on shared memory. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue and wake the consumer. Safe from any domain. *)

val drain : 'a t -> 'a list
(** Dequeue everything currently present, in arrival order, without
    blocking (possibly [[]]). *)

val drain_blocking : 'a t -> 'a list
(** Like {!drain} but blocks until at least one element is present. *)

val is_empty : 'a t -> bool
