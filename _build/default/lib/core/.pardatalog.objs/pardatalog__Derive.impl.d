lib/core/derive.ml: Analysis Array Atom Datalog Fun Hash_fn Hashtbl List Netgraph Pid Printf Result Rule String Term
