lib/core/stats.mli: Format Pid
