lib/core/verify.mli: Datalog Format Netgraph Rewrite Sim_runtime Stats
