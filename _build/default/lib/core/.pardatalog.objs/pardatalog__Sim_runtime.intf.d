lib/core/sim_runtime.mli: Datalog Logs Netgraph Rewrite Stats
