lib/core/pid.ml: Bytes Format Fun List Printf String
