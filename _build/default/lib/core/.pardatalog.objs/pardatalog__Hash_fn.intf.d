lib/core/hash_fn.mli: Datalog Format Pid
