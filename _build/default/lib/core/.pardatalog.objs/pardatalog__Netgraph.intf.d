lib/core/netgraph.mli: Format Pid
