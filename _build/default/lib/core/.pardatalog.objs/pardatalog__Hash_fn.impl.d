lib/core/hash_fn.ml: Array Const Datalog Format Hashtbl List Pid Printf Tuple
