lib/core/strategy.mli: Analysis Datalog Pid Program Rewrite Rule Tuple
