lib/core/dscholten.ml:
