lib/core/stats.ml: Array Format List Pid
