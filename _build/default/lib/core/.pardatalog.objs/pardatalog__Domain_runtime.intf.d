lib/core/domain_runtime.mli: Datalog Rewrite Sim_runtime
