lib/core/safra.mli:
