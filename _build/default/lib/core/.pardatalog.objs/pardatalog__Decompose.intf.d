lib/core/decompose.mli: Const Database Datalog Pid Program Sim_runtime
