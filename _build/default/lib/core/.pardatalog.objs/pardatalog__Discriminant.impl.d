lib/core/discriminant.ml: Array Atom Datalog Format Hash_fn List Printf Rule String Term
