lib/core/mailbox.ml: Condition List Mutex Queue
