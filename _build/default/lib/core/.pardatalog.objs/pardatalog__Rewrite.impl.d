lib/core/rewrite.ml: Array Atom Datalog Discriminant Format Fun Hash_fn List Option Pid Printf Program Rule String Tuple
