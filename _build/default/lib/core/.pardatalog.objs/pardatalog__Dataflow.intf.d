lib/core/dataflow.mli: Datalog Format
