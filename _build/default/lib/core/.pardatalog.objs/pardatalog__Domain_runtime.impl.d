lib/core/domain_runtime.ml: Array Database Datalog Domain Dscholten Fun Hashtbl Int List Mailbox Option Program Relation Rewrite Safra Seminaive Sim_runtime Stats String Tuple
