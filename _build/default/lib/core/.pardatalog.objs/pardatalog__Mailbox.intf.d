lib/core/mailbox.mli:
