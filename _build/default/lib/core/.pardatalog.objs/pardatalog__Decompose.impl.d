lib/core/decompose.ml: Array Atom Const Database Datalog Fun Hashtbl Int List Option Pid Program Relation Result Rule Seminaive Sim_runtime Stats Term Tuple
