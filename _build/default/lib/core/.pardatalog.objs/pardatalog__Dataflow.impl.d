lib/core/dataflow.ml: Analysis Array Atom Datalog Format Hashtbl List Rule String Term
