lib/core/netgraph.ml: Buffer Format List Pid Printf
