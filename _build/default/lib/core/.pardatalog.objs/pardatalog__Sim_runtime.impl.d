lib/core/sim_runtime.ml: Array Database Datalog Hashtbl List Logs Netgraph Option Pid Printf Program Queue Relation Rewrite Seminaive Stats String Tuple
