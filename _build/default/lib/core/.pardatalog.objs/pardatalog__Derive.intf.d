lib/core/derive.mli: Datalog Hash_fn Netgraph Pid
