lib/core/safra.ml:
