lib/core/strategy.ml: Analysis Array Atom Dataflow Datalog Discriminant Hash_fn List Pid Program Result Rewrite Rule String Term Tuple
