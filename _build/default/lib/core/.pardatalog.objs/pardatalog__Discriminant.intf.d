lib/core/discriminant.mli: Datalog Hash_fn
