lib/core/dscholten.mli:
