lib/core/verify.ml: Database Datalog Format List Netgraph Relation Rewrite Seminaive Sim_runtime Stats
