lib/core/rewrite.mli: Datalog Discriminant Format Hash_fn Pid
