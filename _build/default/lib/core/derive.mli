(** Compile-time derivation of the minimal network graph (Section 5).

    When the discriminating functions of a linear sirup are built from
    an arbitrary bit function [g : const → {0,1}] — either as the bit
    vector [(g(v₁),…,g(vₖ))] of Example 6 or as the linear form
    [Σ cᵢ·g(vᵢ)] of Example 7 — whether channel [i → j] can ever carry a
    tuple is decided by a small system of equations over [{0,1}]
    assignments, independently of the data:

    - a tuple [t(a₁,…,aₘ)] consumed at [j] satisfies
      [h(v(r)) = j] with each variable of [v(r)] read off the tuple;
    - a tuple produced at [i] by the {e exit} rule satisfies
      [h'(v(e)) = i] with the variables of [v(e)] read off the tuple
      where the exit head binds them (fresh bits elsewhere);
    - a tuple produced at [i] by the {e recursive} rule satisfies
      [h(v(r)) = i] with the variables of [v(r)] read off the tuple
      where the recursive head binds them (fresh bits elsewhere).

    Enumerating all bit assignments — exactly solving equations (4)–(5)
    of the paper for Example 7 — yields the edge set. *)

type input = {
  sirup : Datalog.Analysis.sirup;
  ve : string list;  (** Discriminating sequence of the exit rule. *)
  vr : string list;  (** Discriminating sequence of the recursive rule. *)
  spec : Hash_fn.spec;  (** The common shape of [h = h']. *)
}

val minimal_network : input -> (Netgraph.t, string) result
(** The derived network (self-loops included). Errors when [spec] is
    {!Hash_fn.Opaque}, when [vr] is not covered by the recursive body
    atom (the sending rule then broadcasts and the network is the
    complete graph — use {!Netgraph.complete}), when a sequence length
    disagrees with the spec's arity, or when a sequence variable
    appears in neither its rule's head atoms nor its body. *)

val space_of_spec : Hash_fn.spec -> Pid.space option
(** The processor space induced by a derivable spec. *)
