open Datalog

type input = {
  sirup : Analysis.sirup;
  ve : string list;
  vr : string list;
  spec : Hash_fn.spec;
}

let space_of_spec = function
  | Hash_fn.Opaque -> None
  | Hash_fn.Bitvec -> None (* needs the sequence length; see below *)
  | Hash_fn.Linear { coeffs; lo } ->
    let hi = Array.fold_left (fun acc c -> acc + max 0 c) 0 coeffs in
    Some (Pid.range ~lo ~hi)

let space_for spec ~arity =
  match spec with
  | Hash_fn.Opaque -> None
  | Hash_fn.Bitvec -> Some (Pid.bitvec arity)
  | Hash_fn.Linear _ as s -> space_of_spec s

(* A tiny union-find over integer symbols. *)
module Uf = struct
  type t = int array ref

  let create n : t = ref (Array.init n Fun.id)

  let ensure uf n =
    if n >= Array.length !uf then begin
      let fresh = Array.init (max (2 * Array.length !uf) (n + 1)) Fun.id in
      Array.blit !uf 0 fresh 0 (Array.length !uf);
      uf := fresh
    end

  let rec find uf i =
    ensure uf i;
    let p = !uf.(i) in
    if p = i then i
    else begin
      let r = find uf p in
      !uf.(i) <- r;
      r
    end

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then !uf.(max ri rj) <- min ri rj
end

(* Evaluate the spec on a vector of bits. *)
let eval_spec spec bits =
  match spec with
  | Hash_fn.Opaque -> assert false
  | Hash_fn.Bitvec ->
    Array.fold_left (fun acc b -> (acc lsl 1) lor b) 0 bits
  | Hash_fn.Linear { coeffs; lo } ->
    let v = ref 0 in
    Array.iteri (fun i c -> v := !v + (c * bits.(i))) coeffs;
    !v - lo

let minimal_network input =
  let ( let* ) r f = Result.bind r f in
  let s = input.sirup in
  let m = Array.length s.rec_vars in
  let k = List.length input.vr in
  let* () =
    if List.length input.ve <> k then
      Error "v(e) and v(r) must have the same length (h' = h)"
    else Ok ()
  in
  let* () =
    match input.spec with
    | Hash_fn.Opaque -> Error "cannot analyse an opaque discriminating function"
    | Hash_fn.Bitvec -> Ok ()
    | Hash_fn.Linear { coeffs; _ } ->
      if Array.length coeffs <> k then
        Error "linear spec arity differs from the sequence length"
      else Ok ()
  in
  (* Tuple position symbols are 0..m-1, canonicalized by the recursive
     body atom's repeated variables (a travelling tuple must match the
     sending pattern Ȳ). *)
  let rec_position v =
    let found = ref None in
    Array.iteri
      (fun i y -> if !found = None && String.equal y v then found := Some i)
      s.rec_vars;
    !found
  in
  let* consumption =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest ->
        (match rec_position v with
         | Some p -> go (p :: acc) rest
         | None ->
           Error
             (Printf.sprintf
                "v(r) variable %s is not in the recursive atom: the \
                 sending rule broadcasts and the network is complete"
                v))
    in
    go [] input.vr
  in
  let fresh_counter = ref m in
  let fresh () =
    let s = !fresh_counter in
    incr fresh_counter;
    s
  in
  (* One production analysis per producing rule. [head] is the atom
     whose instance is the travelling tuple; [seq] the discriminating
     sequence guarding the production. *)
  let production_symbols (head : Atom.t) seq =
    let uf = Uf.create (m + 8) in
    (* Unify tuple positions that the recursive atom forces equal. *)
    Array.iteri
      (fun i y ->
        match rec_position y with
        | Some first when first <> i -> Uf.union uf first i
        | _ -> ())
      s.rec_vars;
    (* Unify tuple positions that the producing head forces equal
       (repeated variables or repeated constants). *)
    let seen_vars = Hashtbl.create 8 in
    let seen_consts = Hashtbl.create 8 in
    Array.iteri
      (fun i term ->
        match term with
        | Term.Var v ->
          (match Hashtbl.find_opt seen_vars v with
           | Some first -> Uf.union uf first i
           | None -> Hashtbl.add seen_vars v i)
        | Term.Const c ->
          (match Hashtbl.find_opt seen_consts c with
           | Some first -> Uf.union uf first i
           | None -> Hashtbl.add seen_consts c i))
      head.Atom.args;
    (* Map each sequence variable to a symbol: a tuple position when the
       head binds it, a fresh bit otherwise. *)
    let fresh_for = Hashtbl.create 8 in
    let production =
      List.map
        (fun v ->
          match Hashtbl.find_opt seen_vars v with
          | Some p -> p
          | None ->
            (match Hashtbl.find_opt fresh_for v with
             | Some f -> f
             | None ->
               let f = fresh () in
               Hashtbl.add fresh_for v f;
               f))
        seq
    in
    (uf, production)
  in
  let modes =
    [
      production_symbols s.exit_rule.Rule.head input.ve;
      production_symbols s.rec_rule.Rule.head input.vr;
    ]
  in
  let nsymbols = !fresh_counter in
  let edges = ref [] in
  List.iter
    (fun (uf, production) ->
      (* Enumerate bit assignments over the root symbols. *)
      let roots =
        List.sort_uniq compare
          (List.map (Uf.find uf) (List.init nsymbols Fun.id))
      in
      let root_index = Hashtbl.create 16 in
      List.iteri (fun i r -> Hashtbl.add root_index r i) roots;
      let nroots = List.length roots in
      let bit_of assignment sym =
        (assignment lsr Hashtbl.find root_index (Uf.find uf sym)) land 1
      in
      for assignment = 0 to (1 lsl nroots) - 1 do
        let pbits =
          Array.of_list (List.map (bit_of assignment) production)
        in
        let cbits =
          Array.of_list (List.map (bit_of assignment) consumption)
        in
        let i = eval_spec input.spec pbits in
        let j = eval_spec input.spec cbits in
        edges := (i, j) :: !edges
      done)
    modes;
  let* space =
    match space_for input.spec ~arity:k with
    | Some s -> Ok s
    | None -> Error "cannot build a processor space for this spec"
  in
  Ok (Netgraph.make space !edges)
