type t = int

type space = {
  size : int;
  to_label : int -> string;
}

let size s = s.size

let label s i =
  if i < 0 || i >= s.size then
    invalid_arg (Printf.sprintf "Pid.label: %d not in [0,%d)" i s.size)
  else s.to_label i

let all s = List.init s.size Fun.id

let dense n =
  if n <= 0 then invalid_arg "Pid.dense: need at least one processor";
  { size = n; to_label = string_of_int }

let bitvec k =
  if k < 1 || k > 16 then invalid_arg "Pid.bitvec: k must be in [1,16]";
  let to_label i =
    let buf = Bytes.make (k + 2) '0' in
    Bytes.set buf 0 '(';
    Bytes.set buf (k + 1) ')';
    for bit = 0 to k - 1 do
      if (i lsr (k - 1 - bit)) land 1 = 1 then Bytes.set buf (bit + 1) '1'
    done;
    Bytes.to_string buf
  in
  { size = 1 lsl k; to_label }

let range ~lo ~hi =
  if hi < lo then invalid_arg "Pid.range: empty range";
  { size = hi - lo + 1; to_label = (fun i -> string_of_int (lo + i)) }

let of_label s str =
  let rec find i =
    if i >= s.size then None
    else if String.equal (s.to_label i) str then Some i
    else find (i + 1)
  in
  find 0

let pp s ppf i = Format.pp_print_string ppf (label s i)
