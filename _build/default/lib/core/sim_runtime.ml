open Datalog

let log_src = Logs.Src.create "pardatalog.sim" ~doc:"simulated parallel runtime"

module Log = (val Logs.src_log log_src)

type options = {
  resend_all : bool;
  pushdown : bool;
  replicate_base : bool;
  max_rounds : int;
  network : Netgraph.t option;
}

let default_options =
  {
    resend_all = false;
    pushdown = true;
    replicate_base = false;
    max_rounds = 1_000_000;
    network = None;
  }

type result = {
  answers : Database.t;
  stats : Stats.t;
}

module Key = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
end

module Ktbl = Hashtbl.Make (Key)

type proc_state = {
  pid : Pid.t;
  engine : Seminaive.t;
  outbox : (string * Tuple.t) Queue.t;  (* produced, not yet routed *)
  inbox : (string * Tuple.t) Queue.t;  (* delivered, not yet injected *)
  all_out : (string * Tuple.t) Queue.t;  (* cumulative, for resend_all *)
  mutable tuples_sent : int;
  mutable tuples_received : int;
  mutable tuples_accepted : int;
  mutable active_rounds : int;
  base_resident : int;
}

let build_edb ~replicate (rw : Rewrite.t) edb pid =
  let local = Database.create () in
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        let target = Database.declare local pred (Relation.arity rel) in
        Relation.iter
          (fun t ->
            if replicate || rw.resident pid pred t then
              ignore (Relation.add target t))
          rel)
    (Database.predicates edb);
  local

let run ?(options = default_options) (rw : Rewrite.t) ~edb =
  let nprocs = rw.nprocs in
  (* Base facts written in the program text join the EDB; derived facts
     are not supported by the rewrite. *)
  let edb =
    let combined = Database.copy edb in
    List.iter
      (fun (pred, tuple) ->
        if List.mem pred rw.derived then
          invalid_arg
            "Sim_runtime.run: derived-predicate facts are not supported"
        else ignore (Database.add_fact combined pred tuple))
      rw.original.Program.facts
    |> ignore;
    combined
  in
  let procs =
    Array.init nprocs (fun pid ->
        let local_edb =
          build_edb ~replicate:options.replicate_base rw edb pid
        in
        {
          pid;
          engine =
            Seminaive.create ~pushdown:options.pushdown rw.programs.(pid)
              ~edb:local_edb;
          outbox = Queue.create ();
          inbox = Queue.create ();
          all_out = Queue.create ();
          tuples_sent = 0;
          tuples_received = 0;
          tuples_accepted = 0;
          active_rounds = 0;
          base_resident = Database.total_tuples local_edb;
        })
  in
  let channel_tuples = Array.make_matrix nprocs nprocs 0 in
  (* One seen-set per channel: a (pred, tuple) pair travels each channel
     at most once — the paper's difference-based resend suppression. *)
  let channel_seen = Array.init nprocs (fun _ -> Array.init nprocs
                                            (fun _ -> Ktbl.create 64)) in
  let send_specs_for =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Rewrite.send_spec) ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt tbl s.ss_pred)
        in
        Hashtbl.replace tbl s.ss_pred (existing @ [ s ]))
      rw.sends;
    fun pred -> Option.value ~default:[] (Hashtbl.find_opt tbl pred)
  in
  let route_tuple ~dedup src pred tuple =
    List.iter
      (fun (s : Rewrite.send_spec) ->
        List.iter
          (fun dst ->
            let fresh =
              (not dedup)
              ||
              let seen = channel_seen.(src.pid).(dst) in
              if Ktbl.mem seen (pred, tuple) then false
              else begin
                Ktbl.add seen (pred, tuple) ();
                true
              end
            in
            if fresh then begin
              (match options.network with
               | Some net when not (Netgraph.mem net src.pid dst) ->
                 failwith
                   (Printf.sprintf
                      "Sim_runtime.run: tuple routed along missing channel \
                       %d -> %d (Definition 3 violation)"
                      src.pid dst)
               | _ -> ());
              channel_tuples.(src.pid).(dst) <-
                channel_tuples.(src.pid).(dst) + 1;
              src.tuples_sent <- src.tuples_sent + 1;
              Queue.add (pred, tuple) procs.(dst).inbox
            end)
          (s.ss_route src.pid tuple))
      (send_specs_for pred)
  in
  let collect_new src produced =
    List.iter
      (fun (out_name, tuple) ->
        let pred = Rewrite.original_pred out_name in
        if List.mem pred rw.derived then begin
          Queue.add (pred, tuple) src.outbox;
          if options.resend_all then Queue.add (pred, tuple) src.all_out
        end)
      produced
  in
  (* Initialization: bootstrap every processor's program; its
     production counts form trace row 0. *)
  let boot_row = Array.make nprocs 0 in
  Array.iter
    (fun p ->
      let produced = Seminaive.bootstrap p.engine in
      boot_row.(p.pid) <- List.length produced;
      collect_new p produced)
    procs;
  let rounds = ref 0 in
  let trace = ref [ boot_row ] in
  let continue = ref true in
  while !continue do
    if !rounds >= options.max_rounds then
      failwith "Sim_runtime.run: round budget exceeded";
    (* Sending. *)
    Array.iter
      (fun p ->
        if options.resend_all then begin
          Queue.clear p.outbox;
          Queue.iter
            (fun (pred, tuple) -> route_tuple ~dedup:false p pred tuple)
            p.all_out
        end
        else
          Queue.iter
            (fun (pred, tuple) -> route_tuple ~dedup:true p pred tuple)
            p.outbox;
        Queue.clear p.outbox)
      procs;
    (* Receiving: drain inboxes into the engines (duplicate
       elimination happens in inject). *)
    Array.iter
      (fun p ->
        Queue.iter
          (fun (pred, tuple) ->
            p.tuples_received <- p.tuples_received + 1;
            if Seminaive.inject p.engine (Rewrite.in_pred pred) tuple then
              p.tuples_accepted <- p.tuples_accepted + 1)
          p.inbox;
        Queue.clear p.inbox)
      procs;
    (* Processing: one semi-naive iteration per processor. *)
    let any_progress = ref false in
    let produced_this_round = ref 0 in
    let round_row = Array.make nprocs 0 in
    Array.iter
      (fun p ->
        if Seminaive.has_pending p.engine then begin
          let produced = Seminaive.step p.engine in
          p.active_rounds <- p.active_rounds + 1;
          any_progress := true;
          produced_this_round := !produced_this_round + List.length produced;
          round_row.(p.pid) <- List.length produced;
          collect_new p produced
        end)
      procs;
    trace := round_row :: !trace;
    incr rounds;
    Log.debug (fun m ->
        m "round %d: %d new tuples, %d tuples on channels so far" !rounds
          !produced_this_round
          (Array.fold_left
             (fun acc row -> Array.fold_left ( + ) acc row)
             0 channel_tuples));
    (* Termination: all processors idle, all channels empty. *)
    let work_left =
      !any_progress
      || Array.exists
           (fun p ->
             (not (Queue.is_empty p.outbox))
             || not (Queue.is_empty p.inbox))
           procs
      || Array.exists (fun p -> Seminaive.has_pending p.engine) procs
    in
    continue := work_left
  done;
  (* Final pooling: union the @out relations under the original names. *)
  let answers = Database.copy edb in
  let pooled = ref 0 in
  Array.iter
    (fun p ->
      let db = Seminaive.database p.engine in
      List.iter
        (fun pred ->
          match Database.find db (Rewrite.out_pred pred) with
          | None -> ()
          | Some rel ->
            pooled := !pooled + Relation.cardinal rel;
            let target =
              Database.declare answers pred (Relation.arity rel)
            in
            ignore (Relation.add_all target rel))
        rw.derived)
    procs;
  let engine_stats p = Seminaive.stats p.engine in
  let stats : Stats.t =
    {
      nprocs;
      rounds = !rounds;
      per_proc =
        Array.map
          (fun p ->
            let es = engine_stats p in
            {
              Stats.pid = p.pid;
              firings = es.Seminaive.firings;
              new_tuples = es.Seminaive.new_tuples;
              duplicate_firings = es.Seminaive.duplicate_firings;
              iterations = es.Seminaive.iterations;
              tuples_sent = p.tuples_sent;
              tuples_received = p.tuples_received;
              tuples_accepted = p.tuples_accepted;
              base_resident = p.base_resident;
              active_rounds = p.active_rounds;
            })
          procs;
      channel_tuples;
      pooled_tuples = !pooled;
      trace = List.rev !trace;
    }
  in
  { answers; stats }
