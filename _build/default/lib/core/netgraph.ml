type t = {
  space : Pid.space;
  edges : (Pid.t * Pid.t) list;  (* sorted, unique *)
}

let make space edges =
  let n = Pid.size space in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "Netgraph.make: edge (%d,%d) outside [0,%d)" i j n))
    edges;
  { space; edges = List.sort_uniq compare edges }

let space g = g.space
let edges g = g.edges
let mem g i j = List.mem (i, j) g.edges
let edge_count g = List.length g.edges

let complete space =
  let n = Pid.size space in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      edges := (i, j) :: !edges
    done
  done;
  { space; edges = !edges }

let self_only space =
  { space; edges = List.map (fun i -> (i, i)) (Pid.all space) }

let without_self g =
  { g with edges = List.filter (fun (i, j) -> i <> j) g.edges }

let union a b =
  if Pid.size a.space <> Pid.size b.space then
    invalid_arg "Netgraph.union: space size mismatch";
  { a with edges = List.sort_uniq compare (a.edges @ b.edges) }

let subgraph a b = List.for_all (fun e -> List.mem e b.edges) a.edges
let equal a b = subgraph a b && subgraph b a

let of_labels space pairs =
  let resolve l =
    match Pid.of_label space l with
    | Some i -> i
    | None -> invalid_arg ("Netgraph.of_labels: unknown label " ^ l)
  in
  make space (List.map (fun (a, b) -> (resolve a, resolve b)) pairs)

let pp ppf g =
  if g.edges = [] then Format.pp_print_string ppf "(no edges)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
      (fun ppf (i, j) ->
        Format.fprintf ppf "%s -> %s" (Pid.label g.space i)
          (Pid.label g.space j))
      ppf g.edges

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph network {\n";
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" i (Pid.label g.space i)))
    (Pid.all g.space);
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i j))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
