open Datalog

type t = {
  vars : string list;
  fn : Hash_fn.t;
}

let make ~vars ~fn =
  if List.length vars <> fn.Hash_fn.arity then
    invalid_arg
      (Printf.sprintf
         "Discriminant.make: %d variables but %s has arity %d"
         (List.length vars) fn.Hash_fn.name fn.Hash_fn.arity);
  { vars; fn }

let check_for_rule d (rule : Rule.t) =
  let bvs = Rule.body_vars rule in
  match List.filter (fun v -> not (List.mem v bvs)) d.vars with
  | [] -> Ok ()
  | missing ->
    Error
      (Printf.sprintf "variables %s do not appear in the body of %s"
         (String.concat ", " missing) (Rule.to_string rule))

let covered_positions vars atom =
  let position_of v =
    let found = ref None in
    Array.iteri
      (fun i term ->
        if !found = None && Term.equal term (Term.Var v) then found := Some i)
      atom.Atom.args;
    !found
  in
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | v :: rest ->
      (match position_of v with
       | Some p -> go (p :: acc) rest
       | None -> None)
  in
  go [] vars

let check_in_atom d atom =
  match covered_positions d.vars atom with
  | Some _ -> Ok ()
  | None ->
    Error
      (Printf.sprintf
         "discriminating sequence (%s) is not covered by atom %s"
         (String.concat ", " d.vars)
         (Format.asprintf "%a" Atom.pp atom))
