type color = White | Black

type token = {
  q : int;
  token_color : color;
}

type t = {
  mutable machine_color : color;
  mutable counter : int;  (* sends - receives *)
}

let create () = { machine_color = White; counter = 0 }
let color m = m.machine_color
let balance m = m.counter
let record_send m = m.counter <- m.counter + 1

let record_receive m =
  m.counter <- m.counter - 1;
  m.machine_color <- Black

let initial_token = { q = 0; token_color = White }

let forward m token =
  let passed =
    {
      q = token.q + m.counter;
      token_color =
        (match m.machine_color with Black -> Black | White -> token.token_color);
    }
  in
  m.machine_color <- White;
  passed

let evaluate m token =
  let verdict =
    if
      token.token_color = White
      && m.machine_color = White
      && token.q + m.counter = 0
    then `Terminated
    else `Try_again
  in
  m.machine_color <- White;
  verdict
