(** Discriminating sequences of variables and their validation.

    A discriminating sequence [v(r)] for a rule [r] is a sequence of
    variables appearing in [r]; together with a discriminating function
    it partitions the rule's ground substitutions between processors. *)

type t = {
  vars : string list;
  fn : Hash_fn.t;
}

val make : vars:string list -> fn:Hash_fn.t -> t
(** @raise Invalid_argument if the function's arity differs from the
    sequence length. *)

val check_for_rule : t -> Datalog.Rule.t -> (unit, string) result
(** The paper's effectiveness condition (end of Section 3): every
    variable of the sequence must appear in at least one body atom of
    the rule (which also makes the guarded rewritten rule safe). *)

val check_in_atom : t -> Datalog.Atom.t -> (unit, string) result
(** Section 6's condition: every variable of the sequence occurs in the
    given atom (there, the recursive atom [t(Ȳ)]), so that routing a
    tuple of that atom's predicate is decidable from the tuple alone. *)

val covered_positions : string list -> Datalog.Atom.t -> int array option
(** [covered_positions vars atom] gives, for each variable of [vars] in
    order, the position of its first occurrence among [atom]'s
    arguments — [None] if some variable does not occur or is matched
    against a constant. Used to route tuples by projection. *)
