open Datalog

type t = {
  arity : int;
  nodes : int list;
  edges : (int * int) list;
}

let of_sirup (s : Analysis.sirup) =
  let m = Array.length s.rec_vars in
  let edges = ref [] in
  for i = 0 to m - 1 do
    Array.iteri
      (fun j xj ->
        if String.equal s.rec_vars.(i) xj then
          edges := (i + 1, j + 1) :: !edges)
      s.head_vars
  done;
  let edges = List.sort_uniq compare !edges in
  let nodes = List.sort_uniq compare (List.map fst edges) in
  { arity = m; nodes; edges }

let successors g i =
  List.filter_map (fun (a, b) -> if a = i then Some b else None) g.edges

(* DFS for a cycle; returns the cycle's node sequence. *)
let find_cycle g =
  let state = Hashtbl.create 8 in
  (* 0 = in progress, 1 = done *)
  let exception Found of int list in
  let rec visit path i =
    match Hashtbl.find_opt state i with
    | Some 1 -> ()
    | Some 0 ->
      (* [i] is on the current path: the cycle runs from its first
         occurrence to the end of the path (which is [i] again). *)
      let chrono = List.rev path in
      let rec from_first = function
        | [] -> assert false
        | j :: rest -> if j = i then j :: rest else from_first rest
      in
      let tail = from_first chrono in
      let cycle =
        match List.rev tail with
        | _last_i :: rev_body -> List.rev rev_body
        | [] -> assert false
      in
      raise (Found cycle)
    | Some _ -> assert false
    | None ->
      Hashtbl.add state i 0;
      List.iter (fun j -> visit (j :: path) j) (successors g i);
      Hashtbl.replace state i 1
  in
  try
    List.iter (fun i -> visit [ i ] i) g.nodes;
    None
  with Found c -> Some c

type free_choice = {
  cycle : int list;
  ve : string list;
  vr : string list;
}

let communication_free_choice (s : Analysis.sirup) =
  let g = of_sirup s in
  match find_cycle g with
  | None -> None
  | Some cycle ->
    let exit_head = s.exit_rule.Rule.head in
    let exit_var_at p =
      match exit_head.Atom.args.(p - 1) with
      | Term.Var v -> Some v
      | Term.Const _ -> None
    in
    let ve =
      List.fold_right
        (fun p acc ->
          match acc, exit_var_at p with
          | Some acc, Some v -> Some (v :: acc)
          | _ -> None)
        cycle (Some [])
    in
    (match ve with
     | None -> None
     | Some ve ->
       let vr = List.map (fun p -> s.rec_vars.(p - 1)) cycle in
       Some { cycle; ve; vr })

let pp ppf g =
  if g.edges = [] then Format.pp_print_string ppf "(no edges)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
      (fun ppf (i, j) -> Format.fprintf ppf "%d -> %d" i j)
      ppf g.edges
