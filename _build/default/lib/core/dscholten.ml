type t = {
  pid : int;
  mutable parent : int option;  (* None: detached, or the root *)
  mutable is_engaged : bool;
  mutable deficit : int;  (* messages sent and not yet acknowledged *)
}

let create ~pid ~nprocs =
  if pid = 0 then
    { pid; parent = None; is_engaged = true; deficit = nprocs - 1 }
  else { pid; parent = Some 0; is_engaged = true; deficit = 0 }

let record_send t = t.deficit <- t.deficit + 1
let on_ack t = t.deficit <- t.deficit - 1

let on_data t ~src =
  if t.is_engaged then `Ack_now src
  else begin
    t.is_engaged <- true;
    t.parent <- Some src;
    `Engaged
  end

let on_passive t =
  if t.deficit > 0 then `Wait
  else if t.pid = 0 then `Terminated
  else
    match t.parent with
    | Some p when t.is_engaged ->
      t.is_engaged <- false;
      t.parent <- None;
      `Ack_parent p
    | _ -> `Wait

let deficit t = t.deficit
let engaged t = t.is_engaged
