(** The program transformations of Sections 3, 6 and 7.

    Given a Datalog program and one {!policy} per rule, {!make} derives
    the per-processor programs [T_i] (equivalently [Q_i]/[R_i] for
    linear sirups): every rule becomes a processing rule whose head
    writes the [@out] version of its predicate and whose derived body
    atoms read the [@in] versions, guarded by [h(v(r)) = i] for
    {!Uniform} policies. Sending rules become {!send_spec} routing
    functions; receiving and final pooling are performed by the
    runtimes. Base relations are fragmented between processors when
    every occurrence of the relation is covered by its rule's
    discriminating sequence, as prescribed at the end of Section 3. *)

type policy =
  | Uniform of Discriminant.t
      (** All processors share the discriminating function: the
          processing rule carries the guard [h(v(r)) = i] and produced
          tuples are routed by [h]. Schemes [Q] (Section 3) and [T]
          (Section 7). Non-redundant. *)
  | Local of {
      vars : string list;
      fn_for : Pid.t -> Hash_fn.t;
    }
      (** Each processor [i] routes by its own [hᵢ] and the processing
          rule is unguarded — the Section 6 scheme [R]. Requires the
          sequence to be covered by every derived body atom, so that
          routing is decided by the travelling tuple alone. May be
          redundant. *)

type send_spec = {
  ss_pred : string;  (** Original derived predicate being routed. *)
  ss_rule : int;  (** Index of the consuming rule (program order). *)
  ss_unicast : bool;  (** False = the spec broadcasts. *)
  ss_label : string;  (** e.g. ["h(Z)"] — for reports. *)
  ss_route : Pid.t -> Datalog.Tuple.t -> Pid.t list;
      (** [ss_route sender tuple] = destination processors. *)
}

type t = {
  original : Datalog.Program.t;
  nprocs : int;
  space : Pid.space;
  derived : string list;  (** Original derived predicates, sorted. *)
  programs : Datalog.Program.t array;  (** The program of each processor. *)
  sends : send_spec list;
  resident : Pid.t -> string -> Datalog.Tuple.t -> bool;
      (** Whether a base tuple is resident at a processor. *)
  fragmented : (string * bool) list;
      (** For each base predicate, whether it is fragmented (true) or
          shared/replicated (false). *)
}

val out_pred : string -> string
(** [t] ↦ [t@out] — the tuples generated at a processor. *)

val in_pred : string -> string
(** [t] ↦ [t@in] — the tuples received by a processor. *)

val original_pred : string -> string
(** Strip an [@in]/[@out] suffix, if any. *)

val make :
  ?space:Pid.space -> Datalog.Program.t -> policies:policy list -> t
(** Rewrite a program. [policies] pairs with the program's rules in
    order. All policy hash functions must map into spaces of one size,
    which becomes [nprocs]; [space] (default: the first policy's space)
    only provides processor labels.
    @raise Invalid_argument if the program fails {!Datalog.Program.check},
    the policy list length mismatches, a discriminating sequence is not
    contained in its rule's body, a {!Local} policy is applied to a rule
    without derived body atoms or its sequence is not covered by every
    derived body atom, or the policies disagree on the processor
    count. *)

val pp : Format.formatter -> t -> unit
(** Print the per-processor programs and send specifications. *)
