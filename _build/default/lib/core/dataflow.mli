(** Dataflow graphs of linear recursive rules (Definition 2) and the
    communication-free choice of Theorem 3.

    For a recursive rule with head [t(X₁,…,Xₘ)] and recursive body atom
    [t(Y₁,…,Yₘ)], the dataflow graph has an edge [i → j] whenever
    [Yᵢ = Xⱼ]: the value at argument position [i] of a consumed tuple
    reappears at position [j] of the produced tuple. Positions are
    1-based, as in the paper. *)

type t = {
  arity : int;
  nodes : int list;  (** Positions [i] with some edge [i → j]. *)
  edges : (int * int) list;  (** Sorted, deduplicated. *)
}

val of_sirup : Datalog.Analysis.sirup -> t

val find_cycle : t -> int list option
(** A cycle [p₁; …; pₖ] with edges [p₁→p₂→…→pₖ→p₁] (a self-loop yields
    [[p]]), if the graph has one. *)

type free_choice = {
  cycle : int list;
  ve : string list;
      (** Discriminating sequence for the exit rule: the exit head's
          variables at the cycle positions. *)
  vr : string list;
      (** Discriminating sequence for the recursive rule: the recursive
          atom's variables at the cycle positions. *)
}

val communication_free_choice : Datalog.Analysis.sirup -> free_choice option
(** Theorem 3: when the dataflow graph has a cycle, discriminating on
    the cycle positions with a {e symmetric} function (one invariant
    under permutations of its arguments, e.g.
    {!Hash_fn.symmetric_modulo}) yields a parallel execution with no
    inter-processor communication. Returns [None] when there is no
    cycle, or when the exit head has a constant at a cycle position. *)

val pp : Format.formatter -> t -> unit
(** Prints like the paper's figures: [1 -> 2  2 -> 3]. *)
