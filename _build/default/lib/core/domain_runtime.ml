open Datalog

type detector =
  | Safra
  | Dijkstra_scholten

(* Messages are addressed to processors; mailboxes belong to domains,
   which demultiplex. *)
type msg =
  | Data of { src : int; dst : int; batch : (string * Tuple.t) list }
  | Token of { dst : int; token : Safra.token }
  | Ack of { dst : int }
  | Stop

module Key = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
end

module Ktbl = Hashtbl.Make (Key)

(* Per-processor state, owned by exactly one domain. *)
type proc_state = {
  pid : int;
  engine : Seminaive.t;
  safra : Safra.t;
  ds : Dscholten.t;
  mutable held_token : Safra.token option;
  mutable probe_outstanding : bool;  (* pid 0 only *)
  sent_row : int array;
  mutable received : int;
  mutable accepted : int;
  channel_seen : unit Ktbl.t array;  (* per destination *)
  base_resident : int;
}

type worker_result = {
  wr_pid : int;
  wr_db : Database.t;
  wr_stats : Seminaive.stats;
  wr_sent_row : int array;
  wr_received : int;
  wr_accepted : int;
  wr_base_resident : int;
}

let build_edb (rw : Rewrite.t) edb pid =
  let local = Database.create () in
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        let target = Database.declare local pred (Relation.arity rel) in
        Relation.iter
          (fun t ->
            if rw.resident pid pred t then ignore (Relation.add target t))
          rel)
    (Database.predicates edb);
  local

let worker detector (rw : Rewrite.t) mailboxes ~domain_of ~own_pids local_edbs
    my_domain =
  let n = rw.nprocs in
  let my_mailbox = mailboxes.(my_domain) in
  let send_to_pid pid msg = Mailbox.push mailboxes.(domain_of pid) msg in
  let send_specs_for =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Rewrite.send_spec) ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt tbl s.ss_pred)
        in
        Hashtbl.replace tbl s.ss_pred (existing @ [ s ]))
      rw.sends;
    fun pred -> Option.value ~default:[] (Hashtbl.find_opt tbl pred)
  in
  let procs =
    List.map
      (fun pid ->
        {
          pid;
          engine = Seminaive.create rw.programs.(pid) ~edb:local_edbs.(pid);
          safra = Safra.create ();
          ds = Dscholten.create ~pid ~nprocs:n;
          held_token = None;
          probe_outstanding = false;
          sent_row = Array.make n 0;
          received = 0;
          accepted = 0;
          channel_seen = Array.init n (fun _ -> Ktbl.create 64);
          base_resident = Database.total_tuples local_edbs.(pid);
        })
      own_pids
  in
  let proc_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.add tbl p.pid p) procs;
    fun pid -> Hashtbl.find tbl pid
  in
  let stopped = ref false in
  let route p produced =
    let batches = Array.make n [] in
    List.iter
      (fun (out_name, tuple) ->
        let pred = Rewrite.original_pred out_name in
        if List.mem pred rw.derived then
          List.iter
            (fun (s : Rewrite.send_spec) ->
              List.iter
                (fun dst ->
                  let seen = p.channel_seen.(dst) in
                  if not (Ktbl.mem seen (pred, tuple)) then begin
                    Ktbl.add seen (pred, tuple) ();
                    batches.(dst) <- (pred, tuple) :: batches.(dst)
                  end)
                (s.ss_route p.pid tuple))
            (send_specs_for pred))
      produced;
    Array.iteri
      (fun dst batch ->
        if batch <> [] then begin
          p.sent_row.(dst) <- p.sent_row.(dst) + List.length batch;
          (match detector with
           | Safra -> Safra.record_send p.safra
           | Dijkstra_scholten -> Dscholten.record_send p.ds);
          send_to_pid dst
            (Data { src = p.pid; dst; batch = List.rev batch })
        end)
      batches
  in
  let announce_termination () =
    for d = 0 to Array.length mailboxes - 1 do
      Mailbox.push mailboxes.(d) Stop
    done;
    stopped := true
  in
  let dispatch = function
    | Data { src; dst; batch } ->
      let p = proc_of dst in
      (match detector with
       | Safra -> Safra.record_receive p.safra
       | Dijkstra_scholten ->
         (match Dscholten.on_data p.ds ~src with
          | `Ack_now target -> send_to_pid target (Ack { dst = target })
          | `Engaged -> ()));
      List.iter
        (fun (pred, tuple) ->
          p.received <- p.received + 1;
          if Seminaive.inject p.engine (Rewrite.in_pred pred) tuple then
            p.accepted <- p.accepted + 1)
        batch
    | Token { dst; token } -> (proc_of dst).held_token <- Some token
    | Ack { dst } -> Dscholten.on_ack (proc_of dst).ds
    | Stop -> stopped := true
  in
  (* Returns true when some control action was taken (so the caller
     should not block yet). *)
  let passive_action p =
    match detector with
    | Safra ->
      (match p.held_token with
       | Some token when p.pid <> 0 ->
         p.held_token <- None;
         send_to_pid (p.pid - 1)
           (Token { dst = p.pid - 1; token = Safra.forward p.safra token });
         true
       | Some token ->
         p.held_token <- None;
         (match Safra.evaluate p.safra token with
          | `Terminated ->
            announce_termination ();
            true
          | `Try_again ->
            send_to_pid (n - 1)
              (Token { dst = n - 1; token = Safra.initial_token });
            true)
       | None ->
         if p.pid = 0 && not p.probe_outstanding then begin
           p.probe_outstanding <- true;
           send_to_pid (n - 1)
             (Token { dst = n - 1; token = Safra.initial_token });
           true
         end
         else false)
    | Dijkstra_scholten ->
      (match Dscholten.on_passive p.ds with
       | `Ack_parent parent ->
         send_to_pid parent (Ack { dst = parent });
         true
       | `Terminated ->
         announce_termination ();
         true
       | `Wait -> false)
  in
  List.iter (fun p -> route p (Seminaive.bootstrap p.engine)) procs;
  while not !stopped do
    List.iter dispatch (Mailbox.drain my_mailbox);
    if not !stopped then begin
      let worked = ref false in
      List.iter
        (fun p ->
          if Seminaive.has_pending p.engine then begin
            worked := true;
            route p (Seminaive.step p.engine)
          end)
        procs;
      if (not !worked) && not !stopped then begin
        (* All owned processors idle: run control actions; if nothing
           moved, block until a message arrives. *)
        let acted =
          List.fold_left
            (fun acc p -> if !stopped then acc else passive_action p || acc)
            false procs
        in
        if (not acted) && not !stopped then
          List.iter dispatch (Mailbox.drain_blocking my_mailbox)
      end
    end
  done;
  List.map
    (fun p ->
      {
        wr_pid = p.pid;
        wr_db = Seminaive.database p.engine;
        wr_stats = Seminaive.stats p.engine;
        wr_sent_row = p.sent_row;
        wr_received = p.received;
        wr_accepted = p.accepted;
        wr_base_resident = p.base_resident;
      })
    procs

let run ?(detector = Safra) ?domains (rw : Rewrite.t) ~edb =
  let n = rw.nprocs in
  let ndomains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Domain_runtime.run: domains must be >= 1";
      min d n
    | None -> n
  in
  let edb =
    let combined = Database.copy edb in
    List.iter
      (fun (pred, tuple) ->
        if List.mem pred rw.derived then
          invalid_arg
            "Domain_runtime.run: derived-predicate facts are not supported"
        else ignore (Database.add_fact combined pred tuple))
      rw.original.Program.facts;
    combined
  in
  let mailboxes = Array.init ndomains (fun _ -> Mailbox.create ()) in
  let domain_of pid = pid mod ndomains in
  let local_edbs = Array.init n (fun pid -> build_edb rw edb pid) in
  let own_pids d =
    List.filter (fun pid -> domain_of pid = d) (List.init n Fun.id)
  in
  let spawned =
    Array.init ndomains (fun d ->
        Domain.spawn (fun () ->
            worker detector rw mailboxes ~domain_of ~own_pids:(own_pids d)
              local_edbs d))
  in
  let results =
    Array.to_list spawned |> List.concat_map Domain.join
    |> List.sort (fun a b -> Int.compare a.wr_pid b.wr_pid)
    |> Array.of_list
  in
  let answers = Database.copy edb in
  let pooled = ref 0 in
  Array.iter
    (fun r ->
      List.iter
        (fun pred ->
          match Database.find r.wr_db (Rewrite.out_pred pred) with
          | None -> ()
          | Some rel ->
            pooled := !pooled + Relation.cardinal rel;
            let target =
              Database.declare answers pred (Relation.arity rel)
            in
            ignore (Relation.add_all target rel))
        rw.derived)
    results;
  let channel_tuples =
    Array.init n (fun pid -> results.(pid).wr_sent_row)
  in
  let rounds =
    Array.fold_left
      (fun acc r -> max acc r.wr_stats.Seminaive.iterations)
      0 results
  in
  let stats : Stats.t =
    {
      nprocs = n;
      rounds;
      per_proc =
        Array.mapi
          (fun pid r ->
            {
              Stats.pid;
              firings = r.wr_stats.Seminaive.firings;
              new_tuples = r.wr_stats.Seminaive.new_tuples;
              duplicate_firings = r.wr_stats.Seminaive.duplicate_firings;
              iterations = r.wr_stats.Seminaive.iterations;
              tuples_sent = Array.fold_left ( + ) 0 r.wr_sent_row;
              tuples_received = r.wr_received;
              tuples_accepted = r.wr_accepted;
              base_resident = r.wr_base_resident;
              active_rounds = r.wr_stats.Seminaive.iterations;
            })
          results;
      channel_tuples;
      pooled_tuples = !pooled;
      trace = [];
    }
  in
  { Sim_runtime.answers; stats }
