(** Global string interning table.

    Symbols are dense non-negative integers. Interning the same string
    twice yields the same symbol. The table is protected by a mutex so
    that it can be consulted from several domains (interning normally
    happens while loading data, before any domain is spawned, but
    printers may run anywhere). *)

type sym = private int
(** An interned string. *)

val intern : string -> sym
(** [intern s] returns the unique symbol for [s], creating it if
    needed. *)

val name : sym -> string
(** [name sym] is the string that was interned to obtain [sym].
    @raise Invalid_argument if [sym] was not produced by {!intern}. *)

val mem : string -> bool
(** [mem s] is [true] iff [s] has already been interned. *)

val count : unit -> int
(** Number of distinct symbols interned so far. *)

val to_int : sym -> int
(** The integer identity of a symbol. *)

val compare : sym -> sym -> int
val equal : sym -> sym -> bool
val pp : Format.formatter -> sym -> unit
