(** Naive bottom-up evaluation (reference semantics).

    Repeats a full pass over all rules until no new tuple appears. Used
    as the oracle the semi-naive engine and the parallel runtimes are
    tested against. *)

val evaluate : ?max_iterations:int -> Program.t -> Database.t -> Database.t
(** [evaluate p edb] returns a fresh database containing [edb], the
    program's facts, and the least model of the derived predicates. The
    input database is not modified.
    @raise Failure if [max_iterations] passes do not reach a
    fixpoint. *)
