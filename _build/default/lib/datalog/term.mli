(** Terms: variables or constants. *)

type t =
  | Var of string  (** Uppercase identifiers in the concrete syntax. *)
  | Const of Const.t

val var : string -> t
val const : Const.t -> t
val int : int -> t
val sym : string -> t

val is_var : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
