(** Atoms: a predicate symbol applied to terms. *)

type t = {
  pred : string;
  args : Term.t array;
}

val make : string -> Term.t list -> t
val make_a : string -> Term.t array -> t
val arity : t -> int

val vars : t -> string list
(** Variables of the atom, in first-occurrence order, without
    duplicates. *)

val is_ground : t -> bool

val to_tuple : t -> Tuple.t option
(** [Some] tuple of the arguments when the atom is ground. *)

val rename_pred : string -> t -> t
(** Replace the predicate symbol, keeping the arguments. *)

val subst : (string * Const.t) list -> t -> t
(** Apply a substitution to the atom's variables. Unbound variables are
    left in place. *)

val matches_tuple : t -> Tuple.t -> bool
(** Whether a tuple unifies with the atom's argument pattern: constants
    must be equal and positions sharing a variable must hold equal
    constants. (Used by the sending rules, whose bodies carry the
    consuming atom's pattern.)
    @raise Invalid_argument on arity mismatch. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
