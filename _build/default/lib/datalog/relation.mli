(** Mutable sets of tuples with on-demand hash indexes.

    A relation stores tuples of one arity, deduplicated. Lookups by a
    pattern of bound positions build (and thereafter maintain) a hash
    index keyed by the projection on those positions. *)

type t

val create : ?initial_size:int -> arity:int -> unit -> t
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> bool
(** [add r t] inserts [t]; returns [true] iff [t] was new.
    @raise Invalid_argument on arity mismatch. *)

val add_all : t -> t -> int
(** [add_all dst src] inserts every tuple of [src] into [dst]; returns
    the number of tuples that were new. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list

val sorted_elements : t -> Tuple.t list
(** Elements in {!Tuple.compare} order: a canonical form for equality
    tests and printing. *)

val lookup : t -> positions:int array -> key:Const.t array -> Tuple.t list
(** All tuples whose projection on [positions] equals [key]. The first
    call with a given [positions] pattern builds an index, which later
    {!add}s keep up to date. [positions = [||]] returns all tuples. *)

val copy : t -> t
val clear : t -> unit
val of_list : arity:int -> Tuple.t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val index_count : t -> int
(** Number of materialized indexes (for tests). *)
