(** Parser for textual Datalog.

    Grammar (comments run from ['%'] or ["//"] to end of line):

    {v
    program  ::= clause*
    clause   ::= atom '.'                      (fact, if ground)
               | atom ':-' atom (',' atom)* '.'
    atom     ::= ident '(' term (',' term)* ')' | ident
    term     ::= VARIABLE | INTEGER | ident | 'quoted symbol'
    v}

    Identifiers starting with an uppercase letter or ['_'] are
    variables; others are predicate or constant symbols. *)

type error = {
  line : int;
  column : int;
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val program : string -> (Program.t, error) result
(** Parse a whole program (rules and ground facts). *)

val rule : string -> (Rule.t, error) result
(** Parse a single clause. *)

val atom : string -> (Atom.t, error) result

val tuples : string -> ((string * Tuple.t) list, error) result
(** Parse a sequence of ground facts (EDB file syntax). *)

val program_exn : string -> Program.t
(** @raise Invalid_argument on parse errors — convenient in tests and
    examples. *)

val rule_exn : string -> Rule.t
val atom_exn : string -> Atom.t
