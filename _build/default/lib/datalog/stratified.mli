(** SCC-stratified sequential evaluation.

    Evaluates the strongly connected components of the dependency graph
    bottom-up: each component runs a semi-naive fixpoint treating the
    relations of lower components as extensional. For programs with a
    deep dependency structure this avoids re-visiting completed
    components on every iteration. The enumerated set of successful
    ground substitutions — and hence the firing count — is identical to
    {!Seminaive.evaluate}'s, which the test suite checks. *)

val evaluate :
  ?pushdown:bool -> ?reorder:bool -> Program.t -> Database.t ->
  Database.t * Seminaive.stats
(** The least model plus aggregate statistics across components
    ([iterations] sums the per-component iteration counts). The input
    database is not modified.
    @raise Invalid_argument if the program fails {!Program.check}. *)
