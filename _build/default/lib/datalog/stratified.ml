let evaluate ?pushdown ?reorder program edb =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Stratified.evaluate: " ^ msg));
  let components = Analysis.sccs program in
  let db = Database.copy edb in
  ignore (Database.merge_into ~dst:db ~src:(Program.facts_db program));
  let totals =
    ref
      {
        Seminaive.iterations = 0;
        firings = 0;
        new_tuples = 0;
        duplicate_firings = 0;
      }
  in
  List.iter
    (fun component ->
      let rules =
        List.filter
          (fun (r : Rule.t) -> List.mem r.head.Atom.pred component)
          (Program.rules program)
      in
      if rules <> [] then begin
        (* Lower components' results are already in [db] and look
           extensional to this stratum. *)
        let engine =
          Seminaive.create ?pushdown ?reorder (Program.make rules) ~edb:db
        in
        Seminaive.run_to_fixpoint engine;
        let produced = Seminaive.database engine in
        List.iter
          (fun pred ->
            match Database.find produced pred with
            | Some rel ->
              let target =
                Database.declare db pred (Relation.arity rel)
              in
              ignore (Relation.add_all target rel)
            | None -> ())
          component;
        let s = Seminaive.stats engine in
        totals :=
          {
            Seminaive.iterations =
              !totals.Seminaive.iterations + s.Seminaive.iterations;
            firings = !totals.Seminaive.firings + s.Seminaive.firings;
            new_tuples = !totals.Seminaive.new_tuples + s.Seminaive.new_tuples;
            duplicate_firings =
              !totals.Seminaive.duplicate_firings
              + s.Seminaive.duplicate_firings;
          }
      end)
    components;
  (db, !totals)
