type t = {
  pred : string;
  args : Term.t array;
}

let make pred args = { pred; args = Array.of_list args }
let make_a pred args = { pred; args }
let arity a = Array.length a.args

let vars a =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (function
      | Term.Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          acc := v :: !acc
        end
      | Term.Const _ -> ())
    a.args;
  List.rev !acc

let is_ground a = Array.for_all (fun t -> not (Term.is_var t)) a.args

let to_tuple a =
  if is_ground a then
    Some
      (Tuple.make
         (Array.map
            (function Term.Const c -> c | Term.Var _ -> assert false)
            a.args))
  else None

let rename_pred pred a = { a with pred }

let subst env a =
  let apply = function
    | Term.Var v as t ->
      (match List.assoc_opt v env with
       | Some c -> Term.Const c
       | None -> t)
    | Term.Const _ as t -> t
  in
  { a with args = Array.map apply a.args }

let matches_tuple a tuple =
  if Array.length a.args <> Tuple.arity tuple then
    invalid_arg "Atom.matches_tuple: arity mismatch";
  let binding = Hashtbl.create 4 in
  let ok = ref true in
  Array.iteri
    (fun i term ->
      if !ok then
        match term with
        | Term.Const c ->
          if not (Const.equal c (Tuple.get tuple i)) then ok := false
        | Term.Var v ->
          (match Hashtbl.find_opt binding v with
           | Some c ->
             if not (Const.equal c (Tuple.get tuple i)) then ok := false
           | None -> Hashtbl.add binding v (Tuple.get tuple i)))
    a.args;
  !ok

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i = la then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let pp ppf a =
  if Array.length a.args = 0 then Format.pp_print_string ppf a.pred
  else
    Format.fprintf ppf "%s(@[%a@])" a.pred
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Term.pp)
      a.args
