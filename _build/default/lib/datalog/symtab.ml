type sym = int

(* The table grows but never shrinks; symbols are never freed. A single
   global table keeps constants comparable across databases, which the
   parallel runtimes rely on when tuples travel between processors. *)

let lock = Mutex.create ()
let by_name : (string, int) Hashtbl.t = Hashtbl.create 1024
let by_sym : string array ref = ref (Array.make 1024 "")
let next = ref 0

let ensure_capacity n =
  if n >= Array.length !by_sym then begin
    let fresh = Array.make (max (2 * Array.length !by_sym) (n + 1)) "" in
    Array.blit !by_sym 0 fresh 0 (Array.length !by_sym);
    by_sym := fresh
  end

let intern s =
  Mutex.lock lock;
  let sym =
    match Hashtbl.find_opt by_name s with
    | Some sym -> sym
    | None ->
      let sym = !next in
      incr next;
      ensure_capacity sym;
      !by_sym.(sym) <- s;
      Hashtbl.add by_name s sym;
      sym
  in
  Mutex.unlock lock;
  sym

let name sym =
  Mutex.lock lock;
  let ok = sym >= 0 && sym < !next in
  let s = if ok then !by_sym.(sym) else "" in
  Mutex.unlock lock;
  if not ok then invalid_arg "Symtab.name: unknown symbol";
  s

let mem s =
  Mutex.lock lock;
  let r = Hashtbl.mem by_name s in
  Mutex.unlock lock;
  r

let count () =
  Mutex.lock lock;
  let n = !next in
  Mutex.unlock lock;
  n

let to_int sym = sym
let compare = Int.compare
let equal = Int.equal
let pp ppf sym = Format.pp_print_string ppf (name sym)
