module Tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type index = Tuple.t list ref Tbl.t
(* Keyed by the projection of a tuple on the index's positions. *)

type t = {
  arity : int;
  seen : unit Tbl.t;
  mutable elements : Tuple.t list;  (* reverse insertion order *)
  mutable size : int;
  indexes : (int list, int array * index) Hashtbl.t;
}

let create ?(initial_size = 64) ~arity () =
  {
    arity;
    seen = Tbl.create initial_size;
    elements = [];
    size = 0;
    indexes = Hashtbl.create 4;
  }

let arity r = r.arity
let cardinal r = r.size
let is_empty r = r.size = 0
let mem r t = Tbl.mem r.seen t

let index_insert (positions, idx) t =
  let key = Tuple.project t positions in
  match Tbl.find_opt idx key with
  | Some cell -> cell := t :: !cell
  | None -> Tbl.add idx key (ref [ t ])

let add r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: arity %d, expected %d" (Tuple.arity t)
         r.arity);
  if Tbl.mem r.seen t then false
  else begin
    Tbl.add r.seen t ();
    r.elements <- t :: r.elements;
    r.size <- r.size + 1;
    Hashtbl.iter (fun _ entry -> index_insert entry t) r.indexes;
    true
  end

let iter f r = List.iter f (List.rev r.elements)
let fold f r init = List.fold_left (fun acc t -> f t acc) init r.elements
let to_list r = List.rev r.elements

let add_all dst src =
  fold (fun t n -> if add dst t then n + 1 else n) src 0

let sorted_elements r = List.sort Tuple.compare r.elements

let build_index r positions =
  let idx = Tbl.create (max 16 r.size) in
  let entry = (positions, idx) in
  List.iter (fun t -> index_insert entry t) r.elements;
  Hashtbl.add r.indexes (Array.to_list positions) entry;
  entry

let lookup r ~positions ~key =
  if Array.length positions = 0 then to_list r
  else begin
    let _, idx =
      match Hashtbl.find_opt r.indexes (Array.to_list positions) with
      | Some entry -> entry
      | None -> build_index r positions
    in
    match Tbl.find_opt idx (Tuple.make key) with
    | Some cell -> !cell
    | None -> []
  end

let copy r =
  let fresh = create ~initial_size:(max 16 r.size) ~arity:r.arity () in
  iter (fun t -> ignore (add fresh t)) r;
  fresh

let clear r =
  Tbl.reset r.seen;
  r.elements <- [];
  r.size <- 0;
  Hashtbl.reset r.indexes

let of_list ~arity tuples =
  let r = create ~arity () in
  List.iter (fun t -> ignore (add r t)) tuples;
  r

let equal a b =
  a.arity = b.arity && a.size = b.size
  && List.for_all (fun t -> mem b t) a.elements

let pp ppf r =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (sorted_elements r)

let index_count r = Hashtbl.length r.indexes
