(** Immutable tuples of constants.

    A tuple is the unit of storage in a {!Relation} and the unit of
    communication between processors in the parallel runtimes. *)

type t = Const.t array
(** Owned by the tuple after construction: callers must not mutate the
    array they pass to {!make}. *)

val make : Const.t array -> t
val of_list : Const.t list -> t
val arity : t -> int
val get : t -> int -> Const.t

val project : t -> int array -> t
(** [project t positions] is the sub-tuple of [t] at [positions], in
    order. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(c1, c2, ...)]. *)

val to_string : t -> string

val of_ints : int list -> t
(** Convenience: a tuple of integer constants. *)

val of_syms : string list -> t
(** Convenience: a tuple of symbol constants. *)
