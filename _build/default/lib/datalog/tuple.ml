type t = Const.t array

let make a = a
let of_list = Array.of_list
let arity = Array.length
let get t i = t.(i)

let project t positions = Array.map (fun p -> t.(p)) positions

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Const.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash t =
  (* Polynomial combination of per-constant hashes; cheap and stable. *)
  let h = ref (Array.length t) in
  for i = 0 to Array.length t - 1 do
    h := (!h * 0x01000193) lxor Const.hash t.(i)
  done;
  !h land max_int

let pp ppf t =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Const.pp)
    t

let to_string t = Format.asprintf "%a" pp t
let of_ints is = of_list (List.map Const.int is)
let of_syms ss = of_list (List.map Const.sym ss)
