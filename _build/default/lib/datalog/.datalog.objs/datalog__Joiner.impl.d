lib/datalog/joiner.ml: Array Atom Const Fun Hashtbl List Relation Rule String Term Tuple
