lib/datalog/naive.ml: Array Database Joiner List Program
