lib/datalog/seminaive.ml: Array Atom Database Format Joiner List Program Relation
