lib/datalog/term.mli: Const Format
