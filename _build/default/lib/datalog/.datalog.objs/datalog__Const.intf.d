lib/datalog/const.mli: Format Symtab
