lib/datalog/joiner.mli: Relation Rule Tuple
