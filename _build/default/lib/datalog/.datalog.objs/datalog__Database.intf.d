lib/datalog/database.mli: Format Relation Tuple
