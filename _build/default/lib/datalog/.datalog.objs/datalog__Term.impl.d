lib/datalog/term.ml: Const Format String
