lib/datalog/tuple.mli: Const Format
