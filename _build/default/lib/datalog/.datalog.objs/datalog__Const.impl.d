lib/datalog/const.ml: Format Int String Symtab
