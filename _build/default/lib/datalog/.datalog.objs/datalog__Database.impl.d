lib/datalog/database.ml: Format Hashtbl List Option Printf Relation String Tuple
