lib/datalog/stratified.mli: Database Program Seminaive
