lib/datalog/symtab.mli: Format
