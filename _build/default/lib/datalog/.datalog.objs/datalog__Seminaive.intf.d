lib/datalog/seminaive.mli: Database Format Program Rule Tuple
