lib/datalog/symtab.ml: Array Format Hashtbl Int Mutex
