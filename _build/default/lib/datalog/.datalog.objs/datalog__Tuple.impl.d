lib/datalog/tuple.ml: Array Const Format Int List
