lib/datalog/relation.ml: Array Format Hashtbl List Printf Tuple
