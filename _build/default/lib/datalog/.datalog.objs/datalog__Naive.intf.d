lib/datalog/naive.mli: Database Program
