lib/datalog/rule.ml: Array Atom Const Format Hashtbl List
