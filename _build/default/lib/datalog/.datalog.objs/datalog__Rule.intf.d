lib/datalog/rule.mli: Atom Const Format
