lib/datalog/atom.ml: Array Const Format Hashtbl Int List String Term Tuple
