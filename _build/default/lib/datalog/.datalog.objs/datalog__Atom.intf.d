lib/datalog/atom.mli: Const Format Term Tuple
