lib/datalog/stratified.ml: Analysis Atom Database List Program Relation Rule Seminaive
