lib/datalog/parser.mli: Atom Format Program Rule Tuple
