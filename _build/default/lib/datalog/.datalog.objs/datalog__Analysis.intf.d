lib/datalog/analysis.mli: Atom Program Rule
