lib/datalog/analysis.ml: Array Atom Hashtbl List Printf Program Result Rule String Term
