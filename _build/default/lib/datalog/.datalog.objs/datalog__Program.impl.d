lib/datalog/program.ml: Atom Database Format Hashtbl List Printf Rule String Tuple
