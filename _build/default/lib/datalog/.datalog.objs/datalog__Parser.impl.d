lib/datalog/parser.ml: Atom Format List Printf Program Rule String Term
