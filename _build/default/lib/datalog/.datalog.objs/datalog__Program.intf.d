lib/datalog/program.mli: Database Format Rule Tuple
