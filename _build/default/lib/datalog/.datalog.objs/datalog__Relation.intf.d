lib/datalog/relation.mli: Const Format Tuple
