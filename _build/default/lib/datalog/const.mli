(** Database constants.

    A constant is either an integer or an interned symbol (a lowercase
    identifier or quoted string in the concrete syntax). Constants are
    totally ordered and hashable, so they can key relations and be fed
    to discriminating functions. *)

type t =
  | Int of int
  | Sym of Symtab.sym

val int : int -> t
val sym : string -> t
(** [sym s] interns [s] and wraps it. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** A well-mixed hash (splitmix64 finalizer), suitable as the basis of
    discriminating functions: consecutive integers do not map to
    consecutive hashes. *)

val hash_seeded : int -> t -> int
(** [hash_seeded seed c] is an independent hash family member; distinct
    seeds give (practically) independent functions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
