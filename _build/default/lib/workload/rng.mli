(** Deterministic splitmix64 pseudo-random numbers.

    Workloads must be reproducible across runs and independent of any
    global state, so generators carry their own state and are seeded
    explicitly. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from (and advancing) the parent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
