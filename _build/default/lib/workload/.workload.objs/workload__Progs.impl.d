lib/workload/progs.ml: Datalog Parser
