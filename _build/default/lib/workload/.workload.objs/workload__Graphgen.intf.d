lib/workload/graphgen.mli: Rng
