lib/workload/rng.mli:
