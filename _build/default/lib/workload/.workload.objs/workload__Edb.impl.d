lib/workload/edb.ml: Array Database Datalog Hashtbl List Option Relation Rng Tuple
