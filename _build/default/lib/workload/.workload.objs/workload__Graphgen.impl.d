lib/workload/graphgen.ml: Array Hashtbl List Rng
