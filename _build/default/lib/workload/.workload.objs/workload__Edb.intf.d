lib/workload/edb.mli: Database Datalog Graphgen Rng Tuple
