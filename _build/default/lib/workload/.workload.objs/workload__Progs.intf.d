lib/workload/progs.mli: Datalog Program
