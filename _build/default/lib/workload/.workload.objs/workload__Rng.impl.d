lib/workload/rng.ml: Array
