open Datalog

let ancestor =
  Parser.program_exn
    "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y)."

let ancestor_nonlinear =
  Parser.program_exn
    "anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), anc(Z,Y)."

let example6 =
  Parser.program_exn "p(X,Y) :- q(X,Y). p(X,Y) :- p(Y,Z), r(X,Z)."

let example7 =
  Parser.program_exn
    "p(U,V,W) :- s(U,V,W). p(U,V,W) :- p(V,W,Z), q(U,Z)."

let same_generation =
  Parser.program_exn
    "sg(X,X) :- person(X). sg(X,Y) :- par(XP,X), sg(XP,YP), par(YP,Y)."

let reverse_pair =
  Parser.program_exn "p(X,Y) :- q(X,Y). p(X,Y) :- p(Y,X), q(X,Y)."

let chain_query =
  Parser.program_exn
    "p(X,Y) :- e0(X,Y). p(X,Y) :- e1(X,Z), p(Z,W), e2(W,Y)."
