open Datalog

let add_edges db ~pred edges =
  List.iter
    (fun (a, b) -> ignore (Database.add_fact db pred (Tuple.of_ints [ a; b ])))
    edges

let of_edges ?(pred = "par") edges =
  let db = Database.create () in
  add_edges db ~pred edges;
  db

let same_generation rng ~people ~parents_per =
  let db = Database.create () in
  for person = 0 to people - 1 do
    ignore (Database.add_fact db "person" (Tuple.of_ints [ person ]))
  done;
  for child = 1 to people - 1 do
    let wanted = min parents_per child in
    let chosen = Hashtbl.create 4 in
    while Hashtbl.length chosen < wanted do
      let parent = Rng.int rng child in
      if not (Hashtbl.mem chosen parent) then begin
        Hashtbl.add chosen parent ();
        ignore (Database.add_fact db "par" (Tuple.of_ints [ parent; child ]))
      end
    done
  done;
  db

module Ttbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let partition_random rng ~nprocs db ~pred =
  let table = Ttbl.create 64 in
  (match Database.find db pred with
   | Some rel ->
     Relation.iter (fun t -> Ttbl.replace table t (Rng.int rng nprocs)) rel
   | None -> ());
  fun tuple -> Option.value ~default:0 (Ttbl.find_opt table tuple)

let partition_range ~nprocs db ~pred =
  let table = Ttbl.create 64 in
  (match Database.find db pred with
   | Some rel ->
     let sorted = Relation.sorted_elements rel in
     let total = List.length sorted in
     let per = max 1 ((total + nprocs - 1) / nprocs) in
     List.iteri
       (fun idx t -> Ttbl.replace table t (min (nprocs - 1) (idx / per)))
       sorted
   | None -> ());
  fun tuple -> Option.value ~default:0 (Ttbl.find_opt table tuple)

let fragment_sizes ~nprocs partition db ~pred =
  let sizes = Array.make nprocs 0 in
  (match Database.find db pred with
   | Some rel ->
     Relation.iter
       (fun t ->
         let f = partition t in
         if f >= 0 && f < nprocs then sizes.(f) <- sizes.(f) + 1)
       rel
   | None -> ());
  sizes
