type t = { mutable state : int }

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let next t =
  t.state <- t.state + 0x1E3779B97F4A7C15;
  mix t.state land max_int

let create ~seed = { state = mix (seed lxor 0x2545F4914F6CDD1D) }
let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t = float_of_int (next t land 0xFFFFFFFFFFFF) /. 281474976710656.0
let bool t = next t land 1 = 1

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
