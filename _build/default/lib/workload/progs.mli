(** The paper's example programs, ready to parse-free use. *)

open Datalog

val ancestor : Program.t
(** The linear transitive closure (Sections 2 and 4):
    [anc(X,Y) :- par(X,Y).  anc(X,Y) :- par(X,Z), anc(Z,Y).] *)

val ancestor_nonlinear : Program.t
(** Example 8: [anc(X,Y) :- par(X,Y).
    anc(X,Y) :- anc(X,Z), anc(Z,Y).] *)

val example6 : Program.t
(** [p(X,Y) :- q(X,Y).  p(X,Y) :- p(Y,Z), r(X,Z).] *)

val example7 : Program.t
(** [p(U,V,W) :- s(U,V,W).  p(U,V,W) :- p(V,W,Z), q(U,Z).]
    (Examples 4 and 7, Figures 1 and 4.) *)

val same_generation : Program.t
(** [sg(X,Y) :- person(X), person(Y)... ] — the classic same-generation
    query in its flat-base form:
    [sg(X,X) :- person(X).  sg(X,Y) :- par(XP,X), sg(XP,YP), par(YP,Y).] *)

val reverse_pair : Program.t
(** A sirup whose dataflow graph is the 2-cycle [1→2→1]:
    [p(X,Y) :- q(X,Y).  p(X,Y) :- p(Y,X), q(X,Y).] — exercises
    Theorem 3 beyond self-loops. *)

val chain_query : Program.t
(** A simple chain query in the sense of Afrati & Papadimitriou
    (reference [1] of the paper):
    [p(X,Y) :- e0(X,Y).  p(X,Y) :- e1(X,Z), p(Z,W), e2(W,Y).]
    Its dataflow graph has no edges at all (no recursive-atom variable
    survives into the head), so Theorem 3 offers no communication-free
    choice — discriminating sequences must route tuples. *)
