(** Packaging generated data into extensional databases. *)

open Datalog

val of_edges : ?pred:string -> Graphgen.edge list -> Database.t
(** A database with one binary relation (default name ["par"]) holding
    the edges as integer tuples. *)

val add_edges : Database.t -> pred:string -> Graphgen.edge list -> unit

val same_generation :
  Rng.t -> people:int -> parents_per:int -> Database.t
(** ["person"] and ["par"] relations for the same-generation query:
    person [i] gets [parents_per] random parents among the people with
    smaller index (so the relation is acyclic). *)

val partition_random : Rng.t -> nprocs:int -> Database.t -> pred:string ->
  (Tuple.t -> int)
(** An arbitrary horizontal partition of a relation: each tuple is
    assigned a uniformly random fragment, memoized so the assignment is
    a function. Tuples outside the relation map to fragment 0. *)

val partition_range : nprocs:int -> Database.t -> pred:string ->
  (Tuple.t -> int)
(** Fragments of contiguous tuple ranges (sorted order), mimicking a
    range-partitioned storage layout. *)

val fragment_sizes :
  nprocs:int -> (Tuple.t -> int) -> Database.t -> pred:string -> int array
(** How many tuples of the relation each fragment holds. *)
