open Datalog
module Fault = Pardatalog.Fault
module Stats = Pardatalog.Stats
module Overload = Pardatalog.Overload
module Rewrite = Pardatalog.Rewrite
module Run_config = Pardatalog.Run_config
module Strategy = Pardatalog.Strategy
module Plan = Pardatalog.Plan
module Backoff = Pardatalog.Backoff
module Sim_runtime = Pardatalog.Sim_runtime
module Session = Pardatalog.Session

let log_src = Logs.Src.create "pardatalog.net" ~doc:"Multi-process runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

let debug = (try Sys.getenv "DATALOGP_NET_DEBUG" <> "" with Not_found -> false)

let dbg fmt =
  if debug then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ------------------------------------------------------------------ *)
(* Addresses                                                          *)

type addr = Aunix of string | Atcp of int

let parse_addr s =
  match String.index_opt s ':' with
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
     | "unix" -> Aunix rest
     | "tcp" -> Atcp (int_of_string rest)
     | _ -> invalid_arg ("Net_runtime: bad address " ^ s))
  | None -> invalid_arg ("Net_runtime: bad address " ^ s)

let addr_to_string = function
  | Aunix p -> "unix:" ^ p
  | Atcp port -> "tcp:" ^ string_of_int port

let sockaddr_of = function
  | Aunix p -> Unix.ADDR_UNIX p
  | Atcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let socket_of = function
  | Aunix _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Atcp _ ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    fd

(* ------------------------------------------------------------------ *)
(* Shared pieces                                                      *)

module Key = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
end

module Ktbl = Hashtbl.Make (Key)

(* Every worker rebuilds the rewrite from the program text and the
   scheme spec. Determinism note: symbol routing hashes depend on
   interning order, so workers intern identically — the program text
   first, then the EDB in wire order — and derived tuples cannot
   introduce new symbols. *)
let build_rewrite spec ~seed ~nprocs program =
  let r =
    match (spec : Wire.scheme_spec) with
    | Spec_q { ve; vr } -> Strategy.hash_q ~seed ~nprocs ~ve ~vr program
    | Spec_nocomm -> Strategy.no_communication ~seed ~nprocs program
    | Spec_example3 -> Strategy.example3 ~seed ~nprocs program
    | Spec_wolfson -> Strategy.wolfson_redundant ~seed ~nprocs program
    | Spec_tradeoff alpha -> Strategy.tradeoff ~seed ~nprocs ~alpha program
    | Spec_general -> Strategy.general ~seed ~nprocs program
    | Spec_plan json ->
      (match Plan.of_json json with
       | Error r -> Error (Format.asprintf "%a" Plan.pp_reject r)
       | Ok plan ->
         (match Plan.to_rewrite plan program with
          | Error r -> Error (Format.asprintf "%a" Plan.pp_reject r)
          | Ok rw -> Ok rw))
  in
  match r with
  | Ok rw -> rw
  | Error e -> invalid_arg ("Net_runtime: scheme rebuild failed: " ^ e)

let build_edb (rw : Rewrite.t) edb pid =
  let local = Database.create () in
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        let target = Database.declare local pred (Relation.arity rel) in
        Relation.iter
          (fun t ->
            if rw.resident pid pred t then ignore (Relation.add target t))
          rel)
    (Database.predicates edb);
  local

let is_out_pred pred = Rewrite.out_pred (Rewrite.original_pred pred) = pred
let is_derived_pred pred = Rewrite.original_pred pred <> pred

let rec waitpid_retry flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry flags pid

let now () = Unix.gettimeofday ()

(* ================================================================== *)
(* Worker                                                             *)
(* ================================================================== *)

exception Worker_exit of int

type pending = {
  pd_batch : (string * Tuple.t) list;
  pd_replay : bool;
  mutable pd_attempt : int;
  mutable pd_retry_at : float;
}

type wproc = {
  pid : int;
  mutable engine : Seminaive.t;
  mutable local_rounds : int;
  mutable last_ckpt : int;
  (* Resident base tuples; session updates adjust it. *)
  mutable base_resident : int;
  channel_seen : unit Ktbl.t array;
  next_seq : int array;
  unacked : (int, pending) Hashtbl.t array;
  (* (src pid, src incarnation, seq) — the incarnation in the key makes
     sequence reuse by a restarted peer harmless. *)
  seen : (int * int * int, unit) Hashtbl.t;
  (* Receipts not yet shipped in a checkpoint: checkpoints carry only
     this delta and the coordinator accumulates. *)
  mutable seen_new : (int * int * int) list;
  pending : (string * Tuple.t * bool) Queue.t array;
  credit_used : int array;
  inflight_size : (int, int) Hashtbl.t array;
  mutable received : int;
  mutable accepted : int;
  sent_row : int array;
  mutable outbox_peak_rows : int;
  mutable outbox_peak_bytes : int;
  mutable crashes_fired : int list;
  (* Derived-store growth since the last checkpoint (bootstrap and
     step products, accepted wire injections): the next checkpoint
     ships this instead of scanning the whole store. *)
  mutable ckpt_acc : (string * Tuple.t) list;
  (* Derived tuples already shipped in a checkpoint (or restored from
     one): checkpoints carry only the delta, the coordinator
     accumulates. *)
  dumped : unit Ktbl.t;
}

let snap_of ~store p : Wire.psnap =
  let es = Seminaive.stats p.engine in
  let rows, bytes =
    if store then
      let db = Seminaive.database p.engine in
      (Overload.db_rows db, Overload.db_bytes db)
    else (0, 0)
  in
  {
    ps_pid = p.pid;
    ps_iterations = es.Seminaive.iterations;
    ps_firings = es.Seminaive.firings;
    ps_new = es.Seminaive.new_tuples;
    ps_dup = es.Seminaive.duplicate_firings;
    ps_sent_row = Array.copy p.sent_row;
    ps_received = p.received;
    ps_accepted = p.accepted;
    ps_base_resident = p.base_resident;
    ps_store_rows = rows;
    ps_store_bytes = bytes;
    ps_outbox_rows = p.outbox_peak_rows;
    ps_outbox_bytes = p.outbox_peak_bytes;
    ps_rounds = p.local_rounds;
  }

(* All derived (@in/@out) tuples of the engine: the checkpoint
   payload. *)
let worker_body ~addr ~worker ~inc =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let a = parse_addr addr in
  (* Dial with jittered exponential backoff; the attempt count rides
     the Hello so the coordinator can report reconnects. *)
  let dial = Backoff.make ~base_ms:2 ~cap_ms:200 () in
  let attempts = ref 0 in
  let sock =
    let fd = ref None in
    while !fd = None do
      let s = socket_of a in
      (match Unix.connect s (sockaddr_of a) with
       | () -> fd := Some s
       | exception
           Unix.Unix_error
             ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET
               | Unix.EAGAIN | Unix.EINTR ),
               _,
               _ ) ->
         Unix.close s;
         incr attempts;
         if !attempts > 500 then raise (Worker_exit 3);
         Backoff.sleep dial !attempts);
    done;
    Option.get !fd
  in
  (* Worker output is queued and flushed nonblocking: a full socket
     buffer must never block the worker away from reading frames or
     heartbeating, or the failure detector mistakes a busy worker
     under backpressure for a dead one and the supervisor's SIGKILL
     turns congestion into a restart storm. *)
  let outq : string Queue.t = Queue.create () in
  let out_off = ref 0 in
  let write frame = Queue.push (Wire.encode frame) outq in
  let flush_out () =
    try
      while not (Queue.is_empty outq) do
        let s = Queue.peek outq in
        let n =
          Unix.write_substring sock s !out_off (String.length s - !out_off)
        in
        out_off := !out_off + n;
        if !out_off = String.length s then begin
          ignore (Queue.pop outq);
          out_off := 0
        end
      done
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      raise (Worker_exit 3)
  in
  (* Drain everything before an exit or a self-SIGKILL, so Done, Bye
     and Crashing frames reach the coordinator. *)
  let flush_blocking () =
    while not (Queue.is_empty outq) do
      (match Unix.select [] [ sock ] [] 1.0 with
       | _, _ :: _, _ -> flush_out ()
       | _ -> ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done
  in
  (try ignore (Wire.write_frame sock (Wire.Hello { worker; inc; attempts = !attempts }))
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
     -> raise (Worker_exit 3));
  dbg "w%d: hello sent (inc %d)" worker inc;
  let reader = Wire.reader () in
  (* The coordinator speaks Config first; frames decoded in the same
     read are queued for the main loop. *)
  let rec await_config () =
    match Wire.feed reader sock with
    | `Eof -> raise (Worker_exit 3)
    | `Again -> await_config ()
    | `Frames ([], _) -> await_config ()
    | `Frames (Wire.Config cf :: rest, _) -> (cf, rest)
    | `Frames (_, _) -> raise (Worker_exit 2)
  in
  let cf, early = await_config () in
  dbg "w%d: config received (%d early frames)" worker (List.length early);
  Unix.set_nonblock sock;
  let plan = cf.cf_fault in
  let faulty = (not (Fault.is_none plan)) || cf.cf_partition > 0.0 in
  (* Retransmission is only useful when the shim can actually LOSE a
     payload frame (drops or partitions). Sockets themselves are
     lossless, duplication and delay resolve by themselves, frames
     lost to a worker death are re-driven by the coordinator's history
     replay, and acks originate at the coordinator — which cannot die
     — so a peer's death cannot strand an [unacked] entry either.
     Retransmitting on a crash-only plan just amplifies congestion. *)
  let lossy = plan.Fault.drop > 0.0 || cf.cf_partition > 0.0 in
  let ckpt_on = plan.Fault.checkpoint_every <> None in
  let capacity = cf.cf_capacity in
  let credited = capacity <> None in
  let limits = cf.cf_limits in
  let nprocs = cf.cf_nprocs in
  let program =
    match Parser.program cf.cf_program with
    | Ok p -> p
    | Error e ->
      Log.err (fun m -> m "worker %d: bad program: %a" worker Parser.pp_error e);
      raise (Worker_exit 2)
  in
  let edb = Database.create () in
  List.iter (fun wr -> ignore (Wire.add_wrel edb wr)) cf.cf_edb;
  let rw = build_rewrite cf.cf_spec ~seed:cf.cf_seed ~nprocs program in
  let send_specs_for =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Rewrite.send_spec) ->
        Hashtbl.replace tbl s.ss_pred
          (s :: Option.value ~default:[] (Hashtbl.find_opt tbl s.ss_pred)))
      rw.sends;
    fun pred -> Option.value ~default:[] (Hashtbl.find_opt tbl pred)
  in
  let own_pids =
    List.filter (fun pid -> pid mod cf.cf_procs = worker)
      (List.init nprocs Fun.id)
  in
  let procs =
    List.map
      (fun pid ->
        let local_edb = build_edb rw edb pid in
        {
          pid;
          engine =
            Seminaive.create ~pushdown:cf.cf_pushdown rw.programs.(pid)
              ~edb:local_edb;
          local_rounds = 0;
          last_ckpt = 0;
          base_resident = Database.total_tuples local_edb;
          channel_seen = Array.init nprocs (fun _ -> Ktbl.create 64);
          next_seq = Array.make nprocs 0;
          unacked = Array.init nprocs (fun _ -> Hashtbl.create 8);
          seen = Hashtbl.create 64;
          seen_new = [];
          pending = Array.init nprocs (fun _ -> Queue.create ());
          credit_used = Array.make nprocs 0;
          inflight_size = Array.init nprocs (fun _ -> Hashtbl.create 8);
          received = 0;
          accepted = 0;
          sent_row = Array.make nprocs 0;
          outbox_peak_rows = 0;
          outbox_peak_bytes = 0;
          crashes_fired =
            Option.value ~default:[] (List.assoc_opt pid cf.cf_crashes_done);
          ckpt_acc = [];
          dumped = Ktbl.create 256;
        })
      own_pids
  in
  let proc_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.add tbl p.pid p) procs;
    fun pid -> Hashtbl.find tbl pid
  in
  let fc = Fault.counters () in
  let credit_stalls = ref 0 in
  let peak_in_flight = ref 0 in
  let breached = ref false in
  let frames_received = ref 0 in
  (* The first retransmission waits well past a loaded coordinator's
     ack round-trip, so a fault-free run never retransmits; later
     attempts back off exponentially. *)
  let retx = Backoff.make ~base_ms:20 ~cap_ms:160 () in
  let transmit_batch p dst seq pd =
    let attempt = pd.pd_attempt in
    pd.pd_attempt <- attempt + 1;
    pd.pd_retry_at <-
      now () +. (float_of_int (Backoff.delay_ms retx attempt) /. 1000.);
    write
      (Wire.Data
         {
           src = p.pid;
           dst;
           inc;
           seq;
           attempt;
           replay = pd.pd_replay;
           batch = Wire.of_batch pd.pd_batch;
         })
  in
  let send_entries p dst entries =
    if entries <> [] then begin
      let seq = p.next_seq.(dst) in
      p.next_seq.(dst) <- seq + 1;
      List.iter
        (fun (_, _, replay) ->
          if replay then fc.Fault.n_replayed <- fc.Fault.n_replayed + 1
          else p.sent_row.(dst) <- p.sent_row.(dst) + 1)
        entries;
      let batch = List.map (fun (pred, tuple, _) -> (pred, tuple)) entries in
      let replay = List.for_all (fun (_, _, r) -> r) entries in
      if credited then begin
        let size = List.length entries in
        p.credit_used.(dst) <- p.credit_used.(dst) + size;
        if p.credit_used.(dst) > !peak_in_flight then
          peak_in_flight := p.credit_used.(dst);
        Hashtbl.replace p.inflight_size.(dst) seq size
      end;
      let pd = { pd_batch = batch; pd_replay = replay;
                 pd_attempt = 0; pd_retry_at = 0.0 } in
      if faulty then Hashtbl.replace p.unacked.(dst) seq pd;
      transmit_batch p dst seq pd
    end
  in
  let flush_pending p =
    match capacity with
    | None -> ()
    | Some k ->
      for dst = 0 to nprocs - 1 do
        let q = p.pending.(dst) in
        if not (Queue.is_empty q) then begin
          let stalled = ref false in
          while
            (not (Queue.is_empty q))
            && (p.credit_used.(dst) < k || (stalled := true; false))
          do
            let room = k - p.credit_used.(dst) in
            let entries = ref [] in
            let count = ref 0 in
            while !count < room && not (Queue.is_empty q) do
              entries := Queue.pop q :: !entries;
              incr count
            done;
            send_entries p dst (List.rev !entries)
          done;
          if !stalled then incr credit_stalls
        end
      done
  in
  let dispatch_out ~replay p dst batch =
    if not credited then
      send_entries p dst (List.map (fun (pred, t) -> (pred, t, replay)) batch)
    else begin
      List.iter
        (fun (pred, t) -> Queue.add (pred, t, replay) p.pending.(dst))
        batch;
      flush_pending p
    end
  in
  let track_outbox_peak p =
    if credited then begin
      let rows = ref 0 in
      Array.iter (fun q -> rows := !rows + Queue.length q) p.pending;
      if !rows > p.outbox_peak_rows then begin
        p.outbox_peak_rows <- !rows;
        let bytes = ref 0 in
        Array.iter
          (fun q ->
            Queue.iter
              (fun (_, t, _) -> bytes := !bytes + (Tuple.arity t * 8))
              q)
          p.pending;
        p.outbox_peak_bytes <- !bytes
      end
    end
  in
  let route ~replay p produced =
    let batches = Array.make nprocs [] in
    List.iter
      (fun (out_name, tuple) ->
        let pred = Rewrite.original_pred out_name in
        if List.mem pred rw.derived then
          List.iter
            (fun (s : Rewrite.send_spec) ->
              List.iter
                (fun dst ->
                  let seen = p.channel_seen.(dst) in
                  if not (Ktbl.mem seen (pred, tuple)) then begin
                    Ktbl.add seen (pred, tuple) ();
                    batches.(dst) <- (pred, tuple) :: batches.(dst)
                  end)
                (s.ss_route p.pid tuple))
            (send_specs_for pred))
      produced;
    Array.iteri
      (fun dst batch ->
        if batch <> [] then dispatch_out ~replay p dst (List.rev batch))
      batches;
    track_outbox_peak p
  in
  let pump_retransmits () =
    let t = now () in
    List.iter
      (fun p ->
        Array.iteri
          (fun dst tbl ->
            Hashtbl.iter
              (fun seq pd ->
                if pd.pd_retry_at <= t then begin
                  fc.Fault.n_retransmits <- fc.Fault.n_retransmits + 1;
                  transmit_batch p dst seq pd
                end)
              tbl)
          p.unacked)
      procs
  in
  (* A scheduled crash is a genuine SIGKILL: flush a courtesy notice
     carrying the counters that die with the process, then kill
     ourselves. The coordinator records the fired round so the
     restarted worker does not re-fire it. *)
  let maybe_crash p =
    match Fault.crash_at plan ~pid:p.pid ~round:p.local_rounds with
    | Some c when not (List.mem c.Fault.cr_round p.crashes_fired) ->
      p.crashes_fired <- c.Fault.cr_round :: p.crashes_fired;
      write
        (Wire.Crashing
           {
             pid = p.pid;
             round = c.Fault.cr_round;
             snaps = List.map (snap_of ~store:false) procs;
           });
      flush_blocking ();
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()
  in
  let maybe_checkpoint p =
    match plan.Fault.checkpoint_every with
    | Some k when p.local_rounds > p.last_ckpt && p.local_rounds mod k = 0 ->
      p.last_ckpt <- p.local_rounds;
      fc.Fault.n_checkpoints <- fc.Fault.n_checkpoints + 1;
      (* Ship only the derived tuples the coordinator has not seen in
         an earlier checkpoint of this state: a full dump every few
         rounds is O(rounds x store) on the wire and congests the
         coordinator into false failure detections. [ckpt_acc] is the
         store growth since the last checkpoint, so neither the dump
         nor this filter ever rescans the store. *)
      let delta =
        let acc = p.ckpt_acc in
        p.ckpt_acc <- [];
        List.filter
          (fun (pred, t) ->
            if Ktbl.mem p.dumped (pred, t) then false
            else begin
              Ktbl.replace p.dumped (pred, t) ();
              true
            end)
          acc
      in
      (* Receipts are deltas for the same reason as the tuples: the
         full table is O(frames) and would be re-marshalled on every
         checkpoint. *)
      let seen_delta = p.seen_new in
      p.seen_new <- [];
      write
        (Wire.Checkpoint
           {
             pid = p.pid;
             inc;
             round = p.local_rounds;
             tuples = Wire.of_batch delta;
             seen = seen_delta;
           })
    | _ -> ()
  in
  let check_limits p =
    if not !breached then begin
      (match limits.Overload.max_store_rows with
       | Some lim ->
         let rows = Overload.db_rows (Seminaive.database p.engine) in
         if rows > lim then begin
           breached := true;
           write
             (Wire.Breach
                { reason = Overload.Store_budget { pid = p.pid; rows; limit = lim } })
         end
       | None -> ());
      match limits.Overload.max_outbox_rows with
      | Some lim when not !breached ->
        let rows = ref 0 in
        Array.iter (fun q -> rows := !rows + Queue.length q) p.pending;
        Array.iter
          (fun tbl -> Hashtbl.iter (fun _ s -> rows := !rows + s) tbl)
          p.inflight_size;
        if !rows > lim then begin
          breached := true;
          write
            (Wire.Breach
               { reason = Overload.Outbox_budget { pid = p.pid; rows = !rows; limit = lim } })
        end
      | _ -> ()
    end
  in
  (* Record derived-store growth for the next checkpoint delta —
     every insertion flows through here or [accept_batch], so a scan
     of the whole store at checkpoint time is never needed. *)
  let ckpt_note p produced =
    if ckpt_on then
      List.iter
        (fun ((name, _) as nt) ->
          if is_derived_pred name then p.ckpt_acc <- nt :: p.ckpt_acc)
        produced
  in
  let accept_batch p batch =
    List.iter
      (fun (pred, tuple) ->
        p.received <- p.received + 1;
        let ip = Rewrite.in_pred pred in
        if Seminaive.inject p.engine ip tuple then begin
          p.accepted <- p.accepted + 1;
          if ckpt_on then p.ckpt_acc <- (ip, tuple) :: p.ckpt_acc
        end)
      (Wire.to_batch batch)
  in
  (* Restore from checkpoint dumps: a fresh engine over the base
     fragment, every dumped derived tuple injected (so its
     consequences re-derive), and — because [step] never returns
     injected tuples — the dumped @out tuples re-routed explicitly
     with [replay] marking (receivers dedup by content). *)
  let restores =
    List.filter (fun (r : Wire.restore) -> List.mem_assoc r.rs_pid
                    (List.map (fun p -> (p.pid, ())) procs))
      cf.cf_restores
  in
  let injected = ref 0 in
  List.iter
    (fun (r : Wire.restore) ->
      let p = proc_of r.rs_pid in
      p.local_rounds <- r.rs_round;
      p.last_ckpt <- r.rs_round;
      List.iter
        (fun (pred, t) ->
          ignore (Seminaive.inject p.engine pred t);
          (* These tuples are already at the coordinator; future
             checkpoints ship only what this incarnation adds. *)
          Ktbl.replace p.dumped (pred, t) ();
          incr injected;
          (* A large restore must not look like death to the failure
             detector: keep heartbeats flowing while injecting. *)
          if !injected land 2047 = 0 then begin
            write
              (Wire.Heartbeat
                 { worker; inc; snaps = List.map (snap_of ~store:false) procs });
            flush_out ()
          end)
        (Wire.to_batch r.rs_tuples))
    restores;
  List.iter
    (fun p ->
      let produced = Seminaive.bootstrap p.engine in
      ckpt_note p produced;
      route ~replay:false p produced)
    procs;
  List.iter
    (fun (r : Wire.restore) ->
      let p = proc_of r.rs_pid in
      let outs =
        List.filter (fun (pred, _) -> is_out_pred pred)
          (Wire.to_batch r.rs_tuples)
      in
      route ~replay:true p outs)
    restores;
  let all_idle () =
    List.for_all
      (fun p ->
        (not (Seminaive.has_pending p.engine))
        && Array.for_all (fun tbl -> Hashtbl.length tbl = 0) p.unacked
        && Array.for_all Queue.is_empty p.pending)
      procs
  in
  let answers_of p =
    let db = Seminaive.database p.engine in
    List.filter_map
      (fun pred ->
        match Database.find db (Rewrite.out_pred pred) with
        | None -> None
        | Some rel ->
          Some
            {
              Wire.wr_pred = pred;
              wr_arity = Relation.arity rel;
              wr_tuples =
                List.rev
                  (Relation.fold (fun t acc -> Wire.of_tuple t :: acc) rel []);
            })
      rw.derived
  in
  let handle frame =
    incr frames_received;
    match (frame : Wire.frame) with
    | Data { src; dst; inc = sinc; seq; attempt = _; replay = _; batch } ->
      (* No ack here: the coordinator acks on receipt (its replay
         history guarantees delivery), so an ack can never die with a
         destination worker. *)
      let p = proc_of dst in
      if faulty && Hashtbl.mem p.seen (src, sinc, seq) then
        fc.Fault.n_dups_suppressed <- fc.Fault.n_dups_suppressed + 1
      else begin
        if faulty then begin
          Hashtbl.replace p.seen (src, sinc, seq) ();
          p.seen_new <- (src, sinc, seq) :: p.seen_new
        end;
        accept_batch p batch
      end
    | Tack { src; dst; inc = tinc; seq } ->
      (* [src] is our processor: the ack of [Data src->dst seq]. Acks
         addressed to a previous incarnation are stale. *)
      if tinc = inc then begin
        let p = proc_of src in
        if Hashtbl.mem p.unacked.(dst) seq then begin
          Hashtbl.remove p.unacked.(dst) seq;
          fc.Fault.n_acks <- fc.Fault.n_acks + 1
        end;
        if credited then
          match Hashtbl.find_opt p.inflight_size.(dst) seq with
          | Some size ->
            Hashtbl.remove p.inflight_size.(dst) seq;
            p.credit_used.(dst) <- p.credit_used.(dst) - size;
            flush_pending p
          | None -> ()
      end
    | Inject { dst; batch } -> accept_batch (proc_of dst) batch
    | Patch { dels } ->
      (* Net deletions of a session batch. The coordinator sends this
         only between drives (after a passed probe), so every engine
         is quiescent and [retract_facts] is legal. A net-removed
         tuple has no remaining derivation in the new model, so
         removing it from every store is sound — re-derivation after a
         later re-insertion flows through the ordinary step loop. *)
      let dels = Wire.to_batch dels in
      let derived_dels, base_dels =
        List.partition (fun (pred, _) -> List.mem pred rw.derived) dels
      in
      let derived_keys =
        List.concat_map
          (fun (pred, t) ->
            [ (Rewrite.out_pred pred, t); (Rewrite.in_pred pred, t) ])
          derived_dels
      in
      List.iter
        (fun p ->
          ignore (Seminaive.retract_facts p.engine derived_keys);
          let nbase = Seminaive.retract_facts p.engine base_dels in
          p.base_resident <- p.base_resident - nbase;
          (* Purge the channel-dedup and checkpoint-cover tables of
             exactly the removed tuples: a re-derived tuple must
             travel its channels (and enter a checkpoint) again, while
             everything still true stays covered. *)
          List.iter
            (fun (pred, t) ->
              Array.iter (fun tbl -> Ktbl.remove tbl (pred, t)) p.channel_seen;
              Ktbl.remove p.dumped (Rewrite.out_pred pred, t);
              Ktbl.remove p.dumped (Rewrite.in_pred pred, t))
            derived_dels;
          if p.ckpt_acc <> [] then
            p.ckpt_acc <-
              List.filter
                (fun (name, t) ->
                  not
                    (List.exists
                       (fun (rp, rt) ->
                         String.equal rp name && Tuple.equal rt t)
                       derived_keys))
                p.ckpt_acc)
        procs
    | Update { dst; batch } ->
      (* Net base insertions of a session batch: pending work for the
         engines hosting them; consequences derive — and route — in
         the ordinary step loop. [inject] discards known tuples, so a
         redelivery (e.g. held frames replayed to a restarted worker
         already rebuilt from the updated EDB) changes nothing. *)
      let p = proc_of dst in
      List.iter
        (fun (pred, t) ->
          if Seminaive.inject p.engine pred t then
            p.base_resident <- p.base_resident + 1)
        (Wire.to_batch batch)
    | Collect { gen } ->
      (* Session-mode end of drive: report every processor's answers
         and keep running. Global quiescence is already established
         (the coordinator collects only after a passed probe), so the
         engines are at the global fixpoint as-is. *)
      dbg "w%d: collect gen=%d" worker gen;
      List.iter
        (fun p ->
          write
            (Wire.Model
               {
                 gen;
                 pid = p.pid;
                 snap = snap_of ~store:true p;
                 answers = answers_of p;
               }))
        procs
    | Probe { epoch } ->
      dbg "w%d: probe %d -> idle=%b fr=%d" worker epoch (all_idle ())
        !frames_received;
      write
        (Wire.Status
           {
             worker;
             inc;
             epoch;
             idle = all_idle ();
             frames_received = !frames_received;
           })
    | Stop { finish } ->
      dbg "w%d: stop finish=%b" worker finish;
      (* At a normal stop global quiescence is already established, so
         running each engine to its local fixpoint without routing only
         re-derives tuples whose routed copies were delivered long
         ago. An overload stop reports the partial state as-is. *)
      if finish then
        List.iter (fun p -> Seminaive.run_to_fixpoint p.engine) procs;
      List.iter
        (fun p ->
          write
            (Wire.Done
               {
                 pid = p.pid;
                 inc;
                 snap = snap_of ~store:true p;
                 answers = answers_of p;
               }))
        procs;
      write
        (Wire.Bye
           {
             worker;
             inc;
             faults = Fault.freeze ?mailbox_drops:None fc;
             credit_stalls = !credit_stalls;
             peak_in_flight = !peak_in_flight;
           });
      flush_blocking ();
      raise (Worker_exit 0)
    | Hello _ | Config _ | Status _ | Heartbeat _ | Checkpoint _
    | Crashing _ | Breach _ | Done _ | Bye _ | Model _ ->
      ()
  in
  let hb_s = float_of_int (max 1 cf.cf_hb_ms) /. 1000. in
  let last_hb = ref 0.0 in
  let maybe_heartbeat () =
    let t = now () in
    if t -. !last_hb >= hb_s then begin
      last_hb := t;
      write
        (Wire.Heartbeat
           { worker; inc; snaps = List.map (snap_of ~store:false) procs })
    end
  in
  let step_engines () =
    if not !breached then
      List.iter
        (fun p ->
          maybe_crash p;
          if Seminaive.has_pending p.engine then begin
            let produced = Seminaive.step p.engine in
            p.local_rounds <- p.local_rounds + 1;
            ckpt_note p produced;
            route ~replay:false p produced;
            maybe_checkpoint p;
            check_limits p
          end)
        procs
  in
  List.iter handle early;
  dbg "w%d: setup done, %d own pids" worker (List.length procs);
  maybe_heartbeat ();
  while true do
    let busy =
      (not !breached)
      && List.exists (fun p -> Seminaive.has_pending p.engine) procs
    in
    let timeout = if busy then 0.0 else 0.005 in
    let wds = if Queue.is_empty outq then [] else [ sock ] in
    (match Unix.select [ sock ] wds [] timeout with
     | rds, wrs, _ ->
       if wrs <> [] then flush_out ();
       if rds <> [] then (
         match Wire.feed reader sock with
         | `Eof -> raise (Worker_exit 3)
         | `Again -> ()
         | `Frames (fs, _) -> List.iter handle fs)
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if lossy then pump_retransmits ();
    step_engines ();
    maybe_heartbeat ();
    flush_out ()
  done;
  assert false

let worker_main ~addr ~worker ~inc =
  match worker_body ~addr ~worker ~inc with
  | _ -> 0
  | exception Worker_exit c -> c
  | exception e ->
    Printf.eprintf "datalogp worker %d: %s\n%!" worker (Printexc.to_string e);
    2

(* ================================================================== *)
(* Coordinator                                                        *)
(* ================================================================== *)

type spawn = Fork | Exec of string

type outq = { oq : string Queue.t; mutable oq_off : int }

type slot = {
  s_id : int;
  mutable s_os_pid : int;  (* 0 = no live process *)
  mutable s_inc : int;  (* incarnation expected on the next Hello *)
  mutable s_fd : Unix.file_descr option;
  mutable s_reader : Wire.reader;
  s_out : outq;
  mutable s_hold : Wire.frame list;  (* reversed; redelivered on reconfig *)
  mutable s_configured : bool;
  mutable s_delivered : int;  (* frames enqueued since Config *)
  mutable s_last_heard : float;
  mutable s_miss_reported : int;
  mutable s_restart_at : float option;
  mutable s_restarts : int;
  mutable s_status : (int * bool * int) option;  (* epoch, idle, received *)
  mutable s_stop_sent : bool;
  mutable s_last_snaps : Wire.psnap list;
}

(* Work that died with a worker incarnation, folded into the pooled
   statistics (engine/channel counters only: the store itself is
   rebuilt, not lost). *)
type lost_acc = {
  mutable a_iter : int;
  mutable a_fir : int;
  mutable a_new : int;
  mutable a_dup : int;
  mutable a_recv : int;
  mutable a_acc : int;
  a_sent_row : int array;
  mutable a_outbox_rows : int;
  mutable a_outbox_bytes : int;
}

let tmp_counter = ref 0

let listen_setup transport =
  match transport with
  | `Unix ->
    incr tmp_counter;
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "datalogp-net-%d-%d.sock" (Unix.getpid ())
           !tmp_counter)
    in
    (try Unix.unlink path with _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Aunix path)
  | `Tcp ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    Unix.listen fd 64;
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    (fd, Atcp port)

let open_session ~config ~program ~spec ?(seed = 0) ?(procs = 4)
    ?(transport = `Unix) ?(partition = 0.0) ?(hb_ms = 25)
    ?(hb_miss_limit = 40) ?(max_restarts = 8) ?(spawn = Fork)
    (rw : Rewrite.t) ~edb =
  if config.Run_config.dial <> None then
    invalid_arg "Net_runtime: the adaptive dial is not supported";
  (match config.Run_config.plan with
   | Some p -> Plan.validate_exn ~nprocs:rw.nprocs p rw.original
   | None -> ());
  Overload.validate config.Run_config.limits;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let n = rw.nprocs in
  let nworkers = max 1 (min procs n) in
  let plan = config.Run_config.fault in
  let limits = config.Run_config.limits in
  (* Mirrors the workers' [faulty || credited]: when the reliable
     layer is on, the coordinator acks each accepted payload. *)
  let acked =
    (not (Fault.is_none plan))
    || partition > 0.0
    || config.Run_config.capacity <> None
  in
  let shim = Shim.create ~plan ~partition in
  let t0 = now () in
  (* The combined EDB every worker receives: input EDB plus the
     program's base facts, serialized once so all workers intern its
     symbols in the same order. *)
  let combined_edb = Database.copy edb in
  List.iter
    (fun (pred, tuple) ->
      let rel = Database.declare combined_edb pred (Tuple.arity tuple) in
      ignore (Relation.add rel tuple))
    rw.original.Program.facts;
  (* [wedb] is re-serialized whenever a session batch changes the base
     facts: a worker restarted afterwards must rebuild from the
     patched EDB. [base_db] shadows the caller's input EDB (patched in
     step with the batches) — answer assembly copies it, exactly as a
     from-scratch run over the updated input would. *)
  let wedb = ref (Wire.of_db combined_edb) in
  let base_db = Database.copy edb in
  let listen_fd, laddr = listen_setup transport in
  let addr_str = addr_to_string laddr in
  let slots =
    Array.init nworkers (fun i ->
        {
          s_id = i;
          s_os_pid = 0;
          s_inc = 0;
          s_fd = None;
          s_reader = Wire.reader ();
          s_out = { oq = Queue.create (); oq_off = 0 };
          s_hold = [];
          s_configured = false;
          s_delivered = 0;
          s_last_heard = t0;
          s_miss_reported = 0;
          s_restart_at = None;
          s_restarts = 0;
          s_status = None;
          s_stop_sent = false;
          s_last_snaps = [];
        })
  in
  let worker_of pid = pid mod nworkers in
  let own_pids w = List.filter (fun pid -> pid mod nworkers = w) (List.init n Fun.id) in
  let anon : (Unix.file_descr * Wire.reader) list ref = ref [] in
  let fc = Fault.counters () in
  let bytes_sent = ref 0 in
  let bytes_received = ref 0 in
  let reconnects = ref 0 in
  let hb_misses = ref 0 in
  let worker_restarts = ref 0 in
  let history : (int, (int * int * int * Wire.wbatch) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let hist pid =
    match Hashtbl.find_opt history pid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace history pid r;
      r
  in
  let payload_seen : (int * int * int * int, unit) Hashtbl.t =
    Hashtbl.create 256
  in
  let dumps : (int, Wire.restore) Hashtbl.t = Hashtbl.create 8 in
  (* Per pid: every (src, inc, seq) receipt covered by any checkpoint
     received so far — accumulated from per-checkpoint deltas, and a
     hashtable because restore filters the whole inbound history
     against it. *)
  let dump_seen : (int, (int * int * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let dump_seen_of pid =
    match Hashtbl.find_opt dump_seen pid with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 256 in
      Hashtbl.replace dump_seen pid t;
      t
  in
  let crashes_done : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let lost : (int, lost_acc) Hashtbl.t = Hashtbl.create 8 in
  let lost_of pid =
    match Hashtbl.find_opt lost pid with
    | Some a -> a
    | None ->
      let a =
        { a_iter = 0; a_fir = 0; a_new = 0; a_dup = 0; a_recv = 0; a_acc = 0;
          a_sent_row = Array.make n 0; a_outbox_rows = 0; a_outbox_bytes = 0 }
      in
      Hashtbl.replace lost pid a;
      a
  in
  let dones : (int, Wire.psnap * Wire.wrel list) Hashtbl.t = Hashtbl.create 8 in
  let byes : (int, Stats.faults * int * int) Hashtbl.t = Hashtbl.create 8 in
  let delayq : (float * int * Wire.frame) list ref = ref [] in
  let stopping = ref false in
  let stop_finish = ref true in
  let overload : Overload.reason option ref = ref None in
  let probe_epoch = ref 0 in
  let probe_open = ref false in
  let probe_armed = ref false in
  let probe_next_at = ref 0.0 in
  (* Session state. A drive is one run to global quiescence: the
     initial evaluation and each non-empty update batch. In session
     mode a passed termination probe triggers a [Collect] instead of
     the Stop poison pill: workers report per-processor models and
     stay resident for the next batch. [Stop] is reserved for [close]
     and overload. *)
  let models : (int, Wire.psnap * Wire.wrel list) Hashtbl.t =
    Hashtbl.create 8
  in
  let collect_gen = ref 0 in
  let collecting = ref false in
  let closing = ref false in
  let dead = ref false in
  let drive_start = ref t0 in
  let restart_backoff = Backoff.make ~base_ms:5 ~cap_ms:400 () in
  let hb_s = float_of_int (max 1 hb_ms) /. 1000. in
  let disarm () =
    probe_armed := false;
    probe_open := false
  in
  let enqueue_raw s frame =
    Queue.add (Wire.encode frame) s.s_out.oq
  in
  let enqueue s frame =
    enqueue_raw s frame;
    s.s_delivered <- s.s_delivered + 1
  in
  let enqueue_to_pid pid frame =
    let s = slots.(worker_of pid) in
    if s.s_configured && s.s_fd <> None then enqueue s frame
    else s.s_hold <- frame :: s.s_hold
  in
  let push_delay due dst frame =
    let rec insert = function
      | [] -> [ (due, dst, frame) ]
      | (d, _, _) :: _ as l when due < d -> (due, dst, frame) :: l
      | x :: rest -> x :: insert rest
    in
    delayq := insert !delayq
  in
  let close_conn s =
    (match s.s_fd with
     | Some fd -> (try Unix.close fd with _ -> ())
     | None -> ());
    s.s_fd <- None;
    s.s_configured <- false;
    s.s_status <- None
  in
  let spawn_worker s =
    (match spawn with
     | Fork ->
       (match Unix.fork () with
        | 0 ->
          (try Unix.close listen_fd with _ -> ());
          List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) !anon;
          Array.iter
            (fun s' ->
              match s'.s_fd with
              | Some fd -> (try Unix.close fd with _ -> ())
              | None -> ())
            slots;
          let code =
            try worker_main ~addr:addr_str ~worker:s.s_id ~inc:s.s_inc
            with _ -> 2
          in
          Unix._exit code
        | pid -> s.s_os_pid <- pid)
     | Exec exe ->
       let pid =
         Unix.create_process exe
           [|
             exe; "worker"; "--addr"; addr_str; "--worker";
             string_of_int s.s_id; "--inc"; string_of_int s.s_inc;
           |]
           Unix.stdin Unix.stdout Unix.stderr
       in
       s.s_os_pid <- pid);
    s.s_last_heard <- now ();
    s.s_miss_reported <- 0;
    if s.s_inc > 0 then incr worker_restarts
  in
  let begin_stop ~finish =
    if not !stopping then begin
      stopping := true;
      stop_finish := finish;
      Array.iter
        (fun s ->
          if s.s_configured && s.s_fd <> None && not s.s_stop_sent then begin
            enqueue s (Wire.Stop { finish });
            s.s_stop_sent <- true
          end)
        slots
    end
  in
  let begin_collect () =
    incr collect_gen;
    collecting := true;
    Hashtbl.clear models;
    Array.iter
      (fun s ->
        if s.s_configured && s.s_fd <> None then
          enqueue s (Wire.Collect { gen = !collect_gen }))
      slots
  in
  let all_collected () =
    let ok = ref true in
    for pid = 0 to n - 1 do
      if not (Hashtbl.mem models pid) then ok := false
    done;
    !ok
  in
  let configure s fd reader =
    s.s_fd <- Some fd;
    s.s_reader <- reader;
    Queue.clear s.s_out.oq;
    s.s_out.oq_off <- 0;
    s.s_delivered <- 0;
    s.s_status <- None;
    s.s_stop_sent <- false;
    let pids = own_pids s.s_id in
    let restores =
      List.filter_map (fun pid -> Hashtbl.find_opt dumps pid) pids
    in
    enqueue_raw s
      (Wire.Config
         {
           cf_program = program;
           cf_spec = spec;
           cf_nprocs = n;
           cf_procs = nworkers;
           cf_seed = seed;
           cf_pushdown = config.Run_config.pushdown;
           cf_fault = plan;
           cf_partition = partition;
           cf_capacity = config.Run_config.capacity;
           cf_limits = limits;
           cf_edb = !wedb;
           cf_crashes_done =
             Hashtbl.fold (fun pid rs acc -> (pid, rs) :: acc) crashes_done [];
           cf_restores = restores;
           cf_hb_ms = hb_ms;
         });
    s.s_configured <- true;
    if s.s_inc > 0 then begin
      fc.Fault.n_recoveries <- fc.Fault.n_recoveries + List.length pids;
      fc.Fault.n_restores <-
        fc.Fault.n_restores + List.length restores;
      (* Replay each restored processor's inbound history, minus what
         its checkpoint already covers. *)
      List.iter
        (fun pid ->
          let covered = dump_seen_of pid in
          List.iter
            (fun (src, sinc, seq, batch) ->
              if not (Hashtbl.mem covered (src, sinc, seq)) then begin
                fc.Fault.n_replayed <-
                  fc.Fault.n_replayed + List.length batch;
                enqueue s (Wire.Inject { dst = pid; batch })
              end)
            (List.rev !(hist pid)))
        pids
    end;
    List.iter (fun f -> enqueue s f) (List.rev s.s_hold);
    s.s_hold <- [];
    if !stopping then begin
      enqueue s (Wire.Stop { finish = !stop_finish });
      s.s_stop_sent <- true
    end;
    (* A worker rebuilt mid-collection re-derives its state from the
       (already patched) history: cancel the collection and let the
       probe cycle re-establish quiescence before collecting again.
       Stale [Model] frames are discarded by their generation. *)
    if !collecting then collecting := false;
    disarm ()
  in
  let all_done () =
    let ok = ref true in
    for pid = 0 to n - 1 do
      if not (Hashtbl.mem dones pid) then ok := false
    done;
    !ok
  in
  let handle_death s =
    (* Called when both the socket and the process are gone. *)
    if not (List.for_all (fun pid -> Hashtbl.mem dones pid) (own_pids s.s_id))
    then begin
      let pids = own_pids s.s_id in
      fc.Fault.n_crashes <- fc.Fault.n_crashes + List.length pids;
      List.iter
        (fun (snap : Wire.psnap) ->
          let a = lost_of snap.ps_pid in
          a.a_iter <- a.a_iter + snap.ps_iterations;
          a.a_fir <- a.a_fir + snap.ps_firings;
          a.a_new <- a.a_new + snap.ps_new;
          a.a_dup <- a.a_dup + snap.ps_dup;
          a.a_recv <- a.a_recv + snap.ps_received;
          a.a_acc <- a.a_acc + snap.ps_accepted;
          Array.iteri
            (fun i v -> a.a_sent_row.(i) <- a.a_sent_row.(i) + v)
            snap.ps_sent_row;
          a.a_outbox_rows <- max a.a_outbox_rows snap.ps_outbox_rows;
          a.a_outbox_bytes <- max a.a_outbox_bytes snap.ps_outbox_bytes)
        s.s_last_snaps;
      s.s_last_snaps <- [];
      s.s_restarts <- s.s_restarts + 1;
      if s.s_restarts > max_restarts then
        failwith
          (Printf.sprintf "Net_runtime: worker %d exceeded %d restarts"
             s.s_id max_restarts);
      s.s_inc <- s.s_inc + 1;
      s.s_restart_at <-
        Some
          (now ()
          +. (float_of_int
                (Backoff.delay_ms
                   ~hint_ms:
                     (Backoff.seeded_jitter ~seed:(plan.Fault.seed + s.s_id)
                        ~span_ms:5 s.s_restarts)
                   restart_backoff (s.s_restarts - 1))
             /. 1000.));
      disarm ();
      Log.info (fun m ->
          m "worker %d died; restart %d as incarnation %d" s.s_id
            s.s_restarts s.s_inc)
    end
  in
  let handle_eof s =
    close_conn s;
    if s.s_os_pid <> 0 then (try Unix.kill s.s_os_pid Sys.sigkill with _ -> ())
    else handle_death s
  in
  let reap () =
    Array.iter
      (fun s ->
        if s.s_os_pid <> 0 then
          match waitpid_retry [ Unix.WNOHANG ] s.s_os_pid with
          | 0, _ -> ()
          | _, _ ->
            s.s_os_pid <- 0;
            if s.s_fd = None && s.s_restart_at = None then handle_death s
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            s.s_os_pid <- 0;
            if s.s_fd = None && s.s_restart_at = None then handle_death s)
      slots
  in
  let handle_worker_frame s frame =
    s.s_last_heard <- now ();
    s.s_miss_reported <- 0;
    match (frame : Wire.frame) with
    | Data { src; dst; inc = sinc; seq; attempt; replay = _; batch } ->
      disarm ();
      let v = Shim.verdict shim ~src ~dst ~seq ~attempt in
      if not v.Shim.v_drop then begin
        let key = (src, dst, sinc, seq) in
        if not (Hashtbl.mem payload_seen key) then begin
          Hashtbl.replace payload_seen key ();
          let h = hist dst in
          h := (src, sinc, seq, batch) :: !h
        end;
        (* Ack the SENDER here, not at the destination: the payload is
           now in the replay history, so it reaches [dst] even across
           a restart — and the coordinator cannot die, so the ack
           cannot be lost to a crash, and the sender's [unacked] entry
           can never be stranded. Shim-dropped frames get no ack and
           are retransmitted by the sender. *)
        if acked then
          enqueue_to_pid src (Wire.Tack { src; dst; inc = sinc; seq });
        if v.Shim.v_delay_ms > 0 then
          push_delay (now () +. (float_of_int v.Shim.v_delay_ms /. 1000.))
            dst frame
        else enqueue_to_pid dst frame;
        if v.Shim.v_dup then enqueue_to_pid dst frame
      end
    | Tack _ -> ()
      (* Acks originate at the coordinator; workers no longer send
         any, so there is nothing to relay. *)
    | Status { worker = w; inc; epoch; idle; frames_received } ->
      dbg "c: status w%d epoch=%d idle=%b fr=%d delivered=%d" w epoch idle
        frames_received s.s_delivered;
      if w = s.s_id && inc = s.s_inc && epoch = !probe_epoch then
        s.s_status <- Some (epoch, idle, frames_received)
    | Heartbeat { worker = _; inc; snaps } ->
      if inc = s.s_inc then s.s_last_snaps <- snaps
    | Checkpoint { pid; inc; round; tuples; seen } ->
      if inc = s.s_inc then begin
        (* Checkpoints are deltas: accumulate onto what this pid has
           already dumped (a restored incarnation resumes the delta
           chain from the dump it was handed). *)
        let prev =
          match Hashtbl.find_opt dumps pid with
          | Some r -> r.Wire.rs_tuples
          | None -> []
        in
        Hashtbl.replace dumps pid
          { Wire.rs_pid = pid; rs_round = round;
            rs_tuples = List.rev_append tuples prev };
        let tbl = dump_seen_of pid in
        List.iter (fun r -> Hashtbl.replace tbl r ()) seen
      end
    | Crashing { pid; round; snaps } ->
      disarm ();
      Hashtbl.replace crashes_done pid
        (round
        :: Option.value ~default:[] (Hashtbl.find_opt crashes_done pid));
      s.s_last_snaps <- snaps
    | Breach { reason } ->
      disarm ();
      if !overload = None then overload := Some reason;
      begin_stop ~finish:false
    | Done { pid; inc = _; snap; answers } ->
      dbg "c: done pid=%d" pid;
      Hashtbl.replace dones pid (snap, answers)
    | Bye { worker = w; inc = _; faults; credit_stalls; peak_in_flight } ->
      Hashtbl.replace byes w (faults, credit_stalls, peak_in_flight)
    | Model { gen; pid; snap; answers } ->
      dbg "c: model pid=%d gen=%d" pid gen;
      if !collecting && gen = !collect_gen then
        Hashtbl.replace models pid (snap, answers)
    | Hello _ | Config _ | Inject _ | Probe _ | Stop _ | Patch _ | Update _
    | Collect _ ->
      ()
  in
  let attach_hello fd reader ~worker:w ~inc ~attempts =
    if w < 0 || w >= nworkers then (try Unix.close fd with _ -> ())
    else
      let s = slots.(w) in
      if inc <> s.s_inc then (try Unix.close fd with _ -> ())
      else begin
        (match s.s_fd with
         | Some old -> (try Unix.close old with _ -> ())
         | None -> ());
        reconnects := !reconnects + attempts + (if inc > 0 then 1 else 0);
        s.s_last_heard <- now ();
        s.s_miss_reported <- 0;
        configure s fd reader;
        dbg "c: worker %d attached inc=%d" w inc
      end
  in
  let flush_slot s =
    match s.s_fd with
    | None -> ()
    | Some fd ->
      let continue = ref true in
      while !continue && not (Queue.is_empty s.s_out.oq) do
        let str = Queue.peek s.s_out.oq in
        let len = String.length str in
        match
          Unix.write_substring fd str s.s_out.oq_off (len - s.s_out.oq_off)
        with
        | n ->
          bytes_sent := !bytes_sent + n;
          s.s_out.oq_off <- s.s_out.oq_off + n;
          if s.s_out.oq_off = len then begin
            ignore (Queue.pop s.s_out.oq);
            s.s_out.oq_off <- 0
          end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> continue := false
        | exception
            Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
          ->
          continue := false;
          handle_eof s
      done
  in
  let new_probe () =
    incr probe_epoch;
    probe_open := true;
    dbg "c: probe %d" !probe_epoch;
    Array.iter (fun s -> enqueue s (Wire.Probe { epoch = !probe_epoch })) slots
  in
  let coordinator_quiet () =
    !delayq = []
    && Array.for_all
         (fun s ->
           s.s_fd <> None && s.s_configured && s.s_restart_at = None
           && s.s_hold = []
           && Queue.is_empty s.s_out.oq)
         slots
  in
  let check_termination () =
    if (not !stopping) && (not !collecting) && coordinator_quiet () then begin
      if !probe_open then begin
        let complete =
          Array.for_all
            (fun s ->
              match s.s_status with
              | Some (e, _, _) -> e = !probe_epoch
              | None -> false)
            slots
        in
        if complete then begin
          let pass =
            Array.for_all
              (fun s ->
                match s.s_status with
                | Some (e, idle, fr) ->
                  e = !probe_epoch && idle && fr = s.s_delivered
                | None -> false)
              slots
          in
          probe_open := false;
          dbg "c: probe %d complete pass=%b" !probe_epoch pass;
          if pass then begin
            if !probe_armed then begin
              if !closing then begin_stop ~finish:true else begin_collect ()
            end
            else begin
              probe_armed := true;
              new_probe ()
            end
          end
          else begin
            probe_armed := false;
            probe_next_at := now () +. 0.005
          end
        end
      end
      else if now () >= !probe_next_at then new_probe ()
    end
  in
  let release_delayed () =
    let t = now () in
    let rec go = function
      | (due, dst, frame) :: rest when due <= t ->
        disarm ();
        enqueue_to_pid dst frame;
        go rest
      | l -> l
    in
    delayq := go !delayq
  in
  let do_restarts () =
    let t = now () in
    Array.iter
      (fun s ->
        match s.s_restart_at with
        | Some at when at <= t && s.s_os_pid = 0 ->
          s.s_restart_at <- None;
          spawn_worker s
        | _ -> ())
      slots
  in
  let check_heartbeats () =
    let t = now () in
    Array.iter
      (fun s ->
        if s.s_fd <> None && s.s_configured then begin
          let misses = int_of_float ((t -. s.s_last_heard) /. hb_s) in
          if misses > s.s_miss_reported then begin
            hb_misses := !hb_misses + misses - s.s_miss_reported;
            s.s_miss_reported <- misses
          end;
          if misses >= hb_miss_limit && s.s_os_pid <> 0 then begin
            Log.info (fun m ->
                m "worker %d missed %d heartbeats; killing" s.s_id misses);
            try Unix.kill s.s_os_pid Sys.sigkill with _ -> ()
          end
        end)
      slots
  in
  let check_deadline () =
    match limits.Overload.deadline with
    | Some sec when not !stopping ->
      (* Per drive, not per session: an idle session must not blow the
         watchdog while the client thinks. *)
      let elapsed = now () -. !drive_start in
      if elapsed > sec then begin
        if !overload = None then
          overload :=
            Some (Overload.Deadline { seconds = sec; elapsed; round = 0 });
        begin_stop ~finish:false
      end
    | _ -> ()
  in
  let cleanup () =
    if not !dead then begin
      dead := true;
      Array.iter
        (fun s ->
          if s.s_os_pid <> 0 then begin
            (try Unix.kill s.s_os_pid Sys.sigkill with _ -> ());
            (try ignore (waitpid_retry [] s.s_os_pid) with _ -> ());
            s.s_os_pid <- 0
          end;
          match s.s_fd with
          | Some fd ->
            (try Unix.close fd with _ -> ());
            s.s_fd <- None
          | None -> ())
        slots;
      List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) !anon;
      anon := [];
      (try Unix.close listen_fd with _ -> ());
      match laddr with
      | Aunix path -> (try Unix.unlink path with _ -> ())
      | Atcp _ -> ()
    end
  in
  (* One run to global quiescence. In session mode ([closing] false)
     the drive ends when a [Collect] has gathered every processor's
     model; on [close] or overload it ends when every processor's
     [Done] has arrived (the historical exit). *)
  let drive_loop () =
    let t = now () in
    drive_start := t;
    (* The client may have been idle between drives: worker heartbeats
       accumulated unread in the socket buffers, so the failure
       detector must not count the gap as misses. *)
    Array.iter (fun s -> s.s_last_heard <- t) slots;
    probe_armed := false;
    probe_open := false;
    probe_next_at := 0.0;
  let finished = ref false in
  while not !finished do
    check_deadline ();
    do_restarts ();
    reap ();
    check_heartbeats ();
    release_delayed ();
    let t = now () in
    let next =
      let m = ref (t +. 0.02) in
      (match !delayq with (due, _, _) :: _ -> if due < !m then m := due | [] -> ());
      Array.iter
        (fun s ->
          match s.s_restart_at with
          | Some at when at < !m -> m := at
          | _ -> ())
        slots;
      if (not !stopping) && !probe_next_at > t && !probe_next_at < !m then
        m := !probe_next_at;
      !m
    in
    let timeout = max 0.0 (min 0.05 (next -. t)) in
    let rds =
      listen_fd
      :: (List.map fst !anon
         @ Array.to_list
             (Array.of_seq
                (Seq.filter_map
                   (fun s -> s.s_fd)
                   (Array.to_seq slots))))
    in
    let wds =
      List.filter_map
        (fun s ->
          match s.s_fd with
          | Some fd when not (Queue.is_empty s.s_out.oq) -> Some fd
          | _ -> None)
        (Array.to_list slots)
    in
    let r, w, _ =
      match Unix.select rds wds [] timeout with
      | v -> v
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem listen_fd r then begin
      match Unix.accept listen_fd with
      | fd, _ ->
        Unix.set_nonblock fd;
        (match laddr with
         | Atcp _ -> (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
         | Aunix _ -> ());
        anon := (fd, Wire.reader ()) :: !anon
      | exception Unix.Unix_error (_, _, _) -> ()
    end;
    (* Anonymous connections: waiting for their Hello. *)
    let still_anon = ref [] in
    List.iter
      (fun (fd, reader) ->
        if List.mem fd r then
          match Wire.feed reader fd with
          | `Eof -> (try Unix.close fd with _ -> ())
          | `Again -> still_anon := (fd, reader) :: !still_anon
          | `Frames (fs, nbytes) -> (
            bytes_received := !bytes_received + nbytes;
            match fs with
            | Wire.Hello { worker; inc; attempts } :: rest ->
              attach_hello fd reader ~worker ~inc ~attempts;
              let s = slots.(worker mod nworkers) in
              if s.s_fd = Some fd then
                List.iter (handle_worker_frame s) rest
            | [] -> still_anon := (fd, reader) :: !still_anon
            | _ :: _ -> (try Unix.close fd with _ -> ()))
        else still_anon := (fd, reader) :: !still_anon)
      !anon;
    anon := !still_anon;
    Array.iter
      (fun s ->
        match s.s_fd with
        | Some fd when List.mem fd r -> (
          match Wire.feed s.s_reader fd with
          | `Eof -> handle_eof s
          | `Again -> ()
          | `Frames (fs, nbytes) ->
            bytes_received := !bytes_received + nbytes;
            List.iter (handle_worker_frame s) fs
          | exception Failure _ -> handle_eof s)
        | _ -> ())
      slots;
    Array.iter
      (fun s ->
        match s.s_fd with
        | Some fd when List.mem fd w -> flush_slot s
        | _ -> ())
      slots;
    (* Also try to flush fresh output eagerly (sockets are usually
       writable; EAGAIN just defers to the next select round). *)
    Array.iter
      (fun s -> if not (Queue.is_empty s.s_out.oq) then flush_slot s)
      slots;
    check_termination ();
    if !stopping then begin
      (* Workers that (re)connect during the stop still get their Stop
         in [configure]; here we only watch for completion. *)
      if all_done () then finished := true
    end
    else if !collecting && all_collected () then begin
      collecting := false;
      finished := true
    end
  done
  in
  (* The maintenance oracle is created on first [apply]: a plain [run]
     (open + close, no batches) never pays for it, and at creation
     time the combined EDB is still the initial one, so the oracle's
     model matches the workers' pooled state. *)
  let live_oracle = ref None in
  let oracle () =
    match !live_oracle with
    | Some l -> l
    | None ->
      let l =
        Stratified.Live.create ~pushdown:config.Run_config.pushdown
          ~track:config.Run_config.track_changes rw.original
          ~edb:combined_edb
      in
      live_oracle := Some l;
      l
  in
  let incr_stats () =
    match !live_oracle with
    | None -> Stats.no_incr
    | Some l ->
      let s = Stratified.Live.totals l in
      {
        Stats.batches_applied = Stratified.Live.batches l;
        tuples_inserted = s.Delta.s_inserted;
        tuples_deleted = s.Delta.s_deleted;
        tuples_rederived = s.Delta.s_rederived;
        tuples_overdeleted = s.Delta.s_overdeleted;
        incr_firings = s.Delta.s_firings;
      }
  in
  (* Give live workers a short grace period to deliver their Bye
     (fault counters); they exit right after. *)
  let grace_byes () =
  let grace_end = now () +. 0.5 in
  let live () =
    Array.exists
      (fun s -> s.s_fd <> None && not (Hashtbl.mem byes s.s_id))
      slots
  in
  while live () && now () < grace_end do
    let rds =
      List.filter_map (fun s -> s.s_fd) (Array.to_list slots)
    in
    match Unix.select rds [] [] 0.05 with
    | [], _, _ -> ()
    | r, _, _ ->
      Array.iter
        (fun s ->
          match s.s_fd with
          | Some fd when List.mem fd r -> (
            match Wire.feed s.s_reader fd with
            | `Eof -> close_conn s
            | `Again -> ()
            | `Frames (fs, nbytes) ->
              bytes_received := !bytes_received + nbytes;
              List.iter (handle_worker_frame s) fs
            | exception Failure _ -> close_conn s)
          | _ -> ())
        slots
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
  in
  (* ---------------- assembly ---------------- *)
  let assemble_final () =
  fc.Fault.n_drops <- fc.Fault.n_drops + Shim.drops shim;
  fc.Fault.n_dups_injected <- fc.Fault.n_dups_injected + Shim.dups shim;
  fc.Fault.n_delays <- fc.Fault.n_delays + Shim.delays shim;
  fc.Fault.n_reorders <- fc.Fault.n_reorders + Shim.reorders shim;
  let bye_list = Hashtbl.fold (fun _ v acc -> v :: acc) byes [] in
  let total_stalls =
    List.fold_left (fun acc (_, st, _) -> acc + st) 0 bye_list
  in
  let peak_in_flight =
    List.fold_left (fun acc (_, _, pk) -> max acc pk) 0 bye_list
  in
  let base_faults = Fault.freeze fc ~credit_stalls:total_stalls in
  let faults =
    List.fold_left
      (fun (acc : Stats.faults) ((f : Stats.faults), _, _) ->
        {
          Stats.drops = acc.drops + f.drops;
          dups_injected = acc.dups_injected + f.dups_injected;
          dups_suppressed = acc.dups_suppressed + f.dups_suppressed;
          delays = acc.delays + f.delays;
          reorders = acc.reorders + f.reorders;
          retransmits = acc.retransmits + f.retransmits;
          acks = acc.acks + f.acks;
          crashes = acc.crashes + f.crashes;
          recoveries = acc.recoveries + f.recoveries;
          replayed = acc.replayed + f.replayed;
          checkpoints = acc.checkpoints + f.checkpoints;
          restores = acc.restores + f.restores;
          mailbox_drops = acc.mailbox_drops + f.mailbox_drops;
          credit_stalls = acc.credit_stalls + f.credit_stalls;
          alpha_raises = acc.alpha_raises + f.alpha_raises;
          alpha_decays = acc.alpha_decays + f.alpha_decays;
        })
      base_faults bye_list
  in
  let wire_retransmits =
    List.fold_left
      (fun acc ((f : Stats.faults), _, _) -> acc + f.retransmits)
      0 bye_list
  in
  let transport_stats =
    {
      Stats.reconnects = !reconnects;
      wire_retransmits;
      heartbeat_misses = !hb_misses;
      worker_restarts = !worker_restarts;
      bytes_sent = !bytes_sent;
      bytes_received = !bytes_received;
    }
  in
  let answers = Database.copy base_db in
  let pooled = ref 0 in
  for pid = 0 to n - 1 do
    match Hashtbl.find_opt dones pid with
    | None -> ()
    | Some (_, wrels) ->
      List.iter
        (fun (wr : Wire.wrel) ->
          pooled := !pooled + List.length wr.wr_tuples;
          ignore (Wire.add_wrel answers wr))
        wrels
  done;
  let per_proc =
    Array.init n (fun pid ->
        let snap, _ =
          match Hashtbl.find_opt dones pid with
          | Some v -> v
          | None -> assert false
        in
        let l = lost_of pid in
        let sent_row =
          Array.init n (fun j ->
              (if j < Array.length snap.Wire.ps_sent_row then
                 snap.Wire.ps_sent_row.(j)
               else 0)
              + l.a_sent_row.(j))
        in
        ( {
            Stats.pid;
            firings = snap.Wire.ps_firings + l.a_fir;
            new_tuples = snap.Wire.ps_new + l.a_new;
            duplicate_firings = snap.Wire.ps_dup + l.a_dup;
            iterations = snap.Wire.ps_iterations + l.a_iter;
            tuples_sent = Array.fold_left ( + ) 0 sent_row;
            tuples_received = snap.Wire.ps_received + l.a_recv;
            tuples_accepted = snap.Wire.ps_accepted + l.a_acc;
            base_resident = snap.Wire.ps_base_resident;
            active_rounds = snap.Wire.ps_iterations + l.a_iter;
            store_rows = snap.Wire.ps_store_rows;
            store_bytes = snap.Wire.ps_store_bytes;
            outbox_peak_rows = max snap.Wire.ps_outbox_rows l.a_outbox_rows;
            outbox_peak_bytes = max snap.Wire.ps_outbox_bytes l.a_outbox_bytes;
          },
          sent_row ))
  in
  let stats : Stats.t =
    {
      incr = incr_stats ();
      nprocs = n;
      rounds =
        Array.fold_left
          (fun acc (pp, _) -> max acc pp.Stats.iterations)
          0 per_proc;
      per_proc = Array.map fst per_proc;
      channel_tuples = Array.map snd per_proc;
      pooled_tuples = !pooled;
      trace = [];
      faults;
      transport = transport_stats;
      peak_in_flight;
      phase_ns = [];
      comms = Stats.no_comms;
    }
  in
  (answers, stats)
  in
  (* Stop path: drain the Byes, assemble, tear the fleet down. Raises
     when the stop was an overload. *)
  let finish () =
    grace_byes ();
    let answers, stats = assemble_final () in
    cleanup ();
    match !overload with
    | Some reason -> raise (Overload.Overload { reason; stats })
    | None -> { Session.answers; stats }
  in
  (* ---------------- initial drive ---------------- *)
  (try
     Array.iter spawn_worker slots;
     drive_loop ()
   with e ->
     cleanup ();
     raise e);
  if !stopping then ignore (finish ());
  (* ---------------- session handle ---------------- *)
  let check_alive () =
    if !dead then raise (Session.Closed "net")
  in
  let is_derived pred = List.mem pred rw.derived in
  (* Pool the per-processor models of the last completed [Collect]
     over the patched input EDB — the between-drives answer. *)
  let assemble_model () =
    let answers = Database.copy base_db in
    for pid = 0 to n - 1 do
      match Hashtbl.find_opt models pid with
      | None -> ()
      | Some (_, wrels) ->
        List.iter (fun wr -> ignore (Wire.add_wrel answers wr)) wrels
    done;
    answers
  in
  let apply batch =
    check_alive ();
    let change = Stratified.Live.apply (oracle ()) batch in
    let removed = change.Stratified.Live.c_removed in
    let added = change.Stratified.Live.c_added in
    if removed <> [] || added <> [] then begin
      if removed <> [] then begin
        let removed_tbl = Ktbl.create 64 in
        List.iter (fun kt -> Ktbl.replace removed_tbl kt ()) removed;
        let gone name wt =
          Ktbl.mem removed_tbl
            (Rewrite.original_pred name, Wire.to_tuple wt)
        in
        (* Purge the replay histories and checkpoint dumps of exactly
           the net-removed tuples: a worker rebuilt later must not
           resurrect them, while everything still true stays covered.
           A tuple re-derived after re-insertion takes fresh sequence
           numbers, so it re-enters the history on its own. *)
        Hashtbl.iter
          (fun _pid r ->
            r :=
              List.map
                (fun (src, sinc, seq, batch) ->
                  ( src, sinc, seq,
                    List.filter
                      (fun (name, wt) -> not (gone name wt))
                      batch ))
                !r)
          history;
        let patched =
          Hashtbl.fold
            (fun pid (r : Wire.restore) acc ->
              ( pid,
                {
                  r with
                  Wire.rs_tuples =
                    List.filter
                      (fun (name, wt) -> not (gone name wt))
                      r.Wire.rs_tuples;
                } )
              :: acc)
            dumps []
        in
        List.iter (fun (pid, r) -> Hashtbl.replace dumps pid r) patched
      end;
      (* Keep both EDB views current: restarted workers rebuild base
         fragments from [wedb], the assemblies copy [base_db]. *)
      List.iter
        (fun (pred, t) ->
          if not (is_derived pred) then
            List.iter
              (fun db ->
                match Database.find db pred with
                | Some rel -> ignore (Relation.remove_all rel (Tuple.equal t))
                | None -> ())
              [ combined_edb; base_db ])
        removed;
      List.iter
        (fun (pred, t) ->
          if not (is_derived pred) then begin
            ignore (Database.add_fact combined_edb pred t);
            ignore (Database.add_fact base_db pred t)
          end)
        added;
      wedb := Wire.of_db combined_edb;
      (* The deletion patch goes only to live configured workers: a
         worker rebuilt afterwards starts from the patched state and
         must never replay the frame (its history injections would
         still be pending when the retraction arrived). *)
      if removed <> [] then begin
        let dels = Wire.of_batch removed in
        Array.iter
          (fun s ->
            if s.s_configured && s.s_fd <> None then
              enqueue s (Wire.Patch { dels }))
          slots
      end;
      (* Base insertions enter at the processors hosting them; their
         consequences re-derive — and re-route — during the drive. *)
      let by_pid = Array.make n [] in
      List.iter
        (fun (pred, t) ->
          if not (is_derived pred) then
            for pid = 0 to n - 1 do
              if rw.resident pid pred t then
                by_pid.(pid) <- (pred, t) :: by_pid.(pid)
            done)
        added;
      Array.iteri
        (fun pid batch ->
          if batch <> [] then
            enqueue_to_pid pid
              (Wire.Update { dst = pid; batch = Wire.of_batch (List.rev batch) }))
        by_pid;
      (try drive_loop ()
       with e ->
         cleanup ();
         raise e);
      if !stopping then ignore (finish ())
    end;
    {
      Session.oc_added = added;
      oc_removed = removed;
      oc_summary = change.Stratified.Live.c_summary;
    }
  in
  let query pred =
    check_alive ();
    if is_derived pred then begin
      let acc = ref None in
      Hashtbl.iter
        (fun _pid (_, wrels) ->
          List.iter
            (fun (wr : Wire.wrel) ->
              if String.equal wr.Wire.wr_pred pred then begin
                let target =
                  match !acc with
                  | Some r -> r
                  | None ->
                    let r = Relation.create ~arity:wr.Wire.wr_arity () in
                    acc := Some r;
                    r
                in
                List.iter
                  (fun wt -> ignore (Relation.add target (Wire.to_tuple wt)))
                  wr.Wire.wr_tuples
              end)
            wrels)
        models;
      match !acc with
      | Some r -> Relation.sorted_elements r
      | None -> []
    end
    else
      match Database.find base_db pred with
      | Some rel -> Relation.sorted_elements rel
      | None -> []
  in
  let model () =
    check_alive ();
    assemble_model ()
  in
  let close () =
    check_alive ();
    closing := true;
    (try drive_loop ()
     with e ->
       cleanup ();
       raise e);
    finish ()
  in
  Session.v ~runtime:"net" ~apply ~query ~model ~close

let run ~config ~program ~spec ?seed ?procs ?transport ?partition ?hb_ms
    ?hb_miss_limit ?max_restarts ?spawn (rw : Rewrite.t) ~edb =
  Session.close
    (open_session ~config ~program ~spec ?seed ?procs ?transport ?partition
       ?hb_ms ?hb_miss_limit ?max_restarts ?spawn rw ~edb)

let runtime ~program ~spec ?seed ?procs ?transport ?partition ?hb_ms ?spawn
    () : (module Pardatalog.Runtime.S) =
  (module struct
    let name = "net"

    let run ~config rw ~edb =
      run ~config ~program ~spec ?seed ?procs ?transport ?partition ?hb_ms
        ?spawn rw ~edb

    let open_session ~config rw ~edb =
      open_session ~config ~program ~spec ?seed ?procs ?transport ?partition
        ?hb_ms ?spawn rw ~edb
  end)
