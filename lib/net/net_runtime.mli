(** The multi-process TCP runtime.

    A third {!Pardatalog.Runtime.S} implementation: each paper
    processor lives in an OS {e process} (several processors per
    worker process, round-robin by [pid mod procs]), connected to a
    coordinator over Unix-domain or loopback-TCP sockets in a star
    topology. The coordinator routes every inter-processor batch,
    passes payload frames through the deterministic fault {!Shim},
    supervises the workers (SIGKILL, socket EOF and missed heartbeats
    are all detected), and restarts dead workers with a jittered
    exponential backoff ({!Pardatalog.Backoff}), restoring them from
    their last checkpoint and replaying its channel history so that
    the pooled answers still equal the sequential evaluation.

    Reliability reuses the in-process layer's design on real sockets:
    per-channel sequence numbers, receiver-side duplicate suppression
    keyed by (sender, {e incarnation}, sequence) — the incarnation
    makes post-restart sequence reuse harmless — acknowledgements
    doubling as credit grants, and bounded retransmission.

    Termination is probe-based and sound across reconnects: the
    coordinator counts every frame it delivers to each worker since
    its [Config], the worker reports how many it has processed, and a
    probe epoch passes only when every worker is idle with matching
    counts, twice in a row with no traffic, no delayed frames and no
    pending restart in between.

    Not supported: the adaptive degradation dial and the
    coordinator-stateful schemes ([example2], [adaptive]) — their
    construction cannot be replayed deterministically in another
    process. [Run_config] fields that belong to the simulator
    ([resend_all], [replicate_base], [max_rounds], [network]) and the
    domain runtime ([detector], [domains]) are ignored, as are the
    observability sinks (workers are separate processes; wire-level
    counters are reported in {!Pardatalog.Stats.transport} instead). *)

val worker_main : addr:string -> worker:int -> inc:int -> int
(** Worker-process entry point ([datalogp worker]): dial [addr]
    (["unix:PATH"] or ["tcp:PORT"] on loopback) with backoff, send
    [Hello], receive [Config], evaluate own processors until [Stop].
    Returns the process exit code: 0 after a normal [Bye], 2 on a
    protocol or setup error, 3 when the coordinator vanished. *)

type spawn =
  | Fork  (** [Unix.fork] the current process (tests, bench). *)
  | Exec of string
      (** Spawn [exe worker --addr A --worker W --inc I] — the CLI
          passes its own executable. *)

val run :
  config:Pardatalog.Run_config.t ->
  program:string ->
  spec:Wire.scheme_spec ->
  ?seed:int ->
  ?procs:int ->
  ?transport:[ `Unix | `Tcp ] ->
  ?partition:float ->
  ?hb_ms:int ->
  ?hb_miss_limit:int ->
  ?max_restarts:int ->
  ?spawn:spawn ->
  Pardatalog.Rewrite.t ->
  edb:Datalog.Database.t ->
  Pardatalog.Sim_runtime.result
(** Evaluate [rw] (which the caller built from [program] text and
    [spec] — workers rebuild the same rewrite deterministically) over
    [procs] worker processes (default 4, clamped to [rw.nprocs]).
    [transport] defaults to [`Unix]; [partition] (default 0) is the
    shim's channel-cut probability; [hb_ms] (default 25) the heartbeat
    period; [hb_miss_limit] (default 40) the missed-heartbeat
    declaration threshold; [max_restarts] (default 8) the per-worker
    restart budget.

    @raise Pardatalog.Overload.Overload on a worker budget breach or a
    blown coordinator deadline, with partial statistics.
    @raise Invalid_argument on an adaptive dial or an inconsistent
    program/spec.
    @raise Failure when a worker exceeds its restart budget.

    Equivalent to {!open_session} followed immediately by
    {!Pardatalog.Session.close}. *)

val open_session :
  config:Pardatalog.Run_config.t ->
  program:string ->
  spec:Wire.scheme_spec ->
  ?seed:int ->
  ?procs:int ->
  ?transport:[ `Unix | `Tcp ] ->
  ?partition:float ->
  ?hb_ms:int ->
  ?hb_miss_limit:int ->
  ?max_restarts:int ->
  ?spawn:spawn ->
  Pardatalog.Rewrite.t ->
  edb:Datalog.Database.t ->
  Pardatalog.Session.t
(** Evaluate to global quiescence as {!run} does, but keep the worker
    processes — engines, channel histories, checkpoint dumps — resident
    and return a live {!Pardatalog.Session.t}. Each
    {!Pardatalog.Session.apply} computes the net patch with
    {!Datalog.Stratified.Live}, purges the coordinator's replay
    histories and checkpoint dumps of the net deletions, sends a
    [Patch] (retractions) and per-processor [Update]s (base
    insertions) to the resident workers, and drives to quiescence
    again — supervision, restarts, the fault shim, credit and the
    watchdog all behave as on the initial drive (the wall-clock
    deadline is per drive). An empty net batch does no work and wakes
    no worker. A worker that dies at any point is rebuilt from the
    patched EDB and the patched histories, so crash recovery remains
    exact across batches. {!Pardatalog.Session.close} performs the
    normal Stop round and returns the final answers and cumulative
    statistics. After an overload the handle is dead: every later call
    raises {!Pardatalog.Session.Closed}.
    @raise Pardatalog.Overload.Overload / Invalid_argument / Failure
    as {!run}, from [open_session] or any later [apply]. *)

val runtime :
  program:string ->
  spec:Wire.scheme_spec ->
  ?seed:int ->
  ?procs:int ->
  ?transport:[ `Unix | `Tcp ] ->
  ?partition:float ->
  ?hb_ms:int ->
  ?spawn:spawn ->
  unit ->
  (module Pardatalog.Runtime.S)
(** Package a parameterized [run]/[open_session] pair as a named
    runtime (["net"]) for code written against
    {!Pardatalog.Runtime.S}. *)
