module Fault = Pardatalog.Fault

type t = {
  plan : Fault.plan;
  partition : float;
  index : (int * int, int) Hashtbl.t;  (* channel -> frames routed *)
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable reorders : int;
}

let create ~plan ~partition =
  if not (partition >= 0.0 && partition < 1.0) then
    invalid_arg "Shim.create: partition must be in [0, 1)";
  {
    plan;
    partition;
    index = Hashtbl.create 64;
    drops = 0;
    dups = 0;
    delays = 0;
    reorders = 0;
  }

type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_delay_ms : int;
}

let mix64 z =
  let z = z * 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let window = 16

(* A partitioned window is a deterministic function of the channel and
   the window index; the fair-lossy ceiling still applies, so a
   retransmitted frame eventually crosses even a cut link (the cut
   heals from the retrier's point of view). *)
let partitioned t ~src ~dst ~attempt idx =
  t.partition > 0.0
  && attempt < Fault.drop_ceiling
  &&
  let epoch = idx / window in
  let h =
    mix64
      (mix64 ((t.plan.Fault.seed * 0x9E3779B1) lxor (src * 8191) lxor dst)
       lxor epoch)
    land max_int
  in
  float_of_int (h mod 1_000_000) /. 1_000_000. < t.partition

let verdict t ~src ~dst ~seq ~attempt =
  let idx =
    let k = (src, dst) in
    let i = Option.value ~default:0 (Hashtbl.find_opt t.index k) in
    Hashtbl.replace t.index k (i + 1);
    i
  in
  let fate = t.plan == Fault.none || Fault.is_none t.plan in
  let f =
    if fate then
      { Fault.f_drop = false; f_dup = false; f_delay = 0; f_jitter = 0 }
    else Fault.fate t.plan ~src ~dst ~seq ~attempt
  in
  let drop = f.Fault.f_drop || partitioned t ~src ~dst ~attempt idx in
  if drop then begin
    t.drops <- t.drops + 1;
    { v_drop = true; v_dup = false; v_delay_ms = 0 }
  end
  else begin
    if f.Fault.f_dup then t.dups <- t.dups + 1;
    if f.Fault.f_delay > 0 then t.delays <- t.delays + 1;
    if f.Fault.f_jitter > 0 then t.reorders <- t.reorders + 1;
    (* A simulated-round delay becomes 2 ms of wire latency, a reorder
       jitter 1 ms: enough to change arrival order, small enough to
       keep test wall-clock low. *)
    {
      v_drop = false;
      v_dup = f.Fault.f_dup;
      v_delay_ms = (2 * f.Fault.f_delay) + f.Fault.f_jitter;
    }
  end

let drops t = t.drops
let dups t = t.dups
let delays t = t.delays
let reorders t = t.reorders
