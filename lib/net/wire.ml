type wconst = Wint of int | Wsym of string
type wtuple = wconst array
type wbatch = (string * wtuple) list

type wrel = {
  wr_pred : string;
  wr_arity : int;
  wr_tuples : wtuple list;
}

let of_const = function
  | Datalog.Const.Int i -> Wint i
  | Datalog.Const.Sym s -> Wsym (Datalog.Symtab.name s)

let to_const = function
  | Wint i -> Datalog.Const.int i
  | Wsym s -> Datalog.Const.sym s

let of_tuple t = Array.map of_const (Datalog.Tuple.to_array t)
let to_tuple wt = Datalog.Tuple.make (Array.map to_const wt)
let of_batch b = List.map (fun (pred, t) -> (pred, of_tuple t)) b
let to_batch wb = List.map (fun (pred, wt) -> (pred, to_tuple wt)) wb

let of_db db =
  List.filter_map
    (fun pred ->
      match Datalog.Database.find db pred with
      | None -> None
      | Some rel ->
        let tuples =
          Datalog.Relation.fold (fun t acc -> of_tuple t :: acc) rel []
        in
        Some
          {
            wr_pred = pred;
            wr_arity = Datalog.Relation.arity rel;
            wr_tuples = List.rev tuples;
          })
    (Datalog.Database.predicates db)

let add_wrel db wrel =
  let rel = Datalog.Database.declare db wrel.wr_pred wrel.wr_arity in
  List.fold_left
    (fun n wt ->
      if Datalog.Relation.add rel (to_tuple wt) then n + 1 else n)
    0 wrel.wr_tuples

type scheme_spec =
  | Spec_q of { ve : string list; vr : string list }
  | Spec_nocomm
  | Spec_example3
  | Spec_wolfson
  | Spec_tradeoff of float
  | Spec_general
  | Spec_plan of string

type restore = {
  rs_pid : int;
  rs_round : int;
  rs_tuples : wbatch;
}

type config = {
  cf_program : string;
  cf_spec : scheme_spec;
  cf_nprocs : int;
  cf_procs : int;
  cf_seed : int;
  cf_pushdown : bool;
  cf_fault : Pardatalog.Fault.plan;
  cf_partition : float;
  cf_capacity : int option;
  cf_limits : Pardatalog.Overload.limits;
  cf_edb : wrel list;
  cf_crashes_done : (int * int list) list;
  cf_restores : restore list;
  cf_hb_ms : int;
}

type psnap = {
  ps_pid : int;
  ps_iterations : int;
  ps_firings : int;
  ps_new : int;
  ps_dup : int;
  ps_sent_row : int array;
  ps_received : int;
  ps_accepted : int;
  ps_base_resident : int;
  ps_store_rows : int;
  ps_store_bytes : int;
  ps_outbox_rows : int;
  ps_outbox_bytes : int;
  ps_rounds : int;
}

type frame =
  | Hello of { worker : int; inc : int; attempts : int }
  | Config of config
  | Data of {
      src : int;
      dst : int;
      inc : int;
      seq : int;
      attempt : int;
      replay : bool;
      batch : wbatch;
    }
  | Tack of { src : int; dst : int; inc : int; seq : int }
  | Inject of { dst : int; batch : wbatch }
  | Patch of { dels : wbatch }
  | Update of { dst : int; batch : wbatch }
  | Collect of { gen : int }
  | Model of { gen : int; pid : int; snap : psnap; answers : wrel list }
  | Probe of { epoch : int }
  | Status of {
      worker : int;
      inc : int;
      epoch : int;
      idle : bool;
      frames_received : int;
    }
  | Heartbeat of { worker : int; inc : int; snaps : psnap list }
  | Checkpoint of {
      pid : int;
      inc : int;
      round : int;
      tuples : wbatch;
      seen : (int * int * int) list;
    }
  | Crashing of { pid : int; round : int; snaps : psnap list }
  | Breach of { reason : Pardatalog.Overload.reason }
  | Stop of { finish : bool }
  | Done of { pid : int; inc : int; snap : psnap; answers : wrel list }
  | Bye of {
      worker : int;
      inc : int;
      faults : Pardatalog.Stats.faults;
      credit_stalls : int;
      peak_in_flight : int;
    }

(* A frame larger than this is a protocol error, not data: the biggest
   legitimate frames (Config with a full EDB, a checkpoint dump) stay
   well under it, and the guard keeps a corrupted length prefix from
   demanding a multi-gigabyte allocation. *)
let max_frame_bytes = 256 * 1024 * 1024

let encode frame =
  let payload = Marshal.to_string frame [] in
  let len = String.length payload in
  if len > max_frame_bytes then failwith "Wire.encode: oversized frame";
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

type reader = {
  mutable buf : Bytes.t;
  mutable len : int;  (* valid bytes in [buf] *)
}

let reader () = { buf = Bytes.create 65536; len = 0 }

let ensure r extra =
  if r.len + extra > Bytes.length r.buf then begin
    let cap = max (2 * Bytes.length r.buf) (r.len + extra) in
    let fresh = Bytes.create cap in
    Bytes.blit r.buf 0 fresh 0 r.len;
    r.buf <- fresh
  end

(* Decode every complete frame at the front of the buffer and compact
   the remainder. *)
let drain_frames r =
  let frames = ref [] in
  let off = ref 0 in
  let continue = ref true in
  while !continue do
    if r.len - !off >= 4 then begin
      let len = Int32.to_int (Bytes.get_int32_be r.buf !off) in
      if len < 0 || len > max_frame_bytes then
        failwith "Wire.feed: bad frame length";
      if r.len - !off >= 4 + len then begin
        let frame : frame = Marshal.from_bytes r.buf (!off + 4) in
        frames := frame :: !frames;
        off := !off + 4 + len
      end
      else continue := false
    end
    else continue := false
  done;
  if !off > 0 then begin
    Bytes.blit r.buf !off r.buf 0 (r.len - !off);
    r.len <- r.len - !off
  end;
  List.rev !frames

let feed r fd =
  ensure r 65536;
  match Unix.read fd r.buf r.len (Bytes.length r.buf - r.len) with
  | 0 -> `Eof
  | n ->
    r.len <- r.len + n;
    `Frames (drain_frames r, n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Again
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Frames ([], 0)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof

let write_frame fd frame =
  let s = encode frame in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  len
