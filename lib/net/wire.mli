(** Wire format of the multi-process runtime.

    Every frame on a coordinator-worker socket is a 4-byte big-endian
    length prefix followed by a [Marshal]-encoded {!frame}. Frames are
    closure-free plain data; tuples travel as {!wconst} arrays in which
    symbols are carried by name, because interned symbol ids are
    per-process. Workers rebuild their rewrite deterministically from
    the program source text and a {!scheme_spec} rather than receiving
    closures: hash-based routing agrees across processes because every
    worker interns the same symbols in the same order (program text
    first, then the EDB in wire order — derived tuples cannot invent
    new symbols). *)

(** {1 Portable tuples} *)

type wconst = Wint of int | Wsym of string

type wtuple = wconst array

type wbatch = (string * wtuple) list
(** (predicate, tuple) pairs — the payload unit of a [Data] frame. *)

type wrel = {
  wr_pred : string;
  wr_arity : int;
  wr_tuples : wtuple list;
}

val of_const : Datalog.Const.t -> wconst
val to_const : wconst -> Datalog.Const.t
val of_tuple : Datalog.Tuple.t -> wtuple
val to_tuple : wtuple -> Datalog.Tuple.t
val of_batch : (string * Datalog.Tuple.t) list -> wbatch
val to_batch : wbatch -> (string * Datalog.Tuple.t) list

val of_db : Datalog.Database.t -> wrel list
(** Serialize every relation (predicate order as listed by the
    database — computed once, shipped identically to every worker). *)

val add_wrel : Datalog.Database.t -> wrel -> int
(** Declare and insert; returns the number of tuples actually new. *)

(** {1 Worker configuration} *)

(** How the worker rebuilds the coordinator's rewrite. Mirrors the CLI
    scheme selection; [Spec_plan] carries a plan-certificate JSON. The
    [example2] and adaptive schemes are not representable: their
    construction is stateful at the coordinator (random EDB partition,
    shared dial) and cannot be replayed deterministically in another
    process. *)
type scheme_spec =
  | Spec_q of { ve : string list; vr : string list }
  | Spec_nocomm
  | Spec_example3
  | Spec_wolfson
  | Spec_tradeoff of float
  | Spec_general
  | Spec_plan of string

type restore = {
  rs_pid : int;
  rs_round : int;  (** Local rounds executed when the dump was taken. *)
  rs_tuples : wbatch;
      (** Derived ([@in]/[@out]) tuples: the coordinator's
          accumulation of every delta checkpoint received so far. *)
}

type config = {
  cf_program : string;  (** Datalog source text. *)
  cf_spec : scheme_spec;
  cf_nprocs : int;  (** Paper processors. *)
  cf_procs : int;  (** Worker processes; pid [i] lives on worker [i mod procs]. *)
  cf_seed : int;
  cf_pushdown : bool;
  cf_fault : Pardatalog.Fault.plan;
  cf_partition : float;
      (** Shim partition probability: with a [Fault.none] plan a
          positive partition still forces the reliable layer on. *)
  cf_capacity : int option;
  cf_limits : Pardatalog.Overload.limits;
      (** The worker enforces the store/outbox budgets; the deadline
          belongs to the coordinator. *)
  cf_edb : wrel list;  (** Full EDB (program facts merged). *)
  cf_crashes_done : (int * int list) list;
      (** Scheduled crash rounds already fired, per pid — so a
          restarted worker does not re-fire them. *)
  cf_restores : restore list;  (** Checkpoint dumps for own pids. *)
  cf_hb_ms : int;  (** Heartbeat period. *)
}

(** {1 Frames} *)

(** Cumulative per-processor counters, snapshotted into heartbeats,
    pre-crash notices and final reports so the coordinator can fold
    the work of dead incarnations into the pooled statistics. *)
type psnap = {
  ps_pid : int;
  ps_iterations : int;
  ps_firings : int;
  ps_new : int;
  ps_dup : int;
  ps_sent_row : int array;
  ps_received : int;
  ps_accepted : int;
  ps_base_resident : int;
  ps_store_rows : int;
  ps_store_bytes : int;
  ps_outbox_rows : int;
  ps_outbox_bytes : int;
  ps_rounds : int;
}

type frame =
  | Hello of { worker : int; inc : int; attempts : int }
      (** First frame on every connection. [attempts] = connect tries
          beyond the first (counted as reconnects). *)
  | Config of config
  | Data of {
      src : int;
      dst : int;
      inc : int;  (** Sender incarnation: stale acks are discarded. *)
      seq : int;
      attempt : int;  (** Fair-lossy shim input. *)
      replay : bool;
      batch : wbatch;
    }
  | Tack of { src : int; dst : int; inc : int; seq : int }
      (** Transport ack / credit grant for [Data src->dst seq].
          Originated by the coordinator the moment it records the
          payload for replay — coordinator receipt guarantees eventual
          delivery, and an ack can never die with a worker. *)
  | Inject of { dst : int; batch : wbatch }
      (** Coordinator-side history replay into a restored processor;
          not acked, not sequence-numbered (receiver dedup is by
          content). *)
  | Patch of { dels : wbatch }
      (** Session update (coordinator to worker, between drives): net
          deletions under their original predicate names. The worker
          retracts each from every owned engine (derived tuples under
          both [@out] and [@in]) and purges its channel-dedup and
          checkpoint-cover tables so a later re-derivation travels the
          channels again. Only sent to live configured workers: a
          worker rebuilt afterwards starts from the patched
          [cf_edb]/history and must never see the frame. *)
  | Update of { dst : int; batch : wbatch }
      (** Session update: net base-fact insertions for processor
          [dst], injected under their original (base) names — pending
          work for the next drive. Idempotent (the engine discards
          known tuples), so redelivery to a restarted worker whose
          [cf_edb] already contains them is harmless. *)
  | Collect of { gen : int }
      (** End-of-drive answer collection: the worker replies with one
          {!Model} per owned processor and keeps running — the
          session-mode counterpart of [Stop]. Sent only after a passed
          termination probe, so every engine is quiescent. *)
  | Model of { gen : int; pid : int; snap : psnap; answers : wrel list }
      (** Reply to {!Collect}; [gen] echoes the collect generation so
          the coordinator can discard answers from a collection that a
          worker restart cancelled. *)
  | Probe of { epoch : int }
  | Status of {
      worker : int;
      inc : int;
      epoch : int;
      idle : bool;  (** No engine work, no unacked batch, no deferred output. *)
      frames_received : int;  (** Frames processed since [Config]. *)
    }
  | Heartbeat of { worker : int; inc : int; snaps : psnap list }
  | Checkpoint of {
      pid : int;
      inc : int;
      round : int;
      tuples : wbatch;
          (** Derived tuples NOT covered by an earlier checkpoint of
              this incarnation (or by the restore dump it started
              from) — a delta; the coordinator accumulates. *)
      seen : (int * int * int) list;
          (** (src, inc, seq) receipts NOT covered by an earlier
              checkpoint of this incarnation — a delta, like [tuples];
              the coordinator accumulates and skips covered frames
              when replaying history into a restarted processor. *)
    }
  | Crashing of { pid : int; round : int; snaps : psnap list }
      (** Courtesy notice flushed just before a scheduled
          self-SIGKILL: records the crash round and the counters that
          die with the process. *)
  | Breach of { reason : Pardatalog.Overload.reason }
  | Stop of { finish : bool }
      (** [finish] = run each engine to local fixpoint before
          reporting (normal termination); [false] = report partial
          state immediately (overload/deadline). *)
  | Done of { pid : int; inc : int; snap : psnap; answers : wrel list }
  | Bye of {
      worker : int;
      inc : int;
      faults : Pardatalog.Stats.faults;
      credit_stalls : int;
      peak_in_flight : int;
    }

val encode : frame -> string
(** Length-prefixed; ready to write. *)

val max_frame_bytes : int

(** {1 Reading} *)

type reader

val reader : unit -> reader

val feed :
  reader ->
  Unix.file_descr ->
  [ `Frames of frame list * int  (** decoded frames, bytes consumed *)
  | `Eof
  | `Again  (** nothing available on a nonblocking fd *) ]
(** Read once from [fd] and decode every complete frame. A blocking
    caller should [select] first. @raise Failure on an oversized or
    torn frame. *)

val write_frame : Unix.file_descr -> frame -> int
(** Blocking write of one frame; returns bytes written.
    @raise Unix.Unix_error (e.g. [EPIPE]) when the peer is gone. *)
