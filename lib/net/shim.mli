(** Deterministic socket-level fault shim.

    The coordinator passes every [Data] frame it routes through the
    shim, which decides — as a pure hash of the fault-plan seed and
    the frame coordinates (channel, sequence number, transmission
    attempt) — whether the frame is dropped, duplicated or delayed,
    exactly like the in-process fault layer ({!Pardatalog.Fault.fate}),
    plus a net-only {e partition} fault: a channel can go dark for a
    whole window of frames, modelling a link cut rather than
    independent losses.

    Scope: the shim models a lossy {e payload} plane only. Control
    frames (acks, probes, heartbeats, stop) are never faulted — they
    stand for the runtime's own bookkeeping, not the network — and
    bytes are never corrupted (TCP already guarantees integrity; what
    it cannot guarantee, and what the shim models, is liveness).
    Fair-lossiness is inherited from the plan: an attempt numbered
    [>= Fault.drop_ceiling] is always delivered, so retransmission
    terminates even across a partition. *)

type t

val create : plan:Pardatalog.Fault.plan -> partition:float -> t
(** [partition] = probability that a channel's current window (16
    consecutive frames) is cut, in [0, 1). *)

type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_delay_ms : int;  (** Extra latency before delivery (0 = immediate). *)
}

val verdict : t -> src:int -> dst:int -> seq:int -> attempt:int -> verdict
(** The fate of one [Data] frame. Deterministic in (plan seed, src,
    dst, seq, attempt) and in the per-channel frame index (for the
    partition windows), which is itself deterministic for a fixed
    frame arrival order and harmless to replay divergence otherwise:
    correctness never depends on {e which} frames are cut. *)

val drops : t -> int
val dups : t -> int
val delays : t -> int
val reorders : t -> int
(** Frames jittered by the reorder fault (delivered late, so later
    frames overtake them). *)
