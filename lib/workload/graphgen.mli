(** Generators of binary "parent"-style relations.

    Each generator returns a deduplicated edge list over integer nodes
    [0 .. nodes-1]. The families cover the communication-pattern
    extremes of the paper's examples: deep chains (long recursions,
    tiny frontiers), trees (balanced fan-out), random digraphs (wide
    frontiers, duplicate derivations), cycles (maximal closures) and
    layered DAGs (bounded recursion depth with controllable width). *)

type edge = int * int

val chain : int -> edge list
(** [chain n]: edges [i → i+1] for [i < n-1]. *)

val cycle : int -> edge list
(** [chain n] plus the closing edge [n-1 → 0]. *)

val binary_tree : depth:int -> edge list
(** Complete binary tree of the given depth (root 0; [2^(depth+1) - 2]
    edges).
    @raise Invalid_argument if [depth < 0] or [depth > 24]. *)

val random_digraph : Rng.t -> nodes:int -> edges:int -> edge list
(** Uniform distinct directed edges (no self-loops). [edges] is capped
    at [nodes*(nodes-1)]. *)

val layered_dag : Rng.t -> layers:int -> width:int -> out_degree:int -> edge list
(** Nodes arranged in [layers] rows of [width]; each node gets
    [out_degree] random successors in the next row. Recursion depth is
    exactly [layers - 1]. *)

val hotspot : Rng.t -> nodes:int -> edges:int -> hubs:int -> edge list
(** Skewed digraph: ~90% of the distinct edges leave one of the first
    [hubs] nodes (clamped to [1 .. nodes]), the rest are uniform — a
    hot-spot workload whose closure concentrates traffic on the few
    processors owning the hub values. [edges] is capped by
    availability; generation is attempt-bounded, so a saturated hub
    set may return slightly fewer edges. *)

val grid : rows:int -> cols:int -> edge list
(** Right and down edges on a [rows × cols] grid. *)

val node_count : edge list -> int
(** Number of distinct endpoints. *)
