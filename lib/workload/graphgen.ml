type edge = int * int

let chain n = List.init (max 0 (n - 1)) (fun i -> (i, i + 1))

let cycle n = if n < 2 then [] else (n - 1, 0) :: chain n

let binary_tree ~depth =
  if depth < 0 || depth > 24 then
    invalid_arg "Graphgen.binary_tree: depth must be in [0,24]";
  let edges = ref [] in
  (* Nodes at depth d occupy [2^d - 1, 2^(d+1) - 2]. *)
  let last_parent = (1 lsl depth) - 2 in
  for parent = last_parent downto 0 do
    edges := (parent, (2 * parent) + 1) :: (parent, (2 * parent) + 2) :: !edges
  done;
  !edges

let random_digraph rng ~nodes ~edges =
  if nodes < 2 then []
  else begin
    let wanted = min edges (nodes * (nodes - 1)) in
    let seen = Hashtbl.create (2 * wanted) in
    let acc = ref [] in
    (* Rejection sampling is fine while the graph is sparse; fall back
       to exhaustive choice when the request is dense. *)
    if wanted * 3 < nodes * (nodes - 1) then begin
      while Hashtbl.length seen < wanted do
        let a = Rng.int rng nodes and b = Rng.int rng nodes in
        if a <> b && not (Hashtbl.mem seen (a, b)) then begin
          Hashtbl.add seen (a, b) ();
          acc := (a, b) :: !acc
        end
      done;
      List.rev !acc
    end
    else begin
      let all = Array.make (nodes * (nodes - 1)) (0, 0) in
      let k = ref 0 in
      for a = 0 to nodes - 1 do
        for b = 0 to nodes - 1 do
          if a <> b then begin
            all.(!k) <- (a, b);
            incr k
          end
        done
      done;
      Rng.shuffle rng all;
      Array.to_list (Array.sub all 0 wanted)
    end
  end

let layered_dag rng ~layers ~width ~out_degree =
  if layers < 2 || width < 1 then []
  else begin
    let node layer pos = (layer * width) + pos in
    let acc = ref [] in
    for layer = 0 to layers - 2 do
      for pos = 0 to width - 1 do
        let seen = Hashtbl.create 8 in
        let tries = ref 0 in
        while Hashtbl.length seen < min out_degree width && !tries < 20 * out_degree
        do
          incr tries;
          let succ = Rng.int rng width in
          if not (Hashtbl.mem seen succ) then begin
            Hashtbl.add seen succ ();
            acc := (node layer pos, node (layer + 1) succ) :: !acc
          end
        done
      done
    done;
    List.rev !acc
  end

let hotspot rng ~nodes ~edges ~hubs =
  if nodes < 2 then []
  else begin
    let hubs = max 1 (min hubs nodes) in
    let wanted = min edges (nodes * (nodes - 1)) in
    let seen = Hashtbl.create (2 * wanted) in
    let acc = ref [] in
    let attempts = ref 0 in
    (* Nine out of ten edges leave a hub, so the closure frontier — and
       with a hash-partitioned scheme, one processor's channels — is
       dominated by a handful of source values. Attempts are bounded:
       a saturated hub neighbourhood stops growing instead of
       spinning. *)
    while Hashtbl.length seen < wanted && !attempts < 30 * wanted do
      incr attempts;
      let a =
        if Rng.int rng 10 < 9 then Rng.int rng hubs else Rng.int rng nodes
      in
      let b = Rng.int rng nodes in
      if a <> b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        acc := (a, b) :: !acc
      end
    done;
    List.rev !acc
  end

let grid ~rows ~cols =
  let node r c = (r * cols) + c in
  let acc = ref [] in
  for r = rows - 1 downto 0 do
    for c = cols - 1 downto 0 do
      if c + 1 < cols then acc := (node r c, node r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (node r c, node (r + 1) c) :: !acc
    done
  done;
  !acc

let node_count edges =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace seen a ();
      Hashtbl.replace seen b ())
    edges;
  Hashtbl.length seen
