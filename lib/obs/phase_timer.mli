(** Always-on wall-clock phase timers.

    Where {!Trace} records individual span events for offline viewing
    (and is usually disabled), a phase timer accumulates per-phase
    nanosecond totals cheaply enough to stay on for every run: one
    [Unix.gettimeofday] pair per span and no allocation on the hot
    path. The runtimes surface the totals as [Stats.phase_ns].

    Not thread-safe: the simulator owns a single timer; the multicore
    runtime gives each worker domain its own and pools the
    {!totals} with {!merge_totals} after the join. *)

type t

val create : ?metrics:Metrics.t -> unit -> t
(** A fresh timer. When [metrics] is an enabled registry, every
    recorded span is also observed under the histogram
    ["phase_ns.<name>"]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f ()] and adds its wall-clock duration to
    the accumulator for [name]. The duration is recorded even if [f]
    raises. *)

val record : t -> string -> int -> unit
(** Add a measured duration (nanoseconds) directly. *)

val totals : t -> (string * int) list
(** Total nanoseconds per phase, sorted by phase name. *)

val stats : t -> string -> (int * int * int) option
(** [(count, total_ns, max_ns)] for one phase, if recorded. *)

val merge_totals :
  (string * int) list -> (string * int) list -> (string * int) list
(** Pointwise sum of two {!totals} lists, sorted by phase name. *)
