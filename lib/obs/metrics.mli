(** A small metrics registry: named counters, gauges and histograms.

    Like {!Trace}, the registry is zero-cost when disabled — every
    update is a single flag test — so instrumentation can sit on hot
    paths of both runtimes without perturbing their behaviour.
    Thread-safe.

    The snapshot is versioned JSON ([{"schema": 1, ...}]), following
    the same versioning convention as [Stats.to_json] (itself at
    schema 3) and embedded in the bench baseline [BENCH_PR4.json]. *)

type t

val none : t
(** The disabled registry: all updates are no-ops, all reads return
    zero / empty. *)

val create : unit -> t
val enabled : t -> bool

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a counter, creating it at zero first. *)

val set_gauge : t -> string -> int -> unit
val max_gauge : t -> string -> int -> unit
(** [max_gauge t name v] sets the gauge to [max current v]. *)

val observe : t -> string -> float -> unit
(** Record a histogram observation (count / sum / min / max and
    power-of-two buckets). *)

val counter : t -> string -> int
(** Current counter value, 0 if absent or disabled. *)

val gauge : t -> string -> int
(** Current gauge value, 0 if absent or disabled. *)

val hist_count : t -> string -> int
(** Number of observations recorded under a histogram name. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val to_json : t -> string
(** Versioned snapshot:
    [{"schema":1,"counters":{...},"gauges":{...},"histograms":{...}}]
    with names sorted for deterministic output. *)

val write : t -> string -> unit
(** Write [to_json] to a file (valid empty snapshot when disabled). *)
