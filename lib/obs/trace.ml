type phase =
  | Sending
  | Retransmission
  | Delivery
  | Receiving
  | Processing
  | Checkpointing
  | Termination_test

let phase_name = function
  | Sending -> "sending"
  | Retransmission -> "retransmission"
  | Delivery -> "delivery"
  | Receiving -> "receiving"
  | Processing -> "processing"
  | Checkpointing -> "checkpointing"
  | Termination_test -> "termination-test"

type event = {
  ev_name : string;
  ev_cat : string; (* "phase" or "instant" *)
  ev_ph : char; (* 'X' or 'i' *)
  ev_pid : int;
  ev_round : int;
  ev_ts : float; (* microseconds since sink creation *)
  ev_dur : float; (* microseconds; 0 for instants *)
}

type t = {
  on : bool;
  mu : Mutex.t;
  t0 : float;
  mutable events : event list; (* newest first *)
  mutable count : int;
}

let none = { on = false; mu = Mutex.create (); t0 = 0.; events = []; count = 0 }

let create () =
  { on = true; mu = Mutex.create (); t0 = Unix.gettimeofday (); events = []; count = 0 }

let enabled t = t.on
let transport_pid = -1

let add t ev =
  Mutex.lock t.mu;
  t.events <- ev :: t.events;
  t.count <- t.count + 1;
  Mutex.unlock t.mu

let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6

let span t ~pid ~round phase f =
  if not t.on then f ()
  else begin
    let start = now_us t in
    Fun.protect
      ~finally:(fun () ->
        let stop = now_us t in
        add t
          {
            ev_name = phase_name phase;
            ev_cat = "phase";
            ev_ph = 'X';
            ev_pid = pid;
            ev_round = round;
            ev_ts = start;
            ev_dur = stop -. start;
          })
      f
  end

let instant t ~pid ~round name =
  if t.on then
    add t
      {
        ev_name = name;
        ev_cat = "instant";
        ev_ph = 'i';
        ev_pid = pid;
        ev_round = round;
        ev_ts = now_us t;
        ev_dur = 0.;
      }

let event_count t = t.count

let covered t ~pid ~round phase =
  let name = phase_name phase in
  Mutex.lock t.mu;
  let r =
    List.exists
      (fun ev -> ev.ev_pid = pid && ev.ev_round = round && ev.ev_name = name)
      t.events
  in
  Mutex.unlock t.mu;
  r

let instant_count t ~name =
  Mutex.lock t.mu;
  let r =
    List.fold_left
      (fun acc ev -> if ev.ev_ph = 'i' && ev.ev_name = name then acc + 1 else acc)
      0 t.events
  in
  Mutex.unlock t.mu;
  r

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json t =
  Mutex.lock t.mu;
  let events = List.rev t.events in
  Mutex.unlock t.mu;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  (* process_name metadata, one per pid seen *)
  let pids = List.sort_uniq compare (List.map (fun ev -> ev.ev_pid) events) in
  List.iter
    (fun pid ->
      let label =
        if pid = transport_pid then "transport" else Printf.sprintf "processor %d" pid
      in
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (escape label)))
    pids;
  List.iter
    (fun ev ->
      match ev.ev_ph with
      | 'X' ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"round\":%d}}"
               (escape ev.ev_name) ev.ev_cat ev.ev_ts ev.ev_dur ev.ev_pid ev.ev_round)
      | _ ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"p\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"round\":%d}}"
               (escape ev.ev_name) ev.ev_cat ev.ev_ts ev.ev_pid ev.ev_round))
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc
