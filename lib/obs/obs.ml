(** Observability sinks for the parallel runtimes: tracing and
    metrics bundled as one value threaded through [Run_config]. *)

module Trace = Trace
module Metrics = Metrics
module Phase_timer = Phase_timer

type sinks = { trace : Trace.t; metrics : Metrics.t }

let disabled = { trace = Trace.none; metrics = Metrics.none }
let enabled s = Trace.enabled s.trace || Metrics.enabled s.metrics
