(** Zero-cost-when-disabled tracing for the parallel runtimes.

    A sink collects span and instant events keyed by [(pid, round,
    phase)].  The phases mirror the per-round structure the two
    runtimes already share: sending, retransmission, delivery,
    receiving, processing, checkpointing and the termination test.
    When the sink is [none] every operation returns immediately after
    a single flag test, so instrumented code keeps its exact
    behaviour (and its exact counters) with tracing off.

    Events export as Chrome [trace_event] JSON ("X" complete events
    for spans, "i" for instants), which loads directly in Perfetto or
    [chrome://tracing]. *)

type phase =
  | Sending
  | Retransmission
  | Delivery
  | Receiving
  | Processing
  | Checkpointing
  | Termination_test

val phase_name : phase -> string
(** Stable lower-case name used in the exported JSON, e.g.
    ["termination-test"]. *)

type t
(** A trace sink.  Thread-safe: the multicore runtime records events
    from several domains into one sink. *)

val none : t
(** The disabled sink: every operation is a no-op. *)

val create : unit -> t
(** A fresh enabled sink; timestamps are relative to its creation. *)

val enabled : t -> bool

val span : t -> pid:int -> round:int -> phase -> (unit -> 'a) -> 'a
(** [span t ~pid ~round phase f] runs [f ()] and, when enabled,
    records a complete event covering its duration.  The event is
    recorded even if [f] raises (overload aborts still produce a
    usable trace).  When disabled, [f] is called directly. *)

val instant : t -> pid:int -> round:int -> string -> unit
(** Record a point event (e.g. ["bootstrap"], ["crash"],
    ["recover"]). *)

val transport_pid : int
(** Pseudo-pid used for transport-level phases (message delivery)
    that belong to no processor. *)

val event_count : t -> int
(** Number of recorded events (0 when disabled). *)

val covered : t -> pid:int -> round:int -> phase -> bool
(** Whether a span for this [(pid, round, phase)] was recorded.  Test
    hook for the coverage criterion. *)

val instant_count : t -> name:string -> int
(** Number of instant events recorded under [name]. *)

val to_chrome_json : t -> string
(** The whole trace as a Chrome [trace_event] JSON object:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write : t -> string -> unit
(** [write t path] writes [to_chrome_json t] to [path].  Writes an
    empty (but valid) trace when the sink is disabled. *)
