type cell = {
  mutable count : int;
  mutable total_ns : int;
  mutable max_ns : int;
}

type t = {
  cells : (string, cell) Hashtbl.t;
  metrics : Metrics.t;
}

let create ?(metrics = Metrics.none) () =
  { cells = Hashtbl.create 8; metrics }

let cell_of t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
    let c = { count = 0; total_ns = 0; max_ns = 0 } in
    Hashtbl.add t.cells name c;
    c

let record t name ns =
  let c = cell_of t name in
  c.count <- c.count + 1;
  c.total_ns <- c.total_ns + ns;
  if ns > c.max_ns then c.max_ns <- ns;
  if Metrics.enabled t.metrics then
    Metrics.observe t.metrics ("phase_ns." ^ name) (float_of_int ns)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time t name f =
  let start = now_ns () in
  Fun.protect ~finally:(fun () -> record t name (now_ns () - start)) f

let totals t =
  Hashtbl.fold (fun name c acc -> (name, c.total_ns) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stats t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> Some (c.count, c.total_ns, c.max_ns)
  | None -> None

(* Summing assoc lists is all the domain runtime needs to pool its
   per-worker timers; keeping it here keeps the representation of
   [totals] private to this module's callers. *)
let merge_totals a b =
  let tbl = Hashtbl.create 8 in
  let bump (name, ns) =
    Hashtbl.replace tbl name
      (ns + Option.value ~default:0 (Hashtbl.find_opt tbl name))
  in
  List.iter bump a;
  List.iter bump b;
  Hashtbl.fold (fun name ns acc -> (name, ns) :: acc) tbl []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)
