type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array; (* bucket i counts observations <= 2^i (i = 0 .. 31) *)
}

type t = {
  on : bool;
  mu : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let make on =
  {
    on;
    mu = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let none = make false
let create () = make true
let enabled t = t.on

let locked t f =
  Mutex.lock t.mu;
  let r = f () in
  Mutex.unlock t.mu;
  r

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl name r;
      r

let incr ?(by = 1) t name =
  if t.on then
    locked t (fun () ->
        let r = cell t.counters name in
        r := !r + by)

let set_gauge t name v =
  if t.on then locked t (fun () -> cell t.gauges name := v)

let max_gauge t name v =
  if t.on then
    locked t (fun () ->
        let r = cell t.gauges name in
        if v > !r then r := v)

let bucket_index v =
  if v <= 1.0 then 0
  else begin
    let i = ref 0 and b = ref 1.0 in
    while v > !b && !i < 31 do
      b := !b *. 2.0;
      i := !i + 1
    done;
    !i
  end

let observe t name v =
  if t.on then
    locked t (fun () ->
        let h =
          match Hashtbl.find_opt t.hists name with
          | Some h -> h
          | None ->
              let h =
                { h_count = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity;
                  buckets = Array.make 32 0 }
              in
              Hashtbl.add t.hists name h;
              h
        in
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let i = bucket_index v in
        h.buckets.(i) <- h.buckets.(i) + 1)

let counter t name =
  if not t.on then 0
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let gauge t name =
  if not t.on then 0
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0)

let hist_count t name =
  if not t.on then 0
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.hists name with Some h -> h.h_count | None -> 0)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t =
  if not t.on then []
  else locked t (fun () -> List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters))

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_json t =
  let buf = Buffer.create 1024 in
  let ints name tbl =
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" name);
    List.iteri
      (fun i (k, r) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" k !r))
      (sorted_bindings tbl);
    Buffer.add_char buf '}'
  in
  locked t (fun () ->
      Buffer.add_string buf "{\"schema\":1,";
      ints "counters" t.counters;
      Buffer.add_char buf ',';
      ints "gauges" t.gauges;
      Buffer.add_string buf ",\"histograms\":{";
      List.iteri
        (fun i (k, h) ->
          if i > 0 then Buffer.add_char buf ',';
          (* drop trailing empty buckets for compactness *)
          let last = ref (-1) in
          Array.iteri (fun j n -> if n > 0 then last := j) h.buckets;
          let bs =
            Array.to_list (Array.sub h.buckets 0 (!last + 1))
            |> List.map string_of_int |> String.concat ","
          in
          Buffer.add_string buf
            (Printf.sprintf
               "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"le_pow2\":[%s]}"
               k h.h_count (float_str h.h_sum)
               (float_str (if h.h_count = 0 then 0. else h.h_min))
               (float_str (if h.h_count = 0 then 0. else h.h_max))
               bs))
        (sorted_bindings t.hists);
      Buffer.add_string buf "}}");
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc
