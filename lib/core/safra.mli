(** Safra's distributed termination-detection algorithm.

    The paper delegates parallel termination — "every processor idle
    and all channels empty" — to standard distributed-computing
    algorithms [5, 7]. We implement the classic token-ring solution
    (Dijkstra's EWD 998 refinement of the Dijkstra–Scholten idea): a
    token circulates [0 → N-1 → N-2 → … → 0] accumulating a message
    balance; machines blacken on receipt; the initiator declares
    termination only from a clean (white, balanced) round.

    This module is the pure per-machine state; the runtimes move the
    token. All counters are local — no shared state.

    The algorithm assumes reliable channels. When a runtime injects
    faults, soundness is preserved by counting at the *payload* level:
    {!record_send} is called once per new sequence number (not per
    transmission attempt) and {!record_receive} once per first-seen
    sequence number, so the reliable-delivery layer's retransmissions,
    duplicates and transport acknowledgements are invisible here — the
    balance describes exactly the payloads not yet delivered. *)

type color = White | Black

type token = {
  q : int;  (** Accumulated message balance of visited machines. *)
  token_color : color;
}

type t
(** Per-machine state: a color and a send/receive counter. *)

val create : unit -> t
val color : t -> color
val balance : t -> int

val record_send : t -> unit
(** Call once per message handed to a channel. *)

val record_receive : t -> unit
(** Call once per message taken from a channel; blackens the machine
    (its receipt may have reactivated it after the token passed). *)

val initial_token : token
(** A fresh white token with zero balance, as issued by machine 0 when
    it first becomes passive. *)

val forward : t -> token -> token
(** Machine [i > 0], passive and holding the token: add the local
    balance, blacken the token if the machine is black, whiten the
    machine, and pass the result on. *)

val evaluate : t -> token -> [ `Terminated | `Try_again ]
(** Machine 0, passive, with the token back home: [`Terminated] iff the
    token is white, the machine is white, and the total balance
    [q + local] is zero. Either way the machine whitens; on
    [`Try_again] it should circulate {!initial_token} again. *)
