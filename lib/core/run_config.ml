type detector = Safra | Dijkstra_scholten

type t = {
  resend_all : bool;
  pushdown : bool;
  replicate_base : bool;
  max_rounds : int;
  network : Netgraph.t option;
  fault : Fault.plan;
  capacity : int option;
  limits : Overload.limits;
  dial : Overload.dial option;
  detector : detector;
  domains : int option;
  obs : Obs.sinks;
  plan : Plan.t option;
  batch_rounds : int option;
  track_changes : bool;
}

let default =
  {
    resend_all = false;
    pushdown = true;
    replicate_base = false;
    max_rounds = 1_000_000;
    network = None;
    fault = Fault.none;
    capacity = None;
    limits = Overload.no_limits;
    dial = None;
    detector = Safra;
    domains = None;
    obs = Obs.disabled;
    plan = None;
    batch_rounds = None;
    track_changes = true;
  }

let with_resend_all resend_all t = { t with resend_all }
let with_pushdown pushdown t = { t with pushdown }
let with_replicate_base replicate_base t = { t with replicate_base }
let with_max_rounds max_rounds t = { t with max_rounds }
let with_network network t = { t with network }
let with_fault fault t = { t with fault }
let with_capacity capacity t = { t with capacity }
let with_limits limits t = { t with limits }
let with_deadline deadline t = { t with limits = { t.limits with Overload.deadline } }

let with_max_store_rows max_store_rows t =
  { t with limits = { t.limits with Overload.max_store_rows } }
let with_dial dial t = { t with dial }
let with_detector detector t = { t with detector }
let with_domains domains t = { t with domains }
let with_obs obs t = { t with obs }
let with_trace trace t = { t with obs = { t.obs with Obs.trace } }
let with_metrics metrics t = { t with obs = { t.obs with Obs.metrics } }
let with_plan plan t = { t with plan }
let with_batch_rounds batch_rounds t = { t with batch_rounds }
let with_track_changes track_changes t = { t with track_changes }
let of_plan (p : Plan.t) = { default with plan = Some p }
