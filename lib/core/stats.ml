type per_proc = {
  pid : Pid.t;
  firings : int;
  new_tuples : int;
  duplicate_firings : int;
  iterations : int;
  tuples_sent : int;
  tuples_received : int;
  tuples_accepted : int;
  base_resident : int;
  active_rounds : int;
  store_rows : int;
  store_bytes : int;
  outbox_peak_rows : int;
  outbox_peak_bytes : int;
}

type faults = {
  drops : int;
  dups_injected : int;
  dups_suppressed : int;
  delays : int;
  reorders : int;
  retransmits : int;
  acks : int;
  crashes : int;
  recoveries : int;
  replayed : int;
  checkpoints : int;
  restores : int;
  mailbox_drops : int;
  credit_stalls : int;
  alpha_raises : int;
  alpha_decays : int;
}

let no_faults =
  {
    drops = 0;
    dups_injected = 0;
    dups_suppressed = 0;
    delays = 0;
    reorders = 0;
    retransmits = 0;
    acks = 0;
    crashes = 0;
    recoveries = 0;
    replayed = 0;
    checkpoints = 0;
    restores = 0;
    mailbox_drops = 0;
    credit_stalls = 0;
    alpha_raises = 0;
    alpha_decays = 0;
  }

type transport = {
  reconnects : int;
  wire_retransmits : int;
  heartbeat_misses : int;
  worker_restarts : int;
  bytes_sent : int;
  bytes_received : int;
}

let no_transport =
  {
    reconnects = 0;
    wire_retransmits = 0;
    heartbeat_misses = 0;
    worker_restarts = 0;
    bytes_sent = 0;
    bytes_received = 0;
  }

type comms = {
  bulk_pushes : int;
  bulk_messages : int;
}

let no_comms = { bulk_pushes = 0; bulk_messages = 0 }

type incr = {
  batches_applied : int;
  tuples_inserted : int;
  tuples_deleted : int;
  tuples_rederived : int;
  tuples_overdeleted : int;
  incr_firings : int;
}

let no_incr =
  {
    batches_applied = 0;
    tuples_inserted = 0;
    tuples_deleted = 0;
    tuples_rederived = 0;
    tuples_overdeleted = 0;
    incr_firings = 0;
  }

type t = {
  nprocs : int;
  rounds : int;
  per_proc : per_proc array;
  channel_tuples : int array array;
  pooled_tuples : int;
  trace : int array list;
  faults : faults;
  transport : transport;
  peak_in_flight : int;
  phase_ns : (string * int) list;
  incr : incr;
  comms : comms;
}

let frontier_profile t =
  List.map (fun row -> Array.fold_left ( + ) 0 row) t.trace

let peak_parallelism t =
  List.fold_left
    (fun acc row ->
      max acc (Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 row))
    0 t.trace

let sum_by f t = Array.fold_left (fun acc p -> acc + f p) 0 t.per_proc
let total_firings t = sum_by (fun p -> p.firings) t
let total_new_tuples t = sum_by (fun p -> p.new_tuples) t
let total_duplicate_firings t = sum_by (fun p -> p.duplicate_firings) t

let total_messages ?(include_self = false) t =
  let total = ref 0 in
  for i = 0 to t.nprocs - 1 do
    for j = 0 to t.nprocs - 1 do
      if include_self || i <> j then
        total := !total + t.channel_tuples.(i).(j)
    done
  done;
  !total

let used_channels ?(include_self = false) t =
  let acc = ref [] in
  for i = t.nprocs - 1 downto 0 do
    for j = t.nprocs - 1 downto 0 do
      if (include_self || i <> j) && t.channel_tuples.(i).(j) > 0 then
        acc := (i, j) :: !acc
    done
  done;
  !acc

let total_base_resident t = sum_by (fun p -> p.base_resident) t
let total_store_rows t = sum_by (fun p -> p.store_rows) t
let total_store_bytes t = sum_by (fun p -> p.store_bytes) t

let load_imbalance t =
  let total = total_firings t in
  if total = 0 then nan
  else
    let mean = float_of_int total /. float_of_int t.nprocs in
    let worst =
      Array.fold_left (fun acc p -> max acc p.firings) 0 t.per_proc
    in
    float_of_int worst /. mean

let redundancy_vs ~sequential_firings t =
  if sequential_firings = 0 then 0.0
  else
    float_of_int (total_firings t - sequential_firings)
    /. float_of_int sequential_firings

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%d processors, %d rounds, %d messages (+%d self), pooled %d tuples%t@,"
    t.nprocs t.rounds (total_messages t)
    (total_messages ~include_self:true t - total_messages t)
    t.pooled_tuples
    (fun ppf ->
      if t.peak_in_flight > 0 then
        Format.fprintf ppf ", peak in-flight %d" t.peak_in_flight);
  Format.fprintf ppf
    "  %-5s %9s %9s %9s %6s %7s %7s %7s %9s %7s %7s %7s@," "proc" "firings"
    "new" "dupfire" "iters" "sent" "recv" "accept" "baseres" "active"
    "store" "outbox";
  Array.iter
    (fun p ->
      Format.fprintf ppf
        "  %-5d %9d %9d %9d %6d %7d %7d %7d %9d %7d %7d %7d@," p.pid
        p.firings p.new_tuples p.duplicate_firings p.iterations
        p.tuples_sent p.tuples_received p.tuples_accepted p.base_resident
        p.active_rounds p.store_rows p.outbox_peak_rows)
    t.per_proc;
  let f = t.faults in
  let legacy =
    {
      f with
      mailbox_drops = 0;
      credit_stalls = 0;
      alpha_raises = 0;
      alpha_decays = 0;
    }
  in
  if legacy <> no_faults then begin
    Format.fprintf ppf
      "faults: drops=%d dups=%d suppressed=%d delays=%d reorders=%d \
       retransmits=%d acks=%d@,"
      f.drops f.dups_injected f.dups_suppressed f.delays f.reorders
      f.retransmits f.acks;
    Format.fprintf ppf
      "        crashes=%d recoveries=%d replayed=%d checkpoints=%d \
       restores=%d@,"
      f.crashes f.recoveries f.replayed f.checkpoints f.restores
  end;
  if
    f.mailbox_drops > 0 || f.credit_stalls > 0 || f.alpha_raises > 0
    || f.alpha_decays > 0
  then
    Format.fprintf ppf
      "overload: mailbox-drops=%d credit-stalls=%d alpha-raises=%d \
       alpha-decays=%d@,"
      f.mailbox_drops f.credit_stalls f.alpha_raises f.alpha_decays;
  let w = t.transport in
  if w <> no_transport then
    Format.fprintf ppf
      "transport: reconnects=%d wire-retransmits=%d hb-misses=%d \
       restarts=%d sent=%dB recv=%dB@,"
      w.reconnects w.wire_retransmits w.heartbeat_misses w.worker_restarts
      w.bytes_sent w.bytes_received;
  let c = t.incr in
  if c <> no_incr then
    Format.fprintf ppf
      "incr: batches=%d inserted=%d deleted=%d rederived=%d \
       overdeleted=%d firings=%d@,"
      c.batches_applied c.tuples_inserted c.tuples_deleted
      c.tuples_rederived c.tuples_overdeleted c.incr_firings;
  let m = t.comms in
  if m <> no_comms then
    Format.fprintf ppf
      "comms: bulk-pushes=%d bulk-messages=%d (%.1f msgs/delivery)@,"
      m.bulk_pushes m.bulk_messages
      (if m.bulk_pushes = 0 then 0.0
       else float_of_int m.bulk_messages /. float_of_int m.bulk_pushes);
  Format.fprintf ppf "@]"

(* Versioned machine-readable snapshot ("schema": 5), shared by
   `datalogp par --json`, the Obs metrics snapshot, the bench baseline
   files and datalogd's per-query attribution. Hand-rolled: the values
   are ints and two enum-like strings. Schema 2 was additive over
   schema 1: it added "scheme" (the plan/scheme identifier the run
   executed under) and "outcome" (how the run ended — "ok", or an
   overload/budget kind), so a consumer of a PARTIAL server reply can
   attribute the degradation without re-parsing CLI output. Schema 3
   is additive over schema 2: it adds "transport" (wire-level counters
   of the multi-process runtime — all zero in-process). Schema 4 is
   additive over schema 3: it adds "incr" (per-session incremental
   maintenance counters — all zero for one-shot runs). Schema 5 is
   additive over schema 4: it adds "comms" (mailbox send-coalescing
   counters of the shared-memory domain runtime — all zero for
   runtimes that do not batch their sends). *)
let to_json ?(scheme = "unspecified") ?(outcome = "ok") t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "{\"schema\":5,\"scheme\":%S,\"outcome\":%S,\"nprocs\":%d,\"rounds\":%d,\"pooled\":%d,\"peak_in_flight\":%d,"
    scheme outcome t.nprocs t.rounds t.pooled_tuples t.peak_in_flight;
  add "\"phase_ns\":{%s},"
    (String.concat ","
       (List.map
          (fun (name, ns) -> Printf.sprintf "\"%s\":%d" name ns)
          t.phase_ns));
  add
    "\"totals\":{\"firings\":%d,\"new_tuples\":%d,\"duplicate_firings\":%d,\"messages\":%d,\"tuples_sent\":%d,\"base_resident\":%d,\"store_rows\":%d,\"store_bytes\":%d},"
    (total_firings t) (total_new_tuples t) (total_duplicate_firings t)
    (total_messages t)
    (total_messages ~include_self:true t)
    (total_base_resident t) (total_store_rows t) (total_store_bytes t);
  add "\"per_proc\":[";
  Array.iteri
    (fun i p ->
      if i > 0 then add ",";
      add
        "{\"pid\":%d,\"firings\":%d,\"new_tuples\":%d,\"duplicate_firings\":%d,\"iterations\":%d,\"tuples_sent\":%d,\"tuples_received\":%d,\"tuples_accepted\":%d,\"base_resident\":%d,\"active_rounds\":%d,\"store_rows\":%d,\"store_bytes\":%d,\"outbox_peak_rows\":%d,\"outbox_peak_bytes\":%d}"
        p.pid p.firings p.new_tuples p.duplicate_firings p.iterations
        p.tuples_sent p.tuples_received p.tuples_accepted p.base_resident
        p.active_rounds p.store_rows p.store_bytes p.outbox_peak_rows
        p.outbox_peak_bytes)
    t.per_proc;
  add "],\"channel_tuples\":[";
  Array.iteri
    (fun i row ->
      if i > 0 then add ",";
      add "[%s]"
        (String.concat "," (Array.to_list (Array.map string_of_int row))))
    t.channel_tuples;
  add "],\"frontier\":[%s],"
    (String.concat "," (List.map string_of_int (frontier_profile t)));
  let f = t.faults in
  add
    "\"faults\":{\"drops\":%d,\"dups_injected\":%d,\"dups_suppressed\":%d,\"delays\":%d,\"reorders\":%d,\"retransmits\":%d,\"acks\":%d,\"crashes\":%d,\"recoveries\":%d,\"replayed\":%d,\"checkpoints\":%d,\"restores\":%d,\"mailbox_drops\":%d,\"credit_stalls\":%d,\"alpha_raises\":%d,\"alpha_decays\":%d}"
    f.drops f.dups_injected f.dups_suppressed f.delays f.reorders
    f.retransmits f.acks f.crashes f.recoveries f.replayed f.checkpoints
    f.restores f.mailbox_drops f.credit_stalls f.alpha_raises f.alpha_decays;
  let w = t.transport in
  add
    ",\"transport\":{\"reconnects\":%d,\"wire_retransmits\":%d,\"heartbeat_misses\":%d,\"worker_restarts\":%d,\"bytes_sent\":%d,\"bytes_received\":%d}"
    w.reconnects w.wire_retransmits w.heartbeat_misses w.worker_restarts
    w.bytes_sent w.bytes_received;
  let c = t.incr in
  add
    ",\"incr\":{\"batches_applied\":%d,\"tuples_inserted\":%d,\"tuples_deleted\":%d,\"tuples_rederived\":%d,\"tuples_overdeleted\":%d,\"incr_firings\":%d}"
    c.batches_applied c.tuples_inserted c.tuples_deleted c.tuples_rederived
    c.tuples_overdeleted c.incr_firings;
  let m = t.comms in
  add ",\"comms\":{\"bulk_pushes\":%d,\"bulk_messages\":%d}}" m.bulk_pushes
    m.bulk_messages;
  Buffer.contents buf

let pp_summary ppf t =
  Format.fprintf ppf
    "procs=%d rounds=%d firings=%d msgs=%d imbalance=%.2f" t.nprocs
    t.rounds (total_firings t) (total_messages t) (load_imbalance t)
