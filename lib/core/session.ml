open Datalog

type result = {
  answers : Database.t;
  stats : Stats.t;
}

type outcome = {
  oc_added : (string * Tuple.t) list;
  oc_removed : (string * Tuple.t) list;
  oc_summary : Delta.summary;
}

let no_outcome =
  { oc_added = []; oc_removed = []; oc_summary = Delta.empty_summary }

exception Closed of string

type t = {
  runtime : string;
  apply_fn : Update_batch.t -> outcome;
  query_fn : string -> Tuple.t list;
  model_fn : unit -> Database.t;
  close_fn : unit -> result;
  mutable closed : bool;
}

let v ~runtime ~apply ~query ~model ~close =
  {
    runtime;
    apply_fn = apply;
    query_fn = query;
    model_fn = model;
    close_fn = close;
    closed = false;
  }

let runtime s = s.runtime
let is_closed s = s.closed
let check s = if s.closed then raise (Closed s.runtime)

let apply s batch =
  check s;
  s.apply_fn batch

let query s pred =
  check s;
  s.query_fn pred

let model s =
  check s;
  s.model_fn ()

let close s =
  check s;
  s.closed <- true;
  s.close_fn ()
