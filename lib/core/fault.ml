type crash = {
  cr_pid : Pid.t;
  cr_round : int;
  cr_down : int;
}

type plan = {
  seed : int;
  drop : float;
  dup : float;
  reorder : float;
  delay : float;
  max_delay : int;
  crashes : crash list;
  checkpoint_every : int option;
}

let none =
  {
    seed = 0;
    drop = 0.0;
    dup = 0.0;
    reorder = 0.0;
    delay = 0.0;
    max_delay = 1;
    crashes = [];
    checkpoint_every = None;
  }

let is_none p =
  p.drop = 0.0 && p.dup = 0.0 && p.reorder = 0.0 && p.delay = 0.0
  && p.crashes = [] && p.checkpoint_every = None

let make ?(seed = 0) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(delay = 0.0) ?(max_delay = 1) ?(crashes = []) ?checkpoint_every () =
  let check_prob name p =
    if p < 0.0 || p >= 1.0 then
      invalid_arg
        (Printf.sprintf "Fault.make: %s must be in [0, 1), got %g" name p)
  in
  check_prob "drop" drop;
  check_prob "dup" dup;
  check_prob "reorder" reorder;
  check_prob "delay" delay;
  if max_delay < 1 then invalid_arg "Fault.make: max_delay must be >= 1";
  (match checkpoint_every with
   | Some k when k < 1 ->
     invalid_arg "Fault.make: checkpoint_every must be >= 1"
   | _ -> ());
  List.iter
    (fun c ->
      if c.cr_round < 0 then invalid_arg "Fault.make: crash round < 0";
      if c.cr_down < 1 then invalid_arg "Fault.make: crash downtime < 1")
    crashes;
  { seed; drop; dup; reorder; delay; max_delay; crashes; checkpoint_every }

let drop_ceiling = 12

(* splitmix64-style finalizer, as in Workload.Rng, reimplemented here
   so lib/core stays independent of the workload library. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let hash plan ~salt ~a ~b ~c ~d =
  mix
    (mix ((plan.seed * 0x9E3779B9) lxor (salt * 0x85EBCA6B))
     + mix ((a * 0xC2B2AE35) lxor (b * 0x27D4EB2F))
     + mix ((c * 0x165667B1) lxor (d * 0x01000193)))
  land max_int

(* [chance h p]: interpret hash [h] as a uniform draw and compare with
   probability [p]. *)
let chance h p = p > 0.0 && float_of_int (h land 0xFFFFFF) < p *. 16777216.0

type fate = {
  f_drop : bool;
  f_dup : bool;
  f_delay : int;
  f_jitter : int;
}

let fate plan ~src ~dst ~seq ~attempt =
  let h salt = hash plan ~salt ~a:src ~b:dst ~c:seq ~d:attempt in
  let f_drop = attempt < drop_ceiling && chance (h 1) plan.drop in
  let f_dup = chance (h 2) plan.dup in
  let f_jitter = if chance (h 3) plan.reorder then 1 + (h 4 mod 2) else 0 in
  let f_delay =
    if chance (h 5) plan.delay then 1 + (h 6 mod plan.max_delay) else 0
  in
  { f_drop; f_dup; f_delay; f_jitter }

let ack_dropped plan ~src ~dst ~seq ~attempt =
  attempt < drop_ceiling
  && chance (hash plan ~salt:7 ~a:src ~b:dst ~c:seq ~d:attempt) plan.drop

let reorder_inbox plan ~pid ~round =
  chance (hash plan ~salt:8 ~a:pid ~b:round ~c:0 ~d:0) plan.reorder

let shuffle plan ~pid ~round arr =
  for i = Array.length arr - 1 downto 1 do
    let j = hash plan ~salt:9 ~a:pid ~b:round ~c:i ~d:0 mod (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let crash_at plan ~pid ~round =
  List.find_opt
    (fun c -> c.cr_pid = pid && c.cr_round = round)
    plan.crashes

let retransmit_after ~attempt = 6 lsl min attempt 4

let parse_crashes s =
  let parse_one part =
    match String.index_opt part '@' with
    | None -> Error (Printf.sprintf "bad crash spec %S: expected PID@ROUND" part)
    | Some i ->
      let pid_s = String.sub part 0 i in
      let rest = String.sub part (i + 1) (String.length part - i - 1) in
      let round_s, down_s =
        match String.index_opt rest '+' with
        | None -> (rest, "1")
        | Some j ->
          ( String.sub rest 0 j,
            String.sub rest (j + 1) (String.length rest - j - 1) )
      in
      (match
         (int_of_string_opt pid_s, int_of_string_opt round_s,
          int_of_string_opt down_s)
       with
       | Some pid, Some round, Some down when round >= 0 && down >= 1 ->
         Ok { cr_pid = pid; cr_round = round; cr_down = down }
       | _ ->
         Error
           (Printf.sprintf "bad crash spec %S: expected PID@ROUND[+DOWN]"
              part))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      (match parse_one (String.trim part) with
       | Ok c -> go (c :: acc) rest
       | Error _ as e -> e)
  in
  match String.trim s with
  | "" -> Ok []
  | s -> go [] (String.split_on_char ',' s)

type counters = {
  mutable n_drops : int;
  mutable n_dups_injected : int;
  mutable n_dups_suppressed : int;
  mutable n_delays : int;
  mutable n_reorders : int;
  mutable n_retransmits : int;
  mutable n_acks : int;
  mutable n_crashes : int;
  mutable n_recoveries : int;
  mutable n_replayed : int;
  mutable n_checkpoints : int;
  mutable n_restores : int;
}

let counters () =
  {
    n_drops = 0;
    n_dups_injected = 0;
    n_dups_suppressed = 0;
    n_delays = 0;
    n_reorders = 0;
    n_retransmits = 0;
    n_acks = 0;
    n_crashes = 0;
    n_recoveries = 0;
    n_replayed = 0;
    n_checkpoints = 0;
    n_restores = 0;
  }

let freeze ?(mailbox_drops = 0) ?(credit_stalls = 0) ?(alpha_raises = 0)
    ?(alpha_decays = 0) c : Stats.faults =
  {
    Stats.drops = c.n_drops;
    dups_injected = c.n_dups_injected;
    dups_suppressed = c.n_dups_suppressed;
    delays = c.n_delays;
    reorders = c.n_reorders;
    retransmits = c.n_retransmits;
    acks = c.n_acks;
    crashes = c.n_crashes;
    recoveries = c.n_recoveries;
    replayed = c.n_replayed;
    checkpoints = c.n_checkpoints;
    restores = c.n_restores;
    mailbox_drops;
    credit_stalls;
    alpha_raises;
    alpha_decays;
  }

let pp ppf p =
  if is_none p then Format.fprintf ppf "no faults"
  else begin
    Format.fprintf ppf
      "seed=%d drop=%g dup=%g reorder=%g delay=%g(max %d)" p.seed p.drop
      p.dup p.reorder p.delay p.max_delay;
    List.iter
      (fun c ->
        Format.fprintf ppf " crash=%d@%d+%d" c.cr_pid c.cr_round c.cr_down)
      p.crashes;
    match p.checkpoint_every with
    | Some k -> Format.fprintf ppf " checkpoint=%d" k
    | None -> ()
  end
