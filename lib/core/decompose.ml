open Datalog

(* --------------------------------------------------------------- *)
(* Applicability: connected rule bodies, no constants.              *)
(* --------------------------------------------------------------- *)

let body_connected (rule : Rule.t) =
  match rule.body with
  | [] | [ _ ] -> true
  | first :: _ ->
    (* BFS over atoms linked by shared variables. *)
    let atoms = Array.of_list rule.body in
    let n = Array.length atoms in
    let seen = Array.make n false in
    let shares a b =
      List.exists (fun v -> List.mem v (Atom.vars b)) (Atom.vars a)
    in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        for j = 0 to n - 1 do
          if (not seen.(j)) && shares atoms.(i) atoms.(j) then visit j
        done
      end
    in
    ignore first;
    visit 0;
    Array.for_all Fun.id seen

let rule_has_constant (rule : Rule.t) =
  let atom_has (a : Atom.t) =
    Array.exists (fun t -> not (Term.is_var t)) a.args
  in
  atom_has rule.head || List.exists atom_has rule.body

let check_program program =
  let ( let* ) = Result.bind in
  let* () = Program.check program in
  let rec check = function
    | [] -> Ok ()
    | r :: rest ->
      if rule_has_constant r then
        Error ("Dong's scheme: rule mentions a constant: " ^ Rule.to_string r)
      else if not (body_connected r) then
        Error
          ("Dong's scheme: rule body is not variable-connected: "
          ^ Rule.to_string r)
      else check rest
  in
  check (Program.rules program)

(* --------------------------------------------------------------- *)
(* Constant-connectivity components (union-find over constants).    *)
(* --------------------------------------------------------------- *)

module Ctbl = Hashtbl.Make (struct
  type t = Const.t

  let equal = Const.equal
  let hash = Const.hash
end)

type analysis = {
  nprocs : int;
  component_count : int;
  assignment : Const.t -> Pid.t;
  tuples_per_proc : int array;
}

let analyze ~nprocs edb =
  if nprocs <= 0 then invalid_arg "Decompose.analyze: nprocs must be positive";
  let parent : Const.t Ctbl.t = Ctbl.create 256 in
  let rec find c =
    match Ctbl.find_opt parent c with
    | None ->
      Ctbl.add parent c c;
      c
    | Some p when Const.equal p c -> c
    | Some p ->
      let root = find p in
      Ctbl.replace parent c root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (Const.equal ra rb) then Ctbl.replace parent ra rb
  in
  (* Pass 1: union constants co-occurring in a tuple; count tuples per
     eventual root via a second pass. *)
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        Relation.iter
          (fun t ->
            let a = Tuple.arity t in
            if a > 0 then begin
              let first = Tuple.get t 0 in
              ignore (find first);
              for i = 1 to a - 1 do
                union first (Tuple.get t i)
              done
            end)
          rel)
    (Database.predicates edb);
  let component_tuples : int Ctbl.t = Ctbl.create 64 in
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        Relation.iter
          (fun t ->
            if Tuple.arity t > 0 then begin
              let root = find (Tuple.get t 0) in
              let n =
                Option.value ~default:0 (Ctbl.find_opt component_tuples root)
              in
              Ctbl.replace component_tuples root (n + 1)
            end)
          rel)
    (Database.predicates edb);
  (* Greedy balancing: biggest components first, each to the currently
     least-loaded processor. *)
  let components =
    Ctbl.fold (fun root n acc -> (root, n) :: acc) component_tuples []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let loads = Array.make nprocs 0 in
  let proc_of_root : Pid.t Ctbl.t = Ctbl.create 64 in
  List.iter
    (fun (root, n) ->
      let best = ref 0 in
      for i = 1 to nprocs - 1 do
        if loads.(i) < loads.(!best) then best := i
      done;
      Ctbl.replace proc_of_root root !best;
      loads.(!best) <- loads.(!best) + n)
    components;
  let assignment c =
    match Ctbl.find_opt proc_of_root (find c) with
    | Some pid -> pid
    | None -> 0
  in
  {
    nprocs;
    component_count = List.length components;
    assignment;
    tuples_per_proc = loads;
  }

(* --------------------------------------------------------------- *)
(* Execution                                                        *)
(* --------------------------------------------------------------- *)

let run program ~nprocs edb =
  let ( let* ) = Result.bind in
  let* () = check_program program in
  let edb =
    let combined = Database.copy edb in
    ignore (Database.merge_into ~dst:combined ~src:(Program.facts_db program));
    combined
  in
  let analysis = analyze ~nprocs edb in
  let local_edbs =
    Array.init nprocs (fun pid ->
        let local = Database.create () in
        List.iter
          (fun pred ->
            match Database.find edb pred with
            | None -> ()
            | Some rel ->
              let target =
                Database.declare local pred (Relation.arity rel)
              in
              Relation.iter
                (fun t ->
                  let owner =
                    if Tuple.arity t = 0 then 0
                    else analysis.assignment (Tuple.get t 0)
                  in
                  if owner = pid then ignore (Relation.add target t))
                rel)
          (Database.predicates edb);
        local)
  in
  let engines =
    Array.map
      (fun local ->
        let engine = Seminaive.create program ~edb:local in
        Seminaive.run_to_fixpoint engine;
        engine)
      local_edbs
  in
  let answers = Database.copy edb in
  let pooled = ref 0 in
  let derived = Program.derived_predicates program in
  Array.iter
    (fun engine ->
      let db = Seminaive.database engine in
      List.iter
        (fun pred ->
          match Database.find db pred with
          | None -> ()
          | Some rel ->
            pooled := !pooled + Relation.cardinal rel;
            let target = Database.declare answers pred (Relation.arity rel) in
            ignore (Relation.add_all target rel))
        derived)
    engines;
  let rounds =
    Array.fold_left
      (fun acc e -> max acc (Seminaive.stats e).Seminaive.iterations)
      0 engines
  in
  let stats : Stats.t =
    {
      incr = Stats.no_incr;
      nprocs;
      rounds;
      per_proc =
        Array.mapi
          (fun pid engine ->
            let es = Seminaive.stats engine in
            {
              Stats.pid;
              firings = es.Seminaive.firings;
              new_tuples = es.Seminaive.new_tuples;
              duplicate_firings = es.Seminaive.duplicate_firings;
              iterations = es.Seminaive.iterations;
              tuples_sent = 0;
              tuples_received = 0;
              tuples_accepted = 0;
              base_resident = Database.total_tuples local_edbs.(pid);
              active_rounds = es.Seminaive.iterations;
              store_rows = Overload.db_rows (Seminaive.database engine);
              store_bytes = Overload.db_bytes (Seminaive.database engine);
              outbox_peak_rows = 0;
              outbox_peak_bytes = 0;
            })
          engines;
      channel_tuples = Array.make_matrix nprocs nprocs 0;
      pooled_tuples = !pooled;
      trace = [];
      faults = Stats.no_faults;
      transport = Stats.no_transport;
      peak_in_flight = 0;
      phase_ns = [];
      comms = Stats.no_comms;
    }
  in
  Ok ({ Sim_runtime.answers; stats }, analysis)
