(** Live evaluation sessions.

    A session is the stateful generalization of a one-shot [run]: the
    runtime keeps its engines (and, for the multi-process runtime, its
    worker processes) resident between calls, so the computed model can
    be maintained under a stream of base-fact update batches instead of
    being recomputed from scratch. Open one with
    {!Runtime.S.open_session}, fold update batches in with {!apply},
    read the current model with {!query} / {!model}, and {!close} to
    pool the final answers and statistics — [run config rw ~edb] is
    exactly [open_session] followed immediately by [close].

    Maintenance is delegated to {!Datalog.Stratified.Live} (derivation
    counting over non-recursive strata, DRed over recursive ones); the
    runtimes install the resulting net patch into their resident
    distributed state and re-enter their ordinary drive loop, so every
    invariant of the one-shot path — routing, dedup, faults, credit,
    overload — holds for the incremental path too. *)

open Datalog

type result = {
  answers : Database.t;
      (** Pooled output: every original derived predicate under its
          original name, unioned over processors, plus the base
          relations as of the last applied batch. *)
  stats : Stats.t;
}
(** What {!close} returns — the same shape a one-shot [run] produces.
    [stats.incr] carries the session's maintenance counters. *)

type outcome = {
  oc_added : (string * Tuple.t) list;
      (** Net tuples the batch added to the model (base and derived),
          sorted by predicate then {!Tuple.compare}. *)
  oc_removed : (string * Tuple.t) list;
      (** Net tuples the batch removed; disjoint from [oc_added]. *)
  oc_summary : Delta.summary;  (** Maintenance work accounting. *)
}
(** The effect of one {!apply}: the exact net model difference. An
    update that re-asserts a present fact (or retracts an absent one)
    contributes nothing. *)

val no_outcome : outcome
(** The empty effect. *)

exception Closed of string
(** Raised (with the runtime name) by every operation on a closed
    session. *)

type t
(** A session handle. Handles are single-threaded: callers serialize
    {!apply} / {!query} / {!close}. *)

val v :
  runtime:string ->
  apply:(Update_batch.t -> outcome) ->
  query:(string -> Tuple.t list) ->
  model:(unit -> Database.t) ->
  close:(unit -> result) ->
  t
(** Used by runtime implementations to build a handle; not meant for
    clients. *)

val runtime : t -> string
(** Name of the runtime serving this session ("sim", "domains",
    "net"). *)

val is_closed : t -> bool

val apply : t -> Update_batch.t -> outcome
(** Fold one update batch into the live model and drive the resident
    runtime back to quiescence. Batches are normalized first, so
    re-applying a batch is a no-op and an empty batch does near-zero
    work.
    @raise Closed on a closed session.
    @raise Invalid_argument if the batch updates a derived
    predicate. *)

val query : t -> string -> Tuple.t list
(** Current tuples of a predicate (derived predicates under their
    original names), in {!Tuple.compare} order; [[]] when unbound.
    @raise Closed on a closed session. *)

val model : t -> Database.t
(** A fresh snapshot of the full current model, assembled from the
    resident distributed state (not from the maintenance oracle) — the
    same pooling {!close} performs, without closing.
    @raise Closed on a closed session. *)

val close : t -> result
(** Pool the final answers and statistics and release the session's
    resources (worker processes included). Further operations raise
    {!Closed}.
    @raise Closed on an already-closed session. *)
