(* Re-export so runtime clients can speak about update batches without
   reaching into the datalog library namespace. *)

include Datalog.Delta.Batch

type op = Datalog.Delta.op = Insert | Delete

type update = Datalog.Delta.update = {
  u_op : op;
  u_pred : string;
  u_tuple : Datalog.Tuple.t;
}
