open Datalog

type detector = Run_config.detector =
  | Safra
  | Dijkstra_scholten

(* Messages are addressed to processors; mailboxes belong to domains,
   which demultiplex. [Data] carries a per-channel sequence number so
   the reliable-delivery layer can suppress duplicates; [Tack] is its
   transport-level acknowledgement and [Replay] its recovery broadcast.
   Control messages (tokens, detector acks, transport acks, replay
   requests, stop) ride the mailboxes directly and are never subjected
   to the fault plan — only payload [Data] is. *)
type msg =
  | Data of { src : int; dst : int; seq : int; batch : (string * Tuple.t) list }
  | Token of { dst : int; token : Safra.token }
  | Ack of { dst : int }
  | Tack of { sender : int; receiver : int; seq : int }
  | Replay of { requester : int }
  | Stop

module Key = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
end

module Ktbl = Hashtbl.Make (Key)

(* One unacknowledged batch awaiting its transport ack. *)
type pending = {
  pd_batch : (string * Tuple.t) list;
  mutable pd_attempt : int;
  mutable pd_retry_at : float;
}

(* Per-processor state, owned by exactly one domain. *)
type proc_state = {
  pid : int;
  mutable engine : Seminaive.t;  (* replaced on crash recovery *)
  safra : Safra.t;
  ds : Dscholten.t;
  mutable held_token : Safra.token option;
  mutable probe_outstanding : bool;  (* pid 0 only *)
  sent_row : int array;
  mutable received : int;
  mutable accepted : int;
  channel_seen : unit Ktbl.t array;  (* per destination *)
  base_resident : int;
  (* Reliable-delivery state: stable across crashes, like the
     detector counters — only the engine is volatile. *)
  next_seq : int array;  (* per destination *)
  unacked : (int, pending) Hashtbl.t array;  (* per destination *)
  seen_seq : (int, unit) Hashtbl.t array;  (* per source *)
  (* Credit-based backpressure (active only under a capacity):
     [pending] holds tuples deferred for lack of channel credit (the
     bool marks recovery replays), [credit_used] counts in-flight
     (un-Tacked) tuples per destination, [inflight_size] remembers each
     outstanding batch's size so its Tack returns the right credit. *)
  pending : (string * Tuple.t * bool) Queue.t array;  (* per destination *)
  credit_used : int array;  (* per destination *)
  inflight_size : (int, int) Hashtbl.t array;  (* per destination *)
  mutable outbox_peak_rows : int;
  mutable outbox_peak_bytes : int;
  mutable local_rounds : int;  (* semi-naive iterations executed *)
  mutable crashes_fired : int list;
  mutable lost_iterations : int;
  mutable lost_firings : int;
  mutable lost_new : int;
  mutable lost_dup : int;
}

type worker_result = {
  wr_pid : int;
  wr_db : Database.t;
  wr_stats : Seminaive.stats;
  wr_sent_row : int array;
  wr_received : int;
  wr_accepted : int;
  wr_base_resident : int;
  wr_outbox_peak_rows : int;
  wr_outbox_peak_bytes : int;
}

(* Per-worker overload-control outcome, merged by [run]. *)
type worker_extra = {
  we_overload : Overload.reason option;
  we_credit_stalls : int;
  we_peak_in_flight : int;
  we_phase_ns : (string * int) list;
  we_bulk_pushes : int;
  we_bulk_messages : int;
}

let build_edb (rw : Rewrite.t) edb pid =
  let local = Database.create () in
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        let target = Database.declare local pred (Relation.arity rel) in
        Relation.iter
          (fun t ->
            if rw.resident pid pred t then ignore (Relation.add target t))
          rel)
    (Database.predicates edb);
  local

(* Wall-clock retransmission backoff, bounded like the simulated
   runtime's round-based one. *)
let retry_delay attempt = 0.001 *. float_of_int (1 lsl min attempt 6)

(* [engines] and [channel_seen] are the session-resident state, indexed
   by pid and owned by exactly one domain at a time: a worker reads and
   writes only its own pids' slots while running, and the parent only
   touches them between [Domain.spawn] and [Domain.join] cycles (the
   join provides the happens-before edge). A [None] engine slot is
   created and bootstrapped here; a [Some] slot is adopted as-is — its
   pending injections are drained by the ordinary step loop. *)
let worker detector plan ~capacity ~(limits : Overload.limits) ~dial ~obs ~t0
    (rw : Rewrite.t) mailboxes ~domain_of ~own_pids ~engines ~channel_seen
    local_edbs my_domain =
  let n = rw.nprocs in
  let faulty = not (Fault.is_none plan) in
  let credited = capacity <> None in
  let tr = obs.Obs.trace in
  let mx = obs.Obs.metrics in
  (* Per-worker wall-clock accumulator (no cross-domain sharing, so no
     lock): pooled into [Stats.phase_ns] after the join. *)
  let ptimer = Obs.Phase_timer.create ~metrics:mx () in
  let span ~pid ~round phase f =
    Obs.Phase_timer.time ptimer (Obs.Trace.phase_name phase) (fun () ->
        Obs.Trace.span tr ~pid ~round phase f)
  in
  let fc = Fault.counters () in
  let credit_stalls = ref 0 in
  let peak_in_flight = ref 0 in
  let overload : Overload.reason option ref = ref None in
  let my_mailbox = mailboxes.(my_domain) in
  let send_to_pid pid msg = Mailbox.push mailboxes.(domain_of pid) msg in
  (* Send coalescing (§16): [Data] payloads are not pushed one mailbox
     operation at a time but staged in a per-destination-domain buffer
     and handed over in bulk — one lock acquisition and one consumer
     wake-up per (phase, destination) via [Mailbox.push_all]. Control
     traffic (tokens, acks, replay requests, stop) stays immediate:
     its latency bounds termination detection. The buffer is flushed
     after every dispatch drain and every step sweep, and — crucially —
     inside [announce_termination] and before any blocking drain, so a
     worker can never go to sleep (or tell others to stop) while it
     still holds undelivered tuples; a held [Data] whose send the
     detector has already counted would otherwise stall Safra's token
     forever. *)
  let ndest = Array.length mailboxes in
  let outbuf = Array.init ndest (fun _ -> Queue.create ()) in
  let bulk_pushes = ref 0 in
  let bulk_messages = ref 0 in
  let buffer_data pid msg = Queue.add msg outbuf.(domain_of pid) in
  let flush_outbuf () =
    for d = 0 to ndest - 1 do
      let q = outbuf.(d) in
      if not (Queue.is_empty q) then begin
        let msgs = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        Mailbox.push_all mailboxes.(d) msgs;
        incr bulk_pushes;
        bulk_messages := !bulk_messages + List.length msgs
      end
    done
  in
  let send_specs_for =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Rewrite.send_spec) ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt tbl s.ss_pred)
        in
        Hashtbl.replace tbl s.ss_pred (existing @ [ s ]))
      rw.sends;
    fun pred -> Option.value ~default:[] (Hashtbl.find_opt tbl pred)
  in
  let fresh_pids =
    List.filter (fun pid -> engines.(pid) = None) own_pids
  in
  let procs =
    List.map
      (fun pid ->
        {
          pid;
          engine =
            (match engines.(pid) with
             | Some e -> e
             | None ->
               Seminaive.create rw.programs.(pid) ~edb:local_edbs.(pid));
          safra = Safra.create ();
          ds = Dscholten.create ~pid ~nprocs:n;
          held_token = None;
          probe_outstanding = false;
          sent_row = Array.make n 0;
          received = 0;
          accepted = 0;
          channel_seen = channel_seen.(pid);
          base_resident = Database.total_tuples local_edbs.(pid);
          next_seq = Array.make n 0;
          unacked = Array.init n (fun _ -> Hashtbl.create 8);
          seen_seq = Array.init n (fun _ -> Hashtbl.create 16);
          pending = Array.init n (fun _ -> Queue.create ());
          credit_used = Array.make n 0;
          inflight_size = Array.init n (fun _ -> Hashtbl.create 8);
          outbox_peak_rows = 0;
          outbox_peak_bytes = 0;
          local_rounds = 0;
          crashes_fired = [];
          lost_iterations = 0;
          lost_firings = 0;
          lost_new = 0;
          lost_dup = 0;
        })
      own_pids
  in
  let proc_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.add tbl p.pid p) procs;
    fun pid -> Hashtbl.find tbl pid
  in
  (* Engine-counter deltas around every bootstrap / step: the metric
     totals then equal the final engine counters plus the lost_* work
     folded in at crash time — exactly what [wr_stats] reports. *)
  let observe_engine p f =
    if not (Obs.Metrics.enabled mx) then f ()
    else begin
      let b = Seminaive.stats p.engine in
      let pb = Seminaive.join_probes p.engine in
      let r = f () in
      let a = Seminaive.stats p.engine in
      Obs.Metrics.incr mx
        ~by:(a.Seminaive.firings - b.Seminaive.firings)
        "runtime.firings";
      Obs.Metrics.incr mx
        ~by:(a.Seminaive.new_tuples - b.Seminaive.new_tuples)
        "runtime.new_tuples";
      Obs.Metrics.incr mx
        ~by:(a.Seminaive.duplicate_firings - b.Seminaive.duplicate_firings)
        "runtime.duplicate_firings";
      Obs.Metrics.incr mx
        ~by:(Seminaive.join_probes p.engine - pb)
        "joiner.probes";
      r
    end
  in
  let stopped = ref false in
  (* One transmission attempt of an already-registered batch. *)
  let transmit_batch p dst seq pd =
    let attempt = pd.pd_attempt in
    pd.pd_attempt <- attempt + 1;
    pd.pd_retry_at <- Unix.gettimeofday () +. retry_delay attempt;
    let fate = Fault.fate plan ~src:p.pid ~dst ~seq ~attempt in
    if fate.f_drop then fc.n_drops <- fc.n_drops + 1
    else begin
      (* Delay and reorder are no-ops here: mailbox scheduling is
         already asynchronous, so added latency changes nothing
         observable. They are only tallied. *)
      if fate.f_delay > 0 then fc.n_delays <- fc.n_delays + 1;
      if fate.f_jitter > 0 then fc.n_reorders <- fc.n_reorders + 1;
      buffer_data dst (Data { src = p.pid; dst; seq; batch = pd.pd_batch });
      if fate.f_dup then begin
        fc.n_dups_injected <- fc.n_dups_injected + 1;
        buffer_data dst (Data { src = p.pid; dst; seq; batch = pd.pd_batch })
      end
    end
  in
  (* Hand one batch to the channel [p.pid -> dst]. The detectors count
     at sequence-number granularity: one send per new batch here, one
     receive per first-seen sequence number at the receiver —
     retransmissions and duplicates are invisible to them, which keeps
     the token balance (Safra) and the deficits (Dijkstra-Scholten)
     sound over lossy channels. *)
  let send_entries p dst entries =
    let seq = p.next_seq.(dst) in
    p.next_seq.(dst) <- seq + 1;
    (match detector with
     | Safra -> Safra.record_send p.safra
     | Dijkstra_scholten -> Dscholten.record_send p.ds);
    List.iter
      (fun (_, _, replay) ->
        if replay then fc.n_replayed <- fc.n_replayed + 1
        else begin
          p.sent_row.(dst) <- p.sent_row.(dst) + 1;
          Obs.Metrics.incr mx "runtime.tuples_sent"
        end)
      entries;
    let batch = List.map (fun (pred, tuple, _) -> (pred, tuple)) entries in
    if credited then begin
      let size = List.length entries in
      p.credit_used.(dst) <- p.credit_used.(dst) + size;
      if p.credit_used.(dst) > !peak_in_flight then
        peak_in_flight := p.credit_used.(dst);
      Obs.Metrics.max_gauge mx "runtime.peak_in_flight" p.credit_used.(dst);
      Hashtbl.replace p.inflight_size.(dst) seq size
    end;
    if faulty then begin
      let pd = { pd_batch = batch; pd_attempt = 0; pd_retry_at = 0.0 } in
      Hashtbl.replace p.unacked.(dst) seq pd;
      transmit_batch p dst seq pd
    end
    else buffer_data dst (Data { src = p.pid; dst; seq; batch })
  in
  let send_data ~replay p dst batch =
    send_entries p dst (List.map (fun (pred, t) -> (pred, t, replay)) batch)
  in
  (* Move deferred tuples onto the wire, channel credit permitting;
     batches are split to fit the remaining credit. *)
  let flush_pending p =
    match capacity with
    | None -> ()
    | Some k ->
      for dst = 0 to n - 1 do
        let q = p.pending.(dst) in
        if not (Queue.is_empty q) then begin
          let stalled = ref false in
          while
            (not (Queue.is_empty q))
            && (p.credit_used.(dst) < k || (stalled := true; false))
          do
            let room = k - p.credit_used.(dst) in
            let entries = ref [] in
            let count = ref 0 in
            while !count < room && not (Queue.is_empty q) do
              entries := Queue.pop q :: !entries;
              incr count
            done;
            send_entries p dst (List.rev !entries)
          done;
          if !stalled then begin
            incr credit_stalls;
            Obs.Metrics.incr mx "runtime.credit_stalls"
          end
        end
      done
  in
  (* Hand a batch to the channel: directly when unbounded, through the
     credit gate when a capacity is set. Deferral is never a loss — the
     worker refuses to go passive while anything is pending, and an
     un-Tacked batch is always outstanding then, so the credit that
     flushes the remainder is guaranteed to arrive. *)
  let dispatch_out ~replay p dst batch =
    if not credited then send_data ~replay p dst batch
    else begin
      List.iter
        (fun (pred, t) -> Queue.add (pred, t, replay) p.pending.(dst))
        batch;
      flush_pending p
    end
  in
  let track_outbox_peak p =
    if credited then begin
      let rows = ref 0 in
      Array.iter (fun q -> rows := !rows + Queue.length q) p.pending;
      if !rows > p.outbox_peak_rows then begin
        p.outbox_peak_rows <- !rows;
        let bytes = ref 0 in
        Array.iter
          (fun q ->
            Queue.iter
              (fun (_, t, _) -> bytes := !bytes + (Tuple.arity t * 8))
              q)
          p.pending;
        p.outbox_peak_bytes <- !bytes
      end
    end
  in
  let has_pending_out p =
    Array.exists (fun q -> not (Queue.is_empty q)) p.pending
  in
  let route p produced =
    span ~pid:p.pid ~round:p.local_rounds Obs.Trace.Sending
      (fun () ->
    let batches = Array.make n [] in
    List.iter
      (fun (out_name, tuple) ->
        let pred = Rewrite.original_pred out_name in
        if List.mem pred rw.derived then
          List.iter
            (fun (s : Rewrite.send_spec) ->
              List.iter
                (fun dst ->
                  let seen = p.channel_seen.(dst) in
                  if not (Ktbl.mem seen (pred, tuple)) then begin
                    Ktbl.add seen (pred, tuple) ();
                    batches.(dst) <- (pred, tuple) :: batches.(dst)
                  end)
                (s.ss_route p.pid tuple))
            (send_specs_for pred))
      produced;
    (* Adaptive degradation: feed the worst channel demand (this step's
       batch plus what is still deferred or in flight) to the dial. Each
       worker only observes — and the dial only writes — its own
       processors' entries. *)
    (match dial with
     | Some d ->
       let backlog = ref 0 in
       Array.iteri
         (fun dst batch ->
           if dst <> p.pid then begin
             let b =
               List.length batch
               + Queue.length p.pending.(dst)
               + p.credit_used.(dst)
             in
             if b > !backlog then backlog := b
           end)
         batches;
       Overload.observe d ~pid:p.pid ~backlog:!backlog;
       Obs.Metrics.observe mx "dial.alpha" (Overload.alpha d p.pid)
     | None -> ());
    Array.iteri
      (fun dst batch ->
        if batch <> [] then dispatch_out ~replay:false p dst (List.rev batch))
      batches;
    track_outbox_peak p)
  in
  let announce_termination () =
    (* Any staged tuples must precede the poison pill in every queue. *)
    flush_outbuf ();
    for d = 0 to Array.length mailboxes - 1 do
      Mailbox.push mailboxes.(d) Stop
    done;
    stopped := true
  in
  (* Crash recovery: the engine is volatile and is lost; detector and
     delivery-layer state is stable. The processor rebuilds from its
     base fragment, then broadcasts a replay request — every processor
     (itself included) re-sends its channel history to the rebuilt
     engine as fresh-sequence batches. Recovery is immediate
     ([cr_down] does not apply: an absent mailbox owner would merely
     delay its own queue). *)
  let maybe_crash p =
    match Fault.crash_at plan ~pid:p.pid ~round:p.local_rounds with
    | Some c when not (List.mem c.Fault.cr_round p.crashes_fired) ->
      p.crashes_fired <- c.Fault.cr_round :: p.crashes_fired;
      fc.n_crashes <- fc.n_crashes + 1;
      let es = Seminaive.stats p.engine in
      p.lost_iterations <- p.lost_iterations + es.Seminaive.iterations;
      p.lost_firings <- p.lost_firings + es.Seminaive.firings;
      p.lost_new <- p.lost_new + es.Seminaive.new_tuples;
      p.lost_dup <- p.lost_dup + es.Seminaive.duplicate_firings;
      Obs.Trace.instant tr ~pid:p.pid ~round:p.local_rounds "crash";
      p.engine <- Seminaive.create rw.programs.(p.pid) ~edb:local_edbs.(p.pid);
      fc.n_recoveries <- fc.n_recoveries + 1;
      Obs.Trace.instant tr ~pid:p.pid ~round:p.local_rounds "recover";
      route p (observe_engine p (fun () -> Seminaive.bootstrap p.engine));
      for d = 0 to Array.length mailboxes - 1 do
        Mailbox.push mailboxes.(d) (Replay { requester = p.pid })
      done
    | _ -> ()
  in
  let pump_retransmits () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun p ->
        span ~pid:p.pid ~round:p.local_rounds
          Obs.Trace.Retransmission (fun () ->
            Array.iteri
              (fun dst tbl ->
                Hashtbl.iter
                  (fun seq pd ->
                    if pd.pd_retry_at <= now then begin
                      fc.n_retransmits <- fc.n_retransmits + 1;
                      Obs.Metrics.incr mx "runtime.retransmits";
                      transmit_batch p dst seq pd
                    end)
                  tbl)
              p.unacked))
      procs
  in
  let dispatch = function
    | Data { src; dst; seq; batch } ->
      let p = proc_of dst in
      span ~pid:dst ~round:p.local_rounds Obs.Trace.Receiving
        (fun () ->
          (* Under a capacity the Tack doubles as the credit grant, so
             it is sent even on fault-free runs. *)
          if faulty || credited then
            send_to_pid src (Tack { sender = src; receiver = dst; seq });
          if faulty && Hashtbl.mem p.seen_seq.(src) seq then
            fc.n_dups_suppressed <- fc.n_dups_suppressed + 1
          else begin
            if faulty then Hashtbl.replace p.seen_seq.(src) seq ();
            (match detector with
             | Safra -> Safra.record_receive p.safra
             | Dijkstra_scholten ->
               (match Dscholten.on_data p.ds ~src with
                | `Ack_now target -> send_to_pid target (Ack { dst = target })
                | `Engaged -> ()));
            List.iter
              (fun (pred, tuple) ->
                p.received <- p.received + 1;
                Obs.Metrics.incr mx "runtime.tuples_received";
                if Seminaive.inject p.engine (Rewrite.in_pred pred) tuple
                then p.accepted <- p.accepted + 1)
              batch
          end)
    | Token { dst; token } -> (proc_of dst).held_token <- Some token
    | Ack { dst } -> Dscholten.on_ack (proc_of dst).ds
    | Tack { sender; receiver; seq } ->
      let p = proc_of sender in
      if Hashtbl.mem p.unacked.(receiver) seq then begin
        Hashtbl.remove p.unacked.(receiver) seq;
        fc.n_acks <- fc.n_acks + 1
      end;
      if credited then begin
        match Hashtbl.find_opt p.inflight_size.(receiver) seq with
        | Some size ->
          Hashtbl.remove p.inflight_size.(receiver) seq;
          p.credit_used.(receiver) <- p.credit_used.(receiver) - size;
          (* Freed credit: try to move deferred work. *)
          flush_pending p
        | None -> ()  (* duplicated Tack; credit already returned *)
      end
    | Replay { requester } ->
      List.iter
        (fun q ->
          let history =
            Ktbl.fold (fun key () acc -> key :: acc)
              q.channel_seen.(requester) []
          in
          if history <> [] then dispatch_out ~replay:true q requester history)
        procs
    | Stop -> stopped := true
  in
  (* Returns true when some control action was taken (so the caller
     should not block yet). *)
  let passive_action p =
    match detector with
    | Safra ->
      (match p.held_token with
       | Some token when p.pid <> 0 ->
         p.held_token <- None;
         send_to_pid (p.pid - 1)
           (Token { dst = p.pid - 1; token = Safra.forward p.safra token });
         true
       | Some token ->
         p.held_token <- None;
         (match Safra.evaluate p.safra token with
          | `Terminated ->
            announce_termination ();
            true
          | `Try_again ->
            send_to_pid (n - 1)
              (Token { dst = n - 1; token = Safra.initial_token });
            true)
       | None ->
         if p.pid = 0 && not p.probe_outstanding then begin
           p.probe_outstanding <- true;
           send_to_pid (n - 1)
             (Token { dst = n - 1; token = Safra.initial_token });
           true
         end
         else false)
    | Dijkstra_scholten ->
      (match Dscholten.on_passive p.ds with
       | `Ack_parent parent ->
         send_to_pid parent (Ack { dst = parent });
         true
       | `Terminated ->
         announce_termination ();
         true
       | `Wait -> false)
  in
  (* Watchdog: on a breach, record the reason and broadcast Stop — the
     poison pill propagates cancellation; every worker then returns its
     partial results normally, so the caller can raise a structured
     [Overload] instead of hanging or dying on OOM. *)
  let check_limits () =
    if !overload = None && not (Overload.is_none limits) then begin
      (match limits.Overload.deadline with
       | Some seconds ->
         let elapsed = Unix.gettimeofday () -. t0 in
         if elapsed > seconds then begin
           overload :=
             Some (Overload.Deadline { seconds; elapsed; round = 0 });
           announce_termination ()
         end
       | None -> ());
      if !overload = None then
        List.iter
          (fun p ->
            (match limits.Overload.max_store_rows with
             | Some limit when !overload = None ->
               let rows = Overload.db_rows (Seminaive.database p.engine) in
               if rows > limit then begin
                 overload :=
                   Some (Overload.Store_budget { pid = p.pid; rows; limit });
                 announce_termination ()
               end
             | _ -> ());
            match limits.Overload.max_outbox_rows with
            | Some limit when !overload = None ->
              let rows = ref 0 in
              Array.iter
                (fun q -> rows := !rows + Queue.length q)
                p.pending;
              if !rows > limit then begin
                overload :=
                  Some
                    (Overload.Outbox_budget
                       { pid = p.pid; rows = !rows; limit });
                announce_termination ()
              end
            | _ -> ())
          procs
    end
  in
  (* A blocked drain must time out whenever the worker has periodic
     duties: retransmissions under a fault plan, deadline checks under
     a wall-clock limit. *)
  let timed_drain = faulty || limits.Overload.deadline <> None in
  let note_depth msgs =
    if Obs.Metrics.enabled mx then
      Obs.Metrics.observe mx "mailbox.depth" (float_of_int (List.length msgs));
    msgs
  in
  List.iter
    (fun p ->
      if List.mem p.pid fresh_pids then begin
        route p (observe_engine p (fun () -> Seminaive.bootstrap p.engine));
        Obs.Trace.instant tr ~pid:p.pid ~round:0 "bootstrap"
      end)
    procs;
  flush_outbuf ();
  while not !stopped do
    if faulty then pump_retransmits ();
    check_limits ();
    List.iter dispatch (note_depth (Mailbox.drain my_mailbox));
    (* Dispatching can stage sends (Tack-freed credit, replay
       histories, retransmissions pumped above): deliver them before
       doing local work. *)
    flush_outbuf ();
    if not !stopped then begin
      let worked = ref false in
      List.iter
        (fun p ->
          if faulty then maybe_crash p;
          if Seminaive.has_pending p.engine then begin
            worked := true;
            span ~pid:p.pid ~round:p.local_rounds
              Obs.Trace.Processing (fun () ->
                route p (observe_engine p (fun () -> Seminaive.step p.engine)));
            p.local_rounds <- p.local_rounds + 1
          end)
        procs;
      (* The per-phase flush: every owned processor has taken its step,
         so each destination receives the whole sweep's traffic as one
         delivery. *)
      flush_outbuf ();
      if (not !worked) && not !stopped then begin
        (* All owned processors idle: run control actions; if nothing
           moved, wait for messages — with a timeout when a fault plan
           is active, so the retransmission pump keeps running. A
           processor with credit-deferred output is NOT passive: its
           un-Tacked batches guarantee an incoming Tack, whose credit
           flushes the remainder — skipping the detector action here is
           what keeps Safra/Dijkstra-Scholten sound under deferral
           (nothing terminates while tuples wait for credit). *)
        let acted =
          List.fold_left
            (fun acc p ->
              if !stopped || has_pending_out p then acc
              else
                span ~pid:p.pid ~round:p.local_rounds
                  Obs.Trace.Termination_test (fun () -> passive_action p)
                || acc)
            false procs
        in
        if (not acted) && not !stopped then begin
          let msgs =
            if timed_drain then
              Mailbox.drain_timeout my_mailbox ~seconds:0.002
            else Mailbox.drain_blocking my_mailbox
          in
          (* A closed, empty mailbox means a peer shut the system down
             (normally or exceptionally): never stay blocked on it. *)
          if msgs = [] && Mailbox.is_closed my_mailbox then stopped := true;
          List.iter dispatch (note_depth msgs)
        end
      end
    end
  done;
  (* Stop can arrive with staged replay traffic still buffered; hand it
     over so the counters balance even on aborted runs. *)
  flush_outbuf ();
  List.iter (fun p -> engines.(p.pid) <- Some p.engine) procs;
  ( List.map
      (fun p ->
        let es = Seminaive.stats p.engine in
        {
          wr_pid = p.pid;
          wr_db = Seminaive.database p.engine;
          wr_stats =
            {
              Seminaive.iterations = es.Seminaive.iterations + p.lost_iterations;
              firings = es.Seminaive.firings + p.lost_firings;
              new_tuples = es.Seminaive.new_tuples + p.lost_new;
              duplicate_firings =
                es.Seminaive.duplicate_firings + p.lost_dup;
            };
          wr_sent_row = p.sent_row;
          wr_received = p.received;
          wr_accepted = p.accepted;
          wr_base_resident = p.base_resident;
          wr_outbox_peak_rows = p.outbox_peak_rows;
          wr_outbox_peak_bytes = p.outbox_peak_bytes;
        })
      procs,
    fc,
    {
      we_overload = !overload;
      we_credit_stalls = !credit_stalls;
      we_peak_in_flight = !peak_in_flight;
      we_phase_ns = Obs.Phase_timer.totals ptimer;
      we_bulk_pushes = !bulk_pushes;
      we_bulk_messages = !bulk_messages;
    } )

let open_session ?(config = Run_config.default) (rw : Rewrite.t) ~edb =
  (* Same certificate gate as the simulator: a plan that no longer
     verifies against the program must not run. *)
  Option.iter
    (fun plan -> Plan.validate_exn ~nprocs:rw.nprocs plan rw.original)
    config.Run_config.plan;
  let detector = config.Run_config.detector in
  let domains = config.Run_config.domains in
  let fault = config.Run_config.fault in
  let capacity = config.Run_config.capacity in
  let limits = config.Run_config.limits in
  let dial = config.Run_config.dial in
  let obs = config.Run_config.obs in
  let n = rw.nprocs in
  (match capacity with
   | Some c when c < 1 ->
     invalid_arg "Domain_runtime.run: capacity must be >= 1"
   | _ -> ());
  Overload.validate limits;
  let t0 = Unix.gettimeofday () in
  let ndomains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Domain_runtime.run: domains must be >= 1";
      min d n
    | None -> n
  in
  let edb =
    let combined = Database.copy edb in
    List.iter
      (fun (pred, tuple) ->
        if List.mem pred rw.derived then
          invalid_arg
            "Domain_runtime.run: derived-predicate facts are not supported"
        else ignore (Database.add_fact combined pred tuple))
      rw.original.Program.facts;
    combined
  in
  let domain_of pid = pid mod ndomains in
  let local_edbs = Array.init n (fun pid -> build_edb rw edb pid) in
  let own_pids d =
    List.filter (fun pid -> domain_of pid = d) (List.init n Fun.id)
  in
  (* Session-resident state, alive across epochs (one epoch = one
     spawn/join cycle of the domains — the initial evaluation or one
     applied batch). *)
  let engines : Seminaive.t option array = Array.make n None in
  let channel_seen =
    Array.init n (fun _ -> Array.init n (fun _ -> Ktbl.create 64))
  in
  (* Accumulators merged after every epoch; the per-epoch crash losses
     are recovered as each worker result's excess over the surviving
     engine's cumulative counters. *)
  let fc = Fault.counters () in
  let acc_sent = Array.make_matrix n n 0 in
  let acc_received = Array.make n 0 in
  let acc_accepted = Array.make n 0 in
  let acc_lost_iterations = Array.make n 0 in
  let acc_lost_firings = Array.make n 0 in
  let acc_lost_new = Array.make n 0 in
  let acc_lost_dup = Array.make n 0 in
  let acc_outbox_rows = Array.make n 0 in
  let acc_outbox_bytes = Array.make n 0 in
  let acc_credit_stalls = ref 0 in
  let acc_peak_in_flight = ref 0 in
  let acc_phase_ns = ref [] in
  let acc_mailbox_drops = ref 0 in
  let acc_bulk_pushes = ref 0 in
  let acc_bulk_messages = ref 0 in
  (* Lazily created maintenance oracle, as in the simulator: a plain
     [run] never pays for it. *)
  let live = ref None in
  let oracle () =
    match !live with
    | Some l -> l
    | None ->
      let l =
        Stratified.Live.create ~track:config.Run_config.track_changes
          rw.original ~edb
      in
      live := Some l;
      l
  in
  let incr_stats () =
    match !live with
    | None -> Stats.no_incr
    | Some l ->
      let s = Stratified.Live.totals l in
      {
        Stats.batches_applied = Stratified.Live.batches l;
        tuples_inserted = s.Delta.s_inserted;
        tuples_deleted = s.Delta.s_deleted;
        tuples_rederived = s.Delta.s_rederived;
        tuples_overdeleted = s.Delta.s_overdeleted;
        incr_firings = s.Delta.s_firings;
      }
  in
  let build_stats ~pooled () : Stats.t =
    let rounds = ref 0 in
    let per_proc =
      Array.init n (fun pid ->
          let e = Option.get engines.(pid) in
          let es = Seminaive.stats e in
          let db = Seminaive.database e in
          let iterations =
            es.Seminaive.iterations + acc_lost_iterations.(pid)
          in
          if iterations > !rounds then rounds := iterations;
          {
            Stats.pid;
            firings = es.Seminaive.firings + acc_lost_firings.(pid);
            new_tuples = es.Seminaive.new_tuples + acc_lost_new.(pid);
            duplicate_firings =
              es.Seminaive.duplicate_firings + acc_lost_dup.(pid);
            iterations;
            tuples_sent = Array.fold_left ( + ) 0 acc_sent.(pid);
            tuples_received = acc_received.(pid);
            tuples_accepted = acc_accepted.(pid);
            base_resident = Database.total_tuples local_edbs.(pid);
            active_rounds = iterations;
            store_rows = Overload.db_rows db;
            store_bytes = Overload.db_bytes db;
            outbox_peak_rows = acc_outbox_rows.(pid);
            outbox_peak_bytes = acc_outbox_bytes.(pid);
          })
    in
    {
      incr = incr_stats ();
      nprocs = n;
      rounds = !rounds;
      per_proc;
      channel_tuples = Array.init n (fun pid -> Array.copy acc_sent.(pid));
      pooled_tuples = pooled;
      trace = [];
      faults =
        Fault.freeze fc ~mailbox_drops:!acc_mailbox_drops
          ~credit_stalls:!acc_credit_stalls
          ~alpha_raises:
            (match dial with Some d -> Overload.raises d | None -> 0)
          ~alpha_decays:
            (match dial with Some d -> Overload.decays d | None -> 0);
      transport = Stats.no_transport;
      peak_in_flight = !acc_peak_in_flight;
      phase_ns = !acc_phase_ns;
      comms =
        {
          Stats.bulk_pushes = !acc_bulk_pushes;
          bulk_messages = !acc_bulk_messages;
        };
    }
  in
  let assemble () =
    let answers = Database.copy edb in
    let pooled = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some e ->
          let db = Seminaive.database e in
          List.iter
            (fun pred ->
              match Database.find db (Rewrite.out_pred pred) with
              | None -> ()
              | Some rel ->
                pooled := !pooled + Relation.cardinal rel;
                let target =
                  Database.declare answers pred (Relation.arity rel)
                in
                ignore (Relation.add_all target rel))
            rw.derived)
      engines;
    (answers, !pooled)
  in
  let epoch () =
    let mailboxes = Array.init ndomains (fun _ -> Mailbox.create ()) in
    let spawned =
      Array.init ndomains (fun d ->
          Domain.spawn (fun () ->
              try
                worker detector fault ~capacity ~limits ~dial ~obs ~t0 rw
                  mailboxes ~domain_of ~own_pids:(own_pids d) ~engines
                  ~channel_seen local_edbs d
              with e ->
                (* Poison-pill shutdown: wake every peer blocked in its
                   mailbox before propagating, so one crashing domain
                   cannot leave the others stuck in [Condition.wait]. *)
                Array.iter Mailbox.close mailboxes;
                raise e))
    in
    let joined = Array.to_list spawned |> List.map Domain.join in
    List.iter
      (fun r ->
        let pid = r.wr_pid in
        let es = Seminaive.stats (Option.get engines.(pid)) in
        acc_lost_iterations.(pid) <-
          acc_lost_iterations.(pid)
          + r.wr_stats.Seminaive.iterations - es.Seminaive.iterations;
        acc_lost_firings.(pid) <-
          acc_lost_firings.(pid)
          + r.wr_stats.Seminaive.firings - es.Seminaive.firings;
        acc_lost_new.(pid) <-
          acc_lost_new.(pid)
          + r.wr_stats.Seminaive.new_tuples - es.Seminaive.new_tuples;
        acc_lost_dup.(pid) <-
          acc_lost_dup.(pid)
          + r.wr_stats.Seminaive.duplicate_firings
          - es.Seminaive.duplicate_firings;
        Array.iteri
          (fun dst v -> acc_sent.(pid).(dst) <- acc_sent.(pid).(dst) + v)
          r.wr_sent_row;
        acc_received.(pid) <- acc_received.(pid) + r.wr_received;
        acc_accepted.(pid) <- acc_accepted.(pid) + r.wr_accepted;
        if r.wr_outbox_peak_rows > acc_outbox_rows.(pid) then begin
          acc_outbox_rows.(pid) <- r.wr_outbox_peak_rows;
          acc_outbox_bytes.(pid) <- r.wr_outbox_peak_bytes
        end)
      (List.concat_map (fun (rs, _, _) -> rs) joined);
    List.iter
      (fun (_, c, _) ->
        fc.Fault.n_drops <- fc.Fault.n_drops + c.Fault.n_drops;
        fc.n_dups_injected <- fc.n_dups_injected + c.Fault.n_dups_injected;
        fc.n_dups_suppressed <-
          fc.n_dups_suppressed + c.Fault.n_dups_suppressed;
        fc.n_delays <- fc.n_delays + c.Fault.n_delays;
        fc.n_reorders <- fc.n_reorders + c.Fault.n_reorders;
        fc.n_retransmits <- fc.n_retransmits + c.Fault.n_retransmits;
        fc.n_acks <- fc.n_acks + c.Fault.n_acks;
        fc.n_crashes <- fc.n_crashes + c.Fault.n_crashes;
        fc.n_recoveries <- fc.n_recoveries + c.Fault.n_recoveries;
        fc.n_replayed <- fc.n_replayed + c.Fault.n_replayed;
        fc.n_checkpoints <- fc.n_checkpoints + c.Fault.n_checkpoints;
        fc.n_restores <- fc.n_restores + c.Fault.n_restores)
      joined;
    let extras = List.map (fun (_, _, e) -> e) joined in
    acc_credit_stalls :=
      List.fold_left
        (fun acc e -> acc + e.we_credit_stalls)
        !acc_credit_stalls extras;
    acc_peak_in_flight :=
      List.fold_left
        (fun acc e -> max acc e.we_peak_in_flight)
        !acc_peak_in_flight extras;
    acc_phase_ns :=
      List.fold_left
        (fun acc e -> Obs.Phase_timer.merge_totals acc e.we_phase_ns)
        !acc_phase_ns extras;
    acc_mailbox_drops :=
      Array.fold_left
        (fun acc mb -> acc + Mailbox.dropped mb)
        !acc_mailbox_drops mailboxes;
    acc_bulk_pushes :=
      List.fold_left (fun acc e -> acc + e.we_bulk_pushes) !acc_bulk_pushes
        extras;
    acc_bulk_messages :=
      List.fold_left
        (fun acc e -> acc + e.we_bulk_messages)
        !acc_bulk_messages extras;
    (* The first domain's breach wins when several workers tripped at
       once. *)
    let overload_reason =
      List.fold_left
        (fun acc e ->
          match acc, e.we_overload with
          | Some _, _ -> acc
          | None, r -> r)
        None extras
    in
    match overload_reason with
    | Some reason ->
      let _, pooled = assemble () in
      raise (Overload.Overload { reason; stats = build_stats ~pooled () })
    | None -> ()
  in
  epoch ();
  let is_derived pred = List.mem pred rw.derived in
  let apply batch =
    let change = Stratified.Live.apply (oracle ()) batch in
    let removed = change.Stratified.Live.c_removed in
    let added = change.Stratified.Live.c_added in
    if removed = [] && added = [] then
      {
        Session.oc_added = [];
        oc_removed = [];
        oc_summary = change.Stratified.Live.c_summary;
      }
    else begin
      (* Patch the resident state in the parent: no domain is running
         between epochs, so the engine and channel-history slots are
         exclusively ours here. *)
      if removed <> [] then begin
        let retractions =
          List.concat_map
            (fun (pred, t) ->
              if is_derived pred then
                [ (Rewrite.out_pred pred, t); (Rewrite.in_pred pred, t) ]
              else [ (pred, t) ])
            removed
        in
        Array.iter
          (function
            | None -> ()
            | Some e -> ignore (Seminaive.retract_facts e retractions))
          engines;
        List.iter
          (fun (pred, t) ->
            let key = (pred, t) in
            Array.iter
              (fun row -> Array.iter (fun tbl -> Ktbl.remove tbl key) row)
              channel_seen)
          removed
      end;
      (* Base deletions leave the combined EDB and every base fragment
         (crash recovery rebuilds from the fragments). *)
      List.iter
        (fun (pred, t) ->
          if not (is_derived pred) then begin
            (match Database.find edb pred with
             | Some rel -> ignore (Relation.remove_all rel (Tuple.equal t))
             | None -> ());
            Array.iter
              (fun ldb ->
                match Database.find ldb pred with
                | Some rel ->
                  ignore (Relation.remove_all rel (Tuple.equal t))
                | None -> ())
              local_edbs
          end)
        removed;
      (* Base insertions land in the fragments of the processors that
         host them and are injected as pending work; the next epoch's
         step loop derives and routes the consequences. *)
      List.iter
        (fun (pred, t) ->
          if not (is_derived pred) then begin
            ignore (Database.add_fact edb pred t);
            for pid = 0 to n - 1 do
              if rw.resident pid pred t then begin
                ignore (Database.add_fact local_edbs.(pid) pred t);
                match engines.(pid) with
                | Some e -> ignore (Seminaive.inject e pred t)
                | None -> ()
              end
            done
          end)
        added;
      epoch ();
      {
        Session.oc_added = added;
        oc_removed = removed;
        oc_summary = change.Stratified.Live.c_summary;
      }
    end
  in
  let query pred =
    if is_derived pred then begin
      let acc = ref None in
      Array.iter
        (function
          | None -> ()
          | Some e ->
            (match
               Database.find (Seminaive.database e) (Rewrite.out_pred pred)
             with
             | None -> ()
             | Some rel ->
               let target =
                 match !acc with
                 | Some r -> r
                 | None ->
                   let r =
                     Relation.create ~arity:(Relation.arity rel) ()
                   in
                   acc := Some r;
                   r
               in
               ignore (Relation.add_all target rel)))
        engines;
      match !acc with
      | Some r -> Relation.sorted_elements r
      | None -> []
    end
    else
      match Database.find edb pred with
      | Some rel -> Relation.sorted_elements rel
      | None -> []
  in
  let model () = fst (assemble ()) in
  let close () =
    let answers, pooled = assemble () in
    { Session.answers; stats = build_stats ~pooled () }
  in
  Session.v ~runtime:"domains" ~apply ~query ~model ~close

let run ?config (rw : Rewrite.t) ~edb =
  Session.close (open_session ?config rw ~edb)
