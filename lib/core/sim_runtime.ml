open Datalog

let log_src = Logs.Src.create "pardatalog.sim" ~doc:"simulated parallel runtime"

module Log = (val Logs.src_log log_src)

type result = Session.result = {
  answers : Database.t;
  stats : Stats.t;
}

exception Round_budget_exceeded of { round : int; stats : Stats.t }

module Key = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
end

module Ktbl = Hashtbl.Make (Key)

type proc_state = {
  pid : Pid.t;
  mutable engine : Seminaive.t;  (* replaced on crash recovery *)
  outbox : (string * Tuple.t) Queue.t;  (* produced, not yet routed *)
  (* delivered, not yet injected; tagged with the sender so receipt can
     return that channel's credit *)
  inbox : (Pid.t * string * Tuple.t) Queue.t;
  all_out : (string * Tuple.t) Queue.t;  (* cumulative, for resend_all *)
  mutable outbox_peak_rows : int;
  mutable outbox_peak_bytes : int;
  mutable tuples_sent : int;
  mutable tuples_received : int;
  mutable tuples_accepted : int;
  mutable active_rounds : int;
  base_resident : int;
  mutable alive : bool;
  mutable down_until : int;  (* first round eligible for recovery *)
  (* Engine snapshot plus the outbox at the same instant: a tuple
     derived in round r is routed only in round r+1, so a checkpoint
     that captured the engine alone would leave such a tuple in the
     restored full database (never re-derived) yet absent from every
     channel history (never replayed) — silently lost. *)
  mutable checkpoint : (Seminaive.snapshot * (string * Tuple.t) list) option;
  (* Work done by engines that crashed, folded into the final stats so
     total firings stay honest about redundant re-derivation. *)
  mutable lost_iterations : int;
  mutable lost_firings : int;
  mutable lost_new : int;
  mutable lost_dup : int;
}

(* One payload on the reliable-delivery layer: a (pred, tuple) pair with
   a per-channel sequence number, retransmitted until acknowledged. *)
type payload = {
  pl_src : Pid.t;
  pl_dst : Pid.t;
  pl_seq : int;
  pl_pred : string;
  pl_tuple : Tuple.t;
  mutable pl_attempt : int;  (* transmission attempts made *)
  mutable pl_retry_at : int;  (* round to retransmit if still unacked *)
}

type fmsg =
  | Fdata of { fm_pl : payload; fm_attempt : int }
  | Fack of { fm_sender : Pid.t; fm_receiver : Pid.t; fm_seq : int }

let build_edb ~replicate (rw : Rewrite.t) edb pid =
  let local = Database.create () in
  List.iter
    (fun pred ->
      match Database.find edb pred with
      | None -> ()
      | Some rel ->
        let target = Database.declare local pred (Relation.arity rel) in
        Relation.iter
          (fun t ->
            if replicate || rw.resident pid pred t then
              ignore (Relation.add target t))
          rel)
    (Database.predicates edb);
  local

let open_session ?(config = Run_config.default) (rw : Rewrite.t) ~edb =
  let options : Run_config.t = config in
  (* A configuration carrying a plan certificate is only honoured after
     re-verification against the program actually being run — a stale
     certificate fails fast (Plan.Rejected) instead of silently
     executing under assumptions that no longer hold. *)
  Option.iter
    (fun plan -> Plan.validate_exn ~nprocs:rw.nprocs plan rw.original)
    config.Run_config.plan;
  let tr = config.Run_config.obs.Obs.trace in
  let mx = config.Run_config.obs.Obs.metrics in
  (* Wall-clock accumulator behind [Stats.phase_ns]: unlike the trace
     sink it is always on — one gettimeofday pair per phase span. *)
  let ptimer = Obs.Phase_timer.create ~metrics:mx () in
  let span ~pid ~round phase f =
    Obs.Phase_timer.time ptimer (Obs.Trace.phase_name phase) (fun () ->
        Obs.Trace.span tr ~pid ~round phase f)
  in
  (* Engine-counter deltas around every bootstrap / step call: metric
     totals then equal final engine counters plus the work lost with
     crashed engines — exactly the accounting [build_stats] does. *)
  let observe_engine p f =
    if not (Obs.Metrics.enabled mx) then f ()
    else begin
      let b = Seminaive.stats p.engine in
      let pb = Seminaive.join_probes p.engine in
      let r = f () in
      let a = Seminaive.stats p.engine in
      Obs.Metrics.incr mx
        ~by:(a.Seminaive.firings - b.Seminaive.firings)
        "runtime.firings";
      Obs.Metrics.incr mx
        ~by:(a.Seminaive.new_tuples - b.Seminaive.new_tuples)
        "runtime.new_tuples";
      Obs.Metrics.incr mx
        ~by:(a.Seminaive.duplicate_firings - b.Seminaive.duplicate_firings)
        "runtime.duplicate_firings";
      Obs.Metrics.incr mx
        ~by:(Seminaive.join_probes p.engine - pb)
        "joiner.probes";
      r
    end
  in
  let nprocs = rw.nprocs in
  let plan = options.fault in
  (* With [Fault.none] the delivery layer is bypassed entirely and the
     run takes the exact fault-free code path. *)
  let faulty = not (Fault.is_none plan) in
  if faulty && options.resend_all then
    invalid_arg
      "Sim_runtime.run: resend_all cannot be combined with fault injection \
       (every round's re-sends would take fresh sequence numbers and the \
       unacknowledged buffers would never drain)";
  (match options.capacity with
   | Some c when c < 1 ->
     invalid_arg "Sim_runtime.run: capacity must be >= 1"
   | Some _ when options.resend_all ->
     invalid_arg
       "Sim_runtime.run: resend_all cannot be combined with a channel \
        capacity (re-sending the whole output every round outgrows any \
        bound)"
   | _ -> ());
  Overload.validate options.limits;
  let t0 = Unix.gettimeofday () in
  let fc = Fault.counters () in
  (* Base facts written in the program text join the EDB; derived facts
     are not supported by the rewrite. *)
  let edb =
    let combined = Database.copy edb in
    List.iter
      (fun (pred, tuple) ->
        if List.mem pred rw.derived then
          invalid_arg
            "Sim_runtime.run: derived-predicate facts are not supported"
        else ignore (Database.add_fact combined pred tuple))
      rw.original.Program.facts
    |> ignore;
    combined
  in
  let procs =
    Array.init nprocs (fun pid ->
        let local_edb =
          build_edb ~replicate:options.replicate_base rw edb pid
        in
        {
          pid;
          engine =
            Seminaive.create ~pushdown:options.pushdown rw.programs.(pid)
              ~edb:local_edb;
          outbox = Queue.create ();
          inbox = Queue.create ();
          all_out = Queue.create ();
          outbox_peak_rows = 0;
          outbox_peak_bytes = 0;
          tuples_sent = 0;
          tuples_received = 0;
          tuples_accepted = 0;
          active_rounds = 0;
          base_resident = Database.total_tuples local_edb;
          alive = true;
          down_until = 0;
          checkpoint = None;
          lost_iterations = 0;
          lost_firings = 0;
          lost_new = 0;
          lost_dup = 0;
        })
  in
  let channel_tuples = Array.make_matrix nprocs nprocs 0 in
  (* Per-channel transmission queue: tuples handed to the transport but
     not yet transmitted, because the channel is out of credit (or the
     round's pump has not run yet). Part of the stable channel layer —
     it survives a sender crash, like the sequence numbers and the
     unacked buffers, so a tuple recorded in [channel_seen] is never
     lost. The [bool] marks recovery replays, which are not re-counted
     as fresh communication. *)
  let chan_pending : (string * Tuple.t * bool) Queue.t array array =
    Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Queue.create ()))
  in
  (* Credit accounting, active only under a capacity: in-flight =
     delivered-but-unreceived (fault-free) or unacknowledged (faulty)
     tuples per channel. *)
  let in_flight = Array.make_matrix nprocs nprocs 0 in
  let sent_this_round = Array.make_matrix nprocs nprocs 0 in
  let peak_in_flight = ref 0 in
  let credit_stalls = ref 0 in
  let credited = options.capacity <> None in
  (* One seen-set per channel: a (pred, tuple) pair travels each channel
     at most once — the paper's difference-based resend suppression. It
     doubles as the channel history used to replay deliveries to a
     recovering processor. *)
  let channel_seen = Array.init nprocs (fun _ -> Array.init nprocs
                                            (fun _ -> Ktbl.create 64)) in
  (* Reliable-delivery state. Everything here is stable storage in the
     fault model — it survives processor crashes (the issue's "channel
     counters"); only the engine, the inbox and the receive-side
     duplicate filter are volatile. *)
  let next_seq = Array.make_matrix nprocs nprocs 0 in
  let unacked : (int, payload) Hashtbl.t array array =
    Array.init nprocs (fun _ ->
        Array.init nprocs (fun _ -> Hashtbl.create 8))
  in
  (* Receive-side content filter per channel: volatile, reset when the
     receiver crashes so that replays reach the rebuilt engine. *)
  let recv_seen =
    Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Ktbl.create 16))
  in
  (* replay_due.(q).(p): q was down when p recovered, so q still owes p
     a replay of its channel history, performed at q's own recovery. *)
  let replay_due = Array.make_matrix nprocs nprocs false in
  let flight : (int, fmsg list ref) Hashtbl.t = Hashtbl.create 32 in
  let flight_size = ref 0 in
  let rounds = ref 0 in
  let schedule at msg =
    incr flight_size;
    match Hashtbl.find_opt flight at with
    | Some l -> l := msg :: !l
    | None -> Hashtbl.add flight at (ref [ msg ])
  in
  let transmit pl =
    let attempt = pl.pl_attempt in
    pl.pl_attempt <- attempt + 1;
    pl.pl_retry_at <- !rounds + Fault.retransmit_after ~attempt;
    let fate =
      Fault.fate plan ~src:pl.pl_src ~dst:pl.pl_dst ~seq:pl.pl_seq ~attempt
    in
    if fate.f_drop then fc.n_drops <- fc.n_drops + 1
    else begin
      if fate.f_delay > 0 then fc.n_delays <- fc.n_delays + 1;
      if fate.f_jitter > 0 then fc.n_reorders <- fc.n_reorders + 1;
      let at = !rounds + fate.f_delay + fate.f_jitter in
      schedule at (Fdata { fm_pl = pl; fm_attempt = attempt });
      if fate.f_dup then begin
        fc.n_dups_injected <- fc.n_dups_injected + 1;
        schedule at (Fdata { fm_pl = pl; fm_attempt = attempt })
      end
    end
  in
  let check_channel src dst =
    match options.network with
    | Some net when not (Netgraph.mem net src dst) ->
      failwith
        (Printf.sprintf
           "Sim_runtime.run: tuple routed along missing channel %d -> %d \
            (Definition 3 violation)"
           src dst)
    | _ -> ()
  in
  let send_payload ~replay src dst pred tuple =
    check_channel src dst;
    let seq = next_seq.(src).(dst) in
    next_seq.(src).(dst) <- seq + 1;
    if replay then fc.n_replayed <- fc.n_replayed + 1;
    let pl =
      {
        pl_src = src;
        pl_dst = dst;
        pl_seq = seq;
        pl_pred = pred;
        pl_tuple = tuple;
        pl_attempt = 0;
        pl_retry_at = 0;
      }
    in
    Hashtbl.replace unacked.(src).(dst) seq pl;
    transmit pl
  in
  let send_specs_for =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Rewrite.send_spec) ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt tbl s.ss_pred)
        in
        Hashtbl.replace tbl s.ss_pred (existing @ [ s ]))
      rw.sends;
    fun pred -> Option.value ~default:[] (Hashtbl.find_opt tbl pred)
  in
  let route_tuple ~dedup src pred tuple =
    List.iter
      (fun (s : Rewrite.send_spec) ->
        List.iter
          (fun dst ->
            let fresh =
              (not dedup)
              ||
              let seen = channel_seen.(src.pid).(dst) in
              if Ktbl.mem seen (pred, tuple) then false
              else begin
                Ktbl.add seen (pred, tuple) ();
                true
              end
            in
            if fresh then begin
              check_channel src.pid dst;
              Queue.add (pred, tuple, false) chan_pending.(src.pid).(dst)
            end)
          (s.ss_route src.pid tuple))
      (send_specs_for pred)
  in
  (* The credit-gated pump: move pending tuples onto the wire while the
     channel has credit. Message counters tick here (not at routing), so
     they still mean "tuples actually put on the channel". *)
  let pump () =
    for src = 0 to nprocs - 1 do
      for dst = 0 to nprocs - 1 do
        let q = chan_pending.(src).(dst) in
        if not (Queue.is_empty q) then begin
          let has_credit () =
            match options.capacity with
            | None -> true
            | Some k -> in_flight.(src).(dst) < k
          in
          let stalled = ref false in
          while
            (not (Queue.is_empty q))
            && (has_credit () || (stalled := true; false))
          do
            let pred, tuple, replay = Queue.pop q in
            if not replay then begin
              channel_tuples.(src).(dst) <- channel_tuples.(src).(dst) + 1;
              procs.(src).tuples_sent <- procs.(src).tuples_sent + 1;
              sent_this_round.(src).(dst) <- sent_this_round.(src).(dst) + 1;
              Obs.Metrics.incr mx "runtime.tuples_sent"
            end;
            if credited then begin
              in_flight.(src).(dst) <- in_flight.(src).(dst) + 1;
              if in_flight.(src).(dst) > !peak_in_flight then
                peak_in_flight := in_flight.(src).(dst);
              Obs.Metrics.max_gauge mx "runtime.peak_in_flight"
                in_flight.(src).(dst)
            end;
            if faulty then send_payload ~replay src dst pred tuple
            else Queue.add (src, pred, tuple) procs.(dst).inbox
          done;
          if !stalled then begin
            incr credit_stalls;
            Obs.Metrics.incr mx "runtime.credit_stalls"
          end
        end
      done
    done
  in
  let collect_new src produced =
    List.iter
      (fun (out_name, tuple) ->
        let pred = Rewrite.original_pred out_name in
        if List.mem pred rw.derived then begin
          Queue.add (pred, tuple) src.outbox;
          if options.resend_all then Queue.add (pred, tuple) src.all_out
        end)
      produced
  in
  (* Initialization: bootstrap every processor's program; its
     production counts form trace row 0. *)
  let boot_row = Array.make nprocs 0 in
  Array.iter
    (fun p ->
      let produced = observe_engine p (fun () -> Seminaive.bootstrap p.engine) in
      Obs.Trace.instant tr ~pid:p.pid ~round:0 "bootstrap";
      boot_row.(p.pid) <- List.length produced;
      collect_new p produced)
    procs;
  let trace = ref [ boot_row ] in
  let build_stats ?(incr = Stats.no_incr) ~pooled () : Stats.t =
    {
      incr;
      nprocs;
      rounds = !rounds;
      per_proc =
        Array.map
          (fun p ->
            let es = Seminaive.stats p.engine in
            let db = Seminaive.database p.engine in
            {
              Stats.pid = p.pid;
              firings = es.Seminaive.firings + p.lost_firings;
              new_tuples = es.Seminaive.new_tuples + p.lost_new;
              duplicate_firings =
                es.Seminaive.duplicate_firings + p.lost_dup;
              iterations = es.Seminaive.iterations + p.lost_iterations;
              tuples_sent = p.tuples_sent;
              tuples_received = p.tuples_received;
              tuples_accepted = p.tuples_accepted;
              base_resident = p.base_resident;
              active_rounds = p.active_rounds;
              store_rows = Overload.db_rows db;
              store_bytes = Overload.db_bytes db;
              outbox_peak_rows = p.outbox_peak_rows;
              outbox_peak_bytes = p.outbox_peak_bytes;
            })
          procs;
      channel_tuples;
      pooled_tuples = pooled;
      trace = List.rev !trace;
      faults =
        Fault.freeze fc ~credit_stalls:!credit_stalls
          ~alpha_raises:
            (match options.dial with Some d -> Overload.raises d | None -> 0)
          ~alpha_decays:
            (match options.dial with Some d -> Overload.decays d | None -> 0);
      transport = Stats.no_transport;
      peak_in_flight = !peak_in_flight;
      phase_ns = Obs.Phase_timer.totals ptimer;
      comms = Stats.no_comms;
    }
  in
  let live_count () =
    Array.fold_left (fun n p -> if p.alive then n + 1 else n) 0 procs
  in
  let replay_history ~src ~dst =
    Ktbl.iter
      (fun (pred, tuple) () ->
        Queue.add (pred, tuple, true) chan_pending.(src).(dst))
      channel_seen.(src).(dst)
  in
  let do_crash p (c : Fault.crash) =
    if live_count () <= 1 then
      Log.info (fun m ->
          m "round %d: crash of processor %d skipped (last live processor)"
            !rounds p.pid)
    else begin
      fc.n_crashes <- fc.n_crashes + 1;
      p.alive <- false;
      p.down_until <- !rounds + c.cr_down;
      (* Volatile state dies with the processor; the delivery layer's
         stable state (sequence numbers, unacked buffers, channel
         history) survives. *)
      Queue.clear p.outbox;
      Queue.clear p.inbox;
      Array.iter Ktbl.reset recv_seen.(p.pid);
      Obs.Trace.instant tr ~pid:p.pid ~round:!rounds "crash";
      Log.info (fun m ->
          m "round %d: processor %d crashed, down for %d round(s)" !rounds
            p.pid c.cr_down)
    end
  in
  let do_recover p =
    fc.n_recoveries <- fc.n_recoveries + 1;
    let survivor =
      Array.fold_left
        (fun acc q ->
          match acc with
          | Some _ -> acc
          | None -> if q.alive then Some q.pid else None)
        None procs
      |> Option.value ~default:p.pid
    in
    let es = Seminaive.stats p.engine in
    p.lost_iterations <- p.lost_iterations + es.Seminaive.iterations;
    p.lost_firings <- p.lost_firings + es.Seminaive.firings;
    p.lost_new <- p.lost_new + es.Seminaive.new_tuples;
    p.lost_dup <- p.lost_dup + es.Seminaive.duplicate_firings;
    (match p.checkpoint with
     | Some (snap, saved_outbox) ->
       fc.n_restores <- fc.n_restores + 1;
       p.engine <-
         Seminaive.restore ~pushdown:options.pushdown rw.programs.(p.pid)
           snap;
       (* Products awaiting routing when the snapshot was taken; the
          per-channel dedup drops any that did get sent before the
          crash. *)
       List.iter (fun kt -> Queue.add kt p.outbox) saved_outbox
     | None ->
       let local_edb =
         build_edb ~replicate:options.replicate_base rw edb p.pid
       in
       p.engine <-
         Seminaive.create ~pushdown:options.pushdown rw.programs.(p.pid)
           ~edb:local_edb;
       let produced =
         observe_engine p (fun () -> Seminaive.bootstrap p.engine)
       in
       collect_new p produced);
    p.alive <- true;
    Obs.Trace.instant tr ~pid:p.pid ~round:!rounds "recover";
    (* Bucket reassignment: the bucket h(v(r)) = pid is rebuilt (hosted
       by the first survivor), then every live peer — the processor's
       own loop channel included — replays its channel history so the
       rebuilt engine re-receives every tuple the dead one had. Peers
       currently down owe their replay at their own recovery. *)
    Array.iter
      (fun q ->
        if q.alive then replay_history ~src:q.pid ~dst:p.pid
        else replay_due.(q.pid).(p.pid) <- true)
      procs;
    for dst = 0 to nprocs - 1 do
      if replay_due.(p.pid).(dst) then begin
        replay_due.(p.pid).(dst) <- false;
        replay_history ~src:p.pid ~dst
      end
    done;
    Log.info (fun m ->
        m "round %d: processor %d recovered (%s; bucket rebuilt via %d)"
          !rounds p.pid
          (if Option.is_some p.checkpoint then "from checkpoint"
           else "from base fragment")
          survivor)
  in
  let deliver_due () =
    match Hashtbl.find_opt flight !rounds with
    | None -> ()
    | Some msgs ->
      Hashtbl.remove flight !rounds;
      List.iter
        (fun msg ->
          decr flight_size;
          match msg with
          | Fack { fm_sender; fm_receiver; fm_seq } ->
            if Hashtbl.mem unacked.(fm_sender).(fm_receiver) fm_seq
            then begin
              Hashtbl.remove unacked.(fm_sender).(fm_receiver) fm_seq;
              fc.n_acks <- fc.n_acks + 1;
              (* The ack doubles as a credit grant. *)
              if credited then
                in_flight.(fm_sender).(fm_receiver) <-
                  in_flight.(fm_sender).(fm_receiver) - 1
            end
          | Fdata { fm_pl = pl; fm_attempt } ->
            let p = procs.(pl.pl_dst) in
            if not p.alive then
              (* A message arriving at a dead processor is lost; the
                 sender's unacked buffer retransmits it later. *)
              fc.n_drops <- fc.n_drops + 1
            else begin
              if
                not
                  (Fault.ack_dropped plan ~src:pl.pl_src ~dst:pl.pl_dst
                     ~seq:pl.pl_seq ~attempt:fm_attempt)
              then
                schedule (!rounds + 1)
                  (Fack
                     {
                       fm_sender = pl.pl_src;
                       fm_receiver = pl.pl_dst;
                       fm_seq = pl.pl_seq;
                     });
              let seen = recv_seen.(pl.pl_dst).(pl.pl_src) in
              let key = (pl.pl_pred, pl.pl_tuple) in
              if Ktbl.mem seen key then
                fc.n_dups_suppressed <- fc.n_dups_suppressed + 1
              else begin
                Ktbl.add seen key ();
                Queue.add (pl.pl_src, pl.pl_pred, pl.pl_tuple) p.inbox
              end
            end)
        (List.rev !msgs)
  in
  let retransmit_due () =
    Array.iteri
      (fun src row ->
        span ~pid:src ~round:!rounds Obs.Trace.Retransmission
          (fun () ->
            Array.iter
              (fun tbl ->
                Hashtbl.iter
                  (fun _ pl ->
                    if pl.pl_retry_at <= !rounds then begin
                      fc.n_retransmits <- fc.n_retransmits + 1;
                      Obs.Metrics.incr mx "runtime.retransmits";
                      transmit pl
                    end)
                  tbl)
              row))
      unacked
  in
  let drain_inbox p =
    if
      faulty
      && Queue.length p.inbox > 1
      && Fault.reorder_inbox plan ~pid:p.pid ~round:!rounds
    then begin
      fc.n_reorders <- fc.n_reorders + 1;
      let arr = Array.of_seq (Queue.to_seq p.inbox) in
      Fault.shuffle plan ~pid:p.pid ~round:!rounds arr;
      Queue.clear p.inbox;
      Array.iter (fun x -> Queue.add x p.inbox) arr
    end;
    Queue.iter
      (fun (src, pred, tuple) ->
        p.tuples_received <- p.tuples_received + 1;
        Obs.Metrics.incr mx "runtime.tuples_received";
        (* Fault-free credit returns on receipt; under faults the ack
           carries it back instead. *)
        if credited && not faulty then
          in_flight.(src).(p.pid) <- in_flight.(src).(p.pid) - 1;
        if Seminaive.inject p.engine (Rewrite.in_pred pred) tuple then
          p.tuples_accepted <- p.tuples_accepted + 1)
      p.inbox;
    Queue.clear p.inbox
  in
  let pending_from src =
    let n = ref 0 in
    for dst = 0 to nprocs - 1 do
      n := !n + Queue.length chan_pending.(src).(dst)
    done;
    !n
  in
  (* The drive loop: repeat rounds until global quiescence. A session
     re-enters it on every applied batch; [budget] bounds one drive
     ([Run_config.batch_rounds]) while [max_rounds] stays the
     cumulative budget across the whole session. *)
  let drive ~budget () =
  let start_round = !rounds in
  let continue = ref true in
  while !continue do
    if !rounds >= options.max_rounds then
      raise
        (Round_budget_exceeded
           { round = !rounds; stats = build_stats ~pooled:0 () });
    (match budget with
     | Some b when !rounds - start_round >= b ->
       raise
         (Round_budget_exceeded
            { round = !rounds; stats = build_stats ~pooled:0 () })
     | _ -> ());
    (match options.limits.Overload.deadline with
     | Some seconds ->
       let elapsed = Unix.gettimeofday () -. t0 in
       if elapsed > seconds then
         raise
           (Overload.Overload
              {
                reason = Deadline { seconds; elapsed; round = !rounds };
                stats = build_stats ~pooled:0 ();
              })
     | None -> ());
    let round_now = !rounds in
    (* Fault schedule: crashes first, then due recoveries. *)
    if faulty then begin
      Array.iter
        (fun p ->
          if p.alive then
            match Fault.crash_at plan ~pid:p.pid ~round:!rounds with
            | Some c -> do_crash p c
            | None -> ())
        procs;
      Array.iter
        (fun p ->
          if (not p.alive) && !rounds >= p.down_until then do_recover p)
        procs
    end;
    (* Sending. *)
    Array.iter
      (fun p ->
        span ~pid:p.pid ~round:round_now Obs.Trace.Sending
          (fun () ->
            if not p.alive then ()
            else if options.resend_all then begin
              Queue.clear p.outbox;
              Queue.iter
                (fun (pred, tuple) -> route_tuple ~dedup:false p pred tuple)
                p.all_out
            end
            else begin
              Queue.iter
                (fun (pred, tuple) -> route_tuple ~dedup:true p pred tuple)
                p.outbox;
              Queue.clear p.outbox
            end))
      procs;
    (* Transmission: push pending tuples onto the wire, channel credit
       permitting. *)
    pump ();
    (* Transport: retransmit overdue payloads, then deliver everything
       landing this round (acknowledgements included). *)
    if faulty then begin
      retransmit_due ();
      span ~pid:Obs.Trace.transport_pid ~round:round_now
        Obs.Trace.Delivery deliver_due
    end;
    (* Receiving: drain inboxes into the engines (duplicate
       elimination happens in inject). *)
    Array.iter
      (fun p ->
        span ~pid:p.pid ~round:round_now Obs.Trace.Receiving
          (fun () -> if p.alive then drain_inbox p))
      procs;
    (* Processing: one semi-naive iteration per live processor. *)
    let any_progress = ref false in
    let produced_this_round = ref 0 in
    let round_row = Array.make nprocs 0 in
    Array.iter
      (fun p ->
        span ~pid:p.pid ~round:round_now Obs.Trace.Processing
          (fun () ->
            if p.alive && Seminaive.has_pending p.engine then begin
              let produced =
                observe_engine p (fun () -> Seminaive.step p.engine)
              in
              p.active_rounds <- p.active_rounds + 1;
              any_progress := true;
              produced_this_round :=
                !produced_this_round + List.length produced;
              round_row.(p.pid) <- List.length produced;
              collect_new p produced
            end))
      procs;
    Obs.Metrics.observe mx "round.new_tuples"
      (float_of_int !produced_this_round);
    trace := round_row :: !trace;
    incr rounds;
    (* Checkpointing: a stable-storage write at the end of the round. *)
    if faulty then begin
      match plan.Fault.checkpoint_every with
      | Some k when !rounds mod k = 0 ->
        Array.iter
          (fun p ->
            if p.alive then
              span ~pid:p.pid ~round:round_now
                Obs.Trace.Checkpointing (fun () ->
                  p.checkpoint <-
                    Some
                      (Seminaive.snapshot p.engine,
                       List.of_seq (Queue.to_seq p.outbox));
                  fc.n_checkpoints <- fc.n_checkpoints + 1))
          procs
      | _ -> ()
    end;
    (* Watchdog: outbox peaks and the store/outbox budgets, measured
       when the round's production has landed. *)
    Array.iter
      (fun p ->
        let backlog = Queue.length p.outbox + pending_from p.pid in
        if backlog > p.outbox_peak_rows then begin
          p.outbox_peak_rows <- backlog;
          let bytes = ref 0 in
          Queue.iter
            (fun (_, t) -> bytes := !bytes + (Tuple.arity t * 8))
            p.outbox;
          for dst = 0 to nprocs - 1 do
            Queue.iter
              (fun (_, t, _) -> bytes := !bytes + (Tuple.arity t * 8))
              chan_pending.(p.pid).(dst)
          done;
          p.outbox_peak_bytes <- !bytes
        end;
        (match options.limits.Overload.max_outbox_rows with
         | Some limit when backlog > limit ->
           raise
             (Overload.Overload
                {
                  reason =
                    Outbox_budget { pid = p.pid; rows = backlog; limit };
                  stats = build_stats ~pooled:0 ();
                })
         | _ -> ());
        match options.limits.Overload.max_store_rows with
        | Some limit ->
          let rows = Overload.db_rows (Seminaive.database p.engine) in
          if rows > limit then
            raise
              (Overload.Overload
                 {
                   reason = Store_budget { pid = p.pid; rows; limit };
                   stats = build_stats ~pooled:0 ();
                 })
        | None -> ())
      procs;
    (* Adaptive degradation: feed each processor's worst channel demand
       (sent + still pending this round) to the dial; the new alpha
       takes effect on the next round's routing. *)
    (match options.dial with
     | Some d ->
       for src = 0 to nprocs - 1 do
         let backlog = ref 0 in
         for dst = 0 to nprocs - 1 do
           if dst <> src then begin
             let b =
               sent_this_round.(src).(dst)
               + Queue.length chan_pending.(src).(dst)
             in
             if b > !backlog then backlog := b
           end
         done;
         Overload.observe d ~pid:src ~backlog:!backlog;
         Obs.Metrics.observe mx "dial.alpha" (Overload.alpha d src)
       done
     | None -> ());
    for src = 0 to nprocs - 1 do
      for dst = 0 to nprocs - 1 do
        sent_this_round.(src).(dst) <- 0
      done
    done;
    Log.debug (fun m ->
        m "round %d: %d new tuples, %d tuples on channels so far" !rounds
          !produced_this_round
          (Array.fold_left
             (fun acc row -> Array.fold_left ( + ) acc row)
             0 channel_tuples));
    (* Termination: all processors up and idle, all channels empty, no
       payload in flight or awaiting acknowledgement. The per-processor
       part runs under a span (and therefore for every processor, no
       short-circuit) so the trace shows the test each round. *)
    let proc_busy p =
      span ~pid:p.pid ~round:round_now
        Obs.Trace.Termination_test (fun () ->
          (not (Queue.is_empty p.outbox))
          || (not (Queue.is_empty p.inbox))
          || (p.alive && Seminaive.has_pending p.engine))
    in
    let any_busy =
      Array.fold_left (fun acc p -> proc_busy p || acc) false procs
    in
    let work_left =
      !any_progress || any_busy
      || Array.exists
           (fun row -> Array.exists (fun q -> not (Queue.is_empty q)) row)
           chan_pending
      || (faulty
          && (!flight_size > 0
              || Array.exists (fun p -> not p.alive) procs
              || Array.exists
                   (fun row ->
                     Array.exists (fun tbl -> Hashtbl.length tbl > 0) row)
                   unacked))
    in
    continue := work_left
  done
  in
  drive ~budget:None ();
  (* Pooling: union the @out relations under the original names over
     the current combined EDB — used by [close] and [model] alike. *)
  let assemble () =
    let answers = Database.copy edb in
    let pooled = ref 0 in
    Array.iter
      (fun p ->
        let db = Seminaive.database p.engine in
        List.iter
          (fun pred ->
            match Database.find db (Rewrite.out_pred pred) with
            | None -> ()
            | Some rel ->
              pooled := !pooled + Relation.cardinal rel;
              let target =
                Database.declare answers pred (Relation.arity rel)
              in
              ignore (Relation.add_all target rel))
          rw.derived)
      procs;
    (answers, !pooled)
  in
  (* The maintenance oracle is created on first [apply], so a plain
     [run] (open + close, no batches) never pays for it and takes the
     exact historical code path. At creation time the combined EDB is
     still the initial one, so the oracle's model matches the engines'
     pooled state. *)
  let live = ref None in
  let oracle () =
    match !live with
    | Some l -> l
    | None ->
      let l =
        Stratified.Live.create ~pushdown:options.pushdown
          ~track:options.track_changes rw.original ~edb
      in
      live := Some l;
      l
  in
  let incr_stats () =
    match !live with
    | None -> Stats.no_incr
    | Some l ->
      let s = Stratified.Live.totals l in
      {
        Stats.batches_applied = Stratified.Live.batches l;
        tuples_inserted = s.Delta.s_inserted;
        tuples_deleted = s.Delta.s_deleted;
        tuples_rederived = s.Delta.s_rederived;
        tuples_overdeleted = s.Delta.s_overdeleted;
        incr_firings = s.Delta.s_firings;
      }
  in
  let is_derived pred = List.mem pred rw.derived in
  let apply batch =
    let change = Stratified.Live.apply (oracle ()) batch in
    let removed = change.Stratified.Live.c_removed in
    let added = change.Stratified.Live.c_added in
    if removed <> [] then begin
      (* Install the net-deletion patch. Every net-removed tuple has no
         remaining derivation in the new model, so after retraction the
         engines' stores contain only true model tuples and any later
         local firing is a sound derivation step. *)
      let retractions =
        List.concat_map
          (fun (pred, t) ->
            if is_derived pred then
              [ (Rewrite.out_pred pred, t); (Rewrite.in_pred pred, t) ]
            else [ (pred, t) ])
          removed
      in
      Array.iter
        (fun p ->
          ignore (Seminaive.retract_facts p.engine retractions);
          (* A checkpoint predating the patch would resurrect the
             retracted tuples on restore. *)
          p.checkpoint <- None)
        procs;
      (* Purge the channel layer of the removed tuples — but only of
         them: a tuple re-derived later must travel its channels again
         (the histories no longer claim the receiver has it), while
         recovery replays keep covering everything still true. *)
      List.iter
        (fun (pred, t) ->
          let key = (pred, t) in
          Array.iter
            (fun row -> Array.iter (fun tbl -> Ktbl.remove tbl key) row)
            channel_seen;
          Array.iter
            (fun row -> Array.iter (fun tbl -> Ktbl.remove tbl key) row)
            recv_seen)
        removed;
      if options.resend_all then
        Array.iter
          (fun p ->
            let keep =
              Queue.fold
                (fun acc (pred, t) ->
                  if
                    List.exists
                      (fun (rp, rt) ->
                        String.equal rp pred && Tuple.equal rt t)
                      removed
                  then acc
                  else (pred, t) :: acc)
                [] p.all_out
            in
            Queue.clear p.all_out;
            List.iter (fun kt -> Queue.add kt p.all_out) (List.rev keep))
          procs
    end;
    (* Keep the combined EDB current: crash recovery rebuilds base
       fragments from it and the assembly copies it. *)
    List.iter
      (fun (pred, t) ->
        if not (is_derived pred) then
          match Database.find edb pred with
          | Some rel -> ignore (Relation.remove_all rel (Tuple.equal t))
          | None -> ())
      removed;
    List.iter
      (fun (pred, t) ->
        if not (is_derived pred) then
          ignore (Database.add_fact edb pred t))
      added;
    (* Base insertions enter at the processors that host them; their
       derived consequences are re-derived — and re-sent — by the
       drive. *)
    List.iter
      (fun (pred, t) ->
        if not (is_derived pred) then
          Array.iter
            (fun p ->
              if options.replicate_base || rw.resident p.pid pred t then
                ignore (Seminaive.inject p.engine pred t))
            procs)
      added;
    drive ~budget:options.batch_rounds ();
    {
      Session.oc_added = added;
      oc_removed = removed;
      oc_summary = change.Stratified.Live.c_summary;
    }
  in
  let query pred =
    if is_derived pred then begin
      let acc = ref None in
      Array.iter
        (fun p ->
          match
            Database.find (Seminaive.database p.engine)
              (Rewrite.out_pred pred)
          with
          | None -> ()
          | Some rel ->
            let target =
              match !acc with
              | Some r -> r
              | None ->
                let r = Relation.create ~arity:(Relation.arity rel) () in
                acc := Some r;
                r
            in
            ignore (Relation.add_all target rel))
        procs;
      match !acc with
      | Some r -> Relation.sorted_elements r
      | None -> []
    end
    else
      match Database.find edb pred with
      | Some rel -> Relation.sorted_elements rel
      | None -> []
  in
  let model () = fst (assemble ()) in
  let close () =
    let answers, pooled = assemble () in
    { answers; stats = build_stats ~incr:(incr_stats ()) ~pooled () }
  in
  Session.v ~runtime:"sim" ~apply ~query ~model ~close

let run ?config (rw : Rewrite.t) ~edb =
  Session.close (open_session ?config rw ~edb)
