open Datalog

type scheme =
  | Nocomm of { ve : string list; vr : string list }
  | Q of { ve : string list; vr : string list }
  | Wolfson
  | Tradeoff of { alpha : float }
  | General

type cost = {
  messages : float;
  redundancy : float;
  balance : float;
  total : float;
}

type stratum = {
  preds : string list;
  recursive : bool;
  coordination_free : bool;
}

type t = {
  program_hash : string;
  nprocs : int;
  seed : int;
  scheme : scheme;
  cost : cost;
  strata : stratum list;
}

type reject = {
  rcode : string;
  reason : string;
}

exception Rejected of reject

let schema_version = 1
let code_stale = "E201"
let code_unverified = "E202"
let code_malformed = "E203"

let scheme_name = function
  | Nocomm _ -> "nocomm"
  | Q _ -> "q"
  | Wolfson -> "wolfson"
  | Tradeoff _ -> "tradeoff"
  | General -> "general"

let pp_seq ppf vs =
  Format.fprintf ppf "⟨%s⟩" (String.concat "," vs)

let pp_scheme ppf = function
  | Nocomm { ve; vr } ->
    Format.fprintf ppf "nocomm(ve=%a, vr=%a)" pp_seq ve pp_seq vr
  | Q { ve; vr } -> Format.fprintf ppf "q(ve=%a, vr=%a)" pp_seq ve pp_seq vr
  | Wolfson -> Format.pp_print_string ppf "wolfson"
  | Tradeoff { alpha } -> Format.fprintf ppf "tradeoff(alpha=%.2f)" alpha
  | General -> Format.pp_print_string ppf "general"

let pp_reject ppf r =
  Format.fprintf ppf "error[%s]: %s" r.rcode r.reason

(* The hash covers the rules only — canonically rendered, one per line,
   in program order — so a certificate survives EDB changes but not any
   edit to the logic it was issued for. *)
let program_hash (p : Program.t) =
  let canon = String.concat "\n" (List.map Rule.to_string p.Program.rules) in
  Digest.to_hex (Digest.string canon)

let make ~nprocs ~seed ~scheme ~cost ~strata program =
  { program_hash = program_hash program; nprocs; seed; scheme; cost; strata }

(* ---------- JSON writing (deterministic: fixed order, %.3f) ---------- *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let buf_str b s =
  Buffer.add_char b '"';
  buf_escape b s;
  Buffer.add_char b '"'

let buf_strs b vs =
  Buffer.add_char b '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      buf_str b v)
    vs;
  Buffer.add_char b ']'

let buf_float b f = Buffer.add_string b (Printf.sprintf "%.3f" f)

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": %d,\n" schema_version);
  Buffer.add_string b "  \"kind\": \"datalogp-plan\",\n";
  Buffer.add_string b "  \"program_hash\": ";
  buf_str b t.program_hash;
  Buffer.add_string b ",\n";
  Buffer.add_string b (Printf.sprintf "  \"nprocs\": %d,\n" t.nprocs);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" t.seed);
  Buffer.add_string b "  \"scheme\": { \"name\": ";
  buf_str b (scheme_name t.scheme);
  (match t.scheme with
  | Nocomm { ve; vr } | Q { ve; vr } ->
    Buffer.add_string b ", \"ve\": ";
    buf_strs b ve;
    Buffer.add_string b ", \"vr\": ";
    buf_strs b vr
  | Tradeoff { alpha } ->
    Buffer.add_string b ", \"alpha\": ";
    buf_float b alpha
  | Wolfson | General -> ());
  Buffer.add_string b " },\n";
  Buffer.add_string b "  \"predicted\": { \"messages_per_round\": ";
  buf_float b t.cost.messages;
  Buffer.add_string b ", \"redundancy\": ";
  buf_float b t.cost.redundancy;
  Buffer.add_string b ", \"balance\": ";
  buf_float b t.cost.balance;
  Buffer.add_string b ", \"total\": ";
  buf_float b t.cost.total;
  Buffer.add_string b " },\n";
  Buffer.add_string b "  \"strata\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "    { \"predicates\": ";
      buf_strs b s.preds;
      Buffer.add_string b
        (Printf.sprintf ", \"recursive\": %b, \"coordination_free\": %b }"
           s.recursive s.coordination_free))
    t.strata;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ---------- JSON reading (minimal recursive descent) ---------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            (* Certificates only carry ASCII; decode BMP escapes to '?'
               rather than pulling in a UTF-8 encoder. *)
            if !pos + 4 > n then fail "bad \\u escape";
            pos := !pos + 4;
            Buffer.add_char b '?'
          | _ -> fail "bad escape"));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Jobj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        Jlist [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jlist (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let malformed reason = Error { rcode = code_malformed; reason }

let field obj k =
  match obj with
  | Jobj kvs -> List.assoc_opt k kvs
  | _ -> None

let as_int = function
  | Jnum f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let as_float = function Jnum f -> Some f | _ -> None
let as_bool = function Jbool b -> Some b | _ -> None
let as_str = function Jstr s -> Some s | _ -> None

let as_strs = function
  | Jlist vs ->
    List.fold_right
      (fun v acc ->
        match (as_str v, acc) with
        | Some s, Some ss -> Some (s :: ss)
        | _ -> None)
      vs (Some [])
  | _ -> None

let ( let* ) = Result.bind

let req name conv obj =
  match Option.bind (field obj name) conv with
  | Some v -> Ok v
  | None -> malformed (Printf.sprintf "missing or ill-typed field %S" name)

let of_json text =
  match parse_json text with
  | exception Bad_json msg -> malformed ("not valid JSON: " ^ msg)
  | root ->
    let* schema = req "schema" as_int root in
    if schema <> schema_version then
      malformed
        (Printf.sprintf "unsupported schema version %d (expected %d)" schema
           schema_version)
    else
      let* kind = req "kind" as_str root in
      if kind <> "datalogp-plan" then
        malformed (Printf.sprintf "unexpected kind %S" kind)
      else
        let* program_hash = req "program_hash" as_str root in
        let* nprocs = req "nprocs" as_int root in
        if nprocs < 1 then malformed "nprocs must be at least 1"
        else
          let* seed = req "seed" as_int root in
          let* sobj =
            match field root "scheme" with
            | Some (Jobj _ as o) -> Ok o
            | _ -> malformed "missing scheme object"
          in
          let* name = req "name" as_str sobj in
          let* scheme =
            match name with
            | "nocomm" | "q" ->
              let* ve = req "ve" as_strs sobj in
              let* vr = req "vr" as_strs sobj in
              if name = "q" then Ok (Q { ve; vr }) else Ok (Nocomm { ve; vr })
            | "wolfson" -> Ok Wolfson
            | "tradeoff" ->
              let* alpha = req "alpha" as_float sobj in
              if alpha < 0. || alpha > 1. then
                malformed "alpha must lie in [0,1]"
              else Ok (Tradeoff { alpha })
            | "general" -> Ok General
            | other -> malformed (Printf.sprintf "unknown scheme %S" other)
          in
          let* cobj =
            match field root "predicted" with
            | Some (Jobj _ as o) -> Ok o
            | _ -> malformed "missing predicted object"
          in
          let* messages = req "messages_per_round" as_float cobj in
          let* redundancy = req "redundancy" as_float cobj in
          let* balance = req "balance" as_float cobj in
          let* total = req "total" as_float cobj in
          let* strata =
            match field root "strata" with
            | Some (Jlist items) ->
              List.fold_right
                (fun item acc ->
                  let* acc = acc in
                  let* preds = req "predicates" as_strs item in
                  let* recursive = req "recursive" as_bool item in
                  let* coordination_free =
                    req "coordination_free" as_bool item
                  in
                  Ok ({ preds; recursive; coordination_free } :: acc))
                items (Ok [])
            | _ -> malformed "missing strata array"
          in
          Ok
            {
              program_hash;
              nprocs;
              seed;
              scheme;
              cost = { messages; redundancy; balance; total };
              strata;
            }

(* ---------- Re-verification ---------- *)

let unverified reason = Error { rcode = code_unverified; reason }

let subset ~of_:vars vs = List.for_all (fun v -> List.mem v vars) vs

(* Theorem 2 preconditions, restated here (the [check] library's
   [Scheme] module cannot be used from [lib/core] without a dependency
   cycle): every sequence variable must be bound by its rule's positive
   body. *)
let theorem2 (s : Analysis.sirup) ~ve ~vr =
  if ve = [] || vr = [] then
    unverified "empty discriminating sequence (Theorem 2 needs one)"
  else if List.length ve <> List.length vr then
    unverified "ve and vr have different lengths (they share one hash)"
  else if not (subset ~of_:(Rule.body_vars s.Analysis.exit_rule) ve) then
    unverified
      "a variable of ve is not bound in the exit rule's body (Theorem 2)"
  else if not (subset ~of_:(Rule.body_vars s.Analysis.rec_rule) vr) then
    unverified
      "a variable of vr is not bound in the recursive rule's body (Theorem 2)"
  else Ok ()

let build t program =
  let seed = t.seed and nprocs = t.nprocs in
  match t.scheme with
  | Nocomm _ -> Strategy.no_communication ~seed ~nprocs program
  | Q { ve; vr } -> Strategy.hash_q ~seed ~nprocs ~ve ~vr program
  | Wolfson -> Strategy.wolfson_redundant ~seed ~nprocs program
  | Tradeoff { alpha } -> Strategy.tradeoff ~seed ~nprocs ~alpha program
  | General -> Strategy.general ~seed ~nprocs program

let verify_scheme t program =
  let sirup_for what =
    match Analysis.as_sirup program with
    | Ok s -> Ok s
    | Error why ->
      unverified
        (Printf.sprintf "%s requires a linear sirup: %s" what
           (Analysis.explain_not_sirup why))
  in
  let* () =
    match t.scheme with
    | Q { ve; vr } ->
      let* s = sirup_for "scheme q" in
      theorem2 s ~ve ~vr
    | Nocomm { ve; vr } -> (
      let* s = sirup_for "scheme nocomm" in
      match Dataflow.communication_free_choice s with
      | None ->
        unverified
          "the dataflow graph has no usable cycle (Theorem 3 does not apply)"
      | Some c ->
        if c.Dataflow.ve <> ve || c.Dataflow.vr <> vr then
          unverified
            "the certified sequences no longer match the dataflow cycle"
        else Ok ())
    | Wolfson -> Result.map (fun _ -> ()) (sirup_for "scheme wolfson")
    | Tradeoff { alpha } ->
      if alpha < 0. || alpha > 1. then unverified "alpha must lie in [0,1]"
      else Result.map (fun _ -> ()) (sirup_for "scheme tradeoff")
    | General -> (
      match Program.check program with
      | Ok () -> Ok ()
      | Error msg -> unverified ("program rejected: " ^ msg))
  in
  (* Belt and braces: the scheme constructor itself must accept. *)
  match build t program with
  | Ok _ -> Ok ()
  | Error msg -> unverified msg

let verify ?nprocs t program =
  let actual = program_hash program in
  if not (String.equal actual t.program_hash) then
    Error
      {
        rcode = code_stale;
        reason =
          Printf.sprintf
            "program hash mismatch: certificate was issued for %s but the \
             program hashes to %s (re-run check --suggest)"
            t.program_hash actual;
      }
  else
    let* () =
      match nprocs with
      | Some n when n <> t.nprocs ->
        unverified
          (Printf.sprintf
             "certificate is for %d processors but the run uses %d" t.nprocs n)
      | _ -> Ok ()
    in
    verify_scheme t program

let validate_exn ?nprocs t program =
  match verify ?nprocs t program with
  | Ok () -> ()
  | Error r -> raise (Rejected r)

let to_rewrite t program =
  let* () = verify t program in
  match build t program with
  | Ok rw -> Ok rw
  | Error msg -> unverified msg
