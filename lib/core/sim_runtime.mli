(** Deterministic round-based executor for rewritten programs.

    Implements the paper's parallel execution structure on the abstract
    architecture of Section 3 — {i evaluate initialization; repeat
    processing, sending, receiving until termination} — with one
    synchronous round per repeat. Every processor is simulated in turn,
    channels are instrumented, and the run is fully deterministic, which
    makes communication and redundancy exactly countable. Termination is
    the global quiescence condition: all processors idle and all
    channels empty.

    With a non-trivial {!Fault.plan} the run additionally models lossy
    channels and crashing processors. Payload tuples then travel over a
    reliable-delivery layer — per-channel sequence numbers, receiver-side
    duplicate suppression, acknowledgements and bounded retransmission
    with exponential backoff — and a crashed processor is rebuilt by
    bucket reassignment: a survivor re-creates the lost engine from its
    base fragment (or from the latest checkpoint) and every peer replays
    its channel history. For every plan that leaves at least one live
    processor, the pooled answers equal the fault-free run. A round now
    has the phases: fault schedule (crash / recover), sending,
    retransmission, delivery, receiving, processing, checkpointing,
    termination test; crashes scheduled after global quiescence never
    fire. *)

val log_src : Logs.src
(** Per-round debug logging ([Logs.Debug]): new-tuple and channel
    counters. Crash and recovery events log at [Logs.Info]. *)

type options = {
  resend_all : bool;
      (** Disable the "difference operation" of the paper's sending
          step: every round, re-route {i all} tuples generated so far
          instead of only the new ones. Semantics are unchanged; message
          counts explode (ablation A1). Default [false]. *)
  pushdown : bool;
      (** Push the [h(v(r)) = i] guard to the earliest join position
          (default [true]). With [false] each processor computes the
          entire join before filtering — the degenerate case discussed
          at the end of Section 3 (ablation A3). Results are
          unchanged. *)
  replicate_base : bool;
      (** Ignore the fragmentation analysis and give every processor the
          whole extensional database (ablation A4). Results are
          unchanged; base residency grows. Default [false]. *)
  max_rounds : int;
      (** Safety valve; the run raises {!Round_budget_exceeded} after
          this many rounds. Default [1_000_000]. *)
  network : Netgraph.t option;
      (** Execute on a fixed network (Definition 3): a tuple routed
          along a missing edge aborts the run — there is no routing
          through intermediaries. Use a network derived by {!Derive} to
          demonstrate that the compile-time analysis is safe, or a
          deliberately small one to see the abort. Default [None] (the
          complete graph of Section 3's abstract architecture). *)
  fault : Fault.plan;
      (** Seeded fault plan; {!Fault.none} (the default) bypasses the
          delivery layer entirely and reproduces the exact message
          counts of the fault-free executor. *)
  capacity : int option;
      (** Per-channel credit: at most this many tuples in flight on any
          channel at once (in flight = delivered-but-unreceived, or
          unacknowledged under faults, where the ack doubles as the
          credit grant). Tuples over budget wait in the channel's
          pending queue — a deferral, never a loss — and
          [Stats.faults.credit_stalls] counts the deferrals.
          [Stats.peak_in_flight] reports the observed maximum. Default
          [None] (unbounded). Incompatible with [resend_all]. *)
  limits : Overload.limits;
      (** Resource watchdog: wall-clock deadline (checked every round)
          and per-processor store/outbox row budgets (checked after each
          processing phase). A breach raises {!Overload.Overload} with
          partial stats. Default {!Overload.no_limits}. *)
  dial : Overload.dial option;
      (** Adaptive degradation: once per round each processor's worst
          per-channel demand (tuples sent plus still pending) is fed to
          the dial, whose per-processor alpha a
          {!Strategy.adaptive_tradeoff} rewrite reads on every routing
          decision. Default [None]. *)
}

val default_options : options

type result = {
  answers : Datalog.Database.t;
      (** The pooled output: every original derived predicate, under its
          original name, unioned over processors — plus the base
          relations as given. *)
  stats : Stats.t;
}

exception Round_budget_exceeded of { round : int; stats : Stats.t }
(** Raised when [max_rounds] is exhausted. Carries the partial
    statistics accumulated so far ([pooled_tuples] is 0: outputs are
    not pooled on an aborted run), so callers can see how far the
    evaluation got — e.g. which processors were still active and what
    the channels carried. *)

val run :
  ?config:Run_config.t -> Rewrite.t -> edb:Datalog.Database.t -> result
(** Execute a rewritten program. The extensional database [edb] is
    distributed to processors according to the rewrite's residency map;
    the original program's base facts are added to [edb] first. The
    configuration defaults to {!Run_config.default}; with the default
    (disabled) {!Obs.sinks} the instrumented executor takes the exact
    historical code path and reproduces its message and firing counts.
    @raise Round_budget_exceeded when [config.max_rounds] is exceeded.
    @raise Overload.Overload when a limit of [config.limits] is
    breached; the exception carries the partial statistics and the
    offending processor.
    @raise Failure when a tuple is routed along a missing channel of
    [config.network]. *)

val config_of_options : options -> Run_config.t
(** Embed the legacy options record into a {!Run_config.t} (other
    fields at their defaults). *)

val run_with_options :
  ?options:options -> Rewrite.t -> edb:Datalog.Database.t -> result
[@@ocaml.deprecated
  "use Sim_runtime.run ?config with a Run_config.t instead"]
(** Thin wrapper over {!run} for the pre-[Run_config] signature; kept
    for one PR. *)
