(** Deterministic round-based executor for rewritten programs.

    Implements the paper's parallel execution structure on the abstract
    architecture of Section 3 — {i evaluate initialization; repeat
    processing, sending, receiving until termination} — with one
    synchronous round per repeat. Every processor is simulated in turn,
    channels are instrumented, and the run is fully deterministic, which
    makes communication and redundancy exactly countable. Termination is
    the global quiescence condition: all processors idle and all
    channels empty.

    With a non-trivial {!Fault.plan} the run additionally models lossy
    channels and crashing processors. Payload tuples then travel over a
    reliable-delivery layer — per-channel sequence numbers, receiver-side
    duplicate suppression, acknowledgements and bounded retransmission
    with exponential backoff — and a crashed processor is rebuilt by
    bucket reassignment: a survivor re-creates the lost engine from its
    base fragment (or from the latest checkpoint) and every peer replays
    its channel history. For every plan that leaves at least one live
    processor, the pooled answers equal the fault-free run. A round now
    has the phases: fault schedule (crash / recover), sending,
    retransmission, delivery, receiving, processing, checkpointing,
    termination test; crashes scheduled after global quiescence never
    fire. *)

val log_src : Logs.src
(** Per-round debug logging ([Logs.Debug]): new-tuple and channel
    counters. Crash and recovery events log at [Logs.Info]. *)

type result = Session.result = {
  answers : Datalog.Database.t;
      (** The pooled output: every original derived predicate, under its
          original name, unioned over processors — plus the base
          relations as given. *)
  stats : Stats.t;
}

exception Round_budget_exceeded of { round : int; stats : Stats.t }
(** Raised when [max_rounds] is exhausted. Carries the partial
    statistics accumulated so far ([pooled_tuples] is 0: outputs are
    not pooled on an aborted run), so callers can see how far the
    evaluation got — e.g. which processors were still active and what
    the channels carried. *)

val run :
  ?config:Run_config.t -> Rewrite.t -> edb:Datalog.Database.t -> result
(** Execute a rewritten program. The extensional database [edb] is
    distributed to processors according to the rewrite's residency map;
    the original program's base facts are added to [edb] first. The
    configuration defaults to {!Run_config.default}; with the default
    (disabled) {!Obs.sinks} the instrumented executor takes the exact
    historical code path and reproduces its message and firing counts.
    Equivalent to {!open_session} followed immediately by
    {!Session.close}.
    @raise Round_budget_exceeded when [config.max_rounds] is exceeded.
    @raise Overload.Overload when a limit of [config.limits] is
    breached; the exception carries the partial statistics and the
    offending processor.
    @raise Failure when a tuple is routed along a missing channel of
    [config.network]. *)

val open_session :
  ?config:Run_config.t -> Rewrite.t -> edb:Datalog.Database.t -> Session.t
(** Run the evaluation to quiescence as {!run} does, but keep the
    processors, channel state and fault machinery resident and return
    a live {!Session.t}. {!Session.apply} folds a base-fact update
    batch into the model: the net patch is computed by
    {!Datalog.Stratified.Live}, net deletions are retracted from every
    resident engine (and the channel histories and checkpoints they
    would resurrect from), net base insertions are injected at the
    processors hosting them, and the round loop re-runs to quiescence —
    under the same fault plan, credit bounds and watchdog as the
    initial drive. [config.batch_rounds] bounds each drive separately;
    [config.max_rounds] remains the cumulative budget.
    @raise Round_budget_exceeded / Overload.Overload / Failure as
    {!run}, from [open_session] or any later [apply]. *)
