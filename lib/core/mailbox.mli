(** Multi-producer single-consumer mailboxes for domains.

    The channel abstraction of Section 3 requires only that data put on
    channel [ij] reaches processor [j], error-free, in finite time. A
    mutex/condition-variable queue per receiving domain provides exactly
    that on shared memory.

    A mailbox can be {!close}d — the poison pill. A closed mailbox drops
    further pushes, and blocked consumers wake immediately, so a crashed
    or finished peer can never leave a domain stuck in
    [Condition.wait]. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue and wake the consumer. Safe from any domain. Silently
    dropped when the mailbox is closed. *)

val close : 'a t -> unit
(** Close the mailbox: wakes every blocked consumer and makes further
    {!push}es no-ops. Idempotent; safe from any domain. *)

val is_closed : 'a t -> bool

val drain : 'a t -> 'a list
(** Dequeue everything currently present, in arrival order, without
    blocking (possibly [[]]). *)

val drain_blocking : 'a t -> 'a list
(** Like {!drain} but blocks until at least one element is present —
    or the mailbox is closed, in which case whatever is queued
    (possibly [[]]) is returned immediately. *)

val drain_timeout : 'a t -> seconds:float -> 'a list
(** Like {!drain_blocking} but gives up after [seconds], returning [[]]
    on timeout. Used by the fault-injecting runtime, whose workers must
    periodically wake to retransmit unacknowledged messages. *)

val is_empty : 'a t -> bool
