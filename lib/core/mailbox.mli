(** Multi-producer single-consumer mailboxes for domains.

    The channel abstraction of Section 3 requires only that data put on
    channel [ij] reaches processor [j], error-free, in finite time. A
    mutex/condition-variable queue per receiving domain provides exactly
    that on shared memory.

    A mailbox may be bounded ({!create} [~capacity]): {!push_blocking}
    then waits while the queue is at capacity, and {!try_push} reports
    [`Full] — the primitive under the runtimes' credit-based
    backpressure. The plain {!push} is deliberately exempt from the
    bound so that control traffic (acks, tokens, poison pills) can
    never deadlock behind data.

    A mailbox can be {!close}d — the poison pill. A closed mailbox
    counts and drops further pushes (visible via {!dropped} and a
    [Logs.Debug] message on the [pardatalog.mailbox] source), and
    blocked producers and consumers wake immediately, so a crashed or
    finished peer can never leave a domain stuck in [Condition.wait]. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is unbounded. [create ~capacity ()] bounds the queue
    for the capacity-respecting entry points.
    @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Enqueue and wake the consumer, ignoring any capacity. Safe from any
    domain. Dropped (and counted) when the mailbox is closed. *)

val push_all : 'a t -> 'a list -> unit
(** [push_all mb xs] enqueues every element of [xs] in order under one
    lock acquisition and wakes the consumer once — the bulk variant of
    {!push} behind the runtimes' per-phase send coalescing (one
    delivery per (phase, destination) instead of one per message).
    Like {!push} it ignores any capacity; on a closed mailbox the whole
    list is dropped and counted. [push_all mb []] is a no-op that takes
    no lock. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Enqueue only if the mailbox is open and below capacity; never
    blocks. *)

val push_blocking : 'a t -> 'a -> bool
(** Enqueue, waiting while the mailbox is at capacity. Returns [false]
    (counting a drop) if the mailbox is or becomes closed — a producer
    blocked on a full mailbox is woken by {!close}.

    Why the close race cannot hang a producer: the closed flag is only
    read and written under the mailbox mutex, the wait loop re-tests
    [closed || not full] around every [Condition.wait], and {!close}
    broadcasts {e both} condition variables while still holding the
    mutex — so a producer either sees the flag before sleeping or is
    woken by the broadcast; there is no window to sleep through. Pinned
    by the "close during blocked pushes never hangs" stress test. *)

val close : 'a t -> unit
(** Close the mailbox: wakes every blocked consumer and producer and
    makes further pushes counted no-ops. Idempotent; safe from any
    domain. *)

val is_closed : 'a t -> bool

val drain : 'a t -> 'a list
(** Dequeue everything currently present, in arrival order, without
    blocking (possibly [[]]). Frees capacity for blocked producers. *)

val drain_blocking : 'a t -> 'a list
(** Like {!drain} but blocks until at least one element is present —
    or the mailbox is closed, in which case whatever is queued
    (possibly [[]]) is returned immediately. *)

val drain_timeout : 'a t -> seconds:float -> 'a list
(** Like {!drain_blocking} but gives up after [seconds], returning [[]]
    on timeout. Used by workers that must periodically wake to
    retransmit unacknowledged messages or check a deadline. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Current queue occupancy. *)

val capacity : 'a t -> int option

val dropped : 'a t -> int
(** Pushes discarded because the mailbox was closed. *)
