open Datalog

let ( let* ) = Result.bind

(* Wrap Rewrite.make's Invalid_argument into a result. *)
let attempt f =
  match f () with
  | rw -> Ok rw
  | exception Invalid_argument msg -> Error msg

let as_sirup = Analysis.as_sirup_string

let exit_policy ?(seed = 0) ~nprocs (s : Analysis.sirup) =
  (* Default v(e): the exit head's variables (deduplicated), which are
     in the exit body by safety. *)
  let ve = Atom.vars s.exit_rule.Rule.head in
  let fn =
    Hash_fn.modulo ~name:"h'" ~seed ~nprocs ~arity:(List.length ve) ()
  in
  Rewrite.Uniform (Discriminant.make ~vars:ve ~fn)

let hash_q ?(seed = 0) ~nprocs ~ve ~vr program =
  let* s = as_sirup program in
  let h' = Hash_fn.modulo ~name:"h'" ~seed ~nprocs ~arity:(List.length ve) () in
  let h = Hash_fn.modulo ~name:"h" ~seed ~nprocs ~arity:(List.length vr) () in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then Rewrite.Uniform (Discriminant.make ~vars:vr ~fn:h)
    else Rewrite.Uniform (Discriminant.make ~vars:ve ~fn:h')
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let no_communication ?(seed = 0) ~nprocs program =
  let* s = as_sirup program in
  match Dataflow.communication_free_choice s with
  | None ->
    Error
      "the dataflow graph has no cycle: Theorem 3 gives no \
       communication-free discriminating sequence"
  | Some fc ->
    let arity = List.length fc.vr in
    let h = Hash_fn.symmetric_modulo ~seed ~nprocs ~arity () in
    let policy_of (r : Rule.t) =
      if r == s.rec_rule then
        Rewrite.Uniform (Discriminant.make ~vars:fc.vr ~fn:h)
      else Rewrite.Uniform (Discriminant.make ~vars:fc.ve ~fn:h)
    in
    attempt (fun () ->
        Rewrite.make program
          ~policies:(List.map policy_of (Program.rules program)))

(* Recognize t(X,Y) :- b(X,Y).  t(X,Y) :- b(X,Z), t(Z,Y).  *)
let tc_shape program =
  let* s = as_sirup program in
  let fail msg = Error ("not transitive-closure shaped: " ^ msg) in
  if Array.length s.head_vars <> 2 then fail "head arity is not 2"
  else
    let hx = s.head_vars.(0) and hy = s.head_vars.(1) in
    if String.equal hx hy then fail "repeated head variable"
    else
      match s.base_atoms, s.exit_rule.Rule.body with
      | [ base ], [ ebase ] ->
        let bargs = base.Atom.args and eargs = ebase.Atom.args in
        if Array.length bargs <> 2 || Array.length eargs <> 2 then
          fail "base atoms are not binary"
        else
          (match bargs.(0), bargs.(1), s.rec_vars.(0), s.rec_vars.(1),
                 eargs.(0), eargs.(1) with
           | Term.Var bx, Term.Var bz, ry, rz, Term.Var ex, Term.Var ey
             when String.equal bx hx
                  && String.equal bz ry
                  && String.equal rz hy
                  && (not (String.equal bz hx))
                  && (not (String.equal bz hy))
                  && String.equal ex
                       (match s.exit_rule.Rule.head.Atom.args.(0) with
                        | Term.Var v -> v
                        | Term.Const _ -> "")
                  && String.equal ey
                       (match s.exit_rule.Rule.head.Atom.args.(1) with
                        | Term.Var v -> v
                        | Term.Const _ -> "") ->
             Ok s
           | _ -> fail "rule bodies do not match b(X,Z), t(Z,Y)")
      | _ -> fail "expected exactly one base atom per rule"

(* The exit rule may use different variable names than the recursive
   rule; pick the variable at the same head position in each. *)
let exit_head_var (s : Analysis.sirup) position =
  match s.exit_rule.Rule.head.Atom.args.(position) with
  | Term.Var v -> v
  | Term.Const _ -> assert false (* excluded by tc_shape *)

let example1 ?(seed = 0) ~nprocs program =
  let* s = tc_shape program in
  let h = Hash_fn.modulo ~seed ~nprocs ~arity:1 () in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then
      Rewrite.Uniform (Discriminant.make ~vars:[ s.head_vars.(1) ] ~fn:h)
    else
      Rewrite.Uniform (Discriminant.make ~vars:[ exit_head_var s 1 ] ~fn:h)
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let example2 ~nprocs ~partition program =
  let* s = tc_shape program in
  let base = List.hd s.base_atoms in
  let vr = Atom.vars base in
  let ve = Atom.vars (List.hd s.exit_rule.Rule.body) in
  let h =
    Hash_fn.of_fun ~name:"h_part" ~arity:2 ~space:(Pid.dense nprocs)
      (fun key -> partition (Tuple.make (Array.copy key)))
  in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then Rewrite.Uniform (Discriminant.make ~vars:vr ~fn:h)
    else Rewrite.Uniform (Discriminant.make ~vars:ve ~fn:h)
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let example3 ?(seed = 0) ~nprocs program =
  let* s = tc_shape program in
  let z = s.rec_vars.(0) in
  let h = Hash_fn.modulo ~seed ~nprocs ~arity:1 () in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then
      Rewrite.Uniform (Discriminant.make ~vars:[ z ] ~fn:h)
    else
      Rewrite.Uniform (Discriminant.make ~vars:[ exit_head_var s 0 ] ~fn:h)
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let local_vars (s : Analysis.sirup) =
  (* The recursive atom's variables, deduplicated: the Ȳ into which
     Section 6 requires v(r) to fall. *)
  Atom.vars s.rec_atom

let wolfson_redundant ?(seed = 0) ~nprocs program =
  let* s = as_sirup program in
  let vars = local_vars s in
  let arity = List.length vars in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then
      Rewrite.Local
        {
          vars;
          fn_for = (fun i -> Hash_fn.constant ~nprocs ~arity i);
        }
    else exit_policy ~seed ~nprocs s
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let tradeoff ?(seed = 0) ~nprocs ~alpha program =
  let* s = as_sirup program in
  let vars = local_vars s in
  let arity = List.length vars in
  let base = Hash_fn.modulo ~seed ~nprocs ~arity () in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then
      Rewrite.Local
        {
          vars;
          fn_for = (fun i -> Hash_fn.mixture ~seed:(seed + 31) ~alpha ~self:i base);
        }
    else exit_policy ~seed ~nprocs s
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let adaptive_tradeoff ?(seed = 0) ~nprocs ~dial program =
  let* s = as_sirup program in
  let vars = local_vars s in
  let arity = List.length vars in
  let base = Hash_fn.modulo ~seed ~nprocs ~arity () in
  let policy_of (r : Rule.t) =
    if r == s.rec_rule then
      Rewrite.Local
        {
          vars;
          fn_for =
            (fun i ->
              Hash_fn.mixture_dyn ~seed:(seed + 31)
                ~alpha:(fun () -> Overload.alpha dial i)
                ~self:i base);
        }
    else exit_policy ~seed ~nprocs s
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))

let default_choice program =
  let derived = Program.derived_predicates program in
  fun (rule : Rule.t) ->
    let derived_atoms =
      List.filter (fun (a : Atom.t) -> List.mem a.pred derived) rule.body
    in
    match derived_atoms with
    | first :: _ ->
      let others =
        List.filter (fun a -> not (a == first)) rule.body
        |> List.concat_map Atom.vars
      in
      let join_vars =
        List.filter (fun v -> List.mem v others) (Atom.vars first)
      in
      if join_vars <> [] then join_vars else Atom.vars first
    | [] ->
      let hvs = Rule.head_vars rule in
      if hvs <> [] then hvs
      else
        (match rule.body with
         | a :: _ -> Atom.vars a
         | [] -> [])

let general ?(seed = 0) ?choose ~nprocs program =
  let* () = Program.check program in
  let choose =
    match choose with Some f -> f | None -> default_choice program
  in
  let policy_of (r : Rule.t) =
    let vars = choose r in
    let fn =
      Hash_fn.modulo ~seed ~nprocs ~arity:(List.length vars) ()
    in
    Rewrite.Uniform (Discriminant.make ~vars ~fn)
  in
  attempt (fun () ->
      Rewrite.make program ~policies:(List.map policy_of (Program.rules program)))
