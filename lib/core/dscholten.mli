(** Dijkstra–Scholten termination detection for diffusing computations
    — the second of the two "standard algorithms of Distributed
    Computing" the paper cites for its parallel termination step
    (reference [7]).

    The computation is made diffusing by a virtual root (processor 0):
    every other processor starts engaged with the root as parent, and
    the root starts with a deficit equal to those virtual engagement
    messages. Thereafter the classic rules apply — a disengaged process
    re-engages with the sender of the message that reactivates it,
    every other data message is acknowledged on receipt, and a process
    acknowledges its parent (detaching from the engagement tree) only
    when it is passive with no outstanding acknowledgements of its own.
    The root detects termination when it is passive and its own deficit
    is zero.

    This module is the pure per-process state; runtimes deliver the
    acknowledgement signals.

    The algorithm assumes reliable channels. Under fault injection the
    runtimes call {!record_send} once per new sequence number and
    {!on_data} once per first-seen sequence number, so the deficit
    tracks payloads, not transmission attempts: the transport layer's
    retransmissions, duplicates and acknowledgements (distinct from
    this module's engagement acknowledgements) never touch the
    engagement tree. *)

type t

val create : pid:int -> nprocs:int -> t
(** Initial state: processor 0 is the permanently engaged root with
    deficit [nprocs - 1]; everyone else is engaged with parent 0. *)

val record_send : t -> unit
(** Call once per data message handed to a channel. *)

val on_ack : t -> unit
(** An acknowledgement for one of this process's messages arrived. *)

val on_data : t -> src:int -> [ `Ack_now of int | `Engaged ]
(** A data message from [src] arrived. [`Ack_now src] instructs the
    runtime to acknowledge immediately (the process was already
    engaged); [`Engaged] means the process just re-engaged with [src]
    as its parent and must not acknowledge yet. *)

val on_passive : t -> [ `Ack_parent of int | `Terminated | `Wait ]
(** The process is passive (no local work). [`Ack_parent p]: detach —
    send the deferred acknowledgement to [p] (non-roots with zero
    deficit). [`Terminated]: only ever returned by the root, when its
    deficit reaches zero. [`Wait]: outstanding acknowledgements or
    already detached; block for messages. *)

val deficit : t -> int
val engaged : t -> bool
