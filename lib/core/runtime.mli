(** The unified runtime interface.

    Both executors — the deterministic simulator and the multicore
    domain runtime — satisfy {!S}: one [run] function over a
    {!Run_config.t}. Code that must work on either (the CLI, the test
    harness, bench) is written against the module type and picks an
    implementation from {!all}. *)

module type S = sig
  val name : string
  (** ["sim"] or ["domains"]. *)

  val run :
    config:Run_config.t ->
    Rewrite.t ->
    edb:Datalog.Database.t ->
    Sim_runtime.result
end

module Sim : S
(** {!Sim_runtime.run}. *)

module Domains : S
(** {!Domain_runtime.run}. *)

val all : (module S) list
(** Both runtimes, simulator first. *)

val find : string -> (module S) option
(** Look an implementation up by {!S.name}. *)
