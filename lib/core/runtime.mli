(** The unified runtime interface.

    Both executors — the deterministic simulator and the multicore
    domain runtime — satisfy {!S}: one [run] function over a
    {!Run_config.t} for one-shot evaluation, and one [open_session]
    returning a live {!Session.t} for incremental evaluation under
    update streams. Code that must work on either (the CLI, the test
    harness, bench) is written against the module type and picks an
    implementation from {!all}. The multi-process runtime
    ([Net.Net_runtime]) satisfies the same shape from its own library. *)

module type S = sig
  val name : string
  (** ["sim"] or ["domains"]. *)

  val run :
    config:Run_config.t ->
    Rewrite.t ->
    edb:Datalog.Database.t ->
    Sim_runtime.result
  (** One-shot evaluation: [open_session] immediately followed by
      {!Session.close}. *)

  val open_session :
    config:Run_config.t ->
    Rewrite.t ->
    edb:Datalog.Database.t ->
    Session.t
  (** Evaluate to quiescence and keep the runtime resident; the
      returned handle accepts {!Session.apply} update batches that are
      maintained incrementally instead of recomputed. *)
end

module Sim : S
(** {!Sim_runtime.run} / {!Sim_runtime.open_session}. *)

module Domains : S
(** {!Domain_runtime.run} / {!Domain_runtime.open_session}. *)

val all : (module S) list
(** Both runtimes, simulator first. *)

val find : string -> (module S) option
(** Look an implementation up by {!S.name}. *)

val apply : Session.t -> Update_batch.t -> Session.outcome
(** {!Session.apply}, re-exported so runtime clients need only this
    module. *)

val query : Session.t -> string -> Datalog.Tuple.t list
(** {!Session.query}. *)

val close : Session.t -> Session.result
(** {!Session.close}. *)
