(** Jittered exponential backoff.

    One policy shared by every retry loop in the system: the serve
    client waiting out a BUSY daemon, the net runtime re-dialling a
    coordinator, and the supervisor pacing worker restarts. The delay
    for attempt [k] (0-based) is

    {v max hint (max 1 (min cap (base * 2^min(k,16)) + jitter k)) v}

    i.e. exponential growth from [base_ms] capped at [cap_ms], plus an
    attempt-indexed jitter, never below 1 ms, and never below a
    server-supplied retry hint. *)

type t

val make : ?base_ms:int -> ?cap_ms:int -> ?jitter:(int -> int) -> unit -> t
(** [make ()] is the policy used by {!Serve.Client.request_retry}:
    [base_ms = 5], [cap_ms = 500], no jitter. The jitter function
    receives the attempt index and returns extra milliseconds; it is
    added {e after} the cap so a positive jitter always desynchronizes
    retriers even at the ceiling. *)

val base_ms : t -> int
val cap_ms : t -> int

val delay_ms : ?hint_ms:int -> t -> int -> int
(** [delay_ms ?hint_ms t k] is the delay before retry [k] (the first
    retry is [k = 0]). [hint_ms] is a lower bound — a server's
    "retry after" — honored even when it exceeds the cap. Always
    [>= 1]. *)

val seeded_jitter : seed:int -> span_ms:int -> int -> int
(** A deterministic jitter function: attempt [k] under [seed] yields a
    stable pseudo-random value in [\[0, span_ms)]. Distinct seeds
    (e.g. per worker id) decorrelate the retry storms of processes
    that crashed together. [span_ms <= 0] yields 0. *)

val sleep : ?hint_ms:int -> t -> int -> unit
(** [sleep ?hint_ms t k] blocks for [delay_ms ?hint_ms t k]. *)
