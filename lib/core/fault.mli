(** Seeded, deterministic fault plans for the parallel runtimes.

    The paper's abstract architecture assumes reliable channels and
    processors that never fail; every theorem is stated over that
    idealization. A fault plan relaxes it in a reproducible way: each
    message transmission may be dropped, duplicated, delayed or
    reordered, and each processor may crash at a scheduled round and
    come back after a scheduled downtime. Every decision is a pure
    hash of the plan seed and the event coordinates (channel, sequence
    number, transmission attempt), so a plan replays identically on
    the deterministic runtime and is schedule-independent on the
    domain runtime.

    The runtimes pair a plan with a reliable-delivery layer
    (per-channel sequence numbers, receiver-side duplicate
    suppression, acknowledgements, bounded retransmission with
    exponential backoff) and with crash recovery by
    discriminating-function bucket reassignment, so that for every
    plan that leaves at least one live processor the pooled answers
    still equal the sequential evaluation (Theorem 1 under
    failures). Channels are {i fair-lossy}, not adversarial: a
    transmission attempt numbered {!drop_ceiling} or higher is never
    dropped, which bounds retransmission and guarantees progress. *)

type crash = {
  cr_pid : Pid.t;  (** Logical processor that fails. *)
  cr_round : int;
      (** Round at which it fails: global round index on the simulated
          runtime, the processor's local semi-naive iteration count on
          the domain runtime. *)
  cr_down : int;
      (** Rounds out of service before recovery begins (simulated
          runtime; the domain runtime recovers immediately). At least
          1. *)
}

type plan = {
  seed : int;
  drop : float;  (** Per-transmission drop probability, in [0, 1). *)
  dup : float;  (** Per-transmission duplication probability. *)
  reorder : float;
      (** Per-message probability of a small delivery jitter (1-2
          rounds), which lets later messages overtake it; also the
          per-round probability that a processor's inbox is shuffled
          before injection. *)
  delay : float;  (** Per-message probability of an added latency. *)
  max_delay : int;  (** Largest added latency, in rounds (>= 1). *)
  crashes : crash list;
  checkpoint_every : int option;
      (** Snapshot each processor's engine every this many rounds, so
          recovery resumes from the snapshot instead of re-deriving
          from the base fragment. *)
}

val none : plan
(** The idealized architecture: no faults, no checkpoints. Runtimes
    bypass the delivery layer entirely, reproducing the exact message
    counts of the fault-free engine. *)

val is_none : plan -> bool

val make :
  ?seed:int ->
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?delay:float ->
  ?max_delay:int ->
  ?crashes:crash list ->
  ?checkpoint_every:int ->
  unit ->
  plan
(** Build a validated plan.
    @raise Invalid_argument if a probability is outside [0, 1), a
    crash has [cr_round < 0] or [cr_down < 1], [max_delay < 1], or
    [checkpoint_every < 1]. *)

val drop_ceiling : int
(** Transmission attempts numbered [>= drop_ceiling] are never
    dropped: the fair-lossy bound that makes retransmission
    terminate. *)

type fate = {
  f_drop : bool;  (** This transmission attempt is lost. *)
  f_dup : bool;  (** A second copy is delivered. *)
  f_delay : int;  (** Extra latency rounds from the delay fault. *)
  f_jitter : int;  (** Extra rounds from the reorder fault (overtaking). *)
}

val fate : plan -> src:Pid.t -> dst:Pid.t -> seq:int -> attempt:int -> fate
(** The (deterministic) fate of one transmission attempt of payload
    [seq] on channel [src -> dst]. *)

val ack_dropped :
  plan -> src:Pid.t -> dst:Pid.t -> seq:int -> attempt:int -> bool
(** Whether the acknowledgement of that attempt is lost (same
    fair-lossy bound). *)

val reorder_inbox : plan -> pid:Pid.t -> round:int -> bool
(** Whether processor [pid]'s inbox is shuffled before injection this
    round. *)

val shuffle : plan -> pid:Pid.t -> round:int -> 'a array -> unit
(** Deterministic Fisher-Yates shuffle keyed by (seed, pid, round). *)

val crash_at : plan -> pid:Pid.t -> round:int -> crash option
(** The crash scheduled for [pid] exactly at [round], if any. *)

val retransmit_after : attempt:int -> int
(** Rounds to wait for an acknowledgement before retransmitting: a
    bounded exponential backoff. *)

type counters = {
  mutable n_drops : int;
  mutable n_dups_injected : int;
  mutable n_dups_suppressed : int;
  mutable n_delays : int;
  mutable n_reorders : int;
  mutable n_retransmits : int;
  mutable n_acks : int;
  mutable n_crashes : int;
  mutable n_recoveries : int;
  mutable n_replayed : int;
  mutable n_checkpoints : int;
  mutable n_restores : int;
}
(** Mutable accumulator used by the runtimes while executing. *)

val counters : unit -> counters
(** A fresh all-zero accumulator. *)

val freeze :
  ?mailbox_drops:int ->
  ?credit_stalls:int ->
  ?alpha_raises:int ->
  ?alpha_decays:int ->
  counters ->
  Stats.faults
(** An immutable copy for the final report. The optional arguments fill
    the overload-control counters (default 0), which are tracked by the
    runtimes rather than the fault layer. *)

val parse_crashes : string -> (crash list, string) result
(** Parse a comma-separated crash schedule
    ["PID\@ROUND[+DOWN],..."], e.g. ["1\@3,2\@5+2"]. *)

val pp : Format.formatter -> plan -> unit
