module type S = sig
  val name : string

  val run :
    config:Run_config.t ->
    Rewrite.t ->
    edb:Datalog.Database.t ->
    Sim_runtime.result

  val open_session :
    config:Run_config.t ->
    Rewrite.t ->
    edb:Datalog.Database.t ->
    Session.t
end

module Sim : S = struct
  let name = "sim"
  let run ~config rw ~edb = Sim_runtime.run ~config rw ~edb
  let open_session ~config rw ~edb = Sim_runtime.open_session ~config rw ~edb
end

module Domains : S = struct
  let name = "domains"
  let run ~config rw ~edb = Domain_runtime.run ~config rw ~edb

  let open_session ~config rw ~edb =
    Domain_runtime.open_session ~config rw ~edb
end

let all : (module S) list = [ (module Sim); (module Domains) ]

let find name =
  List.find_opt (fun (module R : S) -> String.equal R.name name) all

let apply = Session.apply
let query = Session.query
let close = Session.close
