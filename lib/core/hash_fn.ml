open Datalog

type spec =
  | Opaque
  | Bitvec
  | Linear of { coeffs : int array; lo : int }

type t = {
  name : string;
  arity : int;
  space : Pid.space;
  apply : Const.t array -> Pid.t;
  spec : spec;
}

let apply h key =
  if Array.length key <> h.arity then
    invalid_arg
      (Printf.sprintf "Hash_fn.apply: %s expects %d components, got %d"
         h.name h.arity (Array.length key));
  h.apply key

let bit ~seed c = Const.hash_seeded seed c land 1

let combined_hash ~seed key =
  Array.fold_left
    (fun acc c -> (acc * 0x01000193) lxor Const.hash_seeded seed c)
    (Array.length key) key
  land max_int

let modulo ?(name = "h") ?(seed = 0) ~nprocs ~arity () =
  {
    name;
    arity;
    space = Pid.dense nprocs;
    apply = (fun key -> combined_hash ~seed key mod nprocs);
    spec = Opaque;
  }

let symmetric_modulo ?(name = "h") ?(seed = 0) ~nprocs ~arity () =
  let apply key =
    let acc = ref 0 in
    Array.iter (fun c -> acc := !acc + Const.hash_seeded seed c) key;
    (!acc land max_int) mod nprocs
  in
  { name; arity; space = Pid.dense nprocs; apply; spec = Opaque }

let bitvec ?(name = "h") ?(seed = 0) ~arity () =
  let apply key =
    let id = ref 0 in
    Array.iter (fun c -> id := (!id lsl 1) lor bit ~seed c) key;
    !id
  in
  { name; arity; space = Pid.bitvec arity; apply; spec = Bitvec }

let linear ?(name = "h") ?(seed = 0) ~coeffs () =
  let coeffs = Array.of_list coeffs in
  if Array.length coeffs = 0 then invalid_arg "Hash_fn.linear: no coefficients";
  let lo = Array.fold_left (fun acc c -> acc + min 0 c) 0 coeffs in
  let hi = Array.fold_left (fun acc c -> acc + max 0 c) 0 coeffs in
  let apply key =
    let v = ref 0 in
    Array.iteri (fun i c -> v := !v + (coeffs.(i) * bit ~seed c)) key;
    !v - lo
  in
  {
    name;
    arity = Array.length coeffs;
    space = Pid.range ~lo ~hi;
    apply;
    spec = Linear { coeffs; lo };
  }

let constant ?name ~nprocs ~arity pid =
  if pid < 0 || pid >= nprocs then
    invalid_arg "Hash_fn.constant: pid out of range";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "const%d" pid
  in
  {
    name;
    arity;
    space = Pid.dense nprocs;
    apply = (fun _ -> pid);
    spec = Opaque;
  }

module Ttbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let partition_induced ?(name = "h") ~nprocs ~fallback assignment =
  let table = Ttbl.create (List.length assignment * 2) in
  let arity =
    match assignment with
    | [] -> fallback.arity
    | (t, _) :: _ -> Tuple.arity t
  in
  List.iter
    (fun (tuple, pid) ->
      if Tuple.arity tuple <> arity then
        invalid_arg "Hash_fn.partition_induced: tuple arity mismatch";
      if pid < 0 || pid >= nprocs then
        invalid_arg "Hash_fn.partition_induced: pid out of range";
      match Ttbl.find_opt table tuple with
      | Some pid' when pid' <> pid ->
        invalid_arg
          (Printf.sprintf
             "Hash_fn.partition_induced: %s in fragments %d and %d"
             (Tuple.to_string tuple) pid' pid)
      | _ -> Ttbl.replace table tuple pid)
    assignment;
  if fallback.arity <> arity then
    invalid_arg "Hash_fn.partition_induced: fallback arity mismatch";
  let apply key =
    match Ttbl.find_opt table (Tuple.make (Array.copy key)) with
    | Some pid -> pid
    | None -> fallback.apply key mod nprocs
  in
  { name; arity; space = Pid.dense nprocs; apply; spec = Opaque }

let mixture ?name ?(seed = 77) ~alpha ~self base =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Hash_fn.mixture: alpha must be in [0,1]";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "h%d[alpha=%.2f]" self alpha
  in
  let threshold = int_of_float (alpha *. 1_000_000.) in
  let apply key =
    if combined_hash ~seed key mod 1_000_000 < threshold then self
    else base.apply key
  in
  { name; arity = base.arity; space = base.space; apply; spec = Opaque }

let mixture_dyn ?name ?(seed = 77) ~alpha ~self base =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "h%d[alpha=dyn]" self
  in
  let apply key =
    let a = alpha () in
    let a = if a < 0.0 then 0.0 else if a > 1.0 then 1.0 else a in
    let threshold = int_of_float (a *. 1_000_000.) in
    if combined_hash ~seed key mod 1_000_000 < threshold then self
    else base.apply key
  in
  { name; arity = base.arity; space = base.space; apply; spec = Opaque }

let of_fun ~name ~arity ~space f =
  {
    name;
    arity;
    space;
    apply = (fun key -> ((f key mod Pid.size space) + Pid.size space)
                        mod Pid.size space);
    spec = Opaque;
  }

let pp ppf h =
  Format.fprintf ppf "%s/%d -> %d procs" h.name h.arity (Pid.size h.space)
