type t = {
  base_ms : int;
  cap_ms : int;
  jitter : int -> int;
}

let make ?(base_ms = 5) ?(cap_ms = 500) ?(jitter = fun _ -> 0) () =
  { base_ms = max 1 base_ms; cap_ms = max 1 cap_ms; jitter }

let base_ms t = t.base_ms
let cap_ms t = t.cap_ms

(* The shift is clamped so the exponent cannot overflow the int range
   even after hundreds of attempts; the cap bites long before 2^16
   anyway for realistic configurations. *)
let delay_ms ?(hint_ms = 0) t k =
  let exp = t.base_ms * (1 lsl min (max k 0) 16) in
  let d = min t.cap_ms exp + t.jitter k in
  max hint_ms (max 1 d)

(* splitmix64-style finalizer: cheap, stateless, and good enough to
   decorrelate retry schedules across seeds. *)
let mix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30))
      0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27))
      0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let seeded_jitter ~seed ~span_ms k =
  if span_ms <= 0 then 0
  else
    let h = mix64 (Int64.of_int ((seed * 1_000_003) lxor k)) in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int)
                    (Int64.of_int span_ms))

let sleep ?hint_ms t k =
  Unix.sleepf (float_of_int (delay_ms ?hint_ms t k) /. 1000.)
