(** Overload control: resource budgets, the structured [Overload]
    outcome, and the adaptive Section 6 retention dial.

    The paper's architecture assumes infinite channels and stores. This
    module gives both runtimes a bounded-resource story: wall-clock and
    store/outbox budgets checked by a watchdog, and — instead of an OOM
    or a hang — a structured exception carrying the partial statistics
    and the offending processor. The degradation mechanism is the
    Section 6 redundancy spectrum itself: raising a processor's
    retention fraction [alpha] (toward Wolfson's fully redundant
    scheme) sheds communication at the price of duplicated local
    firings, which is exactly the trade an overloaded channel wants.
    Theorem 4 makes this sound under {e any} per-tuple destination
    choice, so the dial may move while the computation runs. *)

open Datalog

(** Why a run was aborted. *)
type reason =
  | Deadline of { seconds : float; elapsed : float; round : int }
      (** The wall-clock deadline passed. [round] is the round being
          executed when the watchdog fired (0-based; the domain runtime
          reports 0 since it has no global rounds). *)
  | Store_budget of { pid : Pid.t; rows : int; limit : int }
      (** Processor [pid]'s tuple store grew past [limit] rows. *)
  | Outbox_budget of { pid : Pid.t; rows : int; limit : int }
      (** Processor [pid]'s outbox + unsent channel backlog grew past
          [limit] rows. *)

type limits = {
  deadline : float option;  (** Wall-clock budget in seconds. *)
  max_store_rows : int option;  (** Per-processor tuple-store budget. *)
  max_outbox_rows : int option;  (** Per-processor outbox budget. *)
}

val no_limits : limits
val is_none : limits -> bool

val validate : limits -> unit
(** @raise Invalid_argument on nonpositive budgets. *)

exception Overload of { reason : reason; stats : Stats.t }
(** Raised by the runtimes when a budget is breached. [stats] are the
    partial statistics at the moment of abort — the run's work so far
    is observable, not lost. *)

val pp_reason : Format.formatter -> reason -> unit

val reason_kind : reason -> string
(** Stable lowercase identifier of the abort kind — ["deadline"],
    ["store_budget"] or ["outbox_budget"] — used by the schema-2
    [Stats.to_json] attribution fields and the [datalogd] protocol's
    [PARTIAL] replies. *)

val db_rows : Database.t -> int
(** Exact row count of a processor's store. *)

val db_bytes : Database.t -> int
(** Word-size estimate ([rows * arity * 8] per relation) of a store's
    footprint. *)

(** {1 The adaptive retention dial}

    One [alpha] per processor, moved by backlog feedback: crossing
    [high_water] raises it by [step] (shedding communication), draining
    to [low_water] lowers it back toward the resting value. In the
    simulator the observer runs once per round per processor; in the
    domain runtime each worker observes (and writes) only its own
    processors' entries, so no entry is ever written by two domains. *)

type dial

val dial :
  ?alpha:float ->
  ?step:float ->
  ?low_water:int ->
  high_water:int ->
  nprocs:int ->
  unit ->
  dial
(** [dial ~high_water ~nprocs ()] starts every processor at [alpha]
    (default 0, the non-redundant scheme; also the floor it decays back
    to). [step] defaults to 0.25; [low_water] to [high_water / 4].
    [low_water = high_water] is accepted and makes the controller a
    no-op (a single backlog value would otherwise satisfy both the
    raise and the decay condition) — the natural "off" point when
    sweeping the water marks.
    @raise Invalid_argument on out-of-range parameters. *)

val alpha : dial -> Pid.t -> float
(** The current retention fraction of processor [pid] — read by
    {!Hash_fn.mixture_dyn} on every routing decision. *)

val observe : dial -> pid:Pid.t -> backlog:int -> unit
(** Feed one backlog observation (the processor's worst channel) into
    the controller. *)

val raises : dial -> int
(** How many times any processor's alpha was raised. *)

val decays : dial -> int
(** How many times any processor's alpha was lowered. *)
