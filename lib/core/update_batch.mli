(** Update batches for session runtimes — a thin alias of
    {!Datalog.Delta.Batch} so [Runtime] clients (server, CLI, bench)
    can build batches without depending on the datalog library
    directly. The constructors and accessors are those of
    {!Datalog.Delta.Batch}: [empty], [insert], [delete], [of_list],
    [size], [normalize], ... *)

include module type of Datalog.Delta.Batch

type op = Datalog.Delta.op = Insert | Delete

type update = Datalog.Delta.update = {
  u_op : op;
  u_pred : string;
  u_tuple : Datalog.Tuple.t;
}
