module Edge_set = Set.Make (struct
  type t = Pid.t * Pid.t

  let compare = compare
end)

type t = {
  space : Pid.space;
  edge_set : Edge_set.t;
}

let of_set space edge_set = { space; edge_set }

let make space edges =
  let n = Pid.size space in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "Netgraph.make: edge (%d,%d) outside [0,%d)" i j n))
    edges;
  of_set space (Edge_set.of_list edges)

let space g = g.space
let edges g = Edge_set.elements g.edge_set
let mem g i j = Edge_set.mem (i, j) g.edge_set
let edge_count g = Edge_set.cardinal g.edge_set

let complete space =
  let n = Pid.size space in
  let edges = ref Edge_set.empty in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      edges := Edge_set.add (i, j) !edges
    done
  done;
  of_set space !edges

let self_only space =
  of_set space
    (Edge_set.of_list (List.map (fun i -> (i, i)) (Pid.all space)))

let without_self g =
  { g with edge_set = Edge_set.filter (fun (i, j) -> i <> j) g.edge_set }

let union a b =
  if Pid.size a.space <> Pid.size b.space then
    invalid_arg "Netgraph.union: space size mismatch";
  { a with edge_set = Edge_set.union a.edge_set b.edge_set }

let subgraph a b = Edge_set.subset a.edge_set b.edge_set
let equal a b = Edge_set.equal a.edge_set b.edge_set

let of_labels space pairs =
  let resolve l =
    match Pid.of_label space l with
    | Some i -> i
    | None -> invalid_arg ("Netgraph.of_labels: unknown label " ^ l)
  in
  make space (List.map (fun (a, b) -> (resolve a, resolve b)) pairs)

let pp ppf g =
  if Edge_set.is_empty g.edge_set then
    Format.pp_print_string ppf "(no edges)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
      (fun ppf (i, j) ->
        Format.fprintf ppf "%s -> %s" (Pid.label g.space i)
          (Pid.label g.space j))
      ppf (edges g)

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph network {\n";
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" i (Pid.label g.space i)))
    (Pid.all g.space);
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i j))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
