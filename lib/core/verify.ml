open Datalog

type report = {
  equal_answers : bool;
  sequential_firings : int;
  parallel_firings : int;
  non_redundant : bool;
  redundancy : float;
  messages : int;
  stats : Stats.t;
}

let check ?config (rw : Rewrite.t) ~edb =
  let seq_db, seq_stats = Seminaive.evaluate rw.original edb in
  let result = Sim_runtime.run ?config rw ~edb in
  let equal_answers =
    List.for_all
      (fun pred ->
        match Database.find seq_db pred, Database.find result.answers pred with
        | Some a, Some b -> Relation.equal a b
        | Some a, None -> Relation.is_empty a
        | None, Some b -> Relation.is_empty b
        | None, None -> true)
      rw.derived
  in
  let parallel_firings = Stats.total_firings result.stats in
  {
    equal_answers;
    sequential_firings = seq_stats.Seminaive.firings;
    parallel_firings;
    non_redundant = parallel_firings <= seq_stats.Seminaive.firings;
    redundancy =
      Stats.redundancy_vs ~sequential_firings:seq_stats.Seminaive.firings
        result.stats;
    messages = Stats.total_messages result.stats;
    stats = result.stats;
  }

let channels_within stats net =
  List.for_all
    (fun (i, j) -> Netgraph.mem net i j)
    (Stats.used_channels ~include_self:true stats)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>equal answers: %b@,\
     firings: sequential=%d parallel=%d (%s, redundancy %.3f)@,\
     messages: %d@,%a@]"
    r.equal_answers r.sequential_firings r.parallel_firings
    (if r.non_redundant then "non-redundant" else "redundant")
    r.redundancy r.messages Stats.pp r.stats
