(** Canned parallelization strategies.

    These package the paper's worked examples and schemes as one-call
    constructors producing a {!Rewrite.t}:

    - {!no_communication} — Example 1 generalized by Theorem 3;
    - {!example2} — Valduriez & Khoshafian over an arbitrary partition;
    - {!example3} — the paper's new intermediate algorithm;
    - {!wolfson_redundant} — the redundant, communication-free scheme
      opening Section 6;
    - {!tradeoff} — the Section 6 spectrum, parameterized by the
      probability [alpha] of keeping a tuple local;
    - {!hash_q} — the plain Section 3 scheme with chosen sequences;
    - {!general} — the Section 7 scheme for arbitrary programs. *)

open Datalog

val hash_q :
  ?seed:int ->
  nprocs:int ->
  ve:string list ->
  vr:string list ->
  Program.t ->
  (Rewrite.t, string) result
(** Scheme [Q] on a linear sirup with [h' = h] a modular hash on the
    given discriminating sequences. *)

val no_communication :
  ?seed:int -> nprocs:int -> Program.t -> (Rewrite.t, string) result
(** Theorem 3: discriminate on a dataflow-graph cycle with a symmetric
    hash; the resulting execution sends no tuple between distinct
    processors. Errors when the sirup's dataflow graph is acyclic. *)

val example1 :
  ?seed:int -> nprocs:int -> Program.t -> (Rewrite.t, string) result
(** Example 1 (Wolfson & Silberschatz) on a transitive-closure-shaped
    sirup: [v(e) = v(r) = ⟨Y⟩] (the preserved head variable), no
    communication during the recursion, base relation replicated. For
    sirups beyond the TC shape use {!no_communication}, which derives
    the cycle-based choice from the dataflow graph. *)

val example2 :
  nprocs:int ->
  partition:(Tuple.t -> Pid.t) ->
  Program.t ->
  (Rewrite.t, string) result
(** Example 2 on a transitive-closure-shaped sirup
    ([t(X,Y) :- b(X,Y).  t(X,Y) :- b(X,Z), t(Z,Y).]): the base relation
    is split by the arbitrary [partition] (evaluated lazily on each
    tuple), [v(r)] is the base atom's variable pair, and the
    discriminating function is the partition itself — so each processor
    holds exactly its fragment and all communication broadcasts. *)

val example3 :
  ?seed:int -> nprocs:int -> Program.t -> (Rewrite.t, string) result
(** Example 3 on a transitive-closure-shaped sirup: [v(e) = ⟨X⟩],
    [v(r) = ⟨Z⟩] with a shared modular hash — disjoint base fragments,
    unicast communication. *)

val wolfson_redundant :
  ?seed:int -> nprocs:int -> Program.t -> (Rewrite.t, string) result
(** Section 6, first scheme [18]: the exit rule partitions by a hash of
    its head variables; the recursive rule keeps every tuple local
    ([hᵢ(x) = i]). No communication, possible redundancy, shared base
    relations. *)

val tradeoff :
  ?seed:int -> nprocs:int -> alpha:float -> Program.t ->
  (Rewrite.t, string) result
(** The Section 6 spectrum: processor [i] keeps a generated tuple with
    probability [alpha] and otherwise routes it by a shared hash of the
    recursive atom's variables. [alpha = 0.] is the non-redundant
    scheme; [alpha = 1.] is {!wolfson_redundant}. *)

val adaptive_tradeoff :
  ?seed:int ->
  nprocs:int ->
  dial:Overload.dial ->
  Program.t ->
  (Rewrite.t, string) result
(** {!tradeoff} with the per-processor alpha read from an
    {!Overload.dial} on every routing decision, so a runtime feedback
    controller can shed communication under backlog. Correct for any
    dial trajectory (Theorem 4 holds per tuple under a [Local]
    policy). *)

val general :
  ?seed:int ->
  ?choose:(Rule.t -> string list) ->
  nprocs:int ->
  Program.t ->
  (Rewrite.t, string) result
(** Scheme [T] (Section 7) for arbitrary Datalog programs. [choose]
    picks each rule's discriminating sequence (default: the variables of
    the rule's first derived body atom, or of its first body atom when
    the rule has no derived atom — as in Example 8 where
    [v(r₁) = ⟨Y⟩, v(r₂) = ⟨Z⟩] both pivot on the join variable). *)

val tc_shape : Program.t -> (Analysis.sirup, string) result
(** Recognize the transitive-closure shape required by {!example2} and
    {!example3}, i.e. a linear sirup [t(X,Y) :- b(X,Y).
    t(X,Y) :- b(X,Z), t(Z,Y).] up to renaming. *)
