(** Discriminating functions.

    A discriminating function maps ground instances of a discriminating
    sequence of variables to processors (Section 3 of the paper). Each
    function carries the {!Pid.space} it maps into and, when it has one,
    a symbolic {!spec} that the compile-time network derivation of
    Section 5 can analyse. *)

type spec =
  | Opaque
      (** No structure known; network derivation assumes any value. *)
  | Bitvec
      (** [h(a₁,…,aₖ) = (g(a₁),…,g(aₖ))] for an arbitrary bit function
          [g] — Example 6. The pid is the big-endian bit vector. *)
  | Linear of { coeffs : int array; lo : int }
      (** [h(a₁,…,aₖ) = Σ cᵢ·g(aᵢ)] for an arbitrary bit function [g] —
          Example 7. The pid is the value shifted by [-lo] where [lo] is
          the minimum of the form over [g ∈ {0,1}]. *)

type t = {
  name : string;  (** For printing, e.g. ["h"]. *)
  arity : int;  (** Length of the discriminating sequence consumed. *)
  space : Pid.space;
  apply : Datalog.Const.t array -> Pid.t;
  spec : spec;
}

val apply : t -> Datalog.Const.t array -> Pid.t
(** @raise Invalid_argument on arity mismatch. *)

val bit : seed:int -> Datalog.Const.t -> int
(** A member of a family of "arbitrary functions [g] from the constants
    of the database to [{0,1}]" (Examples 6–7), indexed by [seed]. *)

val modulo : ?name:string -> ?seed:int -> nprocs:int -> arity:int -> unit -> t
(** Combined hash of all components, reduced mod [nprocs]; the
    general-purpose discriminating function. *)

val symmetric_modulo :
  ?name:string -> ?seed:int -> nprocs:int -> arity:int -> unit -> t
(** Like {!modulo} but invariant under permutations of the components
    (it sums per-component hashes). This is the function class required
    by Theorem 3: discriminating on a dataflow-graph cycle is
    communication-free only if the function cannot tell a cyclic shift
    of its arguments from the original. *)

val bitvec : ?name:string -> ?seed:int -> arity:int -> unit -> t
(** [(g(v₁),…,g(vₖ))] over a {!Pid.bitvec} space — Example 6. *)

val linear : ?name:string -> ?seed:int -> coeffs:int list -> unit -> t
(** [Σ cᵢ·g(vᵢ)] over the {!Pid.range} space of its attainable values —
    Example 7 is [coeffs = [1; -1; 1]] giving range [{-1,0,1,2}]. *)

val constant : ?name:string -> nprocs:int -> arity:int -> Pid.t -> t
(** Always the given processor: [hᵢ(x) = i] makes processor [i] keep
    every tuple (the no-communication end of the Section 6 spectrum). *)

val partition_induced :
  ?name:string ->
  nprocs:int ->
  fallback:t ->
  (Datalog.Tuple.t * Pid.t) list ->
  t
(** The Example 2 function: [h(ā) = i] iff [ā] is a tuple of fragment
    [i] of a partitioned base relation. Tuples outside the partition
    fall back to [fallback] (they can never matter for correctness).
    @raise Invalid_argument if arities disagree or a tuple appears in
    two fragments. *)

val mixture :
  ?name:string -> ?seed:int -> alpha:float -> self:Pid.t -> t -> t
(** Section 6 trade-off function for processor [self]: a tuple is kept
    locally with probability [alpha] (decided deterministically from the
    tuple), otherwise routed by the underlying function. [alpha = 1.0]
    is {!constant}[ self]; [alpha = 0.0] is the underlying function. *)

val mixture_dyn :
  ?name:string -> ?seed:int -> alpha:(unit -> float) -> self:Pid.t -> t -> t
(** Like {!mixture}, but [alpha] is re-read on every application — the
    adaptive Section 6 dial. Theorem 4 holds for any per-tuple
    destination choice under a [Local] policy, so a time-varying alpha
    preserves correctness. Out-of-range values are clamped to [0,1]. *)

val of_fun :
  name:string ->
  arity:int ->
  space:Pid.space ->
  (Datalog.Const.t array -> Pid.t) ->
  t
(** An opaque user-supplied function; results are clamped into the
    space by reduction mod its size. *)

val pp : Format.formatter -> t -> unit
