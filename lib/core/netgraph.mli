(** Network graphs over processor spaces (Definition 3).

    An edge [i → j] means communication from processor [i] to processor
    [j] is permissible in the parallel execution; the absence of an edge
    means channel [ij] is never used, for any input database. *)

type t

val make : Pid.space -> (Pid.t * Pid.t) list -> t
(** Edges are deduplicated and sorted.
    @raise Invalid_argument if an endpoint is outside the space. *)

val space : t -> Pid.space
val edges : t -> (Pid.t * Pid.t) list
(** Sorted, deduplicated. *)

val mem : t -> Pid.t -> Pid.t -> bool
(** O(log E): edges are backed by a set, so the checker's
    channel-prediction comparisons stay near-linear. *)

val edge_count : t -> int

val complete : Pid.space -> t
(** Every ordered pair, self-loops included: the abstract architecture
    of Section 3. *)

val self_only : Pid.space -> t
(** Only the self-loops [i → i]: a communication-free execution. *)

val without_self : t -> t
(** Drop self-loops (which require no inter-processor link). *)

val union : t -> t -> t
(** @raise Invalid_argument when the spaces differ in size. *)

val subgraph : t -> t -> bool
(** [subgraph a b]: every edge of [a] is an edge of [b].
    O(E log E) set inclusion, not a quadratic list scan. *)

val equal : t -> t -> bool

val of_labels : Pid.space -> (string * string) list -> t
(** Build from printable labels, e.g. [("(00)", "(10)")].
    @raise Invalid_argument on an unknown label. *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
(** Graphviz rendering, labelled with the space's processor names. *)
