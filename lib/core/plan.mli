(** Parallel-correctness certificates.

    A plan is the output of the static planner ([datalogp check
    --suggest]): a versioned, serializable record of the scheme the
    planner chose for a program, the costs it predicted, and the
    per-stratum coordination classification it derived. The runtimes
    treat a plan as a {e certificate}: before executing under one, they
    re-verify that the program still hashes to the certified value and
    that the scheme still passes the paper's preconditions (Theorem 2
    effectiveness, Theorem 3 cycle choice, Section 7 well-formedness).
    A stale or forged certificate is rejected fail-fast with a stable
    error code — it can never silently run.

    The JSON encoding is versioned ([schema]) and deterministic (fixed
    field order, fixed float precision), so certificates diff cleanly
    and cram tests can pin them byte-for-byte. *)

open Datalog

type scheme =
  | Nocomm of { ve : string list; vr : string list }
      (** Theorem 3: discriminate on a dataflow cycle with a symmetric
          hash; no messages during the recursion. *)
  | Q of { ve : string list; vr : string list }
      (** Section 3 scheme [Q] with the given discriminating
          sequences. *)
  | Wolfson
      (** Section 6 scheme [18]: redundant, communication-free. *)
  | Tradeoff of { alpha : float }
      (** Section 6 spectrum: keep a tuple local with probability
          [alpha], else route by hash. *)
  | General  (** Section 7 scheme [T] for arbitrary programs. *)

type cost = {
  messages : float;
      (** Predicted cross-processor tuples per round (model units). *)
  redundancy : float;  (** Predicted duplicated-work fraction α ∈ [0,1]. *)
  balance : float;  (** Predicted max/mean processor load ratio (≥ 1). *)
  total : float;  (** The scalar the planner ranked candidates by. *)
}

type stratum = {
  preds : string list;  (** The SCC's predicates, sorted. *)
  recursive : bool;
  coordination_free : bool;
      (** No cross-processor exchange needed inside the stratum. *)
}

type t = {
  program_hash : string;  (** Hex digest of the program's rules. *)
  nprocs : int;
  seed : int;
  scheme : scheme;
  cost : cost;
  strata : stratum list;  (** Bottom-up, as {!Analysis.sccs} orders them. *)
}

type reject = {
  rcode : string;  (** Stable error code: E201, E202 or E203. *)
  reason : string;
}

exception Rejected of reject
(** Raised by {!validate_exn} — and hence by both runtimes at startup
    when a {!Run_config.t} carries a plan that no longer verifies. *)

val schema_version : int
(** Currently [1]. *)

val code_stale : string
(** ["E201"] — program hash mismatch: the program changed since the
    certificate was issued. *)

val code_unverified : string
(** ["E202"] — the certified scheme no longer passes re-verification
    against the program (Theorem 2/3 or Section 7 preconditions). *)

val code_malformed : string
(** ["E203"] — the certificate itself is malformed: bad JSON, wrong
    schema version, unknown scheme, or out-of-range fields. *)

val scheme_name : scheme -> string
(** Stable lowercase name: ["nocomm"], ["q"], ["wolfson"],
    ["tradeoff"], ["general"]. *)

val pp_scheme : Format.formatter -> scheme -> unit
(** Human rendering, e.g. [q(ve=⟨X⟩, vr=⟨Z⟩)]. *)

val program_hash : Program.t -> string
(** Digest of the rules (not the facts: a certificate stays valid when
    only the EDB changes), canonically rendered one per line. *)

val make :
  nprocs:int ->
  seed:int ->
  scheme:scheme ->
  cost:cost ->
  strata:stratum list ->
  Program.t ->
  t
(** Stamp a certificate for the given program ({!program_hash} is
    computed here). *)

val to_json : t -> string
(** Deterministic pretty-printed JSON (schema 1, fixed field order,
    floats at 3 decimals), ending in a newline. *)

val of_json : string -> (t, reject) result
(** Parse a schema-1 certificate. Any syntactic or structural problem
    is an [E203] reject. *)

val verify : ?nprocs:int -> t -> Program.t -> (unit, reject) result
(** Re-verify the certificate against a program: hash match ([E201]
    otherwise), scheme preconditions ([E202]), and — when [nprocs] is
    given, as the runtimes do — agreement with the executing processor
    count ([E202]). *)

val validate_exn : ?nprocs:int -> t -> Program.t -> unit
(** {!verify}, raising {!Rejected}. *)

val to_rewrite : t -> Program.t -> (Rewrite.t, reject) result
(** {!verify}, then build the certified scheme's rewrite via
    {!Strategy} with the certificate's [nprocs] and [seed]. *)

val pp_reject : Format.formatter -> reject -> unit
(** ["error[E20x]: reason"]. *)
