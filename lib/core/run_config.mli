(** One configuration record for both runtimes.

    [Run_config.t] subsumes the simulator's ablation/fault/overload
    options and the multicore executor's optional arguments (detector,
    domain count), and carries the observability sinks ({!Obs.sinks}).
    Build a configuration from {!default} with the [with_*] builders:

    {[
      Run_config.(default |> with_fault plan |> with_capacity (Some 4))
    ]}

    Fields only one runtime understands are documented as such; the
    other runtime ignores them. *)

type detector = Safra | Dijkstra_scholten
(** Termination detector used by the multicore runtime (Section 3's
    termination test on asynchronous channels). *)

type t = {
  resend_all : bool;  (** Ablation A1 (simulator only). *)
  pushdown : bool;  (** Guard pushdown; [false] is ablation A3. *)
  replicate_base : bool;  (** Ablation A4 (simulator only). *)
  max_rounds : int;  (** Round budget (simulator only). *)
  network : Netgraph.t option;  (** Fixed network (simulator only). *)
  fault : Fault.plan;  (** Seeded fault plan, {!Fault.none} by default. *)
  capacity : int option;  (** Per-channel credit bound. *)
  limits : Overload.limits;  (** Resource watchdog budgets. *)
  dial : Overload.dial option;  (** Adaptive-degradation dial. *)
  detector : detector;  (** Multicore runtime only. *)
  domains : int option;  (** Domain count (multicore runtime only). *)
  obs : Obs.sinks;  (** Tracing / metrics sinks, disabled by default. *)
  plan : Plan.t option;
      (** Certificate to validate at startup: both runtimes call
          {!Plan.validate_exn} against the rewrite's original program
          and processor count, and refuse to run under a stale or
          unverifiable plan ({!Plan.Rejected}). *)
  batch_rounds : int option;
      (** Session option: per-{!Runtime.apply} round budget for the
          simulator's incremental drive. [max_rounds] stays the
          cumulative budget over the whole session; this bounds each
          batch on its own. [None] (default) applies no per-batch
          bound. *)
  track_changes : bool;
      (** Session option: record the per-predicate net change log
          ({!Datalog.Delta.Log}) as batches are applied. On by
          default; switch off for long-lived sessions that only
          query the current model and never drain the log. *)
}

val default : t
(** Fault-free, unbounded, ablations off, [Safra] detector, disabled
    observability — the exact behaviour of the historical defaults of
    both runtimes. *)

val with_resend_all : bool -> t -> t
val with_pushdown : bool -> t -> t
val with_replicate_base : bool -> t -> t
val with_max_rounds : int -> t -> t
val with_network : Netgraph.t option -> t -> t
val with_fault : Fault.plan -> t -> t
val with_capacity : int option -> t -> t
val with_limits : Overload.limits -> t -> t

val with_deadline : float option -> t -> t
(** Set only the wall-clock budget of [limits], in seconds — the
    per-request plumbing used by [datalogd] to map a client deadline
    onto the watchdog without disturbing the other budgets. *)

val with_max_store_rows : int option -> t -> t
(** Set only the per-processor store budget of [limits]. *)

val with_dial : Overload.dial option -> t -> t
val with_detector : detector -> t -> t
val with_domains : int option -> t -> t
val with_obs : Obs.sinks -> t -> t
val with_trace : Obs.Trace.t -> t -> t
val with_metrics : Obs.Metrics.t -> t -> t
val with_plan : Plan.t option -> t -> t

val with_batch_rounds : int option -> t -> t
(** Per-batch round budget for session [apply] (simulator only). *)

val with_track_changes : bool -> t -> t
(** Whether sessions keep the net change log (default [true]). *)

val of_plan : Plan.t -> t
(** {!default} carrying the given certificate; compose further with the
    [with_*] builders. *)
