open Datalog

type policy =
  | Uniform of Discriminant.t
  | Local of {
      vars : string list;
      fn_for : Pid.t -> Hash_fn.t;
    }

type send_spec = {
  ss_pred : string;
  ss_rule : int;
  ss_unicast : bool;
  ss_label : string;
  ss_route : Pid.t -> Tuple.t -> Pid.t list;
}

type t = {
  original : Program.t;
  nprocs : int;
  space : Pid.space;
  derived : string list;
  programs : Program.t array;
  sends : send_spec list;
  resident : Pid.t -> string -> Tuple.t -> bool;
  fragmented : (string * bool) list;
}

let out_pred p = p ^ "@out"
let in_pred p = p ^ "@in"

let original_pred p =
  match String.index_opt p '@' with
  | Some i -> String.sub p 0 i
  | None -> p

let policy_space = function
  | Uniform d -> d.Discriminant.fn.Hash_fn.space
  | Local { fn_for; _ } -> (fn_for 0).Hash_fn.space

let policy_vars = function
  | Uniform d -> d.Discriminant.vars
  | Local { vars; _ } -> vars

let fail fmt = Format.kasprintf invalid_arg ("Rewrite.make: " ^^ fmt)

let validate_policy program rule policy =
  let vars = policy_vars policy in
  let bvs = Rule.body_vars rule in
  List.iter
    (fun v ->
      if not (List.mem v bvs) then
        fail "variable %s of the discriminating sequence is not in %s" v
          (Rule.to_string rule))
    vars;
  match policy with
  | Uniform d ->
    if List.length d.Discriminant.vars <> d.Discriminant.fn.Hash_fn.arity then
      fail "arity mismatch for %s" d.Discriminant.fn.Hash_fn.name
  | Local { vars; fn_for } ->
    let derived = Program.derived_predicates program in
    let derived_atoms =
      List.filter (fun (a : Atom.t) -> List.mem a.pred derived) rule.body
    in
    if derived_atoms = [] then
      fail "Local policy on a rule without derived body atoms: %s"
        (Rule.to_string rule);
    if (fn_for 0).Hash_fn.arity <> List.length vars then
      fail "arity mismatch for %s" (fn_for 0).Hash_fn.name;
    List.iter
      (fun atom ->
        match Discriminant.covered_positions vars atom with
        | Some _ -> ()
        | None ->
          fail
            "Local policy sequence (%s) not covered by atom %s (Section 6 \
             requires v(r) within the recursive atom)"
            (String.concat ", " vars)
            (Format.asprintf "%a" Atom.pp atom))
      derived_atoms

(* The rewritten rule for processor [i]: head writes [@out], derived
   body atoms read [@in], and Uniform policies add the guard
   [h(v(r)) = i]. *)
let rewrite_rule derived policy pid (rule : Rule.t) =
  let head = Atom.rename_pred (out_pred rule.head.pred) rule.head in
  let body =
    List.map
      (fun (a : Atom.t) ->
        if List.mem a.pred derived then Atom.rename_pred (in_pred a.pred) a
        else a)
      rule.body
  in
  let guards =
    match policy with
    | Local _ -> []
    | Uniform d ->
      let fn = d.Discriminant.fn in
      [
        Rule.guard ~name:fn.Hash_fn.name ~vars:d.Discriminant.vars
          ~fn:fn.Hash_fn.apply ~expect:pid;
      ]
  in
  Rule.make ?loc:rule.loc ~guards head body

let send_specs_of_rule program nprocs idx policy (rule : Rule.t) =
  let derived = Program.derived_predicates program in
  let derived_atoms =
    List.filter (fun (a : Atom.t) -> List.mem a.pred derived) rule.body
  in
  let vars = policy_vars policy in
  let label fn_name =
    Printf.sprintf "%s(%s)" fn_name (String.concat "," vars)
  in
  List.map
    (fun (atom : Atom.t) ->
      (* The paper's sending rule is [t_ij(Ȳ) :- t_out(Ȳ), h(v(r)) = j]:
         its body carries the consuming atom's pattern, so tuples that
         cannot match Ȳ (repeated variables, constants) never travel for
         this rule. *)
      let pattern_ok tuple = Atom.matches_tuple atom tuple in
      match policy with
      | Uniform d ->
        let fn = d.Discriminant.fn in
        (match Discriminant.covered_positions vars atom with
         | Some positions ->
           {
             ss_pred = atom.pred;
             ss_rule = idx;
             ss_unicast = true;
             ss_label = label fn.Hash_fn.name;
             ss_route =
               (fun _sender tuple ->
                 if pattern_ok tuple then
                   [ fn.Hash_fn.apply (Tuple.project_key tuple positions) ]
                 else []);
           }
         | None ->
           {
             ss_pred = atom.pred;
             ss_rule = idx;
             ss_unicast = false;
             ss_label = label fn.Hash_fn.name ^ " [broadcast]";
             ss_route =
               (fun _ tuple ->
                 if pattern_ok tuple then List.init nprocs Fun.id else []);
           })
      | Local { vars; fn_for } ->
        let positions =
          match Discriminant.covered_positions vars atom with
          | Some p -> p
          | None -> assert false (* validated *)
        in
        {
          ss_pred = atom.pred;
          ss_rule = idx;
          ss_unicast = true;
          ss_label = label "h_i";
          ss_route =
            (fun sender tuple ->
              if pattern_ok tuple then
                [ (fn_for sender).Hash_fn.apply (Tuple.project_key tuple positions) ]
              else []);
        })
    derived_atoms

(* Base-relation residency, per the end of Sections 3 and 7: an
   occurrence of a base atom is coverable when its rule's policy is a
   guarded (Uniform) one whose discriminating sequence is entirely
   within the atom; then processor [i] needs only the matching
   fragment. A relation is fragmented only if every occurrence is
   coverable; its resident set at [i] is the union of the occurrence
   fragments. *)
let residency program policies =
  let base = Program.base_predicates program in
  let occurrences pred =
    List.concat
      (List.map2
         (fun (rule : Rule.t) policy ->
           List.filter_map
             (fun (a : Atom.t) ->
               if String.equal a.pred pred then Some (a, policy) else None)
             rule.body)
         (Program.rules program) policies)
  in
  let coverage_of (atom, policy) =
    match policy with
    | Local _ -> None
    | Uniform d ->
      (match
         Discriminant.covered_positions d.Discriminant.vars atom
       with
       | Some positions -> Some (d.Discriminant.fn, positions)
       | None -> None)
  in
  let plans =
    List.map
      (fun pred ->
        let occs = occurrences pred in
        let covers = List.map coverage_of occs in
        if occs <> [] && List.for_all Option.is_some covers then
          (pred, Some (List.filter_map Fun.id covers))
        else (pred, None))
      base
  in
  let resident pid pred tuple =
    match List.assoc_opt pred plans with
    | Some (Some covers) ->
      List.exists
        (fun ((fn : Hash_fn.t), positions) ->
          fn.Hash_fn.apply (Tuple.project_key tuple positions) = pid)
        covers
    | _ -> true
  in
  let fragmented =
    List.map (fun (pred, c) -> (pred, Option.is_some c)) plans
  in
  (resident, fragmented)

let make ?space program ~policies =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> fail "%s" msg);
  let rules = Program.rules program in
  if List.length policies <> List.length rules then
    fail "%d policies for %d rules" (List.length policies)
      (List.length rules);
  List.iter2 (fun r p -> validate_policy program r p) rules policies;
  let spaces = List.map policy_space policies in
  let nprocs =
    match spaces with
    | [] -> fail "program has no rules"
    | s :: rest ->
      List.iter
        (fun s' ->
          if Pid.size s' <> Pid.size s then
            fail "policies disagree on the processor count (%d vs %d)"
              (Pid.size s) (Pid.size s'))
        rest;
      Pid.size s
  in
  let space =
    match space with Some s -> s | None -> List.hd spaces
  in
  if Pid.size space <> nprocs then
    fail "label space size %d does not match processor count %d"
      (Pid.size space) nprocs;
  let derived = Program.derived_predicates program in
  let programs =
    Array.init nprocs (fun pid ->
        Program.make
          (List.map2 (fun r p -> rewrite_rule derived p pid r) rules policies))
  in
  let sends =
    List.concat
      (List.mapi
         (fun idx (rule, policy) ->
           send_specs_of_rule program nprocs idx policy rule)
         (List.combine rules policies))
  in
  let resident, fragmented = residency program policies in
  {
    original = program;
    nprocs;
    space;
    derived;
    programs;
    sends;
    resident;
    fragmented;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i prog ->
      Format.fprintf ppf "--- processor %s ---@,%a@,"
        (Pid.label t.space i) Program.pp prog)
    t.programs;
  Format.fprintf ppf "--- sends ---@,";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s via rule %d: %s (%s)@," s.ss_pred s.ss_rule
        s.ss_label
        (if s.ss_unicast then "unicast" else "broadcast"))
    t.sends;
  Format.fprintf ppf "--- base relations ---@,";
  List.iter
    (fun (pred, frag) ->
      Format.fprintf ppf "%s: %s@," pred
        (if frag then "fragmented" else "shared"))
    t.fragmented;
  Format.fprintf ppf "@]"
