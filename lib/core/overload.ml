open Datalog

type reason =
  | Deadline of { seconds : float; elapsed : float; round : int }
  | Store_budget of { pid : Pid.t; rows : int; limit : int }
  | Outbox_budget of { pid : Pid.t; rows : int; limit : int }

type limits = {
  deadline : float option;
  max_store_rows : int option;
  max_outbox_rows : int option;
}

let no_limits =
  { deadline = None; max_store_rows = None; max_outbox_rows = None }

let is_none l =
  l.deadline = None && l.max_store_rows = None && l.max_outbox_rows = None

let validate l =
  (match l.deadline with
   | Some s when s <= 0.0 ->
     invalid_arg "Overload: deadline must be positive"
   | _ -> ());
  (match l.max_store_rows with
   | Some n when n < 1 ->
     invalid_arg "Overload: max-store must be >= 1"
   | _ -> ());
  match l.max_outbox_rows with
  | Some n when n < 1 -> invalid_arg "Overload: max-outbox must be >= 1"
  | _ -> ()

exception Overload of { reason : reason; stats : Stats.t }

let reason_kind = function
  | Deadline _ -> "deadline"
  | Store_budget _ -> "store_budget"
  | Outbox_budget _ -> "outbox_budget"

let pp_reason ppf = function
  | Deadline { seconds; elapsed; round } ->
    Format.fprintf ppf
      "deadline of %gs exceeded after %.3fs (round %d)" seconds elapsed
      round
  | Store_budget { pid; rows; limit } ->
    Format.fprintf ppf
      "processor %d tuple store holds %d rows (budget %d)" pid rows limit
  | Outbox_budget { pid; rows; limit } ->
    Format.fprintf ppf
      "processor %d outbox backlog is %d rows (budget %d)" pid rows limit

(* Store accounting: rows are exact; bytes are the word-size estimate
   [rows * arity * 8] summed over relations — enough to compare
   processors, not an allocator census. *)
let db_rows = Database.total_tuples

let db_bytes db =
  List.fold_left
    (fun acc pred ->
      match Database.find db pred with
      | None -> acc
      | Some r -> acc + (Relation.cardinal r * Relation.arity r * 8))
    0 (Database.predicates db)

type dial = {
  d_alphas : float array;
  d_floor : float;
  d_step : float;
  d_high : int;
  d_low : int;
  mutable d_raises : int;
  mutable d_decays : int;
}

let dial ?(alpha = 0.0) ?(step = 0.25) ?low_water ~high_water ~nprocs () =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Overload.dial: alpha must be in [0,1]";
  if step <= 0.0 then invalid_arg "Overload.dial: step must be positive";
  if high_water < 1 then
    invalid_arg "Overload.dial: high_water must be >= 1";
  if nprocs < 1 then invalid_arg "Overload.dial: nprocs must be >= 1";
  let low =
    match low_water with
    | Some l ->
      if l < 0 || l > high_water then
        invalid_arg "Overload.dial: low_water must be in [0, high_water]";
      l
    | None -> high_water / 4
  in
  {
    d_alphas = Array.make nprocs alpha;
    d_floor = alpha;
    d_step = step;
    d_high = high_water;
    d_low = low;
    d_raises = 0;
    d_decays = 0;
  }

let alpha d pid = d.d_alphas.(pid)
let raises d = d.d_raises
let decays d = d.d_decays

(* With [low = high] a single backlog value would satisfy both the
   raise and the decay condition, so the controller would chatter
   between them on a steady input. That degenerate configuration is
   accepted (it is the natural "off" point of a swept parameter) and
   defined as a no-op: alpha stays at its resting value. *)
let observe d ~pid ~backlog =
  if d.d_high <> d.d_low then begin
    let a = d.d_alphas.(pid) in
    if backlog >= d.d_high then begin
      if a < 1.0 then begin
        d.d_alphas.(pid) <- min 1.0 (a +. d.d_step);
        d.d_raises <- d.d_raises + 1
      end
    end
    else if backlog <= d.d_low && a > d.d_floor then begin
      d.d_alphas.(pid) <- max d.d_floor (a -. d.d_step);
      d.d_decays <- d.d_decays + 1
    end
  end
