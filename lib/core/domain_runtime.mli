(** True multicore executor.

    Each of the rewrite's [nprocs] processors runs its own semi-naive
    engine; tuples travel through {!Mailbox} channels (the reliable
    channels of the paper's abstract architecture); global quiescence is
    detected by a distributed termination algorithm; the [@out]
    relations are pooled at the end. The answers are identical to
    {!Sim_runtime}'s (and, by Theorems 1, 4 and 5, to the sequential
    evaluation); the schedule — and therefore per-round behaviour — is
    nondeterministic, but all counted totals except round counts are
    schedule-independent for guarded (Uniform) schemes.

    Processors are multiplexed onto [domains] OS-level domains
    (default: one per processor, capped by
    [Domain.recommended_domain_count ()]): the paper's "constant
    (though unbounded) number of processors" rarely matches the core
    count, so processor [p] is served by domain [p mod domains] and the
    domain cooperatively schedules its processors.

    With a non-trivial {!Fault.plan}, payload batches travel over the
    reliable-delivery layer: per-channel sequence numbers,
    receiver-side duplicate suppression, transport acknowledgements
    and time-based bounded retransmission. The termination detectors
    count at sequence-number granularity — one send per new batch, one
    receive per first-seen sequence number — so retransmissions and
    duplicates are invisible to them and detection stays sound over
    lossy channels. A crash fires when the processor's local iteration
    count reaches [cr_round]: the engine (volatile) is lost and
    rebuilt from the base fragment, and every processor replays its
    channel history to the rebuilt engine; delivery-layer and detector
    state are stable. Recovery is immediate ([cr_down] does not apply)
    and delivery is already asynchronous, so the plan's delay and
    reorder faults are tallied but change nothing observable. Control
    messages are never faulted.

    With [capacity] the data channels run under credit-based
    backpressure: at most [capacity] tuples are in flight (sent but not
    yet acknowledged) per channel at any time; the receiver's transport
    ack doubles as the credit grant, so it is sent even on fault-free
    runs. Over-budget tuples wait in the sender's per-channel pending
    queue — a deferral, never a loss. A processor with deferred output
    refuses to act passive, which keeps both termination detectors
    sound: an un-Tacked batch is always outstanding while anything is
    deferred, so the flushing credit is guaranteed to arrive and
    detection resumes after it. Control messages (tokens, acks, stop)
    bypass the credit gate entirely — backpressure can therefore never
    deadlock the control plane.

    [limits] arms a watchdog (wall-clock deadline, per-processor
    store/outbox row budgets). The worker that detects a breach
    broadcasts the Stop poison pill; every worker returns its partial
    results normally, and [run] raises {!Overload.Overload} carrying
    the assembled partial statistics — a structured outcome instead of
    an OOM or a hang, with no process ever killed.

    [dial] activates adaptive degradation: after each semi-naive step a
    worker feeds its processor's worst channel demand to the
    {!Overload.dial}, and a {!Strategy.adaptive_tradeoff} rewrite reads
    the per-processor alpha on every routing decision. Each dial entry
    is written only by the domain that owns the processor. *)

type detector = Run_config.detector =
  | Safra  (** Token-ring detection (default) — reference [5]'s
               quiescence condition via EWD 998. *)
  | Dijkstra_scholten
      (** Engagement-tree detection for diffusing computations —
          reference [7]. *)

val run :
  ?config:Run_config.t ->
  Rewrite.t ->
  edb:Datalog.Database.t ->
  Sim_runtime.result
(** Execute under a {!Run_config.t} (default {!Run_config.default}).
    The fields this runtime reads are [detector], [domains], [fault],
    [capacity], [limits], [dial] and [obs]; the simulator-only fields
    (ablations, [max_rounds], [network]) are ignored. In the returned
    stats, [rounds] is the maximum number of semi-naive iterations any
    processor executed, and [active_rounds] is each processor's own
    iteration count. Both detectors produce identical answers; they
    differ only in control traffic. [fault] (default {!Fault.none})
    injects message and processor faults; the pooled answers are
    unchanged for every plan. [capacity] bounds per-channel in-flight
    tuples ([Stats.peak_in_flight] reports the observed maximum);
    [limits] arms the overload watchdog; [dial] activates adaptive
    degradation. With the default (disabled) {!Obs.sinks} the
    instrumented workers take the exact historical code path.
    Equivalent to {!open_session} followed immediately by
    {!Session.close}.
    @raise Invalid_argument if [domains < 1] or [capacity < 1] or a
    limit is nonpositive.
    @raise Overload.Overload when a watchdog limit is breached. *)

val open_session :
  ?config:Run_config.t ->
  Rewrite.t ->
  edb:Datalog.Database.t ->
  Session.t
(** Evaluate to quiescence and keep the per-processor engines and
    channel histories resident, returning a live {!Session.t}. Each
    {!Session.apply} computes the net patch with
    {!Datalog.Stratified.Live}, installs it into the resident engines
    and base fragments between domain lifetimes (net deletions are
    retracted everywhere, net base insertions become pending work at
    the processors hosting them), and re-spawns the domains for one
    more drive to quiescence — termination detection, faults, credit
    and the watchdog all behave as on the initial drive. An empty net
    batch spawns nothing. Counters accumulate across batches; crash
    plans are evaluated against each drive's local iteration counts,
    so a plan may fire on several batches.
    @raise Overload.Overload as {!run}, from [open_session] or any
    later [apply]. *)
