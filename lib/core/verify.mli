(** Cross-checks of the paper's theorems on concrete runs.

    These helpers execute a rewritten program on the simulated runtime
    and compare it against the sequential semi-naive evaluation of the
    original program: result equality (Theorems 1, 4, 5), firing counts
    (Theorems 2 and 6), and channel usage against a derived network
    graph (Section 5). *)

type report = {
  equal_answers : bool;
      (** Pooled parallel output = sequential least model. *)
  sequential_firings : int;
  parallel_firings : int;
  non_redundant : bool;  (** [parallel_firings <= sequential_firings]. *)
  redundancy : float;  (** See {!Stats.redundancy_vs}. *)
  messages : int;  (** Inter-processor tuples (self-channels excluded). *)
  stats : Stats.t;
}

val check :
  ?config:Run_config.t ->
  Rewrite.t ->
  edb:Datalog.Database.t ->
  report

val channels_within : Stats.t -> Netgraph.t -> bool
(** Every channel that carried a tuple during the run (self-channels
    included) is an edge of the given network graph. *)

val pp_report : Format.formatter -> report -> unit
