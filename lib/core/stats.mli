(** Execution metrics of a parallel run.

    These quantities make the paper's qualitative claims measurable:
    redundancy (duplicate firings across processors), communication
    (tuples on inter-processor channels), base-relation residency
    (sharing vs. fragmentation), and load balance. *)

type per_proc = {
  pid : Pid.t;
  firings : int;  (** Successful ground substitutions at this processor. *)
  new_tuples : int;  (** Distinct tuples this processor derived. *)
  duplicate_firings : int;  (** Firings whose result was already known locally. *)
  iterations : int;  (** Semi-naive steps executed. *)
  tuples_sent : int;  (** Tuples put on channels (self-channel included). *)
  tuples_received : int;  (** Tuples taken from channels. *)
  tuples_accepted : int;  (** Received tuples that were new after dedup. *)
  base_resident : int;  (** EDB tuples resident at this processor. *)
  active_rounds : int;  (** Rounds in which the processor fired or received. *)
  store_rows : int;  (** Tuple-store rows at the end of the run. *)
  store_bytes : int;
      (** Word-size estimate of the store footprint
          ({!Overload.db_bytes}). *)
  outbox_peak_rows : int;
      (** Largest outbox + unsent-channel backlog observed. *)
  outbox_peak_bytes : int;  (** Word-size estimate of that peak. *)
}

type faults = {
  drops : int;  (** Transmission attempts lost by the fault injector. *)
  dups_injected : int;  (** Extra copies created by the fault injector. *)
  dups_suppressed : int;
      (** Deliveries discarded by the receiver-side duplicate
          suppression of the reliable layer. *)
  delays : int;  (** Messages given extra latency. *)
  reorders : int;  (** Messages jittered out of order + inboxes shuffled. *)
  retransmits : int;  (** Payload retransmissions after an ack timeout. *)
  acks : int;  (** Transport acknowledgements delivered. *)
  crashes : int;  (** Processor failures executed. *)
  recoveries : int;  (** Processors rebuilt by bucket reassignment. *)
  replayed : int;
      (** Tuples resent from peers' channel histories during
          recovery. *)
  checkpoints : int;  (** Engine snapshots taken. *)
  restores : int;  (** Recoveries that resumed from a checkpoint. *)
  mailbox_drops : int;
      (** Pushes discarded because the target mailbox was already
          closed (previously silent). *)
  credit_stalls : int;
      (** Times a sender wanted to transmit but had to defer for lack
          of channel credit. *)
  alpha_raises : int;  (** Adaptive-dial increments (backlog high). *)
  alpha_decays : int;  (** Adaptive-dial decrements (backlog drained). *)
}

val no_faults : faults
(** All-zero counters — the value reported by fault-free runs. *)

type transport = {
  reconnects : int;
      (** Socket connections (re-)established beyond each worker's
          first successful dial: extra connect attempts plus
          post-crash re-dials. *)
  wire_retransmits : int;
      (** Payload frames retransmitted over a real socket after an ack
          timeout (a subset of {!faults.retransmits} for the net
          runtime; 0 for in-process runtimes). *)
  heartbeat_misses : int;
      (** Heartbeat intervals that elapsed without news from a live
          worker, as seen by the failure detector. *)
  worker_restarts : int;  (** Worker processes respawned by the supervisor. *)
  bytes_sent : int;  (** Bytes written to worker sockets by the coordinator. *)
  bytes_received : int;  (** Bytes read from worker sockets. *)
}
(** Wire-level counters of the multi-process runtime. All zero
    ({!no_transport}) for the in-process runtimes. *)

val no_transport : transport
(** All-zero transport counters. *)

type comms = {
  bulk_pushes : int;
      (** Coalesced mailbox deliveries: each is one lock acquisition
          and one consumer wake-up carrying a whole phase's data
          traffic for one destination ({!Mailbox.push_all}). *)
  bulk_messages : int;
      (** Data messages those deliveries carried.
          [bulk_messages / bulk_pushes] is the mean coalescing factor —
          1.0 means batching bought nothing. *)
}
(** Send-coalescing counters of the shared-memory domain runtime;
    {!no_comms} for runtimes that push each message individually. *)

val no_comms : comms
(** All-zero coalescing counters. *)

type incr = {
  batches_applied : int;
      (** Update batches folded into the session (empty ones
          included). *)
  tuples_inserted : int;  (** Net model tuples added across batches. *)
  tuples_deleted : int;  (** Net model tuples removed across batches. *)
  tuples_rederived : int;
      (** Overdeleted tuples DRed proved still derivable and kept. *)
  tuples_overdeleted : int;
      (** Tuples provisionally deleted by DRed's overdeletion pass. *)
  incr_firings : int;
      (** Rule firings spent on maintenance (counting enumeration +
          DRed propagation + the insertion passes). *)
}
(** Incremental-maintenance counters of a session
    ({!Runtime.open_session}); {!no_incr} for one-shot runs. *)

val no_incr : incr
(** All-zero incremental counters. *)

type t = {
  nprocs : int;
  rounds : int;
  per_proc : per_proc array;
  channel_tuples : int array array;  (** [.(i).(j)] = tuples sent i→j. *)
  pooled_tuples : int;  (** Tuples moved by the final pooling step. *)
  trace : int array list;
      (** Per round (chronological), the number of tuples each processor
          derived — the parallelism profile. The first row is the
          initialization step (the paper's "evaluate initialization
          rule"), so there are [rounds + 1] rows. Empty for runtimes
          without a global round structure (the domain runtime). *)
  faults : faults;
      (** Reliable-delivery and recovery counters; {!no_faults} when
          the run executed on the idealized architecture. *)
  transport : transport;
      (** Wire-level counters; {!no_transport} unless the run crossed
          process boundaries (the net runtime). *)
  peak_in_flight : int;
      (** Largest per-channel in-flight occupancy observed. Tracked
          only when a channel capacity is set (0 otherwise), and then
          guaranteed [<= capacity] by the credit protocol. *)
  phase_ns : (string * int) list;
      (** Wall-clock nanoseconds per executor phase (sorted by phase
          name, summed across processors), accumulated by
          [Obs.Phase_timer]. The phase names are
          {!Obs.Trace.phase_name} values. Empty for runtimes that do
          not time their phases. *)
  incr : incr;
      (** Incremental-maintenance counters; {!no_incr} unless the
          stats describe a live session. *)
  comms : comms;
      (** Mailbox send-coalescing counters; {!no_comms} unless the
          runtime batches its sends (the domain runtime). *)
}

val frontier_profile : t -> int list
(** Total tuples derived per round, in order. *)

val peak_parallelism : t -> int
(** The largest number of processors that derived something in one
    round (0 when no trace). *)

val total_firings : t -> int
val total_new_tuples : t -> int
val total_duplicate_firings : t -> int

val total_messages : ?include_self:bool -> t -> int
(** Tuples sent over channels; by default the self-channels [i→i] —
    which involve no inter-processor communication — are excluded. *)

val used_channels : ?include_self:bool -> t -> (Pid.t * Pid.t) list
(** Channels that carried at least one tuple. *)

val total_base_resident : t -> int

val total_store_rows : t -> int
(** Sum of per-processor tuple-store rows. *)

val total_store_bytes : t -> int
(** Sum of per-processor store-footprint estimates. *)

val load_imbalance : t -> float
(** Max over processors of firings, divided by the mean (1.0 = perfectly
    balanced; [nan] when nothing fired). *)

val redundancy_vs : sequential_firings:int -> t -> float
(** [(parallel - sequential) / sequential]: 0.0 for a non-redundant run
    (Theorems 2 and 6); positive when work is duplicated. *)

val pp : Format.formatter -> t -> unit
(** A compact multi-line report. *)

val to_json : ?scheme:string -> ?outcome:string -> t -> string
(** A stable, versioned machine-readable snapshot. The top-level
    object carries ["schema": 5]; future field additions keep existing
    keys and bump the schema only on incompatible changes. Shared by
    [datalogp par --json], the {!Obs.Metrics} snapshot, the bench
    baselines ([BENCH_PR4.json]) and the [datalogd] query protocol.

    Schema 2 added two additive attribution fields so that partial
    results can be explained without re-parsing CLI output:
    [scheme] (default ["unspecified"]) names the plan or scheme the
    run executed under (e.g. ["nocomm"], ["general"], ["adaptive"]);
    [outcome] (default ["ok"]) is how the run ended — ["ok"], or the
    structured abort kind ({!Overload.reason_kind}: ["deadline"],
    ["store_budget"], ["outbox_budget"], or ["round_budget"]).

    Schema 3 adds the additive ["transport"] object ({!transport}:
    reconnects, wire retransmits, heartbeat misses, worker restarts,
    bytes sent/received) so a recovery by the multi-process runtime's
    supervisor is attributable from [par --json] and the bench
    baselines.

    Schema 4 adds the additive ["incr"] object ({!incr}: batches
    applied, net tuples inserted/deleted, DRed overdeletions and
    rederivations, maintenance firings) reported by session runs
    ({!Runtime.open_session}); all zero for one-shot runs.

    Schema 5 adds the additive ["comms"] object ({!comms}: coalesced
    mailbox deliveries and the messages they carried) reported by the
    domain runtime's per-phase send batching; all zero elsewhere. *)

val pp_summary : Format.formatter -> t -> unit
(** A one-line summary. *)
