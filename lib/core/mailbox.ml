let src = Logs.Src.create "pardatalog.mailbox" ~doc:"Mailbox diagnostics"

module Log = (val Logs.src_log src : Logs.LOG)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  not_full : Condition.t;
  queue : 'a Queue.t;
  capacity : int option;
  mutable closed : bool;
  mutable dropped : int;
}

let create ?capacity () =
  (match capacity with
   | Some c when c < 1 -> invalid_arg "Mailbox.create: capacity must be >= 1"
   | _ -> ());
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    not_full = Condition.create ();
    queue = Queue.create ();
    capacity;
    closed = false;
    dropped = 0;
  }

let full mb =
  match mb.capacity with
  | None -> false
  | Some c -> Queue.length mb.queue >= c

(* Called with the mutex held; the log call happens after unlock. *)
let note_drop mb =
  mb.dropped <- mb.dropped + 1;
  mb.dropped

let log_drop n =
  Log.debug (fun m -> m "push on closed mailbox dropped (%d so far)" n)

let push mb x =
  Mutex.lock mb.mutex;
  if mb.closed then begin
    let n = note_drop mb in
    Mutex.unlock mb.mutex;
    log_drop n
  end
  else begin
    Queue.add x mb.queue;
    Condition.signal mb.nonempty;
    Mutex.unlock mb.mutex
  end

let push_all mb xs =
  if xs <> [] then begin
    Mutex.lock mb.mutex;
    if mb.closed then begin
      mb.dropped <- mb.dropped + List.length xs;
      let n = mb.dropped in
      Mutex.unlock mb.mutex;
      log_drop n
    end
    else begin
      List.iter (fun x -> Queue.add x mb.queue) xs;
      Condition.signal mb.nonempty;
      Mutex.unlock mb.mutex
    end
  end

let try_push mb x =
  Mutex.lock mb.mutex;
  if mb.closed then begin
    Mutex.unlock mb.mutex;
    `Closed
  end
  else if full mb then begin
    Mutex.unlock mb.mutex;
    `Full
  end
  else begin
    Queue.add x mb.queue;
    Condition.signal mb.nonempty;
    Mutex.unlock mb.mutex;
    `Ok
  end

let push_blocking mb x =
  Mutex.lock mb.mutex;
  while full mb && not mb.closed do
    Condition.wait mb.not_full mb.mutex
  done;
  if mb.closed then begin
    let n = note_drop mb in
    Mutex.unlock mb.mutex;
    log_drop n;
    false
  end
  else begin
    Queue.add x mb.queue;
    Condition.signal mb.nonempty;
    Mutex.unlock mb.mutex;
    true
  end

let close mb =
  Mutex.lock mb.mutex;
  mb.closed <- true;
  Condition.broadcast mb.nonempty;
  Condition.broadcast mb.not_full;
  Mutex.unlock mb.mutex

let is_closed mb =
  Mutex.lock mb.mutex;
  let c = mb.closed in
  Mutex.unlock mb.mutex;
  c

let drain_locked mb =
  let acc = ref [] in
  while not (Queue.is_empty mb.queue) do
    acc := Queue.pop mb.queue :: !acc
  done;
  if !acc <> [] && mb.capacity <> None then Condition.broadcast mb.not_full;
  List.rev !acc

let drain mb =
  Mutex.lock mb.mutex;
  let xs = drain_locked mb in
  Mutex.unlock mb.mutex;
  xs

let drain_blocking mb =
  Mutex.lock mb.mutex;
  while Queue.is_empty mb.queue && not mb.closed do
    Condition.wait mb.nonempty mb.mutex
  done;
  let xs = drain_locked mb in
  Mutex.unlock mb.mutex;
  xs

(* [Condition] has no timed wait, so the timeout is a short-period poll:
   coarse but portable, and only used when a fault plan or deadline is
   active. *)
let drain_timeout mb ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    Mutex.lock mb.mutex;
    if (not (Queue.is_empty mb.queue)) || mb.closed then begin
      let xs = drain_locked mb in
      Mutex.unlock mb.mutex;
      xs
    end
    else begin
      Mutex.unlock mb.mutex;
      if Unix.gettimeofday () >= deadline then []
      else begin
        Unix.sleepf 0.0005;
        go ()
      end
    end
  in
  go ()

let is_empty mb =
  Mutex.lock mb.mutex;
  let e = Queue.is_empty mb.queue in
  Mutex.unlock mb.mutex;
  e

let length mb =
  Mutex.lock mb.mutex;
  let n = Queue.length mb.queue in
  Mutex.unlock mb.mutex;
  n

let capacity mb = mb.capacity

let dropped mb =
  Mutex.lock mb.mutex;
  let n = mb.dropped in
  Mutex.unlock mb.mutex;
  n
