type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable closed : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    closed = false;
  }

let push mb x =
  Mutex.lock mb.mutex;
  if not mb.closed then begin
    Queue.add x mb.queue;
    Condition.signal mb.nonempty
  end;
  Mutex.unlock mb.mutex

let close mb =
  Mutex.lock mb.mutex;
  mb.closed <- true;
  Condition.broadcast mb.nonempty;
  Mutex.unlock mb.mutex

let is_closed mb =
  Mutex.lock mb.mutex;
  let c = mb.closed in
  Mutex.unlock mb.mutex;
  c

let drain_locked mb =
  let acc = ref [] in
  while not (Queue.is_empty mb.queue) do
    acc := Queue.pop mb.queue :: !acc
  done;
  List.rev !acc

let drain mb =
  Mutex.lock mb.mutex;
  let xs = drain_locked mb in
  Mutex.unlock mb.mutex;
  xs

let drain_blocking mb =
  Mutex.lock mb.mutex;
  while Queue.is_empty mb.queue && not mb.closed do
    Condition.wait mb.nonempty mb.mutex
  done;
  let xs = drain_locked mb in
  Mutex.unlock mb.mutex;
  xs

(* [Condition] has no timed wait, so the timeout is a short-period poll:
   coarse but portable, and only used when a fault plan is active. *)
let drain_timeout mb ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    Mutex.lock mb.mutex;
    if (not (Queue.is_empty mb.queue)) || mb.closed then begin
      let xs = drain_locked mb in
      Mutex.unlock mb.mutex;
      xs
    end
    else begin
      Mutex.unlock mb.mutex;
      if Unix.gettimeofday () >= deadline then []
      else begin
        Unix.sleepf 0.0005;
        go ()
      end
    end
  in
  go ()

let is_empty mb =
  Mutex.lock mb.mutex;
  let e = Queue.is_empty mb.queue in
  Mutex.unlock mb.mutex;
  e
