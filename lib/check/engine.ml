open Datalog

(* All engine diagnostics derive their severity from their code. *)
let diag ?file ?loc ?suggestion code msg =
  Diagnostic.make ?file ?loc ?suggestion ~code
    ~severity:(Diagnostic.severity_of_code code) msg

(* ------------------------------------------------------------------ *)
(* Safety / range restriction                                          *)
(* ------------------------------------------------------------------ *)

let safety ?file (p : Program.t) =
  List.concat_map
    (fun (r : Rule.t) ->
      let loc = r.loc in
      let bvs = Rule.body_vars r in
      let unbound vs = List.filter (fun v -> not (List.mem v bvs)) vs in
      let per_var code what v =
        diag ?file ?loc code
          (Printf.sprintf "%s variable %s of rule `%s` is not bound in the \
                           positive body"
             what v (Rule.to_string r))
          ~suggestion:
            (Printf.sprintf
               "add a positive body atom binding %s, or replace it with a \
                constant" v)
      in
      let e001 = List.map (per_var "E001" "head") (unbound (Rule.head_vars r)) in
      let e002 =
        List.map (per_var "E002" "negated-atom") (unbound (Rule.neg_vars r))
      in
      let e003 =
        List.concat_map
          (fun (g : Rule.guard) ->
            List.map (per_var "E003" "guard")
              (unbound (Array.to_list g.gvars)))
          r.guards
      in
      let w001 =
        if r.body <> [] && Rule.vars r = [] && Rule.neg_vars r = [] then
          [
            diag ?file ?loc "W001"
              (Printf.sprintf
                 "rule `%s` contains no variables: it can derive at most \
                  one tuple and gives a discriminating function nothing to \
                  hash" (Rule.to_string r))
              ~suggestion:
                "generalize the constants to variables, or precompute the \
                 single derivable tuple as a fact";
          ]
        else []
      in
      e001 @ e002 @ e003 @ w001)
    (Program.rules p)

(* ------------------------------------------------------------------ *)
(* Arity and symbol consistency                                        *)
(* ------------------------------------------------------------------ *)

type use = {
  u_pred : string;
  u_arity : int;
  u_loc : int option;
  u_where : string;
}

let uses_of (p : Program.t) =
  let of_rule (r : Rule.t) =
    let at where (a : Atom.t) =
      { u_pred = a.pred; u_arity = Atom.arity a; u_loc = r.loc;
        u_where = where }
    in
    at "rule head" r.head
    :: List.map (at "rule body") r.body
    @ List.map (at "negated atom") r.neg
  in
  List.concat_map of_rule (Program.rules p)
  @ List.map
      (fun (pred, t) ->
        { u_pred = pred; u_arity = Tuple.arity t; u_loc = None;
          u_where = "fact" })
      p.Program.facts

let arity ?file (p : Program.t) =
  let first = Hashtbl.create 16 in
  let reported = Hashtbl.create 16 in
  List.filter_map
    (fun u ->
      match Hashtbl.find_opt first u.u_pred with
      | None ->
        Hashtbl.add first u.u_pred u;
        None
      | Some u0 when u0.u_arity = u.u_arity -> None
      | Some u0 ->
        if Hashtbl.mem reported u.u_pred then None
        else begin
          Hashtbl.add reported u.u_pred ();
          let where u =
            match u.u_loc with
            | Some l -> Printf.sprintf "%s at line %d" u.u_where l
            | None -> u.u_where
          in
          Some
            (diag ?file ?loc:u.u_loc "E004"
               (Printf.sprintf
                  "predicate %s is used with arity %d (%s) and arity %d (%s)"
                  u.u_pred u0.u_arity (where u0) u.u_arity (where u))
               ~suggestion:
                 "rename one of the predicates or fix the argument list")
        end)
    (uses_of p)

(* ------------------------------------------------------------------ *)
(* Duplicate rules                                                     *)
(* ------------------------------------------------------------------ *)

(* Canonical rendering with variables renamed in first-occurrence order
   (head, then body, then negated atoms), so duplicates are found up to
   variable renaming. Rules with guards are never compared (guards carry
   closures). *)
let canonical (r : Rule.t) =
  let ids = Hashtbl.create 8 in
  let next = ref 0 in
  let rename = function
    | Term.Const _ as t -> t
    | Term.Var v ->
      let i =
        match Hashtbl.find_opt ids v with
        | Some i -> i
        | None ->
          let i = !next in
          incr next;
          Hashtbl.add ids v i;
          i
      in
      Term.var (Printf.sprintf "V%d" i)
  in
  let atom (a : Atom.t) =
    Format.asprintf "%a" Atom.pp
      (Atom.make_a a.pred (Array.map rename a.args))
  in
  atom r.head ^ " :- "
  ^ String.concat ", " (List.map atom r.body)
  ^ (if r.neg = [] then ""
     else "; not " ^ String.concat ", not " (List.map atom r.neg))

let duplicates ?file (p : Program.t) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Rule.t) ->
      if r.guards <> [] then None
      else
        let key = canonical r in
        match Hashtbl.find_opt seen key with
        | None ->
          Hashtbl.add seen key r;
          None
        | Some (first : Rule.t) ->
          let first_at =
            match first.loc with
            | Some l -> Printf.sprintf " (first occurrence at line %d)" l
            | None -> ""
          in
          Some
            (diag ?file ?loc:r.loc "W002"
               (Printf.sprintf
                  "rule `%s` duplicates an earlier rule up to variable \
                   renaming%s" (Rule.to_string r) first_at)
               ~suggestion:"delete the duplicate rule"))
    (Program.rules p)

(* ------------------------------------------------------------------ *)
(* Unused / unreachable predicates, empty recursive components         *)
(* ------------------------------------------------------------------ *)

let body_preds (r : Rule.t) =
  List.map (fun (a : Atom.t) -> a.pred) (r.body @ r.neg)

let reachability ?file ?goal (p : Program.t) =
  let rules = Program.rules p in
  let derived = Program.derived_predicates p in
  let sccs = Analysis.sccs p in
  (* Without a goal, every component no outside rule reads is an output;
     the backward closure of the outputs then covers every derived
     predicate, so [W004] needs a [goal] to ever fire. *)
  let used_outside scc =
    List.exists
      (fun (r : Rule.t) ->
        (not (List.mem r.head.pred scc))
        && List.exists (fun q -> List.mem q scc) (body_preds r))
      rules
  in
  let roots =
    match goal with
    | Some g when List.mem g derived -> [ [ g ] ]
    | Some _ | None ->
      List.filter (fun scc -> not (used_outside scc)) sccs
  in
  let reachable = Hashtbl.create 16 in
  let rec visit pred =
    if not (Hashtbl.mem reachable pred) then begin
      Hashtbl.add reachable pred ();
      List.iter
        (fun (r : Rule.t) ->
          if String.equal r.head.pred pred then
            List.iter (fun q -> if List.mem q derived then visit q)
              (body_preds r))
        rules
    end
  in
  List.iter (fun scc -> List.iter visit scc) roots;
  let loc_of pred =
    match Program.rules_for p pred with
    | (r : Rule.t) :: _ -> r.loc
    | [] -> None
  in
  let w004 =
    List.filter_map
      (fun pred ->
        if Hashtbl.mem reachable pred then None
        else
          let why =
            match goal with
            | Some g -> Printf.sprintf "the goal %s does not depend on it" g
            | None -> "no output predicate depends on it"
          in
          Some
            (diag ?file ?loc:(loc_of pred) "W004"
               (Printf.sprintf
                  "derived predicate %s is unreachable: %s" pred why)
               ~suggestion:"delete its rules or reference it from a rule"))
      derived
  in
  let referenced = List.concat_map body_preds rules in
  let fact_preds =
    List.sort_uniq String.compare (List.map fst p.Program.facts)
  in
  let w003 =
    if rules = [] then [] (* a pure fact file: nothing reads anything *)
    else
      List.filter_map
        (fun pred ->
          if List.mem pred referenced || List.mem pred derived then None
          else
            Some
              (diag ?file "W003"
                 (Printf.sprintf
                    "facts are given for %s but no rule reads it" pred)
                 ~suggestion:"delete the facts or add a rule using them"))
        fact_preds
  in
  (* A recursive component with no exit rule derives nothing. *)
  let w005 =
    List.filter_map
      (fun scc ->
        let is_recursive =
          match scc with
          | [ single ] -> Analysis.mutually_recursive p single single
          | _ -> true
        in
        if not is_recursive then None
        else
          let component_rules =
            List.filter (fun (r : Rule.t) -> List.mem r.head.pred scc) rules
          in
          let seeded pred =
            List.exists (fun (q, _) -> String.equal q pred) p.Program.facts
          in
          let has_exit =
            List.exists
              (fun (r : Rule.t) ->
                not (List.exists (fun q -> List.mem q scc) (body_preds r)))
              component_rules
            || List.exists seeded scc
          in
          if has_exit then None
          else
            let loc =
              match component_rules with
              | (r : Rule.t) :: _ -> r.loc
              | [] -> None
            in
            Some
              (diag ?file ?loc "W005"
                 (Printf.sprintf
                    "recursive component {%s} has no exit rule: every rule \
                     depends on the component, so its predicates are \
                     provably empty" (String.concat ", " scc))
                 ~suggestion:
                   "add a non-recursive rule (or facts) deriving one of its \
                    predicates"))
      sccs
  in
  (* Without a goal, every component no outside rule reads counts as an
     output, whose backward closure covers every derived predicate —
     [W004] can then never fire. Say so instead of silently skipping. *)
  let i005 =
    match goal with
    | Some _ -> []
    | None ->
      if derived = [] then []
      else
        [
          diag ?file "I005"
            "reachability not checked: without --goal every derived \
             predicate counts as an output"
            ~suggestion:"pass --goal PRED to check reachability towards it";
        ]
  in
  i005 @ w004 @ w003 @ w005

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)
(* ------------------------------------------------------------------ *)

(* Shortest dependency path [src -> … -> dst] inside [within], following
   edges of the dependency graph (p -> q when q occurs in a body of a
   rule for p). *)
let find_path graph ~src ~dst ~within =
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add src queue;
  Hashtbl.add parent src None;
  let rec walk () =
    if Queue.is_empty queue then None
    else
      let v = Queue.pop queue in
      if String.equal v dst then begin
        let rec unwind v acc =
          match Hashtbl.find parent v with
          | None -> v :: acc
          | Some u -> unwind u (v :: acc)
        in
        Some (unwind dst [])
      end
      else begin
        let deps =
          match List.assoc_opt v graph with Some d -> d | None -> []
        in
        List.iter
          (fun w ->
            if List.mem w within && not (Hashtbl.mem parent w) then begin
              Hashtbl.add parent w (Some v);
              Queue.add w queue
            end)
          deps;
        walk ()
      end
  in
  walk ()

let stratification ?file (p : Program.t) =
  let rules = Program.rules p in
  let sccs = Analysis.sccs p in
  let scc_of pred = List.find_opt (fun scc -> List.mem pred scc) sccs in
  let graph = Analysis.dependency_graph p in
  let uses_negation = List.exists (fun (r : Rule.t) -> r.neg <> []) rules in
  let w006 =
    if not uses_negation then []
    else
      let first =
        List.find (fun (r : Rule.t) -> r.neg <> []) rules
      in
      [
        diag ?file ?loc:first.loc "W006"
          "this program uses negation: the checker verifies it \
           statically, but the evaluation engines reject it"
          ~suggestion:
            "stratified negation is analysis-only for now; rewrite the \
             program positively to evaluate it";
      ]
  in
  let e005 =
    List.concat_map
      (fun (r : Rule.t) ->
        match scc_of r.head.pred with
        | None -> []
        | Some scc ->
          List.filter_map
            (fun (a : Atom.t) ->
              if not (List.mem a.pred scc) then None
              else
                let witness =
                  match
                    find_path graph ~src:a.pred ~dst:r.head.pred ~within:scc
                  with
                  | Some path ->
                    Printf.sprintf " (cycle: %s -[not]-> %s)" r.head.pred
                      (String.concat " -> " path)
                  | None -> ""
                in
                Some
                  (diag ?file ?loc:r.loc "E005"
                     (Printf.sprintf
                        "unstratifiable: %s depends negatively on its own \
                         component through `not %s`%s" r.head.pred
                        (Format.asprintf "%a" Atom.pp a)
                        witness)
                     ~suggestion:
                       "break the cycle so the negated predicate is fully \
                        computed in a lower stratum"))
            r.neg)
      rules
  in
  (* Positive multi-predicate recursion is fine — the stratified engine
     runs the whole clique as one stratum — but a cycle witness is
     useful context, so report it as a note. *)
  let i004 =
    List.filter_map
      (fun scc ->
        match scc with
        | [] | [ _ ] -> None
        | first :: _ ->
          let witness =
            let deps =
              match List.assoc_opt first graph with Some d -> d | None -> []
            in
            let back =
              List.find_map
                (fun d ->
                  if List.mem d scc then
                    find_path graph ~src:d ~dst:first ~within:scc
                  else None)
                deps
            in
            (match back with
             | Some path -> first :: path
             | None -> scc)
          in
          let loc =
            match Program.rules_for p first with
            | (r : Rule.t) :: _ -> r.loc
            | [] -> None
          in
          Some
            (diag ?file ?loc "I004"
               (Printf.sprintf
                  "predicates {%s} are mutually recursive (cycle: %s); the \
                   stratified engine evaluates them as one stratum"
                  (String.concat ", " scc)
                  (String.concat " -> " witness))))
      sccs
  in
  w006 @ e005 @ i004

(* ------------------------------------------------------------------ *)
(* Sirup-shape and linearity classification                            *)
(* ------------------------------------------------------------------ *)

let classification ?file (p : Program.t) =
  match Analysis.as_sirup p with
  | Ok s ->
    let line (r : Rule.t) =
      match r.loc with
      | Some l -> Printf.sprintf "line %d" l
      | None -> "no source line"
    in
    [
      diag ?file ?loc:s.Analysis.rec_rule.Rule.loc "I001"
        (Printf.sprintf
           "linear sirup: predicate %s/%d (exit rule at %s, recursive rule \
            at %s); the Section 3-6 schemes (q, nocomm, wolfson, tradeoff) \
            apply" s.Analysis.pred
           (Array.length s.Analysis.head_vars)
           (line s.Analysis.exit_rule) (line s.Analysis.rec_rule));
    ]
  | Error (Analysis.Ill_formed _) ->
    (* The safety/arity passes already reported the underlying errors. *)
    []
  | Error reason ->
    let loc =
      match reason with
      | Analysis.Nonlinear_recursive_rule r
      | Analysis.Head_has_constants r
      | Analysis.Rec_atom_has_constants r -> r.Rule.loc
      | _ -> None
    in
    [
      diag ?file ?loc "I002"
        (Printf.sprintf
           "not a linear sirup: %s; the sirup-only schemes (q, nocomm, \
            wolfson, tradeoff) are unavailable"
           (Analysis.explain_not_sirup reason))
        ~suggestion:
          "the Section 7 general scheme (--scheme general) applies to any \
           safe positive program";
    ]

(* ------------------------------------------------------------------ *)
(* The full program-level pass pipeline                                *)
(* ------------------------------------------------------------------ *)

let check_program ?file ?goal p =
  arity ?file p
  @ safety ?file p
  @ stratification ?file p
  @ duplicates ?file p
  @ reachability ?file ?goal p
  @ classification ?file p
