open Datalog
open Pardatalog

type candidate = {
  scheme : Plan.scheme;
  cost : Plan.cost;
  communication_free : bool;
}

type outcome = {
  plan : Plan.t option;
  ranked : candidate list;
  diagnostics : Diagnostic.t list;
}

(* Ties in predicted cost break towards the non-redundant schemes, then
   towards the lexicographically first sequences — the ranking must be
   a function of the program and profile alone, so the cram-pinned JSON
   output never flaps. *)
let preference = function
  | Plan.Nocomm _ -> 0
  | Plan.Q _ -> 1
  | Plan.General -> 2
  | Plan.Tradeoff _ -> 3
  | Plan.Wolfson -> 4

let seq_key = function
  | Plan.Nocomm { ve; vr } | Plan.Q { ve; vr } ->
    String.concat "," ve ^ "/" ^ String.concat "," vr
  | Plan.Tradeoff { alpha } -> Printf.sprintf "%.3f" alpha
  | Plan.Wolfson | Plan.General -> ""

let compare_candidates a b =
  let c = Float.compare a.cost.Plan.total b.cost.Plan.total in
  if c <> 0 then c
  else
    let c = compare (preference a.scheme) (preference b.scheme) in
    if c <> 0 then c else compare (seq_key a.scheme) (seq_key b.scheme)

(* All non-empty subsets of a (small) position list, each sorted. *)
let subsets positions =
  List.fold_left
    (fun acc p -> acc @ List.map (fun s -> s @ [ p ]) acc)
    [ [] ] positions
  |> List.filter (fun s -> s <> [])

(* Candidate (ve, vr) pairs for scheme Q: for each usable subset of the
   recursive predicate's argument positions, discriminate the exit rule
   on the exit head's variables there and the recursive rule on the
   recursive atom's variables there — the shared hash then routes
   producers and consumers consistently. *)
let q_sequences (s : Analysis.sirup) =
  let exit_head = s.Analysis.exit_rule.Rule.head in
  let arity = Array.length s.Analysis.rec_vars in
  let usable =
    List.filter
      (fun p -> Term.is_var exit_head.Atom.args.(p))
      (List.init arity Fun.id)
  in
  (* Exhaustive up to arity 6 (63 subsets); singletons beyond that. *)
  let position_sets =
    if List.length usable <= 6 then subsets usable
    else List.map (fun p -> [ p ]) usable
  in
  let var_at (a : Atom.t) p =
    match a.Atom.args.(p) with Term.Var v -> v | Term.Const _ -> assert false
  in
  let pairs =
    List.map
      (fun ps ->
        ( List.map (var_at exit_head) ps,
          List.map (fun p -> s.Analysis.rec_vars.(p)) ps ))
      position_sets
  in
  List.sort_uniq compare pairs

let build ~nprocs ~seed scheme program =
  match scheme with
  | Plan.Nocomm _ -> Strategy.no_communication ~seed ~nprocs program
  | Plan.Q { ve; vr } -> Strategy.hash_q ~seed ~nprocs ~ve ~vr program
  | Plan.Wolfson -> Strategy.wolfson_redundant ~seed ~nprocs program
  | Plan.Tradeoff { alpha } -> Strategy.tradeoff ~seed ~nprocs ~alpha program
  | Plan.General -> Strategy.general ~seed ~nprocs program

let enumerate ?file ~nprocs ~seed program =
  ignore file;
  let schemes =
    match Analysis.as_sirup program with
    | Error _ -> [ Plan.General ]
    | Ok s ->
      let nocomm =
        match Dataflow.communication_free_choice s with
        | Some c ->
          [ Plan.Nocomm { ve = c.Dataflow.ve; vr = c.Dataflow.vr } ]
        | None -> []
      in
      let qs =
        List.filter_map
          (fun (ve, vr) ->
            (* Theorem 2 and Section 6 locality are exactly what the
               scheme checker verifies; any error kills the candidate. *)
            let report = Scheme.check_scheme ~ve ~vr program in
            if Diagnostic.(count Error report.Scheme.diagnostics) > 0 then
              None
            else Some (Plan.Q { ve; vr }))
          (q_sequences s)
      in
      let tradeoffs =
        List.map (fun alpha -> Plan.Tradeoff { alpha }) [ 0.25; 0.5; 0.75 ]
      in
      nocomm @ qs @ [ Plan.Wolfson ] @ tradeoffs @ [ Plan.General ]
  in
  (* Belt and braces: a candidate survives only if its Strategy
     constructor accepts — the same rebuild [Plan.verify] performs when
     the certificate is later presented to a runtime. *)
  List.filter
    (fun scheme -> Result.is_ok (build ~nprocs ~seed scheme program))
    schemes

let strata_of program ~coordination_free =
  List.map
    (fun preds ->
      let recursive =
        match preds with
        | [ p ] -> Analysis.mutually_recursive program p p
        | _ -> true
      in
      { Plan.preds; recursive; coordination_free })
    (Analysis.sccs program)

let pp_preds ppf preds =
  Format.fprintf ppf "{%s}" (String.concat ", " preds)

let diagnostics_of ?file ~nprocs best ranked strata =
  let info code msg = Diagnostic.make ?file ~code ~severity:Diagnostic.Info msg in
  let chosen =
    info "I110"
      (Format.asprintf
         "plan: %a for %d processors: %.1f messages/round, redundancy %.2f, \
          balance %.2f"
         Plan.pp_scheme best.scheme nprocs best.cost.Plan.messages
         best.cost.Plan.redundancy best.cost.Plan.balance)
  in
  let ranking =
    let runners = match ranked with _ :: tl -> tl | [] -> [] in
    let top =
      List.filteri (fun i _ -> i < 3) runners
      |> List.map (fun c ->
             Format.asprintf "%a (total %.1f)" Plan.pp_scheme c.scheme
               c.cost.Plan.total)
    in
    let detail =
      match top with
      | [] -> "no runner-up verified"
      | tops -> "runners-up: " ^ String.concat ", " tops
    in
    info "I111"
      (Printf.sprintf "plan: %d candidate scheme(s) verified; %s"
         (List.length ranked) detail)
  in
  let per_stratum =
    List.filter_map
      (fun (st : Plan.stratum) ->
        if st.Plan.coordination_free then
          Some
            (info "I112"
               (Format.asprintf
                  "stratum %a: coordination-free under the chosen scheme"
                  pp_preds st.Plan.preds))
        else if st.Plan.recursive then
          Some
            (Diagnostic.make ?file ~code:"W110"
               ~severity:Diagnostic.Warning
               ~suggestion:
                 "every round of this stratum's fixpoint exchanges tuples \
                  between processors; provide --edb statistics or restructure \
                  the recursion if communication dominates"
               (Format.asprintf
                  "stratum %a: needs a cross-processor exchange each round \
                   (barrier) under the chosen scheme"
                  pp_preds st.Plan.preds))
        else None)
      strata
  in
  (chosen :: ranking :: per_stratum)

let suggest ?file ?profile ?(nprocs = 4) ?(seed = 0) program =
  let schemes = enumerate ?file ~nprocs ~seed program in
  let ranked =
    List.map
      (fun scheme ->
        let cost = Costmodel.estimate ?profile ~nprocs ~scheme program in
        { scheme; cost; communication_free = cost.Plan.messages = 0. })
      schemes
    |> List.stable_sort compare_candidates
  in
  match ranked with
  | [] -> { plan = None; ranked = []; diagnostics = [] }
  | best :: _ ->
    let strata =
      strata_of program ~coordination_free:best.communication_free
    in
    let plan =
      Plan.make ~nprocs ~seed ~scheme:best.scheme ~cost:best.cost ~strata
        program
    in
    {
      plan = Some plan;
      ranked;
      diagnostics = diagnostics_of ?file ~nprocs best ranked strata;
    }
