type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  code : string;
  severity : severity;
  file : string option;
  loc : int option;
  message : string;
  suggestion : string option;
}

let make ?file ?loc ?suggestion ~code ~severity message =
  { code; severity; file; loc; message; suggestion }

(* The stable code registry: one line per code, with the paper result it
   enforces where there is one. Keep README.md's "Diagnostics" table in
   sync with this list. *)
let registry =
  [
    ("E001", "unsafe rule: head variable not bound in the positive body");
    ("E002", "unsafe rule: negated-atom variable not bound in the positive body");
    ("E003", "unsafe rule: guard variable not bound in the body");
    ("E004", "predicate used with inconsistent arities");
    ("E005", "unstratifiable: predicate depends negatively on itself");
    ("E101", "scheme checking requires a linear sirup (Sections 3-6)");
    ("E102",
     "discriminating-sequence variable not in the rule body \
      (Theorem 2 effectiveness precondition)");
    ("E103", "empty discriminating sequence");
    ("W001", "constants-only rule; no variable to discriminate on");
    ("W002", "duplicate rule (identical up to variable renaming)");
    ("W003", "unused base predicate: facts never read by any rule");
    ("W004", "unreachable derived predicate: feeds no output predicate");
    ("W005", "recursive component has no exit rule: provably empty");
    ("W006", "negation is analysed statically but rejected by the evaluators");
    ("W101",
     "v(r) not covered by the recursive atom: sending must broadcast \
      (Section 6 locality violated)");
    ("W102",
     "chosen scheme communicates although a communication-free choice \
      exists (Theorem 3)");
    ("I001", "program is a linear sirup (Sections 3-6 schemes apply)");
    ("I002", "not a linear sirup; the Section 7 general scheme still applies");
    ("I004", "mutually recursive clique, evaluated as one stratum");
    ("I100", "Theorem 2 preconditions hold: scheme q is non-redundant");
    ("I101", "choice matches a Theorem 3 cycle: communication-free \
              with a symmetric discriminating function");
    ("I102", "dataflow graph is acyclic: no communication-free choice \
              exists (Theorem 3)");
    ("I103", "Section 5 network prediction");
    ("I104", "predicted network has no cross-processor edge");
    ("I105", "network prediction unavailable for this discriminating \
              function");
    ("E201", "stale plan certificate: program hash mismatch");
    ("E202", "plan certificate's scheme no longer verifies against the \
              program");
    ("E203", "malformed plan certificate (bad JSON, schema or fields)");
    ("W110", "stratum needs a cross-processor exchange each round \
              (barrier) under the chosen scheme");
    ("I005", "reachability check (W004) skipped: no --goal given");
    ("I110", "synthesized plan: the chosen scheme and its predicted cost");
    ("I111", "plan candidate ranking (runners-up and their costs)");
    ("I112", "stratum is coordination-free under the chosen scheme");
  ]

let describe code = List.assoc_opt code registry

let severity_of_code code =
  if String.length code = 0 then Info
  else
    match code.[0] with
    | 'E' -> Error
    | 'W' -> Warning
    | _ -> Info

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let exit_code ~strict diags =
  if count Error diags > 0 then 1
  else if strict && count Warning diags > 0 then 1
  else 0

let pp ppf d =
  (match d.file, d.loc with
   | Some f, Some l -> Format.fprintf ppf "%s:%d: " f l
   | Some f, None -> Format.fprintf ppf "%s: " f
   | None, Some l -> Format.fprintf ppf "line %d: " l
   | None, None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code
    d.message;
  match d.suggestion with
  | Some s -> Format.fprintf ppf "@,  hint: %s" s
  | None -> ()

let pp_list ppf diags =
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) diags;
  Format.fprintf ppf "@]"

let pp_summary ppf diags =
  Format.fprintf ppf "%d error(s), %d warning(s), %d note(s)"
    (count Error diags) (count Warning diags) (count Info diags)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let field name value = Printf.sprintf "\"%s\":%s" name value in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let fields =
    [
      field "code" (str d.code);
      field "severity" (str (severity_to_string d.severity));
    ]
    @ (match d.file with Some f -> [ field "file" (str f) ] | None -> [])
    @ (match d.loc with Some l -> [ field "line" (string_of_int l) ] | None -> [])
    @ [ field "message" (str d.message) ]
    @ (match d.suggestion with
       | Some s -> [ field "suggestion" (str s) ]
       | None -> [])
  in
  "{" ^ String.concat "," fields ^ "}"

let list_to_json diags =
  "[" ^ String.concat ",\n " (List.map to_json diags) ^ "]"
