(** Scheme synthesis: enumerate, verify, rank.

    The planner closes the loop the checker opened: instead of
    verifying a user-supplied discriminating scheme, it {e enumerates}
    the candidate schemes the {!Pardatalog.Strategy} family offers —
    the Theorem 3 communication-free choice, every position-subset
    instantiation of the Section 3 scheme [Q], the Section 6 redundant
    scheme and tradeoff spectrum, and the Section 7 general scheme —
    rejects the ones that fail re-verification ({!Scheme.check_scheme}
    errors, notably Theorem 2's [E102]), scores the survivors with
    {!Costmodel.estimate}, and emits the winner as a
    {!Pardatalog.Plan.t} certificate plus I/W-series diagnostics:

    - [I110] — the chosen scheme and its predicted cost;
    - [I111] — the runner-up ranking (deterministic order);
    - [I112] — a stratum is coordination-free under the chosen scheme;
    - [W110] — a recursive stratum forces a cross-processor exchange
      every round (a barrier) under every surviving scheme. *)

open Datalog
open Pardatalog

type candidate = {
  scheme : Plan.scheme;
  cost : Plan.cost;
  communication_free : bool;
}

type outcome = {
  plan : Plan.t option;
      (** [None] when no candidate verifies (e.g. the program fails
          {!Program.check}). *)
  ranked : candidate list;  (** Every survivor, best first. *)
  diagnostics : Diagnostic.t list;
}

val suggest :
  ?file:string ->
  ?profile:Costmodel.profile ->
  ?nprocs:int ->
  ?seed:int ->
  Program.t ->
  outcome
(** [nprocs] defaults to 4, [seed] to 0 — both are stamped into the
    certificate. The ranking is deterministic: ties in predicted total
    cost break towards the non-redundant schemes
    ([nocomm < q < general < tradeoff < wolfson]) and then towards the
    lexicographically first discriminating sequence. *)
