(** Static verification of a discriminating-scheme choice for a linear
    sirup (Sections 3–6 of the paper).

    Given the discriminating sequences [ve] (exit rule) and [vr]
    (recursive rule) — and optionally the symbolic shape of the
    discriminating function — the checker:

    - verifies the Theorem 2 effectiveness preconditions (every
      sequence variable bound in its rule's body → [E102]/[I100]);
    - checks Section 6 locality ([vr] covered by the recursive atom,
      else the runtime broadcasts → [W101]);
    - decides Theorem 3: whether the chosen sequences discriminate on a
      dataflow-graph cycle ([I101]), and if not, whether a
      communication-free choice exists that the user is forgoing
      ([W102]) or none exists at all ([I102]);
    - predicts the minimal network graph of Section 5 when the
      function's spec allows it ([I103]/[I104]/[I105]). *)

open Datalog
open Pardatalog

type report = {
  diagnostics : Diagnostic.t list;
  sirup : Analysis.sirup option;  (** [None] iff [E101] was reported. *)
  free_choice : Dataflow.free_choice option;
      (** The Theorem 3 choice, when the dataflow graph has a usable
          cycle — independent of the sequences under check. *)
  communication_free : bool;
      (** Whether the {e chosen} [ve]/[vr] lie on a dataflow cycle, so a
          symmetric discriminating function makes the run message-free. *)
  predicted : Netgraph.t option;  (** The Section 5 minimal network. *)
}

val check_scheme :
  ?file:string ->
  ?spec:Hash_fn.spec ->
  ve:string list ->
  vr:string list ->
  Program.t ->
  report
(** [spec] defaults to {!Hash_fn.Opaque} (no network prediction). *)
