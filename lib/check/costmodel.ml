open Datalog
open Pardatalog

type pstat = {
  cardinality : int;
  max_freq : int array;
}

type profile = (string * pstat) list

let profile_of_db db =
  List.map
    (fun pred ->
      let rel = Database.get db pred in
      let arity = Relation.arity rel in
      let counts = Array.init arity (fun _ -> Hashtbl.create 64) in
      Relation.iter
        (fun t ->
          for col = 0 to arity - 1 do
            let tbl = counts.(col) in
            let c = Tuple.get t col in
            let n = try Hashtbl.find tbl c with Not_found -> 0 in
            Hashtbl.replace tbl c (n + 1)
          done)
        rel;
      let max_freq =
        Array.map
          (fun tbl -> Hashtbl.fold (fun _ n acc -> max n acc) tbl 0)
          counts
      in
      (pred, { cardinality = Relation.cardinal rel; max_freq }))
    (Database.predicates db)

let default_volume = 100.

(* The volume proxy [T]: how many tuples a round moves around. With a
   profile, the base relations feeding the recursive rules bound the
   first round's joins and (for the linear schemes) every later round's
   join fan-in; without one, a nominal constant — candidates are scored
   against each other on the same program, so only ratios matter. *)
let tuple_volume ?profile (p : Program.t) =
  match profile with
  | None -> default_volume
  | Some prof ->
    let derived = Program.derived_predicates p in
    let recursive_rules =
      List.filter (Analysis.is_recursive_rule p) p.Program.rules
    in
    let rules = if recursive_rules = [] then p.Program.rules else recursive_rules in
    let preds =
      List.sort_uniq String.compare
        (List.concat_map
           (fun (r : Rule.t) ->
             List.filter_map
               (fun (a : Atom.t) ->
                 if List.mem a.Atom.pred derived then None else Some a.Atom.pred)
               r.Rule.body)
           rules)
    in
    let sum =
      List.fold_left
        (fun acc pred ->
          match List.assoc_opt pred prof with
          | Some st -> acc + st.cardinality
          | None -> acc)
        0 preds
    in
    if sum = 0 then default_volume else float_of_int sum

(* The fraction of routed volume the hash's most loaded bucket must
   receive: the top value of any single routing column is a lower bound
   on the top joint key's frequency — we take the tightest such bound
   over every base occurrence of every routing variable. *)
let top_key_ratio ~profile ~(atoms : Atom.t list) vars =
  match (profile, vars) with
  | None, _ | _, [] -> None
  | Some prof, vars ->
    let ratio_of v =
      List.fold_left
        (fun acc (a : Atom.t) ->
          match List.assoc_opt a.Atom.pred prof with
          | None -> acc
          | Some st when st.cardinality = 0 -> acc
          | Some st ->
            let best = ref acc in
            Array.iteri
              (fun col arg ->
                if arg = Term.Var v then
                  let r =
                    float_of_int st.max_freq.(col)
                    /. float_of_int st.cardinality
                  in
                  match !best with
                  | None -> best := Some r
                  | Some b -> if r < b then best := Some r)
              a.Atom.args;
            !best)
        None atoms
    in
    List.fold_left
      (fun acc v ->
        match (ratio_of v, acc) with
        | None, acc -> acc
        | (Some _ as r), None -> r
        | Some r, Some b -> Some (min r b))
      None vars

let balance_of ~profile ~nprocs routes =
  let worst =
    List.fold_left
      (fun acc (vars, atoms) ->
        match top_key_ratio ~profile ~atoms vars with
        | None -> acc
        | Some ratio -> max acc (ratio *. float_of_int nprocs))
      1.0 routes
  in
  max 1.0 worst

let base_atoms_of derived (r : Rule.t) =
  List.filter (fun (a : Atom.t) -> not (List.mem a.Atom.pred derived)) r.Rule.body

(* Default Section 7 choice, mirrored from [Strategy.general]: each
   rule discriminates on its first derived body atom's variables, or on
   its first body atom's when it has none. *)
let general_choice derived (r : Rule.t) =
  match
    List.find_opt (fun (a : Atom.t) -> List.mem a.Atom.pred derived) r.Rule.body
  with
  | Some a -> Atom.vars a
  | None -> ( match r.Rule.body with a :: _ -> Atom.vars a | [] -> [])

let estimate ?profile ~nprocs ~scheme (p : Program.t) =
  let n = float_of_int nprocs in
  let t = tuple_volume ?profile p in
  let unicast = t *. (1. -. (1. /. n)) in
  let derived = Program.derived_predicates p in
  let sirup = Result.to_option (Analysis.as_sirup p) in
  let exit_routes (s : Analysis.sirup) vars =
    (vars, base_atoms_of derived s.Analysis.exit_rule)
  in
  let rec_routes (s : Analysis.sirup) vars =
    (vars, base_atoms_of derived s.Analysis.rec_rule)
  in
  let messages, redundancy, routes =
    match (scheme, sirup) with
    | Plan.Nocomm { ve; vr }, Some s ->
      (0., 0., [ exit_routes s ve; rec_routes s vr ])
    | Plan.Q { ve; vr }, Some s ->
      let covered =
        Discriminant.covered_positions vr s.Analysis.rec_atom <> None
      in
      let m = if covered then unicast else t *. (n -. 1.) in
      (m, 0., [ exit_routes s ve; rec_routes s vr ])
    | Plan.Wolfson, Some s ->
      (0., 1., [ exit_routes s (Rule.head_vars s.Analysis.exit_rule) ])
    | Plan.Tradeoff { alpha }, Some s ->
      ( (1. -. alpha) *. unicast,
        alpha,
        [ rec_routes s (Array.to_list s.Analysis.rec_vars) ] )
    | (Plan.General, _ | _, None) ->
      let with_derived =
        List.filter
          (fun (r : Rule.t) ->
            List.exists
              (fun (a : Atom.t) -> List.mem a.Atom.pred derived)
              r.Rule.body)
          p.Program.rules
      in
      let m = float_of_int (List.length with_derived) *. unicast in
      let routes =
        List.map
          (fun (r : Rule.t) ->
            (general_choice derived r, base_atoms_of derived r))
          p.Program.rules
      in
      (m, 0., routes)
  in
  let balance = balance_of ~profile ~nprocs routes in
  let total =
    messages +. (0.8 *. redundancy *. t) +. (0.5 *. (balance -. 1.) *. t)
  in
  { Plan.messages; redundancy; balance; total }
