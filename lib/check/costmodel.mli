(** A flat cost model for candidate parallelization schemes.

    The planner ({!Planner}) scores every candidate scheme with
    {!estimate} and ranks by the [total] field of the resulting
    {!Pardatalog.Plan.cost}. The model is deliberately coarse — its job
    is to order candidates, not to predict wall-clock time — and rests
    on three per-round quantities for [N] processors and a per-round
    tuple-volume proxy [T]:

    - {b messages}: [0] for the communication-free schemes (Theorem 3's
      cycle choice; Section 6's redundant scheme), [T·(1 − 1/N)] for a
      covered hash route (each tuple lands elsewhere with probability
      [1 − 1/N]), [T·(N − 1)] when the sequence is not covered by the
      recursive atom and sending must broadcast (W101), scaled by
      [1 − α] for the Section 6 tradeoff;
    - {b redundancy}: the duplicated-work fraction α — [1] for the
      Wolfson scheme, α for the tradeoff, [0] for the non-redundant
      schemes;
    - {b balance}: the predicted max/mean processor load ratio under
      the scheme's routing hash, read off an optional EDB {!profile}
      (without one every scheme balances perfectly and the model is
      purely structural).

    [T] is the sum of the recursive rules' base-predicate cardinalities
    when a profile is given, else a nominal 100. The scalarization is
    [total = messages + 0.8·redundancy·T + 0.5·(balance − 1)·T]. *)

open Datalog
open Pardatalog

type pstat = {
  cardinality : int;
  max_freq : int array;
      (** Per column: the frequency of the most frequent value — the
          skew witness a routing hash cannot spread. *)
}

type profile = (string * pstat) list
(** Per-predicate statistics, sorted by predicate. *)

val profile_of_db : Database.t -> profile
(** Scan an EDB once, collecting cardinalities and per-column top value
    frequencies. *)

val tuple_volume : ?profile:profile -> Program.t -> float
(** The volume proxy [T] above. *)

val estimate :
  ?profile:profile -> nprocs:int -> scheme:Plan.scheme -> Program.t ->
  Plan.cost
(** Score one candidate. The scheme is assumed to have passed
    verification ({!Scheme.check_scheme} / {!Pardatalog.Plan.verify});
    the estimate of an inapplicable scheme is meaningless. *)
