(** Structured findings of the static checker.

    Every finding carries a stable code ([E…] errors, [W…] warnings,
    [I…] informational notes), an optional source location, a message,
    and an optional suggested fix, so tooling can consume the output
    ([--json]) and CI can gate on it ([--strict]). *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type t = {
  code : string;  (** Stable diagnostic code, e.g. ["E001"]. *)
  severity : severity;
  file : string option;
  loc : int option;  (** 1-based source line. *)
  message : string;
  suggestion : string option;  (** An actionable fix, when there is one. *)
}

val make :
  ?file:string -> ?loc:int -> ?suggestion:string ->
  code:string -> severity:severity -> string -> t

val registry : (string * string) list
(** Every code with its one-line description (the table printed by
    [datalogp check --codes] and mirrored in README.md). *)

val describe : string -> string option
val severity_of_code : string -> severity

val count : severity -> t list -> int

val exit_code : strict:bool -> t list -> int
(** [1] when there are errors, or (under [--strict]) warnings; [0]
    otherwise. Info notes never fail a run. *)

val pp : Format.formatter -> t -> unit
(** ["file:line: severity[CODE]: message"], with a trailing hint line
    when a suggestion is present. *)

val pp_list : Format.formatter -> t list -> unit
val pp_summary : Format.formatter -> t list -> unit

val to_json : t -> string
val list_to_json : t list -> string
