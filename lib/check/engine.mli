(** The program-level diagnostic passes of [datalogp check].

    [check_program] runs, in order: arity/symbol consistency ([E004]),
    safety and range restriction ([E001]–[E003], [W001]),
    stratification over the signed dependency graph ([E005] with a
    negative-cycle witness, [W006], [I004]), duplicate-rule detection
    up to variable renaming ([W002]), unused and unreachable predicates
    and provably-empty recursive components ([W003]–[W005]), and
    sirup-shape classification ([I001]/[I002]).

    Scheme-specific checks (Theorems 2 and 3, Section 5) live in
    {!Scheme}. *)

open Datalog

val check_program :
  ?file:string -> ?goal:string -> Program.t -> Diagnostic.t list
(** Diagnostics in pass order; an empty list means a clean program.

    [goal] designates the output predicate (the paper's programs each
    compute one): reachability is then the backward closure from it,
    which is what lets [W004] flag derived predicates the goal never
    uses. Without it, every predicate no rule reads counts as an
    output, [W004] can never fire, and an [I005] note records that the
    reachability check was skipped. *)
