open Datalog
open Pardatalog

let diag ?file ?loc ?suggestion code msg =
  Diagnostic.make ?file ?loc ?suggestion ~code
    ~severity:(Diagnostic.severity_of_code code) msg

type report = {
  diagnostics : Diagnostic.t list;
  sirup : Analysis.sirup option;
  free_choice : Dataflow.free_choice option;
  communication_free : bool;
  predicted : Netgraph.t option;
}

let seq vars = "(" ^ String.concat ", " vars ^ ")"

(* ------------------------------------------------------------------ *)
(* Theorem 2: effectiveness preconditions                              *)
(* ------------------------------------------------------------------ *)

(* Every variable of a discriminating sequence must appear in a body
   atom of its rule; the rewritten, guarded rule is then safe and the
   scheme-q execution computes S(P) exactly (Theorem 2). *)
let theorem2 ?file (s : Analysis.sirup) ~ve ~vr =
  let missing (r : Rule.t) which vars =
    let bvs = Rule.body_vars r in
    List.filter_map
      (fun v ->
        if List.mem v bvs then None
        else
          Some
            (diag ?file ?loc:r.Rule.loc "E102"
               (Printf.sprintf
                  "variable %s of the %s discriminating sequence %s does \
                   not appear in the body of `%s`: the guarded rewriting \
                   is not effective (Theorem 2)" v which (seq vars)
                  (Rule.to_string r))
               ~suggestion:
                 "discriminate only on variables the rule's body binds"))
      vars
  in
  missing s.Analysis.exit_rule "exit" ve
  @ missing s.Analysis.rec_rule "recursive" vr

(* ------------------------------------------------------------------ *)
(* Theorem 3: is the chosen (ve, vr) itself communication-free?        *)
(* ------------------------------------------------------------------ *)

(* The chosen sequences are communication-free (with a symmetric
   discriminating function) exactly when there are distinct argument
   positions q₁ … qₖ forming a dataflow cycle q₁ → q₂ → … → qₖ → q₁
   with vr = (Y_{q₁}, …, Y_{qₖ}) and ve the exit head's variables at
   the same positions. Search the (tiny) position space directly. *)
let chosen_cycle (s : Analysis.sirup) (df : Dataflow.t) ~ve ~vr =
  let k = List.length vr in
  if k = 0 || List.length ve <> k then None
  else
    let ve = Array.of_list ve and vr = Array.of_list vr in
    let exit_head_var q =
      match s.Analysis.exit_rule.Rule.head.Atom.args.(q - 1) with
      | Term.Var v -> Some v
      | _ -> None
    in
    let positions = List.init df.Dataflow.arity (fun i -> i + 1) in
    let candidates i =
      List.filter
        (fun q ->
          String.equal s.Analysis.rec_vars.(q - 1) vr.(i)
          && exit_head_var q = Some ve.(i))
        positions
    in
    let edge a b = List.mem (a, b) df.Dataflow.edges in
    let chosen = Array.make k 0 in
    let rec go i =
      if i = k then edge chosen.(k - 1) chosen.(0)
      else
        List.exists
          (fun q ->
            (not (Array.exists (Int.equal q) (Array.sub chosen 0 i)))
            && (i = 0 || edge chosen.(i - 1) q)
            && begin
              chosen.(i) <- q;
              go (i + 1)
            end)
          (candidates i)
    in
    if go 0 then Some (Array.to_list chosen) else None

(* ------------------------------------------------------------------ *)
(* The full scheme check                                               *)
(* ------------------------------------------------------------------ *)

let check_scheme ?file ?(spec = Hash_fn.Opaque) ~ve ~vr program =
  match Analysis.as_sirup program with
  | Error reason ->
    let loc =
      match reason with
      | Analysis.Nonlinear_recursive_rule r
      | Analysis.Head_has_constants r
      | Analysis.Rec_atom_has_constants r -> r.Rule.loc
      | _ -> None
    in
    {
      diagnostics =
        [
          diag ?file ?loc "E101"
            (Printf.sprintf
               "scheme checking requires a linear sirup (Sections 3-6): %s"
               (Analysis.explain_not_sirup reason))
            ~suggestion:
              "the Section 7 general scheme (--scheme general) partitions \
               rule instances of any safe program; per-scheme static \
               checks do not apply to it";
        ];
      sirup = None;
      free_choice = None;
      communication_free = false;
      predicted = None;
    }
  | Ok s ->
    let df = Dataflow.of_sirup s in
    let fc = Dataflow.communication_free_choice s in
    let e103 =
      List.filter_map
        (fun (which, vars, (r : Rule.t)) ->
          if vars = [] then
            Some
              (diag ?file ?loc:r.loc "E103"
                 (Printf.sprintf
                    "the %s discriminating sequence is empty: every \
                     instance of `%s` lands on one processor" which
                    (Rule.to_string r))
                 ~suggestion:
                   "discriminate on at least one variable (see `datalogp \
                    dataflow` for the Theorem 3 choice)")
          else None)
        [ ("exit", ve, s.Analysis.exit_rule);
          ("recursive", vr, s.Analysis.rec_rule) ]
    in
    if e103 <> [] then
      { diagnostics = e103; sirup = Some s; free_choice = fc;
        communication_free = false; predicted = None }
    else begin
      let e102 = theorem2 ?file s ~ve ~vr in
      let i100 =
        if e102 = [] then
          [
            diag ?file "I100"
              (Printf.sprintf
                 "Theorem 2 holds for ve=%s, vr=%s: every sequence \
                  variable is bound in its rule's body, so scheme q is \
                  non-redundant (each instantiation runs on exactly one \
                  processor)" (seq ve) (seq vr));
          ]
        else []
      in
      let w101 =
        match Discriminant.covered_positions vr s.Analysis.rec_atom with
        | Some _ -> []
        | None ->
          [
            diag ?file ?loc:s.Analysis.rec_rule.Rule.loc "W101"
              (Printf.sprintf
                 "vr=%s is not covered by the recursive atom %s: a \
                  produced tuple does not determine its consumer, so the \
                  runtime must broadcast (Section 6 locality is violated)"
                 (seq vr)
                 (Format.asprintf "%a" Atom.pp s.Analysis.rec_atom))
              ~suggestion:
                "choose vr among the recursive atom's variables so tuples \
                 can be routed point-to-point";
          ]
      in
      let cycle = chosen_cycle s df ~ve ~vr in
      let theorem3 =
        match cycle, fc with
        | Some positions, _ ->
          [
            diag ?file "I101"
              (Printf.sprintf
                 "ve/vr discriminate on the dataflow cycle %s: with a \
                  symmetric discriminating function the execution is \
                  communication-free (Theorem 3)"
                 (String.concat " -> "
                    (List.map string_of_int
                       (positions @ [ List.hd positions ]))));
          ]
        | None, Some free ->
          [
            diag ?file "W102"
              (Printf.sprintf
                 "this choice communicates although a communication-free \
                  one exists: discriminating on cycle positions %s with \
                  ve=%s, vr=%s needs no inter-processor messages \
                  (Theorem 3)"
                 (String.concat " -> "
                    (List.map string_of_int
                       (free.Dataflow.cycle @ [ List.hd free.Dataflow.cycle ])))
                 (seq free.Dataflow.ve) (seq free.Dataflow.vr))
              ~suggestion:
                (Printf.sprintf
                   "run with --scheme nocomm, or pass --ve %s --vr %s"
                   (String.concat "," free.Dataflow.ve)
                   (String.concat "," free.Dataflow.vr));
          ]
        | None, None ->
          let msg =
            match Dataflow.find_cycle df with
            | None ->
              "the dataflow graph is acyclic: no communication-free \
               choice exists, every discriminating choice communicates \
               on some database (Theorem 3)"
            | Some _ ->
              "the dataflow graph has a cycle, but the exit head carries \
               a constant at a cycle position: no communication-free \
               choice is available (Theorem 3)"
          in
          [ diag ?file "I102" msg ]
      in
      let predicted, prediction =
        match
          Derive.minimal_network { Derive.sirup = s; ve; vr; spec }
        with
        | Ok net ->
          let cross = Netgraph.without_self net in
          let i103 =
            diag ?file "I103"
              (Printf.sprintf
                 "Section 5 prediction: over %d processors the minimal \
                  network has %d edge(s), %d cross-processor: %s"
                 (Pid.size (Netgraph.space net))
                 (Netgraph.edge_count net)
                 (Netgraph.edge_count cross)
                 (Format.asprintf "@[<h>%a@]" Netgraph.pp net))
          in
          let i104 =
            if Netgraph.edge_count cross = 0 then
              [
                diag ?file "I104"
                  "the predicted network has no cross-processor edge: \
                   the execution is communication-free for every \
                   database";
              ]
            else []
          in
          (Some net, i103 :: i104)
        | Error e ->
          ( None,
            [
              diag ?file "I105"
                (Printf.sprintf
                   "no Section 5 network prediction: %s" e)
                ~suggestion:
                  "predictions need a bitvec or linear discriminating \
                   function with vr covered by the recursive atom";
            ] )
      in
      {
        diagnostics = e102 @ i100 @ w101 @ theorem3 @ prediction;
        sirup = Some s;
        free_choice = fc;
        communication_free = cycle <> None;
        predicted;
      }
    end
