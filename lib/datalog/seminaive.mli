(** Incremental semi-naive evaluation.

    The engine enumerates every successful ground substitution of every
    rule exactly once: an iteration fires, for each rule and each body
    position [m] holding a changed predicate, the variant in which
    atoms before [m] read the pre-iteration state, atom [m] reads the
    delta, and atoms after [m] read their union.

    Besides whole-program evaluation ({!evaluate}), the engine exposes
    an incremental interface — {!inject} external tuples, {!step} one
    iteration, observe the newly derived tuples — which is exactly what
    the parallel runtimes need to drive one processor's program:
    received tuples are injected, one iteration is run, and the fresh
    tuples are routed to the channels. *)

type stats = {
  iterations : int;  (** Delta steps executed (bootstrap excluded). *)
  firings : int;
      (** Successful ground substitutions enumerated, guards included —
          the quantity of Definition 4 / Theorems 2 and 6. *)
  new_tuples : int;  (** Distinct derived tuples produced. *)
  duplicate_firings : int;
      (** Firings whose head tuple had already been derived. *)
}

val pp_stats : Format.formatter -> stats -> unit

type t

val create :
  ?pushdown:bool -> ?reorder:bool -> ?intern:bool -> Program.t ->
  edb:Database.t -> t
(** Build an engine over a copy of [edb]. Base-predicate facts of the
    program are loaded into the database; derived-predicate facts are
    queued as if injected. [pushdown] and [reorder] are passed to
    {!Joiner.compile}. [intern] (default [true]) routes every derived
    or injected tuple through a per-engine {!Arena}, so equal tuples
    share one physical value and dedup probes short-circuit on pointer
    equality; [~intern:false] keeps the pre-arena behaviour (results
    and statistics are identical — property-tested).
    @raise Invalid_argument if the program fails {!Program.check}. *)

val inject : t -> string -> Tuple.t -> bool
(** Queue an externally produced tuple (e.g. received from another
    processor). Returns [false] when the tuple is already known (in
    the database or already queued) — such tuples are discarded, which
    implements the receive-step duplicate elimination of the paper. *)

val bootstrap : t -> (string * Tuple.t) list
(** Fire every rule once against the initial database and queue the
    results. Returns the newly queued (pred, tuple) pairs. Must be
    called exactly once, before the first {!step}. *)

val step : t -> (string * Tuple.t) list
(** Run one semi-naive iteration over the queued tuples; returns the
    newly derived (previously unknown) tuples, which are left queued
    for the next step. An empty result with an empty queue means local
    fixpoint. *)

val has_pending : t -> bool
(** Whether any tuple is queued for the next step. *)

val run_to_fixpoint : t -> unit
(** {!bootstrap} (if not yet done) then {!step} until quiescent. *)

val resume : t -> (string * Tuple.t) list
(** Drive the pending delta to a local fixpoint and return every tuple
    newly derived along the way, in derivation order. Work is
    proportional to the consequences of the queued tuples, not the
    store: a quiescent engine returns [[]] immediately. This is the
    live-session primitive — {!inject} a small update batch, [resume],
    and only the rules the batch can reach re-fire.
    @raise Invalid_argument before {!bootstrap}. *)

val retract_facts : t -> (string * Tuple.t) list -> int
(** Remove concrete facts from the engine's store (pairs naming absent
    tuples or unknown predicates are ignored); returns how many tuples
    were actually removed. Every predicate's window is re-pinned to
    the post-removal store, so nothing is left pending. Only legal on
    a quiescent engine — this installs a net-deletion patch computed
    by the incremental maintenance layer ({!Stratified.Live}); it does
    not itself propagate consequences.
    @raise Invalid_argument if the engine has pending work. *)

val database : t -> Database.t
(** A fresh snapshot of the engine's database: base relations plus
    every derived tuple known so far, including still-queued ones. *)

type snapshot
(** A resumable checkpoint: the processed database and the pending
    delta, kept separate so that {!restore} resumes the semi-naive
    induction exactly where it stopped (a merged snapshot would lose
    the firings the pending tuples still owe). *)

val snapshot : t -> snapshot
(** Copy the engine's state. The engine is unaffected and the snapshot
    does not alias it. *)

val restore :
  ?pushdown:bool -> ?reorder:bool -> ?intern:bool -> Program.t ->
  snapshot -> t
(** A fresh engine resuming from a {!snapshot} of an engine running
    the same program: processed relations, pending delta and the
    bootstrapped flag are restored; statistics restart from zero (the
    caller accounts for work lost with the dead engine). The snapshot
    may be restored any number of times.
    @raise Invalid_argument if the program fails {!Program.check}. *)

val stats : t -> stats

val join_probes : t -> int
(** Sum of {!Joiner.probes} over the engine's plans: the candidate
    tuples scanned by the join machinery so far. *)

val per_rule_firings : t -> (Rule.t * int) list
(** Successful ground substitutions per rule, in program order — e.g.
    to compare exit-rule and recursive-rule workloads. *)

val evaluate :
  ?pushdown:bool -> ?reorder:bool -> ?intern:bool -> Program.t ->
  Database.t -> Database.t * stats
(** One-shot sequential evaluation: the least model plus statistics.
    The input database is not modified. *)

val arena_stats : t -> (int * int * int) option
(** [(size, hits, misses)] of the engine's interning arena, [None]
    when the engine runs with [~intern:false]. Test hook. *)


