type op = Insert | Delete

let pp_op ppf = function
  | Insert -> Format.pp_print_string ppf "+"
  | Delete -> Format.pp_print_string ppf "-"

type update = { u_op : op; u_pred : string; u_tuple : Tuple.t }

module Batch = struct
  (* Updates in arrival order: the order matters until [normalize]
     collapses the batch to its net effect (last write wins). *)
  type t = update list

  let empty : t = []
  let is_empty (b : t) = b = []
  let size (b : t) = List.length b
  let of_list l = l
  let to_list (b : t) = b
  let add b op pred tuple = b @ [ { u_op = op; u_pred = pred; u_tuple = tuple } ]
  let insert pred tuple = { u_op = Insert; u_pred = pred; u_tuple = tuple }
  let delete pred tuple = { u_op = Delete; u_pred = pred; u_tuple = tuple }

  let preds (b : t) =
    List.sort_uniq String.compare (List.map (fun u -> u.u_pred) b)

  (* Net effect of the batch against the current store: the last
     operation on each (pred, tuple) wins, and operations that would
     not change the store — inserting a present tuple, deleting an
     absent one — are dropped. The result is a pair of disjoint
     effective (insertions, deletions); an idempotent re-application of
     the same batch therefore normalizes to nothing. *)
  let normalize (b : t) ~present =
    let module K = struct
      type t = string * Tuple.t

      let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
      let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
    end in
    let module Ktbl = Hashtbl.Make (K) in
    let last = Ktbl.create (max 16 (List.length b)) in
    let order = ref [] in
    List.iter
      (fun u ->
        let key = (u.u_pred, u.u_tuple) in
        if not (Ktbl.mem last key) then order := key :: !order;
        Ktbl.replace last key u.u_op)
      b;
    let adds = ref [] and rems = ref [] in
    List.iter
      (fun ((pred, tuple) as key) ->
        match Ktbl.find last key with
        | Insert -> if not (present pred tuple) then adds := (pred, tuple) :: !adds
        | Delete -> if present pred tuple then rems := (pred, tuple) :: !rems)
      (List.rev !order);
    (List.rev !adds, List.rev !rems)
end

(* ------------------------------------------------------------------ *)
(* Per-predicate change logs                                          *)

module Log = struct
  type entry = { e_op : op; e_tuple : Tuple.t }

  (* One append-only Vec of signed entries per predicate, with a
     consumer watermark — the same shape as the semi-naive marks over
     Relation stores: [0, l_mark) is history already drained, the
     suffix is the pending change set of the current batch. *)
  type pred_log = {
    l_entries : entry Vec.t;
    mutable l_mark : int;
  }

  type t = (string, pred_log) Hashtbl.t

  let dummy = { e_op = Insert; e_tuple = Tuple.of_list [] }

  let create () : t = Hashtbl.create 16

  let log_of (t : t) pred =
    match Hashtbl.find_opt t pred with
    | Some l -> l
    | None ->
      let l = { l_entries = Vec.create ~capacity:8 ~dummy (); l_mark = 0 } in
      Hashtbl.add t pred l;
      l

  let record t pred op tuple =
    let l = log_of t pred in
    Vec.push l.l_entries { e_op = op; e_tuple = tuple }

  let pending_count (t : t) =
    Hashtbl.fold
      (fun _ l acc -> acc + (Vec.length l.l_entries - l.l_mark))
      t 0

  (* Drain the pending suffix of every predicate's log, advancing the
     watermark; each entry is visited once across all drains. *)
  let drain (t : t) f =
    Hashtbl.iter
      (fun pred l ->
        let n = Vec.length l.l_entries in
        for i = l.l_mark to n - 1 do
          let e = Vec.unsafe_get l.l_entries i in
          f pred e.e_op e.e_tuple
        done;
        l.l_mark <- n)
      t

  let total (t : t) =
    Hashtbl.fold (fun _ l acc -> acc + Vec.length l.l_entries) t 0
end

(* ------------------------------------------------------------------ *)
(* Per-batch accounting                                               *)

type summary = {
  s_inserted : int;  (** Net tuples added to the model (base + derived). *)
  s_deleted : int;  (** Net tuples removed from the model. *)
  s_rederived : int;  (** DRed: overdeleted tuples saved by rederivation. *)
  s_overdeleted : int;  (** DRed: tuples provisionally deleted. *)
  s_firings : int;  (** Incremental rule firings spent on the batch. *)
}

let empty_summary =
  { s_inserted = 0; s_deleted = 0; s_rederived = 0; s_overdeleted = 0;
    s_firings = 0 }

let add_summary a b =
  {
    s_inserted = a.s_inserted + b.s_inserted;
    s_deleted = a.s_deleted + b.s_deleted;
    s_rederived = a.s_rederived + b.s_rederived;
    s_overdeleted = a.s_overdeleted + b.s_overdeleted;
    s_firings = a.s_firings + b.s_firings;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[inserted=%d deleted=%d overdeleted=%d rederived=%d firings=%d@]"
    s.s_inserted s.s_deleted s.s_overdeleted s.s_rederived s.s_firings
