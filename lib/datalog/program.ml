type t = {
  rules : Rule.t list;
  facts : (string * Tuple.t) list;
}

let make ?(facts = []) rules = { rules; facts }
let rules p = p.rules

let derived_predicates p =
  List.map (fun (r : Rule.t) -> r.head.pred) p.rules
  |> List.sort_uniq String.compare

let all_preds_with_arity p =
  let from_atom (a : Atom.t) = (a.pred, Atom.arity a) in
  List.concat_map
    (fun (r : Rule.t) ->
      from_atom r.head :: List.map from_atom (r.body @ r.neg))
    p.rules
  @ List.map (fun (pred, t) -> (pred, Tuple.arity t)) p.facts

let predicates p =
  List.map fst (all_preds_with_arity p) |> List.sort_uniq String.compare

let base_predicates p =
  let derived = derived_predicates p in
  List.filter (fun q -> not (List.mem q derived)) (predicates p)

let arities p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (pred, ar) ->
      match Hashtbl.find_opt tbl pred with
      | Some ar' when ar' <> ar ->
        invalid_arg
          (Printf.sprintf "Program.arities: %s used at arities %d and %d"
             pred ar' ar)
      | Some _ -> ()
      | None -> Hashtbl.add tbl pred ar)
    (all_preds_with_arity p);
  Hashtbl.fold (fun pred ar acc -> (pred, ar) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let check p =
  match arities p with
  | exception Invalid_argument msg -> Error msg
  | _ ->
    let negated = List.filter (fun (r : Rule.t) -> r.neg <> []) p.rules in
    (match negated with
     | r :: _ ->
       Error
         ("negation is not supported by the evaluation engines \
           (use `datalogp check` to analyse it): " ^ Rule.to_string r)
     | [] ->
       let unsafe = List.filter (fun r -> not (Rule.is_safe r)) p.rules in
       (match unsafe with
        | r :: _ -> Error ("unsafe rule: " ^ Rule.to_string r)
        | [] -> Ok ()))

let facts_db p =
  let db = Database.create () in
  List.iter (fun (pred, t) -> ignore (Database.add_fact db pred t)) p.facts;
  db

let rules_for p pred =
  List.filter (fun (r : Rule.t) -> String.equal r.head.pred pred) p.rules

let pp ppf p =
  let pp_fact ppf (pred, t) =
    if Tuple.arity t = 0 then Format.fprintf ppf "%s." pred
    else Format.fprintf ppf "%s%a." pred Tuple.pp t
  in
  Format.fprintf ppf "@[<v>%a%a%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Rule.pp)
    p.rules
    (fun ppf () ->
      if p.rules <> [] && p.facts <> [] then Format.pp_print_cut ppf ())
    ()
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_fact)
    p.facts
