(** Static analysis of Datalog programs: predicate dependencies,
    recursion structure, and recognition of linear sirups (the program
    class of Sections 3–6 of the paper). *)

val dependency_graph : Program.t -> (string * string list) list
(** For each derived predicate, the sorted list of predicates occurring
    in the bodies of its rules — negated occurrences included (i.e. the
    predicates that derive it). *)

val signed_dependency_graph :
  Program.t -> (string * (string * bool) list) list
(** Like {!dependency_graph} but each dependency carries whether it is
    through a negated atom ([true] = negative edge). Used by the static
    stratification check. *)

val sccs : Program.t -> string list list
(** Strongly connected components of the dependency graph restricted to
    derived predicates, in bottom-up topological order. Components are
    sorted internally. *)

val mutually_recursive : Program.t -> string -> string -> bool
(** Whether two derived predicates belong to the same SCC (a predicate
    is mutually recursive with itself iff it transitively derives
    itself). *)

val recursive_atoms : Program.t -> Rule.t -> Atom.t list
(** The body atoms of a rule whose predicate is in the same SCC as the
    rule's head predicate (and hence participate in the recursion). *)

val is_recursive_rule : Program.t -> Rule.t -> bool
val is_linear : Program.t -> bool
(** Every rule has at most one recursive body atom. *)

type sirup = {
  pred : string;  (** The single derived predicate [t]. *)
  exit_rule : Rule.t;
  rec_rule : Rule.t;
  head_vars : string array;  (** X̄: the recursive head's argument variables. *)
  rec_atom : Atom.t;  (** The unique [t]-atom in the recursive body. *)
  rec_vars : string array;  (** Ȳ: the recursive atom's argument variables. *)
  base_atoms : Atom.t list;  (** b₁ … bₖ. *)
}
(** The canonical form of a linear sirup:
    [e:  t(Z̄) :- s(Z̄).    r:  t(X̄) :- t(Ȳ), b₁, …, bₖ.] *)

type not_sirup =
  | Not_single_predicate of string list  (** The derived predicates found. *)
  | Ill_formed of string  (** {!Program.check} failure. *)
  | Wrong_rule_count of { recursive : int; exit : int }
  | Nonlinear_recursive_rule of Rule.t  (** More than one recursive atom. *)
  | Head_has_constants of Rule.t
  | Rec_atom_has_constants of Rule.t
(** Why a program is not a linear sirup — structured so diagnostics can
    point at the offending rule and suggest a remedy. *)

val explain_not_sirup : not_sirup -> string

val as_sirup : Program.t -> (sirup, not_sirup) result
(** Recognize a linear sirup: exactly one derived predicate, exactly two
    rules — one non-recursive (exit) and one with exactly one recursive
    atom — whose head and recursive-atom arguments are all variables,
    and both rules safe. *)

val as_sirup_string : Program.t -> (sirup, string) result
(** {!as_sirup} with the error rendered by {!explain_not_sirup}. *)
