(* ------------------------------------------------------------------ *)
(* Incremental maintenance (Stratified.Live) support machinery.

   The batch-update algorithms cannot reuse {!Joiner}: maintaining a
   model under deletions needs, for one body atom, the {e union} of
   several windows over several physical relations — the post-patch
   main store plus a scratch relation of just-removed tuples is the
   only faithful representation of the pre-batch state once the
   append-only store has been rebuilt. So the incremental layer runs
   its own backtracking join over per-atom {e source lists}: each
   source is a windowed, optionally filtered view of one relation, and
   a body atom matches against the concatenation of its sources. Index
   probes still go through {!Relation.matcher} on the positions bound
   by the environment, so the inner loop stays bucketed. *)

module Tset = Hashtbl.Make (Tuple)

module Lkey = struct
  type t = string * Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Tuple.equal t1 t2
  let hash (p, t) = (Hashtbl.hash p * 0x01000193) lxor Tuple.hash t
end

module Ltbl = Hashtbl.Make (Lkey)

type src = {
  sr_rel : Relation.t;
  sr_lo : int;
  sr_hi : int;  (* window [sr_lo, sr_hi) *)
  sr_skip : (Tuple.t -> bool) option;  (* drop candidates, post-window *)
}

let src_all rel =
  { sr_rel = rel; sr_lo = 0; sr_hi = Relation.cardinal rel; sr_skip = None }

let unify_tuple (args : Term.t array) env t =
  let n = Array.length args in
  let rec go k env =
    if k = n then Some env
    else
      match args.(k) with
      | Term.Const c ->
        if Const.equal c (Tuple.get t k) then go (k + 1) env else None
      | Term.Var v -> (
        let c = Tuple.get t k in
        match List.assoc_opt v env with
        | Some c' -> if Const.equal c c' then go (k + 1) env else None
        | None -> go (k + 1) ((v, c) :: env))
  in
  go 0 env

let instantiate_head (head : Atom.t) env =
  Tuple.make
    (Array.map
       (function
         | Term.Const c -> c
         | Term.Var v -> (
           match List.assoc_opt v env with
           | Some c -> c
           | None ->
             invalid_arg "Stratified: unsafe rule head variable"))
       head.Atom.args)

(* Probe one source for candidates compatible with [atom] under [env]:
   positions already bound (constants or bound variables) become an
   index key, the rest scan. *)
let probe_src s (atom : Atom.t) env f =
  let args = atom.Atom.args in
  let bound = ref [] in
  Array.iteri
    (fun k term ->
      match term with
      | Term.Const c -> bound := (k, c) :: !bound
      | Term.Var v -> (
        match List.assoc_opt v env with
        | Some c -> bound := (k, c) :: !bound
        | None -> ()))
    args;
  let each =
    match s.sr_skip with
    | None -> f
    | Some skip -> fun t -> if not (skip t) then f t
  in
  match List.rev !bound with
  | [] -> Relation.iter_range s.sr_rel ~lo:s.sr_lo ~hi:s.sr_hi each
  | bl ->
    let positions = Array.of_list (List.map fst bl) in
    let key = Array.of_list (List.map snd bl) in
    Relation.matcher s.sr_rel ~positions key ~lo:s.sr_lo ~hi:s.sr_hi each

(* Enumerate the ground substitutions of [rule]'s body where each atom
   draws from its own source list; [on_firing] sees the full
   environment of each success. [env] pre-binds variables (used by
   rederivation, which unifies the head with a concrete tuple). *)
let eval_body ?(env = []) (rule : Rule.t) (sources : src list array)
    ~on_firing =
  let body = Array.of_list rule.body in
  let n = Array.length body in
  let rec go i env =
    if i = n then on_firing env
    else
      let atom = body.(i) in
      List.iter
        (fun s ->
          probe_src s atom env (fun t ->
              match unify_tuple atom.Atom.args env t with
              | Some env' -> go (i + 1) env'
              | None -> ()))
        sources.(i)
  in
  go 0 env

exception Sat

let satisfiable ~env rule sources =
  match eval_body ~env rule sources ~on_firing:(fun _ -> raise Sat) with
  | () -> false
  | exception Sat -> true

let evaluate ?pushdown ?reorder program edb =
  (match Program.check program with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Stratified.evaluate: " ^ msg));
  let components = Analysis.sccs program in
  let db = Database.copy edb in
  ignore (Database.merge_into ~dst:db ~src:(Program.facts_db program));
  let totals =
    ref
      {
        Seminaive.iterations = 0;
        firings = 0;
        new_tuples = 0;
        duplicate_firings = 0;
      }
  in
  List.iter
    (fun component ->
      let rules =
        List.filter
          (fun (r : Rule.t) -> List.mem r.head.Atom.pred component)
          (Program.rules program)
      in
      if rules <> [] then begin
        (* Lower components' results are already in [db] and look
           extensional to this stratum. *)
        let engine =
          Seminaive.create ?pushdown ?reorder (Program.make rules) ~edb:db
        in
        Seminaive.run_to_fixpoint engine;
        let produced = Seminaive.database engine in
        List.iter
          (fun pred ->
            match Database.find produced pred with
            | Some rel ->
              let target =
                Database.declare db pred (Relation.arity rel)
              in
              ignore (Relation.add_all target rel)
            | None -> ())
          component;
        let s = Seminaive.stats engine in
        totals :=
          {
            Seminaive.iterations =
              !totals.Seminaive.iterations + s.Seminaive.iterations;
            firings = !totals.Seminaive.firings + s.Seminaive.firings;
            new_tuples = !totals.Seminaive.new_tuples + s.Seminaive.new_tuples;
            duplicate_firings =
              !totals.Seminaive.duplicate_firings
              + s.Seminaive.duplicate_firings;
          }
      end)
    components;
  (db, !totals)

(* ================================================================== *)
(* Live incremental maintenance                                       *)

module Live = struct
  type stratum = {
    st_preds : string list;  (* one SCC, sorted *)
    st_rules : Rule.t list;
    st_recursive : bool;  (* DRed; otherwise counting *)
  }

  type t = {
    lv_program : Program.t;
    lv_db : Database.t;  (* the live model: base + every derived tuple *)
    lv_strata : stratum list;  (* bottom-up *)
    lv_derived : string list;
    (* Non-recursive strata: exact derivation counts per head tuple.
       A tuple lives iff its count is positive; deletion decrements by
       the telescoped lost-firing enumeration, insertion increments. *)
    lv_counts : (string, int Tset.t) Hashtbl.t;
    (* Derived program facts: permanent external support. Counting
       strata bake them in as a +1 baseline; DRed rederivation treats
       them as self-justifying. *)
    lv_pfacts : unit Ltbl.t;
    lv_log : Delta.Log.t;  (* net model changes, per predicate *)
    lv_track : bool;  (* record into lv_log? *)
    mutable lv_batches : int;
    mutable lv_totals : Delta.summary;
  }

  type change = {
    c_summary : Delta.summary;
    c_added : (string * Tuple.t) list;  (* net, base + derived, sorted *)
    c_removed : (string * Tuple.t) list;
  }

  let no_change =
    { c_summary = Delta.empty_summary; c_added = []; c_removed = [] }

  let build_strata program =
    List.filter_map
      (fun component ->
        let rules =
          List.filter
            (fun (r : Rule.t) -> List.mem r.head.Atom.pred component)
            (Program.rules program)
        in
        if rules = [] then None
        else
          let recursive =
            match component with
            | [ _ ] ->
              List.exists
                (fun (r : Rule.t) ->
                  List.exists
                    (fun (a : Atom.t) -> List.mem a.Atom.pred component)
                    r.body)
                rules
            | _ -> true
          in
          Some { st_preds = component; st_rules = rules; st_recursive = recursive })
      (Analysis.sccs program)

  let counts_of live pred =
    match Hashtbl.find_opt live.lv_counts pred with
    | Some c -> c
    | None ->
      let c = Tset.create 64 in
      Hashtbl.add live.lv_counts pred c;
      c

  let bump counts tuple by =
    let c = (match Tset.find_opt counts tuple with Some c -> c | None -> 0) + by in
    if c <= 0 then Tset.remove counts tuple else Tset.replace counts tuple c;
    c

  let rel_opt live pred = Database.find live.lv_db pred

  (* Count every current firing of the counting strata once, plus a +1
     baseline per externally supported tuple: the telescoped
     maintenance identities keep these exact from here on. *)
  let init_counts live =
    List.iter
      (fun st ->
        if not st.st_recursive then begin
          let counts = counts_of live (List.hd st.st_preds) in
          List.iter
            (fun (rule : Rule.t) ->
              let sources =
                Array.of_list
                  (List.map
                     (fun (a : Atom.t) ->
                       match rel_opt live a.Atom.pred with
                       | Some rel -> [ src_all rel ]
                       | None -> [])
                     rule.body)
              in
              eval_body rule sources ~on_firing:(fun env ->
                  ignore (bump counts (instantiate_head rule.head env) 1)))
            st.st_rules
        end)
      live.lv_strata;
    let counting =
      List.concat_map
        (fun st -> if st.st_recursive then [] else st.st_preds)
        live.lv_strata
    in
    Ltbl.iter
      (fun (pred, tuple) () ->
        if List.mem pred counting then ignore (bump (counts_of live pred) tuple 1))
      live.lv_pfacts

  let create ?pushdown ?reorder ?(track = true) program ~edb =
    (match Program.check program with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Stratified.Live.create: " ^ msg));
    let db, _ = evaluate ?pushdown ?reorder program edb in
    let derived = Program.derived_predicates program in
    let live =
      {
        lv_program = program;
        lv_db = db;
        lv_strata = build_strata program;
        lv_derived = derived;
        lv_counts = Hashtbl.create 8;
        lv_pfacts = Ltbl.create 16;
        lv_log = Delta.Log.create ();
        lv_track = track;
        lv_batches = 0;
        lv_totals = Delta.empty_summary;
      }
    in
    (* Externally supported tuples of derived predicates — program facts
       and edb seeds — are self-justifying: counting gives them a +1
       baseline, DRed rederives them unconditionally. *)
    List.iter
      (fun (pred, tuple) ->
        if List.mem pred derived then Ltbl.replace live.lv_pfacts (pred, tuple) ())
      program.Program.facts;
    List.iter
      (fun pred ->
        if List.mem pred derived then
          match Database.find edb pred with
          | None -> ()
          | Some rel ->
            Relation.iter
              (fun tuple -> Ltbl.replace live.lv_pfacts (pred, tuple) ())
              rel)
      (Database.predicates edb);
    init_counts live;
    live

  (* ---------------------------------------------------------------- *)
  (* Deletion phase                                                   *)

  (* Counting stratum: enumerate exactly the lost firings — position
     [j] reads the removed tuples, earlier atoms the post-deletion
     state, later atoms the pre-deletion state (main ∪ removed) — and
     decrement; a head whose count reaches zero dies. *)
  let delete_counting live st ~rem ~rem_of ~note_removed ~firings =
    let head_pred = List.hd st.st_preds in
    let counts = counts_of live head_pred in
    let rem_opt p =
      match Hashtbl.find_opt rem p with
      | Some r when not (Relation.is_empty r) -> Some r
      | _ -> None
    in
    let dead = Tset.create 16 in
    List.iter
      (fun (rule : Rule.t) ->
        let body = Array.of_list rule.body in
        let n = Array.length body in
        for j = 0 to n - 1 do
          match rem_opt body.(j).Atom.pred with
          | None -> ()
          | Some rem_j ->
            let sources =
              Array.init n (fun i ->
                  let p = body.(i).Atom.pred in
                  let main =
                    match rel_opt live p with
                    | Some r -> [ src_all r ]
                    | None -> []
                  in
                  if i < j then main
                  else if i = j then [ src_all rem_j ]
                  else
                    match rem_opt p with
                    | Some r -> main @ [ src_all r ]
                    | None -> main)
            in
            eval_body rule sources ~on_firing:(fun env ->
                incr firings;
                let h = instantiate_head rule.head env in
                if bump counts h (-1) = 0 then Tset.replace dead h ())
        done)
      st.st_rules;
    if Tset.length dead > 0 then begin
      match rel_opt live head_pred with
      | None -> ()
      | Some main ->
        let rm = rem_of head_pred (Relation.arity main) in
        ignore (Relation.remove_all main (Tset.mem dead));
        Tset.iter
          (fun t () ->
            ignore (Relation.add rm t);
            note_removed (head_pred, t))
          dead
    end

  (* Recursive stratum: DRed. Overdelete every tuple with a firing
     over the old state that touches a removed or overdeleted tuple;
     rederive the overdeleted tuples still derivable from survivors;
     the difference is the net deletion. *)
  let delete_dred live st ~rem ~rem_of ~note_removed ~firings ~overdeleted
      ~rederived =
    let in_stratum p = List.mem p st.st_preds in
    let rem_opt p =
      match Hashtbl.find_opt rem p with
      | Some r when not (Relation.is_empty r) -> Some r
      | _ -> None
    in
    let od : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
    let od_lo : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let od_of pred arity =
      match Hashtbl.find_opt od pred with
      | Some r -> r
      | None ->
        let r = Relation.create ~arity () in
        Hashtbl.add od pred r;
        Hashtbl.replace od_lo pred 0;
        r
    in
    (* Old state: for lower predicates main ∪ removed (they are already
       patched); for stratum predicates main (untouched until the net
       deletion is installed below). *)
    let old_sources p =
      let main =
        match rel_opt live p with Some r -> [ src_all r ] | None -> []
      in
      if in_stratum p then main
      else
        match rem_opt p with Some r -> main @ [ src_all r ] | None -> main
    in
    let emit_od (rule : Rule.t) env =
      incr firings;
      let hpred = rule.head.Atom.pred in
      let h = instantiate_head rule.head env in
      match rel_opt live hpred with
      | Some main when Relation.mem main h ->
        ignore (Relation.add (od_of hpred (Tuple.arity h)) h)
      | _ -> ()
    in
    (* Seed: firings lost to lower-stratum removals. *)
    List.iter
      (fun (rule : Rule.t) ->
        let body = Array.of_list rule.body in
        let n = Array.length body in
        for j = 0 to n - 1 do
          let pj = body.(j).Atom.pred in
          if not (in_stratum pj) then
            match rem_opt pj with
            | None -> ()
            | Some rem_j ->
              let sources =
                Array.init n (fun i ->
                    if i = j then [ src_all rem_j ]
                    else old_sources body.(i).Atom.pred)
              in
              eval_body rule sources ~on_firing:(emit_od rule)
        done)
      st.st_rules;
    (* Propagate: an overdeleted stratum tuple loses the firings it
       supported. Set semantics — overcounting is harmless here. *)
    let continue = ref true in
    while !continue do
      continue := false;
      let windows =
        Hashtbl.fold
          (fun pred r acc ->
            let lo = Hashtbl.find od_lo pred and hi = Relation.cardinal r in
            if hi > lo then (pred, r, lo, hi) :: acc else acc)
          od []
      in
      if windows <> [] then begin
        continue := true;
        List.iter
          (fun (rule : Rule.t) ->
            let body = Array.of_list rule.body in
            let n = Array.length body in
            for j = 0 to n - 1 do
              let pj = body.(j).Atom.pred in
              match
                List.find_opt (fun (p, _, _, _) -> String.equal p pj) windows
              with
              | None -> ()
              | Some (_, r, lo, hi) ->
                let sources =
                  Array.init n (fun i ->
                      if i = j then
                        [ { sr_rel = r; sr_lo = lo; sr_hi = hi; sr_skip = None } ]
                      else old_sources body.(i).Atom.pred)
                in
                eval_body rule sources ~on_firing:(emit_od rule)
            done)
          st.st_rules;
        List.iter (fun (pred, _, _, hi) -> Hashtbl.replace od_lo pred hi) windows
      end
    done;
    Hashtbl.iter (fun _ r -> overdeleted := !overdeleted + Relation.cardinal r) od;
    (* Rederive: an overdeleted tuple survives if some rule derives it
       from survivors — stratum atoms read main minus the still-dead
       overdeletions, lower atoms the new state. Iterate to fixpoint:
       each save can justify more. *)
    let red : (string, unit Tset.t) Hashtbl.t = Hashtbl.create 4 in
    let red_of pred =
      match Hashtbl.find_opt red pred with
      | Some s -> s
      | None ->
        let s = Tset.create 16 in
        Hashtbl.add red pred s;
        s
    in
    let survivor_sources (a : Atom.t) =
      let p = a.Atom.pred in
      match rel_opt live p with
      | None -> []
      | Some main ->
        if in_stratum p then begin
          match Hashtbl.find_opt od p with
          | Some o ->
            let redset = red_of p in
            [ { sr_rel = main; sr_lo = 0; sr_hi = Relation.cardinal main;
                sr_skip =
                  Some (fun t -> Relation.mem o t && not (Tset.mem redset t)) } ]
          | None -> [ src_all main ]
        end
        else [ src_all main ]
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun pred o ->
          let redset = red_of pred in
          Relation.iter
            (fun t ->
              if not (Tset.mem redset t) then begin
                let saved =
                  Ltbl.mem live.lv_pfacts (pred, t)
                  || List.exists
                       (fun (rule : Rule.t) ->
                         String.equal rule.head.Atom.pred pred
                         &&
                         match unify_tuple rule.head.Atom.args [] t with
                         | None -> false
                         | Some env ->
                           let sources =
                             Array.of_list
                               (List.map survivor_sources rule.body)
                           in
                           let ok = satisfiable ~env rule sources in
                           if ok then incr firings;
                           ok)
                       st.st_rules
                in
                if saved then begin
                  Tset.replace redset t ();
                  changed := true
                end
              end)
            o)
        od
    done;
    Hashtbl.iter (fun _ s -> rederived := !rederived + Tset.length s) red;
    (* Install the net deletion. *)
    Hashtbl.iter
      (fun pred o ->
        let redset = red_of pred in
        let deadp t = Relation.mem o t && not (Tset.mem redset t) in
        let dead = Relation.fold (fun t acc -> if Tset.mem redset t then acc else t :: acc) o [] in
        if dead <> [] then begin
          match rel_opt live pred with
          | None -> ()
          | Some main ->
            ignore (Relation.remove_all main deadp);
            let rm = rem_of pred (Relation.arity o) in
            List.iter
              (fun t ->
                ignore (Relation.add rm t);
                note_removed (pred, t))
              dead
        end)
      od

  (* ---------------------------------------------------------------- *)
  (* Insertion phase                                                  *)

  (* Counting stratum: the gained firings — position [j] reads the
     added window, earlier atoms the full new state, later atoms the
     pre-addition prefix — increment; a 0→1 head is born. *)
  let insert_counting live st ~add_lo ~note_added ~firings =
    let head_pred = List.hd st.st_preds in
    let counts = counts_of live head_pred in
    let lo_of p =
      match Hashtbl.find_opt add_lo p with
      | Some v -> v
      | None -> (
        match rel_opt live p with Some r -> Relation.cardinal r | None -> 0)
    in
    let head_rel =
      match rel_opt live head_pred with
      | Some r -> r
      | None ->
        (* Head relations exist: the initial evaluation declared every
           derived predicate. *)
        assert false
    in
    List.iter
      (fun (rule : Rule.t) ->
        let body = Array.of_list rule.body in
        let n = Array.length body in
        for j = 0 to n - 1 do
          let pj = body.(j).Atom.pred in
          let lo_j = lo_of pj in
          let cur_j =
            match rel_opt live pj with
            | Some r -> Relation.cardinal r
            | None -> 0
          in
          if cur_j > lo_j then begin
            let rel_j =
              match rel_opt live pj with Some r -> r | None -> assert false
            in
            let sources =
              Array.init n (fun i ->
                  let p = body.(i).Atom.pred in
                  match rel_opt live p with
                  | None -> []
                  | Some r ->
                    if i < j then
                      [ { sr_rel = r; sr_lo = 0; sr_hi = Relation.cardinal r;
                          sr_skip = None } ]
                    else if i = j then
                      [ { sr_rel = rel_j; sr_lo = lo_j; sr_hi = cur_j;
                          sr_skip = None } ]
                    else
                      [ { sr_rel = r; sr_lo = 0; sr_hi = lo_of p;
                          sr_skip = None } ])
            in
            eval_body rule sources ~on_firing:(fun env ->
                incr firings;
                let h = instantiate_head rule.head env in
                if bump counts h 1 = 1 then
                  if Relation.add head_rel h then note_added (head_pred, h))
          end
        done)
      st.st_rules

  (* Recursive stratum: plain semi-naive resumed from the added
     windows, driven over the live store with local watermarks (the
     in-place analogue of [Seminaive.resume]). *)
  let insert_seminaive live st ~add_lo ~note_added ~firings =
    let scope =
      List.sort_uniq String.compare
        (List.concat_map
           (fun (r : Rule.t) ->
             r.head.Atom.pred
             :: List.map (fun (a : Atom.t) -> a.Atom.pred) r.body)
           st.st_rules)
    in
    let card p =
      match rel_opt live p with Some r -> Relation.cardinal r | None -> 0
    in
    let lo : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let cur : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun p ->
        let l =
          match Hashtbl.find_opt add_lo p with
          | Some v -> v
          | None -> card p
        in
        Hashtbl.replace lo p l;
        Hashtbl.replace cur p (card p))
      scope;
    let continue = ref true in
    while !continue do
      continue := false;
      let delta p = Hashtbl.find cur p > Hashtbl.find lo p in
      if List.exists delta scope then begin
        continue := true;
        List.iter
          (fun (rule : Rule.t) ->
            let body = Array.of_list rule.body in
            let n = Array.length body in
            let head_rel =
              match rel_opt live rule.head.Atom.pred with
              | Some r -> r
              | None -> assert false
            in
            for j = 0 to n - 1 do
              let pj = body.(j).Atom.pred in
              if List.mem pj scope && delta pj then begin
                let sources =
                  Array.init n (fun i ->
                      let p = body.(i).Atom.pred in
                      match rel_opt live p with
                      | None -> []
                      | Some r ->
                        let hi =
                          if i < j then Hashtbl.find lo p
                          else if i = j then Hashtbl.find cur p
                          else Hashtbl.find cur p
                        in
                        let lo_w =
                          if i = j then Hashtbl.find lo p else 0
                        in
                        [ { sr_rel = r; sr_lo = lo_w; sr_hi = hi;
                            sr_skip = None } ])
                in
                eval_body rule sources ~on_firing:(fun env ->
                    incr firings;
                    let h = instantiate_head rule.head env in
                    if Relation.add head_rel h then
                      note_added (rule.head.Atom.pred, h))
              end
            done)
          st.st_rules;
        List.iter
          (fun p ->
            Hashtbl.replace lo p (Hashtbl.find cur p);
            Hashtbl.replace cur p (card p))
          scope
      end
    done

  (* ---------------------------------------------------------------- *)

  let apply live batch =
    live.lv_batches <- live.lv_batches + 1;
    List.iter
      (fun (u : Delta.update) ->
        if List.mem u.Delta.u_pred live.lv_derived then
          invalid_arg
            ("Stratified.Live.apply: " ^ u.Delta.u_pred
           ^ " is derived; updates must target base predicates"))
      (Delta.Batch.to_list batch);
    let present pred tuple =
      match rel_opt live pred with
      | Some rel -> Relation.mem rel tuple
      | None -> false
    in
    let adds, rems = Delta.Batch.normalize batch ~present in
    if adds = [] && rems = [] then no_change
    else begin
      let removed_now = Ltbl.create 32 in
      let added_now = Ltbl.create 32 in
      let note_removed key = Ltbl.replace removed_now key () in
      let note_added key =
        if Ltbl.mem removed_now key then Ltbl.remove removed_now key
        else Ltbl.replace added_now key ()
      in
      let firings = ref 0 in
      let overdeleted = ref 0 in
      let rederived = ref 0 in
      (* -------- deletions, bottom-up -------- *)
      if rems <> [] then begin
        let rem : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
        let rem_of pred arity =
          match Hashtbl.find_opt rem pred with
          | Some r -> r
          | None ->
            let r = Relation.create ~arity () in
            Hashtbl.add rem pred r;
            r
        in
        let by_pred : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (pred, tuple) ->
            match Hashtbl.find_opt by_pred pred with
            | Some l -> l := tuple :: !l
            | None -> Hashtbl.add by_pred pred (ref [ tuple ]))
          rems;
        Hashtbl.iter
          (fun pred tuples ->
            match rel_opt live pred with
            | None -> ()
            | Some rel ->
              let set = Tset.create 16 in
              List.iter (fun t -> Tset.replace set t ()) !tuples;
              ignore (Relation.remove_all rel (Tset.mem set));
              let rm = rem_of pred (Relation.arity rel) in
              List.iter
                (fun t ->
                  ignore (Relation.add rm t);
                  note_removed (pred, t))
                !tuples)
          by_pred;
        List.iter
          (fun st ->
            if st.st_recursive then
              delete_dred live st ~rem ~rem_of ~note_removed ~firings
                ~overdeleted ~rederived
            else delete_counting live st ~rem ~rem_of ~note_removed ~firings)
          live.lv_strata
      end;
      (* -------- insertions, bottom-up -------- *)
      if adds <> [] then begin
        (* Watermark every relation before the first append: the added
           region of predicate [p] is [add_lo(p), cardinal). *)
        let add_lo : (string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun pred ->
            match rel_opt live pred with
            | Some r -> Hashtbl.replace add_lo pred (Relation.cardinal r)
            | None -> ())
          (Database.predicates live.lv_db);
        List.iter
          (fun (pred, tuple) ->
            if not (Hashtbl.mem add_lo pred) then Hashtbl.replace add_lo pred 0;
            if Database.add_fact live.lv_db pred tuple then
              note_added (pred, tuple))
          adds;
        List.iter
          (fun st ->
            if st.st_recursive then
              insert_seminaive live st ~add_lo ~note_added ~firings
            else insert_counting live st ~add_lo ~note_added ~firings)
          live.lv_strata
      end;
      let collect tbl =
        List.sort
          (fun (p1, t1) (p2, t2) ->
            match String.compare p1 p2 with
            | 0 -> Tuple.compare t1 t2
            | c -> c)
          (Ltbl.fold (fun key () acc -> key :: acc) tbl [])
      in
      let added = collect added_now in
      let removed = collect removed_now in
      if live.lv_track then begin
        List.iter
          (fun (pred, t) -> Delta.Log.record live.lv_log pred Delta.Insert t)
          added;
        List.iter
          (fun (pred, t) -> Delta.Log.record live.lv_log pred Delta.Delete t)
          removed
      end;
      let summary =
        {
          Delta.s_inserted = List.length added;
          s_deleted = List.length removed;
          s_overdeleted = !overdeleted;
          s_rederived = !rederived;
          s_firings = !firings;
        }
      in
      live.lv_totals <- Delta.add_summary live.lv_totals summary;
      { c_summary = summary; c_added = added; c_removed = removed }
    end

  let query live pred =
    match rel_opt live pred with
    | Some rel -> Relation.sorted_elements rel
    | None -> []

  let database live = Database.copy live.lv_db
  let batches live = live.lv_batches
  let totals live = live.lv_totals
  let log live = live.lv_log
end
