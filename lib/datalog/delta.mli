(** Signed update batches and per-predicate change logs — the currency
    of incremental maintenance.

    A {!Batch.t} is an ordered stream of base-fact insertions and
    deletions. {!Batch.normalize} collapses it to its net effect
    against the current store (last operation per tuple wins, no-ops
    dropped), which is what the maintenance algorithms consume: the
    two phases of {!Stratified.Live.apply} see disjoint effective add
    and remove sets. {!Log} is the bookkeeping side: append-only,
    watermarked per-predicate change logs riding the same {!Vec}
    machinery as the relation stores. *)

type op = Insert | Delete

val pp_op : Format.formatter -> op -> unit

type update = { u_op : op; u_pred : string; u_tuple : Tuple.t }

module Batch : sig
  type t

  val empty : t
  val is_empty : t -> bool

  val size : t -> int
  (** Number of raw updates (before normalization). *)

  val of_list : update list -> t
  val to_list : t -> update list

  val add : t -> op -> string -> Tuple.t -> t
  (** Append one update (batches are small; O(n)). *)

  val insert : string -> Tuple.t -> update
  val delete : string -> Tuple.t -> update

  val preds : t -> string list
  (** Sorted predicates mentioned by the batch. *)

  val normalize :
    t ->
    present:(string -> Tuple.t -> bool) ->
    (string * Tuple.t) list * (string * Tuple.t) list
  (** [(adds, removes)]: the batch's net effect against the store
      described by [present]. The last operation on each (pred, tuple)
      wins; insertions of present tuples and deletions of absent ones
      are dropped, so the two lists are disjoint and re-applying a
      batch normalizes to nothing. Order of first occurrence is kept. *)
end

(** Append-only signed change logs, one per predicate, with a consumer
    watermark ([\[0, mark)] drained, suffix pending) — the change-set
    analogue of the semi-naive windows over relation stores. *)
module Log : sig
  type t

  val create : unit -> t
  val record : t -> string -> op -> Tuple.t -> unit

  val pending_count : t -> int
  (** Entries recorded but not yet drained. *)

  val drain : t -> (string -> op -> Tuple.t -> unit) -> unit
  (** Visit the pending suffix of every predicate's log and advance the
      watermarks; each recorded entry is visited exactly once across
      all drains. *)

  val total : t -> int
  (** All entries ever recorded (history + pending). *)
end

(** Per-batch maintenance accounting, surfaced through
    [Stats.to_json] schema 4. *)
type summary = {
  s_inserted : int;
  s_deleted : int;
  s_rederived : int;
  s_overdeleted : int;
  s_firings : int;
}

val empty_summary : summary
val add_summary : summary -> summary -> summary
val pp_summary : Format.formatter -> summary -> unit
