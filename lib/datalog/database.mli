(** A database: a mutable map from predicate symbols to relations. *)

type t

val create : unit -> t

val add_relation : t -> string -> Relation.t -> unit
(** Bind a relation to a predicate.
    @raise Invalid_argument if the predicate is already bound with a
    different arity. *)

val declare : ?slab:bool -> t -> string -> int -> Relation.t
(** [declare db pred arity] returns the relation of [pred], creating an
    empty one of the given arity (and storage layout, default
    slab-backed) if absent.
    @raise Invalid_argument on arity mismatch with an existing
    relation. *)

val find : t -> string -> Relation.t option
val get : t -> string -> Relation.t
(** @raise Not_found if the predicate is unbound. *)

val mem : t -> string -> bool
val arity : t -> string -> int option

val add_fact : t -> string -> Tuple.t -> bool
(** Insert a tuple, declaring the relation on first use. Returns
    [true] iff new. *)

val predicates : t -> string list
(** Sorted list of bound predicates. *)

val cardinal : t -> string -> int
(** Number of tuples of a predicate; 0 when unbound. *)

val total_tuples : t -> int

val copy : ?slab:bool -> t -> t
(** Copy every relation ({!Relation.copy}); [~slab] forces the storage
    layout of the copies. *)

val restrict : t -> string list -> t
(** A fresh database holding only the listed predicates (those that are
    bound). Relations are copied. *)

val merge_into : dst:t -> src:t -> int
(** Union every relation of [src] into [dst]; returns the number of new
    tuples. *)

val merge_disjoint_into : dst:t -> src:t -> int
(** {!merge_into} without per-tuple membership probes
    ({!Relation.add_all_new}). {b Unsafe}: every tuple of [src] must be
    absent from [dst] — the semi-naive engine's delta/full invariant. *)

val equal : t -> t -> bool
(** Same predicates, each with equal relations. Predicates bound to
    empty relations on one side and unbound on the other are considered
    equal. *)

val pp : Format.formatter -> t -> unit
