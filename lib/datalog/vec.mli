(** Growable flat arrays — the storage primitive under {!Relation}.

    A [Vec.t] is an amortized-O(1) append buffer backed by one
    contiguous array (doubled on overflow), replacing the cons-cell
    lists the relation stores and index buckets were built on: element
    [i] sits at offset [i], so scans touch sequential memory instead
    of chasing pointers. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity and is never returned by reads. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array size (for tests of the growth policy). *)

val push : 'a t -> 'a -> unit
(** Append, doubling the backing array when full. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is out of bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** No bounds check: caller guarantees [0 <= i < length]. *)

val set : 'a t -> int -> 'a -> unit
(** Overwrite an existing slot.
    @raise Invalid_argument when the index is out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
(** In insertion order. *)

val fold : ('a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** In insertion order. *)

val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list

val copy : 'a t -> 'a t
(** An independent vector with the same contents (elements are shared,
    the backing array is not). O(capacity) — one [Array.copy], no
    per-element rehashing; {!Relation.copy} is built on this. *)

val clear : 'a t -> unit
(** Length becomes 0; capacity is retained. Cleared slots are
    overwritten with [dummy] so no element is kept alive. *)

val compact : 'a t -> unit
(** Shrink the backing array to the current length (at least 1),
    releasing slack after a load phase. *)
