module Tbl = Hashtbl.Make (Tuple)

type t = {
  tbl : Tuple.t Tbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(initial_size = 1024) () =
  { tbl = Tbl.create initial_size; hits = 0; misses = 0 }

let intern a t =
  match Tbl.find_opt a.tbl t with
  | Some canonical ->
    a.hits <- a.hits + 1;
    canonical
  | None ->
    a.misses <- a.misses + 1;
    Tbl.add a.tbl t t;
    t

let size a = Tbl.length a.tbl
let hits a = a.hits
let misses a = a.misses

let clear a =
  Tbl.reset a.tbl;
  a.hits <- 0;
  a.misses <- 0
