module Tbl = Hashtbl.Make (Tuple)

(* Index buckets are keyed by the *hash* of a tuple's projection on
   the index positions, not by a materialized key tuple: inserts and
   lookups cost one hash fold and zero allocations. Hash collisions
   put unrelated tuples in one bucket, so every probe re-checks the
   projection with [Tuple.proj_equal] — the same constant-compares an
   exact index would have saved are instead paid only on the (rare)
   colliding candidates.

   A bucket holds *insertion positions* (indexes into [elements]), not
   tuple pointers: an unboxed, strictly ascending int vector. Ascending
   order is what makes windowed scans cheap — a probe over positions
   [lo, hi) binary-searches the lower bound and walks a contiguous int
   run, touching only in-range candidates. The semi-naive engine sits
   its Old/Delta/Current sources on exactly this: three windows over
   one append-only store instead of three physical relations. *)
type index = {
  ix_positions : int array;
  ix_buckets : (int, int Vec.t) Hashtbl.t;
}

type t = {
  arity : int;
  seen : unit Tbl.t;
  elements : Tuple.t Vec.t;  (* insertion order *)
  indexes : (int list, index) Hashtbl.t;
}

let dummy_tuple = Tuple.of_list []

let create ?(initial_size = 64) ~arity () =
  {
    arity;
    seen = Tbl.create initial_size;
    elements = Vec.create ~capacity:(max initial_size 8) ~dummy:dummy_tuple ();
    indexes = Hashtbl.create 4;
  }

let arity r = r.arity
let cardinal r = Vec.length r.elements
let is_empty r = Vec.is_empty r.elements
let mem r t = Tbl.mem r.seen t

let index_insert ix t pos =
  let h = Tuple.hash_proj t ix.ix_positions in
  match Hashtbl.find_opt ix.ix_buckets h with
  | Some bucket -> Vec.push bucket pos
  | None ->
    let bucket = Vec.create ~capacity:4 ~dummy:0 () in
    Vec.push bucket pos;
    Hashtbl.add ix.ix_buckets h bucket

let unchecked_push r t =
  let pos = Vec.length r.elements in
  Tbl.add r.seen t ();
  Vec.push r.elements t;
  Hashtbl.iter (fun _ ix -> index_insert ix t pos) r.indexes

let add r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: arity %d, expected %d" (Tuple.arity t)
         r.arity);
  if Tbl.mem r.seen t then false
  else begin
    unchecked_push r t;
    true
  end

(* Insert without the membership probe: sound only when the caller
   guarantees [t] is absent (e.g. the semi-naive merge of a delta whose
   tuples were checked against the destination at derivation time). A
   wrong call corrupts the relation with a duplicate. *)
let add_new r t = unchecked_push r t

let iter f r = Vec.iter f r.elements
let fold f r init = Vec.fold f r.elements init
let to_list r = Vec.to_list r.elements

let add_all dst src =
  fold (fun t n -> if add dst t then n + 1 else n) src 0

let add_all_new dst src =
  Vec.iter (fun t -> add_new dst t) src.elements;
  Vec.length src.elements

let sorted_elements r = List.sort Tuple.compare (to_list r)

let build_index r positions =
  let ix =
    {
      ix_positions = positions;
      ix_buckets = Hashtbl.create (max 16 (cardinal r));
    }
  in
  let els = r.elements in
  for pos = 0 to Vec.length els - 1 do
    index_insert ix (Vec.unsafe_get els pos) pos
  done;
  Hashtbl.add r.indexes (Array.to_list positions) ix;
  ix

let index_for r positions =
  match Hashtbl.find_opt r.indexes (Array.to_list positions) with
  | Some ix -> ix
  | None -> build_index r positions

(* First bucket slot whose position is >= lo; the bucket is strictly
   ascending, so binary search. *)
let lower_bound bucket lo =
  let n = Vec.length bucket in
  if lo = 0 then 0
  else begin
    let left = ref 0 and right = ref n in
    while !left < !right do
      let mid = (!left + !right) / 2 in
      if Vec.unsafe_get bucket mid < lo then left := mid + 1
      else right := mid
    done;
    !left
  end

let probe_index r ix positions key ~lo ~hi f =
  match Hashtbl.find ix.ix_buckets (Tuple.hash_key key) with
  | exception Not_found -> ()
  | bucket ->
    let els = r.elements in
    let n = Vec.length bucket in
    let i = ref (lower_bound bucket lo) in
    let continue = ref true in
    while !continue && !i < n do
      let pos = Vec.unsafe_get bucket !i in
      if pos >= hi then continue := false
      else begin
        let t = Vec.unsafe_get els pos in
        if Tuple.proj_equal t positions key then f t;
        incr i
      end
    done

let iter_range r ~lo ~hi f =
  let els = r.elements in
  for pos = lo to min hi (Vec.length els) - 1 do
    f (Vec.unsafe_get els pos)
  done

let iter_matching r ~positions ~key f =
  if Array.length positions = 0 then Vec.iter f r.elements
  else
    probe_index r (index_for r positions) positions key ~lo:0
      ~hi:(cardinal r) f

(* The staged form the join inner loop uses: index resolution — a
   string of hashtable lookups that is invariant across the probes of
   one Joiner.run — is paid once, and each application costs only the
   bucket lookup plus the windowed walk. The returned closure reads
   the live index, so tuples added after staging are still found; it
   is invalidated by [compact] and [clear] (which drop indexes) and
   must not be kept across them. *)
let matcher r ~positions =
  if Array.length positions = 0 then fun _key ~lo ~hi f ->
    iter_range r ~lo ~hi f
  else begin
    let ix = index_for r positions in
    fun key ~lo ~hi f -> probe_index r ix positions key ~lo ~hi f
  end

let lookup r ~positions ~key =
  if Array.length positions = 0 then to_list r
  else begin
    let acc = ref [] in
    iter_matching r ~positions ~key (fun t -> acc := t :: !acc);
    List.rev !acc
  end

let copy r =
  let fresh = create ~initial_size:(max 16 (cardinal r)) ~arity:r.arity () in
  iter (fun t -> ignore (add fresh t)) r;
  fresh

let clear r =
  Tbl.reset r.seen;
  Vec.clear r.elements;
  Hashtbl.reset r.indexes

(* Deletion support for the incremental-maintenance layer. The store is
   append-only by design, so removal is an in-place rebuild: surviving
   tuples are re-pushed in their original insertion order (window
   positions of the survivors shift but stay ascending) and every
   materialized index is dropped — bucket positions would all be stale —
   to be rebuilt lazily by the next probe. Staged matchers taken before
   a removal are invalidated, exactly as by [compact]/[clear]. *)
let remove_all r keep_out =
  let victims = ref 0 in
  Vec.iter (fun t -> if keep_out t then incr victims) r.elements;
  if !victims = 0 then 0
  else begin
    let survivors = List.filter (fun t -> not (keep_out t)) (to_list r) in
    Tbl.reset r.seen;
    Vec.clear r.elements;
    Hashtbl.reset r.indexes;
    List.iter
      (fun t ->
        Tbl.add r.seen t ();
        Vec.push r.elements t)
      survivors;
    !victims
  end

let compact r =
  Vec.compact r.elements;
  Hashtbl.reset r.indexes

let of_list ~arity tuples =
  let r = create ~arity () in
  List.iter (fun t -> ignore (add r t)) tuples;
  r

let equal a b =
  a.arity = b.arity
  && cardinal a = cardinal b
  && Vec.for_all (fun t -> mem b t) a.elements

let pp ppf r =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (sorted_elements r)

let index_count r = Hashtbl.length r.indexes
