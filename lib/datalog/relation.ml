module Tbl = Hashtbl.Make (Tuple)

(* Index buckets are keyed by the *hash* of a tuple's projection on
   the index positions, not by a materialized key tuple: inserts and
   lookups cost one hash fold and zero allocations. Hash collisions
   put unrelated tuples in one bucket, so every probe re-checks the
   projection — against the raw column words when the relation is
   slab-backed and the key encodes exactly, falling back to
   [Tuple.proj_equal] otherwise.

   A bucket holds *insertion positions* (indexes into [elements]), not
   tuple pointers: an unboxed, strictly ascending int vector. Ascending
   order is what makes windowed scans cheap — a probe over positions
   [lo, hi) binary-searches the lower bound and walks a contiguous int
   run, touching only in-range candidates. The semi-naive engine sits
   its Old/Delta/Current sources on exactly this: three windows over
   one append-only store instead of three physical relations. *)
type index = {
  ix_positions : int array;
  ix_buckets : (int, int Vec.t) Hashtbl.t;
}

(* Dedup structure. A slab relation keeps, alongside the boxed tuples,
   one unboxed int column per position holding [Const.to_raw] of every
   stored constant, and dedups through a flat open-chained hash table:
   [sl_table] maps [hash land mask] to a chain head (insertion
   position + 1; 0 = empty), [sl_next] threads the chain through the
   elements themselves, and [sl_hashes] caches each element's tuple
   hash for chain filtering and table resizes. An insert is two int
   pushes and one array store — no per-bucket heap structure, no
   allocation beyond amortized array growth — and a membership probe
   walks the chain comparing cached hashes and then raw column words,
   never touching the boxed tuples.
   Invariant: while [Slab], every stored constant is [Const.raw_exact]
   (the first inexact insert demotes the relation to [Boxed] for
   good — raw words are only injective on exact constants). *)
type slab = {
  mutable sl_table : int array;  (* chain heads: position + 1; 0 = empty *)
  mutable sl_mask : int;  (* Array.length sl_table - 1; power of two *)
  sl_next : int Vec.t;  (* per element: next chain entry, same encoding *)
  sl_hashes : int Vec.t;  (* per element: cached Tuple.hash *)
}

type dedup =
  | Boxed of unit Tbl.t
  | Slab of slab

type t = {
  arity : int;
  mutable seen : dedup;
  elements : Tuple.t Vec.t;  (* insertion order *)
  mutable cols : int Vec.t array;  (* one per position iff slabbed *)
  indexes : (int list, index) Hashtbl.t;
  mutable ix_all : index array;  (* = indexes, iterable without closures *)
}

let dummy_tuple = Tuple.of_list []

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let fresh_slab size =
  let cap = pow2_at_least (max 16 size) 16 in
  {
    sl_table = Array.make cap 0;
    sl_mask = cap - 1;
    sl_next = Vec.create ~capacity:(max size 8) ~dummy:0 ();
    sl_hashes = Vec.create ~capacity:(max size 8) ~dummy:0 ();
  }

let create ?(initial_size = 64) ?(slab = true) ~arity () =
  {
    arity;
    seen =
      (if slab then Slab (fresh_slab initial_size)
       else Boxed (Tbl.create initial_size));
    elements = Vec.create ~capacity:(max initial_size 8) ~dummy:dummy_tuple ();
    cols =
      (if slab then
         Array.init arity (fun _ ->
             Vec.create ~capacity:(max initial_size 8) ~dummy:0 ())
       else [||]);
    indexes = Hashtbl.create 4;
    ix_all = [||];
  }

let arity r = r.arity
let cardinal r = Vec.length r.elements
let is_empty r = Vec.is_empty r.elements

let slabbed r =
  match r.seen with
  | Slab _ -> true
  | Boxed _ -> false

let mem r t =
  match r.seen with
  | Boxed tbl -> Tbl.mem tbl t
  | Slab s ->
    let h = Tuple.hash t in
    let els = r.elements in
    let hashes = s.sl_hashes and next = s.sl_next in
    let rec walk p =
      p <> 0
      &&
      let pos = p - 1 in
      (Vec.unsafe_get hashes pos = h
      && Tuple.equal (Vec.unsafe_get els pos) t)
      || walk (Vec.unsafe_get next pos)
    in
    walk (Array.unsafe_get s.sl_table (h land s.sl_mask))

(* Raw-word membership: the semi-naive duplicate filter. [raws] must be
   the exact raw encoding of a would-be tuple of this relation's arity
   and [hash] its [Tuple.hash_key]; the caller must have checked
   [slabbed] first (a demoted relation cannot answer from raw words). *)
let mem_raw r ~hash raws =
  match r.seen with
  | Boxed _ -> invalid_arg "Relation.mem_raw: relation is not slab-backed"
  | Slab s ->
    let cols = r.cols in
    let k = r.arity in
    let hashes = s.sl_hashes and next = s.sl_next in
    let rec same pos i =
      i >= k
      || Vec.unsafe_get (Array.unsafe_get cols i) pos = Array.unsafe_get raws i
         && same pos (i + 1)
    in
    let rec walk p =
      p <> 0
      &&
      let pos = p - 1 in
      (Vec.unsafe_get hashes pos = hash && same pos 0)
      || walk (Vec.unsafe_get next pos)
    in
    walk (Array.unsafe_get s.sl_table (hash land s.sl_mask))

let index_insert ix t pos =
  let h = Tuple.hash_proj t ix.ix_positions in
  match Hashtbl.find_opt ix.ix_buckets h with
  | Some bucket -> Vec.push bucket pos
  | None ->
    let bucket = Vec.create ~capacity:4 ~dummy:0 () in
    Vec.push bucket pos;
    Hashtbl.add ix.ix_buckets h bucket

(* One-way door: rebuild boxed dedup from the element store and drop
   the columns. Existing column content stays readable (probes staged
   over old windows remain sound) but is no longer appended to. *)
let demote r =
  let tbl = Tbl.create (max 64 (Vec.length r.elements)) in
  Vec.iter (fun t -> Tbl.add tbl t ()) r.elements;
  r.seen <- Boxed tbl;
  r.cols <- [||];
  tbl

(* Double the chain-head table when load passes 3/4: chains are
   rebuilt in insertion order by re-threading [sl_next] through the
   fresh table — a linear sweep of the cached hashes, no tuple access,
   no allocation beyond the new head array. *)
let slab_grow s n =
  let cap = (s.sl_mask + 1) * 2 in
  let table = Array.make cap 0 in
  let mask = cap - 1 in
  for p = 0 to n - 1 do
    let idx = Vec.unsafe_get s.sl_hashes p land mask in
    Vec.set s.sl_next p (Array.unsafe_get table idx);
    Array.unsafe_set table idx (p + 1)
  done;
  s.sl_table <- table;
  s.sl_mask <- mask

let slab_insert r s pos t =
  if (pos + 1) * 4 > (s.sl_mask + 1) * 3 then slab_grow s pos;
  let h = Tuple.hash t in
  let idx = h land s.sl_mask in
  Vec.push s.sl_hashes h;
  Vec.push s.sl_next (Array.unsafe_get s.sl_table idx);
  Array.unsafe_set s.sl_table idx (pos + 1);
  let cols = r.cols in
  for i = 0 to r.arity - 1 do
    Vec.push (Array.unsafe_get cols i) (Const.to_raw (Tuple.get t i))
  done

let unchecked_push r t =
  let pos = Vec.length r.elements in
  (match r.seen with
  | Boxed tbl -> Tbl.add tbl t ()
  | Slab s ->
    if Tuple.raw_exact t then slab_insert r s pos t
    else Tbl.add (demote r) t ());
  Vec.push r.elements t;
  let ixs = r.ix_all in
  for k = 0 to Array.length ixs - 1 do
    index_insert (Array.unsafe_get ixs k) t pos
  done

let add r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: arity %d, expected %d" (Tuple.arity t)
         r.arity);
  if mem r t then false
  else begin
    unchecked_push r t;
    true
  end

(* Insert without the membership probe: sound only when the caller
   guarantees [t] is absent (e.g. the semi-naive merge of a delta whose
   tuples were checked against the destination at derivation time). A
   wrong call corrupts the relation with a duplicate. *)
let add_new r t = unchecked_push r t

let iter f r = Vec.iter f r.elements
let fold f r init = Vec.fold f r.elements init
let to_list r = Vec.to_list r.elements

let add_all dst src =
  fold (fun t n -> if add dst t then n + 1 else n) src 0

let add_all_new dst src =
  Vec.iter (fun t -> add_new dst t) src.elements;
  Vec.length src.elements

let sorted_elements r = List.sort Tuple.compare (to_list r)

let build_index r positions =
  let ix =
    {
      ix_positions = positions;
      ix_buckets = Hashtbl.create (max 16 (cardinal r));
    }
  in
  let els = r.elements in
  for pos = 0 to Vec.length els - 1 do
    index_insert ix (Vec.unsafe_get els pos) pos
  done;
  Hashtbl.add r.indexes (Array.to_list positions) ix;
  r.ix_all <- Array.append r.ix_all [| ix |];
  ix

let index_for r positions =
  match Hashtbl.find_opt r.indexes (Array.to_list positions) with
  | Some ix -> ix
  | None -> build_index r positions

(* First bucket slot whose position is >= lo; the bucket is strictly
   ascending, so binary search. *)
let lower_bound bucket lo =
  let n = Vec.length bucket in
  if lo = 0 then 0
  else begin
    let left = ref 0 and right = ref n in
    while !left < !right do
      let mid = (!left + !right) / 2 in
      if Vec.unsafe_get bucket mid < lo then left := mid + 1
      else right := mid
    done;
    !left
  end

(* Candidate verification for index probes. When the relation is
   slab-backed and the key encodes exactly, candidates are checked by
   comparing raw int words straight out of the columns — no boxed
   tuple is touched until a candidate passes. Otherwise fall back to
   [Tuple.proj_equal] on the stored tuple. *)
let probe_index r ix positions key ~raws ~raws_ok ~lo ~hi f =
  match Hashtbl.find ix.ix_buckets (Tuple.hash_key key) with
  | exception Not_found -> ()
  | bucket ->
    let els = r.elements in
    let np = Array.length positions in
    let n = Vec.length bucket in
    let i = ref (lower_bound bucket lo) in
    let continue = ref true in
    let cols = if raws_ok && slabbed r then r.cols else [||] in
    if Array.length cols > 0 then
      while !continue && !i < n do
        let pos = Vec.unsafe_get bucket !i in
        if pos >= hi then continue := false
        else begin
          let rec same j =
            j >= np
            || Vec.unsafe_get
                 (Array.unsafe_get cols (Array.unsafe_get positions j))
                 pos
               = Array.unsafe_get raws j
               && same (j + 1)
          in
          if same 0 then f (Vec.unsafe_get els pos);
          incr i
        end
      done
    else
      while !continue && !i < n do
        let pos = Vec.unsafe_get bucket !i in
        if pos >= hi then continue := false
        else begin
          let t = Vec.unsafe_get els pos in
          if Tuple.proj_equal t positions key then f t;
          incr i
        end
      done

let iter_range r ~lo ~hi f =
  let els = r.elements in
  for pos = lo to min hi (Vec.length els) - 1 do
    f (Vec.unsafe_get els pos)
  done

(* Below this window width a probe skips the index entirely and scans
   the key columns over [lo, hi) directly: for the narrow Delta windows
   the semi-naive engine probes every round, a sequential sweep of a
   handful of unboxed ints beats a hash lookup plus binary search.
   Enumeration order (ascending positions of the true matches) is
   identical on both paths, so counters downstream cannot tell. *)
let scan_cutoff = 16

let scan_window r positions ~raws ~lo ~hi f =
  let cols = r.cols in
  let els = r.elements in
  let np = Array.length positions in
  let hi = min hi (Vec.length els) in
  for pos = lo to hi - 1 do
    let rec same j =
      j >= np
      || Vec.unsafe_get (Array.unsafe_get cols (Array.unsafe_get positions j))
           pos
         = Array.unsafe_get raws j
         && same (j + 1)
    in
    if same 0 then f (Vec.unsafe_get els pos)
  done

(* The staged form the join inner loop uses: index resolution — a
   string of hashtable lookups that is invariant across the probes of
   one Joiner.run — is paid at most once, and each application costs
   only the bucket lookup plus the windowed walk (or, for windows
   narrower than [scan_cutoff] on a slab relation, a direct columnar
   scan that never touches the index at all — the index is then built
   only when a wide window first needs it). The returned closure reads
   the live relation, so tuples added after staging are still found;
   it is invalidated by [compact] and [clear] (which drop indexes) and
   must not be kept across them. It owns a scratch key buffer, so it
   is not re-entrant: don't call it from within its own callback. *)
let matcher r ~positions =
  if Array.length positions = 0 then fun _key ~lo ~hi f ->
    iter_range r ~lo ~hi f
  else begin
    let np = Array.length positions in
    let rawbuf = Array.make np 0 in
    let raws_ok = ref true in  (* scratch, like rawbuf: not re-entrant *)
    let ix = ref None in
    fun key ~lo ~hi f ->
      if hi > lo then begin
        raws_ok := true;
        for j = 0 to np - 1 do
          let c = Array.unsafe_get key j in
          Array.unsafe_set rawbuf j (Const.to_raw c);
          if not (Const.raw_exact c) then raws_ok := false
        done;
        if !raws_ok && hi - lo <= scan_cutoff && slabbed r then
          scan_window r positions ~raws:rawbuf ~lo ~hi f
        else begin
          let ix =
            match !ix with
            | Some ix -> ix
            | None ->
              let resolved = index_for r positions in
              ix := Some resolved;
              resolved
          in
          probe_index r ix positions key ~raws:rawbuf ~raws_ok:!raws_ok ~lo
            ~hi f
        end
      end
  end

let iter_matching r ~positions ~key f =
  if Array.length positions = 0 then Vec.iter f r.elements
  else (matcher r ~positions) key ~lo:0 ~hi:(cardinal r) f

let lookup r ~positions ~key =
  if Array.length positions = 0 then to_list r
  else begin
    let acc = ref [] in
    iter_matching r ~positions ~key (fun t -> acc := t :: !acc);
    List.rev !acc
  end

(* Copying between identical layouts is a structural clone — the
   element vector, columns and dedup buckets are duplicated with flat
   array copies, never rehashing a tuple. This is what makes
   [Database.copy] (snapshotting an engine's model, assembling run
   results) cheap enough to sit inside [Seminaive.evaluate]. Forcing a
   layout change falls back to element-by-element re-insertion. *)
let copy ?slab r =
  let want =
    match slab with
    | None -> slabbed r
    | Some b -> b
  in
  if want = slabbed r then
    {
      arity = r.arity;
      seen =
        (match r.seen with
        | Boxed tbl -> Boxed (Tbl.copy tbl)
        | Slab s ->
          Slab
            {
              sl_table = Array.copy s.sl_table;
              sl_mask = s.sl_mask;
              sl_next = Vec.copy s.sl_next;
              sl_hashes = Vec.copy s.sl_hashes;
            });
      elements = Vec.copy r.elements;
      cols = Array.map Vec.copy r.cols;
      indexes = Hashtbl.create 4;
      ix_all = [||];
    }
  else begin
    let fresh =
      create ~initial_size:(max 16 (cardinal r)) ~slab:want ~arity:r.arity ()
    in
    iter (fun t -> ignore (add fresh t)) r;
    fresh
  end

let slab_reset s =
  Array.fill s.sl_table 0 (Array.length s.sl_table) 0;
  Vec.clear s.sl_next;
  Vec.clear s.sl_hashes

let clear r =
  (match r.seen with
  | Boxed tbl -> Tbl.reset tbl
  | Slab s -> slab_reset s);
  Array.iter Vec.clear r.cols;
  Vec.clear r.elements;
  Hashtbl.reset r.indexes;
  r.ix_all <- [||]

(* Deletion support for the incremental-maintenance layer. The store is
   append-only by design, so removal is an in-place rebuild: surviving
   tuples are re-pushed in their original insertion order (window
   positions of the survivors shift but stay ascending) and every
   materialized index is dropped — bucket positions would all be stale —
   to be rebuilt lazily by the next probe. Staged matchers taken before
   a removal are invalidated, exactly as by [compact]/[clear]. *)
let remove_all r keep_out =
  let victims = ref 0 in
  Vec.iter (fun t -> if keep_out t then incr victims) r.elements;
  if !victims = 0 then 0
  else begin
    let survivors = List.filter (fun t -> not (keep_out t)) (to_list r) in
    (match r.seen with
    | Boxed tbl -> Tbl.reset tbl
    | Slab s -> slab_reset s);
    Array.iter Vec.clear r.cols;
    Vec.clear r.elements;
    Hashtbl.reset r.indexes;
    r.ix_all <- [||];
    List.iter (fun t -> unchecked_push r t) survivors;
    !victims
  end

let compact r =
  Vec.compact r.elements;
  Array.iter Vec.compact r.cols;
  Hashtbl.reset r.indexes;
  r.ix_all <- [||]

let of_list ?slab ~arity tuples =
  let r = create ?slab ~arity () in
  List.iter (fun t -> ignore (add r t)) tuples;
  r

let equal a b =
  a.arity = b.arity
  && cardinal a = cardinal b
  && Vec.for_all (fun t -> mem b t) a.elements

let pp ppf r =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (sorted_elements r)

let index_count r = Hashtbl.length r.indexes
