type t = (string, Relation.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let add_relation db pred rel =
  (match Hashtbl.find_opt db pred with
   | Some existing when Relation.arity existing <> Relation.arity rel ->
     invalid_arg
       (Printf.sprintf "Database.add_relation: %s arity mismatch" pred)
   | _ -> ());
  Hashtbl.replace db pred rel

let declare ?slab db pred arity =
  match Hashtbl.find_opt db pred with
  | Some rel ->
    if Relation.arity rel <> arity then
      invalid_arg
        (Printf.sprintf
           "Database.declare: %s has arity %d, requested %d" pred
           (Relation.arity rel) arity)
    else rel
  | None ->
    let rel = Relation.create ?slab ~arity () in
    Hashtbl.add db pred rel;
    rel

let find db pred = Hashtbl.find_opt db pred

let get db pred =
  match find db pred with Some r -> r | None -> raise Not_found

let mem db pred = Hashtbl.mem db pred
let arity db pred = Option.map Relation.arity (find db pred)

let add_fact db pred tuple =
  let rel = declare db pred (Tuple.arity tuple) in
  Relation.add rel tuple

let predicates db =
  Hashtbl.fold (fun p _ acc -> p :: acc) db [] |> List.sort String.compare

let cardinal db pred =
  match find db pred with Some r -> Relation.cardinal r | None -> 0

let total_tuples db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) db 0

let copy ?slab db =
  let fresh = create () in
  Hashtbl.iter (fun p r -> Hashtbl.replace fresh p (Relation.copy ?slab r)) db;
  fresh

let restrict db preds =
  let fresh = create () in
  List.iter
    (fun p ->
      match find db p with
      | Some r -> Hashtbl.replace fresh p (Relation.copy r)
      | None -> ())
    preds;
  fresh

let merge_into ~dst ~src =
  Hashtbl.fold
    (fun pred rel acc ->
      let target = declare dst pred (Relation.arity rel) in
      acc + Relation.add_all target rel)
    src 0

let merge_disjoint_into ~dst ~src =
  Hashtbl.fold
    (fun pred rel acc ->
      let target = declare dst pred (Relation.arity rel) in
      acc + Relation.add_all_new target rel)
    src 0

let equal a b =
  let preds = List.sort_uniq String.compare (predicates a @ predicates b) in
  List.for_all
    (fun p ->
      match find a p, find b p with
      | Some ra, Some rb -> Relation.equal ra rb
      | Some r, None | None, Some r -> Relation.is_empty r
      | None, None -> true)
    preds

let pp ppf db =
  let pp_one ppf p =
    Format.fprintf ppf "@[<hov 2>%s/%d =@ %a@]" p
      (Option.value ~default:0 (arity db p))
      Relation.pp (get db p)
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_one)
    (predicates db)
