(** Datalog programs: finite sets of rules plus ground facts.

    Predicates are split into derived (intensional) predicates — those
    appearing in some rule head — and base (extensional) predicates. *)

type t = {
  rules : Rule.t list;  (** Rules with non-empty bodies (or non-ground heads). *)
  facts : (string * Tuple.t) list;  (** Ground facts given in the program text. *)
}

val make : ?facts:(string * Tuple.t) list -> Rule.t list -> t
val rules : t -> Rule.t list

val derived_predicates : t -> string list
(** Predicates appearing in rule heads, sorted. *)

val base_predicates : t -> string list
(** Predicates appearing only in rule bodies or facts, sorted. *)

val predicates : t -> string list

val arities : t -> (string * int) list
(** Arity of each predicate, from its first occurrence.
    @raise Invalid_argument if a predicate is used at two arities. *)

val check : t -> (unit, string) result
(** Well-formedness for the evaluation engines: consistent arities;
    every rule safe (head and guard variables occur in the body); facts
    ground; no negated atoms (negation is analysed statically by the
    checker but not yet evaluated). *)

val facts_db : t -> Database.t
(** A database holding the program's ground facts. *)

val rules_for : t -> string -> Rule.t list
(** The rules whose head predicate is the given one, in program order. *)

val pp : Format.formatter -> t -> unit
