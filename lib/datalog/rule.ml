type guard = {
  gname : string;
  gvars : string array;
  gfn : Const.t array -> int;
  gexpect : int;
}

type t = {
  head : Atom.t;
  body : Atom.t list;
  neg : Atom.t list;
  guards : guard list;
  loc : int option;
}

let make ?loc ?(neg = []) ?(guards = []) head body =
  { head; body; neg; guards; loc }

let with_loc loc r = { r with loc = Some loc }

let guard ~name ~vars ~fn ~expect =
  { gname = name; gvars = Array.of_list vars; gfn = fn; gexpect = expect }

let dedup vars =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vars

let head_vars r = Atom.vars r.head
let body_vars r = dedup (List.concat_map Atom.vars r.body)
let neg_vars r = dedup (List.concat_map Atom.vars r.neg)
let vars r = dedup (head_vars r @ body_vars r)

let is_fact r =
  r.body = [] && r.neg = [] && r.guards = [] && Atom.is_ground r.head

let is_safe r =
  let bvs = body_vars r in
  let in_body v = List.mem v bvs in
  List.for_all in_body (head_vars r)
  && List.for_all in_body (neg_vars r)
  && List.for_all
       (fun g -> Array.for_all in_body g.gvars)
       r.guards

let guard_ok g env =
  let n = Array.length g.gvars in
  let key = Array.make n (Const.Int 0) in
  let rec fill i =
    if i = n then Some (g.gfn key = g.gexpect)
    else
      match List.assoc_opt g.gvars.(i) env with
      | None -> None
      | Some c ->
        key.(i) <- c;
        fill (i + 1)
  in
  fill 0

let pp_guard ppf g =
  Format.fprintf ppf "%s(@[%a@])=%d" g.gname
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_string)
    g.gvars g.gexpect

let pp_neg ppf a = Format.fprintf ppf "not %a" Atom.pp a

let pp ppf r =
  match r.body, r.neg, r.guards with
  | [], [], [] -> Format.fprintf ppf "@[%a.@]" Atom.pp r.head
  | _ ->
    let pp_sep ppf () = Format.fprintf ppf ",@ " in
    let sep_if cond = if cond then ", " else "" in
    Format.fprintf ppf "@[<hov 2>%a :-@ %a%s%a%s%a.@]" Atom.pp r.head
      (Format.pp_print_list ~pp_sep Atom.pp)
      r.body
      (sep_if (r.body <> [] && r.neg <> []))
      (Format.pp_print_list ~pp_sep pp_neg)
      r.neg
      (sep_if ((r.body <> [] || r.neg <> []) && r.guards <> []))
      (Format.pp_print_list ~pp_sep pp_guard)
      r.guards

let to_string r = Format.asprintf "%a" pp r
