(** SCC-stratified sequential evaluation.

    Evaluates the strongly connected components of the dependency graph
    bottom-up: each component runs a semi-naive fixpoint treating the
    relations of lower components as extensional. For programs with a
    deep dependency structure this avoids re-visiting completed
    components on every iteration. The enumerated set of successful
    ground substitutions — and hence the firing count — is identical to
    {!Seminaive.evaluate}'s, which the test suite checks. *)

val evaluate :
  ?pushdown:bool -> ?reorder:bool -> Program.t -> Database.t ->
  Database.t * Seminaive.stats
(** The least model plus aggregate statistics across components
    ([iterations] sums the per-component iteration counts). The input
    database is not modified.
    @raise Invalid_argument if the program fails {!Program.check}. *)

(** Incremental maintenance of the computed model under base-fact
    insertions and deletions.

    A {!Live.t} holds the full model (base + derived) and per-stratum
    support bookkeeping. {!Live.apply} folds an update batch into the
    model stratum-by-stratum: non-recursive strata are maintained by
    exact derivation counting (the telescoped lost/gained-firing
    enumeration), recursive strata by DRed — overdelete everything a
    removed tuple might have supported, rederive what survives from the
    remainder, install the difference — followed by a semi-naive
    insertion pass resumed from the added windows only. Work is
    proportional to the consequences of the batch, not the store; the
    returned {!Live.change} is the exact net model difference, which is
    what the session runtimes propagate to resident workers. *)
module Live : sig
  type t

  type change = {
    c_summary : Delta.summary;
    c_added : (string * Tuple.t) list;
        (** Net tuples added to the model (base and derived), sorted by
            predicate then {!Tuple.compare}. *)
    c_removed : (string * Tuple.t) list;
        (** Net tuples removed from the model; disjoint from
            [c_added]. *)
  }

  val create :
    ?pushdown:bool -> ?reorder:bool -> ?track:bool -> Program.t ->
    edb:Database.t -> t
  (** Evaluate the program over [edb] and set up maintenance state.
      Tuples the [edb] seeds under derived predicates are treated like
      program facts: externally supported, never deleted by
      maintenance. [track] (default [true]) records every net change
      into {!log}; pass [false] for long-lived sessions that never
      drain it.
      @raise Invalid_argument if the program fails {!Program.check}. *)

  val apply : t -> Delta.Batch.t -> change
  (** Fold one update batch into the model. The batch is first
      normalized against the store ({!Delta.Batch.normalize}), so
      re-applying a batch is a no-op and an empty net effect does
      near-zero work. All deletions are processed bottom-up first, then
      all insertions.
      @raise Invalid_argument if the batch updates a derived
      predicate. *)

  val query : t -> string -> Tuple.t list
  (** Current tuples of a predicate, in {!Tuple.compare} order; [[]]
      when unbound. *)

  val database : t -> Database.t
  (** A fresh snapshot of the full model. *)

  val batches : t -> int
  (** Batches applied so far (including empty ones). *)

  val totals : t -> Delta.summary
  (** Cumulative maintenance accounting across all batches. *)

  val log : t -> Delta.Log.t
  (** The net change log: one {!Delta.Log} entry per model tuple added
      or removed by {!apply}, in batch order. *)
end
